//===- env.h - Environment variable access ---------------------*- C++ -*-===//
///
/// \file
/// Typed access to the small set of GC_* environment knobs (thread count,
/// debug dumping). Centralized so the knob names appear in one place.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_ENV_H
#define GC_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace gc {

/// Returns the integer value of environment variable \p Name, or \p Default
/// when unset or unparsable. Parsing is strict: trailing garbage
/// ("GC_THREADS=4x") and out-of-range magnitudes reject to the default (a
/// one-time warning is printed under GC_VERBOSE>=1) instead of flowing a
/// half-parsed number into the caller. Sign is NOT validated here — knobs
/// with a semantic minimum clamp at their use site.
int64_t getEnvInt(const char *Name, int64_t Default);

/// Returns the value of environment variable \p Name, or \p Default.
std::string getEnvString(const char *Name, const std::string &Default);

/// True when GC_VERBOSE requests pass/IR dumping (GC_VERBOSE >= \p Level).
bool verboseAtLeast(int Level);

} // namespace gc

#endif // GC_SUPPORT_ENV_H
