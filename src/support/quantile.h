//===- quantile.h - Streaming quantile sketch -------------------*- C++ -*-===//
///
/// \file
/// A DDSketch-style streaming quantile estimator over non-negative values:
/// each recorded value lands in a logarithmic bucket whose width is a fixed
/// relative error, so quantile() answers p50/p95/p99 queries within that
/// relative accuracy using O(log(max/min)) memory, no matter how many
/// values were recorded. The serving layer records one request latency per
/// retired request and reads the percentiles out of ServerStats.
///
/// Not thread-safe by itself: the owner serializes record()/quantile()
/// (serve::Server records under its stats mutex).
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_QUANTILE_H
#define GC_SUPPORT_QUANTILE_H

#include <cstdint>
#include <vector>

namespace gc {

/// Streaming quantile sketch with bounded relative error.
class QuantileSketch {
public:
  /// \brief Creates a sketch answering quantiles within \p RelativeError
  /// (clamped to [1e-4, 0.5]; default 1%).
  explicit QuantileSketch(double RelativeError = 0.01);

  /// \brief Records one value. Negative values clamp to 0; zero and
  /// sub-resolution values share the zero bucket.
  void record(double Value);

  /// \brief The \p Q quantile (Q in [0,1]; clamped) of everything recorded
  /// so far, within the configured relative error. Returns 0 when empty.
  /// Q=0 approximates the minimum, Q=1 the maximum.
  double quantile(double Q) const;

  /// \brief Number of values recorded.
  uint64_t count() const { return Count; }

  /// \brief Largest value recorded (exact, not bucketed); 0 when empty.
  double max() const { return Max; }

  /// \brief Arithmetic mean of everything recorded; 0 when empty.
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }

  /// \brief Drops every recorded value.
  void clear();

private:
  /// Bucket index of \p Value (>= kZeroResolution): ceil(log_gamma(V)),
  /// shifted by IndexOffset into the Buckets vector on demand.
  int bucketIndex(double Value) const;

  double Gamma = 1.02;    ///< bucket boundary ratio: (1+e)/(1-e)
  double InvLogGamma = 0; ///< 1 / ln(Gamma)
  /// Values below this resolve to the zero bucket (keeps indices small).
  static constexpr double kZeroResolution = 1e-9;

  std::vector<uint64_t> Buckets; ///< grown lazily around the data range
  int IndexOffset = 0;           ///< logical index of Buckets[0]
  uint64_t ZeroCount = 0;
  uint64_t Count = 0;
  double Sum = 0;
  double Max = 0;
};

} // namespace gc

#endif // GC_SUPPORT_QUANTILE_H
