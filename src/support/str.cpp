//===- str.cpp - printf-style std::string formatting ----------------------===//

#include "support/str.h"

#include <cstdio>

namespace gc {

std::string formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatStringV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string shapeToString(const std::vector<int64_t> &Dims) {
  std::vector<std::string> Parts;
  Parts.reserve(Dims.size());
  for (int64_t D : Dims)
    Parts.push_back(formatString("%lld", static_cast<long long>(D)));
  return "[" + joinStrings(Parts, ", ") + "]";
}

} // namespace gc
