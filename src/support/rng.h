//===- rng.h - Deterministic random number generation ----------*- C++ -*-===//
///
/// \file
/// SplitMix64-based deterministic RNG for synthetic workload data. Model
/// weights in the paper's experiments come from trained checkpoints; dense
/// kernel performance is data independent, so seeded noise preserves the
/// measured behaviour (see DESIGN.md substitution #6).
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_RNG_H
#define GC_SUPPORT_RNG_H

#include <cstdint>

namespace gc {

/// Deterministic 64-bit RNG (SplitMix64). Cheap, seedable, and portable so
/// tests and benches produce identical tensors on every run.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform float in [Lo, Hi).
  float uniform(float Lo, float Hi) {
    const double Unit = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return static_cast<float>(Lo + (Hi - Lo) * Unit);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t uniformInt(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % static_cast<uint64_t>(Hi - Lo + 1));
  }

private:
  uint64_t State;
};

} // namespace gc

#endif // GC_SUPPORT_RNG_H
