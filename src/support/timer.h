//===- timer.h - Wall-clock timing ------------------------------*- C++ -*-===//
///
/// \file
/// Monotonic wall-clock timer used by the benchmark harness and by the
/// constant-cache statistics.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_TIMER_H
#define GC_SUPPORT_TIMER_H

#include <chrono>

namespace gc {

/// Wall-clock stopwatch; starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace gc

#endif // GC_SUPPORT_TIMER_H
