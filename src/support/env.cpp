//===- env.cpp - Environment variable access -------------------------------===//

#include "support/env.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace gc {

namespace {

/// Strict integer parse of \p Name: leading/trailing whitespace is
/// tolerated, but partially-parsed values ("4x"), empty digits, and
/// out-of-range magnitudes (errno == ERANGE) all reject to \p Default —
/// an env typo must degrade to the documented default, never flow a
/// half-parsed number into pool sizing. \p WarnOnInvalid gates the
/// one-time diagnostic: GC_VERBOSE itself parses with it off, breaking
/// the recursion between warning and querying the verbosity level.
int64_t parseEnvInt(const char *Name, int64_t Default, bool WarnOnInvalid) {
  const char *Val = std::getenv(Name);
  if (!Val || !*Val)
    return Default;

  errno = 0;
  char *End = nullptr;
  const long long Parsed = std::strtoll(Val, &End, 10);
  bool Ok = End != Val && errno != ERANGE;
  if (Ok) {
    while (*End != '\0' && std::isspace(static_cast<unsigned char>(*End)))
      ++End;
    Ok = *End == '\0';
  }
  if (Ok)
    return static_cast<int64_t>(Parsed);

  if (WarnOnInvalid && verboseAtLeast(1)) {
    // Warn once per variable: a rejected knob read in a hot path (thread
    // pool construction, per-compile option resolution) must not spam.
    static std::mutex WarnMutex;
    static std::set<std::string> Warned;
    std::lock_guard<std::mutex> Lock(WarnMutex);
    if (Warned.insert(Name).second)
      std::fprintf(stderr,
                   "[gc] ignoring invalid %s=\"%s\" (not a valid integer); "
                   "using default %lld\n",
                   Name, Val, (long long)Default);
  }
  return Default;
}

} // namespace

int64_t getEnvInt(const char *Name, int64_t Default) {
  return parseEnvInt(Name, Default, /*WarnOnInvalid=*/true);
}

std::string getEnvString(const char *Name, const std::string &Default) {
  const char *Val = std::getenv(Name);
  if (!Val)
    return Default;
  return std::string(Val);
}

bool verboseAtLeast(int Level) {
  static int64_t Cached =
      parseEnvInt("GC_VERBOSE", 0, /*WarnOnInvalid=*/false);
  return Cached >= Level;
}

} // namespace gc
