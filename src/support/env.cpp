//===- env.cpp - Environment variable access -------------------------------===//

#include "support/env.h"

#include <cstdlib>

namespace gc {

int64_t getEnvInt(const char *Name, int64_t Default) {
  const char *Val = std::getenv(Name);
  if (!Val || !*Val)
    return Default;
  char *End = nullptr;
  long long Parsed = std::strtoll(Val, &End, 10);
  if (End == Val)
    return Default;
  return static_cast<int64_t>(Parsed);
}

std::string getEnvString(const char *Name, const std::string &Default) {
  const char *Val = std::getenv(Name);
  if (!Val)
    return Default;
  return std::string(Val);
}

bool verboseAtLeast(int Level) {
  static int64_t Cached = getEnvInt("GC_VERBOSE", 0);
  return Cached >= Level;
}

} // namespace gc
