//===- fault.h - Deterministic fault-injection framework --------*- C++ -*-===//
///
/// \file
/// Test-time fault injection for the runtime's fallible operations. Every
/// operation that can genuinely fail in production (allocation, pool
/// exhaustion, task submission, disk-cache I/O, kernel dispatch,
/// specialization compile) carries one named *site*; the chaos suite and
/// GC_FAULT can then force any of those failures on demand and assert the
/// stack survives: a located Status, no crash, no leak, and a clean next
/// execution.
///
/// Configuration — `GC_FAULT=<site>:<rule>[,<site>:<rule>...]`:
///   <site>   a registered site name from allSites(), or `*` for all
///   <rule>   `N`   (integer >= 1): fail every Nth evaluation of the site
///            `pX`  (X in [0,1]):   fail each evaluation with probability
///                                  X, drawn from a deterministic RNG
///                                  seeded by GC_FAULT_SEED (default 0)
///
///   GC_FAULT="arena.grow:1"            every arena growth fails
///   GC_FAULT="*:p0.3" GC_FAULT_SEED=7  30% of every fallible op fails,
///                                      reproducibly
///   GC_FAULT="cache.open:2,pool.submit:p0.5"
///
/// Cost discipline: when no fault spec is active, shouldFail() is one
/// relaxed atomic load (the bench-parity gate
/// scripts/compare_fault_bench.py holds this to noise). The slow path —
/// counters, RNG, the site table — only runs while a spec is armed, which
/// is a test-only situation.
///
/// Tests configure programmatically via configure()/reset() instead of
/// the environment so one process can sweep many specs; GC_FAULT is read
/// once at process start and never re-read.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_FAULT_H
#define GC_SUPPORT_FAULT_H

#include "support/status.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace gc {
namespace fault {

/// \name Registered fault sites
/// One constant per fallible runtime operation. The chaos suite iterates
/// allSites(), so adding a seam means adding its name here.
/// @{

/// PlanArena growth (execution-arena lease / GC_MEM_LIMIT check).
inline constexpr const char *kArenaGrow = "arena.grow";
/// ExecState construction when the idle pool is empty.
inline constexpr const char *kExecState = "exec.state";
/// ThreadPool::trySubmitTaskBatch (async scheduler enqueue).
inline constexpr const char *kPoolSubmit = "pool.submit";
/// Artifact-cache entry open (before the mmap).
inline constexpr const char *kCacheOpen = "cache.open";
/// Artifact-cache mmap/envelope validation (after a successful open).
inline constexpr const char *kCacheMmap = "cache.mmap";
/// Artifact-cache store (temp write + rename).
inline constexpr const char *kCacheWrite = "cache.write";
/// Artifact-cache per-key flock acquisition.
inline constexpr const char *kCacheLock = "cache.flock";
/// Kernel dispatch: CompiledPartition::execute, just before the engine
/// runs.
inline constexpr const char *kKernelDispatch = "exec.dispatch";
/// Batch-specialization compile of a polymorphic CompiledGraph.
inline constexpr const char *kSpecCompile = "spec.compile";
/// Bytecode pipeline of compilePartition (degrades to the tree backend).
inline constexpr const char *kCompileBytecode = "compile.bytecode";

/// @}

/// Every registered site name, in a stable order (the chaos sweep).
const std::vector<const char *> &allSites();

namespace detail {
extern std::atomic<bool> Armed;
bool shouldFailSlow(const char *Site);
} // namespace detail

/// True when a fault spec (env or configure()) is active. One relaxed
/// atomic load; the hot-path guard of every seam.
inline bool armed() { return detail::Armed.load(std::memory_order_relaxed); }

/// Evaluates site \p Site against the active spec: bumps its hit counter
/// and returns true when the configured rule says this evaluation fails.
/// Always false (and counts nothing) when no spec is armed.
inline bool shouldFail(const char *Site) {
  return armed() && detail::shouldFailSlow(Site);
}

/// A located Status for an injected failure at \p Site: code \p Code,
/// message naming the site and \p What so every surfaced failure points
/// back to its seam.
Status failStatus(const char *Site, StatusCode Code, const char *What);

/// Parses and arms \p Spec (same grammar as GC_FAULT; empty disarms).
/// Resets every per-site counter and reseeds the RNG streams with
/// \p Seed. Returns InvalidArgument (leaving the previous spec armed) on
/// grammar errors or unknown site names.
Status configure(const std::string &Spec, uint64_t Seed = 0);

/// Disarms injection and clears every rule and counter. The environment
/// spec is NOT re-read afterwards; tests own the config once they touch
/// it.
void reset();

/// Per-site observation counters (zeroed by configure()/reset()).
struct SiteStats {
  uint64_t Hits = 0;     ///< times the seam was evaluated
  uint64_t Injected = 0; ///< times it was told to fail
};
SiteStats stats(const char *Site);

/// Total injected failures across every site since the last configure().
uint64_t totalInjected();

} // namespace fault
} // namespace gc

#endif // GC_SUPPORT_FAULT_H
