//===- fault.cpp - Deterministic fault-injection framework --------------------===//

#include "support/fault.h"

#include "support/env.h"
#include "support/rng.h"
#include "support/str.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gc {
namespace fault {

namespace detail {
std::atomic<bool> Armed{false};
} // namespace detail

const std::vector<const char *> &allSites() {
  static const std::vector<const char *> Sites = {
      kArenaGrow, kExecState,   kPoolSubmit,     kCacheOpen,   kCacheMmap,
      kCacheWrite, kCacheLock,  kKernelDispatch, kSpecCompile,
      kCompileBytecode};
  return Sites;
}

namespace {

/// One armed rule: exactly one of EveryN / Prob is active. Counter and the
/// RNG stream are per site so multi-site specs stay independently
/// deterministic.
struct Rule {
  uint64_t EveryN = 0; ///< fail every Nth evaluation (0 = probabilistic)
  double Prob = 0.0;   ///< failure probability when EveryN == 0
  uint64_t Counter = 0;
  Rng R{0};
  SiteStats St;
};

/// All injection state behind one mutex. Contention only exists while a
/// spec is armed (tests); the production path never gets past armed().
struct FaultState {
  std::mutex M;
  std::unordered_map<std::string, Rule> Rules;
};

FaultState &state() {
  static FaultState S;
  return S;
}

/// FNV-1a, for decorrelating per-site RNG streams under one seed.
uint64_t hashName(const char *Name) {
  uint64_t H = 1469598103934665603ULL;
  for (const char *P = Name; *P; ++P)
    H = (H ^ static_cast<uint64_t>(*P)) * 1099511628211ULL;
  return H;
}

bool knownSite(const std::string &Name) {
  for (const char *S : allSites())
    if (Name == S)
      return true;
  return false;
}

/// Reads GC_FAULT / GC_FAULT_SEED exactly once, at process start. A parse
/// error cannot abort here (the host may be a long-lived server), so it
/// warns and leaves injection disarmed.
struct EnvInit {
  EnvInit() {
    const std::string Spec = getEnvString("GC_FAULT", "");
    if (Spec.empty())
      return;
    const uint64_t Seed =
        static_cast<uint64_t>(getEnvInt("GC_FAULT_SEED", 0));
    if (const Status S = configure(Spec, Seed); !S.isOk())
      std::fprintf(stderr, "[gc] GC_FAULT ignored: %s\n",
                   S.toString().c_str());
  }
};
EnvInit RunEnvInit;

} // namespace

namespace detail {

bool shouldFailSlow(const char *Site) {
  FaultState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Rules.find(Site);
  if (It == S.Rules.end())
    return false;
  Rule &R = It->second;
  ++R.St.Hits;
  bool Fail = false;
  if (R.EveryN > 0)
    Fail = (++R.Counter % R.EveryN) == 0;
  else
    Fail = static_cast<double>(R.R.next() >> 11) * 0x1.0p-53 < R.Prob;
  if (Fail)
    ++R.St.Injected;
  return Fail;
}

} // namespace detail

Status failStatus(const char *Site, StatusCode Code, const char *What) {
  return Status::error(
      Code, formatString("injected fault at %s: %s", Site, What));
}

Status configure(const std::string &Spec, uint64_t Seed) {
  std::unordered_map<std::string, Rule> Rules;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    const std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;
    const size_t Colon = Entry.find(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 >= Entry.size())
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("fault spec entry '%s' is not <site>:<rule>",
                       Entry.c_str()));
    const std::string Site = Entry.substr(0, Colon);
    const std::string RuleStr = Entry.substr(Colon + 1);
    if (Site != "*" && !knownSite(Site))
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("fault spec names unknown site '%s'", Site.c_str()));

    Rule R;
    char *RuleEnd = nullptr;
    if (RuleStr[0] == 'p') {
      const double P = std::strtod(RuleStr.c_str() + 1, &RuleEnd);
      if (RuleEnd == RuleStr.c_str() + 1 || *RuleEnd != '\0' || P < 0.0 ||
          P > 1.0)
        return Status::error(
            StatusCode::InvalidArgument,
            formatString("fault rule '%s' is not p<probability in [0,1]>",
                         RuleStr.c_str()));
      R.Prob = P;
    } else {
      const long long N = std::strtoll(RuleStr.c_str(), &RuleEnd, 10);
      if (RuleEnd == RuleStr.c_str() || *RuleEnd != '\0' || N < 1)
        return Status::error(
            StatusCode::InvalidArgument,
            formatString("fault rule '%s' is not an every-Nth count >= 1",
                         RuleStr.c_str()));
      R.EveryN = static_cast<uint64_t>(N);
    }
    // `*` materializes onto every registered site (explicit entries win),
    // keeping the evaluation path uniform and the per-site counters and
    // RNG streams independent.
    if (Site == "*") {
      for (const char *Name : allSites())
        Rules.try_emplace(Name, R);
    } else {
      Rules.insert_or_assign(Site, R);
    }
  }

  for (auto &[Name, R] : Rules)
    R.R = Rng(Seed ^ hashName(Name.c_str()));

  FaultState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Rules = std::move(Rules);
  detail::Armed.store(!S.Rules.empty(), std::memory_order_relaxed);
  return Status::ok();
}

void reset() {
  FaultState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Rules.clear();
  detail::Armed.store(false, std::memory_order_relaxed);
}

SiteStats stats(const char *Site) {
  FaultState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Rules.find(Site);
  return It == S.Rules.end() ? SiteStats{} : It->second.St;
}

uint64_t totalInjected() {
  FaultState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  uint64_t Total = 0;
  for (const auto &[Name, R] : S.Rules)
    Total += R.St.Injected;
  return Total;
}

} // namespace fault
} // namespace gc
