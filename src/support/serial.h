//===- serial.h - Bounds-checked byte-stream (de)serialization --*- C++ -*-===//
///
/// \file
/// Little building blocks for the persistent artifact cache: an appending
/// byte writer and a bounds-checked reader over an untrusted byte span.
/// The reader never aborts on malformed input — every primitive read
/// checks the remaining length, and the first failure latches a located
/// Status that all subsequent reads observe, so deserializers can perform
/// a run of reads and test ok() at natural checkpoints instead of
/// threading a Status through every field.
///
/// Encoding is the host's native little-endian representation (the cache
/// is per-machine; the build hash in the cache key already fences off
/// foreign producers). Multi-byte scalars are memcpy'd, so the reader is
/// alignment-safe over any payload offset; raw byte blobs that will be
/// *viewed* in place (mmap zero-copy constants) are 8-aligned via
/// alignTo() on both sides.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_SERIAL_H
#define GC_SUPPORT_SERIAL_H

#include "support/status.h"
#include "support/str.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace gc {

/// FNV-1a over a byte span, folding 8 bytes per multiply; the artifact
/// cache's header checksum (same construction the Graph fingerprint
/// uses). The word-wise step keeps the property that matters for
/// corruption detection — (H ^ W) * prime is injective in W, so two
/// spans differing in exactly one word never collide — while hashing
/// multi-megabyte weight payloads at memory speed instead of one multiply
/// per byte. Not the canonical byte-at-a-time FNV-1a digest; every
/// producer and consumer of these hashes lives in this codebase.
inline uint64_t fnv1aBytes(const void *Data, size_t Bytes,
                           uint64_t H = 1469598103934665603ull) {
  const auto *P = static_cast<const uint8_t *>(Data);
  size_t I = 0;
  for (; I + 8 <= Bytes; I += 8) {
    uint64_t W;
    std::memcpy(&W, P + I, 8);
    H ^= W;
    H *= 1099511628211ull;
  }
  for (; I < Bytes; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// Bulk checksum for multi-megabyte payloads: four independent word-wise
/// FNV-1a lanes over interleaved 8-byte words, folded into one digest
/// with the scalar routine (which also absorbs the sub-32-byte tail).
/// fnv1aBytes is a serial xor-multiply dependency chain — one multiply
/// latency per 8 bytes — which caps it well below memory bandwidth; four
/// lanes hide that latency while keeping the property corruption
/// detection needs (a corrupted word changes its lane's digest, which
/// changes the fold). Digests are NOT interchangeable with fnv1aBytes;
/// producers and consumers of a field must agree on the variant.
inline uint64_t fnv1aBytesBulk(const void *Data, size_t Bytes) {
  constexpr uint64_t kPrime = 1099511628211ull;
  const auto *P = static_cast<const uint8_t *>(Data);
  uint64_t H0 = 1469598103934665603ull;
  uint64_t H1 = H0 ^ 0x9e3779b97f4a7c15ull;
  uint64_t H2 = H0 ^ 0xc2b2ae3d27d4eb4full;
  uint64_t H3 = H0 ^ 0x165667b19e3779f9ull;
  size_t I = 0;
  for (; I + 32 <= Bytes; I += 32) {
    uint64_t W0, W1, W2, W3;
    std::memcpy(&W0, P + I, 8);
    std::memcpy(&W1, P + I + 8, 8);
    std::memcpy(&W2, P + I + 16, 8);
    std::memcpy(&W3, P + I + 24, 8);
    H0 = (H0 ^ W0) * kPrime;
    H1 = (H1 ^ W1) * kPrime;
    H2 = (H2 ^ W2) * kPrime;
    H3 = (H3 ^ W3) * kPrime;
  }
  const uint64_t Lanes[4] = {H0, H1, H2, H3};
  return fnv1aBytes(P + I, Bytes - I, fnv1aBytes(Lanes, sizeof Lanes));
}

/// Appending byte-stream writer.
class ByteWriter {
public:
  void u8(uint8_t V) { raw(&V, 1); }
  void u16(uint16_t V) { raw(&V, sizeof V); }
  void u32(uint32_t V) { raw(&V, sizeof V); }
  void u64(uint64_t V) { raw(&V, sizeof V); }
  void i32(int32_t V) { raw(&V, sizeof V); }
  void i64(int64_t V) { raw(&V, sizeof V); }
  void f64(double V) { raw(&V, sizeof V); }

  void str(const std::string &S) {
    u64(S.size());
    raw(S.data(), S.size());
  }

  void i64vec(const std::vector<int64_t> &V) {
    u64(V.size());
    raw(V.data(), V.size() * sizeof(int64_t));
  }

  void f64vec(const std::vector<double> &V) {
    u64(V.size());
    raw(V.data(), V.size() * sizeof(double));
  }

  /// Length-prefixed raw blob, 8-aligned so readers can vend in-place
  /// views with natural scalar alignment.
  void blob(const void *Data, size_t Bytes) {
    u64(Bytes);
    alignTo(8);
    raw(Data, Bytes);
  }

  /// Pads with zero bytes to the next multiple of \p A (power of two).
  void alignTo(size_t A) {
    while (Buf.size() % A != 0)
      Buf.push_back(0);
  }

  void raw(const void *Data, size_t Bytes) {
    const auto *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Bytes);
  }

  size_t size() const { return Buf.size(); }
  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked reader over an untrusted byte span. After the first
/// failed read, every later read returns a zero value and ok() stays
/// false; err() carries the offset of the first failure.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Bytes)
      : Base(static_cast<const uint8_t *>(Data)), Len(Bytes) {}

  bool ok() const { return Err.isOk(); }
  const Status &err() const { return Err; }
  size_t offset() const { return Pos; }
  size_t remaining() const { return ok() ? Len - Pos : 0; }
  bool atEnd() const { return Pos == Len; }

  uint8_t u8() { return scalar<uint8_t>("u8"); }
  uint16_t u16() { return scalar<uint16_t>("u16"); }
  uint32_t u32() { return scalar<uint32_t>("u32"); }
  uint64_t u64() { return scalar<uint64_t>("u64"); }
  int32_t i32() { return scalar<int32_t>("i32"); }
  int64_t i64() { return scalar<int64_t>("i64"); }
  double f64() { return scalar<double>("f64"); }

  std::string str() {
    const uint64_t N = u64();
    if (!checkCount(N, 1, "string"))
      return {};
    std::string S(reinterpret_cast<const char *>(Base + Pos),
                  static_cast<size_t>(N));
    Pos += static_cast<size_t>(N);
    return S;
  }

  std::vector<int64_t> i64vec() { return vec<int64_t>("i64vec"); }
  std::vector<double> f64vec() { return vec<double>("f64vec"); }

  /// Matches ByteWriter::blob: returns a pointer INTO the underlying span
  /// (8-aligned relative to its start) — the zero-copy path for mmap'd
  /// constant payloads. The caller owns keeping the span alive.
  const void *blob(size_t &Bytes) {
    const uint64_t N = u64();
    alignTo(8);
    if (!checkCount(N, 1, "blob")) {
      Bytes = 0;
      return nullptr;
    }
    const void *P = Base + Pos;
    Pos += static_cast<size_t>(N);
    Bytes = static_cast<size_t>(N);
    return P;
  }

  void alignTo(size_t A) {
    while (ok() && Pos % A != 0) {
      if (Pos >= Len) {
        fail("alignment padding");
        return;
      }
      ++Pos;
    }
  }

  /// Latches a deserialization failure found by semantic validation (bad
  /// enum value, impossible count) at the current offset.
  void fail(const std::string &What) {
    if (Err.isOk())
      Err = Status::error(
          StatusCode::InvalidArgument,
          formatString("artifact deserialization failed at byte %zu: %s",
                       Pos, What.c_str()));
  }

private:
  template <typename T> T scalar(const char *Name) {
    if (!checkCount(1, sizeof(T), Name))
      return T();
    T V;
    std::memcpy(&V, Base + Pos, sizeof(T));
    Pos += sizeof(T);
    return V;
  }

  template <typename T> std::vector<T> vec(const char *Name) {
    const uint64_t N = u64();
    if (!checkCount(N, sizeof(T), Name) || N == 0)
      return {};
    std::vector<T> V(static_cast<size_t>(N));
    std::memcpy(V.data(), Base + Pos, V.size() * sizeof(T));
    Pos += V.size() * sizeof(T);
    return V;
  }

  /// True when \p N elements of \p Elem bytes fit in the remaining span.
  bool checkCount(uint64_t N, size_t Elem, const char *What) {
    if (!ok())
      return false;
    if (N > (Len - Pos) / Elem) {
      fail(formatString("%s length %llu exceeds remaining %zu bytes", What,
                        (unsigned long long)N, Len - Pos));
      return false;
    }
    return true;
  }

  const uint8_t *Base;
  size_t Len;
  size_t Pos = 0;
  Status Err;
};

} // namespace gc

#endif // GC_SUPPORT_SERIAL_H
