//===- status.h - Status / Expected error model -----------------*- C++ -*-===//
///
/// \file
/// Recoverable-error reporting for the public compilation API. User-facing
/// entry points (graph finalization, partitioning, compilation, execution)
/// return Status / Expected<T> instead of aborting, so a serving process can
/// reject one bad graph without dying. fatalError() remains reserved for
/// internal invariant violations.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_STATUS_H
#define GC_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gc {

/// Coarse error taxonomy of the public API.
enum class StatusCode : uint8_t {
  Ok,
  /// Caller passed malformed arguments (wrong arity, null tensor, ...).
  InvalidArgument,
  /// The graph fails structural verification.
  InvalidGraph,
  /// The construct is valid but this compiler cannot lower it.
  Unsupported,
  /// A pipeline stage produced an inconsistent result.
  Internal,
  /// A bounded resource (arena budget, exec-state pool, cache capacity)
  /// was exhausted. Transient: retrying after load drops may succeed.
  ResourceExhausted,
  /// The submission's deadline (SubmitOptions::TimeoutMs) passed before
  /// every partition completed. Terminal for that submission only.
  DeadlineExceeded,
  /// The submission was cancelled via Event::cancel(). Terminal for that
  /// submission only.
  Cancelled,
  /// A dependency (disk cache entry, cross-process lock, injected fault
  /// site) was temporarily unavailable. Transient: an alternate path or a
  /// retry is expected to succeed.
  Unavailable,
  /// The requested entity (e.g. an artifact-cache entry) does not exist.
  /// Distinct from Unavailable so callers can tell a routine miss from a
  /// degraded dependency.
  NotFound,
};

/// Printable name of a status code.
constexpr const char *statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok: return "ok";
  case StatusCode::InvalidArgument: return "invalid_argument";
  case StatusCode::InvalidGraph: return "invalid_graph";
  case StatusCode::Unsupported: return "unsupported";
  case StatusCode::Internal: return "internal";
  case StatusCode::ResourceExhausted: return "resource_exhausted";
  case StatusCode::DeadlineExceeded: return "deadline_exceeded";
  case StatusCode::Cancelled: return "cancelled";
  case StatusCode::Unavailable: return "unavailable";
  case StatusCode::NotFound: return "not_found";
  }
  return "?";
}

/// Failure classification for the graceful-degradation policy: a
/// transient code means the operation may succeed along another axis
/// (slower backend, serial schedule, in-process compile) or on a plain
/// retry. Argument/graph/Unsupported errors are permanent — no fallback
/// can fix the input — and DeadlineExceeded/Cancelled are caller verdicts
/// that must surface, not be papered over.
constexpr bool isTransient(StatusCode Code) {
  return Code == StatusCode::ResourceExhausted ||
         Code == StatusCode::Unavailable;
}

/// An error code plus a human-readable message. Default-constructed status
/// is success; evaluates to true in boolean context when ok. [[nodiscard]]
/// so silently dropping an error at a call site is a compile-time warning.
///
/// Statuses are plain values: copyable, movable, and safe to pass across
/// threads (api::Event::wait() returns the submission's Status to any
/// number of concurrent waiters).
class [[nodiscard]] Status {
public:
  /// \brief Success.
  Status() = default;
  /// \brief Builds a status from a code and message; prefer the ok() /
  /// error() factories at call sites.
  Status(StatusCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {}

  /// \brief The success value.
  static Status ok() { return Status(); }
  /// \brief An error with \p Code (must not be Ok) and \p Message.
  static Status error(StatusCode Code, std::string Message) {
    assert(Code != StatusCode::Ok && "error status needs a non-ok code");
    return Status(Code, std::move(Message));
  }

  /// \brief True on success.
  bool isOk() const { return Code == StatusCode::Ok; }
  /// \brief Boolean shorthand for isOk().
  explicit operator bool() const { return isOk(); }

  /// \brief The error taxonomy bucket (Ok on success).
  StatusCode code() const { return Code; }
  /// \brief Human-readable detail; empty on success.
  const std::string &message() const { return Message; }

  /// \brief "ok" or "<code name>: <message>", for logs and test output.
  std::string toString() const {
    if (isOk())
      return "ok";
    return std::string(statusCodeName(Code)) + ": " + Message;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Message;
};

/// Either a value or an error Status. Modeled after llvm::Expected but
/// without the must-check machinery: callers test with operator bool and
/// read either value() or status().
template <typename T> class Expected {
public:
  /// \brief Success: wraps \p Value.
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /// \brief Failure: wraps a non-ok \p Err.
  /*implicit*/ Expected(Status Err) : Err(std::move(Err)) {
    assert(!this->Err.isOk() && "Expected error must carry a non-ok status");
  }

  /// \brief True when a value is present (the call succeeded).
  bool hasValue() const { return Value.has_value(); }
  /// \brief Boolean shorthand for hasValue().
  explicit operator bool() const { return hasValue(); }

  /// \brief The wrapped value; asserts when this holds an error.
  T &value() {
    assert(hasValue() && "value() on an error Expected");
    return *Value;
  }
  /// \copydoc value()
  const T &value() const {
    assert(hasValue() && "value() on an error Expected");
    return *Value;
  }
  /// \brief Dereference shorthand for value().
  T &operator*() { return value(); }
  /// \copydoc operator*()
  const T &operator*() const { return value(); }
  /// \brief Member access into the wrapped value.
  T *operator->() { return &value(); }
  /// \copydoc operator->()
  const T *operator->() const { return &value(); }

  /// \brief Moves the value out (the Expected is left in a consumed
  /// state).
  T takeValue() {
    assert(hasValue() && "takeValue() on an error Expected");
    return std::move(*Value);
  }

  /// \brief The error status; Status::ok() when a value is present.
  const Status &status() const { return Err; }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace gc

#endif // GC_SUPPORT_STATUS_H
