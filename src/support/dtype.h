//===- dtype.h - Element data types ------------------------------*- C++ -*-===//
///
/// \file
/// Element types shared by Graph IR logical tensors, Tensor IR buffers, and
/// runtime tensors. The set matches the paper's inference scope: FP32
/// compute, u8/s8 quantized storage, s32 accumulation (plus F64 for test
/// references).
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_DTYPE_H
#define GC_SUPPORT_DTYPE_H

#include <cstdint>

namespace gc {

/// Element type of a tensor.
enum class DataType : uint8_t {
  F32,
  F64, ///< test-reference only
  S32,
  S8,
  U8,
};

/// Size in bytes of one element of \p Ty.
inline constexpr int64_t dataTypeSize(DataType Ty) {
  switch (Ty) {
  case DataType::F32: return 4;
  case DataType::F64: return 8;
  case DataType::S32: return 4;
  case DataType::S8: return 1;
  case DataType::U8: return 1;
  }
  return 0;
}

/// Short printable name, e.g. "f32".
inline constexpr const char *dataTypeName(DataType Ty) {
  switch (Ty) {
  case DataType::F32: return "f32";
  case DataType::F64: return "f64";
  case DataType::S32: return "s32";
  case DataType::S8: return "s8";
  case DataType::U8: return "u8";
  }
  return "?";
}

/// True for f32/f64.
inline constexpr bool isFloatType(DataType Ty) {
  return Ty == DataType::F32 || Ty == DataType::F64;
}

/// True for the quantized storage types u8/s8.
inline constexpr bool isQuantizedType(DataType Ty) {
  return Ty == DataType::U8 || Ty == DataType::S8;
}

} // namespace gc

#endif // GC_SUPPORT_DTYPE_H
