//===- str.h - printf-style std::string formatting -------------*- C++ -*-===//
///
/// \file
/// `formatString` builds std::string values with printf semantics so library
/// code never needs <iostream>. Also hosts small joining helpers used by the
/// IR printers.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_STR_H
#define GC_SUPPORT_STR_H

#include <cstdarg>
#include <string>
#include <vector>

namespace gc {

/// Returns a std::string produced from a printf format string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavour of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

/// Joins \p Parts with \p Sep, e.g. joinStrings({"a","b"}, ", ") == "a, b".
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Renders an integer list like "[32, 512, 256]".
std::string shapeToString(const std::vector<int64_t> &Dims);

} // namespace gc

#endif // GC_SUPPORT_STR_H
