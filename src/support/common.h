//===- common.h - Small shared utilities ----------------------*- C++ -*-===//
//
// Part of the oneDNN Graph Compiler reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Freestanding helpers shared by every library layer: integer arithmetic on
/// tile/block sizes, unreachable markers, and lightweight fatal diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SUPPORT_COMMON_H
#define GC_SUPPORT_COMMON_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace gc {

/// Integer ceiling division; used pervasively when counting tensor blocks.
inline constexpr int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "ceilDiv requires a positive divisor");
  return (A + B - 1) / B;
}

/// Rounds \p A up to the next multiple of \p B.
inline constexpr int64_t roundUp(int64_t A, int64_t B) {
  return ceilDiv(A, B) * B;
}

/// Rounds \p A down to the previous multiple of \p B.
inline constexpr int64_t roundDown(int64_t A, int64_t B) {
  assert(B > 0 && "roundDown requires a positive divisor");
  return (A / B) * B;
}

/// Prints a formatted message to stderr and aborts. Library code uses this
/// for invariant violations that must survive NDEBUG builds.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "gc fatal error: %s\n", Msg);
  std::abort();
}

/// Marks a point in control flow that the surrounding invariants make
/// impossible to reach.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "gc unreachable: %s at %s:%d\n", Msg, File, Line);
  std::abort();
}

} // namespace gc

#define GC_UNREACHABLE(MSG) ::gc::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // GC_SUPPORT_COMMON_H
