//===- quantile.cpp - Streaming quantile sketch -------------------------------===//

#include "support/quantile.h"

#include <algorithm>
#include <cmath>

namespace gc {

QuantileSketch::QuantileSketch(double RelativeError) {
  const double E = std::min(0.5, std::max(1e-4, RelativeError));
  Gamma = (1.0 + E) / (1.0 - E);
  InvLogGamma = 1.0 / std::log(Gamma);
}

int QuantileSketch::bucketIndex(double Value) const {
  return static_cast<int>(std::ceil(std::log(Value) * InvLogGamma));
}

void QuantileSketch::record(double Value) {
  if (Value < 0)
    Value = 0;
  ++Count;
  Sum += Value;
  Max = std::max(Max, Value);
  if (Value < kZeroResolution) {
    ++ZeroCount;
    return;
  }
  const int Idx = bucketIndex(Value);
  if (Buckets.empty()) {
    IndexOffset = Idx;
    Buckets.assign(1, 0);
  } else if (Idx < IndexOffset) {
    Buckets.insert(Buckets.begin(),
                   static_cast<size_t>(IndexOffset - Idx), 0);
    IndexOffset = Idx;
  } else if (Idx >= IndexOffset + static_cast<int>(Buckets.size())) {
    Buckets.resize(static_cast<size_t>(Idx - IndexOffset) + 1, 0);
  }
  ++Buckets[static_cast<size_t>(Idx - IndexOffset)];
}

double QuantileSketch::quantile(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::min(1.0, std::max(0.0, Q));
  // p100 is the one quantile with an exact streaming answer.
  if (Q >= 1.0)
    return Max;
  // Rank of the requested quantile, 0-based, nearest-rank style.
  const uint64_t Rank = static_cast<uint64_t>(
      Q * static_cast<double>(Count - 1) + 0.5);
  if (Rank < ZeroCount)
    return 0;
  uint64_t Seen = ZeroCount;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen > Rank) {
      // Midpoint of the bucket (gamma^(i-1), gamma^i]: gamma^i * 2/(1+gamma)
      // is the relative-error-centered representative value.
      const double Hi =
          std::pow(Gamma, static_cast<double>(IndexOffset +
                                              static_cast<int>(I)));
      return Hi * 2.0 / (1.0 + Gamma);
    }
  }
  return Max;
}

void QuantileSketch::clear() {
  Buckets.clear();
  IndexOffset = 0;
  ZeroCount = 0;
  Count = 0;
  Sum = 0;
  Max = 0;
}

} // namespace gc
