//===- server.cpp - Inference server with dynamic micro-batching ----------===//

#include "serve/server.h"

#include "support/env.h"

#include <algorithm>
#include <cstring>

namespace gc {
namespace serve {

using Clock = std::chrono::steady_clock;

namespace detail {

/// One graph boundary tensor as the admission validator sees it: dtype,
/// declared shape, whether dim 0 is the dynamic batch, and the byte size
/// of one row (for dynamic ports) or of the whole tensor (static ports).
struct Port {
  DataType Ty = DataType::F32;
  std::vector<int64_t> Shape;
  bool Dynamic = false;
  int64_t RowBytes = 0;
};

/// The response state shared between a Ticket and the server: the
/// caller's tensor bindings plus the completion latch. Kept on a
/// shared_ptr so tickets stay answerable after the Server is gone.
struct RequestState {
  std::vector<runtime::TensorData *> Inputs, Outputs;
  int64_t Rows = 0;
  bool HasDeadline = false;
  Clock::time_point Deadline{};
  Clock::time_point AdmitTime{};

  std::mutex Mutex;
  std::condition_variable Cv;
  bool Done = false;
  Status Result;
};

/// One loaded graph: its compiled form, the boundary port metadata the
/// admission validator checks against, and the pending-request queue the
/// dispatch workers coalesce from (guarded by the server's QMutex).
struct Model {
  api::CompiledGraphPtr CG;
  /// True when every input AND output carries the dynamic batch
  /// dimension, so whole requests can be stacked along dim 0.
  bool Batchable = false;
  std::vector<Port> InPorts, OutPorts;

  std::deque<std::shared_ptr<RequestState>> Pending;
  int64_t PendingRows = 0;
};

} // namespace detail

//===----------------------------------------------------------------------===//
// Ticket
//===----------------------------------------------------------------------===//

bool Ticket::query() const {
  if (!St)
    return false;
  std::lock_guard<std::mutex> Lock(St->Mutex);
  return St->Done;
}

Status Ticket::wait() const {
  if (!St)
    return Status::error(StatusCode::InvalidArgument,
                         "wait() on an invalid serve::Ticket");
  std::unique_lock<std::mutex> Lock(St->Mutex);
  St->Cv.wait(Lock, [&] { return St->Done; });
  return St->Result;
}

Status Ticket::waitFor(int64_t TimeoutMs) const {
  if (!St)
    return Status::error(StatusCode::InvalidArgument,
                         "waitFor() on an invalid serve::Ticket");
  std::unique_lock<std::mutex> Lock(St->Mutex);
  if (!St->Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                       [&] { return St->Done; }))
    return Status::error(StatusCode::DeadlineExceeded,
                         "serve::Ticket::waitFor timed out; the request is "
                         "still in flight");
  return St->Result;
}

//===----------------------------------------------------------------------===//
// Server: construction / shutdown
//===----------------------------------------------------------------------===//

static ServerOptions resolveOptions(ServerOptions O) {
  auto Clamp = [](int64_t V, int64_t Lo, int64_t Hi) {
    return std::min(std::max(V, Lo), Hi);
  };
  if (O.MaxBatch <= 0)
    O.MaxBatch = getEnvInt("GC_SERVE_MAX_BATCH", 32);
  O.MaxBatch = Clamp(O.MaxBatch, 1, 65536);
  if (O.LingerUs < 0)
    O.LingerUs = getEnvInt("GC_SERVE_LINGER_US", 200);
  O.LingerUs = Clamp(O.LingerUs, 0, 10'000'000);
  if (O.QueueCap <= 0)
    O.QueueCap = getEnvInt("GC_SERVE_QUEUE_CAP", 1024);
  O.QueueCap = Clamp(O.QueueCap, 1, int64_t(1) << 20);
  if (O.Workers <= 0)
    O.Workers = 2;
  O.Workers = int(Clamp(O.Workers, 1, 64));
  return O;
}

Server::Server(ServerOptions O, core::CompileOptions CompileOpts)
    : Opts(resolveOptions(O)), Sess(CompileOpts), Str(Sess.stream()),
      StartTime(Clock::now()),
      BatchFill(static_cast<size_t>(Opts.MaxBatch), 0) {
  Workers.reserve(static_cast<size_t>(Opts.Workers));
  for (int I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> Lock(QMutex);
    Stopping = true;
  }
  QCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

//===----------------------------------------------------------------------===//
// load / submit
//===----------------------------------------------------------------------===//

Expected<ModelId> Server::load(const graph::Graph &G) {
  auto Compiled = Sess.compile(G);
  if (!Compiled)
    return Compiled.status();

  auto M = std::make_unique<detail::Model>();
  M->CG = Compiled.takeValue();

  // Capture the boundary port metadata from the source graph (the
  // CompiledGraph keeps its own copy private). Coalescing stacks whole
  // requests along dim 0, which is only sound when EVERY boundary tensor
  // carries the dynamic batch dimension — a static side input would need
  // per-request values the stacked execution cannot represent.
  auto CapturePorts = [&](const std::vector<int64_t> &Ids,
                          std::vector<detail::Port> &Ports) {
    bool AllDynamic = true;
    for (int64_t Id : Ids) {
      const graph::LogicalTensor &T = G.tensor(Id);
      detail::Port P;
      P.Ty = T.Ty;
      P.Shape = T.Shape;
      P.Dynamic = T.hasDynamicBatch();
      int64_t Elems = 1;
      for (size_t D = P.Dynamic ? 1 : 0; D < P.Shape.size(); ++D)
        Elems *= P.Shape[D];
      P.RowBytes = Elems * int64_t(dataTypeSize(P.Ty));
      AllDynamic &= P.Dynamic;
      Ports.push_back(std::move(P));
    }
    return AllDynamic;
  };
  bool InsDynamic = CapturePorts(G.inputs(), M->InPorts);
  bool OutsDynamic = CapturePorts(G.outputs(), M->OutPorts);
  M->Batchable = M->CG->isPolymorphic() && InsDynamic && OutsDynamic;

  std::lock_guard<std::mutex> Lock(QMutex);
  if (Stopping)
    return Status::error(StatusCode::Unavailable,
                         "serve::Server is shutting down");
  Models.push_back(std::move(M));
  return Models.size() - 1;
}

/// Validates one request boundary side against the port metadata.
/// Returns the request's row count through \p Rows (dynamic ports must
/// agree; pure-static models report 1).
static Status validateSide(const char *Side,
                           const std::vector<detail::Port> &Ports,
                           const std::vector<runtime::TensorData *> &Ts,
                           int64_t &Rows) {
  if (Ts.size() != Ports.size())
    return Status::error(StatusCode::InvalidArgument,
                         std::string("serve::submit: expected ") +
                             std::to_string(Ports.size()) + " " + Side +
                             "s, got " + std::to_string(Ts.size()));
  for (size_t I = 0; I < Ports.size(); ++I) {
    const detail::Port &P = Ports[I];
    runtime::TensorData *T = Ts[I];
    if (!T || !T->valid())
      return Status::error(StatusCode::InvalidArgument,
                           std::string("serve::submit: ") + Side + " " +
                               std::to_string(I) + " is null or unallocated");
    if (T->dtype() != P.Ty)
      return Status::error(StatusCode::InvalidArgument,
                           std::string("serve::submit: ") + Side + " " +
                               std::to_string(I) + " dtype mismatch");
    const std::vector<int64_t> &S = T->shape();
    if (S.size() != P.Shape.size())
      return Status::error(StatusCode::InvalidArgument,
                           std::string("serve::submit: ") + Side + " " +
                               std::to_string(I) + " rank mismatch");
    for (size_t D = 0; D < S.size(); ++D) {
      if (D == 0 && P.Dynamic) {
        if (S[0] <= 0)
          return Status::error(StatusCode::InvalidArgument,
                               std::string("serve::submit: ") + Side + " " +
                                   std::to_string(I) +
                                   " needs a positive batch dimension");
        if (Rows == 0)
          Rows = S[0];
        else if (Rows != S[0])
          return Status::error(
              StatusCode::InvalidArgument,
              std::string("serve::submit: ") + Side + " " +
                  std::to_string(I) +
                  " disagrees on the request batch: saw " +
                  std::to_string(S[0]) + " after " + std::to_string(Rows));
        continue;
      }
      if (S[D] != P.Shape[D])
        return Status::error(StatusCode::InvalidArgument,
                             std::string("serve::submit: ") + Side + " " +
                                 std::to_string(I) + " dimension " +
                                 std::to_string(D) + " mismatch");
    }
  }
  return Status::ok();
}

Expected<Ticket>
Server::submit(ModelId MId,
               const std::vector<runtime::TensorData *> &Inputs,
               const std::vector<runtime::TensorData *> &Outputs,
               const RequestOptions &ReqOpts) {
  detail::Model *M = nullptr;
  {
    std::lock_guard<std::mutex> Lock(QMutex);
    if (MId >= Models.size())
      return Status::error(StatusCode::NotFound,
                           "serve::submit: unknown model id " +
                               std::to_string(MId));
    M = Models[MId].get();
  }

  // Validation reads only immutable model metadata — outside the lock.
  int64_t Rows = 0;
  if (Status S = validateSide("input", M->InPorts, Inputs, Rows); !S.isOk())
    return S;
  if (Status S = validateSide("output", M->OutPorts, Outputs, Rows);
      !S.isOk())
    return S;
  if (Rows == 0)
    Rows = 1; // fully static model: one request == one execution

  if (ReqOpts.TimeoutUs < 0) {
    RejectedDeadline.fetch_add(1, std::memory_order_relaxed);
    return Status::error(StatusCode::DeadlineExceeded,
                         "serve::submit: request deadline already expired "
                         "at admission");
  }

  auto R = std::make_shared<detail::RequestState>();
  R->Inputs = Inputs;
  R->Outputs = Outputs;
  R->Rows = Rows;
  R->AdmitTime = Clock::now();
  if (ReqOpts.TimeoutUs > 0) {
    R->HasDeadline = true;
    R->Deadline = R->AdmitTime + std::chrono::microseconds(ReqOpts.TimeoutUs);
  }

  {
    std::lock_guard<std::mutex> Lock(QMutex);
    if (Stopping)
      return Status::error(StatusCode::Unavailable,
                           "serve::Server is shutting down");
    if (QueuedRequests >= static_cast<size_t>(Opts.QueueCap)) {
      RejectedQueueFull.fetch_add(1, std::memory_order_relaxed);
      return Status::error(
          StatusCode::ResourceExhausted,
          "serve::submit: admission queue full (" +
              std::to_string(Opts.QueueCap) +
              " requests; raise GC_SERVE_QUEUE_CAP or retry after the "
              "backlog drains)");
    }
    M->Pending.push_back(R);
    M->PendingRows += Rows;
    ++QueuedRequests;
  }
  Admitted.fetch_add(1, std::memory_order_relaxed);
  QCv.notify_one();
  return Ticket(R);
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

void Server::workerLoop() {
  std::unique_lock<std::mutex> Lock(QMutex);
  for (;;) {
    // Find a model worth flushing; otherwise compute the earliest linger
    // expiry to sleep until.
    detail::Model *Ready = nullptr;
    Trigger Why = Trigger::Size;
    bool HaveWakeup = false;
    Clock::time_point Wakeup{};
    Clock::time_point Now = Clock::now();
    for (auto &MPtr : Models) {
      detail::Model &M = *MPtr;
      if (M.Pending.empty())
        continue;
      if (Stopping) {
        Ready = &M;
        Why = Trigger::Drain;
        break;
      }
      if (!M.Batchable || M.PendingRows >= Opts.MaxBatch) {
        Ready = &M;
        Why = Trigger::Size;
        break;
      }
      Clock::time_point Expiry =
          M.Pending.front()->AdmitTime + std::chrono::microseconds(Opts.LingerUs);
      if (Now >= Expiry) {
        Ready = &M;
        Why = Trigger::Linger;
        break;
      }
      if (!HaveWakeup || Expiry < Wakeup) {
        HaveWakeup = true;
        Wakeup = Expiry;
      }
    }

    if (!Ready) {
      if (Stopping && QueuedRequests == 0)
        return;
      if (HaveWakeup)
        QCv.wait_until(Lock, Wakeup);
      else
        QCv.wait(Lock);
      continue;
    }

    // Pop whole requests greedily while they fit the batch cap; the first
    // one is always taken even when it alone exceeds the cap.
    std::vector<std::shared_ptr<detail::RequestState>> Batch;
    int64_t Taken = 0;
    while (!Ready->Pending.empty()) {
      auto &Front = Ready->Pending.front();
      if (!Batch.empty() &&
          (!Ready->Batchable || Taken + Front->Rows > Opts.MaxBatch))
        break;
      Taken += Front->Rows;
      Batch.push_back(std::move(Front));
      Ready->Pending.pop_front();
      Ready->PendingRows -= Batch.back()->Rows;
      --QueuedRequests;
      if (!Ready->Batchable)
        break;
    }

    Lock.unlock();
    processBatch(*Ready, std::move(Batch), Why);
    Lock.lock();
  }
}

void Server::processBatch(
    detail::Model &M,
    std::vector<std::shared_ptr<detail::RequestState>> Batch, Trigger Why) {
  switch (Why) {
  case Trigger::Size:
    SizeFlushes.fetch_add(1, std::memory_order_relaxed);
    break;
  case Trigger::Linger:
    LingerFlushes.fetch_add(1, std::memory_order_relaxed);
    break;
  case Trigger::Drain:
    DrainFlushes.fetch_add(1, std::memory_order_relaxed);
    break;
  }

  // A deadline that expired while the request lingered in the queue
  // retires it here, before it can cost its batchmates anything.
  Clock::time_point Now = Clock::now();
  std::vector<std::shared_ptr<detail::RequestState>> Live;
  Live.reserve(Batch.size());
  for (auto &R : Batch) {
    if (R->HasDeadline && Now >= R->Deadline)
      retireRequest(*R,
                    Status::error(StatusCode::DeadlineExceeded,
                                  "serve: request deadline expired while "
                                  "queued for batching"),
                    Now);
    else
      Live.push_back(std::move(R));
  }
  if (Live.empty())
    return;

  // The batch deadline is the MAX over member deadlines, and only when
  // every member has one — so a single tight deadline can never abort
  // work its batchmates still want.
  api::SubmitOptions SO;
  bool AllDeadlines = true;
  Clock::time_point MaxDeadline{};
  for (auto &R : Live) {
    if (!R->HasDeadline) {
      AllDeadlines = false;
      break;
    }
    MaxDeadline = std::max(MaxDeadline, R->Deadline);
  }
  if (AllDeadlines) {
    auto RemainUs = std::chrono::duration_cast<std::chrono::microseconds>(
                        MaxDeadline - Now)
                        .count();
    SO.TimeoutMs = std::max<int64_t>(1, (RemainUs + 999) / 1000);
  }

  int64_t LiveRows = 0;
  for (auto &R : Live)
    LiveRows += R->Rows;

  Status ExecStatus = Status::ok();
  bool Scattered = false;
  std::vector<runtime::TensorData> BOut;

  if (Live.size() == 1) {
    // Solo batch (including every non-batchable model): the request's
    // own tensors pass straight through — no gather/scatter copies.
    api::Event E = Str.submit(M.CG, Live[0]->Inputs, Live[0]->Outputs, SO);
    ExecStatus = E.wait();
    Scattered = true;
  } else {
    // Gather: stack each request's rows along dim 0 of fresh batch
    // tensors. Every port of a batchable model is dynamic, so one
    // memcpy of Rows*RowBytes per port moves a whole request.
    std::vector<runtime::TensorData> BIn;
    std::vector<runtime::TensorData *> BInP, BOutP;
    BIn.reserve(M.InPorts.size());
    BOut.reserve(M.OutPorts.size());
    for (size_t I = 0; I < M.InPorts.size(); ++I) {
      std::vector<int64_t> Shape = M.InPorts[I].Shape;
      Shape[0] = LiveRows;
      BIn.emplace_back(M.InPorts[I].Ty, std::move(Shape));
      char *Dst = BIn.back().dataAs<char>();
      for (auto &R : Live) {
        int64_t Bytes = R->Rows * M.InPorts[I].RowBytes;
        std::memcpy(Dst, R->Inputs[I]->data(), size_t(Bytes));
        Dst += Bytes;
      }
      BInP.push_back(&BIn.back());
    }
    for (size_t I = 0; I < M.OutPorts.size(); ++I) {
      std::vector<int64_t> Shape = M.OutPorts[I].Shape;
      Shape[0] = LiveRows;
      BOut.emplace_back(M.OutPorts[I].Ty, std::move(Shape));
      BOutP.push_back(&BOut.back());
    }

    api::Event E = Str.submit(M.CG, BInP, BOutP, SO);
    ExecStatus = E.wait();
  }

  Clock::time_point End = Clock::now();

  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    size_t Fill = size_t(std::min<int64_t>(LiveRows, Opts.MaxBatch)) - 1;
    ++BatchFill[Fill];
  }
  Batches.fetch_add(1, std::memory_order_relaxed);
  BatchedRows.fetch_add(uint64_t(LiveRows), std::memory_order_relaxed);

  // Retire every member with its PER-REQUEST status. A member whose own
  // deadline passed during execution gets DeadlineExceeded even when the
  // batch succeeded (its rows are not copied back); a batch failure
  // refines to DeadlineExceeded for expired members and propagates
  // verbatim to the rest.
  for (auto &R : Live) {
    bool Expired = R->HasDeadline && End >= R->Deadline;
    if (!ExecStatus.isOk()) {
      retireRequest(*R,
                    Expired ? Status::error(
                                  StatusCode::DeadlineExceeded,
                                  "serve: request deadline expired during "
                                  "batch execution")
                            : ExecStatus,
                    End);
      continue;
    }
    if (Expired) {
      retireRequest(*R,
                    Status::error(StatusCode::DeadlineExceeded,
                                  "serve: request deadline expired during "
                                  "batch execution"),
                    End);
      continue;
    }
    if (!Scattered) {
      // Scatter this request's output rows back into its tensors.
      int64_t RowOffset = 0;
      for (auto &Prev : Live) {
        if (Prev.get() == R.get())
          break;
        RowOffset += Prev->Rows;
      }
      for (size_t I = 0; I < M.OutPorts.size(); ++I) {
        const char *Src = BOut[I].dataAs<char>() +
                          RowOffset * M.OutPorts[I].RowBytes;
        std::memcpy(R->Outputs[I]->data(), Src,
                    size_t(R->Rows * M.OutPorts[I].RowBytes));
      }
    }
    retireRequest(*R, Status::ok(), End);
  }
}

void Server::retireRequest(detail::RequestState &R, Status S,
                           Clock::time_point End) {
  double LatencyUs =
      double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                 End - R.AdmitTime)
                 .count()) /
      1000.0;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Latency.record(LatencyUs);
  }
  if (S.isOk()) {
    NumCompleted.fetch_add(1, std::memory_order_relaxed);
  } else {
    NumFailed.fetch_add(1, std::memory_order_relaxed);
    if (S.code() == StatusCode::DeadlineExceeded)
      NumDeadline.fetch_add(1, std::memory_order_relaxed);
    else if (S.code() == StatusCode::Cancelled)
      NumCancelled.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Result = std::move(S);
    R.Done = true;
  }
  R.Cv.notify_all();
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

ServerStats Server::stats() const {
  ServerStats S;
  S.Admitted = Admitted.load(std::memory_order_relaxed);
  S.RejectedQueueFull = RejectedQueueFull.load(std::memory_order_relaxed);
  S.RejectedDeadline = RejectedDeadline.load(std::memory_order_relaxed);
  S.Completed = NumCompleted.load(std::memory_order_relaxed);
  S.Failed = NumFailed.load(std::memory_order_relaxed);
  S.DeadlineExceeded = NumDeadline.load(std::memory_order_relaxed);
  S.Cancelled = NumCancelled.load(std::memory_order_relaxed);
  S.Batches = Batches.load(std::memory_order_relaxed);
  S.BatchedRows = BatchedRows.load(std::memory_order_relaxed);
  S.SizeFlushes = SizeFlushes.load(std::memory_order_relaxed);
  S.LingerFlushes = LingerFlushes.load(std::memory_order_relaxed);
  S.DrainFlushes = DrainFlushes.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(QMutex);
    S.QueueDepth = QueuedRequests;
  }
  S.ElapsedS = std::chrono::duration<double>(Clock::now() - StartTime).count();
  S.Qps = S.ElapsedS > 0 ? double(S.Completed) / S.ElapsedS : 0;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    S.BatchFill = BatchFill;
    S.LatencyCount = Latency.count();
    if (S.LatencyCount > 0) {
      S.P50Us = Latency.quantile(0.50);
      S.P95Us = Latency.quantile(0.95);
      S.P99Us = Latency.quantile(0.99);
      S.MeanUs = Latency.mean();
    }
  }
  return S;
}

} // namespace serve
} // namespace gc
