//===- server.h - Inference server with dynamic micro-batching --*- C++ -*-===//
///
/// \file
/// The serving front-end over the Session/Stream/Event engine: a Server
/// owns a Session and its batch-polymorphic CompiledGraphs, accepts many
/// concurrent in-flight Requests (per-request input tensors plus an
/// optional deadline), coalesces compatible requests from a bounded
/// admission queue into one bucketed batch — flushed when the pending
/// rows reach the batch cap OR when the oldest request has lingered past
/// the linger budget, whichever fires first — executes the batch through
/// Stream::submit() and scatters the per-request output rows back.
/// Failure statuses (DeadlineExceeded, Cancelled, transient degradations)
/// propagate per REQUEST, never per batch: one late request does not
/// poison its batchmates.
///
///   serve::Server Srv;                         // knobs from env/options
///   auto M = Srv.load(G);                      // dynamic-batch graph
///   serve::Ticket T =
///       *Srv.submit(*M, {&In}, {&Out},
///                   serve::RequestOptions{/*TimeoutUs=*/5000});
///   if (Status S = T.wait(); !S.isOk()) ...;   // Out holds this
///                                              // request's rows
///
/// Environment knobs (ServerOptions twins; resolved at construction):
///   GC_SERVE_MAX_BATCH   rows coalesced into one batch   (default 32)
///   GC_SERVE_LINGER_US   max µs the oldest request waits (default 200)
///   GC_SERVE_QUEUE_CAP   admission queue capacity        (default 1024)
///
/// Thread safety: load(), submit(), stats() and Ticket methods may be
/// called from any number of threads. Destroying the Server drains: new
/// admissions are refused (Unavailable), every already-admitted request
/// is answered, dispatch workers join. Tickets outlive the Server.
///
//===----------------------------------------------------------------------===//

#ifndef GC_SERVE_SERVER_H
#define GC_SERVE_SERVER_H

#include "api/session.h"
#include "support/quantile.h"
#include "support/status.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gc {
namespace serve {

class Server;

namespace detail {
struct RequestState;
struct Model;
} // namespace detail

/// Per-request options for Server::submit().
struct RequestOptions {
  /// Deadline in microseconds from admission. 0 = none. A positive value
  /// arms a deadline checked at flush time (expired requests retire
  /// DeadlineExceeded without poisoning batchmates), forwarded to
  /// Stream::submit() for the batch, and re-checked when the response is
  /// scattered. A NEGATIVE value is an already-expired deadline — the
  /// request is rejected at admission with DeadlineExceeded (lets retry
  /// layers pass a computed remaining budget straight through).
  int64_t TimeoutUs = 0;
};

/// Construction-time server configuration. Zero/negative sentinels defer
/// to the GC_SERVE_* environment knobs (see file header) and their
/// defaults.
struct ServerOptions {
  /// Max rows coalesced into one batch (<= 0: GC_SERVE_MAX_BATCH).
  /// A single request wider than the cap still executes, alone.
  int64_t MaxBatch = 0;
  /// Max microseconds the oldest pending request waits for batchmates
  /// before the batch flushes anyway (< 0: GC_SERVE_LINGER_US; 0 means
  /// flush immediately — no coalescing beyond what is already queued).
  int64_t LingerUs = -1;
  /// Admission queue capacity in requests; a full queue rejects
  /// admission with ResourceExhausted (<= 0: GC_SERVE_QUEUE_CAP).
  int64_t QueueCap = 0;
  /// Dispatch worker threads draining the admission queue (<= 0: 2).
  /// Each worker flushes and executes one batch at a time, so >1 lets
  /// batch executions overlap.
  int Workers = 0;
};

/// Point-in-time server statistics snapshot (Server::stats()). Counter
/// invariant (pinned by tests): LatencyCount == Completed + Failed, and
/// Admitted == Completed + Failed + QueueDepth + in-flight.
struct ServerStats {
  /// Requests accepted into the admission queue.
  uint64_t Admitted = 0;
  /// Admissions refused: queue full (ResourceExhausted).
  uint64_t RejectedQueueFull = 0;
  /// Admissions refused: deadline already expired (DeadlineExceeded).
  uint64_t RejectedDeadline = 0;
  /// Requests answered Ok.
  uint64_t Completed = 0;
  /// Requests answered with an error status (deadline, cancellation,
  /// execution failure).
  uint64_t Failed = 0;
  /// Subset of Failed: per-request DeadlineExceeded verdicts.
  uint64_t DeadlineExceeded = 0;
  /// Subset of Failed: requests cancelled (server shutdown).
  uint64_t Cancelled = 0;
  /// Batches executed.
  uint64_t Batches = 0;
  /// Rows executed across all batches.
  uint64_t BatchedRows = 0;
  /// Flush-trigger breakdown: pending rows reached MaxBatch / oldest
  /// request lingered past LingerUs / shutdown drain.
  uint64_t SizeFlushes = 0;
  uint64_t LingerFlushes = 0;
  uint64_t DrainFlushes = 0;
  /// Requests currently waiting in the admission queue (snapshot).
  uint64_t QueueDepth = 0;
  /// Batch-fill histogram: BatchFill[I] counts batches that executed
  /// I+1 rows (the last bucket also absorbs over-cap solo requests).
  std::vector<uint64_t> BatchFill;
  /// Seconds since server construction.
  double ElapsedS = 0;
  /// Completed / ElapsedS.
  double Qps = 0;
  /// Request latencies recorded (== Completed + Failed); admission
  /// rejections never enter the latency sketch.
  uint64_t LatencyCount = 0;
  /// Admission-to-retirement latency percentiles, microseconds, from the
  /// streaming quantile sketch (1% relative error).
  double P50Us = 0;
  double P95Us = 0;
  double P99Us = 0;
  /// Mean latency in microseconds.
  double MeanUs = 0;
};

/// Completion handle for one submitted request. Cheap shared handle;
/// valid after the Server is destroyed (the response state outlives it).
class Ticket {
public:
  /// \brief An invalid ticket (nothing submitted).
  Ticket() = default;

  /// \brief False for default-constructed tickets.
  bool valid() const { return St != nullptr; }
  /// \brief True once the request has been answered; never blocks.
  bool query() const;
  /// \brief Blocks until the request is answered and returns its Status.
  /// Ok means the request's rows are in the caller's output tensors.
  /// Safe to call repeatedly and from several threads.
  Status wait() const;
  /// \brief Like wait() but gives up after \p TimeoutMs milliseconds,
  /// returning DeadlineExceeded WITHOUT affecting the request (a later
  /// wait() still collects the real verdict).
  Status waitFor(int64_t TimeoutMs) const;

private:
  friend class Server;
  explicit Ticket(std::shared_ptr<detail::RequestState> S)
      : St(std::move(S)) {}
  std::shared_ptr<detail::RequestState> St;
};

/// Identifies one loaded graph on a Server.
using ModelId = size_t;

/// The inference server. See the file header for the execution model.
class Server {
public:
  /// \brief Creates a server: resolves the GC_SERVE_* knobs against
  /// \p Opts, builds the owned Session from \p CompileOpts and starts
  /// the dispatch workers.
  explicit Server(ServerOptions Opts = {},
                  core::CompileOptions CompileOpts = {});

  /// Drains and stops: refuses new admissions, answers every admitted
  /// request (queued ones flush immediately), joins the workers.
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// \brief Compiles \p G through the owned Session and registers it for
  /// serving. A graph whose every input/output carries the dynamic batch
  /// dimension (LogicalTensor::kDynamicDim) is served with cross-request
  /// coalescing; any other graph is served one request per execution.
  Expected<ModelId> load(const graph::Graph &G);

  /// \brief Admits one request against model \p M. \p Inputs /
  /// \p Outputs follow the source graph's declaration order; dynamic
  /// tensors carry this request's rows in dim 0 (all agreeing), static
  /// tensors match the graph shape exactly. The caller keeps the tensor
  /// storage alive and unmodified until the ticket completes.
  ///
  /// Errors at admission (nothing is queued): InvalidArgument for
  /// malformed boundaries, DeadlineExceeded for an already-expired
  /// deadline, ResourceExhausted when the admission queue is at
  /// GC_SERVE_QUEUE_CAP, Unavailable when the server is shutting down.
  Expected<Ticket> submit(ModelId M,
                          const std::vector<runtime::TensorData *> &Inputs,
                          const std::vector<runtime::TensorData *> &Outputs,
                          const RequestOptions &ReqOpts = {});

  /// \brief Statistics snapshot (cheap; counters are cumulative).
  ServerStats stats() const;

  /// \brief The resolved options (env knobs applied).
  const ServerOptions &options() const { return Opts; }
  /// \brief The owned session (e.g. for healthStats()).
  api::Session &session() { return Sess; }

private:
  enum class Trigger { Size, Linger, Drain };

  void workerLoop();
  /// Executes one flushed batch: drops expired requests, gathers rows,
  /// submits with the batch deadline, scatters rows back and retires
  /// every request with its per-request status.
  void processBatch(detail::Model &M,
                    std::vector<std::shared_ptr<detail::RequestState>> Batch,
                    Trigger Why);
  /// Answers one request: records its latency and outcome counters, then
  /// completes the ticket.
  void retireRequest(detail::RequestState &R, Status S,
                     std::chrono::steady_clock::time_point End);

  ServerOptions Opts; // resolved (no sentinels)
  api::Session Sess;
  api::Stream Str;
  std::chrono::steady_clock::time_point StartTime;

  /// Admission state: models' pending queues + global depth, guarded by
  /// QMutex; QCv wakes dispatch workers on enqueue/shutdown.
  mutable std::mutex QMutex;
  std::condition_variable QCv;
  std::vector<std::unique_ptr<detail::Model>> Models;
  size_t QueuedRequests = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;

  /// Outcome counters (atomics: bumped on hot paths, read by stats()).
  std::atomic<uint64_t> Admitted{0}, RejectedQueueFull{0},
      RejectedDeadline{0}, NumCompleted{0}, NumFailed{0}, NumDeadline{0},
      NumCancelled{0}, Batches{0}, BatchedRows{0}, SizeFlushes{0},
      LingerFlushes{0}, DrainFlushes{0};

  /// Latency sketch + batch-fill histogram, guarded by StatsMutex.
  mutable std::mutex StatsMutex;
  QuantileSketch Latency{0.01};
  std::vector<uint64_t> BatchFill;
};

} // namespace serve
} // namespace gc

#endif // GC_SERVE_SERVER_H
