//===- artifact.h - Compiled-partition (de)serialization --------*- C++ -*-===//
///
/// \file
/// The payload half of the persistent compiled-artifact cache: turning a
/// core::CompiledPartition into a self-contained byte payload and back.
/// runtime::ArtifactCache owns the file envelope (header, checksum, mmap,
/// atomic stores); this codec owns what the payload *means*.
///
/// A serialized artifact carries everything execution needs and nothing
/// the compiler needs: the optimized Graph IR (boundary + constants, for
/// binding resolution and the fold function), the fold graph and its
/// output ids, the entry function's buffer table and baked constants
/// (no Tensor IR body — the bytecode replaces it), the bytecode Program
/// with kernel calls recorded symbolically (tir::Intrinsic, relinked to
/// function pointers at load), the execution-time bindings, the
/// body-derived statistics that can no longer be recomputed, and the fold
/// function's outputs — the packed / compensated constant weights — so a
/// disk-warm process skips constant preprocessing on first execution.
///
/// Deserialization treats the payload as untrusted input: every read is
/// bounds-checked (support/serial.h), every enum range-validated, every
/// cross-reference (tensor ids, buffer ids, baked indices, binding
/// targets, buffer byte extents against their backing tensors) verified,
/// and the resulting graph and Program run through the static verifiers
/// unconditionally before the partition is handed out. A corrupt payload
/// yields a located Status — never undefined behavior — and the caller
/// falls back to a fresh compile.
///
/// Constants are not copied out of the payload: graph constant data and
/// baked function constants become TensorData views into the mmap'd span,
/// pinned by the partition (CompiledPartition::MappedPin) for its
/// lifetime. ByteWriter/ByteReader 8-align blobs so those views satisfy
/// natural scalar alignment.
///
//===----------------------------------------------------------------------===//

#ifndef GC_CORE_ARTIFACT_H
#define GC_CORE_ARTIFACT_H

#include "core/compiler.h"
#include "kernels/cpu_features.h"
#include "support/status.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace gc {
namespace core {

/// Version of the payload encoding this binary reads and writes. Bumped on
/// any layout change; also folded into buildHash() so stale entries miss
/// on the cache key before the payload version check ever runs.
///
/// v2 appended the folded-constants section: the fold function's outputs
/// (packed / compensated constant weights) ride in the payload, so a warm
/// load pre-populates the partition's ConstCache with zero-copy views and
/// the first execution skips the fold entirely.
constexpr uint32_t kArtifactPayloadVersion = 2;

/// Identity hash of this binary's compilation pipeline: payload version,
/// compiler identification and build timestamp. Two processes agree on it
/// only when they run the same build, which fences the native-endian,
/// struct-layout-trusting payload encoding off from foreign producers.
uint64_t buildHash();

/// The artifact cache key: FNV-1a over the canonical graph fingerprint,
/// every CompileOptions field that changes what compilePartition emits,
/// the resolved worker-thread count (lowering specializes loop structure
/// per thread count), the kernel dispatch \p Tier (an avx512 process must
/// never serve its artifact to a scalar one — the tiers pick different
/// blocking and pack layouts), and buildHash().
uint64_t artifactCacheKey(uint64_t GraphFingerprint,
                          const CompileOptions &Opts, int Threads,
                          kernels::KernelTier Tier);

/// Convenience overload keyed on the process's active kernel tier.
uint64_t artifactCacheKey(uint64_t GraphFingerprint,
                          const CompileOptions &Opts, int Threads);

/// Serializer/deserializer for CompiledPartition payloads. Stateless; a
/// struct (befriended by CompiledPartition) rather than free functions so
/// the partition exposes its internals to exactly one named type.
struct ArtifactCodec {
  /// Flattens \p P into a self-contained payload (no file envelope — the
  /// caller hands it to runtime::ArtifactCache::store). \p P must be a
  /// bytecode-backend partition; the Tensor IR body is not serialized.
  static std::vector<uint8_t> serialize(const CompiledPartition &P);

  /// Rebuilds a ready-to-execute partition from an untrusted payload
  /// span. \p Pin is whatever owns the span's lifetime (the mmap'd cache
  /// entry, or a test's buffer) and is retained by the partition for its
  /// zero-copy constant views; \p Pool is the execution thread pool to
  /// attach (must not be null). Fails with a located Status on any
  /// malformed, truncated or semantically inconsistent payload, and runs
  /// verify::verifyGraph + verify::verifyLoadedProgram unconditionally
  /// before returning.
  static Expected<std::shared_ptr<CompiledPartition>>
  deserialize(const void *Payload, size_t Bytes, std::shared_ptr<void> Pin,
              std::shared_ptr<runtime::ThreadPool> Pool);
};

} // namespace core
} // namespace gc

#endif // GC_CORE_ARTIFACT_H
