//===- compiler.h - Partition compile/execute engine -------------*- C++ -*-===//
///
/// \file
/// The compilation engine behind the public Session API (api/session.h),
/// mirroring the oneDNN Graph API flow (§VII): a Graph IR subgraph is
/// compiled into a CompiledPartition, then executed repeatedly with runtime
/// tensors. The first execution runs the fold function (constant weight
/// preprocessing); its outputs are cached and reused.
///
/// Preferred entry point (partitioning, fallback, compile cache):
/// \code
///   api::Session S;                        // owns options + thread pool
///   auto Compiled = S.compile(G);          // Expected<CompiledGraphPtr>
///   S.stream().execute(**Compiled, {&X}, {&Y});
/// \endcode
///
/// The legacy core::compileGraph() remains as a thin wrapper over a
/// one-partition Session for graphs known to be fully compilable.
///
//===----------------------------------------------------------------------===//

#ifndef GC_CORE_COMPILER_H
#define GC_CORE_COMPILER_H

#include "exec/backend.h"
#include "exec/executor.h"
#include "graph/graph.h"
#include "lower/driver.h"
#include "runtime/artifact_cache.h"
#include "runtime/const_cache.h"
#include "runtime/thread_pool.h"
#include "support/status.h"
#include "tir/eval.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace gc {
namespace core {

/// Resolves GC_PARTITION ("merge" | "split", default "merge"): whether
/// the partitioner separates independent dataflow components into their
/// own partitions (the async scheduler's parallelism source).
bool defaultSplitPartitions();
/// Resolves GC_SCHED ("serial" | "async", default "serial"): whether
/// Stream::execute routes multi-partition graphs through the async
/// dependency-DAG scheduler.
bool defaultAsyncExec();

/// How a batch-polymorphic CompiledGraph rounds a concrete batch to its
/// compilation bucket.
enum class BatchBucketing : uint8_t {
  Pow2,  ///< next power of two >= batch: few specializations, padded rows
  Exact, ///< one specialization per distinct batch: no padding, more
         ///< compiles
};

/// Resolves GC_BATCH_BUCKETS ("pow2" | "exact", default "pow2").
BatchBucketing defaultBatchBucketing();

/// Resolves GC_SPEC_CACHE: per-polymorphic-graph specialization cache
/// capacity (default 16, clamped to >= 1).
int defaultSpecCacheCap();

/// Rounds a concrete \p Batch (> 0) to its compilation bucket under
/// \p Policy; the bucket is always >= Batch.
int64_t batchBucket(int64_t Batch, BatchBucketing Policy);

/// Specialize-on-bind entry point: replaces every dynamic batch dimension
/// of \p G with \p Batch and validates the result, yielding the static
/// graph a polymorphic CompiledGraph compiles for one bucket.
Expected<graph::Graph> specializeForBatch(const graph::Graph &G,
                                          int64_t Batch);

/// Knobs of the whole compilation pipeline. The Enable* flags exist for
/// the paper's ablations; defaults reproduce the full compiler.
struct CompileOptions {
  /// Worker threads (0 = GC_NUM_THREADS or hardware concurrency).
  int Threads = 0;
  /// §V low-precision conversion (int8 rewrite of DQ->MatMul->Q chains).
  bool EnableLowPrecision = true;
  /// §V fine-grain fusion (anchor-committed fusible ops).
  bool EnableFineGrainFusion = true;
  /// §V coarse-grain fusion (parallel loop merging).
  bool EnableCoarseGrainFusion = true;
  /// §V layout propagation (blocked layouts + prepacked weights).
  bool EnableLayoutPropagation = true;
  /// §VI memory buffer reuse.
  bool EnableBufferReuse = true;
  /// §VII fast softmax (drop the max-subtraction).
  bool FastSoftmax = true;
  /// Emulate the "oneDNN primitives + post-op" baseline: per-primitive
  /// execution with prepacked weights, plain activations between
  /// primitives, post-op-API-shaped fusion only, no coarse-grain merging.
  bool PrimitivesMode = false;
  /// Which execution engine runs compiled partitions: the flat bytecode
  /// dispatch loop (default) or the tree-walking evaluator kept as the
  /// reference oracle. Defaults from GC_EXEC ("tree" | "bytecode").
  exec::Backend Exec = exec::defaultBackend();
  /// Partitioning policy: split independent dataflow components into
  /// separate partitions (enables branch-level overlap under the async
  /// scheduler) instead of merging them into maximal partitions.
  /// Defaults from GC_PARTITION ("merge" | "split").
  bool SplitIndependentPartitions = defaultSplitPartitions();
  /// Route api::Stream::execute of multi-partition graphs through the
  /// async dependency-DAG scheduler (submit + wait) so independent
  /// partitions overlap even for synchronous callers. Defaults from
  /// GC_SCHED ("serial" | "async").
  bool AsyncExec = defaultAsyncExec();
  /// Batch-bucket rounding policy for batch-polymorphic graphs. Defaults
  /// from GC_BATCH_BUCKETS ("pow2" | "exact").
  BatchBucketing Bucketing = defaultBatchBucketing();
  /// Specializations kept per polymorphic CompiledGraph (LRU beyond this).
  /// Defaults from GC_SPEC_CACHE (16, min 1).
  int SpecCacheCap = defaultSpecCacheCap();
  /// Persistent compiled-artifact cache: whether Session may load
  /// partition artifacts from disk and/or store fresh compiles. Defaults
  /// from GC_CACHE ("off" | "read" | "rw"). Only the bytecode backend
  /// participates (a disk-loaded artifact carries bytecode, not the
  /// Tensor IR tree the reference evaluator walks).
  runtime::CacheMode CacheMode = runtime::defaultCacheMode();
  /// Artifact cache directory. Defaults from GC_CACHE_DIR (see
  /// runtime/artifact_cache.h for the fallback chain).
  std::string CacheDir = runtime::defaultCacheDir();
  /// LRU byte cap of the artifact cache directory (<= 0 = unlimited).
  /// Defaults from GC_CACHE_MAX_BYTES (256 MiB).
  int64_t CacheMaxBytes = runtime::defaultCacheMaxBytes();
};

/// Compile options preset for the primitives-library baseline of §VII.
CompileOptions primitivesBaselineOptions(int Threads = 0);

/// Statistics describing one compiled partition; used by tests, the
/// ablation benches and EXPERIMENTS.md.
struct PartitionStats {
  int CoarseGrainMerges = 0;
  int ParallelNests = 0;
  int64_t ScratchArenaBytes = 0;
  int64_t ScratchArenaBytesNoReuse = 0;
  /// Fold-dependent: 0 until the first execute() ran the fold function.
  size_t FoldedTensors = 0;
  /// Fold-dependent: 0 until the first execute() ran the fold function.
  int64_t FoldedBytes = 0;
};

/// A compiled DNN computation (sub)graph ready for repeated execution.
///
/// Thread safety: execute() may be called concurrently from any number of
/// threads. The fold function runs exactly once (std::call_once); each
/// execution binds its buffers on a private execution state (a bytecode
/// executor or a tree evaluator, per CompileOptions::Exec) drawn from a
/// small pool, whose register frames and scratch arenas belong to that
/// execution rather than to the partition — the bytecode program itself
/// is compiled once and shared. All inspection accessors are const and
/// safe to call at any time, including before the first execution.
class CompiledPartition {
public:
  /// Executes the partition. \p Inputs follow the source graph's input
  /// declaration order; \p Outputs its output order (caller-allocated,
  /// plain row-major, logical shapes). The first call runs the fold
  /// function and populates the constant cache. Returns InvalidArgument
  /// on arity mismatch or null tensors (internal binding invariants still
  /// abort loudly, so callers ignoring the Status cannot silently read an
  /// unwritten output).
  Status execute(const std::vector<runtime::TensorData *> &Inputs,
                 const std::vector<runtime::TensorData *> &Outputs);

  /// Runs the fold function (constant weight packing) now if it has not
  /// run yet; otherwise a no-op. execute() pays this lazily on its first
  /// call — services that want the first request served at full speed
  /// call this at load time instead. Partitions deserialized from the
  /// artifact cache arrive with the fold pre-fired from the payload's
  /// shipped outputs, so for them this never packs anything.
  void ensureFolded();

  /// Post-optimization Graph IR (inspection / tests).
  const graph::Graph &optimizedGraph() const { return OptimizedG; }
  /// Lowered entry function (inspection / tests).
  const tir::Func &entry() const { return Prog.Entry; }
  /// Compiled bytecode program (inspection / tests).
  const exec::Program &bytecode() const { return *Prog.Bytecode; }
  /// Execution engine this partition runs on.
  exec::Backend backend() const { return Backend; }
  /// Compilation statistics. Safe before the first execution; the
  /// Folded* fields read as 0 until the fold function has run.
  PartitionStats stats() const;
  /// Execution states currently idle in the lease pool (diagnostics; the
  /// peak equals the peak number of overlapping executions, capped by
  /// GC_EXEC_POOL).
  size_t idleExecStates() const;
  /// Pre-builds up to \p N idle execution states (bounded by the pool
  /// cap) so a burst of overlapping submissions skips the first-use
  /// construction cost inside the scheduled tasks.
  void prewarmExecStates(size_t N);
  /// Logical shapes of the graph outputs, in output order.
  std::vector<std::vector<int64_t>> outputShapes() const;
  /// Thread pool executing this partition.
  runtime::ThreadPool &threadPool() const { return *Pool; }

private:
  friend Expected<std::shared_ptr<CompiledPartition>>
  compilePartition(const graph::Graph &G, const CompileOptions &Opts,
                   std::shared_ptr<runtime::ThreadPool> Pool);
  /// The persistent-cache codec (core/artifact.cpp) serializes and
  /// rebuilds partitions field by field.
  friend struct ArtifactCodec;

  CompiledPartition() = default;

  void runFoldFunction();

  /// One pooled execution state: exactly one of the two engines is set,
  /// per the partition's backend. Each execute() owns its state for the
  /// duration of the call, making concurrent executions independent.
  struct ExecState {
    std::unique_ptr<tir::Evaluator> Tree;
    std::unique_ptr<exec::Executor> Byte;
    void bindBuffer(int BufferId, void *Ptr) {
      if (Byte)
        Byte->bindBuffer(BufferId, Ptr);
      else
        Tree->bindBuffer(BufferId, Ptr);
    }
    void run() {
      if (Byte)
        Byte->run();
      else
        Tree->run();
    }
  };

  /// Takes an idle execution state from the pool, building one when the
  /// pool is empty. Construction allocates register frames and scratch
  /// arenas, so it is fallible (fault site "exec.state"); pool hits never
  /// fail.
  Expected<ExecState> acquireExecState();
  void releaseExecState(ExecState State);

  /// A lower::Binding with the execute-argument position resolved at
  /// compile time (Input/Output kinds), so binding buffers is index
  /// arithmetic instead of per-execution id searches.
  struct ResolvedBinding {
    int BufferId = -1;
    int64_t TensorId = -1;
    lower::BindingKind Kind = lower::BindingKind::Input;
    size_t Arg = 0; ///< index into execute()'s Inputs/Outputs
  };
  void resolveBindings();

  graph::Graph OptimizedG;
  lower::LoweredProgram Prog;
  runtime::ConstCache Cache;
  std::shared_ptr<runtime::ThreadPool> Pool;
  exec::Backend Backend = exec::Backend::Bytecode;
  std::once_flag FoldOnce;
  std::atomic<bool> FoldDone{false};
  mutable std::mutex EvalMutex;
  std::vector<ExecState> IdleExecs;
  std::vector<int64_t> InputIds;  // optimized-graph ids in input order
  std::vector<int64_t> OutputIds; // optimized-graph ids in output order
  std::vector<ResolvedBinding> Bindings; // Prog.Bindings, positions resolved

  /// Disk-loaded partitions carry no Tensor IR body (only bytecode), so
  /// body-derived statistics are serialized instead of recomputed. -1 =
  /// compiled in-process, derive from Prog.Entry.
  int LoadedParallelNests = -1;
  /// Pins the mmap'd cache entry backing zero-copy constant views
  /// (OptimizedG/FoldGraph payloads, Entry.Baked) for this partition's
  /// lifetime. Null for in-process compiles.
  std::shared_ptr<void> MappedPin;
};

/// Compiles \p G (copied; the original is untouched) with \p Opts into one
/// partition, reporting failures as Status instead of aborting. \p Pool is
/// the execution thread pool to attach (shared across the partitions of a
/// Session); pass nullptr to derive one from Opts.Threads.
Expected<std::shared_ptr<CompiledPartition>>
compilePartition(const graph::Graph &G, const CompileOptions &Opts,
                 std::shared_ptr<runtime::ThreadPool> Pool = nullptr);

/// Legacy convenience wrapper: compiles \p G through a one-partition
/// api::Session and returns the sole compiled partition. Aborts when the
/// graph is invalid or contains an op the compiler cannot lower — use
/// api::Session::compile for graphs that may need the reference fallback.
std::shared_ptr<CompiledPartition> compileGraph(const graph::Graph &G,
                                                const CompileOptions &Opts);

/// Returns the process-wide default thread pool as a non-owning handle,
/// sharable alongside session-owned pools.
std::shared_ptr<runtime::ThreadPool> globalThreadPool();

/// Executes the fold graph: reference evaluation with layout-aware Reorder
/// packing. Exposed for tests of constant weight preprocessing.
void runFoldGraph(const graph::Graph &FoldGraph,
                  const std::vector<int64_t> &FoldOutputs,
                  runtime::ConstCache &Cache);

} // namespace core
} // namespace gc

#endif // GC_CORE_COMPILER_H
