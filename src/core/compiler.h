//===- compiler.h - Public compile/execute API -------------------*- C++ -*-===//
///
/// \file
/// The public entry point of the oneDNN Graph Compiler reproduction,
/// mirroring the oneDNN Graph API flow (§VII): build a Graph IR graph,
/// compile it into a CompiledPartition, then execute it repeatedly with
/// runtime tensors. The first execution runs the fold function (constant
/// weight preprocessing); its outputs are cached and reused.
///
/// Typical use:
/// \code
///   graph::Graph G = ...;                 // matmuls, eltwise, quant ops
///   core::CompileOptions Opts;
///   auto Partition = core::compileGraph(G, Opts);
///   Partition->execute({&X}, {&Y});       // graph-input / output order
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GC_CORE_COMPILER_H
#define GC_CORE_COMPILER_H

#include "graph/graph.h"
#include "lower/driver.h"
#include "runtime/const_cache.h"
#include "runtime/thread_pool.h"
#include "tir/eval.h"

#include <memory>

namespace gc {
namespace core {

/// Knobs of the whole compilation pipeline. The Enable* flags exist for
/// the paper's ablations; defaults reproduce the full compiler.
struct CompileOptions {
  /// Worker threads (0 = GC_NUM_THREADS or hardware concurrency).
  int Threads = 0;
  /// §V low-precision conversion (int8 rewrite of DQ->MatMul->Q chains).
  bool EnableLowPrecision = true;
  /// §V fine-grain fusion (anchor-committed fusible ops).
  bool EnableFineGrainFusion = true;
  /// §V coarse-grain fusion (parallel loop merging).
  bool EnableCoarseGrainFusion = true;
  /// §V layout propagation (blocked layouts + prepacked weights).
  bool EnableLayoutPropagation = true;
  /// §VI memory buffer reuse.
  bool EnableBufferReuse = true;
  /// §VII fast softmax (drop the max-subtraction).
  bool FastSoftmax = true;
  /// Emulate the "oneDNN primitives + post-op" baseline: per-primitive
  /// execution with prepacked weights, plain activations between
  /// primitives, post-op-API-shaped fusion only, no coarse-grain merging.
  bool PrimitivesMode = false;
};

/// Compile options preset for the primitives-library baseline of §VII.
CompileOptions primitivesBaselineOptions(int Threads = 0);

/// Statistics describing one compiled partition; used by tests, the
/// ablation benches and EXPERIMENTS.md.
struct PartitionStats {
  int CoarseGrainMerges = 0;
  int ParallelNests = 0;
  int64_t ScratchArenaBytes = 0;
  int64_t ScratchArenaBytesNoReuse = 0;
  size_t FoldedTensors = 0;
  int64_t FoldedBytes = 0;
};

/// A compiled DNN computation (sub)graph ready for repeated execution.
class CompiledPartition {
public:
  /// Executes the partition. \p Inputs follow the source graph's input
  /// declaration order; \p Outputs its output order (caller-allocated,
  /// plain row-major, logical shapes). The first call runs the fold
  /// function and populates the constant cache.
  void execute(const std::vector<runtime::TensorData *> &Inputs,
               const std::vector<runtime::TensorData *> &Outputs);

  /// Post-optimization Graph IR (inspection / tests).
  const graph::Graph &optimizedGraph() const { return OptimizedG; }
  /// Lowered entry function (inspection / tests).
  const tir::Func &entry() const { return Prog.Entry; }
  /// Compilation statistics.
  PartitionStats stats() const;
  /// Logical shapes of the graph outputs, in output order.
  std::vector<std::vector<int64_t>> outputShapes() const;
  /// Thread pool executing this partition.
  runtime::ThreadPool &threadPool() { return *Pool; }

private:
  friend std::unique_ptr<CompiledPartition>
  compileGraph(const graph::Graph &G, const CompileOptions &Opts);

  void runFoldFunction();

  graph::Graph OptimizedG;
  lower::LoweredProgram Prog;
  runtime::ConstCache Cache;
  runtime::ThreadPool *Pool = nullptr;
  std::unique_ptr<runtime::ThreadPool> OwnedPool;
  std::unique_ptr<tir::Evaluator> Eval;
  std::vector<int64_t> InputIds;  // optimized-graph ids in input order
  std::vector<int64_t> OutputIds; // optimized-graph ids in output order
};

/// Compiles \p G (copied; the original is untouched) with \p Opts.
std::unique_ptr<CompiledPartition> compileGraph(const graph::Graph &G,
                                                const CompileOptions &Opts);

/// Executes the fold graph: reference evaluation with layout-aware Reorder
/// packing. Exposed for tests of constant weight preprocessing.
void runFoldGraph(const graph::Graph &FoldGraph,
                  const std::vector<int64_t> &FoldOutputs,
                  runtime::ConstCache &Cache);

} // namespace core
} // namespace gc

#endif // GC_CORE_COMPILER_H
