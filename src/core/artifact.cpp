//===- artifact.cpp - Compiled-partition (de)serialization ----------------===//
///
/// \file
/// Payload codec of the persistent compiled-artifact cache (core/artifact.h).
/// The write side walks public structures; the read side trusts nothing:
/// bounds-checked primitives, range-validated enums, cross-reference and
/// byte-extent checks, then the static verifiers. See the header for the
/// contract.
///
//===----------------------------------------------------------------------===//

#include "core/artifact.h"

#include "exec/program.h"
#include "support/serial.h"
#include "support/str.h"
#include "tir/intrinsics.h"
#include "tirpass/tirpass.h"
#include "verify/verify.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <unordered_set>
#include <utility>

namespace gc {
namespace core {

namespace {

using graph::AttrMap;
using graph::AttrValue;
using graph::Graph;
using graph::Layout;
using graph::LogicalTensor;
using graph::OpKind;
using graph::TensorProperty;
using runtime::TensorData;

/// Caps on untrusted counts. Far above anything the compiler emits, low
/// enough that a corrupt count fails fast instead of driving a huge
/// allocation.
constexpr uint64_t kMaxCount = 1ull << 20;
constexpr uint64_t kMaxCode = 1ull << 24;
constexpr uint64_t kMaxRank = 64;
constexpr uint64_t kMaxElems = 1ull << 40;
constexpr int64_t kMaxBlock = 1ll << 20;
constexpr int kMaxSubgraphDepth = 8;

/// Validates an untrusted shape/dims vector: bounded rank, non-negative
/// dims, overflow-safe element product <= kMaxElems. Writes the product.
bool validShape(const std::vector<int64_t> &Dims, uint64_t &Elems) {
  if (Dims.size() > kMaxRank)
    return false;
  uint64_t N = 1;
  for (int64_t D : Dims) {
    if (D < 0)
      return false;
    if (D > 0 && N > kMaxElems / static_cast<uint64_t>(D))
      return false;
    N *= static_cast<uint64_t>(D);
  }
  Elems = N;
  return true;
}

//===----------------------------------------------------------------------===//
// Graph payload
//===----------------------------------------------------------------------===//

void writeAttr(ByteWriter &W, const AttrValue &V) {
  W.u8(static_cast<uint8_t>(V.index()));
  switch (V.index()) {
  case 0:
    W.i64(std::get<int64_t>(V));
    break;
  case 1:
    W.f64(std::get<double>(V));
    break;
  case 2:
    W.str(std::get<std::string>(V));
    break;
  case 3:
    W.i64vec(std::get<std::vector<int64_t>>(V));
    break;
  case 4:
    W.f64vec(std::get<std::vector<double>>(V));
    break;
  }
}

bool readAttr(ByteReader &R, AttrValue &V) {
  switch (R.u8()) {
  case 0:
    V = R.i64();
    return true;
  case 1:
    V = R.f64();
    return true;
  case 2:
    V = R.str();
    return true;
  case 3:
    V = R.i64vec();
    return true;
  case 4:
    V = R.f64vec();
    return true;
  default:
    R.fail("attribute value tag");
    return false;
  }
}

/// Serializes \p G. Constant *data* ships only for ids in \p ShipConsts
/// (nullptr ships nothing): the payload carries each weight's bytes
/// exactly once. Execution reads packed weights from the folded-constants
/// section and raw bytes only through ConstData bindings, so fold-input
/// weights — which a loaded partition never folds again — would otherwise
/// ride along (twice: optimized graph + fold graph) purely as checksum
/// and page-in ballast on every warm start.
void writeGraph(ByteWriter &W, const Graph &G,
                const std::unordered_set<int64_t> *ShipConsts) {
  const std::vector<int64_t> TIds = G.tensorIds();
  W.u64(TIds.size());
  for (int64_t Id : TIds) {
    const LogicalTensor &T = G.tensor(Id);
    W.i64(T.Id);
    W.str(T.Name);
    W.u8(static_cast<uint8_t>(T.Ty));
    W.i64vec(T.Shape);
    W.u8(static_cast<uint8_t>(T.Lay.K));
    W.i64(T.Lay.Block0);
    W.i64(T.Lay.Block1);
    W.u8(static_cast<uint8_t>(T.Property));
  }
  const std::vector<int64_t> OIds = G.opIds();
  W.u64(OIds.size());
  for (int64_t Id : OIds) {
    const graph::Op &O = G.op(Id);
    W.i64(Id);
    W.u8(static_cast<uint8_t>(O.kind()));
    W.i64vec(O.inputs());
    W.i64vec(O.outputs());
    W.u64(O.attrs().size());
    for (const auto &KV : O.attrs()) {
      W.str(KV.first);
      writeAttr(W, KV.second);
    }
    const Graph *Sub = O.subgraph();
    W.u8(Sub ? 1 : 0);
    if (Sub)
      writeGraph(W, *Sub, nullptr);
  }
  W.i64vec(G.inputs());
  W.i64vec(G.outputs());
  std::vector<int64_t> ConstIds;
  for (int64_t Id : TIds)
    if (G.constantData(Id) && ShipConsts && ShipConsts->count(Id))
      ConstIds.push_back(Id);
  W.u64(ConstIds.size());
  for (int64_t Id : ConstIds) {
    const TensorData *D = G.constantData(Id);
    W.i64(Id);
    W.u8(static_cast<uint8_t>(D->dtype()));
    W.i64vec(D->shape());
    W.blob(D->data(), static_cast<size_t>(D->numBytes()));
  }
}

/// Reads a dtype + shape + blob triple (graph constant data or a baked
/// function constant) and vends a zero-copy view into the payload span.
/// Fails unless the blob length equals exactly shape x element size.
bool readTensorBlob(ByteReader &R, const char *What, TensorData &Out) {
  const uint8_t Ty = R.u8();
  std::vector<int64_t> Shape = R.i64vec();
  size_t Bytes = 0;
  const void *Data = R.blob(Bytes);
  if (!R.ok())
    return false;
  if (Ty > static_cast<uint8_t>(DataType::U8)) {
    R.fail(formatString("%s data type", What));
    return false;
  }
  uint64_t Elems = 0;
  if (!validShape(Shape, Elems)) {
    R.fail(formatString("%s shape", What));
    return false;
  }
  const uint64_t Expect =
      Elems * static_cast<uint64_t>(dataTypeSize(static_cast<DataType>(Ty)));
  if (Expect != Bytes) {
    R.fail(formatString("%s byte length %zu does not match shape (%llu)",
                        What, Bytes, (unsigned long long)Expect));
    return false;
  }
  Out = TensorData::view(static_cast<DataType>(Ty), std::move(Shape),
                         const_cast<void *>(Data));
  return true;
}

Status readGraph(ByteReader &R, Graph &G, int Depth) {
  if (Depth > kMaxSubgraphDepth) {
    R.fail("subgraph nesting too deep");
    return R.err();
  }
  const uint64_t NumTensors = R.u64();
  if (!R.ok() || NumTensors > kMaxCount) {
    R.fail("tensor count");
    return R.err();
  }
  std::unordered_set<int64_t> Seen;
  int64_t MaxTensorId = -1, MaxOpId = -1;
  for (uint64_t I = 0; I < NumTensors; ++I) {
    LogicalTensor T;
    T.Id = R.i64();
    T.Name = R.str();
    const uint8_t Ty = R.u8();
    T.Shape = R.i64vec();
    const uint8_t LayK = R.u8();
    T.Lay.Block0 = R.i64();
    T.Lay.Block1 = R.i64();
    const uint8_t Prop = R.u8();
    if (!R.ok())
      return R.err();
    if (Ty > static_cast<uint8_t>(DataType::U8)) {
      R.fail("tensor data type");
      return R.err();
    }
    if (LayK > static_cast<uint8_t>(Layout::Kind::BlockedBVnni)) {
      R.fail("tensor layout kind");
      return R.err();
    }
    if (Prop > static_cast<uint8_t>(TensorProperty::Constant)) {
      R.fail("tensor property");
      return R.err();
    }
    uint64_t Elems = 0;
    if (!validShape(T.Shape, Elems)) {
      R.fail("tensor shape");
      return R.err();
    }
    T.Ty = static_cast<DataType>(Ty);
    T.Lay.K = static_cast<Layout::Kind>(LayK);
    T.Property = static_cast<TensorProperty>(Prop);
    if (T.Lay.isBlocked() &&
        (T.Lay.Block0 < 1 || T.Lay.Block0 > kMaxBlock || T.Lay.Block1 < 1 ||
         T.Lay.Block1 > kMaxBlock)) {
      R.fail("tensor block sizes");
      return R.err();
    }
    if (!T.Lay.isBlocked() && (T.Lay.Block0 != 0 || T.Lay.Block1 != 0)) {
      R.fail("non-blocked tensor with block sizes");
      return R.err();
    }
    const int64_t Id = T.Id;
    if (Status S = G.restoreTensor(std::move(T)); !S.isOk()) {
      R.fail(S.message());
      return R.err();
    }
    Seen.insert(Id);
    MaxTensorId = std::max(MaxTensorId, Id);
  }
  const uint64_t NumOps = R.u64();
  if (!R.ok() || NumOps > kMaxCount) {
    R.fail("op count");
    return R.err();
  }
  for (uint64_t I = 0; I < NumOps; ++I) {
    const int64_t Id = R.i64();
    const uint8_t Kind = R.u8();
    std::vector<int64_t> Inputs = R.i64vec();
    std::vector<int64_t> Outputs = R.i64vec();
    const uint64_t NumAttrs = R.u64();
    if (!R.ok() || NumAttrs > kMaxCount) {
      R.fail("op attribute count");
      return R.err();
    }
    AttrMap Attrs;
    for (uint64_t A = 0; A < NumAttrs; ++A) {
      std::string Name = R.str();
      AttrValue V;
      if (!readAttr(R, V))
        return R.err();
      Attrs.emplace(std::move(Name), std::move(V));
    }
    const uint8_t HasSub = R.u8();
    if (!R.ok())
      return R.err();
    if (Kind > static_cast<uint8_t>(OpKind::FusedOp)) {
      R.fail("op kind");
      return R.err();
    }
    if (HasSub > 1 ||
        (HasSub == 1) != (Kind == static_cast<uint8_t>(OpKind::FusedOp))) {
      R.fail("op/subgraph mismatch");
      return R.err();
    }
    std::unique_ptr<Graph> Sub;
    if (HasSub) {
      Sub = std::make_unique<Graph>();
      if (Status S = readGraph(R, *Sub, Depth + 1); !S.isOk())
        return S;
    }
    if (Status S =
            G.restoreOp(Id, static_cast<OpKind>(Kind), std::move(Inputs),
                        std::move(Outputs), std::move(Attrs), std::move(Sub));
        !S.isOk()) {
      R.fail(S.message());
      return R.err();
    }
    MaxOpId = std::max(MaxOpId, Id);
  }
  const std::vector<int64_t> InIds = R.i64vec();
  const std::vector<int64_t> OutIds = R.i64vec();
  if (!R.ok())
    return R.err();
  for (int64_t Id : InIds) {
    if (!Seen.count(Id)) {
      R.fail("graph input names an unknown tensor");
      return R.err();
    }
    G.markInput(Id);
  }
  for (int64_t Id : OutIds) {
    if (!Seen.count(Id)) {
      R.fail("graph output names an unknown tensor");
      return R.err();
    }
    G.markOutput(Id);
  }
  const uint64_t NumConst = R.u64();
  if (!R.ok() || NumConst > kMaxCount) {
    R.fail("constant count");
    return R.err();
  }
  for (uint64_t I = 0; I < NumConst; ++I) {
    const int64_t Id = R.i64();
    TensorData View;
    if (!readTensorBlob(R, "constant", View))
      return R.err();
    if (!Seen.count(Id)) {
      R.fail("constant data names an unknown tensor");
      return R.err();
    }
    G.setConstantData(Id, std::move(View));
  }
  G.restoreIdCounters(MaxTensorId + 1, MaxOpId + 1);
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Entry function payload (buffer table + baked constants; no body)
//===----------------------------------------------------------------------===//

void writeFunc(ByteWriter &W, const tir::Func &F) {
  W.str(F.Name);
  W.i64(F.NumSlots);
  W.i64(F.ArenaBytes);
  W.i64(F.ArenaBytesNoReuse);
  W.u64(F.Baked.size());
  for (const TensorData &T : F.Baked) {
    W.u8(static_cast<uint8_t>(T.dtype()));
    W.i64vec(T.shape());
    W.blob(T.data(), static_cast<size_t>(T.numBytes()));
  }
  W.u64(F.Buffers.size());
  for (const tir::BufferDecl &B : F.Buffers) {
    W.str(B.Name);
    W.u8(static_cast<uint8_t>(B.ElemTy));
    W.i64vec(B.Dims);
    W.u8(static_cast<uint8_t>(B.Scope));
    W.i64(B.GraphTensorId);
    W.i64(B.ArenaOffset);
    W.i32(B.BakedIndex);
  }
}

Status readFunc(ByteReader &R, tir::Func &F) {
  F.Name = R.str();
  const int64_t NumSlots = R.i64();
  F.ArenaBytes = R.i64();
  F.ArenaBytesNoReuse = R.i64();
  if (!R.ok())
    return R.err();
  if (NumSlots < -1 || NumSlots > static_cast<int64_t>(kMaxCount)) {
    R.fail("slot count");
    return R.err();
  }
  F.NumSlots = static_cast<int>(NumSlots);
  if (F.ArenaBytes < 0 || F.ArenaBytes > static_cast<int64_t>(kMaxElems) ||
      F.ArenaBytesNoReuse < 0) {
    R.fail("arena bytes");
    return R.err();
  }
  const uint64_t NumBaked = R.u64();
  if (!R.ok() || NumBaked > kMaxCount) {
    R.fail("baked constant count");
    return R.err();
  }
  F.Baked.reserve(NumBaked);
  for (uint64_t I = 0; I < NumBaked; ++I) {
    TensorData View;
    if (!readTensorBlob(R, "baked constant", View))
      return R.err();
    F.Baked.push_back(std::move(View));
  }
  const uint64_t NumBufs = R.u64();
  if (!R.ok() || NumBufs > kMaxCount) {
    R.fail("buffer count");
    return R.err();
  }
  F.Buffers.reserve(NumBufs);
  for (uint64_t I = 0; I < NumBufs; ++I) {
    tir::BufferDecl B;
    B.Id = static_cast<int>(I);
    B.Name = R.str();
    const uint8_t ElemTy = R.u8();
    B.Dims = R.i64vec();
    const uint8_t Scope = R.u8();
    B.GraphTensorId = R.i64();
    B.ArenaOffset = R.i64();
    B.BakedIndex = R.i32();
    if (!R.ok())
      return R.err();
    if (ElemTy > static_cast<uint8_t>(DataType::U8)) {
      R.fail("buffer element type");
      return R.err();
    }
    if (Scope > static_cast<uint8_t>(tir::BufferScope::ThreadLocal)) {
      R.fail("buffer scope");
      return R.err();
    }
    uint64_t Elems = 0;
    if (!validShape(B.Dims, Elems)) {
      R.fail("buffer dims");
      return R.err();
    }
    if (B.ArenaOffset < -1) {
      R.fail("buffer arena offset");
      return R.err();
    }
    if (B.BakedIndex < -1 ||
        B.BakedIndex >= static_cast<int>(F.Baked.size())) {
      R.fail("baked constant index");
      return R.err();
    }
    B.ElemTy = static_cast<DataType>(ElemTy);
    B.Scope = static_cast<tir::BufferScope>(Scope);
    F.Buffers.push_back(std::move(B));
  }
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Bytecode program payload
//===----------------------------------------------------------------------===//

void writeProgram(ByteWriter &W, const exec::Program &P) {
  W.str(P.Name);
  W.u32(P.NumRegs);
  W.i64(P.ArenaBytes);
  W.u64(P.InitRegs.size());
  for (const exec::Value &V : P.InitRegs) {
    W.i64(V.I);
    W.f64(V.F);
  }
  W.u64(P.Buffers.size());
  for (const exec::BufferInfo &B : P.Buffers) {
    W.i64(B.Bytes);
    W.i64(B.ElemSize);
    W.u8(static_cast<uint8_t>(B.Scope));
    W.i64(B.ArenaOffset);
  }
  W.u64(P.Code.size());
  for (const exec::Instr &I : P.Code) {
    W.u8(static_cast<uint8_t>(I.Op));
    W.u16(I.A);
    W.u16(I.B);
    W.u16(I.C);
    W.i32(I.Target);
    W.i64(I.Imm);
  }
  W.u64(P.Pars.size());
  for (const exec::ParDesc &D : P.Pars) {
    W.u16(D.VarReg);
    W.u16(D.BeginReg);
    W.u16(D.EndReg);
    W.u16(D.StepReg);
    W.u32(D.BodyLen);
  }
  W.u64(P.Calls.size());
  for (const exec::CallDesc &C : P.Calls) {
    W.u8(static_cast<uint8_t>(C.In));
    W.u8(C.NumBufs);
    W.u8(C.NumDyn);
    for (const exec::CallDesc::Buf &B : C.Bufs) {
      W.i32(B.BufferId);
      W.u16(B.OffsetReg);
      W.u8(B.HasOffset ? 1 : 0);
    }
    for (int64_t S : C.SI)
      W.i64(S);
    for (double S : C.SF)
      W.f64(S);
    for (const exec::CallDesc::Dyn &D : C.Dyns) {
      W.u8(D.Idx);
      W.u8(D.IsF64 ? 1 : 0);
      W.u16(D.Reg);
    }
  }
}

/// Reads the Program, relinking each call's kernel pointer from its
/// serialized intrinsic and each Const buffer's baked pointer through
/// \p F's buffer table.
Status readProgram(ByteReader &R, exec::Program &P, const tir::Func &F) {
  P.Name = R.str();
  P.NumRegs = R.u32();
  P.ArenaBytes = R.i64();
  if (!R.ok())
    return R.err();
  if (P.NumRegs > kMaxCount) {
    R.fail("register count");
    return R.err();
  }
  if (P.ArenaBytes < 0 || P.ArenaBytes > static_cast<int64_t>(kMaxElems)) {
    R.fail("program arena bytes");
    return R.err();
  }
  const uint64_t NumInit = R.u64();
  if (!R.ok() || NumInit != P.NumRegs) {
    R.fail("initial register image size");
    return R.err();
  }
  P.InitRegs.resize(NumInit);
  for (exec::Value &V : P.InitRegs) {
    V.I = R.i64();
    V.F = R.f64();
  }
  const uint64_t NumBufs = R.u64();
  if (!R.ok() || NumBufs > kMaxCount) {
    R.fail("program buffer count");
    return R.err();
  }
  if (NumBufs != F.Buffers.size()) {
    R.fail("program/function buffer table mismatch");
    return R.err();
  }
  P.Buffers.resize(NumBufs);
  for (uint64_t I = 0; I < NumBufs; ++I) {
    exec::BufferInfo &B = P.Buffers[I];
    B.Bytes = R.i64();
    B.ElemSize = R.i64();
    const uint8_t Scope = R.u8();
    B.ArenaOffset = R.i64();
    if (!R.ok())
      return R.err();
    if (Scope > static_cast<uint8_t>(tir::BufferScope::ThreadLocal)) {
      R.fail("program buffer scope");
      return R.err();
    }
    B.Scope = static_cast<tir::BufferScope>(Scope);
    if (B.Bytes < 0 || B.Bytes > static_cast<int64_t>(kMaxElems) ||
        B.ElemSize < 1 || B.ElemSize > 8 || B.ArenaOffset < -1) {
      R.fail("program buffer geometry");
      return R.err();
    }
    const tir::BufferDecl &D = F.Buffers[I];
    if (D.BakedIndex >= 0) {
      const TensorData &Baked = F.Baked[static_cast<size_t>(D.BakedIndex)];
      if (B.Bytes > Baked.numBytes()) {
        R.fail("buffer extent exceeds its baked constant");
        return R.err();
      }
      B.BakedData = Baked.data();
    }
  }
  const uint64_t NumCode = R.u64();
  if (!R.ok() || NumCode > kMaxCode) {
    R.fail("instruction count");
    return R.err();
  }
  P.Code.resize(NumCode);
  for (exec::Instr &I : P.Code) {
    const uint8_t Op = R.u8();
    I.A = R.u16();
    I.B = R.u16();
    I.C = R.u16();
    I.Target = R.i32();
    I.Imm = R.i64();
    if (!R.ok())
      return R.err();
    if (Op > static_cast<uint8_t>(exec::Opcode::ParallelFor)) {
      R.fail("opcode");
      return R.err();
    }
    I.Op = static_cast<exec::Opcode>(Op);
  }
  const uint64_t NumPars = R.u64();
  if (!R.ok() || NumPars > kMaxCount) {
    R.fail("parallel descriptor count");
    return R.err();
  }
  P.Pars.resize(NumPars);
  for (exec::ParDesc &D : P.Pars) {
    D.VarReg = R.u16();
    D.BeginReg = R.u16();
    D.EndReg = R.u16();
    D.StepReg = R.u16();
    D.BodyLen = R.u32();
    if (!R.ok())
      return R.err();
    if (D.VarReg >= P.NumRegs || D.BeginReg >= P.NumRegs ||
        D.EndReg >= P.NumRegs || D.StepReg >= P.NumRegs) {
      R.fail("parallel descriptor register");
      return R.err();
    }
  }
  const uint64_t NumCalls = R.u64();
  if (!R.ok() || NumCalls > kMaxCount) {
    R.fail("call descriptor count");
    return R.err();
  }
  P.Calls.resize(NumCalls);
  for (exec::CallDesc &C : P.Calls) {
    const uint8_t In = R.u8();
    C.NumBufs = R.u8();
    C.NumDyn = R.u8();
    for (exec::CallDesc::Buf &B : C.Bufs) {
      B.BufferId = R.i32();
      B.OffsetReg = R.u16();
      B.HasOffset = R.u8() != 0;
    }
    for (int64_t &S : C.SI)
      S = R.i64();
    for (double &S : C.SF)
      S = R.f64();
    for (exec::CallDesc::Dyn &D : C.Dyns) {
      D.Idx = R.u8();
      D.IsF64 = R.u8() != 0;
      D.Reg = R.u16();
    }
    if (!R.ok())
      return R.err();
    if (In >= tir::kNumIntrinsics) {
      R.fail("call intrinsic");
      return R.err();
    }
    if (C.NumBufs > 4 || C.NumDyn > 12) {
      R.fail("call operand counts");
      return R.err();
    }
    for (uint8_t I = 0; I < C.NumBufs; ++I)
      if (C.Bufs[I].BufferId < 0 ||
          C.Bufs[I].BufferId >= static_cast<int32_t>(NumBufs)) {
        R.fail("call buffer id");
        return R.err();
      }
    for (uint8_t I = 0; I < C.NumDyn; ++I)
      if (C.Dyns[I].Idx >= 12) {
        R.fail("call dynamic scalar index");
        return R.err();
      }
    C.In = static_cast<tir::Intrinsic>(In);
    C.Fn = exec::kernelAdapter(C.In);
  }
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Semantic cross-checks over the restored pieces
//===----------------------------------------------------------------------===//

/// True when \p Id is structurally available in the fold graph: produced
/// by an op, carrying constant data, or declared a constant tensor. The
/// payload ships the fold's *outputs*, so a loaded partition never runs
/// the fold graph and its constant inputs travel without data — the
/// closure check proves the graph is well-formed (every referenced id
/// exists and is produced-or-constant), not that the fold could re-run.
bool foldAvailable(const Graph &FG, int64_t Id) {
  return FG.producerOf(Id) >= 0 || FG.constantData(Id) != nullptr ||
         (FG.hasTensor(Id) &&
          FG.tensor(Id).Property == TensorProperty::Constant);
}

Status checkFoldClosure(const Graph &FG,
                        const std::vector<int64_t> &FoldOutputs) {
  for (int64_t OpId : FG.opIds())
    for (int64_t In : FG.op(OpId).inputs())
      if (!foldAvailable(FG, In))
        return Status::error(
            StatusCode::InvalidArgument,
            formatString("artifact fold graph: op %lld reads t%lld, which "
                         "is neither produced nor constant",
                         (long long)OpId, (long long)In));
  for (int64_t Out : FoldOutputs)
    if (!foldAvailable(FG, Out))
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("artifact fold output t%lld is neither produced nor "
                       "constant",
                       (long long)Out));
  return Status::ok();
}

/// Bytes a binding target can legally provide: the padded logical extent
/// of the graph tensor (callers bind plain logical tensors; fold outputs
/// may be block-padded).
int64_t tensorBytes(const Graph &G, int64_t Id) {
  const LogicalTensor &T = G.tensor(Id);
  return T.paddedNumElements() * dataTypeSize(T.Ty);
}

bool contains(const std::vector<int64_t> &V, int64_t Id) {
  return std::find(V.begin(), V.end(), Id) != V.end();
}

/// Validates the binding list against everything it references, and that
/// every buffer whose scope requires an execution-time pointer gets one —
/// an unbound Param buffer would hand the executor a null base.
Status checkBindings(const std::vector<lower::Binding> &Bindings,
                     const exec::Program &P, const Graph &G, const Graph &FG,
                     const std::vector<int64_t> &FoldOutputs) {
  std::vector<bool> Bound(P.Buffers.size(), false);
  for (const lower::Binding &B : Bindings) {
    if (B.BufferId < 0 ||
        B.BufferId >= static_cast<int>(P.Buffers.size()))
      return Status::error(StatusCode::InvalidArgument,
                           "artifact binding buffer id out of range");
    if (static_cast<uint8_t>(B.Kind) >
        static_cast<uint8_t>(lower::BindingKind::ConstData))
      return Status::error(StatusCode::InvalidArgument,
                           "artifact binding kind out of range");
    if (Bound[static_cast<size_t>(B.BufferId)])
      return Status::error(StatusCode::InvalidArgument,
                           "artifact binds a buffer twice");
    Bound[static_cast<size_t>(B.BufferId)] = true;
    const exec::BufferInfo &Buf = P.Buffers[static_cast<size_t>(B.BufferId)];
    int64_t Avail = 0;
    switch (B.Kind) {
    case lower::BindingKind::Input:
      if (!contains(G.inputs(), B.TensorId))
        return Status::error(StatusCode::InvalidArgument,
                             "artifact input binding names a non-input");
      if (Buf.Scope != tir::BufferScope::Param)
        return Status::error(StatusCode::InvalidArgument,
                             "artifact input binding on a non-Param buffer");
      Avail = tensorBytes(G, B.TensorId);
      break;
    case lower::BindingKind::Output:
      if (!contains(G.outputs(), B.TensorId))
        return Status::error(StatusCode::InvalidArgument,
                             "artifact output binding names a non-output");
      if (Buf.Scope != tir::BufferScope::Param)
        return Status::error(StatusCode::InvalidArgument,
                             "artifact output binding on a non-Param buffer");
      Avail = tensorBytes(G, B.TensorId);
      break;
    case lower::BindingKind::Folded:
      if (!contains(FoldOutputs, B.TensorId))
        return Status::error(StatusCode::InvalidArgument,
                             "artifact folded binding names a non-fold-output");
      if (Buf.Scope != tir::BufferScope::FoldedConst)
        return Status::error(
            StatusCode::InvalidArgument,
            "artifact folded binding on a non-FoldedConst buffer");
      Avail = tensorBytes(FG, B.TensorId);
      break;
    case lower::BindingKind::ConstData: {
      const TensorData *CD = G.constantData(B.TensorId);
      if (!CD)
        return Status::error(
            StatusCode::InvalidArgument,
            "artifact const binding names a tensor without data");
      if (Buf.Scope != tir::BufferScope::Const)
        return Status::error(StatusCode::InvalidArgument,
                             "artifact const binding on a non-Const buffer");
      Avail = CD->numBytes();
      break;
    }
    }
    if (Buf.Bytes > Avail)
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("artifact buffer %d extent %lld exceeds its binding "
                       "target (%lld bytes)",
                       B.BufferId, (long long)Buf.Bytes, (long long)Avail));
  }
  for (size_t I = 0; I < P.Buffers.size(); ++I) {
    const exec::BufferInfo &Buf = P.Buffers[I];
    const bool NeedsBinding =
        Buf.Scope == tir::BufferScope::Param ||
        Buf.Scope == tir::BufferScope::FoldedConst ||
        (Buf.Scope == tir::BufferScope::Const && !Buf.BakedData);
    if (NeedsBinding && !Bound[I])
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("artifact leaves buffer %zu (%s) unbound", I,
                       Buf.Scope == tir::BufferScope::Param ? "param"
                       : Buf.Scope == tir::BufferScope::FoldedConst
                           ? "folded"
                           : "const"));
  }
  return Status::ok();
}

} // namespace

//===----------------------------------------------------------------------===//
// Cache key
//===----------------------------------------------------------------------===//

uint64_t buildHash() {
  static const uint64_t H = [] {
    uint64_t V = fnv1aBytes(&kArtifactPayloadVersion,
                            sizeof kArtifactPayloadVersion);
    const auto Mix = [&V](const char *S) {
      V = fnv1aBytes(S, std::strlen(S), V);
    };
#ifdef __VERSION__
    Mix(__VERSION__);
#endif
    Mix(__DATE__);
    Mix(__TIME__);
    return V;
  }();
  return H;
}

uint64_t artifactCacheKey(uint64_t GraphFingerprint,
                          const CompileOptions &Opts, int Threads,
                          kernels::KernelTier Tier) {
  ByteWriter W;
  W.u64(GraphFingerprint);
  W.u64(buildHash());
  W.i64(Threads);
  W.u8(Opts.EnableLowPrecision);
  W.u8(Opts.EnableFineGrainFusion);
  W.u8(Opts.EnableCoarseGrainFusion);
  W.u8(Opts.EnableLayoutPropagation);
  W.u8(Opts.EnableBufferReuse);
  W.u8(Opts.FastSoftmax);
  W.u8(Opts.PrimitivesMode);
  W.u8(static_cast<uint8_t>(Opts.Exec));
  W.u8(static_cast<uint8_t>(Tier));
  return fnv1aBytes(W.bytes().data(), W.size());
}

uint64_t artifactCacheKey(uint64_t GraphFingerprint,
                          const CompileOptions &Opts, int Threads) {
  return artifactCacheKey(GraphFingerprint, Opts, Threads,
                          kernels::activeKernelTier());
}

//===----------------------------------------------------------------------===//
// Codec
//===----------------------------------------------------------------------===//

std::vector<uint8_t> ArtifactCodec::serialize(const CompiledPartition &P) {
  assert(P.Prog.Bytecode && "only bytecode partitions serialize");
  ByteWriter W;
  W.u32(kArtifactPayloadVersion);
  // Raw constant bytes ship only where execution dereferences them:
  // ConstData bindings read from the optimized graph; everything else
  // (fold-input weights) is served packed from the folded section below.
  std::unordered_set<int64_t> ExecConsts;
  for (const lower::Binding &B : P.Prog.Bindings)
    if (B.Kind == lower::BindingKind::ConstData)
      ExecConsts.insert(B.TensorId);
  writeGraph(W, P.OptimizedG, &ExecConsts);
  writeGraph(W, P.Prog.FoldGraph, nullptr);
  W.i64vec(P.Prog.FoldOutputs);
  writeFunc(W, P.Prog.Entry);
  writeProgram(W, *P.Prog.Bytecode);
  W.u64(P.Prog.Bindings.size());
  for (const lower::Binding &B : P.Prog.Bindings) {
    W.i32(B.BufferId);
    W.i64(B.TensorId);
    W.u8(static_cast<uint8_t>(B.Kind));
  }
  W.i32(P.Prog.CoarseGrainMerges);
  W.i64(P.Prog.ReuseStats.PeakBytesWithReuse);
  W.i64(P.Prog.ReuseStats.PeakBytesWithoutReuse);
  W.i32(P.Prog.ReuseStats.BuffersPlaced);
  W.i32(P.Prog.ReuseStats.BuffersReused);
  W.i32(P.LoadedParallelNests >= 0
            ? P.LoadedParallelNests
            : tirpass::countParallelNests(P.Prog.Entry));
  // Folded-constants section (payload v2). The fold is deterministic, so
  // running it at store time and shipping its outputs lets every warm
  // process skip constant packing — for weight-heavy graphs that pass,
  // not pipeline reconstruction, dominates the cold start. Reuse the
  // partition's own cache when an execution already populated it.
  runtime::ConstCache LocalFold;
  const runtime::ConstCache *Fold = &P.Cache;
  if (!P.FoldDone.load(std::memory_order_acquire)) {
    runFoldGraph(P.Prog.FoldGraph, P.Prog.FoldOutputs, LocalFold);
    Fold = &LocalFold;
  }
  W.u64(P.Prog.FoldOutputs.size());
  for (int64_t Id : P.Prog.FoldOutputs) {
    const TensorData *D = Fold->get(Id);
    assert(D && "fold output missing after running the fold graph");
    W.i64(Id);
    W.u8(static_cast<uint8_t>(D->dtype()));
    W.i64vec(D->shape());
    W.blob(D->data(), static_cast<size_t>(D->numBytes()));
  }
  return W.take();
}

Expected<std::shared_ptr<CompiledPartition>>
ArtifactCodec::deserialize(const void *Payload, size_t Bytes,
                           std::shared_ptr<void> Pin,
                           std::shared_ptr<runtime::ThreadPool> Pool) {
  assert(Pool && "deserialized partitions need an execution pool");
  ByteReader R(Payload, Bytes);
  const uint32_t Version = R.u32();
  if (R.ok() && Version != kArtifactPayloadVersion)
    R.fail(formatString("payload version %u, this build reads %u", Version,
                        kArtifactPayloadVersion));
  if (!R.ok())
    return R.err();

  std::shared_ptr<CompiledPartition> P(new CompiledPartition());
  if (Status S = readGraph(R, P->OptimizedG, 0); !S.isOk())
    return S;
  if (Status S = readGraph(R, P->Prog.FoldGraph, 0); !S.isOk())
    return S;
  P->Prog.FoldOutputs = R.i64vec();
  if (!R.ok())
    return R.err();
  if (Status S = checkFoldClosure(P->Prog.FoldGraph, P->Prog.FoldOutputs);
      !S.isOk())
    return S;
  if (Status S = readFunc(R, P->Prog.Entry); !S.isOk())
    return S;
  auto Prog = std::make_shared<exec::Program>();
  if (Status S = readProgram(R, *Prog, P->Prog.Entry); !S.isOk())
    return S;
  P->Prog.Bytecode = Prog;

  const uint64_t NumBindings = R.u64();
  if (!R.ok() || NumBindings > kMaxCount) {
    R.fail("binding count");
    return R.err();
  }
  P->Prog.Bindings.resize(NumBindings);
  for (lower::Binding &B : P->Prog.Bindings) {
    B.BufferId = R.i32();
    B.TensorId = R.i64();
    B.Kind = static_cast<lower::BindingKind>(R.u8());
  }
  P->Prog.CoarseGrainMerges = R.i32();
  P->Prog.ReuseStats.PeakBytesWithReuse = R.i64();
  P->Prog.ReuseStats.PeakBytesWithoutReuse = R.i64();
  P->Prog.ReuseStats.BuffersPlaced = R.i32();
  P->Prog.ReuseStats.BuffersReused = R.i32();
  const int32_t ParallelNests = R.i32();
  if (!R.ok())
    return R.err();
  if (ParallelNests < 0) {
    R.fail("parallel nest count");
    return R.err();
  }

  // Folded-constants section: one pre-computed tensor per fold output,
  // served as zero-copy views into the payload. Each id must name a fold
  // output exactly once, carry the fold graph's data type, and span the
  // tensor's padded extent — the byte budget checkBindings later grants
  // FoldedConst buffers.
  const uint64_t NumFolded = R.u64();
  if (!R.ok() || NumFolded != P->Prog.FoldOutputs.size()) {
    R.fail("folded constant count");
    return R.err();
  }
  std::vector<std::pair<int64_t, TensorData>> Folded;
  Folded.reserve(NumFolded);
  std::unordered_set<int64_t> SeenFold;
  for (uint64_t I = 0; I < NumFolded; ++I) {
    const int64_t Id = R.i64();
    TensorData View;
    if (!readTensorBlob(R, "folded constant", View))
      return R.err();
    if (!contains(P->Prog.FoldOutputs, Id) || !SeenFold.insert(Id).second) {
      R.fail("folded constant id");
      return R.err();
    }
    const LogicalTensor &T = P->Prog.FoldGraph.tensor(Id);
    if (View.dtype() != T.Ty) {
      R.fail("folded constant data type");
      return R.err();
    }
    if (View.numBytes() != tensorBytes(P->Prog.FoldGraph, Id)) {
      R.fail("folded constant byte extent");
      return R.err();
    }
    Folded.emplace_back(Id, std::move(View));
  }

  if (!R.atEnd()) {
    R.fail("trailing bytes after payload");
    return R.err();
  }

  if (Status S = checkBindings(P->Prog.Bindings, *Prog, P->OptimizedG,
                               P->Prog.FoldGraph, P->Prog.FoldOutputs);
      !S.isOk())
    return S;

  // The restored graphs and program earn the full static proofs before the
  // partition can reach the executor's unchecked dispatch loop — always,
  // independent of GC_VERIFY (this is untrusted disk input, not our own
  // pipeline's output).
  if (Status S = verify::verifyGraph(P->OptimizedG, "artifact load");
      !S.isOk())
    return S;
  if (Status S = verify::verifyGraph(P->Prog.FoldGraph, "artifact fold load");
      !S.isOk())
    return S;
  if (Status S = verify::verifyLoadedProgram(*Prog, "artifact load");
      !S.isOk())
    return S;

  P->Pool = std::move(Pool);
  P->Backend = exec::Backend::Bytecode;
  P->InputIds = P->OptimizedG.inputs();
  P->OutputIds = P->OptimizedG.outputs();
  P->LoadedParallelNests = ParallelNests;
  P->MappedPin = std::move(Pin);
  P->resolveBindings();

  // Pre-fire the fold with the shipped outputs: zero-copy views into the
  // payload (pinned by MappedPin for the partition's lifetime) land in the
  // ConstCache, so the first execution's call_once finds the fold already
  // done and skips constant packing entirely.
  std::call_once(P->FoldOnce, [&] {
    for (auto &KV : Folded)
      P->Cache.put(KV.first, std::move(KV.second));
    P->Cache.markPopulated();
    P->FoldDone.store(true, std::memory_order_release);
  });
  return P;
}

} // namespace core
} // namespace gc
