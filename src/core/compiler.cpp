//===- compiler.cpp - Public compile/execute API -----------------------------------===//

#include "core/compiler.h"

#include "graph/reference.h"
#include "kernels/packing.h"
#include "passes/pass.h"
#include "support/common.h"
#include "tirpass/tirpass.h"

#include <algorithm>

namespace gc {
namespace core {

using namespace graph;

//===----------------------------------------------------------------------===//
// Fold function execution (constant weight preprocessing, §V)
//===----------------------------------------------------------------------===//

namespace {

/// Packs one constant tensor according to its blocked target layout.
runtime::TensorData packConstant(const LogicalTensor &DstT,
                                 const runtime::TensorData &Src,
                                 bool TransposeSrc) {
  const int64_t Rank = DstT.rank();
  assert(Rank >= 2 && "blocked reorder needs a matrix");
  const int64_t Rows = DstT.Shape[static_cast<size_t>(Rank - 2)];
  const int64_t Cols = DstT.Shape[static_cast<size_t>(Rank - 1)];
  int64_t Lead = 1;
  for (int64_t D = 0; D + 2 < Rank; ++D)
    Lead *= DstT.Shape[static_cast<size_t>(D)];
  runtime::TensorData Out(DstT.Ty, {DstT.paddedNumElements()});
  const int64_t PerBatchSrc = Rows * Cols;
  const int64_t PerBatchDst = DstT.paddedNumElements() / Lead;
  for (int64_t B = 0; B < Lead; ++B) {
    kernels::PlainMatrix Mat;
    Mat.Rows = Rows;
    Mat.Cols = Cols;
    Mat.Ld = TransposeSrc ? Rows : Cols;
    Mat.Transposed = TransposeSrc;
    Mat.Data = static_cast<const char *>(Src.data()) +
               B * PerBatchSrc * dataTypeSize(DstT.Ty);
    char *Dst = static_cast<char *>(Out.data()) +
                B * PerBatchDst * dataTypeSize(DstT.Ty);
    switch (DstT.Lay.K) {
    case Layout::Kind::BlockedA:
      if (DstT.Ty == DataType::U8)
        kernels::packAU8(Mat, reinterpret_cast<uint8_t *>(Dst),
                         DstT.Lay.Block0, DstT.Lay.Block1);
      else
        kernels::packAF32(Mat, reinterpret_cast<float *>(Dst),
                          DstT.Lay.Block0, DstT.Lay.Block1);
      break;
    case Layout::Kind::BlockedB:
      kernels::packBF32(Mat, reinterpret_cast<float *>(Dst),
                        DstT.Lay.Block0, DstT.Lay.Block1);
      break;
    case Layout::Kind::BlockedBVnni:
      kernels::packBS8Vnni(Mat, reinterpret_cast<int8_t *>(Dst),
                           DstT.Lay.Block0, DstT.Lay.Block1);
      break;
    case Layout::Kind::Plain:
    case Layout::Kind::Any:
      GC_UNREACHABLE("packConstant called for a plain layout");
    }
  }
  return Out;
}

} // namespace

void runFoldGraph(const Graph &FoldGraph,
                  const std::vector<int64_t> &FoldOutputs,
                  runtime::ConstCache &Cache) {
  TensorMap Env;
  // Bind compile-time constants.
  for (int64_t TId : FoldGraph.tensorIds())
    if (const runtime::TensorData *Data = FoldGraph.constantData(TId))
      Env[TId] = Data->clone();
  for (int64_t OpId : FoldGraph.topologicalOrder()) {
    const Op &O = FoldGraph.op(OpId);
    if (O.kind() == OpKind::Reorder) {
      // Layout-aware packing (the reference treats Reorder as identity).
      const LogicalTensor &DstT = FoldGraph.tensor(O.output(0));
      const auto It = Env.find(O.input(0));
      if (It == Env.end())
        fatalError("fold graph reorder input unavailable");
      if (DstT.Lay.isBlocked()) {
        Env[O.output(0)] = packConstant(
            DstT, It->second, O.getAttrInt("transpose_src", 0) != 0);
        continue;
      }
      Env[O.output(0)] = It->second.clone();
      continue;
    }
    std::vector<const runtime::TensorData *> Inputs;
    for (int64_t In : O.inputs()) {
      auto It = Env.find(In);
      if (It == Env.end())
        fatalError("fold graph input unavailable");
      Inputs.push_back(&It->second);
    }
    std::vector<runtime::TensorData> Outs =
        evalOpReference(FoldGraph, O, Inputs);
    for (size_t I = 0; I < Outs.size(); ++I)
      Env[O.output(I)] = std::move(Outs[I]);
  }
  for (int64_t OutId : FoldOutputs) {
    auto It = Env.find(OutId);
    if (It == Env.end())
      fatalError("fold output was not computed");
    Cache.put(OutId, std::move(It->second));
  }
  Cache.markPopulated();
}

//===----------------------------------------------------------------------===//
// CompiledPartition
//===----------------------------------------------------------------------===//

void CompiledPartition::runFoldFunction() {
  runFoldGraph(Prog.FoldGraph, Prog.FoldOutputs, Cache);
}

void CompiledPartition::execute(
    const std::vector<runtime::TensorData *> &Inputs,
    const std::vector<runtime::TensorData *> &Outputs) {
  assert(Inputs.size() == InputIds.size() && "input arity mismatch");
  assert(Outputs.size() == OutputIds.size() && "output arity mismatch");
  if (!Cache.isPopulated())
    runFoldFunction();

  for (const lower::Binding &B : Prog.Bindings) {
    switch (B.Kind) {
    case lower::BindingKind::Input: {
      const auto It =
          std::find(InputIds.begin(), InputIds.end(), B.TensorId);
      assert(It != InputIds.end() && "binding refers to unknown input");
      runtime::TensorData *T =
          Inputs[static_cast<size_t>(It - InputIds.begin())];
      Eval->bindBuffer(B.BufferId, T->data());
      break;
    }
    case lower::BindingKind::Output: {
      const auto It =
          std::find(OutputIds.begin(), OutputIds.end(), B.TensorId);
      assert(It != OutputIds.end() && "binding refers to unknown output");
      runtime::TensorData *T =
          Outputs[static_cast<size_t>(It - OutputIds.begin())];
      Eval->bindBuffer(B.BufferId, T->data());
      break;
    }
    case lower::BindingKind::Folded: {
      const runtime::TensorData *T = Cache.get(B.TensorId);
      if (!T)
        fatalError("folded constant missing from the cache");
      Eval->bindBuffer(B.BufferId, const_cast<void *>(T->data()));
      break;
    }
    case lower::BindingKind::ConstData: {
      const runtime::TensorData *T = OptimizedG.constantData(B.TensorId);
      if (!T)
        fatalError("constant binding without data");
      Eval->bindBuffer(B.BufferId, const_cast<void *>(T->data()));
      break;
    }
    }
  }
  Eval->run();
}

PartitionStats CompiledPartition::stats() const {
  PartitionStats S;
  S.CoarseGrainMerges = Prog.CoarseGrainMerges;
  S.ParallelNests = tirpass::countParallelNests(Prog.Entry);
  S.ScratchArenaBytes = Prog.Entry.ArenaBytes;
  S.ScratchArenaBytesNoReuse = Prog.Entry.ArenaBytesNoReuse;
  S.FoldedTensors = Cache.size();
  S.FoldedBytes = Cache.totalBytes();
  return S;
}

std::vector<std::vector<int64_t>> CompiledPartition::outputShapes() const {
  std::vector<std::vector<int64_t>> Shapes;
  for (int64_t Out : OutputIds)
    Shapes.push_back(OptimizedG.tensor(Out).Shape);
  return Shapes;
}

CompileOptions primitivesBaselineOptions(int Threads) {
  CompileOptions Opts;
  Opts.Threads = Threads;
  Opts.PrimitivesMode = true;
  Opts.EnableCoarseGrainFusion = false;
  // Primitives compute the reference (stable) softmax.
  Opts.FastSoftmax = false;
  return Opts;
}

std::unique_ptr<CompiledPartition> compileGraph(const Graph &G,
                                                const CompileOptions &Opts) {
  auto Partition = std::unique_ptr<CompiledPartition>(new CompiledPartition);
  Partition->OptimizedG = G.clone();

  // Thread pool.
  if (Opts.Threads > 0) {
    Partition->OwnedPool =
        std::make_unique<runtime::ThreadPool>(Opts.Threads);
    Partition->Pool = Partition->OwnedPool.get();
  } else {
    Partition->Pool = &runtime::ThreadPool::global();
  }
  const int Threads = Partition->Pool->numThreads();

  // §V Graph IR pipeline.
  passes::PassOptions PassOpts;
  PassOpts.Threads = Threads;
  PassOpts.FastSoftmax = Opts.FastSoftmax;
  PassOpts.EnableLowPrecision = Opts.EnableLowPrecision;
  PassOpts.EnableFineGrainFusion = Opts.EnableFineGrainFusion;
  PassOpts.EnableLayoutPropagation = Opts.EnableLayoutPropagation;
  PassOpts.PrimitivesMode = Opts.PrimitivesMode;
  passes::PassManager PM(PassOpts);
  for (auto &P : passes::buildStandardPipeline(PassOpts))
    PM.addPass(std::move(P));
  PM.run(Partition->OptimizedG);

  // Stable boundary ids (inputs never rewritten; outputs keep order).
  Partition->InputIds = Partition->OptimizedG.inputs();
  Partition->OutputIds = Partition->OptimizedG.outputs();

  // Lowering + Tensor IR passes.
  lower::DriverOptions DrvOpts;
  DrvOpts.Threads = Threads;
  DrvOpts.EnableCoarseGrainFusion = Opts.EnableCoarseGrainFusion;
  DrvOpts.EnableBufferReuse = Opts.EnableBufferReuse;
  Partition->Prog = lower::lowerGraph(Partition->OptimizedG, DrvOpts);

  Partition->Eval = std::make_unique<tir::Evaluator>(Partition->Prog.Entry,
                                                     *Partition->Pool);
  return Partition;
}

} // namespace core
} // namespace gc
