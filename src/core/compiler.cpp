//===- compiler.cpp - Partition compile/execute engine -----------------------------===//

#include "core/compiler.h"

#include "api/session.h"
#include "graph/reference.h"
#include "kernels/packing.h"
#include "passes/pass.h"
#include "support/common.h"
#include "support/env.h"
#include "support/fault.h"
#include "support/str.h"
#include "tirpass/tirpass.h"

#include <algorithm>

namespace gc {
namespace core {

using namespace graph;

bool defaultSplitPartitions() {
  return getEnvString("GC_PARTITION", "merge") == "split";
}

bool defaultAsyncExec() {
  return getEnvString("GC_SCHED", "serial") == "async";
}

BatchBucketing defaultBatchBucketing() {
  return getEnvString("GC_BATCH_BUCKETS", "pow2") == "exact"
             ? BatchBucketing::Exact
             : BatchBucketing::Pow2;
}

int defaultSpecCacheCap() {
  // Clamped at the use site per the env-knob policy: a nonsensical value
  // must not disable the cache (cap 0 would recompile every execution)
  // nor pin unbounded numbers of specializations.
  return static_cast<int>(std::min<int64_t>(
      std::max<int64_t>(1, getEnvInt("GC_SPEC_CACHE", 16)), 4096));
}

int64_t batchBucket(int64_t Batch, BatchBucketing Policy) {
  assert(Batch > 0 && "bucket of a non-positive batch");
  if (Policy == BatchBucketing::Exact)
    return Batch;
  int64_t B = 1;
  while (B < Batch)
    B <<= 1;
  return B;
}

Expected<graph::Graph> specializeForBatch(const graph::Graph &G,
                                          int64_t Batch) {
  if (Batch <= 0)
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("cannot specialize for non-positive batch %lld",
                     (long long)Batch));
  graph::Graph Spec = G.specializeBatch(Batch);
  if (Status S = Spec.finalize(); !S.isOk())
    return S;
  return Expected<graph::Graph>(std::move(Spec));
}

//===----------------------------------------------------------------------===//
// Fold function execution (constant weight preprocessing, §V)
//===----------------------------------------------------------------------===//

namespace {

/// Packs one constant tensor according to its blocked target layout.
runtime::TensorData packConstant(const LogicalTensor &DstT,
                                 const runtime::TensorData &Src,
                                 bool TransposeSrc) {
  const int64_t Rank = DstT.rank();
  assert(Rank >= 2 && "blocked reorder needs a matrix");
  const int64_t Rows = DstT.Shape[static_cast<size_t>(Rank - 2)];
  const int64_t Cols = DstT.Shape[static_cast<size_t>(Rank - 1)];
  int64_t Lead = 1;
  for (int64_t D = 0; D + 2 < Rank; ++D)
    Lead *= DstT.Shape[static_cast<size_t>(D)];
  runtime::TensorData Out(DstT.Ty, {DstT.paddedNumElements()});
  const int64_t PerBatchSrc = Rows * Cols;
  const int64_t PerBatchDst = DstT.paddedNumElements() / Lead;
  for (int64_t B = 0; B < Lead; ++B) {
    kernels::PlainMatrix Mat;
    Mat.Rows = Rows;
    Mat.Cols = Cols;
    Mat.Ld = TransposeSrc ? Rows : Cols;
    Mat.Transposed = TransposeSrc;
    Mat.Data = static_cast<const char *>(Src.data()) +
               B * PerBatchSrc * dataTypeSize(DstT.Ty);
    char *Dst = static_cast<char *>(Out.data()) +
                B * PerBatchDst * dataTypeSize(DstT.Ty);
    switch (DstT.Lay.K) {
    case Layout::Kind::BlockedA:
      if (DstT.Ty == DataType::U8)
        kernels::packAU8(Mat, reinterpret_cast<uint8_t *>(Dst),
                         DstT.Lay.Block0, DstT.Lay.Block1);
      else
        kernels::packAF32(Mat, reinterpret_cast<float *>(Dst),
                          DstT.Lay.Block0, DstT.Lay.Block1);
      break;
    case Layout::Kind::BlockedB:
      kernels::packBF32(Mat, reinterpret_cast<float *>(Dst),
                        DstT.Lay.Block0, DstT.Lay.Block1);
      break;
    case Layout::Kind::BlockedBVnni:
      kernels::packBS8Vnni(Mat, reinterpret_cast<int8_t *>(Dst),
                           DstT.Lay.Block0, DstT.Lay.Block1);
      break;
    case Layout::Kind::Plain:
    case Layout::Kind::Any:
      GC_UNREACHABLE("packConstant called for a plain layout");
    }
  }
  return Out;
}

} // namespace

void runFoldGraph(const Graph &FoldGraph,
                  const std::vector<int64_t> &FoldOutputs,
                  runtime::ConstCache &Cache) {
  TensorMap Env;
  // Bind compile-time constants.
  for (int64_t TId : FoldGraph.tensorIds())
    if (const runtime::TensorData *Data = FoldGraph.constantData(TId))
      Env[TId] = Data->clone();
  for (int64_t OpId : FoldGraph.topologicalOrder()) {
    const Op &O = FoldGraph.op(OpId);
    if (O.kind() == OpKind::Reorder) {
      // Layout-aware packing (the reference treats Reorder as identity).
      const LogicalTensor &DstT = FoldGraph.tensor(O.output(0));
      const auto It = Env.find(O.input(0));
      if (It == Env.end())
        fatalError("fold graph reorder input unavailable");
      if (DstT.Lay.isBlocked()) {
        Env[O.output(0)] = packConstant(
            DstT, It->second, O.getAttrInt("transpose_src", 0) != 0);
        continue;
      }
      Env[O.output(0)] = It->second.clone();
      continue;
    }
    std::vector<const runtime::TensorData *> Inputs;
    for (int64_t In : O.inputs()) {
      auto It = Env.find(In);
      if (It == Env.end())
        fatalError("fold graph input unavailable");
      Inputs.push_back(&It->second);
    }
    std::vector<runtime::TensorData> Outs =
        evalOpReference(FoldGraph, O, Inputs);
    for (size_t I = 0; I < Outs.size(); ++I)
      Env[O.output(I)] = std::move(Outs[I]);
  }
  for (int64_t OutId : FoldOutputs) {
    auto It = Env.find(OutId);
    if (It == Env.end())
      fatalError("fold output was not computed");
    Cache.put(OutId, std::move(It->second));
  }
  Cache.markPopulated();
}

//===----------------------------------------------------------------------===//
// CompiledPartition
//===----------------------------------------------------------------------===//

void CompiledPartition::runFoldFunction() {
  runFoldGraph(Prog.FoldGraph, Prog.FoldOutputs, Cache);
}

void CompiledPartition::ensureFolded() {
  std::call_once(FoldOnce, [this] {
    runFoldFunction();
    FoldDone.store(true, std::memory_order_release);
  });
}

void CompiledPartition::resolveBindings() {
  Bindings.clear();
  Bindings.reserve(Prog.Bindings.size());
  for (const lower::Binding &B : Prog.Bindings) {
    ResolvedBinding R;
    R.BufferId = B.BufferId;
    R.TensorId = B.TensorId;
    R.Kind = B.Kind;
    switch (B.Kind) {
    case lower::BindingKind::Input: {
      const auto It = std::find(InputIds.begin(), InputIds.end(), B.TensorId);
      assert(It != InputIds.end() && "binding refers to unknown input");
      R.Arg = static_cast<size_t>(It - InputIds.begin());
      break;
    }
    case lower::BindingKind::Output: {
      const auto It =
          std::find(OutputIds.begin(), OutputIds.end(), B.TensorId);
      assert(It != OutputIds.end() && "binding refers to unknown output");
      R.Arg = static_cast<size_t>(It - OutputIds.begin());
      break;
    }
    case lower::BindingKind::Folded:
    case lower::BindingKind::ConstData:
      break; // addressed by TensorId
    }
    Bindings.push_back(R);
  }
}

Expected<CompiledPartition::ExecState> CompiledPartition::acquireExecState() {
  {
    std::lock_guard<std::mutex> Lock(EvalMutex);
    if (!IdleExecs.empty()) {
      ExecState State = std::move(IdleExecs.back());
      IdleExecs.pop_back();
      return State;
    }
  }
  if (fault::shouldFail(fault::kExecState))
    return fault::failStatus(fault::kExecState, StatusCode::ResourceExhausted,
                             "execution-state construction");
  ExecState State;
  if (Backend == exec::Backend::Bytecode)
    State.Byte = std::make_unique<exec::Executor>(Prog.Bytecode, *Pool);
  else
    State.Tree = std::make_unique<tir::Evaluator>(Prog.Entry, *Pool);
  return State;
}

namespace {

/// Idle ExecState pool cap: GC_EXEC_POOL (default 8, min 1). Raising it
/// helps sustained bursts of overlapping submissions of one partition;
/// each idle state pins its register frames and scratch arenas.
size_t execStatePoolCap() {
  static const size_t Cap = static_cast<size_t>(std::min<int64_t>(
      std::max<int64_t>(1, getEnvInt("GC_EXEC_POOL", 8)), 4096));
  return Cap;
}

} // namespace

void CompiledPartition::releaseExecState(ExecState State) {
  // Bound the idle pool so a one-off concurrency burst does not pin one
  // scratch arena per peak-concurrent execute for the partition's
  // lifetime; execution states beyond the cap are simply dropped.
  std::lock_guard<std::mutex> Lock(EvalMutex);
  if (IdleExecs.size() < execStatePoolCap())
    IdleExecs.push_back(std::move(State));
}

size_t CompiledPartition::idleExecStates() const {
  std::lock_guard<std::mutex> Lock(EvalMutex);
  return IdleExecs.size();
}

void CompiledPartition::prewarmExecStates(size_t N) {
  N = std::min(N, execStatePoolCap());
  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(EvalMutex);
      if (IdleExecs.size() >= N)
        return;
    }
    // Built outside the lock: state construction allocates frames.
    ExecState State;
    if (Backend == exec::Backend::Bytecode)
      State.Byte = std::make_unique<exec::Executor>(Prog.Bytecode, *Pool);
    else
      State.Tree = std::make_unique<tir::Evaluator>(Prog.Entry, *Pool);
    std::lock_guard<std::mutex> Lock(EvalMutex);
    // Re-checked under the lock: concurrent prewarms/releases may have
    // filled the pool meanwhile, and pushing blindly would overshoot
    // the cap for the partition's lifetime (the state just built is
    // simply dropped then).
    if (IdleExecs.size() >= N)
      return;
    IdleExecs.push_back(std::move(State));
  }
}

Status CompiledPartition::execute(
    const std::vector<runtime::TensorData *> &Inputs,
    const std::vector<runtime::TensorData *> &Outputs) {
  if (Inputs.size() != InputIds.size())
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("input arity mismatch: got %zu, expected %zu",
                     Inputs.size(), InputIds.size()));
  if (Outputs.size() != OutputIds.size())
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("output arity mismatch: got %zu, expected %zu",
                     Outputs.size(), OutputIds.size()));
  ensureFolded();

  Expected<ExecState> EvalOr = acquireExecState();
  if (!EvalOr)
    return EvalOr.status();
  ExecState Eval = EvalOr.takeValue();
  Status Result = Status::ok();
  for (const ResolvedBinding &B : Bindings) {
    switch (B.Kind) {
    case lower::BindingKind::Input: {
      runtime::TensorData *T = Inputs[B.Arg];
      if (!T || !T->valid()) {
        Result = Status::error(StatusCode::InvalidArgument,
                               "null input tensor passed to execute");
        break;
      }
      Eval.bindBuffer(B.BufferId, T->data());
      break;
    }
    case lower::BindingKind::Output: {
      runtime::TensorData *T = Outputs[B.Arg];
      if (!T || !T->valid()) {
        Result = Status::error(StatusCode::InvalidArgument,
                               "null output tensor passed to execute");
        break;
      }
      Eval.bindBuffer(B.BufferId, T->data());
      break;
    }
    case lower::BindingKind::Folded: {
      const runtime::TensorData *T = Cache.get(B.TensorId);
      // Internal invariant (the fold function populates every binding):
      // stays a loud abort so legacy callers ignoring the Status cannot
      // silently read an unwritten output.
      if (!T)
        fatalError("folded constant missing from the cache");
      Eval.bindBuffer(B.BufferId, const_cast<void *>(T->data()));
      break;
    }
    case lower::BindingKind::ConstData: {
      const runtime::TensorData *T = OptimizedG.constantData(B.TensorId);
      if (!T)
        fatalError("constant binding without data");
      Eval.bindBuffer(B.BufferId, const_cast<void *>(T->data()));
      break;
    }
    }
    if (!Result.isOk())
      break;
  }
  if (Result.isOk()) {
    if (fault::shouldFail(fault::kKernelDispatch))
      Result = fault::failStatus(fault::kKernelDispatch,
                                 StatusCode::Unavailable, "kernel dispatch");
    else
      Eval.run();
  }
  releaseExecState(std::move(Eval));
  return Result;
}

PartitionStats CompiledPartition::stats() const {
  PartitionStats S;
  S.CoarseGrainMerges = Prog.CoarseGrainMerges;
  // Disk-loaded partitions have no Tensor IR body; the count was
  // serialized with the artifact.
  S.ParallelNests = LoadedParallelNests >= 0
                        ? LoadedParallelNests
                        : tirpass::countParallelNests(Prog.Entry);
  S.ScratchArenaBytes = Prog.Entry.ArenaBytes;
  S.ScratchArenaBytesNoReuse = Prog.Entry.ArenaBytesNoReuse;
  // The fold-dependent fields read 0 until the first execution has run the
  // fold function (FoldDone orders the cache contents for this reader).
  if (FoldDone.load(std::memory_order_acquire)) {
    S.FoldedTensors = Cache.size();
    S.FoldedBytes = Cache.totalBytes();
  }
  return S;
}

std::vector<std::vector<int64_t>> CompiledPartition::outputShapes() const {
  std::vector<std::vector<int64_t>> Shapes;
  for (int64_t Out : OutputIds)
    Shapes.push_back(OptimizedG.tensor(Out).Shape);
  return Shapes;
}

CompileOptions primitivesBaselineOptions(int Threads) {
  CompileOptions Opts;
  Opts.Threads = Threads;
  Opts.PrimitivesMode = true;
  Opts.EnableCoarseGrainFusion = false;
  // Primitives compute the reference (stable) softmax.
  Opts.FastSoftmax = false;
  return Opts;
}

std::shared_ptr<runtime::ThreadPool> globalThreadPool() {
  // Non-owning handle: the global pool outlives every session/partition.
  return std::shared_ptr<runtime::ThreadPool>(&runtime::ThreadPool::global(),
                                              [](runtime::ThreadPool *) {});
}

Expected<std::shared_ptr<CompiledPartition>>
compilePartition(const Graph &G, const CompileOptions &Opts,
                 std::shared_ptr<runtime::ThreadPool> Pool) {
  // The bytecode pipeline is the degradable half of the backend choice:
  // failing it here lets Session::compile retry on the tree evaluator.
  if (Opts.Exec == exec::Backend::Bytecode &&
      fault::shouldFail(fault::kCompileBytecode))
    return fault::failStatus(fault::kCompileBytecode, StatusCode::Unavailable,
                             "bytecode compile pipeline");
  auto Partition = std::shared_ptr<CompiledPartition>(new CompiledPartition);
  Partition->OptimizedG = G.clone();
  Partition->Backend = Opts.Exec;

  // Thread pool: session-shared when provided, else derived from options.
  if (Pool)
    Partition->Pool = std::move(Pool);
  else if (Opts.Threads > 0)
    Partition->Pool = std::make_shared<runtime::ThreadPool>(Opts.Threads);
  else
    Partition->Pool = globalThreadPool();
  const int Threads = Partition->Pool->numThreads();

  // §V Graph IR pipeline.
  passes::PassOptions PassOpts;
  PassOpts.Threads = Threads;
  PassOpts.FastSoftmax = Opts.FastSoftmax;
  PassOpts.EnableLowPrecision = Opts.EnableLowPrecision;
  PassOpts.EnableFineGrainFusion = Opts.EnableFineGrainFusion;
  PassOpts.EnableLayoutPropagation = Opts.EnableLayoutPropagation;
  PassOpts.PrimitivesMode = Opts.PrimitivesMode;
  passes::PassManager PM(PassOpts);
  for (auto &P : passes::buildStandardPipeline(PassOpts))
    PM.addPass(std::move(P));
  if (const Status S = PM.run(Partition->OptimizedG); !S.isOk())
    return S;

  // Stable boundary ids (inputs never rewritten; outputs keep order).
  Partition->InputIds = Partition->OptimizedG.inputs();
  Partition->OutputIds = Partition->OptimizedG.outputs();

  // Lowering + Tensor IR passes.
  lower::DriverOptions DrvOpts;
  DrvOpts.Threads = Threads;
  DrvOpts.EnableCoarseGrainFusion = Opts.EnableCoarseGrainFusion;
  DrvOpts.EnableBufferReuse = Opts.EnableBufferReuse;
  Expected<lower::LoweredProgram> ProgOr =
      lower::lowerGraph(Partition->OptimizedG, DrvOpts);
  if (!ProgOr)
    return ProgOr.status();
  Partition->Prog = ProgOr.takeValue();
  Partition->resolveBindings();

  return Partition;
}

std::shared_ptr<CompiledPartition> compileGraph(const Graph &G,
                                                const CompileOptions &Opts) {
  api::Session S(Opts);
  Expected<std::shared_ptr<api::CompiledGraph>> CompiledOr = S.compile(G);
  if (!CompiledOr)
    fatalError(("compileGraph: " + CompiledOr.status().toString()).c_str());
  const api::CompiledGraph &CG = **CompiledOr;
  if (CG.numPartitions() != 1 || !CG.compiledPartition(0))
    fatalError("compileGraph: graph is not fully compilable as one "
               "partition; use api::Session::compile for fallback support");
  return CG.compiledPartition(0);
}

} // namespace core
} // namespace gc
