//===- buffer.cpp - Aligned memory buffers and arenas -------------------------===//

#include "runtime/buffer.h"

#include "support/common.h"

#include <cstdlib>
#include <cstring>

namespace gc {
namespace runtime {

AlignedBuffer::AlignedBuffer(size_t Bytes, size_t Alignment) {
  resize(Bytes, Alignment);
}

AlignedBuffer::~AlignedBuffer() { reset(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer &&Other) noexcept
    : Data(Other.Data), Bytes(Other.Bytes) {
  Other.Data = nullptr;
  Other.Bytes = 0;
}

AlignedBuffer &AlignedBuffer::operator=(AlignedBuffer &&Other) noexcept {
  if (this == &Other)
    return *this;
  reset();
  Data = Other.Data;
  Bytes = Other.Bytes;
  Other.Data = nullptr;
  Other.Bytes = 0;
  return *this;
}

void AlignedBuffer::reset() {
  std::free(Data);
  Data = nullptr;
  Bytes = 0;
}

void AlignedBuffer::resize(size_t NewBytes, size_t Alignment) {
  reset();
  if (NewBytes == 0)
    return;
  const size_t Rounded =
      (NewBytes + Alignment - 1) / Alignment * Alignment;
  Data = std::aligned_alloc(Alignment, Rounded);
  if (!Data)
    fatalError("aligned allocation failed");
  std::memset(Data, 0, Rounded);
  Bytes = NewBytes;
}

void PlanArena::ensure(size_t Bytes, size_t Alignment) {
  if (Bytes <= Storage.size())
    return;
  // Contents need not survive growth: resize() reallocates zero-filled.
  Storage.resize(Bytes, Alignment);
}

void *PlanArena::at(size_t Offset) {
  if (Offset == 0 && Storage.empty())
    return nullptr; // zero-size plan: nothing was ever ensured
  if (Offset >= Storage.size())
    fatalError("plan arena offset out of range (plan/arena mismatch)");
  return static_cast<char *>(Storage.data()) + Offset;
}

void *BumpArena::allocate(size_t Bytes, size_t Alignment) {
  size_t Aligned = (Offset + Alignment - 1) / Alignment * Alignment;
  if (Aligned + Bytes > Storage.size())
    fatalError("bump arena exhausted (lowering under-computed scratch size)");
  void *Ptr = static_cast<char *>(Storage.data()) + Aligned;
  Offset = Aligned + Bytes;
  return Ptr;
}

} // namespace runtime
} // namespace gc
