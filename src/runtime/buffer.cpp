//===- buffer.cpp - Aligned memory buffers and arenas -------------------------===//

#include "runtime/buffer.h"

#include "support/common.h"
#include "support/env.h"
#include "support/fault.h"
#include "support/str.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace gc {
namespace runtime {

namespace {

/// MemBudget ledger: the charged-byte counter and the (test-overridable)
/// limit. CAS loop on charge so concurrent executions cannot jointly
/// overshoot the limit.
std::atomic<size_t> BudgetCharged{0};
std::atomic<int64_t> BudgetLimit{-1}; ///< -1 = not resolved from env yet

} // namespace

int64_t MemBudget::limit() {
  int64_t L = BudgetLimit.load(std::memory_order_relaxed);
  if (L < 0) {
    L = std::max<int64_t>(0, getEnvInt("GC_MEM_LIMIT", 0));
    BudgetLimit.store(L, std::memory_order_relaxed);
  }
  return L;
}

void MemBudget::setLimitForTesting(int64_t Bytes) {
  BudgetLimit.store(std::max<int64_t>(0, Bytes), std::memory_order_relaxed);
}

bool MemBudget::tryCharge(size_t Bytes) {
  const int64_t Limit = limit();
  if (Limit <= 0) {
    BudgetCharged.fetch_add(Bytes, std::memory_order_relaxed);
    return true;
  }
  size_t Cur = BudgetCharged.load(std::memory_order_relaxed);
  for (;;) {
    if (Cur + Bytes > static_cast<size_t>(Limit))
      return false;
    if (BudgetCharged.compare_exchange_weak(Cur, Cur + Bytes,
                                            std::memory_order_relaxed))
      return true;
  }
}

void MemBudget::release(size_t Bytes) {
  BudgetCharged.fetch_sub(Bytes, std::memory_order_relaxed);
}

size_t MemBudget::chargedBytes() {
  return BudgetCharged.load(std::memory_order_relaxed);
}

AlignedBuffer::AlignedBuffer(size_t Bytes, size_t Alignment) {
  resize(Bytes, Alignment);
}

AlignedBuffer::~AlignedBuffer() { reset(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer &&Other) noexcept
    : Data(Other.Data), Bytes(Other.Bytes) {
  Other.Data = nullptr;
  Other.Bytes = 0;
}

AlignedBuffer &AlignedBuffer::operator=(AlignedBuffer &&Other) noexcept {
  if (this == &Other)
    return *this;
  reset();
  Data = Other.Data;
  Bytes = Other.Bytes;
  Other.Data = nullptr;
  Other.Bytes = 0;
  return *this;
}

void AlignedBuffer::reset() {
  std::free(Data);
  Data = nullptr;
  Bytes = 0;
}

void AlignedBuffer::resize(size_t NewBytes, size_t Alignment) {
  if (!tryResize(NewBytes, Alignment))
    fatalError("aligned allocation failed");
}

bool AlignedBuffer::tryResize(size_t NewBytes, size_t Alignment) {
  reset();
  if (NewBytes == 0)
    return true;
  const size_t Rounded =
      (NewBytes + Alignment - 1) / Alignment * Alignment;
  Data = std::aligned_alloc(Alignment, Rounded);
  if (!Data)
    return false;
  std::memset(Data, 0, Rounded);
  Bytes = NewBytes;
  return true;
}

PlanArena::~PlanArena() {
  if (Charged > 0)
    MemBudget::release(Charged);
}

Status PlanArena::tryEnsure(size_t Bytes, size_t Alignment) {
  if (Bytes <= Storage.size())
    return Status::ok();
  if (fault::shouldFail(fault::kArenaGrow))
    return fault::failStatus(fault::kArenaGrow, StatusCode::ResourceExhausted,
                             "execution-arena growth");
  // Charge the delta against the process budget before allocating. A
  // budget rejection leaves the arena at its previous capacity; an
  // allocation failure leaves it empty (tryResize frees the old region
  // first — contents never survive growth anyway) with the accounting
  // zeroed to match.
  const size_t NewCharge =
      (Bytes + Alignment - 1) / Alignment * Alignment;
  const size_t Delta = NewCharge - Charged;
  if (!MemBudget::tryCharge(Delta))
    return Status::error(
        StatusCode::ResourceExhausted,
        formatString("execution arena of %zu bytes would exceed "
                     "GC_MEM_LIMIT=%lld (%zu bytes already charged)",
                     Bytes, (long long)MemBudget::limit(),
                     MemBudget::chargedBytes()));
  // Contents need not survive growth: tryResize() reallocates
  // zero-filled.
  if (!Storage.tryResize(Bytes, Alignment)) {
    MemBudget::release(Delta + Charged);
    Charged = 0;
    return Status::error(
        StatusCode::ResourceExhausted,
        formatString("execution arena allocation of %zu bytes failed",
                     Bytes));
  }
  Charged = NewCharge;
  return Status::ok();
}

void *PlanArena::at(size_t Offset) {
  if (Offset == 0 && Storage.empty())
    return nullptr; // zero-size plan: nothing was ever ensured
  if (Offset >= Storage.size())
    fatalError("plan arena offset out of range (plan/arena mismatch)");
  return static_cast<char *>(Storage.data()) + Offset;
}

void *BumpArena::allocate(size_t Bytes, size_t Alignment) {
  size_t Aligned = (Offset + Alignment - 1) / Alignment * Alignment;
  if (Aligned + Bytes > Storage.size())
    fatalError("bump arena exhausted (lowering under-computed scratch size)");
  void *Ptr = static_cast<char *>(Storage.data()) + Aligned;
  Offset = Aligned + Bytes;
  return Ptr;
}

} // namespace runtime
} // namespace gc
