//===- thread_pool.cpp - Persistent worker pool & parallel_for ----------------===//

#include "runtime/thread_pool.h"

#include "support/common.h"
#include "support/env.h"

#include <algorithm>

namespace gc {
namespace runtime {

namespace {

/// One spin-wait iteration: a pause on x86 (frees the sibling hyperthread
/// and lowers power), a compiler barrier elsewhere.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

} // namespace

ThreadPool::ThreadPool(int NumThreads) {
  if (NumThreads <= 0) {
    // GC_THREADS is the public knob (bench/CI thread matrix); GC_NUM_THREADS
    // is kept as a legacy alias.
    int64_t FromEnv = getEnvInt("GC_THREADS", 0);
    if (FromEnv <= 0)
      FromEnv = getEnvInt("GC_NUM_THREADS", 0);
    if (FromEnv > 0)
      NumThreads = static_cast<int>(FromEnv);
    else
      NumThreads = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
  }
  NumWorkers = std::max(1, NumThreads);
  SpinIters = static_cast<int>(
      std::max<int64_t>(0, getEnvInt("GC_SPIN_ITERS", 4000)));
  SpawnedWorkers.fetch_add(NumWorkers - 1, std::memory_order_relaxed);
  // Worker 0 is the calling thread; spawn the rest.
  Threads.reserve(static_cast<size_t>(NumWorkers - 1));
  for (int W = 1; W < NumWorkers; ++W)
    Threads.emplace_back([this, W] { workerLoop(W); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown.store(true, std::memory_order_release);
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
  SpawnedWorkers.fetch_sub(NumWorkers - 1, std::memory_order_relaxed);
}

std::atomic<int> ThreadPool::SpawnedWorkers{0};

int ThreadPool::spinBudget() const {
  // Spinning only helps when every worker owns a core. The check is
  // process-wide: several pools can coexist (per-session pools plus the
  // global one), and once their spawned workers oversubscribe the
  // machine, a spinning thread just steals cycles from the worker it is
  // waiting on — park immediately instead. Re-evaluated per wait so
  // pools created later are accounted for.
  static const int Hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  return SpawnedWorkers.load(std::memory_order_relaxed) + 1 <= Hw
             ? SpinIters
             : 0;
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

void ThreadPool::runRange(int ThreadId) {
  // Static partition: worker ThreadId takes its contiguous chunk.
  const int64_t Total = JobEnd - JobBegin;
  const int64_t Chunk = ceilDiv(Total, NumWorkers);
  const int64_t Lo = JobBegin + ThreadId * Chunk;
  const int64_t Hi = std::min(JobEnd, Lo + Chunk);
  for (int64_t I = Lo; I < Hi; ++I)
    JobBody(JobCtx, I, ThreadId);
}

void ThreadPool::workerLoop(int WorkerIndex) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    // Bounded spin before parking: short nests are re-submitted within a
    // few microseconds, so burning a few thousand pause iterations beats a
    // futex round trip. The job fields are published before the release
    // store to Generation, so an acquire load here orders their reads.
    uint64_t Gen = SeenGeneration;
    bool HaveJob = false;
    const int Budget = spinBudget();
    for (int Spin = 0; Spin < Budget; ++Spin) {
      if (ShuttingDown.load(std::memory_order_acquire))
        return;
      Gen = Generation.load(std::memory_order_acquire);
      if (Gen != SeenGeneration) {
        HaveJob = true;
        break;
      }
      cpuRelax();
    }
    if (!HaveJob) {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeCv.wait(Lock, [&] {
        return ShuttingDown.load(std::memory_order_relaxed) ||
               Generation.load(std::memory_order_relaxed) != SeenGeneration;
      });
      if (ShuttingDown.load(std::memory_order_relaxed))
        return;
      Gen = Generation.load(std::memory_order_relaxed);
    }
    SeenGeneration = Gen;
    runRange(WorkerIndex);
    // Last worker out wakes the submitter. Taking the mutex around the
    // notify closes the window between the submitter's predicate check
    // and its wait.
    if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> Lock(Mutex);
      DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelForRaw(int64_t Begin, int64_t End, JobFn Fn,
                                void *Ctx) {
  if (Begin >= End)
    return;
  if (NumWorkers == 1 || End - Begin == 1) {
    // Serial fast path; still counts as one (degenerate) barrier so the
    // coarse-grain ablation can count loop regions uniformly.
    Barriers.fetch_add(1, std::memory_order_relaxed);
    for (int64_t I = Begin; I < End; ++I)
      Fn(Ctx, I, 0);
    return;
  }
  std::lock_guard<std::mutex> Submit(SubmitMutex);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobBody = Fn;
    JobCtx = Ctx;
    JobBegin = Begin;
    JobEnd = End;
    Pending.store(NumWorkers - 1, std::memory_order_relaxed);
    Generation.fetch_add(1, std::memory_order_release);
    Barriers.fetch_add(1, std::memory_order_relaxed);
  }
  WakeCv.notify_all();
  runRange(/*ThreadId=*/0);
  // Spin for stragglers before parking; the tail of a balanced nest
  // finishes within the spin budget.
  bool Done = false;
  const int Budget = spinBudget();
  for (int Spin = 0; Spin < Budget; ++Spin) {
    if (Pending.load(std::memory_order_acquire) == 0) {
      Done = true;
      break;
    }
    cpuRelax();
  }
  if (!Done) {
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCv.wait(Lock, [&] {
      return Pending.load(std::memory_order_relaxed) == 0;
    });
  }
  JobBody = nullptr;
  JobCtx = nullptr;
}

} // namespace runtime
} // namespace gc
