//===- thread_pool.cpp - Persistent worker pool & parallel_for ----------------===//

#include "runtime/thread_pool.h"

#include "support/common.h"
#include "support/env.h"

#include <algorithm>

namespace gc {
namespace runtime {

ThreadPool::ThreadPool(int NumThreads) {
  if (NumThreads <= 0) {
    const int64_t FromEnv = getEnvInt("GC_NUM_THREADS", 0);
    if (FromEnv > 0)
      NumThreads = static_cast<int>(FromEnv);
    else
      NumThreads = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
  }
  NumWorkers = std::max(1, NumThreads);
  // Worker 0 is the calling thread; spawn the rest.
  Threads.reserve(static_cast<size_t>(NumWorkers - 1));
  for (int W = 1; W < NumWorkers; ++W)
    Threads.emplace_back([this, W] { workerLoop(W); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

void ThreadPool::runRange(int64_t Begin, int64_t End, int ThreadId) {
  // Static partition: worker ThreadId takes its contiguous chunk.
  const int64_t Total = JobEnd - JobBegin;
  const int64_t Chunk = ceilDiv(Total, NumWorkers);
  const int64_t Lo = JobBegin + ThreadId * Chunk;
  const int64_t Hi = std::min(JobEnd, Lo + Chunk);
  for (int64_t I = Lo; I < Hi; ++I)
    (*JobBody)(I, ThreadId);
  (void)Begin;
  (void)End;
}

void ThreadPool::workerLoop(int WorkerIndex) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeCv.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
    }
    runRange(JobBegin, JobEnd, WorkerIndex);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Pending == 0)
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(
    int64_t Begin, int64_t End,
    const std::function<void(int64_t I, int ThreadId)> &Body) {
  if (Begin >= End)
    return;
  if (NumWorkers == 1 || End - Begin == 1) {
    // Serial fast path; still counts as one (degenerate) barrier so the
    // coarse-grain ablation can count loop regions uniformly.
    Barriers.fetch_add(1, std::memory_order_relaxed);
    for (int64_t I = Begin; I < End; ++I)
      Body(I, 0);
    return;
  }
  std::lock_guard<std::mutex> Submit(SubmitMutex);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobBody = &Body;
    JobBegin = Begin;
    JobEnd = End;
    Pending = NumWorkers - 1;
    ++Generation;
    Barriers.fetch_add(1, std::memory_order_relaxed);
  }
  WakeCv.notify_all();
  runRange(Begin, End, /*ThreadId=*/0);
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCv.wait(Lock, [&] { return Pending == 0; });
    JobBody = nullptr;
  }
}

} // namespace runtime
} // namespace gc
