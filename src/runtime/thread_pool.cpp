//===- thread_pool.cpp - Persistent worker pool & parallel_for ----------------===//

#include "runtime/thread_pool.h"

#include "support/common.h"
#include "support/env.h"
#include "support/fault.h"

#include <algorithm>

namespace gc {
namespace runtime {

namespace {

/// One spin-wait iteration: a pause on x86 (frees the sibling hyperthread
/// and lowers power), a compiler barrier elsewhere.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Set on pool worker threads for their whole lifetime and around task
/// bodies run via tryRunOneTask/submitTask-inline on foreign threads.
/// parallelFor consults it to run nested regions inline serially.
thread_local bool TlOnWorkerThread = false;

} // namespace

ThreadPool::ThreadPool(int NumThreads) {
  if (NumThreads <= 0) {
    // GC_THREADS is the public knob (bench/CI thread matrix); GC_NUM_THREADS
    // is kept as a legacy alias. Clamp to [1, 1024]: a negative or absurd
    // value (getEnvInt rejects garbage but not sign) must degrade to a
    // sane pool, not underflow worker bookkeeping or spawn millions of
    // threads.
    constexpr int64_t kMaxThreads = 1024;
    int64_t FromEnv = getEnvInt("GC_THREADS", 0);
    if (FromEnv <= 0)
      FromEnv = getEnvInt("GC_NUM_THREADS", 0);
    if (FromEnv > 0)
      NumThreads = static_cast<int>(std::min(FromEnv, kMaxThreads));
    else
      NumThreads = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
  }
  NumWorkers = std::max(1, NumThreads);
  // Negative spin counts mean "no spin", and an enormous one is a typo,
  // not a request to burn a core for minutes before parking.
  SpinIters = static_cast<int>(std::min<int64_t>(
      std::max<int64_t>(0, getEnvInt("GC_SPIN_ITERS", 4000)), 1 << 26));
  SpawnedWorkers.fetch_add(NumWorkers - 1, std::memory_order_relaxed);
  // Worker 0 is the calling thread; spawn the rest.
  Threads.reserve(static_cast<size_t>(NumWorkers - 1));
  for (int W = 1; W < NumWorkers; ++W)
    Threads.emplace_back([this, W] { workerLoop(W); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown.store(true, std::memory_order_release);
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
  SpawnedWorkers.fetch_sub(NumWorkers - 1, std::memory_order_relaxed);
}

std::atomic<int> ThreadPool::SpawnedWorkers{0};

bool ThreadPool::oversubscribed() {
  // Process-wide: several pools can coexist (per-session pools plus the
  // global one); once their spawned workers outnumber the machine's
  // cores, extra running threads only steal cycles from each other.
  // Re-evaluated per call so pools created later are accounted for.
  static const int Hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  return SpawnedWorkers.load(std::memory_order_relaxed) + 1 > Hw;
}

int ThreadPool::spinBudget() const {
  // Spinning only helps when every worker owns a core; oversubscribed,
  // a spinning thread just steals cycles from the worker it is waiting
  // on — park immediately instead.
  return oversubscribed() ? 0 : SpinIters;
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

namespace {

/// Chunk index marking a closed claim word: no region is accepting
/// claims (the submitter is about to rewrite the job fields). Ordinary
/// regions have NumChunks <= NumWorkers, far below this.
constexpr uint64_t kClosedChunk = uint64_t(1) << 31;
constexpr uint64_t kChunkMask = 0xffffffffu;

} // namespace

void ThreadPool::runRange() {
  // Dynamic chunk claiming: every participant (workers, the submitter,
  // stragglers from a previous region) takes the next unclaimed chunk,
  // so a worker occupied by a long task stalls nothing — the rest
  // absorb its share and the region completes without it. The claim
  // word's upper bits carry the generation: whichever region a claim
  // lands on, the acquire RMW synchronizes with the release store that
  // published that region's fields, so reading them is always safe once
  // the chunk index is in range.
  //
  // The body's ThreadId is the CHUNK index, not the worker identity:
  // chunk C covers exactly the range static partitioning used to give
  // worker C, so per-"thread" scratch stays exclusive (one claimant per
  // chunk) and the iteration->scratch-slot mapping is identical to the
  // static scheme regardless of which worker runs the chunk.
  ActiveClaimants.fetch_add(1, std::memory_order_acquire);
  for (;;) {
    const uint64_t Claim =
        ClaimWord.fetch_add(1, std::memory_order_acq_rel);
    const int64_t Chunk = static_cast<int64_t>(Claim & kChunkMask);
    if (Chunk >= static_cast<int64_t>(kClosedChunk))
      break; // closed: fields may be mid-rewrite, do not read them
    if (Chunk >= NumChunks)
      break; // region exhausted
    const int64_t Lo = JobBegin + Chunk * ChunkSize;
    const int64_t Hi = std::min(JobEnd, Lo + ChunkSize);
    for (int64_t I = Lo; I < Hi; ++I)
      JobBody(JobCtx, I, static_cast<int>(Chunk));
    if (ChunksDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        NumChunks) {
      // Last chunk out wakes the submitter. Taking the mutex around the
      // notify closes the window between the submitter's predicate
      // check and its wait.
      std::lock_guard<std::mutex> Lock(Mutex);
      DoneCv.notify_all();
      break;
    }
  }
  ActiveClaimants.fetch_sub(1, std::memory_order_release);
}

void ThreadPool::runTaskBody(TaskFn Fn, void *Ctx) {
  const bool Was = TlOnWorkerThread;
  TlOnWorkerThread = true;
  Fn(Ctx);
  TlOnWorkerThread = Was;
}

bool ThreadPool::onWorkerThread() { return TlOnWorkerThread; }

void ThreadPool::submitTask(TaskFn Fn, void *Ctx) {
  const std::pair<TaskFn, void *> One(Fn, Ctx);
  submitTaskBatch(&One, 1);
}

bool ThreadPool::trySubmitTaskBatch(const std::pair<TaskFn, void *> *TasksIn,
                                    size_t N) {
  // All-or-nothing: the seam is evaluated once per batch, so a refused
  // batch never leaves half a fan-out enqueued.
  if (fault::shouldFail(fault::kPoolSubmit))
    return false;
  submitTaskBatch(TasksIn, N);
  return true;
}

void ThreadPool::submitTaskBatch(const std::pair<TaskFn, void *> *TasksIn,
                                 size_t N) {
  if (N == 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I < N; ++I)
      Tasks.push_back(TasksIn[I]);
    TasksPending.fetch_add(N, std::memory_order_release);
  }
  if (NumWorkers == 1) {
    // No spawned workers to hand the tasks to: drain on the caller. A
    // submit from inside a task body (a continuation) only enqueues —
    // the drain loop of the outermost caller picks it up, so a deep
    // partition chain runs iteratively, not one stack frame per task.
    if (!TlOnWorkerThread)
      while (tryRunOneTask()) {
      }
    return;
  }
  // One wake regardless of batch size: the woken worker chains another
  // wake while tasks remain (see popAndRunTask), so the herd grows on
  // demand instead of stampeding a mostly-drained queue.
  WakeCv.notify_one();
}

bool ThreadPool::popAndRunTask(bool ChainWake) {
  TaskFn Fn = nullptr;
  void *Ctx = nullptr;
  bool Remaining = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Tasks.empty())
      return false;
    Fn = Tasks.front().first;
    Ctx = Tasks.front().second;
    Tasks.pop_front();
    TasksPending.fetch_sub(1, std::memory_order_relaxed);
    Remaining = !Tasks.empty();
  }
  // Chain-waking only helps when a spare core can actually run the
  // woken peer; oversubscribed, an extra awake worker just preempts the
  // ones making progress (same policy as the spin auto-disable), and
  // the queue still drains through this worker and any helping waiter.
  if (ChainWake && Remaining && !oversubscribed())
    WakeCv.notify_one();
  runTaskBody(Fn, Ctx);
  return true;
}

bool ThreadPool::tryRunOneTask() { return popAndRunTask(false); }

void ThreadPool::workerLoop([[maybe_unused]] int WorkerIndex) {
  TlOnWorkerThread = true;
  uint64_t SeenGeneration = 0;
  for (;;) {
    // Bounded spin before parking: short nests are re-submitted within a
    // few microseconds, so burning a few thousand pause iterations beats a
    // futex round trip. The job fields are published before the release
    // store to Generation, so an acquire load here orders their reads.
    // Fork/join regions outrank queued tasks: the generation check comes
    // first in both the spin and the post-wake dispatch.
    uint64_t Gen = SeenGeneration;
    bool HaveJob = false;
    bool HaveTask = false;
    const int Budget = spinBudget();
    for (int Spin = 0; Spin < Budget; ++Spin) {
      if (ShuttingDown.load(std::memory_order_acquire))
        return;
      Gen = Generation.load(std::memory_order_acquire);
      if (Gen != SeenGeneration) {
        HaveJob = true;
        break;
      }
      if (TasksPending.load(std::memory_order_acquire) > 0) {
        HaveTask = true;
        break;
      }
      cpuRelax();
    }
    if (!HaveJob && !HaveTask) {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeCv.wait(Lock, [&] {
        return ShuttingDown.load(std::memory_order_relaxed) ||
               Generation.load(std::memory_order_relaxed) !=
                   SeenGeneration ||
               !Tasks.empty();
      });
      if (ShuttingDown.load(std::memory_order_relaxed))
        return;
      Gen = Generation.load(std::memory_order_relaxed);
    }
    if (Gen != SeenGeneration) {
      SeenGeneration = Gen;
      // Completion is tracked per chunk inside runRange; arriving late
      // (region already exhausted by the others) is a cheap no-op.
      runRange();
      continue;
    }
    // No fork/join region pending: drain one task and re-check. A task
    // may run long; a parallelFor submitted meanwhile proceeds without
    // this worker (dynamic chunk claiming). Chain-wake a peer while
    // tasks remain so a batched submit engages workers on demand.
    popAndRunTask(/*ChainWake=*/true);
  }
}

void ThreadPool::parallelForRaw(int64_t Begin, int64_t End, JobFn Fn,
                                void *Ctx) {
  if (Begin >= End)
    return;
  if (NumWorkers == 1 || End - Begin == 1 || TlOnWorkerThread) {
    // Serial fast path; still counts as one (degenerate) barrier so the
    // coarse-grain ablation can count loop regions uniformly. The
    // TlOnWorkerThread case is a nested region (a parallelFor from inside
    // a task or another region's body): running it inline serially as
    // ThreadId 0 keeps nesting deadlock-proof — a worker can never wait
    // on peers that may themselves be stuck waiting — and stays correct
    // because per-execution scratch is private to the leased ExecState,
    // not shared across concurrent tasks.
    Barriers.fetch_add(1, std::memory_order_relaxed);
    for (int64_t I = Begin; I < End; ++I)
      Fn(Ctx, I, 0);
    return;
  }
  std::lock_guard<std::mutex> Submit(SubmitMutex);
  // Close the claim word and wait for in-flight claimants to leave
  // runRange before touching the job fields: a straggler from the
  // previous region that already entered may still be reading them.
  // New arrivals see the closed chunk index and bail out immediately.
  {
    const uint64_t Closed =
        (ClaimWord.load(std::memory_order_relaxed) & ~kChunkMask) |
        kClosedChunk;
    ClaimWord.store(Closed, std::memory_order_release);
  }
  while (ActiveClaimants.load(std::memory_order_acquire) != 0)
    cpuRelax();
  const uint64_t Gen = Generation.load(std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobBody = Fn;
    JobCtx = Ctx;
    JobBegin = Begin;
    JobEnd = End;
    ChunkSize = ceilDiv(End - Begin, NumWorkers);
    NumChunks = ceilDiv(End - Begin, ChunkSize);
    ChunksDone.store(0, std::memory_order_relaxed);
    // Publishes the region: claims synchronize with the ClaimWord
    // store. Generation is released after it so a worker that observes
    // the new generation is guaranteed to see the open claim word (and
    // not bail on the stale closed one).
    ClaimWord.store(Gen << 32, std::memory_order_release);
    Generation.store(Gen, std::memory_order_release);
    Barriers.fetch_add(1, std::memory_order_relaxed);
  }
  WakeCv.notify_all();
  runRange();
  // Spin for straggling chunks before parking; the tail of a balanced
  // nest finishes within the spin budget.
  const int64_t Chunks = NumChunks;
  bool Done = false;
  const int Budget = spinBudget();
  for (int Spin = 0; Spin < Budget; ++Spin) {
    if (ChunksDone.load(std::memory_order_acquire) == Chunks) {
      Done = true;
      break;
    }
    cpuRelax();
  }
  if (!Done) {
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCv.wait(Lock, [&] {
      return ChunksDone.load(std::memory_order_relaxed) == Chunks;
    });
  }
}

} // namespace runtime
} // namespace gc
