//===- const_cache.cpp - Folded-constant cache ---------------------------------===//

#include "runtime/const_cache.h"

namespace gc {
namespace runtime {

void ConstCache::put(int64_t TensorId, TensorData Data) {
  Cache[TensorId] = std::move(Data);
}

const TensorData *ConstCache::get(int64_t TensorId) const {
  auto It = Cache.find(TensorId);
  if (It == Cache.end())
    return nullptr;
  return &It->second;
}

int64_t ConstCache::totalBytes() const {
  int64_t Bytes = 0;
  for (const auto &[Id, Data] : Cache)
    Bytes += Data.numBytes();
  return Bytes;
}

void ConstCache::clear() {
  Cache.clear();
  Populated = false;
}

} // namespace runtime
} // namespace gc
