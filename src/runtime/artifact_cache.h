//===- artifact_cache.h - Persistent compiled-artifact store ----*- C++ -*-===//
///
/// \file
/// The on-disk half of the persistent compiled-artifact cache: a directory
/// of versioned, checksummed artifact files keyed by 64-bit cache keys
/// (core::artifactCacheKey — graph fingerprint + pipeline options + thread
/// count + kernel tier + build hash). This layer knows nothing about what
/// an artifact *contains*; it owns the file format envelope, mmap loading,
/// crash-safe atomic stores, cross-process per-key locking, and the LRU
/// byte-cap garbage collection. core::ArtifactCodec owns the payload.
///
/// On-disk layout (one directory, flat):
///   <key:016x>.gca        one artifact: 40-byte header + payload
///   <key:016x>.lock       flock target serializing compile-and-store
///   *.gca.tmp.<pid>       in-flight writes (renamed into place; stale
///                         ones from crashed writers are swept by GC)
///
/// Header (40 bytes, native-endian like the payload):
///   u32 magic 'GCAC' | u32 format version | u64 cache key
///   u64 payload bytes | u64 FNV-1a payload checksum | u64 reserved(0)
///
/// A load mmaps the file, re-validates every header field INCLUDING the
/// full payload checksum, and hands the payload span to the codec — a
/// truncated, bit-flipped, version-skewed or zero-length entry is rejected
/// here with a located Status and the caller falls back to a fresh
/// compile. Stores write to a temp file, fsync, and atomically rename, so
/// concurrent readers only ever observe complete entries and a crashed
/// writer leaves no partial artifact under the final name.
///
/// Environment (resolved by Config::fromEnv, used by core::CompileOptions):
///   GC_CACHE=off|read|rw      mode (default off)
///   GC_CACHE_DIR=<path>       cache directory (default
///                             $XDG_CACHE_HOME/gc-artifacts or
///                             $HOME/.cache/gc-artifacts, else off)
///   GC_CACHE_MAX_BYTES=<n>    LRU byte cap (default 256 MiB; <= 0 means
///                             unlimited)
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_ARTIFACT_CACHE_H
#define GC_RUNTIME_ARTIFACT_CACHE_H

#include "runtime/mapped_file.h"
#include "support/status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gc {
namespace runtime {

/// What the process is allowed to do with the on-disk cache.
enum class CacheMode : uint8_t {
  Off,       ///< never touch the disk
  Read,      ///< load existing entries, never write
  ReadWrite, ///< load, and store freshly compiled artifacts
};

/// Resolves GC_CACHE ("off" | "read" | "rw", default off; unknown values
/// warn under GC_VERBOSE and fall back to off).
CacheMode defaultCacheMode();
/// Resolves GC_CACHE_DIR (possibly empty; see header comment for the
/// fallback chain).
std::string defaultCacheDir();
/// Resolves GC_CACHE_MAX_BYTES (default 256 MiB; <= 0 means unlimited).
int64_t defaultCacheMaxBytes();

/// A successfully loaded and envelope-validated artifact: the payload span
/// plus the mapping that owns it. Deserialized partitions keep the Map
/// pin alive for as long as they vend zero-copy views into it.
struct LoadedArtifact {
  std::shared_ptr<MappedFile> Map;
  const void *Payload = nullptr;
  size_t PayloadBytes = 0;
};

/// One artifact cache directory. Thread-safe (stateless between calls
/// except the directory itself); cross-process safe (atomic rename +
/// per-key flock).
class ArtifactCache {
public:
  struct Config {
    CacheMode Mode = CacheMode::Off;
    std::string Dir;
    int64_t MaxBytes = 256ll << 20;

    /// The GC_CACHE* environment resolution (see header comment).
    static Config fromEnv();
  };

  /// Creates the cache over \p Cfg, creating the directory (parents
  /// included) when writable mode asks for it. A config with mode Off or
  /// an empty directory yields a disabled cache (enabled() == false) —
  /// callers can construct unconditionally and test once.
  explicit ArtifactCache(Config Cfg);

  bool enabled() const { return Enabled; }
  bool writable() const {
    return Enabled && Cfg.Mode == CacheMode::ReadWrite;
  }
  const std::string &dir() const { return Cfg.Dir; }

  /// Loads and envelope-validates entry \p Key: header magic/version/key
  /// agreement, payload length against the file size, and the full FNV-1a
  /// payload checksum. A missing entry and a corrupt entry are both
  /// errors (distinguishable by message); neither crashes. On success the
  /// entry's mtime is bumped so LRU eviction sees the use.
  Expected<LoadedArtifact> load(uint64_t Key) const;

  /// Stores \p Payload under \p Key crash-safely: temp file in the same
  /// directory, fsync, atomic rename. Then runs the byte-cap GC. Fails
  /// (without corrupting anything) on I/O errors or when not writable.
  Status store(uint64_t Key, const void *Payload, size_t Bytes) const;

  /// Acquires the cross-process compile lock for \p Key, waiting at most
  /// GC_CACHE_LOCK_MS milliseconds (default 2000; <= 0 means a single
  /// non-blocking attempt) before failing with Unavailable. A stuck or
  /// slow holder therefore delays a compile by a bounded amount; callers
  /// treat lock failure as "compile in-process without the cache", never
  /// as a compile failure. Pattern: miss -> lockEntry -> re-load (another
  /// process may have stored while we waited) -> compile -> store ->
  /// release.
  Expected<std::shared_ptr<FileLock>> lockEntry(uint64_t Key) const;

  /// True when entry \p Key exists (no validation).
  bool contains(uint64_t Key) const;
  /// Removes entry \p Key if present (never fails; used by tests).
  void evict(uint64_t Key) const;

  /// Total bytes of *.gca entries currently in the directory.
  int64_t totalBytes() const;

  /// Enforces Config::MaxBytes: deletes oldest-mtime entries until the
  /// directory fits, and sweeps stale temp files from crashed writers.
  /// Safe to run concurrently with loads in other processes (their
  /// mappings survive the unlink). Called by store(); exposed for tests.
  void collectGarbage() const;

  /// Path of entry \p Key ("<dir>/<key:016x>.gca"); exposed so tests can
  /// corrupt entries byte-precisely.
  std::string entryPath(uint64_t Key) const;

  /// Path of the compile lock for \p Key ("<dir>/<key:016x>.lock");
  /// exposed so tests can hold the lock and exercise the bounded-wait
  /// fallback.
  std::string lockPath(uint64_t Key) const;

private:
  Config Cfg;
  bool Enabled = false;
};

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_ARTIFACT_CACHE_H
