//===- thread_pool.h - Persistent worker pool & parallel_for ----*- C++ -*-===//
///
/// \file
/// The multi-core substrate for the outermost parallel loops the templates
/// emit (§III "the outer parallel loops divide the kernel into multiple
/// subtasks for multi-cores"). A persistent pool avoids thread creation on
/// every kernel call; each parallelFor is one fork/join region, so merging
/// two loop nests (coarse-grain fusion) removes one synchronization barrier,
/// exactly the effect the paper measures.
///
/// Hot-path design: the job body is passed by reference through a plain
/// function pointer + context pointer (no std::function, no heap
/// allocation per nest), and both the workers and the submitting thread
/// spin for a bounded number of iterations before parking on a condition
/// variable, which cuts fork/join latency on the short parallel nests that
/// dominate small-shape inference.
///
/// On top of the fork/join layer sits a one-shot task queue
/// (submitTask()), the substrate of the async partition scheduler
/// (api/scheduler.h): idle workers drain queued tasks between fork/join
/// regions. A parallelFor issued from inside a task (or from any pool
/// worker) runs inline serially — nesting is deadlock-proof by
/// construction, and concurrent tasks each keep their ThreadId-0 scratch
/// because per-execution state is leased per task, never shared.
///
/// Environment knobs:
///   GC_THREADS      worker threads (default: hardware concurrency);
///                   GC_NUM_THREADS is honored as a legacy alias
///   GC_SPIN_ITERS   bounded spin iterations before parking (default 4000;
///                   spinning auto-disables while the pools of this
///                   process together oversubscribe the machine — more
///                   spawned workers than cores)
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_THREAD_POOL_H
#define GC_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gc {
namespace runtime {

/// Persistent fork/join thread pool with dynamically claimed chunks plus
/// a one-shot task queue for the async partition scheduler.
class ThreadPool {
public:
  /// Job callback: (context, iteration index, worker id).
  using JobFn = void (*)(void *Ctx, int64_t I, int ThreadId);

  /// Creates a pool with \p NumThreads workers (including the caller).
  /// NumThreads == 0 selects GC_NUM_THREADS or hardware concurrency.
  explicit ThreadPool(int NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of workers (>= 1), including the calling thread.
  int numThreads() const { return NumWorkers; }

  /// Runs Body(I) for I in [Begin, End) across the pool. Body must be safe
  /// to invoke concurrently for distinct I. Blocks until all iterations
  /// complete (one barrier per call). ThreadId passed to Body is the
  /// contiguous-chunk index in [0, numThreads()) — exclusive to one
  /// participant at a time, so it is a safe per-call scratch-slot key
  /// (it identifies the chunk, not the executing OS thread). Safe to
  /// call from multiple threads concurrently: fork/join regions from
  /// different submitters are serialized, so concurrent Stream
  /// executions interleave at nest granularity. Chunks are claimed
  /// dynamically, so a worker occupied by a long task (or absent for
  /// any reason) never delays region completion — the remaining
  /// participants absorb its share.
  ///
  /// The callable is captured by reference (it outlives the barrier
  /// because parallelFor blocks); no job-closure allocation happens here.
  template <typename Body>
  void parallelFor(int64_t Begin, int64_t End, Body &&B) {
    using BodyT = std::remove_reference_t<Body>;
    parallelForRaw(
        Begin, End,
        [](void *Ctx, int64_t I, int ThreadId) {
          (*static_cast<BodyT *>(const_cast<void *>(
              static_cast<const void *>(Ctx))))(I, ThreadId);
        },
        const_cast<void *>(static_cast<const void *>(std::addressof(B))));
  }

  /// Function-pointer form of parallelFor; \p Ctx is passed to every
  /// invocation of \p Fn. The templated overload forwards here.
  void parallelForRaw(int64_t Begin, int64_t End, JobFn Fn, void *Ctx);

  /// One-shot task callback for submitTask().
  using TaskFn = void (*)(void *Ctx);

  /// Enqueues a one-shot task executed by an idle worker thread (FIFO).
  /// Tasks must not block on the pool: a parallelFor issued from inside a
  /// task runs inline serially (see onWorkerThread()), so a task can never
  /// deadlock waiting for workers, and task-to-task dependencies must be
  /// expressed as continuation submits, not waits. On a single-worker
  /// pool the calling thread drains the queue before returning (unless
  /// already inside a task body, where the outermost drain loop picks
  /// the continuation up — iterative, not recursive).
  ///
  /// Fork/join regions take priority over queued tasks: a worker drains
  /// the current parallelFor range before popping the next task.
  void submitTask(TaskFn Fn, void *Ctx);

  /// Enqueues \p N tasks with one lock acquisition and a single worker
  /// wake — workers chain further wakes while the queue stays non-empty,
  /// so a DAG's root fan-out costs one futex instead of one per task.
  void submitTaskBatch(const std::pair<TaskFn, void *> *TasksIn, size_t N);

  /// Fallible form of submitTaskBatch(): returns false — enqueueing
  /// nothing — when submission is refused (today only under fault
  /// injection at site "pool.submit"; a real refusal would come from a
  /// future queue bound). The caller owns the fallback, typically running
  /// the tasks inline (async -> serial degradation).
  bool trySubmitTaskBatch(const std::pair<TaskFn, void *> *TasksIn, size_t N);

  /// Pops and runs one queued task on the calling thread, returning false
  /// when the queue is empty. Lets a thread blocked on an async result
  /// help drain the queue instead of parking (work-stealing wait).
  bool tryRunOneTask();

  /// Number of tasks currently queued (racy snapshot; tests/diagnostics).
  size_t pendingTasks() const {
    return TasksPending.load(std::memory_order_relaxed);
  }

  /// True on pool worker threads and inside task bodies (any pool). Used
  /// by parallelFor to run nested regions inline serially instead of
  /// re-entering the fork/join machinery.
  static bool onWorkerThread();

  /// Total number of fork/join barriers executed so far (used by tests and
  /// the coarse-grain fusion ablation to show barrier reduction).
  uint64_t barrierCount() const { return Barriers.load(); }

  /// Process-wide default pool (lazily constructed).
  static ThreadPool &global();

private:
  void workerLoop(int WorkerIndex);
  /// Claims and runs chunks of the current region until it is exhausted
  /// (dynamic claiming: identity-free, so participants may absorb an
  /// absent worker's share). The chunk index doubles as the body's
  /// ThreadId, reproducing the static iteration->slot mapping.
  void runRange();
  /// Runs \p Fn(\p Ctx) with the worker-thread flag set for the duration.
  static void runTaskBody(TaskFn Fn, void *Ctx);
  /// Pops and runs one task; with \p ChainWake, wakes another worker
  /// first when tasks remain (the wake-chain that keeps the herd off a
  /// batched submit).
  bool popAndRunTask(bool ChainWake);
  /// True while the process's pools together spawn more workers than
  /// the machine has cores (spin and wake fan-out are counterproductive
  /// then).
  static bool oversubscribed();
  /// Effective spin iterations for this wait: GC_SPIN_ITERS, or 0 while
  /// oversubscribed.
  int spinBudget() const;

  int NumWorkers = 1;
  /// Configured spin iterations before a worker/waiter parks.
  int SpinIters = 0;
  /// Spawned (non-caller) worker threads across all live pools.
  static std::atomic<int> SpawnedWorkers;
  std::vector<std::thread> Threads;

  /// Held for a whole fork/join region; gives concurrent submitters
  /// exclusive use of the job slot below.
  std::mutex SubmitMutex;
  std::mutex Mutex;
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  /// Bumped (release) once the job slot is populated; workers spin on it
  /// before parking on WakeCv.
  std::atomic<uint64_t> Generation{0};
  std::atomic<bool> ShuttingDown{false};

  /// Region chunk claims: (generation << 32) | next-chunk-index. One
  /// atomic word so a claim always identifies which region it belongs
  /// to, and the acquire RMW synchronizes with the release store that
  /// published that region's fields. The submitter "closes" the word
  /// (chunk >= kClosedChunk) before rewriting the fields for the next
  /// region, so late claimants bail out without touching them.
  std::atomic<uint64_t> ClaimWord{0};
  /// Chunks fully executed in the current region; the submitter waits
  /// for it to reach NumChunks (whoever finishes the last chunk
  /// notifies DoneCv).
  std::atomic<int64_t> ChunksDone{0};
  /// Participants currently inside runRange; the next submitter waits
  /// for 0 after closing ClaimWord and before rewriting the job fields.
  std::atomic<int> ActiveClaimants{0};

  /// One-shot task queue (guarded by Mutex). TasksPending mirrors the
  /// queue size so spinning workers can poll it lock-free.
  std::deque<std::pair<TaskFn, void *>> Tasks;
  std::atomic<size_t> TasksPending{0};

  // Current region description (stable between ClaimWord publications).
  JobFn JobBody = nullptr;
  void *JobCtx = nullptr;
  int64_t JobBegin = 0;
  int64_t JobEnd = 0;
  int64_t ChunkSize = 0;
  int64_t NumChunks = 0;

  std::atomic<uint64_t> Barriers{0};
};

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_THREAD_POOL_H
