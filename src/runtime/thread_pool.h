//===- thread_pool.h - Persistent worker pool & parallel_for ----*- C++ -*-===//
///
/// \file
/// The multi-core substrate for the outermost parallel loops the templates
/// emit (§III "the outer parallel loops divide the kernel into multiple
/// subtasks for multi-cores"). A persistent pool avoids thread creation on
/// every kernel call; each parallelFor is one fork/join region, so merging
/// two loop nests (coarse-grain fusion) removes one synchronization barrier,
/// exactly the effect the paper measures.
///
/// Hot-path design: the job body is passed by reference through a plain
/// function pointer + context pointer (no std::function, no heap
/// allocation per nest), and both the workers and the submitting thread
/// spin for a bounded number of iterations before parking on a condition
/// variable, which cuts fork/join latency on the short parallel nests that
/// dominate small-shape inference.
///
/// Environment knobs:
///   GC_THREADS      worker threads (default: hardware concurrency);
///                   GC_NUM_THREADS is honored as a legacy alias
///   GC_SPIN_ITERS   bounded spin iterations before parking (default 4000;
///                   spinning auto-disables while the pools of this
///                   process together oversubscribe the machine — more
///                   spawned workers than cores)
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_THREAD_POOL_H
#define GC_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gc {
namespace runtime {

/// Persistent fork/join thread pool with static range partitioning.
class ThreadPool {
public:
  /// Job callback: (context, iteration index, worker id).
  using JobFn = void (*)(void *Ctx, int64_t I, int ThreadId);

  /// Creates a pool with \p NumThreads workers (including the caller).
  /// NumThreads == 0 selects GC_NUM_THREADS or hardware concurrency.
  explicit ThreadPool(int NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of workers (>= 1), including the calling thread.
  int numThreads() const { return NumWorkers; }

  /// Runs Body(I) for I in [Begin, End) across the pool. Body must be safe
  /// to invoke concurrently for distinct I. Blocks until all iterations
  /// complete (one barrier per call). ThreadId passed to Body is in
  /// [0, numThreads()). Safe to call from multiple threads concurrently:
  /// fork/join regions from different submitters are serialized, so
  /// concurrent Stream executions interleave at nest granularity.
  ///
  /// The callable is captured by reference (it outlives the barrier
  /// because parallelFor blocks); no job-closure allocation happens here.
  template <typename Body>
  void parallelFor(int64_t Begin, int64_t End, Body &&B) {
    using BodyT = std::remove_reference_t<Body>;
    parallelForRaw(
        Begin, End,
        [](void *Ctx, int64_t I, int ThreadId) {
          (*static_cast<BodyT *>(const_cast<void *>(
              static_cast<const void *>(Ctx))))(I, ThreadId);
        },
        const_cast<void *>(static_cast<const void *>(std::addressof(B))));
  }

  /// Function-pointer form of parallelFor; \p Ctx is passed to every
  /// invocation of \p Fn. The templated overload forwards here.
  void parallelForRaw(int64_t Begin, int64_t End, JobFn Fn, void *Ctx);

  /// Total number of fork/join barriers executed so far (used by tests and
  /// the coarse-grain fusion ablation to show barrier reduction).
  uint64_t barrierCount() const { return Barriers.load(); }

  /// Process-wide default pool (lazily constructed).
  static ThreadPool &global();

private:
  void workerLoop(int WorkerIndex);
  void runRange(int ThreadId);
  /// Effective spin iterations for this wait: GC_SPIN_ITERS, or 0 while
  /// the process's pools together oversubscribe the hardware cores.
  int spinBudget() const;

  int NumWorkers = 1;
  /// Configured spin iterations before a worker/waiter parks.
  int SpinIters = 0;
  /// Spawned (non-caller) worker threads across all live pools.
  static std::atomic<int> SpawnedWorkers;
  std::vector<std::thread> Threads;

  /// Held for a whole fork/join region; gives concurrent submitters
  /// exclusive use of the job slot below.
  std::mutex SubmitMutex;
  std::mutex Mutex;
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  /// Bumped (release) once the job slot is populated; workers spin on it
  /// before parking on WakeCv.
  std::atomic<uint64_t> Generation{0};
  /// Workers still running the current region; the submitter spins on it
  /// reaching 0 before parking on DoneCv.
  std::atomic<int> Pending{0};
  std::atomic<bool> ShuttingDown{false};

  // Current job description (valid while Pending > 0).
  JobFn JobBody = nullptr;
  void *JobCtx = nullptr;
  int64_t JobBegin = 0;
  int64_t JobEnd = 0;

  std::atomic<uint64_t> Barriers{0};
};

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_THREAD_POOL_H
