//===- thread_pool.h - Persistent worker pool & parallel_for ----*- C++ -*-===//
///
/// \file
/// The multi-core substrate for the outermost parallel loops the templates
/// emit (§III "the outer parallel loops divide the kernel into multiple
/// subtasks for multi-cores"). A persistent pool avoids thread creation on
/// every kernel call; each parallelFor is one fork/join region, so merging
/// two loop nests (coarse-grain fusion) removes one synchronization barrier,
/// exactly the effect the paper measures.
///
/// Thread count defaults to std::thread::hardware_concurrency() and can be
/// overridden with GC_NUM_THREADS (tests use >1 virtual workers on 1 core).
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_THREAD_POOL_H
#define GC_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gc {
namespace runtime {

/// Persistent fork/join thread pool with static range partitioning.
class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers (including the caller).
  /// NumThreads == 0 selects GC_NUM_THREADS or hardware concurrency.
  explicit ThreadPool(int NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of workers (>= 1), including the calling thread.
  int numThreads() const { return NumWorkers; }

  /// Runs Body(I) for I in [Begin, End) across the pool. Body must be safe
  /// to invoke concurrently for distinct I. Blocks until all iterations
  /// complete (one barrier per call). ThreadId passed to Body is in
  /// [0, numThreads()). Safe to call from multiple threads concurrently:
  /// fork/join regions from different submitters are serialized, so
  /// concurrent Stream executions interleave at nest granularity.
  void parallelFor(int64_t Begin, int64_t End,
                   const std::function<void(int64_t I, int ThreadId)> &Body);

  /// Total number of fork/join barriers executed so far (used by tests and
  /// the coarse-grain fusion ablation to show barrier reduction).
  uint64_t barrierCount() const { return Barriers.load(); }

  /// Process-wide default pool (lazily constructed).
  static ThreadPool &global();

private:
  void workerLoop(int WorkerIndex);
  void runRange(int64_t Begin, int64_t End, int ThreadId);

  int NumWorkers = 1;
  std::vector<std::thread> Threads;

  /// Held for a whole fork/join region; gives concurrent submitters
  /// exclusive use of the job slot below.
  std::mutex SubmitMutex;
  std::mutex Mutex;
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  uint64_t Generation = 0;
  int Pending = 0;
  bool ShuttingDown = false;

  // Current job description (valid while Pending > 0).
  const std::function<void(int64_t, int)> *JobBody = nullptr;
  int64_t JobBegin = 0;
  int64_t JobEnd = 0;

  std::atomic<uint64_t> Barriers{0};
};

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_THREAD_POOL_H
