//===- artifact_cache.cpp - Persistent compiled-artifact store ---------------===//

#include "runtime/artifact_cache.h"

#include "support/env.h"
#include "support/fault.h"
#include "support/serial.h"
#include "support/str.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace gc {
namespace runtime {

namespace {

/// Envelope of one artifact file. All fields native-endian; the payload
/// follows immediately (the header is 8-aligned and 40 bytes, so payload
/// offsets inherit 8-alignment for zero-copy constant views).
struct ArtifactHeader {
  uint32_t Magic = kMagic;
  uint32_t Version = kFormatVersion;
  uint64_t Key = 0;
  uint64_t PayloadBytes = 0;
  uint64_t Checksum = 0;
  uint64_t Reserved = 0;

  static constexpr uint32_t kMagic = 0x43414347u; // "GCAC" little-endian
  /// v2: Checksum switched from fnv1aBytes to the 4-lane fnv1aBytesBulk
  /// digest (the envelope hashes every payload byte on each load, and the
  /// serial chain was the warm-start bottleneck for weight-heavy
  /// artifacts).
  static constexpr uint32_t kFormatVersion = 2;
};
static_assert(sizeof(ArtifactHeader) == 40, "artifact header layout");
static_assert(sizeof(ArtifactHeader) % 8 == 0,
              "payload must start 8-aligned for zero-copy constant views");

Status ioError(const char *What, const std::string &Path) {
  return Status::error(StatusCode::Internal,
                       formatString("artifact cache: %s '%s': %s", What,
                                    Path.c_str(), std::strerror(errno)));
}

Status corruptError(const std::string &Path, const std::string &Why) {
  return Status::error(
      StatusCode::InvalidArgument,
      formatString("artifact cache: rejecting '%s': %s", Path.c_str(),
                   Why.c_str()));
}

/// mkdir -p. Empty path components are skipped; EEXIST is success.
bool makeDirs(const std::string &Path) {
  std::string Cur;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I < Path.size() && Path[I] != '/') {
      Cur.push_back(Path[I]);
      continue;
    }
    if (I < Path.size())
      Cur.push_back('/');
    if (Cur.empty() || Cur == "/")
      continue;
    if (::mkdir(Cur.c_str(), 0755) != 0 && errno != EEXIST)
      return false;
  }
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

bool endsWith(const std::string &S, const char *Suffix) {
  const size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

CacheMode defaultCacheMode() {
  const std::string Mode = getEnvString("GC_CACHE", "off");
  if (Mode == "off")
    return CacheMode::Off;
  if (Mode == "read")
    return CacheMode::Read;
  if (Mode == "rw")
    return CacheMode::ReadWrite;
  if (verboseAtLeast(1))
    std::fprintf(stderr,
                 "gc: GC_CACHE='%s' is not off|read|rw; cache disabled\n",
                 Mode.c_str());
  return CacheMode::Off;
}

std::string defaultCacheDir() {
  std::string Dir = getEnvString("GC_CACHE_DIR", "");
  if (!Dir.empty())
    return Dir;
  const std::string Xdg = getEnvString("XDG_CACHE_HOME", "");
  if (!Xdg.empty())
    return Xdg + "/gc-artifacts";
  const std::string Home = getEnvString("HOME", "");
  if (!Home.empty())
    return Home + "/.cache/gc-artifacts";
  return "";
}

int64_t defaultCacheMaxBytes() {
  return getEnvInt("GC_CACHE_MAX_BYTES", 256ll << 20);
}

ArtifactCache::Config ArtifactCache::Config::fromEnv() {
  Config Cfg;
  Cfg.Mode = defaultCacheMode();
  Cfg.Dir = defaultCacheDir();
  Cfg.MaxBytes = defaultCacheMaxBytes();
  return Cfg;
}

ArtifactCache::ArtifactCache(Config Cfg) : Cfg(std::move(Cfg)) {
  if (this->Cfg.Mode == CacheMode::Off || this->Cfg.Dir.empty())
    return;
  // Read-only mode over a missing directory simply stays disabled: every
  // load would miss anyway, and creating directories a read-only user
  // never writes to would be surprising.
  if (this->Cfg.Mode == CacheMode::Read) {
    struct stat St;
    Enabled = ::stat(this->Cfg.Dir.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
    return;
  }
  Enabled = makeDirs(this->Cfg.Dir);
  if (!Enabled && verboseAtLeast(1))
    std::fprintf(stderr,
                 "gc: cannot create GC_CACHE_DIR '%s'; cache disabled\n",
                 this->Cfg.Dir.c_str());
}

std::string ArtifactCache::entryPath(uint64_t Key) const {
  return formatString("%s/%016llx.gca", Cfg.Dir.c_str(),
                      (unsigned long long)Key);
}

std::string ArtifactCache::lockPath(uint64_t Key) const {
  return formatString("%s/%016llx.lock", Cfg.Dir.c_str(),
                      (unsigned long long)Key);
}

Expected<LoadedArtifact> ArtifactCache::load(uint64_t Key) const {
  if (!Enabled)
    return Status::error(StatusCode::Unsupported, "artifact cache disabled");
  if (fault::shouldFail(fault::kCacheOpen))
    return fault::failStatus(fault::kCacheOpen, StatusCode::Unavailable,
                             "artifact-cache entry open");
  const std::string Path = entryPath(Key);
  Expected<std::shared_ptr<MappedFile>> MapOr = MappedFile::open(Path);
  if (!MapOr)
    return MapOr.status();
  if (fault::shouldFail(fault::kCacheMmap))
    return fault::failStatus(fault::kCacheMmap, StatusCode::Unavailable,
                             "artifact-cache entry mmap");
  const std::shared_ptr<MappedFile> &Map = *MapOr;
  if (Map->size() < sizeof(ArtifactHeader))
    return corruptError(
        Path, formatString("%zu bytes is smaller than the %zu-byte header",
                           Map->size(), sizeof(ArtifactHeader)));
  ArtifactHeader H;
  std::memcpy(&H, Map->data(), sizeof H);
  if (H.Magic != ArtifactHeader::kMagic)
    return corruptError(Path, formatString("bad magic 0x%08x", H.Magic));
  if (H.Version != ArtifactHeader::kFormatVersion)
    return corruptError(
        Path, formatString("format version %u, this build expects %u",
                           H.Version, ArtifactHeader::kFormatVersion));
  if (H.Key != Key)
    return corruptError(
        Path, formatString("entry key %016llx does not match file name",
                           (unsigned long long)H.Key));
  if (H.PayloadBytes != Map->size() - sizeof(ArtifactHeader))
    return corruptError(
        Path,
        formatString("payload length %llu disagrees with file size %zu",
                     (unsigned long long)H.PayloadBytes, Map->size()));
  if (H.PayloadBytes == 0)
    return corruptError(Path, "zero-length payload");
  if (H.Reserved != 0)
    return corruptError(
        Path, formatString("reserved header field is %016llx, expected 0",
                           (unsigned long long)H.Reserved));
  const void *Payload =
      static_cast<const uint8_t *>(Map->data()) + sizeof(ArtifactHeader);
  const uint64_t Sum =
      fnv1aBytesBulk(Payload, static_cast<size_t>(H.PayloadBytes));
  if (Sum != H.Checksum)
    return corruptError(
        Path, formatString("payload checksum %016llx != header %016llx",
                           (unsigned long long)Sum,
                           (unsigned long long)H.Checksum));
  // Mark the use for LRU eviction. Best-effort: a read-only directory
  // still serves hits.
  ::utimensat(AT_FDCWD, Path.c_str(), nullptr, 0);
  LoadedArtifact A;
  A.Map = Map;
  A.Payload = Payload;
  A.PayloadBytes = static_cast<size_t>(H.PayloadBytes);
  return A;
}

Status ArtifactCache::store(uint64_t Key, const void *Payload,
                            size_t Bytes) const {
  if (!writable())
    return Status::error(StatusCode::Unsupported,
                         "artifact cache is not writable");
  if (Bytes == 0)
    return Status::error(StatusCode::InvalidArgument,
                         "artifact cache: refusing to store empty payload");
  if (fault::shouldFail(fault::kCacheWrite))
    return fault::failStatus(fault::kCacheWrite, StatusCode::Unavailable,
                             "artifact-cache store");
  ArtifactHeader H;
  H.Key = Key;
  H.PayloadBytes = Bytes;
  H.Checksum = fnv1aBytesBulk(Payload, Bytes);

  const std::string Final = entryPath(Key);
  const std::string Tmp =
      formatString("%s.tmp.%ld", Final.c_str(), (long)::getpid());
  const int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (Fd < 0)
    return ioError("create temp", Tmp);
  auto writeAll = [&](const void *P, size_t N) {
    const auto *B = static_cast<const uint8_t *>(P);
    while (N > 0) {
      const ssize_t W = ::write(Fd, B, N);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      B += W;
      N -= static_cast<size_t>(W);
    }
    return true;
  };
  if (!writeAll(&H, sizeof H) || !writeAll(Payload, Bytes) ||
      ::fsync(Fd) != 0) {
    const Status S = ioError("write", Tmp);
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return S;
  }
  ::close(Fd);
  // Atomic publish: a rename over an existing entry replaces it in one
  // step; concurrent readers see either the old complete file (their
  // mapping stays valid) or the new complete file, never a mix.
  if (::rename(Tmp.c_str(), Final.c_str()) != 0) {
    const Status S = ioError("rename", Final);
    ::unlink(Tmp.c_str());
    return S;
  }
  collectGarbage();
  return Status::ok();
}

Expected<std::shared_ptr<FileLock>>
ArtifactCache::lockEntry(uint64_t Key) const {
  if (!Enabled)
    return Status::error(StatusCode::Unsupported, "artifact cache disabled");
  if (fault::shouldFail(fault::kCacheLock))
    return fault::failStatus(fault::kCacheLock, StatusCode::Unavailable,
                             "artifact-cache compile lock");
  // Re-read per call (not cached) so tests can vary the bound; lockEntry
  // runs once per cold compile, where a getenv is noise.
  const int64_t TimeoutMs =
      std::max<int64_t>(0, getEnvInt("GC_CACHE_LOCK_MS", 2000));
  return FileLock::acquireTimed(lockPath(Key), TimeoutMs);
}

bool ArtifactCache::contains(uint64_t Key) const {
  if (!Enabled)
    return false;
  struct stat St;
  return ::stat(entryPath(Key).c_str(), &St) == 0;
}

void ArtifactCache::evict(uint64_t Key) const {
  if (Enabled)
    ::unlink(entryPath(Key).c_str());
}

int64_t ArtifactCache::totalBytes() const {
  if (!Enabled)
    return 0;
  int64_t Total = 0;
  DIR *D = ::opendir(Cfg.Dir.c_str());
  if (!D)
    return 0;
  while (const dirent *E = ::readdir(D)) {
    const std::string Name = E->d_name;
    if (!endsWith(Name, ".gca"))
      continue;
    struct stat St;
    if (::stat((Cfg.Dir + "/" + Name).c_str(), &St) == 0)
      Total += static_cast<int64_t>(St.st_size);
  }
  ::closedir(D);
  return Total;
}

void ArtifactCache::collectGarbage() const {
  if (!Enabled)
    return;
  struct Entry {
    std::string Path;
    int64_t Bytes = 0;
    struct timespec MTime = {0, 0};
  };
  std::vector<Entry> Entries;
  int64_t Total = 0;
  const std::time_t Now = std::time(nullptr);
  DIR *D = ::opendir(Cfg.Dir.c_str());
  if (!D)
    return;
  while (const dirent *E = ::readdir(D)) {
    const std::string Name = E->d_name;
    const std::string Path = Cfg.Dir + "/" + Name;
    // Stale-entry sweep: temp files a crashed writer left behind. Ten
    // minutes is far beyond any in-flight store (they are ms-scale).
    if (Name.find(".gca.tmp.") != std::string::npos) {
      struct stat St;
      if (::stat(Path.c_str(), &St) == 0 && Now - St.st_mtime > 600)
        ::unlink(Path.c_str());
      continue;
    }
    if (!endsWith(Name, ".gca"))
      continue;
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0)
      continue;
    Entry En;
    En.Path = Path;
    En.Bytes = static_cast<int64_t>(St.st_size);
#ifdef __APPLE__
    En.MTime = St.st_mtimespec;
#else
    En.MTime = St.st_mtim;
#endif
    Total += En.Bytes;
    Entries.push_back(std::move(En));
  }
  ::closedir(D);
  if (Cfg.MaxBytes <= 0 || Total <= Cfg.MaxBytes)
    return;
  // Oldest mtime first (loads bump mtime, so this is LRU). Unlinking an
  // entry another process has mapped is safe; its mapping survives.
  std::sort(Entries.begin(), Entries.end(), [](const Entry &A, const Entry &B) {
    if (A.MTime.tv_sec != B.MTime.tv_sec)
      return A.MTime.tv_sec < B.MTime.tv_sec;
    return A.MTime.tv_nsec < B.MTime.tv_nsec;
  });
  for (const Entry &En : Entries) {
    if (Total <= Cfg.MaxBytes)
      break;
    if (::unlink(En.Path.c_str()) == 0)
      Total -= En.Bytes;
  }
}

} // namespace runtime
} // namespace gc
