//===- mapped_file.cpp - mmap + file-lock primitives ------------------------===//

#include "runtime/mapped_file.h"

#include "support/str.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace gc {
namespace runtime {

namespace {

Status posixError(const char *What, const std::string &Path) {
  return Status::error(StatusCode::Internal,
                       formatString("%s '%s': %s", What, Path.c_str(),
                                    std::strerror(errno)));
}

} // namespace

Expected<std::shared_ptr<MappedFile>>
MappedFile::open(const std::string &Path) {
  const int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    // A missing file is the routine cache-miss answer, not a failure of
    // the cache machinery; callers branch on the distinction.
    if (errno == ENOENT)
      return Status::error(StatusCode::NotFound,
                           formatString("open '%s': no such file",
                                        Path.c_str()));
    return posixError("open", Path);
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    const Status S = posixError("fstat", Path);
    ::close(Fd);
    return S;
  }
  const size_t Len = static_cast<size_t>(St.st_size);
  if (Len == 0) {
    ::close(Fd);
    return Status::error(StatusCode::InvalidArgument,
                         formatString("mmap '%s': file is empty",
                                      Path.c_str()));
  }
  // MAP_POPULATE prefaults the whole file in one readahead pass — the
  // loader checksums every payload byte immediately after mapping, and
  // multi-megabyte artifacts would otherwise pay a page fault per 4 KiB
  // of that sequential scan.
  int Flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  Flags |= MAP_POPULATE;
#endif
  void *Addr = ::mmap(nullptr, Len, PROT_READ, Flags, Fd, 0);
  // The mapping persists past close(); holding the descriptor open would
  // only leak fds across many cached partitions.
  ::close(Fd);
  if (Addr == MAP_FAILED)
    return posixError("mmap", Path);
  return std::shared_ptr<MappedFile>(new MappedFile(Addr, Len));
}

MappedFile::~MappedFile() {
  if (Addr)
    ::munmap(Addr, Len);
}

Expected<std::shared_ptr<FileLock>>
FileLock::acquire(const std::string &Path) {
  const int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0)
    return posixError("open lock file", Path);
  // Blocking exclusive lock; EINTR is the one retryable failure.
  while (::flock(Fd, LOCK_EX) != 0) {
    if (errno != EINTR) {
      const Status S = posixError("flock", Path);
      ::close(Fd);
      return S;
    }
  }
  return std::shared_ptr<FileLock>(new FileLock(Fd));
}

Expected<std::shared_ptr<FileLock>>
FileLock::acquireTimed(const std::string &Path, int64_t TimeoutMs) {
  const int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0)
    return posixError("open lock file", Path);
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    if (::flock(Fd, LOCK_EX | LOCK_NB) == 0)
      return std::shared_ptr<FileLock>(new FileLock(Fd));
    if (errno != EWOULDBLOCK && errno != EINTR) {
      const Status S = posixError("flock", Path);
      ::close(Fd);
      return S;
    }
    if (std::chrono::steady_clock::now() >= Deadline) {
      ::close(Fd);
      return Status::error(
          StatusCode::Unavailable,
          formatString("lock '%s' still held after %lld ms", Path.c_str(),
                       (long long)TimeoutMs));
    }
    // Poll coarsely: lock hold times are compile-scale (milliseconds to
    // seconds), not lock-instruction-scale.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

FileLock::~FileLock() {
  if (Fd >= 0) {
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
  }
}

} // namespace runtime
} // namespace gc
