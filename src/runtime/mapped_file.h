//===- mapped_file.h - mmap + file-lock primitives --------------*- C++ -*-===//
///
/// \file
/// POSIX building blocks of the persistent artifact cache: a read-only
/// memory-mapped file (RAII; the mapping outlives the descriptor) and an
/// exclusive cross-process file lock (flock). Loaded compiled artifacts
/// keep a shared_ptr<MappedFile> pin so zero-copy constant views into the
/// mapping stay valid for the artifact's lifetime — POSIX keeps a mapping
/// alive even after the file is unlinked, which is what makes concurrent
/// LRU eviction by another process safe.
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_MAPPED_FILE_H
#define GC_RUNTIME_MAPPED_FILE_H

#include "support/status.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace gc {
namespace runtime {

/// A read-only memory-mapped file. Immutable after open; safe to read from
/// any number of threads.
class MappedFile {
public:
  /// Maps \p Path read-only. Fails with a located Status on open/stat/mmap
  /// errors or an empty file; a missing file is NotFound (a routine cache
  /// miss), every other failure Internal.
  static Expected<std::shared_ptr<MappedFile>> open(const std::string &Path);

  ~MappedFile();
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  const void *data() const { return Addr; }
  size_t size() const { return Len; }

private:
  MappedFile(void *Addr, size_t Len) : Addr(Addr), Len(Len) {}

  void *Addr = nullptr;
  size_t Len = 0;
};

/// An exclusive advisory lock on a dedicated lock file (flock semantics:
/// re-entrant across processes, auto-released on process death). Used to
/// make cross-process artifact compilation exactly-once-ish: the first
/// process to take the lock compiles and stores; the rest load.
class FileLock {
public:
  /// Creates (if needed) and exclusively locks \p Path, blocking until the
  /// lock is granted.
  static Expected<std::shared_ptr<FileLock>> acquire(const std::string &Path);

  /// Like acquire(), but gives up after \p TimeoutMs milliseconds of
  /// polling (LOCK_NB + short sleeps) and returns Unavailable instead of
  /// blocking forever behind a stuck or slow holder. TimeoutMs == 0 is a
  /// single non-blocking attempt.
  static Expected<std::shared_ptr<FileLock>>
  acquireTimed(const std::string &Path, int64_t TimeoutMs);

  ~FileLock();
  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

private:
  explicit FileLock(int Fd) : Fd(Fd) {}

  int Fd = -1;
};

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_MAPPED_FILE_H
