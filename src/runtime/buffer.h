//===- buffer.h - Aligned memory buffers and arenas -------------*- C++ -*-===//
///
/// \file
/// Cache-line/vector aligned allocation for tensor data, plus two arena
/// flavours: a bump arena used for per-thread template scratch (the C'
/// accumulation buffers of Fig. 2) and for the single shared scratch
/// region the memory-buffer-reuse pass (§VI) packs temporary tensors
/// into, and an offset-addressed plan arena backing the cross-partition
/// intermediate memory plan (api/session.h) that streams recycle across
/// executions.
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_BUFFER_H
#define GC_RUNTIME_BUFFER_H

#include "support/status.h"

#include <cstddef>
#include <cstdint>
#include <memory>

namespace gc {
namespace runtime {

/// Default alignment: one AVX-512 register / typical cache line.
inline constexpr size_t kDefaultAlignment = 64;

/// Owning, aligned, zero-initialized byte buffer.
class AlignedBuffer {
public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t Bytes, size_t Alignment = kDefaultAlignment);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer &&Other) noexcept;
  AlignedBuffer &operator=(AlignedBuffer &&Other) noexcept;
  AlignedBuffer(const AlignedBuffer &) = delete;
  AlignedBuffer &operator=(const AlignedBuffer &) = delete;

  void *data() { return Data; }
  const void *data() const { return Data; }
  size_t size() const { return Bytes; }
  bool empty() const { return Bytes == 0; }

  /// Releases the allocation and resets to empty.
  void reset();
  /// Reallocates to \p NewBytes (contents are not preserved, zero filled).
  void resize(size_t NewBytes, size_t Alignment = kDefaultAlignment);
  /// Like resize(), but reports allocation failure by returning false
  /// (the buffer is reset to empty) instead of aborting. The
  /// Status-returning execution paths (PlanArena growth) use this so an
  /// out-of-memory execution surfaces as ResourceExhausted.
  bool tryResize(size_t NewBytes, size_t Alignment = kDefaultAlignment);

private:
  void *Data = nullptr;
  size_t Bytes = 0;
};

/// Process-wide budget for governed runtime allocations (GC_MEM_LIMIT, in
/// bytes; unset or <= 0 means unlimited). Enforced at the grow points that
/// scale with load — the per-execution PlanArena and the per-bucket
/// specialization cache — so a traffic spike surfaces as a
/// ResourceExhausted Status on the offending execution instead of an
/// OOM abort of the whole process. Small fixed-size allocations stay
/// ungoverned; the budget is a load-shedding valve, not an allocator.
class MemBudget {
public:
  /// The configured limit in bytes (0 = unlimited). Read once from
  /// GC_MEM_LIMIT unless overridden by setLimitForTesting().
  static int64_t limit();
  /// Test seam: overrides the limit (0 = unlimited) without touching the
  /// environment. Does not release existing charges.
  static void setLimitForTesting(int64_t Bytes);
  /// Reserves \p Bytes against the budget; false when the reservation
  /// would exceed the limit (nothing is charged then).
  static bool tryCharge(size_t Bytes);
  /// Returns \p Bytes previously charged with tryCharge().
  static void release(size_t Bytes);
  /// Bytes currently charged (diagnostics/tests).
  static size_t chargedBytes();
};

/// Bump allocator over a preallocated aligned region. allocate() never
/// touches the system allocator after construction, so it is safe and cheap
/// inside parallel loop bodies. reset() recycles the whole region.
class BumpArena {
public:
  BumpArena() = default;
  explicit BumpArena(size_t Bytes) { Storage.resize(Bytes); }

  /// Grows the backing store to at least \p Bytes (only call outside
  /// parallel regions).
  void reserve(size_t Bytes) {
    if (Bytes > Storage.size())
      Storage.resize(Bytes);
  }

  /// Returns an aligned chunk of \p Bytes. Aborts if the arena is too
  /// small -- capacity is computed at compile (lowering) time, so running
  /// out indicates a compiler bug.
  void *allocate(size_t Bytes, size_t Alignment = kDefaultAlignment);

  /// Frees everything allocated since construction or the previous reset.
  void reset() { Offset = 0; }

  size_t capacity() const { return Storage.size(); }
  size_t used() const { return Offset; }

private:
  AlignedBuffer Storage;
  size_t Offset = 0;
};

/// Offset-addressed execution arena for the partition memory plan
/// (api::CompiledGraph): compile time assigns every cross-partition
/// intermediate a byte offset via lifetime packing; execution leases one
/// PlanArena and resolves intermediates as base + offset, so repeated
/// executions reuse one allocation instead of heap-allocating each
/// intermediate.
///
/// tryEnsure() is grow-only: an arena recycled across executions of
/// graphs with different plans converges to the largest plan's footprint
/// and never reallocates on the smaller ones. Growth does not preserve
/// contents (a plan never reads across executions). Zero-byte plans are
/// valid and allocate nothing.
class PlanArena {
public:
  PlanArena() = default;
  ~PlanArena();
  // Growth is accounted against the process MemBudget; moves would have
  // to transfer that charge for no caller (arenas live behind unique_ptr
  // on the stream free list).
  PlanArena(const PlanArena &) = delete;
  PlanArena &operator=(const PlanArena &) = delete;

  /// Grows the region to at least \p Bytes (rounded up to \p Alignment).
  /// No-op when the arena is already large enough; tryEnsure(0) on a
  /// fresh arena allocates nothing. Growth is a governed, fallible
  /// operation: it fails with ResourceExhausted when GC_MEM_LIMIT is
  /// exceeded or the allocation itself fails (and under injection at
  /// fault site "arena.grow"). A failed growth never corrupts the arena:
  /// a budget rejection keeps the previous capacity, an allocation
  /// failure resets to empty, and the next tryEnsure() simply re-grows.
  Status tryEnsure(size_t Bytes, size_t Alignment = kDefaultAlignment);

  /// Address of byte \p Offset. \p Offset must lie within the ensured
  /// capacity; offsets that are multiples of the ensure() alignment keep
  /// that alignment. at(0) on an empty arena returns nullptr (zero-size
  /// plan).
  void *at(size_t Offset);

  size_t capacity() const { return Storage.size(); }

private:
  AlignedBuffer Storage;
  /// Bytes this arena holds against the process MemBudget.
  size_t Charged = 0;
};

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_BUFFER_H
