//===- const_cache.h - Folded-constant cache --------------------*- C++ -*-===//
///
/// \file
/// Runtime storage for preprocessed constant weights (§V "constant weight
/// preprocessing"): the compiled code carries a fold function that packs /
/// compensates constant tensors the first time they arrive; its outputs are
/// cached here and reused by every subsequent execution.
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_CONST_CACHE_H
#define GC_RUNTIME_CONST_CACHE_H

#include "runtime/tensor_data.h"

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace gc {
namespace runtime {

/// Cache of fold-function outputs keyed by the compiler-assigned constant
/// tensor id. One instance lives in each compiled partition.
class ConstCache {
public:
  /// True when the fold function already ran for this partition.
  bool isPopulated() const { return Populated; }

  /// Marks the fold function as executed.
  void markPopulated() { Populated = true; }

  /// Inserts (or replaces) the folded tensor for \p TensorId.
  void put(int64_t TensorId, TensorData Data);

  /// Returns the folded tensor or nullptr when absent.
  const TensorData *get(int64_t TensorId) const;

  /// Number of cached tensors.
  size_t size() const { return Cache.size(); }

  /// Total bytes held by the cache (reported in EXPERIMENTS.md).
  int64_t totalBytes() const;

  /// Drops all entries (forces re-folding; used in tests).
  void clear();

private:
  std::unordered_map<int64_t, TensorData> Cache;
  bool Populated = false;
};

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_CONST_CACHE_H
