//===- tensor_data.cpp - Runtime dense tensors ---------------------------------===//

#include "runtime/tensor_data.h"

#include "support/common.h"

#include <cmath>
#include <cstring>

namespace gc {
namespace runtime {

TensorData::TensorData(DataType Ty, std::vector<int64_t> Shape)
    : Ty(Ty), Shape(std::move(Shape)) {
  Owned = std::make_shared<AlignedBuffer>(
      static_cast<size_t>(numBytes() > 0 ? numBytes() : 1));
  Ptr = Owned->data();
}

TensorData TensorData::view(DataType Ty, std::vector<int64_t> Shape,
                            void *Data) {
  TensorData T;
  T.Ty = Ty;
  T.Shape = std::move(Shape);
  T.Ptr = Data;
  return T;
}

int64_t TensorData::numElements() const {
  int64_t N = 1;
  for (int64_t D : Shape)
    N *= D;
  return N;
}

void TensorData::fillRandom(Rng &Generator) {
  const int64_t N = numElements();
  switch (Ty) {
  case DataType::F32: {
    float *P = dataAs<float>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = Generator.uniform(-1.0f, 1.0f);
    return;
  }
  case DataType::F64: {
    double *P = dataAs<double>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = Generator.uniform(-1.0f, 1.0f);
    return;
  }
  case DataType::S32: {
    int32_t *P = dataAs<int32_t>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = static_cast<int32_t>(Generator.uniformInt(-4, 4));
    return;
  }
  case DataType::S8: {
    int8_t *P = dataAs<int8_t>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = static_cast<int8_t>(Generator.uniformInt(-128, 127));
    return;
  }
  case DataType::U8: {
    uint8_t *P = dataAs<uint8_t>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = static_cast<uint8_t>(Generator.uniformInt(0, 255));
    return;
  }
  }
  GC_UNREACHABLE("unhandled dtype");
}

void TensorData::fillConstant(double Value) {
  const int64_t N = numElements();
  switch (Ty) {
  case DataType::F32: {
    float *P = dataAs<float>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = static_cast<float>(Value);
    return;
  }
  case DataType::F64: {
    double *P = dataAs<double>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = Value;
    return;
  }
  case DataType::S32: {
    int32_t *P = dataAs<int32_t>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = static_cast<int32_t>(Value);
    return;
  }
  case DataType::S8: {
    int8_t *P = dataAs<int8_t>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = static_cast<int8_t>(Value);
    return;
  }
  case DataType::U8: {
    uint8_t *P = dataAs<uint8_t>();
    for (int64_t I = 0; I < N; ++I)
      P[I] = static_cast<uint8_t>(Value);
    return;
  }
  }
  GC_UNREACHABLE("unhandled dtype");
}

TensorData TensorData::clone() const {
  TensorData Copy(Ty, Shape);
  std::memcpy(Copy.data(), Ptr, static_cast<size_t>(numBytes()));
  return Copy;
}

namespace {

double elementAsDouble(const TensorData &T, int64_t I) {
  switch (T.dtype()) {
  case DataType::F32: return T.dataAs<float>()[I];
  case DataType::F64: return T.dataAs<double>()[I];
  case DataType::S32: return T.dataAs<int32_t>()[I];
  case DataType::S8: return T.dataAs<int8_t>()[I];
  case DataType::U8: return T.dataAs<uint8_t>()[I];
  }
  GC_UNREACHABLE("unhandled dtype");
}

} // namespace

double maxAbsDiff(const TensorData &A, const TensorData &B) {
  assert(A.numElements() == B.numElements() && "shape mismatch");
  double Max = 0.0;
  for (int64_t I = 0, E = A.numElements(); I < E; ++I)
    Max = std::max(Max,
                   std::abs(elementAsDouble(A, I) - elementAsDouble(B, I)));
  return Max;
}

double maxRelDiff(const TensorData &A, const TensorData &B, double Eps) {
  assert(A.numElements() == B.numElements() && "shape mismatch");
  double Max = 0.0;
  for (int64_t I = 0, E = A.numElements(); I < E; ++I) {
    const double X = elementAsDouble(A, I);
    const double Y = elementAsDouble(B, I);
    Max = std::max(Max, std::abs(X - Y) / (std::abs(Y) + Eps));
  }
  return Max;
}

} // namespace runtime
} // namespace gc
