//===- tensor_data.h - Runtime dense tensors --------------------*- C++ -*-===//
///
/// \file
/// The runtime tensor: dtype + shape + contiguous row-major data (owning or
/// view). This is the execution-time counterpart of a Graph IR logical
/// tensor; blocked layouts are represented as explicitly-shaped tensors by
/// the compiler, so TensorData itself is always plain row-major.
///
//===----------------------------------------------------------------------===//

#ifndef GC_RUNTIME_TENSOR_DATA_H
#define GC_RUNTIME_TENSOR_DATA_H

#include "runtime/buffer.h"
#include "support/dtype.h"
#include "support/rng.h"

#include <cassert>
#include <memory>
#include <vector>

namespace gc {
namespace runtime {

/// Dense row-major tensor with optional ownership of its storage.
class TensorData {
public:
  TensorData() = default;

  /// Allocates an owning, zero-initialized tensor.
  TensorData(DataType Ty, std::vector<int64_t> Shape);

  /// Wraps external storage as a non-owning view.
  static TensorData view(DataType Ty, std::vector<int64_t> Shape, void *Data);

  DataType dtype() const { return Ty; }
  const std::vector<int64_t> &shape() const { return Shape; }
  int64_t rank() const { return static_cast<int64_t>(Shape.size()); }
  int64_t dim(int64_t I) const { return Shape[static_cast<size_t>(I)]; }

  /// Total number of elements.
  int64_t numElements() const;
  /// Total number of bytes.
  int64_t numBytes() const { return numElements() * dataTypeSize(Ty); }

  void *data() { return Ptr; }
  const void *data() const { return Ptr; }

  template <typename T> T *dataAs() { return static_cast<T *>(Ptr); }
  template <typename T> const T *dataAs() const {
    return static_cast<const T *>(Ptr);
  }

  bool valid() const { return Ptr != nullptr; }

  /// Fills with deterministic uniform noise appropriate for the dtype
  /// (f32 in [-1,1), u8 in [0,255], s8 in [-128,127], s32 in [-4,4]).
  void fillRandom(Rng &Generator);

  /// Fills every element with \p Value (converted to the dtype).
  void fillConstant(double Value);

  /// Deep copy (always owning).
  TensorData clone() const;

private:
  DataType Ty = DataType::F32;
  std::vector<int64_t> Shape;
  std::shared_ptr<AlignedBuffer> Owned;
  void *Ptr = nullptr;
};

/// Maximum absolute difference between two same-shaped f32 tensors,
/// normalized options left to the caller. Used by correctness tests.
double maxAbsDiff(const TensorData &A, const TensorData &B);

/// Maximum relative difference max(|a-b| / (|b| + Eps)).
double maxRelDiff(const TensorData &A, const TensorData &B,
                  double Eps = 1e-5);

} // namespace runtime
} // namespace gc

#endif // GC_RUNTIME_TENSOR_DATA_H
