//===- simd.h - Width-generic f32 vector abstraction ------------*- C++ -*-===//
///
/// \file
/// A small width-generic vector layer the SIMD kernels are written against:
/// aligned-free loads/stores with masked tails, arithmetic + fma, min/max,
/// compares/blends, the bit tricks the polynomial transcendentals need
/// (abs/copysign, integral-power-of-two scaling) and horizontal reductions.
///
/// Three backends implement the same static interface:
///   VecF32Scalar   1 lane,  always available (the width-1 reference)
///   VecF32Avx2     8 lanes, compiled only in TUs built with -mavx2 -mfma
///   VecF32Avx512  16 lanes, compiled only in TUs built with -mavx512f ...
///
/// Kernel bodies are templates over the backend (see tile_ops_simd.h,
/// simd_math.h); each ISA translation unit instantiates them with its
/// backend, so one source describes every width — the reproduction's
/// analogue of the paper's per-ISA Xbyak templates.
///
/// Masks: `Mask` is backend-specific (bool / __m256 / __mmask16). Kernels
/// treat it as opaque and only pass it to blend().
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_SIMD_H
#define GC_KERNELS_SIMD_H

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace gc {
namespace kernels {
namespace simd {

//===----------------------------------------------------------------------===//
// Scalar backend (width 1) — the semantic reference for the wider backends.
//===----------------------------------------------------------------------===//

struct VecF32Scalar {
  float V;
  static constexpr int64_t Width = 1;
  using Mask = bool;

  static VecF32Scalar set1(float X) { return {X}; }
  static VecF32Scalar zero() { return {0.0f}; }
  static VecF32Scalar load(const float *P) { return {*P}; }
  static VecF32Scalar loadPartial(const float *P, int64_t N) {
    return {N > 0 ? *P : 0.0f};
  }
  static VecF32Scalar loadPartialFill(const float *P, int64_t N, float Fill) {
    return {N > 0 ? *P : Fill};
  }
  void store(float *P) const { *P = V; }
  void storePartial(float *P, int64_t N) const {
    if (N > 0)
      *P = V;
  }

  static VecF32Scalar add(VecF32Scalar A, VecF32Scalar B) { return {A.V + B.V}; }
  static VecF32Scalar sub(VecF32Scalar A, VecF32Scalar B) { return {A.V - B.V}; }
  static VecF32Scalar mul(VecF32Scalar A, VecF32Scalar B) { return {A.V * B.V}; }
  static VecF32Scalar div(VecF32Scalar A, VecF32Scalar B) { return {A.V / B.V}; }
  static VecF32Scalar min_(VecF32Scalar A, VecF32Scalar B) {
    return {A.V < B.V ? A.V : B.V};
  }
  static VecF32Scalar max_(VecF32Scalar A, VecF32Scalar B) {
    return {A.V > B.V ? A.V : B.V};
  }
  /// Fused A*B+C (the scalar backend contracts via std::fma for parity with
  /// the hardware fma of the wide backends).
  static VecF32Scalar fma(VecF32Scalar A, VecF32Scalar B, VecF32Scalar C) {
    return {std::fma(A.V, B.V, C.V)};
  }
  static VecF32Scalar sqrt_(VecF32Scalar A) { return {std::sqrt(A.V)}; }
  static VecF32Scalar round(VecF32Scalar A) { return {std::nearbyintf(A.V)}; }
  static VecF32Scalar abs(VecF32Scalar A) { return {std::fabs(A.V)}; }
  static VecF32Scalar neg(VecF32Scalar A) { return {-A.V}; }

  static VecF32Scalar andBits(VecF32Scalar A, VecF32Scalar B) {
    uint32_t X, Y;
    std::memcpy(&X, &A.V, 4);
    std::memcpy(&Y, &B.V, 4);
    X &= Y;
    float R;
    std::memcpy(&R, &X, 4);
    return {R};
  }
  static VecF32Scalar orBits(VecF32Scalar A, VecF32Scalar B) {
    uint32_t X, Y;
    std::memcpy(&X, &A.V, 4);
    std::memcpy(&Y, &B.V, 4);
    X |= Y;
    float R;
    std::memcpy(&R, &X, 4);
    return {R};
  }
  static VecF32Scalar bitsConst(uint32_t Bits) {
    float R;
    std::memcpy(&R, &Bits, 4);
    return {R};
  }

  static Mask ltMask(VecF32Scalar A, VecF32Scalar B) { return A.V < B.V; }
  static Mask isNanMask(VecF32Scalar A) { return A.V != A.V; }
  /// M ? A : B, lanewise.
  static VecF32Scalar blend(Mask M, VecF32Scalar A, VecF32Scalar B) {
    return M ? A : B;
  }

  /// R * 2^n with n = lrintf(NF); NF must be integral and within
  /// [-300, 300]. Implemented as a two-step exponent insertion on the wide
  /// backends so results denormalize gradually instead of flushing.
  static VecF32Scalar ldexpFast(VecF32Scalar R, VecF32Scalar NF) {
    return {std::ldexp(R.V, static_cast<int>(std::lrintf(NF.V)))};
  }

  float hsum() const { return V; }
  float hmax() const { return V; }
};

//===----------------------------------------------------------------------===//
// AVX2 backend (width 8) — only in TUs compiled with -mavx2 -mfma.
//===----------------------------------------------------------------------===//

#if defined(__AVX2__) && defined(__FMA__)

struct VecF32Avx2 {
  __m256 V;
  static constexpr int64_t Width = 8;
  using Mask = __m256; ///< cmp result; all-ones lanes select A in blend().

  /// Per-lane i32 mask with lanes [0, N) active (maskload/maskstore form).
  static __m256i tailMask(int64_t N) {
    const __m256i Idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(N)), Idx);
  }

  static VecF32Avx2 set1(float X) { return {_mm256_set1_ps(X)}; }
  static VecF32Avx2 zero() { return {_mm256_setzero_ps()}; }
  static VecF32Avx2 load(const float *P) { return {_mm256_loadu_ps(P)}; }
  static VecF32Avx2 loadPartial(const float *P, int64_t N) {
    return {_mm256_maskload_ps(P, tailMask(N))};
  }
  static VecF32Avx2 loadPartialFill(const float *P, int64_t N, float Fill) {
    const __m256i M = tailMask(N);
    const __m256 L = _mm256_maskload_ps(P, M);
    return {_mm256_blendv_ps(_mm256_set1_ps(Fill), L, _mm256_castsi256_ps(M))};
  }
  void store(float *P) const { _mm256_storeu_ps(P, V); }
  void storePartial(float *P, int64_t N) const {
    _mm256_maskstore_ps(P, tailMask(N), V);
  }

  static VecF32Avx2 add(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_add_ps(A.V, B.V)};
  }
  static VecF32Avx2 sub(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_sub_ps(A.V, B.V)};
  }
  static VecF32Avx2 mul(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_mul_ps(A.V, B.V)};
  }
  static VecF32Avx2 div(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_div_ps(A.V, B.V)};
  }
  static VecF32Avx2 min_(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_min_ps(A.V, B.V)};
  }
  static VecF32Avx2 max_(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_max_ps(A.V, B.V)};
  }
  static VecF32Avx2 fma(VecF32Avx2 A, VecF32Avx2 B, VecF32Avx2 C) {
    return {_mm256_fmadd_ps(A.V, B.V, C.V)};
  }
  static VecF32Avx2 sqrt_(VecF32Avx2 A) { return {_mm256_sqrt_ps(A.V)}; }
  static VecF32Avx2 round(VecF32Avx2 A) {
    return {_mm256_round_ps(A.V, _MM_FROUND_TO_NEAREST_INT |
                                     _MM_FROUND_NO_EXC)};
  }
  static VecF32Avx2 abs(VecF32Avx2 A) {
    return andBits(A, bitsConst(0x7fffffffu));
  }
  static VecF32Avx2 neg(VecF32Avx2 A) {
    return {_mm256_xor_ps(A.V, bitsConst(0x80000000u).V)};
  }

  static VecF32Avx2 andBits(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_and_ps(A.V, B.V)};
  }
  static VecF32Avx2 orBits(VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_or_ps(A.V, B.V)};
  }
  static VecF32Avx2 bitsConst(uint32_t Bits) {
    return {_mm256_castsi256_ps(
        _mm256_set1_epi32(static_cast<int>(Bits)))};
  }

  static Mask ltMask(VecF32Avx2 A, VecF32Avx2 B) {
    return _mm256_cmp_ps(A.V, B.V, _CMP_LT_OQ);
  }
  static Mask isNanMask(VecF32Avx2 A) {
    return _mm256_cmp_ps(A.V, A.V, _CMP_UNORD_Q);
  }
  static VecF32Avx2 blend(Mask M, VecF32Avx2 A, VecF32Avx2 B) {
    return {_mm256_blendv_ps(B.V, A.V, M)};
  }

  static VecF32Avx2 ldexpFast(VecF32Avx2 R, VecF32Avx2 NF) {
    // Split n into two halves so 2^half stays a normal float even for
    // n in [-151, 130]; multiplying twice denormalizes gradually.
    const __m256i N = _mm256_cvtps_epi32(NF.V);
    const __m256i N1 = _mm256_srai_epi32(N, 1);
    const __m256i N2 = _mm256_sub_epi32(N, N1);
    const __m256i Bias = _mm256_set1_epi32(127);
    const __m256 S1 = _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_add_epi32(N1, Bias), 23));
    const __m256 S2 = _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_add_epi32(N2, Bias), 23));
    return {_mm256_mul_ps(_mm256_mul_ps(R.V, S1), S2)};
  }

  float hsum() const {
    const __m128 Lo = _mm256_castps256_ps128(V);
    const __m128 Hi = _mm256_extractf128_ps(V, 1);
    __m128 S = _mm_add_ps(Lo, Hi);
    S = _mm_add_ps(S, _mm_movehl_ps(S, S));
    S = _mm_add_ss(S, _mm_movehdup_ps(S));
    return _mm_cvtss_f32(S);
  }
  float hmax() const {
    const __m128 Lo = _mm256_castps256_ps128(V);
    const __m128 Hi = _mm256_extractf128_ps(V, 1);
    __m128 M = _mm_max_ps(Lo, Hi);
    M = _mm_max_ps(M, _mm_movehl_ps(M, M));
    M = _mm_max_ss(M, _mm_movehdup_ps(M));
    return _mm_cvtss_f32(M);
  }
};

#endif // __AVX2__ && __FMA__

//===----------------------------------------------------------------------===//
// AVX-512 backend (width 16) — only in TUs compiled with -mavx512f.
//===----------------------------------------------------------------------===//

#if defined(__AVX512F__)

struct VecF32Avx512 {
  __m512 V;
  static constexpr int64_t Width = 16;
  using Mask = __mmask16;

  static __mmask16 tailMask(int64_t N) {
    return N >= 16 ? static_cast<__mmask16>(0xffff)
                   : static_cast<__mmask16>((1u << N) - 1u);
  }

  static VecF32Avx512 set1(float X) { return {_mm512_set1_ps(X)}; }
  static VecF32Avx512 zero() { return {_mm512_setzero_ps()}; }
  static VecF32Avx512 load(const float *P) { return {_mm512_loadu_ps(P)}; }
  static VecF32Avx512 loadPartial(const float *P, int64_t N) {
    return {_mm512_maskz_loadu_ps(tailMask(N), P)};
  }
  static VecF32Avx512 loadPartialFill(const float *P, int64_t N, float Fill) {
    return {_mm512_mask_loadu_ps(_mm512_set1_ps(Fill), tailMask(N), P)};
  }
  void store(float *P) const { _mm512_storeu_ps(P, V); }
  void storePartial(float *P, int64_t N) const {
    _mm512_mask_storeu_ps(P, tailMask(N), V);
  }

  static VecF32Avx512 add(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_add_ps(A.V, B.V)};
  }
  static VecF32Avx512 sub(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_sub_ps(A.V, B.V)};
  }
  static VecF32Avx512 mul(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_mul_ps(A.V, B.V)};
  }
  static VecF32Avx512 div(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_div_ps(A.V, B.V)};
  }
  static VecF32Avx512 min_(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_min_ps(A.V, B.V)};
  }
  static VecF32Avx512 max_(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_max_ps(A.V, B.V)};
  }
  static VecF32Avx512 fma(VecF32Avx512 A, VecF32Avx512 B, VecF32Avx512 C) {
    return {_mm512_fmadd_ps(A.V, B.V, C.V)};
  }
  static VecF32Avx512 sqrt_(VecF32Avx512 A) { return {_mm512_sqrt_ps(A.V)}; }
  static VecF32Avx512 round(VecF32Avx512 A) {
    return {_mm512_roundscale_ps(A.V, _MM_FROUND_TO_NEAREST_INT |
                                          _MM_FROUND_NO_EXC)};
  }
  static VecF32Avx512 abs(VecF32Avx512 A) {
    return andBits(A, bitsConst(0x7fffffffu));
  }
  static VecF32Avx512 neg(VecF32Avx512 A) {
    return {_mm512_castsi512_ps(_mm512_xor_si512(
        _mm512_castps_si512(A.V), _mm512_set1_epi32(INT32_MIN)))};
  }

  static VecF32Avx512 andBits(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_castsi512_ps(_mm512_and_si512(
        _mm512_castps_si512(A.V), _mm512_castps_si512(B.V)))};
  }
  static VecF32Avx512 orBits(VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_castsi512_ps(_mm512_or_si512(
        _mm512_castps_si512(A.V), _mm512_castps_si512(B.V)))};
  }
  static VecF32Avx512 bitsConst(uint32_t Bits) {
    return {_mm512_castsi512_ps(
        _mm512_set1_epi32(static_cast<int>(Bits)))};
  }

  static Mask ltMask(VecF32Avx512 A, VecF32Avx512 B) {
    return _mm512_cmp_ps_mask(A.V, B.V, _CMP_LT_OQ);
  }
  static Mask isNanMask(VecF32Avx512 A) {
    return _mm512_cmp_ps_mask(A.V, A.V, _CMP_UNORD_Q);
  }
  static VecF32Avx512 blend(Mask M, VecF32Avx512 A, VecF32Avx512 B) {
    return {_mm512_mask_blend_ps(M, B.V, A.V)};
  }

  static VecF32Avx512 ldexpFast(VecF32Avx512 R, VecF32Avx512 NF) {
    const __m512i N = _mm512_cvtps_epi32(NF.V);
    const __m512i N1 = _mm512_srai_epi32(N, 1);
    const __m512i N2 = _mm512_sub_epi32(N, N1);
    const __m512i Bias = _mm512_set1_epi32(127);
    const __m512 S1 = _mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_add_epi32(N1, Bias), 23));
    const __m512 S2 = _mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_add_epi32(N2, Bias), 23));
    return {_mm512_mul_ps(_mm512_mul_ps(R.V, S1), S2)};
  }

  float hsum() const { return _mm512_reduce_add_ps(V); }
  float hmax() const { return _mm512_reduce_max_ps(V); }
};

#endif // __AVX512F__

} // namespace simd
} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_SIMD_H
