//===- brgemm.h - Batch-reduce GEMM microkernel -----------------*- C++ -*-===//
///
/// \file
/// The batch-reduce GEMM (brgemm) microkernel of §III: given a batch of A
/// tiles and a batch of B tiles, it multiplies each pair and accumulates the
/// partial products into one C tile that stays resident in registers / L1.
///
/// The paper's brgemm interface takes arrays of tile addresses; in the
/// compiler's blocked layouts consecutive tiles are equidistant, so this
/// implementation takes a base address plus a batch stride (the strided
/// special case of the address-array interface; see DESIGN.md substitution
/// #3). Tail tiles (M/N/K smaller than the full block) are supported so the
/// template can pad ragged problem sizes the way the paper describes for
/// GEMMV inputs.
///
/// Two data-type flavours exist, matching oneDNN's inference use:
///  * F32:      C_f32 [+]= sum_b A_f32[b] * B_f32[b]
///  * U8S8S32:  C_s32 [+]= sum_b A_u8[b] * B_s8[b]   (VNNI-packed B)
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_BRGEMM_H
#define GC_KERNELS_BRGEMM_H

#include "kernels/cpu_features.h"

#include <cstdint>

namespace gc {
namespace kernels {

/// Arguments of one FP32 batch-reduce GEMM call.
///
/// A tiles are row-major M x K with leading dimension \c Lda; B tiles are
/// row-major K x N with leading dimension \c Ldb; the C tile is row-major
/// M x N with leading dimension \c Ldc. Batches advance by \c AStrideBatch /
/// \c BStrideBatch elements.
struct BrgemmF32Args {
  const float *A = nullptr;
  int64_t AStrideBatch = 0;
  int64_t Lda = 0;
  const float *B = nullptr;
  int64_t BStrideBatch = 0;
  int64_t Ldb = 0;
  float *C = nullptr;
  int64_t Ldc = 0;
  int64_t M = 0;
  int64_t N = 0;
  int64_t K = 0;
  int64_t Batch = 1;
  /// When true, C is overwritten (beta = 0); otherwise accumulated into.
  bool InitC = true;
};

/// Executes one FP32 batch-reduce GEMM.
void brgemmF32(const BrgemmF32Args &Args);

/// Arguments of one u8 x s8 -> s32 batch-reduce GEMM call.
///
/// A tiles are row-major M x K (u8, leading dimension \c Lda). B tiles use
/// the VNNI-packed layout [K/4][N][4] with \c NPadded columns, i.e. element
/// (k, n) lives at (k/4)*NPadded*4 + n*4 + k%4. K must be padded to a
/// multiple of 4 by the packing routines (zero fill keeps results exact).
struct BrgemmU8S8Args {
  const uint8_t *A = nullptr;
  int64_t AStrideBatch = 0;
  int64_t Lda = 0;
  const int8_t *B = nullptr;
  int64_t BStrideBatch = 0;
  /// Column count of the packed B tile (>= N, the stride of one k-group).
  int64_t NPadded = 0;
  int32_t *C = nullptr;
  int64_t Ldc = 0;
  int64_t M = 0;
  int64_t N = 0;
  int64_t K = 0;
  int64_t Batch = 1;
  bool InitC = true;
};

/// Executes one u8s8s32 batch-reduce GEMM. Dispatches to AVX512-VNNI
/// (dpbusd), AVX2 (exact maddubs/madd emulation) or the portable widening
/// loop, by runtime CPUID capped by GC_KERNELS.
void brgemmU8S8(const BrgemmU8S8Args &Args);

/// Reference implementations used by tests (always the portable path).
void brgemmF32Ref(const BrgemmF32Args &Args);
void brgemmU8S8Ref(const BrgemmU8S8Args &Args);

//===----------------------------------------------------------------------===//
// Per-tier entry points (differential tests & dispatch introspection)
//===----------------------------------------------------------------------===//

using BrgemmF32Fn = void (*)(const BrgemmF32Args &);
using BrgemmU8S8Fn = void (*)(const BrgemmU8S8Args &);

/// The f32 kernel of \p Tier, or nullptr when that tier is unavailable in
/// this build / on this CPU. KernelTier::Scalar is the portable loop.
BrgemmF32Fn brgemmF32ForTier(KernelTier Tier);

/// The u8s8s32 kernel of \p Tier, or nullptr when unavailable. The AVX-512
/// tier requires VNNI (the saturating maddubs emulation is wrong for
/// full-range u8 activations, so no non-VNNI 512-bit path exists; such
/// hosts use the exact AVX2 path instead).
BrgemmU8S8Fn brgemmU8S8ForTier(KernelTier Tier);

} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_BRGEMM_H
