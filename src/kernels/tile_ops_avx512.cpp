//===- tile_ops_avx512.cpp - AVX-512 tile-op & math tables --------------------===//
//
// Instantiates the width-generic kernel bodies with the 16-lane AVX-512
// backend. Compiled with -mavx512f -mavx512bw -mavx512vl (per-file flags in
// CMakeLists.txt); when the toolchain cannot target AVX-512 the providers
// return nullptr and dispatch degrades to the AVX2 or scalar tier.
//
//===----------------------------------------------------------------------===//

#include "kernels/tile_ops_simd.h"

namespace gc {
namespace kernels {

#if defined(__AVX512F__)

const TileOpsTable *tileOpsTableAvx512() {
  const CpuFeatures &F = cpuFeatures();
  if (!F.HasAvx512f || !F.HasAvx512bw || !F.HasAvx512vl)
    return nullptr;
  static const TileOpsTable Table =
      SimdTileOps<simd::VecF32Avx512>::table("avx512", KernelTier::Avx512);
  return &Table;
}

const SimdMathTable *simdMathTableAvx512() {
  const CpuFeatures &F = cpuFeatures();
  if (!F.HasAvx512f || !F.HasAvx512bw || !F.HasAvx512vl)
    return nullptr;
  static const SimdMathTable Table =
      SimdTileOps<simd::VecF32Avx512>::mathTable("avx512");
  return &Table;
}

#else // !__AVX512F__

const TileOpsTable *tileOpsTableAvx512() { return nullptr; }
const SimdMathTable *simdMathTableAvx512() { return nullptr; }

#endif

} // namespace kernels
} // namespace gc
