//===- simd_math.cpp - Per-tier math table dispatch ---------------------------===//
//
// The scalar (width-1) instantiation of the polynomial transcendentals plus
// the per-tier table lookup. The AVX2 / AVX-512 tables live in the ISA
// translation units (tile_ops_avx2.cpp / tile_ops_avx512.cpp) next to the
// tile-op tables they share code with.
//
//===----------------------------------------------------------------------===//

#include "kernels/simd_math.h"

namespace gc {
namespace kernels {

// Providers from the ISA translation units (nullptr when unavailable).
const SimdMathTable *simdMathTableAvx2();
const SimdMathTable *simdMathTableAvx512();

namespace {

template <typename Fn> void mapScalar(float *X, int64_t N, Fn F) {
  for (int64_t I = 0; I < N; ++I)
    X[I] = F(simd::VecF32Scalar{X[I]}).V;
}

void expScalarArray(float *X, int64_t N) {
  mapScalar(X, N, [](simd::VecF32Scalar A) { return simd::vexp(A); });
}
void tanhScalarArray(float *X, int64_t N) {
  mapScalar(X, N, [](simd::VecF32Scalar A) { return simd::vtanh(A); });
}
void sigmoidScalarArray(float *X, int64_t N) {
  mapScalar(X, N, [](simd::VecF32Scalar A) { return simd::vsigmoid(A); });
}
void geluTanhScalarArray(float *X, int64_t N) {
  mapScalar(X, N, [](simd::VecF32Scalar A) { return simd::vgeluTanh(A); });
}
void erfScalarArray(float *X, int64_t N) {
  mapScalar(X, N, [](simd::VecF32Scalar A) { return simd::verf(A); });
}

const SimdMathTable ScalarTable = [] {
  SimdMathTable T;
  T.Exp = expScalarArray;
  T.Tanh = tanhScalarArray;
  T.Sigmoid = sigmoidScalarArray;
  T.GeluTanh = geluTanhScalarArray;
  T.Erf = erfScalarArray;
  T.Name = "scalar";
  return T;
}();

} // namespace

const SimdMathTable *simdMathTable(KernelTier Tier) {
  switch (Tier) {
  case KernelTier::Scalar: return &ScalarTable;
  case KernelTier::Avx2: return simdMathTableAvx2();
  case KernelTier::Avx512: return simdMathTableAvx512();
  }
  return nullptr;
}

const SimdMathTable &activeSimdMath() {
  static const SimdMathTable *Active = selectActiveKernel(simdMathTable);
  return *Active;
}

} // namespace kernels
} // namespace gc
