//===- packing.cpp - Blocked/VNNI layout packing ------------------------------===//

#include "kernels/packing.h"

#include "support/common.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace gc {
namespace kernels {

namespace {

/// Reads logical element (R, C) of a plain matrix honoring transposition.
template <typename T>
inline T readPlain(const PlainMatrix &Src, int64_t R, int64_t C) {
  const T *Data = static_cast<const T *>(Src.Data);
  if (Src.Transposed)
    return Data[C * Src.Ld + R];
  return Data[R * Src.Ld + C];
}

/// Generic A-format packing: tiles of MB x KB, zero padded.
template <typename T>
void packAImpl(const PlainMatrix &Src, T *Dst, int64_t MB, int64_t KB) {
  const int64_t M = Src.Rows;
  const int64_t K = Src.Cols;
  const int64_t MBlocks = ceilDiv(M, MB);
  const int64_t KBlocks = ceilDiv(K, KB);
  for (int64_t MBlk = 0; MBlk < MBlocks; ++MBlk) {
    for (int64_t KBlk = 0; KBlk < KBlocks; ++KBlk) {
      T *Tile = Dst + (MBlk * KBlocks + KBlk) * MB * KB;
      const int64_t MValid = std::min(MB, M - MBlk * MB);
      const int64_t KValid = std::min(KB, K - KBlk * KB);
      for (int64_t MI = 0; MI < MB; ++MI) {
        T *Row = Tile + MI * KB;
        if (MI >= MValid) {
          std::memset(Row, 0, sizeof(T) * static_cast<size_t>(KB));
          continue;
        }
        const int64_t SrcR = MBlk * MB + MI;
        if (!Src.Transposed) {
          const T *SrcRow =
              static_cast<const T *>(Src.Data) + SrcR * Src.Ld + KBlk * KB;
          std::memcpy(Row, SrcRow, sizeof(T) * static_cast<size_t>(KValid));
        } else {
          for (int64_t KI = 0; KI < KValid; ++KI)
            Row[KI] = readPlain<T>(Src, SrcR, KBlk * KB + KI);
        }
        if (KValid < KB)
          std::memset(Row + KValid, 0,
                      sizeof(T) * static_cast<size_t>(KB - KValid));
      }
    }
  }
}

} // namespace

void packAF32(const PlainMatrix &Src, float *Dst, int64_t MB, int64_t KB) {
  packAImpl<float>(Src, Dst, MB, KB);
}

void packAU8(const PlainMatrix &Src, uint8_t *Dst, int64_t MB, int64_t KB) {
  packAImpl<uint8_t>(Src, Dst, MB, KB);
}

void packBF32(const PlainMatrix &Src, float *Dst, int64_t KB, int64_t NB) {
  const int64_t K = Src.Rows;
  const int64_t N = Src.Cols;
  const int64_t KBlocks = ceilDiv(K, KB);
  const int64_t NBlocks = ceilDiv(N, NB);
  for (int64_t KBlk = 0; KBlk < KBlocks; ++KBlk) {
    for (int64_t NBlk = 0; NBlk < NBlocks; ++NBlk) {
      float *Tile = Dst + (KBlk * NBlocks + NBlk) * KB * NB;
      const int64_t KValid = std::min(KB, K - KBlk * KB);
      const int64_t NValid = std::min(NB, N - NBlk * NB);
      for (int64_t KI = 0; KI < KB; ++KI) {
        float *Row = Tile + KI * NB;
        if (KI >= KValid) {
          std::memset(Row, 0, sizeof(float) * static_cast<size_t>(NB));
          continue;
        }
        for (int64_t NI = 0; NI < NValid; ++NI)
          Row[NI] = readPlain<float>(Src, KBlk * KB + KI, NBlk * NB + NI);
        if (NValid < NB)
          std::memset(Row + NValid, 0,
                      sizeof(float) * static_cast<size_t>(NB - NValid));
      }
    }
  }
}

void packBS8Vnni(const PlainMatrix &Src, int8_t *Dst, int64_t KB, int64_t NB) {
  assert(KB % 4 == 0 && "VNNI packing requires KB % 4 == 0");
  const int64_t K = Src.Rows;
  const int64_t N = Src.Cols;
  const int64_t KBlocks = ceilDiv(K, KB);
  const int64_t NBlocks = ceilDiv(N, NB);
  for (int64_t KBlk = 0; KBlk < KBlocks; ++KBlk) {
    for (int64_t NBlk = 0; NBlk < NBlocks; ++NBlk) {
      int8_t *Tile = Dst + (KBlk * NBlocks + NBlk) * KB * NB;
      std::memset(Tile, 0, static_cast<size_t>(KB * NB));
      const int64_t KValid = std::min(KB, K - KBlk * KB);
      const int64_t NValid = std::min(NB, N - NBlk * NB);
      for (int64_t KI = 0; KI < KValid; ++KI) {
        const int64_t KGroup = KI / 4;
        const int64_t KLane = KI % 4;
        int8_t *GroupBase = Tile + KGroup * NB * 4;
        for (int64_t NI = 0; NI < NValid; ++NI)
          GroupBase[NI * 4 + KLane] =
              readPlain<int8_t>(Src, KBlk * KB + KI, NBlk * NB + NI);
      }
    }
  }
}

void unpackAF32(const float *Src, float *Dst, int64_t M, int64_t K,
                int64_t MB, int64_t KB, int64_t DstLd) {
  const int64_t KBlocks = ceilDiv(K, KB);
  for (int64_t MI = 0; MI < M; ++MI) {
    const int64_t MBlk = MI / MB;
    const int64_t MOff = MI % MB;
    for (int64_t KBlk = 0; KBlk < KBlocks; ++KBlk) {
      const float *TileRow =
          Src + (MBlk * KBlocks + KBlk) * MB * KB + MOff * KB;
      const int64_t KValid = std::min(KB, K - KBlk * KB);
      std::memcpy(Dst + MI * DstLd + KBlk * KB, TileRow,
                  sizeof(float) * static_cast<size_t>(KValid));
    }
  }
}

void unpackAU8(const uint8_t *Src, uint8_t *Dst, int64_t M, int64_t K,
               int64_t MB, int64_t KB, int64_t DstLd) {
  const int64_t KBlocks = ceilDiv(K, KB);
  for (int64_t MI = 0; MI < M; ++MI) {
    const int64_t MBlk = MI / MB;
    const int64_t MOff = MI % MB;
    for (int64_t KBlk = 0; KBlk < KBlocks; ++KBlk) {
      const uint8_t *TileRow =
          Src + (MBlk * KBlocks + KBlk) * MB * KB + MOff * KB;
      const int64_t KValid = std::min(KB, K - KBlk * KB);
      std::memcpy(Dst + MI * DstLd + KBlk * KB, TileRow,
                  static_cast<size_t>(KValid));
    }
  }
}

void colSumS8(const PlainMatrix &Src, int32_t *Comp) {
  const int64_t K = Src.Rows;
  const int64_t N = Src.Cols;
  for (int64_t NI = 0; NI < N; ++NI)
    Comp[NI] = 0;
  for (int64_t KI = 0; KI < K; ++KI)
    for (int64_t NI = 0; NI < N; ++NI)
      Comp[NI] += readPlain<int8_t>(Src, KI, NI);
}

} // namespace kernels
} // namespace gc
