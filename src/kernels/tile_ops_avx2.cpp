//===- tile_ops_avx2.cpp - AVX2 tile-op & math tables -------------------------===//
//
// Instantiates the width-generic kernel bodies with the 8-lane AVX2 backend.
// Compiled with -mavx2 -mfma (per-file flags in CMakeLists.txt); when the
// toolchain cannot target AVX2 the providers return nullptr and dispatch
// degrades to the scalar tier.
//
//===----------------------------------------------------------------------===//

#include "kernels/tile_ops_simd.h"

namespace gc {
namespace kernels {

#if defined(__AVX2__) && defined(__FMA__)

const TileOpsTable *tileOpsTableAvx2() {
  const CpuFeatures &F = cpuFeatures();
  if (!F.HasAvx2 || !F.HasFma)
    return nullptr;
  static const TileOpsTable Table =
      SimdTileOps<simd::VecF32Avx2>::table("avx2", KernelTier::Avx2);
  return &Table;
}

const SimdMathTable *simdMathTableAvx2() {
  const CpuFeatures &F = cpuFeatures();
  if (!F.HasAvx2 || !F.HasFma)
    return nullptr;
  static const SimdMathTable Table =
      SimdTileOps<simd::VecF32Avx2>::mathTable("avx2");
  return &Table;
}

#else // !(__AVX2__ && __FMA__)

const TileOpsTable *tileOpsTableAvx2() { return nullptr; }
const SimdMathTable *simdMathTableAvx2() { return nullptr; }

#endif

} // namespace kernels
} // namespace gc
