//===- brgemm.cpp - Batch-reduce GEMM microkernel ----------------------------===//
//
// Register-blocked implementations of the brgemm contract. The FP32 kernel
// keeps a panel of C rows in zmm/ymm accumulators across the whole K*Batch
// reduction; the int8 kernel consumes VNNI-packed B tiles with dpbusd. Both
// fall back to portable loops that GCC auto-vectorizes when the target ISA
// is unavailable.
//
//===----------------------------------------------------------------------===//

#include "kernels/brgemm.h"

#include "support/common.h"

#include <cassert>
#include <cstring>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace gc {
namespace kernels {

namespace {

//===----------------------------------------------------------------------===//
// Portable reference kernels
//===----------------------------------------------------------------------===//

void brgemmF32Portable(const BrgemmF32Args &Args) {
  for (int64_t MI = 0; MI < Args.M; ++MI) {
    float *CRow = Args.C + MI * Args.Ldc;
    if (Args.InitC)
      std::memset(CRow, 0, sizeof(float) * static_cast<size_t>(Args.N));
    for (int64_t BI = 0; BI < Args.Batch; ++BI) {
      const float *ATile = Args.A + BI * Args.AStrideBatch + MI * Args.Lda;
      const float *BTile = Args.B + BI * Args.BStrideBatch;
      for (int64_t KI = 0; KI < Args.K; ++KI) {
        const float AVal = ATile[KI];
        const float *BRow = BTile + KI * Args.Ldb;
        for (int64_t NI = 0; NI < Args.N; ++NI)
          CRow[NI] += AVal * BRow[NI];
      }
    }
  }
}

void brgemmU8S8Portable(const BrgemmU8S8Args &Args) {
  assert(Args.K % 4 == 0 && "packed K must be a multiple of 4");
  for (int64_t MI = 0; MI < Args.M; ++MI) {
    int32_t *CRow = Args.C + MI * Args.Ldc;
    if (Args.InitC)
      std::memset(CRow, 0, sizeof(int32_t) * static_cast<size_t>(Args.N));
    for (int64_t BI = 0; BI < Args.Batch; ++BI) {
      const uint8_t *ATile = Args.A + BI * Args.AStrideBatch + MI * Args.Lda;
      const int8_t *BTile = Args.B + BI * Args.BStrideBatch;
      for (int64_t KG = 0; KG < Args.K / 4; ++KG) {
        const int8_t *BGroup = BTile + KG * Args.NPadded * 4;
        for (int64_t NI = 0; NI < Args.N; ++NI) {
          int32_t Acc = 0;
          for (int64_t KL = 0; KL < 4; ++KL)
            Acc += static_cast<int32_t>(ATile[KG * 4 + KL]) *
                   static_cast<int32_t>(BGroup[NI * 4 + KL]);
          CRow[NI] += Acc;
        }
      }
    }
  }
}

#if defined(__AVX512F__)

//===----------------------------------------------------------------------===//
// AVX-512 FP32 kernel
//===----------------------------------------------------------------------===//

/// Computes an MRows x 16 C panel (MRows <= 8) with masked N tail.
template <int MRows>
void brgemmF32PanelAvx512(const BrgemmF32Args &Args, int64_t MBase,
                          int64_t NBase, __mmask16 Mask) {
  __m512 Acc[MRows];
  if (Args.InitC) {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_setzero_ps();
  } else {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_maskz_loadu_ps(
          Mask, Args.C + (MBase + R) * Args.Ldc + NBase);
  }
  for (int64_t BI = 0; BI < Args.Batch; ++BI) {
    const float *ATile = Args.A + BI * Args.AStrideBatch + MBase * Args.Lda;
    const float *BTile = Args.B + BI * Args.BStrideBatch + NBase;
    for (int64_t KI = 0; KI < Args.K; ++KI) {
      const __m512 BVec = _mm512_maskz_loadu_ps(Mask, BTile + KI * Args.Ldb);
      for (int R = 0; R < MRows; ++R) {
        const __m512 AVec = _mm512_set1_ps(ATile[R * Args.Lda + KI]);
        Acc[R] = _mm512_fmadd_ps(AVec, BVec, Acc[R]);
      }
    }
  }
  for (int R = 0; R < MRows; ++R)
    _mm512_mask_storeu_ps(Args.C + (MBase + R) * Args.Ldc + NBase, Mask,
                          Acc[R]);
}

void brgemmF32Avx512(const BrgemmF32Args &Args) {
  for (int64_t NBase = 0; NBase < Args.N; NBase += 16) {
    const int64_t NRem = Args.N - NBase;
    const __mmask16 Mask =
        NRem >= 16 ? static_cast<__mmask16>(0xffff)
                   : static_cast<__mmask16>((1u << NRem) - 1u);
    int64_t MBase = 0;
    for (; MBase + 8 <= Args.M; MBase += 8)
      brgemmF32PanelAvx512<8>(Args, MBase, NBase, Mask);
    switch (Args.M - MBase) {
    case 7: brgemmF32PanelAvx512<7>(Args, MBase, NBase, Mask); break;
    case 6: brgemmF32PanelAvx512<6>(Args, MBase, NBase, Mask); break;
    case 5: brgemmF32PanelAvx512<5>(Args, MBase, NBase, Mask); break;
    case 4: brgemmF32PanelAvx512<4>(Args, MBase, NBase, Mask); break;
    case 3: brgemmF32PanelAvx512<3>(Args, MBase, NBase, Mask); break;
    case 2: brgemmF32PanelAvx512<2>(Args, MBase, NBase, Mask); break;
    case 1: brgemmF32PanelAvx512<1>(Args, MBase, NBase, Mask); break;
    case 0: break;
    default: GC_UNREACHABLE("tail larger than panel");
    }
  }
}

//===----------------------------------------------------------------------===//
// AVX-512 (VNNI) u8s8s32 kernel
//===----------------------------------------------------------------------===//

#if defined(__AVX512VNNI__) || defined(__AVX512BW__)
#define GC_HAVE_AVX512_INT8 1

inline __m512i dotProductU8S8(__m512i Acc, __m512i AVec, __m512i BVec) {
#if defined(__AVX512VNNI__)
  return _mm512_dpbusd_epi32(Acc, AVec, BVec);
#else
  // Emulation: u8*s8 horizontal pairs via maddubs, then widen-add.
  const __m512i OnesEpi16 = _mm512_set1_epi16(1);
  const __m512i Prod16 = _mm512_maddubs_epi16(AVec, BVec);
  const __m512i Prod32 = _mm512_madd_epi16(Prod16, OnesEpi16);
  return _mm512_add_epi32(Acc, Prod32);
#endif
}

/// Computes an MRows x 16 s32 C panel from VNNI-packed B.
template <int MRows>
void brgemmU8S8PanelAvx512(const BrgemmU8S8Args &Args, int64_t MBase,
                           int64_t NBase, __mmask16 Mask) {
  __m512i Acc[MRows];
  if (Args.InitC) {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_setzero_si512();
  } else {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_maskz_loadu_epi32(
          Mask, Args.C + (MBase + R) * Args.Ldc + NBase);
  }
  const int64_t KGroups = Args.K / 4;
  for (int64_t BI = 0; BI < Args.Batch; ++BI) {
    const uint8_t *ATile = Args.A + BI * Args.AStrideBatch + MBase * Args.Lda;
    const int8_t *BTile = Args.B + BI * Args.BStrideBatch + NBase * 4;
    for (int64_t KG = 0; KG < KGroups; ++KG) {
      // 16 columns x 4 interleaved k values = 64 bytes per k-group.
      const __m512i BVec = _mm512_maskz_loadu_epi32(
          Mask, reinterpret_cast<const int32_t *>(BTile +
                                                  KG * Args.NPadded * 4));
      for (int R = 0; R < MRows; ++R) {
        int32_t APack;
        std::memcpy(&APack, ATile + R * Args.Lda + KG * 4, sizeof(APack));
        const __m512i AVec = _mm512_set1_epi32(APack);
        Acc[R] = dotProductU8S8(Acc[R], AVec, BVec);
      }
    }
  }
  for (int R = 0; R < MRows; ++R)
    _mm512_mask_storeu_epi32(Args.C + (MBase + R) * Args.Ldc + NBase, Mask,
                             Acc[R]);
}

void brgemmU8S8Avx512(const BrgemmU8S8Args &Args) {
  for (int64_t NBase = 0; NBase < Args.N; NBase += 16) {
    const int64_t NRem = Args.N - NBase;
    const __mmask16 Mask =
        NRem >= 16 ? static_cast<__mmask16>(0xffff)
                   : static_cast<__mmask16>((1u << NRem) - 1u);
    int64_t MBase = 0;
    for (; MBase + 8 <= Args.M; MBase += 8)
      brgemmU8S8PanelAvx512<8>(Args, MBase, NBase, Mask);
    switch (Args.M - MBase) {
    case 7: brgemmU8S8PanelAvx512<7>(Args, MBase, NBase, Mask); break;
    case 6: brgemmU8S8PanelAvx512<6>(Args, MBase, NBase, Mask); break;
    case 5: brgemmU8S8PanelAvx512<5>(Args, MBase, NBase, Mask); break;
    case 4: brgemmU8S8PanelAvx512<4>(Args, MBase, NBase, Mask); break;
    case 3: brgemmU8S8PanelAvx512<3>(Args, MBase, NBase, Mask); break;
    case 2: brgemmU8S8PanelAvx512<2>(Args, MBase, NBase, Mask); break;
    case 1: brgemmU8S8PanelAvx512<1>(Args, MBase, NBase, Mask); break;
    case 0: break;
    default: GC_UNREACHABLE("tail larger than panel");
    }
  }
}

#endif // GC_HAVE_AVX512_INT8

#endif // __AVX512F__

} // namespace

void brgemmF32(const BrgemmF32Args &Args) {
  assert(Args.M >= 0 && Args.N >= 0 && Args.K >= 0 && Args.Batch >= 0);
  if (Args.M == 0 || Args.N == 0)
    return;
#if defined(__AVX512F__)
  brgemmF32Avx512(Args);
#else
  brgemmF32Portable(Args);
#endif
}

void brgemmU8S8(const BrgemmU8S8Args &Args) {
  assert(Args.M >= 0 && Args.N >= 0 && Args.K >= 0 && Args.Batch >= 0);
  assert(Args.K % 4 == 0 && "packed K must be a multiple of 4");
  if (Args.M == 0 || Args.N == 0)
    return;
#if defined(__AVX512F__) && defined(GC_HAVE_AVX512_INT8)
  brgemmU8S8Avx512(Args);
#else
  brgemmU8S8Portable(Args);
#endif
}

void brgemmF32Ref(const BrgemmF32Args &Args) { brgemmF32Portable(Args); }

void brgemmU8S8Ref(const BrgemmU8S8Args &Args) { brgemmU8S8Portable(Args); }

} // namespace kernels
} // namespace gc
