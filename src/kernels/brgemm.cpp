//===- brgemm.cpp - Batch-reduce GEMM dispatch & portable kernels -------------===//
//
// Portable reference kernels plus the runtime tier dispatch. The ISA
// kernels live in brgemm_avx2.cpp / brgemm_avx512.cpp / brgemm_avx512vnni.cpp
// (compiled with per-file -m flags); the widest tier supported by both the
// build and the executing CPU is bound once per process, capped by
// GC_KERNELS.
//
//===----------------------------------------------------------------------===//

#include "kernels/brgemm.h"

#include "support/common.h"

#include <cassert>
#include <cstring>

namespace gc {
namespace kernels {

namespace {

//===----------------------------------------------------------------------===//
// Portable reference kernels
//===----------------------------------------------------------------------===//

void brgemmF32Portable(const BrgemmF32Args &Args) {
  for (int64_t MI = 0; MI < Args.M; ++MI) {
    float *CRow = Args.C + MI * Args.Ldc;
    if (Args.InitC)
      std::memset(CRow, 0, sizeof(float) * static_cast<size_t>(Args.N));
    for (int64_t BI = 0; BI < Args.Batch; ++BI) {
      const float *ATile = Args.A + BI * Args.AStrideBatch + MI * Args.Lda;
      const float *BTile = Args.B + BI * Args.BStrideBatch;
      for (int64_t KI = 0; KI < Args.K; ++KI) {
        const float AVal = ATile[KI];
        const float *BRow = BTile + KI * Args.Ldb;
        for (int64_t NI = 0; NI < Args.N; ++NI)
          CRow[NI] += AVal * BRow[NI];
      }
    }
  }
}

void brgemmU8S8Portable(const BrgemmU8S8Args &Args) {
  assert(Args.K % 4 == 0 && "packed K must be a multiple of 4");
  for (int64_t MI = 0; MI < Args.M; ++MI) {
    int32_t *CRow = Args.C + MI * Args.Ldc;
    if (Args.InitC)
      std::memset(CRow, 0, sizeof(int32_t) * static_cast<size_t>(Args.N));
    for (int64_t BI = 0; BI < Args.Batch; ++BI) {
      const uint8_t *ATile = Args.A + BI * Args.AStrideBatch + MI * Args.Lda;
      const int8_t *BTile = Args.B + BI * Args.BStrideBatch;
      for (int64_t KG = 0; KG < Args.K / 4; ++KG) {
        const int8_t *BGroup = BTile + KG * Args.NPadded * 4;
        for (int64_t NI = 0; NI < Args.N; ++NI) {
          int32_t Acc = 0;
          for (int64_t KL = 0; KL < 4; ++KL)
            Acc += static_cast<int32_t>(ATile[KG * 4 + KL]) *
                   static_cast<int32_t>(BGroup[NI * 4 + KL]);
          CRow[NI] += Acc;
        }
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Tier dispatch
//===----------------------------------------------------------------------===//

// Providers from the ISA translation units (nullptr when unavailable).
BrgemmF32Fn brgemmF32Avx2Fn();
BrgemmU8S8Fn brgemmU8S8Avx2Fn();
BrgemmF32Fn brgemmF32Avx512Fn();
BrgemmU8S8Fn brgemmU8S8Avx512VnniFn();

BrgemmF32Fn brgemmF32ForTier(KernelTier Tier) {
  switch (Tier) {
  case KernelTier::Scalar: return brgemmF32Portable;
  case KernelTier::Avx2: return brgemmF32Avx2Fn();
  case KernelTier::Avx512: return brgemmF32Avx512Fn();
  }
  return nullptr;
}

BrgemmU8S8Fn brgemmU8S8ForTier(KernelTier Tier) {
  switch (Tier) {
  case KernelTier::Scalar: return brgemmU8S8Portable;
  case KernelTier::Avx2: return brgemmU8S8Avx2Fn();
  case KernelTier::Avx512: return brgemmU8S8Avx512VnniFn();
  }
  return nullptr;
}

namespace {

BrgemmF32Fn activeBrgemmF32() {
  static const BrgemmF32Fn Fn = selectActiveKernel(brgemmF32ForTier);
  return Fn;
}

BrgemmU8S8Fn activeBrgemmU8S8() {
  static const BrgemmU8S8Fn Fn = selectActiveKernel(brgemmU8S8ForTier);
  return Fn;
}

} // namespace

void brgemmF32(const BrgemmF32Args &Args) {
  assert(Args.M >= 0 && Args.N >= 0 && Args.K >= 0 && Args.Batch >= 0);
  if (Args.M == 0 || Args.N == 0)
    return;
  activeBrgemmF32()(Args);
}

void brgemmU8S8(const BrgemmU8S8Args &Args) {
  assert(Args.M >= 0 && Args.N >= 0 && Args.K >= 0 && Args.Batch >= 0);
  assert(Args.K % 4 == 0 && "packed K must be a multiple of 4");
  if (Args.M == 0 || Args.N == 0)
    return;
  activeBrgemmU8S8()(Args);
}

void brgemmF32Ref(const BrgemmF32Args &Args) { brgemmF32Portable(Args); }

void brgemmU8S8Ref(const BrgemmU8S8Args &Args) { brgemmU8S8Portable(Args); }

} // namespace kernels
} // namespace gc
