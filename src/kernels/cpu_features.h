//===- cpu_features.h - ISA capability reporting ----------------*- C++ -*-===//
///
/// \file
/// Reports which SIMD paths this build of the microkernels uses. The paper's
/// brgemm is JIT-generated per ISA via Xbyak; this reproduction selects the
/// ISA at compile time (-march=native) and exposes the choice for logging
/// and for tests that assert the expected path is active.
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_CPU_FEATURES_H
#define GC_KERNELS_CPU_FEATURES_H

#include <string>

namespace gc {
namespace kernels {

/// Compile-time ISA capabilities of the microkernel library.
struct CpuFeatures {
  bool HasAvx2 = false;
  bool HasAvx512f = false;
  bool HasAvx512Vnni = false;
};

/// Returns the capabilities the kernels were compiled with.
const CpuFeatures &cpuFeatures();

/// Human-readable ISA summary, e.g. "avx512f+vnni".
std::string isaName();

} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_CPU_FEATURES_H
