//===- cpu_features.h - Runtime ISA detection & kernel tiers ----*- C++ -*-===//
///
/// \file
/// Runtime CPUID-based ISA detection and the kernel dispatch tier. The
/// paper's brgemm is JIT-generated per ISA via Xbyak; this reproduction
/// compiles each ISA tier ahead of time into its own translation unit
/// (per-file -m flags, see CMakeLists.txt) and picks the widest tier the
/// executing CPU supports at process start. The selection is observable
/// (activeKernelTier / isaName) so logs, benches and tests can assert which
/// path ran, and overridable with GC_KERNELS for differential testing.
///
/// Environment:
///   GC_KERNELS=scalar|simd|avx2|avx512
///     scalar  force the portable reference kernels (the oracle)
///     simd    widest tier supported by both the build and the CPU (default)
///     avx2    cap the tier at AVX2 (useful on AVX-512 hosts)
///     avx512  alias for simd
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_CPU_FEATURES_H
#define GC_KERNELS_CPU_FEATURES_H

#include <string>

namespace gc {
namespace kernels {

/// SIMD capabilities, either of the executing CPU (cpuFeatures) or of the
/// kernel library build (compiledFeatures).
struct CpuFeatures {
  bool HasAvx2 = false;
  bool HasFma = false;
  bool HasAvx512f = false;
  bool HasAvx512bw = false;
  bool HasAvx512vl = false;
  bool HasAvx512Vnni = false;
};

/// Capabilities of the CPU this process is running on (CPUID; cached).
const CpuFeatures &cpuFeatures();

/// Capabilities the kernel library was built with, i.e. which ISA-specific
/// translation units exist in this binary (per-file -m flags).
const CpuFeatures &compiledFeatures();

/// Kernel dispatch tier. Scalar is the portable reference path; wider tiers
/// are only selectable when both the build and the CPU support them.
enum class KernelTier { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Short lowercase tier name: "scalar", "avx2", "avx512".
const char *kernelTierName(KernelTier Tier);

/// Widest tier supported by both the build and the executing CPU,
/// ignoring GC_KERNELS.
KernelTier maxKernelTier();

/// The tier the kernel library dispatches to: maxKernelTier() capped by
/// GC_KERNELS (read once at first use).
KernelTier activeKernelTier();

/// False when GC_KERNELS=scalar pinned the portable reference kernels.
bool simdKernelsEnabled();

/// Walks from the active tier down to Scalar and returns the first
/// non-null kernel/table \p Provider vends. Shared by every kernel family
/// so an unavailable tier degrades identically for brgemm, tile ops and
/// the math tables.
template <typename ProviderFn>
auto selectActiveKernel(ProviderFn Provider)
    -> decltype(Provider(KernelTier::Scalar)) {
  for (int T = static_cast<int>(activeKernelTier()); T > 0; --T)
    if (auto R = Provider(static_cast<KernelTier>(T)))
      return R;
  return Provider(KernelTier::Scalar);
}

/// Human-readable runtime ISA summary, e.g. "avx512f+vnni".
std::string isaName();

} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_CPU_FEATURES_H
