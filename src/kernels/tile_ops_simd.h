//===- tile_ops_simd.h - Width-generic tile-op kernel bodies ----*- C++ -*-===//
///
/// \file
/// The vectorized bodies of the f32 tile-op vocabulary, written once as
/// templates over a simd.h backend. Each ISA translation unit
/// (tile_ops_avx2.cpp, tile_ops_avx512.cpp) instantiates SimdTileOps with
/// its backend and exports the resulting TileOpsTable; tile_ops.cpp keeps
/// the original scalar loops as the GC_KERNELS=scalar reference oracle.
///
/// Every kernel walks full vector blocks and finishes the row with one
/// masked-tail block, so non-multiple-of-width column counts never touch
/// memory outside the tile (the tests assert the padding stays intact).
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_TILE_OPS_SIMD_H
#define GC_KERNELS_TILE_OPS_SIMD_H

#include "kernels/simd_math.h"
#include "kernels/tile_ops.h"

#include <cmath>
#include <limits>

namespace gc {
namespace kernels {

template <typename V> struct SimdTileOps {
  /// Applies \p F (V -> V) to every element of the tile in place.
  template <typename Fn> static inline void mapRows(const TileF32 &X, Fn F) {
    const int64_t W = V::Width;
    for (int64_t R = 0; R < X.Rows; ++R) {
      float *Row = X.Data + R * X.Ld;
      int64_t C = 0;
      for (; C + W <= X.Cols; C += W)
        F(V::load(Row + C)).store(Row + C);
      if (C < X.Cols)
        F(V::loadPartial(Row + C, X.Cols - C))
            .storePartial(Row + C, X.Cols - C);
    }
  }

  /// x[r][c] = F(x[r][c], y[r][c]).
  template <typename Fn>
  static inline void mapRowPairs(const TileF32 &X, const ConstTileF32 &Y,
                                 Fn F) {
    const int64_t W = V::Width;
    for (int64_t R = 0; R < X.Rows; ++R) {
      float *XR = X.Data + R * X.Ld;
      const float *YR = Y.Data + R * Y.Ld;
      int64_t C = 0;
      for (; C + W <= X.Cols; C += W)
        F(V::load(XR + C), V::load(YR + C)).store(XR + C);
      if (C < X.Cols)
        F(V::loadPartial(XR + C, X.Cols - C),
          V::loadPartial(YR + C, X.Cols - C))
            .storePartial(XR + C, X.Cols - C);
    }
  }

  /// x[r][c] = F(x[r][c], v[c]) — length-Cols vector broadcast over rows.
  template <typename Fn>
  static inline void mapRowVec(const TileF32 &X, const float *Vv, Fn F) {
    const int64_t W = V::Width;
    for (int64_t R = 0; R < X.Rows; ++R) {
      float *Row = X.Data + R * X.Ld;
      int64_t C = 0;
      for (; C + W <= X.Cols; C += W)
        F(V::load(Row + C), V::load(Vv + C)).store(Row + C);
      if (C < X.Cols)
        F(V::loadPartial(Row + C, X.Cols - C),
          V::loadPartial(Vv + C, X.Cols - C))
            .storePartial(Row + C, X.Cols - C);
    }
  }

  /// x[r][c] = F(x[r][c], s[r]) — per-row scalar broadcast over columns.
  template <typename Fn>
  static inline void mapColVec(const TileF32 &X, const float *Vv, Fn F) {
    const int64_t W = V::Width;
    for (int64_t R = 0; R < X.Rows; ++R) {
      float *Row = X.Data + R * X.Ld;
      const V S = V::set1(Vv[R]);
      int64_t C = 0;
      for (; C + W <= X.Cols; C += W)
        F(V::load(Row + C), S).store(Row + C);
      if (C < X.Cols)
        F(V::loadPartial(Row + C, X.Cols - C), S)
            .storePartial(Row + C, X.Cols - C);
    }
  }

  // ---- unary -----------------------------------------------------------

  static void relu(const TileF32 &X) {
    mapRows(X, [](V A) { return V::max_(A, V::zero()); });
  }
  static void exp(const TileF32 &X) {
    mapRows(X, [](V A) { return simd::vexp(A); });
  }
  static void tanh(const TileF32 &X) {
    mapRows(X, [](V A) { return simd::vtanh(A); });
  }
  static void sqrt(const TileF32 &X) {
    mapRows(X, [](V A) { return V::sqrt_(A); });
  }
  static void recip(const TileF32 &X) {
    mapRows(X, [](V A) { return V::div(V::set1(1.0f), A); });
  }
  static void affine(const TileF32 &X, float A, float B) {
    const V Av = V::set1(A), Bv = V::set1(B);
    mapRows(X, [Av, Bv](V Xv) { return V::fma(Xv, Av, Bv); });
  }
  static void geluTanh(const TileF32 &X) {
    mapRows(X, [](V A) { return simd::vgeluTanh(A); });
  }
  static void sigmoid(const TileF32 &X) {
    mapRows(X, [](V A) { return simd::vsigmoid(A); });
  }
  static void square(const TileF32 &X) {
    mapRows(X, [](V A) { return V::mul(A, A); });
  }

  // ---- binary ----------------------------------------------------------

  static void add(const TileF32 &X, const ConstTileF32 &Y) {
    mapRowPairs(X, Y, [](V A, V B) { return V::add(A, B); });
  }
  static void sub(const TileF32 &X, const ConstTileF32 &Y) {
    mapRowPairs(X, Y, [](V A, V B) { return V::sub(A, B); });
  }
  static void mul(const TileF32 &X, const ConstTileF32 &Y) {
    mapRowPairs(X, Y, [](V A, V B) { return V::mul(A, B); });
  }
  static void div(const TileF32 &X, const ConstTileF32 &Y) {
    mapRowPairs(X, Y, [](V A, V B) { return V::div(A, B); });
  }
  static void max(const TileF32 &X, const ConstTileF32 &Y) {
    mapRowPairs(X, Y, [](V A, V B) { return V::max_(A, B); });
  }
  static void min(const TileF32 &X, const ConstTileF32 &Y) {
    mapRowPairs(X, Y, [](V A, V B) { return V::min_(A, B); });
  }

  // ---- broadcast binary ------------------------------------------------

  static void addRowVec(const TileF32 &X, const float *Vv) {
    mapRowVec(X, Vv, [](V A, V B) { return V::add(A, B); });
  }
  static void subRowVec(const TileF32 &X, const float *Vv) {
    mapRowVec(X, Vv, [](V A, V B) { return V::sub(A, B); });
  }
  static void mulRowVec(const TileF32 &X, const float *Vv) {
    mapRowVec(X, Vv, [](V A, V B) { return V::mul(A, B); });
  }
  static void addColVec(const TileF32 &X, const float *Vv) {
    mapColVec(X, Vv, [](V A, V S) { return V::add(A, S); });
  }
  static void subColVec(const TileF32 &X, const float *Vv) {
    mapColVec(X, Vv, [](V A, V S) { return V::sub(A, S); });
  }
  static void mulColVec(const TileF32 &X, const float *Vv) {
    mapColVec(X, Vv, [](V A, V S) { return V::mul(A, S); });
  }
  static void divColVec(const TileF32 &X, const float *Vv) {
    // Same reciprocal-then-multiply semantics as the scalar oracle.
    const int64_t W = V::Width;
    for (int64_t R = 0; R < X.Rows; ++R) {
      float *Row = X.Data + R * X.Ld;
      const V S = V::set1(1.0f / Vv[R]);
      int64_t C = 0;
      for (; C + W <= X.Cols; C += W)
        V::mul(V::load(Row + C), S).store(Row + C);
      if (C < X.Cols)
        V::mul(V::loadPartial(Row + C, X.Cols - C), S)
            .storePartial(Row + C, X.Cols - C);
    }
  }

  // ---- reductions ------------------------------------------------------

  static void reduceSumRows(const TileF32 &X, float *Out, bool Accumulate) {
    const int64_t W = V::Width;
    for (int64_t R = 0; R < X.Rows; ++R) {
      const float *Row = X.Data + R * X.Ld;
      V Acc = V::zero();
      int64_t C = 0;
      for (; C + W <= X.Cols; C += W)
        Acc = V::add(Acc, V::load(Row + C));
      if (C < X.Cols)
        Acc = V::add(Acc, V::loadPartial(Row + C, X.Cols - C));
      const float Sum = Acc.hsum();
      Out[R] = Accumulate ? Out[R] + Sum : Sum;
    }
  }

  static void reduceMaxRows(const TileF32 &X, float *Out, bool Accumulate) {
    const int64_t W = V::Width;
    const float NegInf = -std::numeric_limits<float>::infinity();
    for (int64_t R = 0; R < X.Rows; ++R) {
      const float *Row = X.Data + R * X.Ld;
      V Acc = V::set1(NegInf);
      int64_t C = 0;
      for (; C + W <= X.Cols; C += W)
        Acc = V::max_(Acc, V::load(Row + C));
      if (C < X.Cols)
        Acc = V::max_(Acc, V::loadPartialFill(Row + C, X.Cols - C, NegInf));
      const float Max = Acc.hmax();
      Out[R] = Accumulate ? (Out[R] > Max ? Out[R] : Max) : Max;
    }
  }

  // ---- fill ------------------------------------------------------------

  static void fill(const TileF32 &X, float Value) {
    const V Vv = V::set1(Value);
    mapRows(X, [Vv](V) { return Vv; });
  }

  // ---- table -----------------------------------------------------------

  static TileOpsTable table(const char *Name, KernelTier Tier) {
    TileOpsTable T;
    T.Relu = relu;
    T.Exp = exp;
    T.Tanh = tanh;
    T.Sqrt = sqrt;
    T.Recip = recip;
    T.Affine = affine;
    T.GeluTanh = geluTanh;
    T.Sigmoid = sigmoid;
    T.Square = square;
    T.Add = add;
    T.Sub = sub;
    T.Mul = mul;
    T.Div = div;
    T.Max = max;
    T.Min = min;
    T.AddRowVec = addRowVec;
    T.SubRowVec = subRowVec;
    T.MulRowVec = mulRowVec;
    T.AddColVec = addColVec;
    T.SubColVec = subColVec;
    T.MulColVec = mulColVec;
    T.DivColVec = divColVec;
    T.ReduceSumRows = reduceSumRows;
    T.ReduceMaxRows = reduceMaxRows;
    T.Fill = fill;
    T.Name = Name;
    T.Tier = Tier;
    return T;
  }

  // ---- array math (SimdMathTable entries) ------------------------------

  template <typename Fn> static inline void mapArray(float *X, int64_t N, Fn F) {
    const int64_t W = V::Width;
    int64_t I = 0;
    for (; I + W <= N; I += W)
      F(V::load(X + I)).store(X + I);
    if (I < N)
      F(V::loadPartial(X + I, N - I)).storePartial(X + I, N - I);
  }

  static void expArray(float *X, int64_t N) {
    mapArray(X, N, [](V A) { return simd::vexp(A); });
  }
  static void tanhArray(float *X, int64_t N) {
    mapArray(X, N, [](V A) { return simd::vtanh(A); });
  }
  static void sigmoidArray(float *X, int64_t N) {
    mapArray(X, N, [](V A) { return simd::vsigmoid(A); });
  }
  static void geluTanhArray(float *X, int64_t N) {
    mapArray(X, N, [](V A) { return simd::vgeluTanh(A); });
  }
  static void erfArray(float *X, int64_t N) {
    mapArray(X, N, [](V A) { return simd::verf(A); });
  }

  static SimdMathTable mathTable(const char *Name) {
    SimdMathTable T;
    T.Exp = expArray;
    T.Tanh = tanhArray;
    T.Sigmoid = sigmoidArray;
    T.GeluTanh = geluTanhArray;
    T.Erf = erfArray;
    T.Name = Name;
    return T;
  }
};

} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_TILE_OPS_SIMD_H
