//===- brgemm_avx512.cpp - AVX-512 FP32 batch-reduce GEMM tier ----------------===//
//
// The 8 x 16 register-blocked FP32 panel kernel, compiled with -mavx512f
// (per-file flags in CMakeLists.txt). The u8s8s32 kernel of this tier lives
// in brgemm_avx512vnni.cpp: it needs dpbusd, and keeping it in a separate
// translation unit stops the compiler from pattern-matching VNNI
// instructions into code that runs on non-VNNI AVX-512 hosts.
//
//===----------------------------------------------------------------------===//

#include "kernels/brgemm.h"
#include "kernels/simd.h"

#if defined(__AVX512F__)
#include <immintrin.h>

namespace gc {
namespace kernels {

namespace {

/// Computes an MRows x 16 C panel (MRows <= 8) with masked N tail.
template <int MRows>
void brgemmF32PanelAvx512(const BrgemmF32Args &Args, int64_t MBase,
                          int64_t NBase, __mmask16 Mask) {
  __m512 Acc[MRows];
  if (Args.InitC) {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_setzero_ps();
  } else {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_maskz_loadu_ps(
          Mask, Args.C + (MBase + R) * Args.Ldc + NBase);
  }
  for (int64_t BI = 0; BI < Args.Batch; ++BI) {
    const float *ATile = Args.A + BI * Args.AStrideBatch + MBase * Args.Lda;
    const float *BTile = Args.B + BI * Args.BStrideBatch + NBase;
    for (int64_t KI = 0; KI < Args.K; ++KI) {
      const __m512 BVec = _mm512_maskz_loadu_ps(Mask, BTile + KI * Args.Ldb);
      for (int R = 0; R < MRows; ++R) {
        const __m512 AVec = _mm512_set1_ps(ATile[R * Args.Lda + KI]);
        Acc[R] = _mm512_fmadd_ps(AVec, BVec, Acc[R]);
      }
    }
  }
  for (int R = 0; R < MRows; ++R)
    _mm512_mask_storeu_ps(Args.C + (MBase + R) * Args.Ldc + NBase, Mask,
                          Acc[R]);
}

void brgemmF32Avx512(const BrgemmF32Args &Args) {
  for (int64_t NBase = 0; NBase < Args.N; NBase += 16) {
    const __mmask16 Mask = simd::VecF32Avx512::tailMask(Args.N - NBase);
    int64_t MBase = 0;
    for (; MBase + 8 <= Args.M; MBase += 8)
      brgemmF32PanelAvx512<8>(Args, MBase, NBase, Mask);
    switch (Args.M - MBase) {
    case 7: brgemmF32PanelAvx512<7>(Args, MBase, NBase, Mask); break;
    case 6: brgemmF32PanelAvx512<6>(Args, MBase, NBase, Mask); break;
    case 5: brgemmF32PanelAvx512<5>(Args, MBase, NBase, Mask); break;
    case 4: brgemmF32PanelAvx512<4>(Args, MBase, NBase, Mask); break;
    case 3: brgemmF32PanelAvx512<3>(Args, MBase, NBase, Mask); break;
    case 2: brgemmF32PanelAvx512<2>(Args, MBase, NBase, Mask); break;
    case 1: brgemmF32PanelAvx512<1>(Args, MBase, NBase, Mask); break;
    default: break;
    }
  }
}

} // namespace

BrgemmF32Fn brgemmF32Avx512Fn() {
  const CpuFeatures &F = cpuFeatures();
  return (F.HasAvx512f && F.HasAvx512bw && F.HasAvx512vl)
             ? brgemmF32Avx512
             : nullptr;
}

} // namespace kernels
} // namespace gc

#else // !__AVX512F__

namespace gc {
namespace kernels {
BrgemmF32Fn brgemmF32Avx512Fn() { return nullptr; }
} // namespace kernels
} // namespace gc

#endif
