//===- brgemm_avx2.cpp - AVX2 batch-reduce GEMM tier --------------------------===//
//
// Register-blocked AVX2 brgemm kernels (compiled with -mavx2 -mfma):
//
//  * F32: a 6 x 16 C panel (6 rows x two ymm accumulators = 12 of the 16
//    ymm registers, plus two B vectors and one A broadcast) held across the
//    whole K * Batch reduction; masked loads/stores cover the N tail.
//
//  * U8S8S32: 6 rows x 8 columns over the VNNI-packed [K/4][N][4] B layout.
//    dpbusd is emulated *exactly*: the 4-byte k-groups are widened to s16
//    (u8 zero-extended x s8 sign-extended fits s16 with no saturation) and
//    reduced with pmaddwd — unlike the classic maddubs emulation, which
//    saturates for full-range u8 activations and silently corrupts results.
//    hadd merges the pair sums; the resulting permuted column order is
//    fixed with one vpermq per panel at load/store.
//
//===----------------------------------------------------------------------===//

#include "kernels/brgemm.h"
#include "kernels/simd.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <cstring>

namespace gc {
namespace kernels {

namespace {

/// Per-lane i32 mask with lanes [0, N) active (shared with the tile ops).
inline __m256i tailMask8(int64_t N) {
  return simd::VecF32Avx2::tailMask(N);
}

//===----------------------------------------------------------------------===//
// FP32 kernel: MRows x 16 panels
//===----------------------------------------------------------------------===//

/// Computes an MRows x 16 C panel. Full = both 8-wide column blocks are
/// complete; otherwise Mask0/Mask1 gate the partial blocks (NRem > 0).
template <int MRows, bool Full>
void brgemmF32PanelAvx2(const BrgemmF32Args &Args, int64_t MBase,
                        int64_t NBase, __m256i Mask0, __m256i Mask1) {
  __m256 Acc[MRows][2];
  for (int R = 0; R < MRows; ++R) {
    float *CRow = Args.C + (MBase + R) * Args.Ldc + NBase;
    if (Args.InitC) {
      Acc[R][0] = _mm256_setzero_ps();
      Acc[R][1] = _mm256_setzero_ps();
    } else if (Full) {
      Acc[R][0] = _mm256_loadu_ps(CRow);
      Acc[R][1] = _mm256_loadu_ps(CRow + 8);
    } else {
      Acc[R][0] = _mm256_maskload_ps(CRow, Mask0);
      Acc[R][1] = _mm256_maskload_ps(CRow + 8, Mask1);
    }
  }
  for (int64_t BI = 0; BI < Args.Batch; ++BI) {
    const float *ATile = Args.A + BI * Args.AStrideBatch + MBase * Args.Lda;
    const float *BTile = Args.B + BI * Args.BStrideBatch + NBase;
    for (int64_t KI = 0; KI < Args.K; ++KI) {
      const float *BRow = BTile + KI * Args.Ldb;
      const __m256 B0 =
          Full ? _mm256_loadu_ps(BRow) : _mm256_maskload_ps(BRow, Mask0);
      const __m256 B1 = Full ? _mm256_loadu_ps(BRow + 8)
                             : _mm256_maskload_ps(BRow + 8, Mask1);
      for (int R = 0; R < MRows; ++R) {
        const __m256 AV = _mm256_set1_ps(ATile[R * Args.Lda + KI]);
        Acc[R][0] = _mm256_fmadd_ps(AV, B0, Acc[R][0]);
        Acc[R][1] = _mm256_fmadd_ps(AV, B1, Acc[R][1]);
      }
    }
  }
  for (int R = 0; R < MRows; ++R) {
    float *CRow = Args.C + (MBase + R) * Args.Ldc + NBase;
    if (Full) {
      _mm256_storeu_ps(CRow, Acc[R][0]);
      _mm256_storeu_ps(CRow + 8, Acc[R][1]);
    } else {
      _mm256_maskstore_ps(CRow, Mask0, Acc[R][0]);
      _mm256_maskstore_ps(CRow + 8, Mask1, Acc[R][1]);
    }
  }
}

template <bool Full>
void brgemmF32RowsAvx2(const BrgemmF32Args &Args, int64_t NBase,
                       __m256i Mask0, __m256i Mask1) {
  int64_t MBase = 0;
  for (; MBase + 6 <= Args.M; MBase += 6)
    brgemmF32PanelAvx2<6, Full>(Args, MBase, NBase, Mask0, Mask1);
  switch (Args.M - MBase) {
  case 5: brgemmF32PanelAvx2<5, Full>(Args, MBase, NBase, Mask0, Mask1); break;
  case 4: brgemmF32PanelAvx2<4, Full>(Args, MBase, NBase, Mask0, Mask1); break;
  case 3: brgemmF32PanelAvx2<3, Full>(Args, MBase, NBase, Mask0, Mask1); break;
  case 2: brgemmF32PanelAvx2<2, Full>(Args, MBase, NBase, Mask0, Mask1); break;
  case 1: brgemmF32PanelAvx2<1, Full>(Args, MBase, NBase, Mask0, Mask1); break;
  default: break;
  }
}

void brgemmF32Avx2(const BrgemmF32Args &Args) {
  for (int64_t NBase = 0; NBase < Args.N; NBase += 16) {
    const int64_t NRem = Args.N - NBase;
    if (NRem >= 16) {
      const __m256i Z = _mm256_setzero_si256();
      brgemmF32RowsAvx2<true>(Args, NBase, Z, Z);
    } else {
      const __m256i Mask0 = tailMask8(NRem);
      const __m256i Mask1 = tailMask8(NRem - 8); // empty when NRem <= 8
      brgemmF32RowsAvx2<false>(Args, NBase, Mask0, Mask1);
    }
  }
}

//===----------------------------------------------------------------------===//
// u8s8s32 kernel: MRows x 8 panels over VNNI-packed B
//===----------------------------------------------------------------------===//

// One k-group of 8 columns occupies 32 bytes of packed B: column n holds
// its 4 consecutive k values at bytes [4n, 4n+4). The exact dot product
// widens both sides to s16 and uses pmaddwd:
//   p0 = madd(A16, B16lo) -> per column c0..c3: [c(k0+k1), c(k2+k3)] pairs
//   p1 = madd(A16, B16hi) -> same for c4..c7
//   hadd(p0, p1)          -> [c0, c1, c4, c5 | c2, c3, c6, c7]
// The accumulator stays in that permuted order; one vpermq(0xD8) converts
// natural <-> permuted at panel load/store (swapping the middle 64-bit
// chunks is its own inverse, so the same shuffle works both ways).

template <int MRows, bool Full>
void brgemmU8S8PanelAvx2(const BrgemmU8S8Args &Args, int64_t MBase,
                         int64_t NBase, __m256i Mask) {
  __m256i Acc[MRows];
  for (int R = 0; R < MRows; ++R) {
    int32_t *CRow = Args.C + (MBase + R) * Args.Ldc + NBase;
    if (Args.InitC) {
      Acc[R] = _mm256_setzero_si256();
    } else {
      const __m256i Nat =
          Full ? _mm256_loadu_si256(reinterpret_cast<const __m256i *>(CRow))
               : _mm256_maskload_epi32(CRow, Mask);
      Acc[R] = _mm256_permute4x64_epi64(Nat, 0xD8);
    }
  }
  const int64_t KGroups = Args.K / 4;
  for (int64_t BI = 0; BI < Args.Batch; ++BI) {
    const uint8_t *ATile = Args.A + BI * Args.AStrideBatch + MBase * Args.Lda;
    const int8_t *BTile = Args.B + BI * Args.BStrideBatch + NBase * 4;
    for (int64_t KG = 0; KG < KGroups; ++KG) {
      const int32_t *BGroup =
          reinterpret_cast<const int32_t *>(BTile + KG * Args.NPadded * 4);
      const __m256i BVec =
          Full ? _mm256_loadu_si256(reinterpret_cast<const __m256i *>(BGroup))
               : _mm256_maskload_epi32(BGroup, Mask);
      const __m256i B16Lo =
          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(BVec));
      const __m256i B16Hi =
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(BVec, 1));
      for (int R = 0; R < MRows; ++R) {
        int32_t APack;
        std::memcpy(&APack, ATile + R * Args.Lda + KG * 4, sizeof(APack));
        const __m256i A16 =
            _mm256_cvtepu8_epi16(_mm_set1_epi32(APack));
        const __m256i P0 = _mm256_madd_epi16(A16, B16Lo);
        const __m256i P1 = _mm256_madd_epi16(A16, B16Hi);
        Acc[R] = _mm256_add_epi32(Acc[R], _mm256_hadd_epi32(P0, P1));
      }
    }
  }
  for (int R = 0; R < MRows; ++R) {
    int32_t *CRow = Args.C + (MBase + R) * Args.Ldc + NBase;
    const __m256i Nat = _mm256_permute4x64_epi64(Acc[R], 0xD8);
    if (Full)
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(CRow), Nat);
    else
      _mm256_maskstore_epi32(CRow, Mask, Nat);
  }
}

template <bool Full>
void brgemmU8S8RowsAvx2(const BrgemmU8S8Args &Args, int64_t NBase,
                        __m256i Mask) {
  int64_t MBase = 0;
  for (; MBase + 6 <= Args.M; MBase += 6)
    brgemmU8S8PanelAvx2<6, Full>(Args, MBase, NBase, Mask);
  switch (Args.M - MBase) {
  case 5: brgemmU8S8PanelAvx2<5, Full>(Args, MBase, NBase, Mask); break;
  case 4: brgemmU8S8PanelAvx2<4, Full>(Args, MBase, NBase, Mask); break;
  case 3: brgemmU8S8PanelAvx2<3, Full>(Args, MBase, NBase, Mask); break;
  case 2: brgemmU8S8PanelAvx2<2, Full>(Args, MBase, NBase, Mask); break;
  case 1: brgemmU8S8PanelAvx2<1, Full>(Args, MBase, NBase, Mask); break;
  default: break;
  }
}

void brgemmU8S8Avx2(const BrgemmU8S8Args &Args) {
  for (int64_t NBase = 0; NBase < Args.N; NBase += 8) {
    const int64_t NRem = Args.N - NBase;
    if (NRem >= 8)
      brgemmU8S8RowsAvx2<true>(Args, NBase, _mm256_setzero_si256());
    else
      brgemmU8S8RowsAvx2<false>(Args, NBase, tailMask8(NRem));
  }
}

} // namespace

BrgemmF32Fn brgemmF32Avx2Fn() {
  const CpuFeatures &F = cpuFeatures();
  return (F.HasAvx2 && F.HasFma) ? brgemmF32Avx2 : nullptr;
}

BrgemmU8S8Fn brgemmU8S8Avx2Fn() {
  const CpuFeatures &F = cpuFeatures();
  return (F.HasAvx2 && F.HasFma) ? brgemmU8S8Avx2 : nullptr;
}

} // namespace kernels
} // namespace gc

#else // !(__AVX2__ && __FMA__)

namespace gc {
namespace kernels {
BrgemmF32Fn brgemmF32Avx2Fn() { return nullptr; }
BrgemmU8S8Fn brgemmU8S8Avx2Fn() { return nullptr; }
} // namespace kernels
} // namespace gc

#endif
