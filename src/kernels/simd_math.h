//===- simd_math.h - Vectorized f32 transcendentals -------------*- C++ -*-===//
///
/// \file
/// Polynomial, range-reduced f32 transcendentals written against the
/// width-generic vector backends of simd.h. One template per function
/// instantiates at every vector width, so the scalar, AVX2 and AVX-512
/// tiers evaluate the *same* polynomial — the differential suite compares
/// them against libm and against each other.
///
/// Accuracy (validated by tests/test_simd_math.cpp against double libm):
///   vexp      <= 4 ULP on [-104, 89]; gradual denormals below -87.34;
///             exact 0 / +inf saturation outside; NaN propagates
///   vtanh     <= 8 ULP (Cephes split: odd polynomial for |x| < 0.625,
///             exp-based 1 - 2/(e^2|x|+1) above); +-1 saturation; NaN ok
///   vsigmoid  <= 8 ULP via vexp; exact 0/1 saturation; NaN propagates
///   vgeluTanh relative <= 1e-5 (or abs <= 1e-30) vs the double tanh-form
///             reference; formulated as x * sigmoid(2*inner) to avoid the
///             1 + tanh cancellation of the naive form in the left tail
///   verf      absolute <= 1e-6 (Abramowitz-Stegun 7.1.26 + vexp; measured
///             max 5.2e-7 over [-6, 6]); +-1 saturation; NaN propagates.
///             Not ULP-tight near 0.
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_SIMD_MATH_H
#define GC_KERNELS_SIMD_MATH_H

#include "kernels/cpu_features.h"
#include "kernels/simd.h"

namespace gc {
namespace kernels {
namespace simd {

/// exp(x), Cephes-style: n = round(x*log2e), f = x - n*ln2 (split constant),
/// degree-5 polynomial in f, then R * 2^n via two-step exponent insertion.
template <typename V> inline V vexp(V X) {
  // Clamp keeps n in the range ldexpFast supports; values past the clamp
  // saturate to 0 / +inf anyway (2^n overflow / underflow does it for us).
  V Xc = V::min_(V::max_(X, V::set1(-104.0f)), V::set1(89.0f));
  const V Fx = V::round(V::mul(Xc, V::set1(1.44269504088896341f)));
  // Two-part ln2 so f keeps full precision: C1 is ln2 rounded to 1 ulp of
  // a short mantissa, C2 the residual.
  V F = V::fma(Fx, V::set1(-0.693359375f), Xc);
  F = V::fma(Fx, V::set1(2.12194440e-4f), F);
  V P = V::set1(1.9875691500e-4f);
  P = V::fma(P, F, V::set1(1.3981999507e-3f));
  P = V::fma(P, F, V::set1(8.3334519073e-3f));
  P = V::fma(P, F, V::set1(4.1665795894e-2f));
  P = V::fma(P, F, V::set1(1.6666665459e-1f));
  P = V::fma(P, F, V::set1(5.0000001201e-1f));
  V R = V::fma(V::mul(F, F), P, V::add(F, V::set1(1.0f)));
  R = V::ldexpFast(R, Fx);
  // min/max quietly replaced NaN lanes with the clamp bound; restore them.
  return V::blend(V::isNanMask(X), X, R);
}

/// tanh(x). Cephes split: odd polynomial for |x| < 0.625, otherwise
/// 1 - 2/(exp(2|x|) + 1) with the sign restored bitwise.
template <typename V> inline V vtanh(V X) {
  const V Ax = V::abs(X);
  const V Z = V::mul(X, X);
  V Ps = V::set1(-5.70498872745e-3f);
  Ps = V::fma(Ps, Z, V::set1(2.06390887954e-2f));
  Ps = V::fma(Ps, Z, V::set1(-5.37397155531e-2f));
  Ps = V::fma(Ps, Z, V::set1(1.33314422036e-1f));
  Ps = V::fma(Ps, Z, V::set1(-3.33332819422e-1f));
  // tanh is sign-preserving: restoring the sign bit explicitly also fixes
  // the x = -0 lane, where x + (x z P) would produce +0.
  V Small = V::fma(V::mul(Ps, Z), X, X);
  Small = V::orBits(Small, V::andBits(X, V::bitsConst(0x80000000u)));
  const V E = vexp(V::add(Ax, Ax));
  V Big = V::sub(V::set1(1.0f),
                 V::div(V::set1(2.0f), V::add(E, V::set1(1.0f))));
  Big = V::orBits(Big, V::andBits(X, V::bitsConst(0x80000000u)));
  // NaN lanes: Ax is NaN, the compare is false, and the Big path carried
  // the NaN through vexp — so the blend picks the right lane already.
  return V::blend(V::ltMask(Ax, V::set1(0.625f)), Small, Big);
}

/// sigmoid(x), computed from e = exp(-|x|) so the exponential never
/// overflows: 1/(1+e) for x >= 0, e/(1+e) for x < 0. The negative branch
/// keeps vexp's relative accuracy all the way into the denormal tail
/// (sigmoid(-103) is a denormal, not 0). No cancellation anywhere.
template <typename V> inline V vsigmoid(V X) {
  const V E = vexp(V::neg(V::abs(X)));
  const V Den = V::add(E, V::set1(1.0f));
  const V Num = V::blend(V::ltMask(X, V::zero()), E, V::set1(1.0f));
  const V R = V::div(Num, Den);
  // NaN lanes fell into the positive branch and computed 1/(1+NaN) = NaN.
  return R;
}

/// Tanh-form GELU: 0.5 x (1 + tanh(c (x + 0.044715 x^3))) computed as
/// x * sigmoid(2 c (x + 0.044715 x^3)) — algebraically identical, but
/// immune to the catastrophic 1 + tanh(t) cancellation for t << 0.
template <typename V> inline V vgeluTanh(V X) {
  const V X3 = V::mul(V::mul(X, X), X);
  const V Inner =
      V::mul(V::set1(0.7978845608028654f), V::fma(X3, V::set1(0.044715f), X));
  return V::mul(X, vsigmoid(V::add(Inner, Inner)));
}

/// erf(x), Abramowitz-Stegun 7.1.26: erf(|x|) = 1 - poly(t) exp(-x^2) with
/// t = 1/(1 + 0.3275911 |x|); absolute error <= 1e-6 in f32 (1.5e-7 in
/// exact arithmetic), sign restored bitwise. Saturates to +-1, NaN ok.
template <typename V> inline V verf(V X) {
  const V Ax = V::abs(X);
  const V T = V::div(V::set1(1.0f),
                     V::fma(Ax, V::set1(0.3275911f), V::set1(1.0f)));
  V P = V::set1(1.061405429f);
  P = V::fma(P, T, V::set1(-1.453152027f));
  P = V::fma(P, T, V::set1(1.421413741f));
  P = V::fma(P, T, V::set1(-0.284496736f));
  P = V::fma(P, T, V::set1(0.254829592f));
  P = V::mul(P, T);
  const V E = vexp(V::neg(V::mul(Ax, Ax)));
  V R = V::fma(V::neg(P), E, V::set1(1.0f));
  R = V::orBits(R, V::andBits(X, V::bitsConst(0x80000000u)));
  return V::blend(V::isNanMask(X), X, R);
}

} // namespace simd

//===----------------------------------------------------------------------===//
// Array entry points (per tier) — used by the ULP test suite and by code
// that wants the vectorized math outside the tile-op vocabulary.
//===----------------------------------------------------------------------===//

/// In-place unary transform over a contiguous array.
using UnaryArrayFn = void (*)(float *X, int64_t N);

/// The vectorized math functions of one dispatch tier.
struct SimdMathTable {
  UnaryArrayFn Exp = nullptr;
  UnaryArrayFn Tanh = nullptr;
  UnaryArrayFn Sigmoid = nullptr;
  UnaryArrayFn GeluTanh = nullptr;
  UnaryArrayFn Erf = nullptr;
  const char *Name = "";
};

/// Table for \p Tier, or nullptr when that tier is not available in this
/// build / on this CPU. KernelTier::Scalar returns the width-1 instantiation
/// of the same polynomials (always available).
const SimdMathTable *simdMathTable(KernelTier Tier);

/// Table of the active dispatch tier (never null).
const SimdMathTable &activeSimdMath();

} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_SIMD_MATH_H
