//===- packing.h - Blocked/VNNI layout packing ------------------*- C++ -*-===//
///
/// \file
/// Layout conversion kernels between plain row-major tensors and the blocked
/// layouts the matmul template consumes (§III: "the input and output tensors
/// are blocked using the submatrix sizes [MB, NB, KB] so each microkernel
/// accesses a contiguous memory buffer").
///
/// Layouts:
///  * A-format (LHS):  [ceil(M/MB)][ceil(K/KB)][MB][KB]
///  * B-format f32:    [ceil(K/KB)][ceil(N/NB)][KB][NB]
///  * B-format s8:     [ceil(K/KB)][ceil(N/NB)][KB/4][NB][4]  (VNNI)
///
/// Ragged edges are zero-padded so the microkernel never needs K/N tail
/// logic inside the reduction; M tails are instead carried as explicit tile
/// row counts because padding M would write outside the C tensor. Zero
/// padding K is exact for both f32 and the u8s8 dot product.
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_PACKING_H
#define GC_KERNELS_PACKING_H

#include <cstdint>

namespace gc {
namespace kernels {

/// Describes a plain row-major source matrix, optionally transposed.
/// When \c Transposed, logical element (r, c) is read from Src[c*Ld + r].
struct PlainMatrix {
  const void *Data = nullptr;
  int64_t Rows = 0;
  int64_t Cols = 0;
  int64_t Ld = 0;
  bool Transposed = false;
};

/// Packs a plain f32 matrix into A-format with blocks MB x KB.
/// \p Dst must hold ceil(M/MB)*ceil(K/KB)*MB*KB floats.
void packAF32(const PlainMatrix &Src, float *Dst, int64_t MB, int64_t KB);

/// Packs a plain u8 matrix into A-format with blocks MB x KB.
void packAU8(const PlainMatrix &Src, uint8_t *Dst, int64_t MB, int64_t KB);

/// Packs a plain f32 matrix into B-format with blocks KB x NB.
/// \p Dst must hold ceil(K/KB)*ceil(N/NB)*KB*NB floats.
void packBF32(const PlainMatrix &Src, float *Dst, int64_t KB, int64_t NB);

/// Packs a plain s8 matrix into VNNI B-format with blocks KB x NB.
/// KB must be a multiple of 4. \p Dst must hold
/// ceil(K/KB)*ceil(N/NB)*KB*NB bytes.
void packBS8Vnni(const PlainMatrix &Src, int8_t *Dst, int64_t KB, int64_t NB);

/// Unpacks an A-format f32 tensor back to plain row-major (used by reorder
/// ops at graph exits and by tests).
void unpackAF32(const float *Src, float *Dst, int64_t M, int64_t K,
                int64_t MB, int64_t KB, int64_t DstLd);

/// Unpacks an A-format u8 tensor back to plain row-major.
void unpackAU8(const uint8_t *Src, uint8_t *Dst, int64_t M, int64_t K,
               int64_t MB, int64_t KB, int64_t DstLd);

/// Computes per-column sums of a plain s8 weight matrix:
/// Comp[n] = sum_k B[k][n]. Used for asymmetric-activation zero-point
/// compensation during constant weight preprocessing (§V).
void colSumS8(const PlainMatrix &Src, int32_t *Comp);

/// Number of elements of an A-format buffer.
inline int64_t packedASize(int64_t M, int64_t K, int64_t MB, int64_t KB) {
  return ((M + MB - 1) / MB) * ((K + KB - 1) / KB) * MB * KB;
}

/// Number of elements of a B-format buffer.
inline int64_t packedBSize(int64_t K, int64_t N, int64_t KB, int64_t NB) {
  return ((K + KB - 1) / KB) * ((N + NB - 1) / NB) * KB * NB;
}

} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_PACKING_H
