//===- tile_ops.cpp - Tile-granularity fusible-op kernels ---------------------===//
//
// The f32 tile-op vocabulary dispatches through a per-tier function table:
// the scalar bodies below (libm per element, GCC-autovectorized loops) are
// the GC_KERNELS=scalar reference oracle, and the AVX2 / AVX-512 tables in
// tile_ops_avx2.cpp / tile_ops_avx512.cpp carry the simd.h-based rewrites
// with polynomial transcendentals. The active table is chosen once per
// process from runtime CPUID capped by GC_KERNELS.
//
// Data movement and the quantization bridges are shared across tiers (they
// are memcpy- or conversion-bound and the portable loops saturate them).
//
//===----------------------------------------------------------------------===//

#include "kernels/tile_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gc {
namespace kernels {

namespace {

template <typename Fn> void forEachRow(const TileF32 &X, Fn &&Body) {
  for (int64_t R = 0; R < X.Rows; ++R)
    Body(X.Data + R * X.Ld);
}

template <typename Fn>
void forEachRowPair(const TileF32 &X, const ConstTileF32 &Y, Fn &&Body) {
  for (int64_t R = 0; R < X.Rows; ++R)
    Body(X.Data + R * X.Ld, Y.Data + R * Y.Ld);
}

//===----------------------------------------------------------------------===//
// Scalar reference bodies (the GC_KERNELS=scalar oracle)
//===----------------------------------------------------------------------===//

void reluScalar(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Row[C] > 0.0f ? Row[C] : 0.0f;
  });
}

void expScalar(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = std::exp(Row[C]);
  });
}

void tanhScalar(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = std::tanh(Row[C]);
  });
}

void sqrtScalar(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = std::sqrt(Row[C]);
  });
}

void recipScalar(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = 1.0f / Row[C];
  });
}

void affineScalar(const TileF32 &X, float A, float B) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Row[C] * A + B;
  });
}

void geluTanhScalar(const TileF32 &X) {
  constexpr float Sqrt2OverPi = 0.7978845608028654f;
  constexpr float Coeff = 0.044715f;
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C) {
      const float V = Row[C];
      const float Inner = Sqrt2OverPi * (V + Coeff * V * V * V);
      Row[C] = 0.5f * V * (1.0f + std::tanh(Inner));
    }
  });
}

void sigmoidScalar(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = 1.0f / (1.0f + std::exp(-Row[C]));
  });
}

void squareScalar(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Row[C] * Row[C];
  });
}

void addScalar(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] += YR[C];
  });
}

void subScalar(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] -= YR[C];
  });
}

void mulScalar(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] *= YR[C];
  });
}

void divScalar(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] /= YR[C];
  });
}

void maxScalar(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] = std::max(XR[C], YR[C]);
  });
}

void minScalar(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] = std::min(XR[C], YR[C]);
  });
}

void addRowVecScalar(const TileF32 &X, const float *V) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] += V[C];
  });
}

void subRowVecScalar(const TileF32 &X, const float *V) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] -= V[C];
  });
}

void mulRowVecScalar(const TileF32 &X, const float *V) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] *= V[C];
  });
}

void addColVecScalar(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] += S;
  }
}

void subColVecScalar(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] -= S;
  }
}

void mulColVecScalar(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] *= S;
  }
}

void divColVecScalar(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = 1.0f / V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] *= S;
  }
}

void reduceSumRowsScalar(const TileF32 &X, float *Out, bool Accumulate) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    const float *Row = X.Data + R * X.Ld;
    float Sum = 0.0f;
    for (int64_t C = 0; C < X.Cols; ++C)
      Sum += Row[C];
    Out[R] = Accumulate ? Out[R] + Sum : Sum;
  }
}

void reduceMaxRowsScalar(const TileF32 &X, float *Out, bool Accumulate) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    const float *Row = X.Data + R * X.Ld;
    float Max = Row[0];
    for (int64_t C = 1; C < X.Cols; ++C)
      Max = std::max(Max, Row[C]);
    Out[R] = Accumulate ? std::max(Out[R], Max) : Max;
  }
}

void fillScalar(const TileF32 &X, float Value) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Value;
  });
}

const TileOpsTable ScalarTable = [] {
  TileOpsTable T;
  T.Relu = reluScalar;
  T.Exp = expScalar;
  T.Tanh = tanhScalar;
  T.Sqrt = sqrtScalar;
  T.Recip = recipScalar;
  T.Affine = affineScalar;
  T.GeluTanh = geluTanhScalar;
  T.Sigmoid = sigmoidScalar;
  T.Square = squareScalar;
  T.Add = addScalar;
  T.Sub = subScalar;
  T.Mul = mulScalar;
  T.Div = divScalar;
  T.Max = maxScalar;
  T.Min = minScalar;
  T.AddRowVec = addRowVecScalar;
  T.SubRowVec = subRowVecScalar;
  T.MulRowVec = mulRowVecScalar;
  T.AddColVec = addColVecScalar;
  T.SubColVec = subColVecScalar;
  T.MulColVec = mulColVecScalar;
  T.DivColVec = divColVecScalar;
  T.ReduceSumRows = reduceSumRowsScalar;
  T.ReduceMaxRows = reduceMaxRowsScalar;
  T.Fill = fillScalar;
  T.Name = "scalar";
  T.Tier = KernelTier::Scalar;
  return T;
}();

} // namespace

//===----------------------------------------------------------------------===//
// Tier dispatch
//===----------------------------------------------------------------------===//

// Providers from the ISA translation units; they return nullptr when the
// build lacks the target flags or the CPU lacks the instructions.
const TileOpsTable *tileOpsTableAvx2();
const TileOpsTable *tileOpsTableAvx512();

const TileOpsTable *tileOpsTable(KernelTier Tier) {
  switch (Tier) {
  case KernelTier::Scalar: return &ScalarTable;
  case KernelTier::Avx2: return tileOpsTableAvx2();
  case KernelTier::Avx512: return tileOpsTableAvx512();
  }
  return nullptr;
}

const TileOpsTable &activeTileOps() {
  static const TileOpsTable *Active = selectActiveKernel(tileOpsTable);
  return *Active;
}

//===----------------------------------------------------------------------===//
// Public vocabulary: forward to the active tier
//===----------------------------------------------------------------------===//

void reluTile(const TileF32 &X) { activeTileOps().Relu(X); }
void expTile(const TileF32 &X) { activeTileOps().Exp(X); }
void tanhTile(const TileF32 &X) { activeTileOps().Tanh(X); }
void sqrtTile(const TileF32 &X) { activeTileOps().Sqrt(X); }
void recipTile(const TileF32 &X) { activeTileOps().Recip(X); }
void affineTile(const TileF32 &X, float A, float B) {
  activeTileOps().Affine(X, A, B);
}
void geluTanhTile(const TileF32 &X) { activeTileOps().GeluTanh(X); }
void sigmoidTile(const TileF32 &X) { activeTileOps().Sigmoid(X); }
void squareTile(const TileF32 &X) { activeTileOps().Square(X); }

void addTile(const TileF32 &X, const ConstTileF32 &Y) {
  activeTileOps().Add(X, Y);
}
void subTile(const TileF32 &X, const ConstTileF32 &Y) {
  activeTileOps().Sub(X, Y);
}
void mulTile(const TileF32 &X, const ConstTileF32 &Y) {
  activeTileOps().Mul(X, Y);
}
void divTile(const TileF32 &X, const ConstTileF32 &Y) {
  activeTileOps().Div(X, Y);
}
void maxTile(const TileF32 &X, const ConstTileF32 &Y) {
  activeTileOps().Max(X, Y);
}
void minTile(const TileF32 &X, const ConstTileF32 &Y) {
  activeTileOps().Min(X, Y);
}

void addRowVecTile(const TileF32 &X, const float *V) {
  activeTileOps().AddRowVec(X, V);
}
void subRowVecTile(const TileF32 &X, const float *V) {
  activeTileOps().SubRowVec(X, V);
}
void mulRowVecTile(const TileF32 &X, const float *V) {
  activeTileOps().MulRowVec(X, V);
}
void addColVecTile(const TileF32 &X, const float *V) {
  activeTileOps().AddColVec(X, V);
}
void subColVecTile(const TileF32 &X, const float *V) {
  activeTileOps().SubColVec(X, V);
}
void mulColVecTile(const TileF32 &X, const float *V) {
  activeTileOps().MulColVec(X, V);
}
void divColVecTile(const TileF32 &X, const float *V) {
  activeTileOps().DivColVec(X, V);
}

void reduceSumRowsTile(const TileF32 &X, float *Out, bool Accumulate) {
  activeTileOps().ReduceSumRows(X, Out, Accumulate);
}
void reduceMaxRowsTile(const TileF32 &X, float *Out, bool Accumulate) {
  activeTileOps().ReduceMaxRows(X, Out, Accumulate);
}

void fillTile(const TileF32 &X, float Value) { activeTileOps().Fill(X, Value); }

//===----------------------------------------------------------------------===//
// Data movement (shared across tiers)
//===----------------------------------------------------------------------===//

void copyTile(const TileF32 &Dst, const ConstTileF32 &Src) {
  for (int64_t R = 0; R < Dst.Rows; ++R) {
    float *DRow = Dst.Data + R * Dst.Ld;
    const float *SRow = Src.Data + R * Src.Ld;
    for (int64_t C = 0; C < Dst.Cols; ++C)
      DRow[C] = SRow[C];
  }
}

void copyTileRaw(void *Dst, int64_t DstLd, const void *Src, int64_t SrcLd,
                 int64_t Rows, int64_t Cols, int64_t ElemSize) {
  for (int64_t R = 0; R < Rows; ++R)
    std::memcpy(static_cast<char *>(Dst) + R * DstLd * ElemSize,
                static_cast<const char *>(Src) + R * SrcLd * ElemSize,
                static_cast<size_t>(Cols * ElemSize));
}

void permute0213(void *Dst, const void *Src, int64_t A, int64_t B, int64_t C,
                 int64_t D, int64_t ElemSize) {
  const int64_t RowBytes = D * ElemSize;
  for (int64_t AI = 0; AI < A; ++AI)
    for (int64_t BI = 0; BI < B; ++BI)
      for (int64_t CI = 0; CI < C; ++CI)
        std::memcpy(static_cast<char *>(Dst) +
                        ((AI * C + CI) * B + BI) * RowBytes,
                    static_cast<const char *>(Src) +
                        ((AI * B + BI) * C + CI) * RowBytes,
                    static_cast<size_t>(RowBytes));
}

void transposeTile(const TileF32 &Dst, const ConstTileF32 &Src) {
  for (int64_t R = 0; R < Dst.Rows; ++R) {
    float *DRow = Dst.Data + R * Dst.Ld;
    for (int64_t C = 0; C < Dst.Cols; ++C)
      DRow[C] = Src.Data[C * Src.Ld + R];
  }
}

//===----------------------------------------------------------------------===//
// Quantization bridges (shared across tiers)
//===----------------------------------------------------------------------===//

void dequantAccTile(float *Dst, int64_t DstLd, const int32_t *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols,
                    const int32_t *Comp, int32_t AZp, const float *ScaleVec) {
  if (AZp == 0 || !Comp) {
    // Symmetric activations: no zero-point compensation term.
    for (int64_t R = 0; R < Rows; ++R) {
      float *DRow = Dst + R * DstLd;
      const int32_t *SRow = Src + R * SrcLd;
      for (int64_t C = 0; C < Cols; ++C)
        DRow[C] = static_cast<float>(SRow[C]) * ScaleVec[C];
    }
    return;
  }
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const int32_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C) {
      const int32_t Adjusted = SRow[C] - AZp * Comp[C];
      DRow[C] = static_cast<float>(Adjusted) * ScaleVec[C];
    }
  }
}

namespace {
inline int32_t roundToNearestInt(float V) {
  return static_cast<int32_t>(std::lrintf(V));
}
} // namespace

void quantizeU8Tile(uint8_t *Dst, int64_t DstLd, const float *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols, float InvScale,
                    int32_t Zp) {
  for (int64_t R = 0; R < Rows; ++R) {
    uint8_t *DRow = Dst + R * DstLd;
    const float *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C) {
      const int32_t Q = roundToNearestInt(SRow[C] * InvScale) + Zp;
      DRow[C] = static_cast<uint8_t>(std::clamp(Q, 0, 255));
    }
  }
}

void quantizeS8Tile(int8_t *Dst, int64_t DstLd, const float *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols,
                    float InvScale) {
  for (int64_t R = 0; R < Rows; ++R) {
    int8_t *DRow = Dst + R * DstLd;
    const float *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C) {
      const int32_t Q = roundToNearestInt(SRow[C] * InvScale);
      DRow[C] = static_cast<int8_t>(std::clamp(Q, -128, 127));
    }
  }
}

void dequantU8Tile(float *Dst, int64_t DstLd, const uint8_t *Src,
                   int64_t SrcLd, int64_t Rows, int64_t Cols, float Scale,
                   int32_t Zp) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const uint8_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C)
      DRow[C] = static_cast<float>(static_cast<int32_t>(SRow[C]) - Zp) * Scale;
  }
}

void dequantS8PerChannelTile(float *Dst, int64_t DstLd, const int8_t *Src,
                             int64_t SrcLd, int64_t Rows, int64_t Cols,
                             const float *ScaleVec) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const int8_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C)
      DRow[C] = static_cast<float>(SRow[C]) * ScaleVec[C];
  }
}

void castS32F32Tile(float *Dst, int64_t DstLd, const int32_t *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols, float Scale) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const int32_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C)
      DRow[C] = static_cast<float>(SRow[C]) * Scale;
  }
}

} // namespace kernels
} // namespace gc
