//===- tile_ops.cpp - Tile-granularity fusible-op kernels ---------------------===//
//
// Straight-line loops over tile rows; GCC auto-vectorizes the inner column
// loops at -O3 -march=native. Transcendental kernels call libm per element,
// which is the same cost for every executor in this repo (compiler and both
// baselines), so relative comparisons stay fair.
//
//===----------------------------------------------------------------------===//

#include "kernels/tile_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gc {
namespace kernels {

namespace {

template <typename Fn> void forEachRow(const TileF32 &X, Fn &&Body) {
  for (int64_t R = 0; R < X.Rows; ++R)
    Body(X.Data + R * X.Ld);
}

template <typename Fn>
void forEachRowPair(const TileF32 &X, const ConstTileF32 &Y, Fn &&Body) {
  for (int64_t R = 0; R < X.Rows; ++R)
    Body(X.Data + R * X.Ld, Y.Data + R * Y.Ld);
}

} // namespace

//===----------------------------------------------------------------------===//
// Elementwise (unary)
//===----------------------------------------------------------------------===//

void reluTile(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Row[C] > 0.0f ? Row[C] : 0.0f;
  });
}

void expTile(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = std::exp(Row[C]);
  });
}

void tanhTile(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = std::tanh(Row[C]);
  });
}

void sqrtTile(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = std::sqrt(Row[C]);
  });
}

void recipTile(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = 1.0f / Row[C];
  });
}

void affineTile(const TileF32 &X, float A, float B) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Row[C] * A + B;
  });
}

void geluTanhTile(const TileF32 &X) {
  constexpr float Sqrt2OverPi = 0.7978845608028654f;
  constexpr float Coeff = 0.044715f;
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C) {
      const float V = Row[C];
      const float Inner = Sqrt2OverPi * (V + Coeff * V * V * V);
      Row[C] = 0.5f * V * (1.0f + std::tanh(Inner));
    }
  });
}

void sigmoidTile(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = 1.0f / (1.0f + std::exp(-Row[C]));
  });
}

void squareTile(const TileF32 &X) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Row[C] * Row[C];
  });
}

//===----------------------------------------------------------------------===//
// Elementwise (binary)
//===----------------------------------------------------------------------===//

void addTile(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] += YR[C];
  });
}

void subTile(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] -= YR[C];
  });
}

void mulTile(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] *= YR[C];
  });
}

void divTile(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] /= YR[C];
  });
}

void maxTile(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] = std::max(XR[C], YR[C]);
  });
}

void minTile(const TileF32 &X, const ConstTileF32 &Y) {
  forEachRowPair(X, Y, [&](float *XR, const float *YR) {
    for (int64_t C = 0; C < X.Cols; ++C)
      XR[C] = std::min(XR[C], YR[C]);
  });
}

//===----------------------------------------------------------------------===//
// Broadcast binary
//===----------------------------------------------------------------------===//

void addRowVecTile(const TileF32 &X, const float *V) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] += V[C];
  });
}

void subRowVecTile(const TileF32 &X, const float *V) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] -= V[C];
  });
}

void mulRowVecTile(const TileF32 &X, const float *V) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] *= V[C];
  });
}

void addColVecTile(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] += S;
  }
}

void subColVecTile(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] -= S;
  }
}

void mulColVecTile(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] *= S;
  }
}

void divColVecTile(const TileF32 &X, const float *V) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    float *Row = X.Data + R * X.Ld;
    const float S = 1.0f / V[R];
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] *= S;
  }
}

//===----------------------------------------------------------------------===//
// Reductions
//===----------------------------------------------------------------------===//

void reduceSumRowsTile(const TileF32 &X, float *Out, bool Accumulate) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    const float *Row = X.Data + R * X.Ld;
    float Sum = 0.0f;
    for (int64_t C = 0; C < X.Cols; ++C)
      Sum += Row[C];
    Out[R] = Accumulate ? Out[R] + Sum : Sum;
  }
}

void reduceMaxRowsTile(const TileF32 &X, float *Out, bool Accumulate) {
  for (int64_t R = 0; R < X.Rows; ++R) {
    const float *Row = X.Data + R * X.Ld;
    float Max = Row[0];
    for (int64_t C = 1; C < X.Cols; ++C)
      Max = std::max(Max, Row[C]);
    Out[R] = Accumulate ? std::max(Out[R], Max) : Max;
  }
}

//===----------------------------------------------------------------------===//
// Data movement
//===----------------------------------------------------------------------===//

void copyTile(const TileF32 &Dst, const ConstTileF32 &Src) {
  for (int64_t R = 0; R < Dst.Rows; ++R) {
    float *DRow = Dst.Data + R * Dst.Ld;
    const float *SRow = Src.Data + R * Src.Ld;
    for (int64_t C = 0; C < Dst.Cols; ++C)
      DRow[C] = SRow[C];
  }
}

void copyTileRaw(void *Dst, int64_t DstLd, const void *Src, int64_t SrcLd,
                 int64_t Rows, int64_t Cols, int64_t ElemSize) {
  for (int64_t R = 0; R < Rows; ++R)
    std::memcpy(static_cast<char *>(Dst) + R * DstLd * ElemSize,
                static_cast<const char *>(Src) + R * SrcLd * ElemSize,
                static_cast<size_t>(Cols * ElemSize));
}

void permute0213(void *Dst, const void *Src, int64_t A, int64_t B, int64_t C,
                 int64_t D, int64_t ElemSize) {
  const int64_t RowBytes = D * ElemSize;
  for (int64_t AI = 0; AI < A; ++AI)
    for (int64_t BI = 0; BI < B; ++BI)
      for (int64_t CI = 0; CI < C; ++CI)
        std::memcpy(static_cast<char *>(Dst) +
                        ((AI * C + CI) * B + BI) * RowBytes,
                    static_cast<const char *>(Src) +
                        ((AI * B + BI) * C + CI) * RowBytes,
                    static_cast<size_t>(RowBytes));
}

void transposeTile(const TileF32 &Dst, const ConstTileF32 &Src) {
  for (int64_t R = 0; R < Dst.Rows; ++R) {
    float *DRow = Dst.Data + R * Dst.Ld;
    for (int64_t C = 0; C < Dst.Cols; ++C)
      DRow[C] = Src.Data[C * Src.Ld + R];
  }
}

void fillTile(const TileF32 &X, float Value) {
  forEachRow(X, [&](float *Row) {
    for (int64_t C = 0; C < X.Cols; ++C)
      Row[C] = Value;
  });
}

//===----------------------------------------------------------------------===//
// Quantization bridges
//===----------------------------------------------------------------------===//

void dequantAccTile(float *Dst, int64_t DstLd, const int32_t *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols,
                    const int32_t *Comp, int32_t AZp, const float *ScaleVec) {
  if (AZp == 0 || !Comp) {
    // Symmetric activations: no zero-point compensation term.
    for (int64_t R = 0; R < Rows; ++R) {
      float *DRow = Dst + R * DstLd;
      const int32_t *SRow = Src + R * SrcLd;
      for (int64_t C = 0; C < Cols; ++C)
        DRow[C] = static_cast<float>(SRow[C]) * ScaleVec[C];
    }
    return;
  }
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const int32_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C) {
      const int32_t Adjusted = SRow[C] - AZp * Comp[C];
      DRow[C] = static_cast<float>(Adjusted) * ScaleVec[C];
    }
  }
}

namespace {
inline int32_t roundToNearestInt(float V) {
  return static_cast<int32_t>(std::lrintf(V));
}
} // namespace

void quantizeU8Tile(uint8_t *Dst, int64_t DstLd, const float *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols, float InvScale,
                    int32_t Zp) {
  for (int64_t R = 0; R < Rows; ++R) {
    uint8_t *DRow = Dst + R * DstLd;
    const float *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C) {
      const int32_t Q = roundToNearestInt(SRow[C] * InvScale) + Zp;
      DRow[C] = static_cast<uint8_t>(std::clamp(Q, 0, 255));
    }
  }
}

void quantizeS8Tile(int8_t *Dst, int64_t DstLd, const float *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols,
                    float InvScale) {
  for (int64_t R = 0; R < Rows; ++R) {
    int8_t *DRow = Dst + R * DstLd;
    const float *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C) {
      const int32_t Q = roundToNearestInt(SRow[C] * InvScale);
      DRow[C] = static_cast<int8_t>(std::clamp(Q, -128, 127));
    }
  }
}

void dequantU8Tile(float *Dst, int64_t DstLd, const uint8_t *Src,
                   int64_t SrcLd, int64_t Rows, int64_t Cols, float Scale,
                   int32_t Zp) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const uint8_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C)
      DRow[C] = static_cast<float>(static_cast<int32_t>(SRow[C]) - Zp) * Scale;
  }
}

void dequantS8PerChannelTile(float *Dst, int64_t DstLd, const int8_t *Src,
                             int64_t SrcLd, int64_t Rows, int64_t Cols,
                             const float *ScaleVec) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const int8_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C)
      DRow[C] = static_cast<float>(SRow[C]) * ScaleVec[C];
  }
}

void castS32F32Tile(float *Dst, int64_t DstLd, const int32_t *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols, float Scale) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *DRow = Dst + R * DstLd;
    const int32_t *SRow = Src + R * SrcLd;
    for (int64_t C = 0; C < Cols; ++C)
      DRow[C] = static_cast<float>(SRow[C]) * Scale;
  }
}

} // namespace kernels
} // namespace gc
