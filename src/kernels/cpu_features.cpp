//===- cpu_features.cpp - ISA capability reporting --------------------------===//

#include "kernels/cpu_features.h"

namespace gc {
namespace kernels {

const CpuFeatures &cpuFeatures() {
  static const CpuFeatures Features = [] {
    CpuFeatures F;
#ifdef __AVX2__
    F.HasAvx2 = true;
#endif
#ifdef __AVX512F__
    F.HasAvx512f = true;
#endif
#ifdef __AVX512VNNI__
    F.HasAvx512Vnni = true;
#endif
    return F;
  }();
  return Features;
}

std::string isaName() {
  const CpuFeatures &F = cpuFeatures();
  if (F.HasAvx512Vnni)
    return "avx512f+vnni";
  if (F.HasAvx512f)
    return "avx512f";
  if (F.HasAvx2)
    return "avx2";
  return "generic";
}

} // namespace kernels
} // namespace gc
