//===- cpu_features.cpp - Runtime ISA detection & kernel tiers ---------------===//

#include "kernels/cpu_features.h"

#include "support/env.h"

#include <algorithm>
#include <cstdio>

namespace gc {
namespace kernels {

const CpuFeatures &cpuFeatures() {
  static const CpuFeatures Features = [] {
    CpuFeatures F;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    __builtin_cpu_init();
    F.HasAvx2 = __builtin_cpu_supports("avx2");
    F.HasFma = __builtin_cpu_supports("fma");
    F.HasAvx512f = __builtin_cpu_supports("avx512f");
    F.HasAvx512bw = __builtin_cpu_supports("avx512bw");
    F.HasAvx512vl = __builtin_cpu_supports("avx512vl");
    F.HasAvx512Vnni = __builtin_cpu_supports("avx512vnni");
#else
    // Non-x86 or unknown compiler: trust the compile-time target macros,
    // which are conservative (the binary could not run otherwise).
#ifdef __AVX2__
    F.HasAvx2 = true;
#endif
#ifdef __FMA__
    F.HasFma = true;
#endif
#ifdef __AVX512F__
    F.HasAvx512f = true;
#endif
#ifdef __AVX512BW__
    F.HasAvx512bw = true;
#endif
#ifdef __AVX512VL__
    F.HasAvx512vl = true;
#endif
#ifdef __AVX512VNNI__
    F.HasAvx512Vnni = true;
#endif
#endif
    return F;
  }();
  return Features;
}

const CpuFeatures &compiledFeatures() {
  static const CpuFeatures Features = [] {
    CpuFeatures F;
#ifdef GC_BUILD_AVX2
    F.HasAvx2 = true;
    F.HasFma = true;
#endif
#ifdef GC_BUILD_AVX512
    F.HasAvx512f = true;
    F.HasAvx512bw = true;
    F.HasAvx512vl = true;
#endif
#ifdef GC_BUILD_AVX512VNNI
    F.HasAvx512Vnni = true;
#endif
    return F;
  }();
  return Features;
}

const char *kernelTierName(KernelTier Tier) {
  switch (Tier) {
  case KernelTier::Scalar: return "scalar";
  case KernelTier::Avx2: return "avx2";
  case KernelTier::Avx512: return "avx512";
  }
  return "scalar";
}

KernelTier maxKernelTier() {
  static const KernelTier Tier = [] {
    const CpuFeatures &Cpu = cpuFeatures();
    const CpuFeatures &Built = compiledFeatures();
    // The AVX-512 TUs are built with -mavx512f -mavx512bw -mavx512vl,
    // so the CPU must provide all three before that tier is selectable.
    if (Cpu.HasAvx512f && Cpu.HasAvx512bw && Cpu.HasAvx512vl &&
        Built.HasAvx512f)
      return KernelTier::Avx512;
    if (Cpu.HasAvx2 && Cpu.HasFma && Built.HasAvx2)
      return KernelTier::Avx2;
    return KernelTier::Scalar;
  }();
  return Tier;
}

KernelTier activeKernelTier() {
  static const KernelTier Tier = [] {
    const std::string Mode = getEnvString("GC_KERNELS", "simd");
    if (Mode == "scalar")
      return KernelTier::Scalar;
    if (Mode == "avx2")
      return std::min(KernelTier::Avx2, maxKernelTier());
    if (Mode != "simd" && Mode != "avx512")
      std::fprintf(stderr,
                   "gc: unrecognized GC_KERNELS=\"%s\" "
                   "(expected scalar|simd|avx2|avx512); using \"simd\"\n",
                   Mode.c_str());
    return maxKernelTier();
  }();
  return Tier;
}

bool simdKernelsEnabled() {
  return activeKernelTier() != KernelTier::Scalar;
}

std::string isaName() {
  const CpuFeatures &F = cpuFeatures();
  if (F.HasAvx512f && F.HasAvx512Vnni)
    return "avx512f+vnni";
  if (F.HasAvx512f)
    return "avx512f";
  if (F.HasAvx2)
    return "avx2";
  return "generic";
}

} // namespace kernels
} // namespace gc
