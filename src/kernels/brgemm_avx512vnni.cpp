//===- brgemm_avx512vnni.cpp - AVX-512 VNNI u8s8s32 brgemm tier ---------------===//
//
// The dpbusd-based u8s8s32 panel kernel, compiled with -mavx512vnni on top
// of the AVX-512 flags. Hosts with AVX-512 but no VNNI use the exact AVX2
// emulation instead: the classic 512-bit maddubs emulation saturates at s16
// for full-range u8 activations, so it is deliberately not provided.
//
//===----------------------------------------------------------------------===//

#include "kernels/brgemm.h"
#include "kernels/simd.h"

#if defined(__AVX512F__) && defined(__AVX512VNNI__)
#include <immintrin.h>

#include <cstring>

namespace gc {
namespace kernels {

namespace {

/// Computes an MRows x 16 s32 C panel from VNNI-packed B.
template <int MRows>
void brgemmU8S8PanelVnni(const BrgemmU8S8Args &Args, int64_t MBase,
                         int64_t NBase, __mmask16 Mask) {
  __m512i Acc[MRows];
  if (Args.InitC) {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_setzero_si512();
  } else {
    for (int R = 0; R < MRows; ++R)
      Acc[R] = _mm512_maskz_loadu_epi32(
          Mask, Args.C + (MBase + R) * Args.Ldc + NBase);
  }
  const int64_t KGroups = Args.K / 4;
  for (int64_t BI = 0; BI < Args.Batch; ++BI) {
    const uint8_t *ATile = Args.A + BI * Args.AStrideBatch + MBase * Args.Lda;
    const int8_t *BTile = Args.B + BI * Args.BStrideBatch + NBase * 4;
    for (int64_t KG = 0; KG < KGroups; ++KG) {
      // 16 columns x 4 interleaved k values = 64 bytes per k-group.
      const __m512i BVec = _mm512_maskz_loadu_epi32(
          Mask, reinterpret_cast<const int32_t *>(BTile +
                                                  KG * Args.NPadded * 4));
      for (int R = 0; R < MRows; ++R) {
        int32_t APack;
        std::memcpy(&APack, ATile + R * Args.Lda + KG * 4, sizeof(APack));
        const __m512i AVec = _mm512_set1_epi32(APack);
        Acc[R] = _mm512_dpbusd_epi32(Acc[R], AVec, BVec);
      }
    }
  }
  for (int R = 0; R < MRows; ++R)
    _mm512_mask_storeu_epi32(Args.C + (MBase + R) * Args.Ldc + NBase, Mask,
                             Acc[R]);
}

void brgemmU8S8Vnni(const BrgemmU8S8Args &Args) {
  for (int64_t NBase = 0; NBase < Args.N; NBase += 16) {
    const __mmask16 Mask = simd::VecF32Avx512::tailMask(Args.N - NBase);
    int64_t MBase = 0;
    for (; MBase + 8 <= Args.M; MBase += 8)
      brgemmU8S8PanelVnni<8>(Args, MBase, NBase, Mask);
    switch (Args.M - MBase) {
    case 7: brgemmU8S8PanelVnni<7>(Args, MBase, NBase, Mask); break;
    case 6: brgemmU8S8PanelVnni<6>(Args, MBase, NBase, Mask); break;
    case 5: brgemmU8S8PanelVnni<5>(Args, MBase, NBase, Mask); break;
    case 4: brgemmU8S8PanelVnni<4>(Args, MBase, NBase, Mask); break;
    case 3: brgemmU8S8PanelVnni<3>(Args, MBase, NBase, Mask); break;
    case 2: brgemmU8S8PanelVnni<2>(Args, MBase, NBase, Mask); break;
    case 1: brgemmU8S8PanelVnni<1>(Args, MBase, NBase, Mask); break;
    default: break;
    }
  }
}

} // namespace

BrgemmU8S8Fn brgemmU8S8Avx512VnniFn() {
  const CpuFeatures &F = cpuFeatures();
  return (F.HasAvx512f && F.HasAvx512bw && F.HasAvx512vl &&
          F.HasAvx512Vnni)
             ? brgemmU8S8Vnni
             : nullptr;
}

} // namespace kernels
} // namespace gc

#else // !(__AVX512F__ && __AVX512VNNI__)

namespace gc {
namespace kernels {
BrgemmU8S8Fn brgemmU8S8Avx512VnniFn() { return nullptr; }
} // namespace kernels
} // namespace gc

#endif
