//===- tile_ops.h - Tile-granularity fusible-op kernels ---------*- C++ -*-===//
///
/// \file
/// The kernel vocabulary that Fusible OPs lower to at template anchor points
/// (§IV). Each kernel transforms one tensor slice ("tile") described by a
/// base pointer, a row/column extent and a leading dimension, so the Tensor
/// IR evaluator moves whole tiles per statement — mirroring how the paper's
/// generated code keeps the per-element work inside compiled loops.
///
/// Naming: suffix RowVec means a length-Cols vector broadcast across rows
/// (bias/scale per output channel); suffix ColVec means a length-Rows vector
/// broadcast across columns (softmax denominators).
///
/// NaN contract: for max/min-based kernels (maxTile, minTile,
/// reduceMaxRowsTile, reluTile) the result on NaN *inputs* is
/// tier-dependent — the scalar oracle keeps the first operand where
/// hardware min/max instructions keep the second — so NaN tiles are out of
/// the scalar-vs-simd parity contract. All other kernels propagate NaN
/// identically at every tier.
///
//===----------------------------------------------------------------------===//

#ifndef GC_KERNELS_TILE_OPS_H
#define GC_KERNELS_TILE_OPS_H

#include "kernels/cpu_features.h"

#include <cstdint>

namespace gc {
namespace kernels {

/// View of a mutable f32 tile.
struct TileF32 {
  float *Data = nullptr;
  int64_t Rows = 0;
  int64_t Cols = 0;
  int64_t Ld = 0;
};

/// View of a const f32 tile.
struct ConstTileF32 {
  const float *Data = nullptr;
  int64_t Ld = 0;
};

//===----------------------------------------------------------------------===//
// Elementwise (unary)
//===----------------------------------------------------------------------===//

/// x = max(x, 0)
void reluTile(const TileF32 &X);
/// x = exp(x)
void expTile(const TileF32 &X);
/// x = tanh(x)
void tanhTile(const TileF32 &X);
/// x = sqrt(x)
void sqrtTile(const TileF32 &X);
/// x = 1 / x
void recipTile(const TileF32 &X);
/// x = x * A + B (affine; covers scalar mul and add)
void affineTile(const TileF32 &X, float A, float B);
/// x = 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3))) (fused GELU,
/// used when the decomposed chain is recognized back into one kernel)
void geluTanhTile(const TileF32 &X);
/// x = sigmoid(x)
void sigmoidTile(const TileF32 &X);
/// x = x^2
void squareTile(const TileF32 &X);

//===----------------------------------------------------------------------===//
// Elementwise (binary, second operand tile)
//===----------------------------------------------------------------------===//

void addTile(const TileF32 &X, const ConstTileF32 &Y);
void subTile(const TileF32 &X, const ConstTileF32 &Y);
void mulTile(const TileF32 &X, const ConstTileF32 &Y);
void divTile(const TileF32 &X, const ConstTileF32 &Y);
void maxTile(const TileF32 &X, const ConstTileF32 &Y);
void minTile(const TileF32 &X, const ConstTileF32 &Y);

//===----------------------------------------------------------------------===//
// Broadcast binary
//===----------------------------------------------------------------------===//

/// x[r][c] op= v[c]
void addRowVecTile(const TileF32 &X, const float *V);
void subRowVecTile(const TileF32 &X, const float *V);
void mulRowVecTile(const TileF32 &X, const float *V);
/// x[r][c] op= v[r]
void addColVecTile(const TileF32 &X, const float *V);
void subColVecTile(const TileF32 &X, const float *V);
void mulColVecTile(const TileF32 &X, const float *V);
void divColVecTile(const TileF32 &X, const float *V);

//===----------------------------------------------------------------------===//
// Reductions (over the column axis of the tile)
//===----------------------------------------------------------------------===//

/// Out[r] (+)= sum_c x[r][c]; when !Accumulate Out is overwritten.
void reduceSumRowsTile(const TileF32 &X, float *Out, bool Accumulate);
/// Out[r] = max(Out[r], max_c x[r][c]); when !Accumulate Out is overwritten.
void reduceMaxRowsTile(const TileF32 &X, float *Out, bool Accumulate);

//===----------------------------------------------------------------------===//
// Data movement
//===----------------------------------------------------------------------===//

/// Dst tile = Src tile (strided 2-D copy).
void copyTile(const TileF32 &Dst, const ConstTileF32 &Src);
/// Type-agnostic strided 2-D copy (leading dimensions in elements of
/// \p ElemSize bytes); used when moving s32/u8 tiles.
void copyTileRaw(void *Dst, int64_t DstLd, const void *Src, int64_t SrcLd,
                 int64_t Rows, int64_t Cols, int64_t ElemSize);
/// Dst[r][c] = Src[c][r] for a Rows x Cols destination tile.
void transposeTile(const TileF32 &Dst, const ConstTileF32 &Src);
/// 4-D permutation [A,B,C,D] -> [A,C,B,D] (the BSHD <-> BHSD layout move
/// of transformer graphs), type-agnostic.
void permute0213(void *Dst, const void *Src, int64_t A, int64_t B, int64_t C,
                 int64_t D, int64_t ElemSize);
/// Fills the tile with a constant.
void fillTile(const TileF32 &X, float Value);

//===----------------------------------------------------------------------===//
// Quantization bridges (int8 pipeline, §V low-precision conversion)
//===----------------------------------------------------------------------===//

/// Dequantizes an s32 accumulator tile into f32 with per-output-channel
/// scales and asymmetric-activation compensation:
///   Dst[r][c] = (Src[r][c] - AZp * Comp[c]) * ScaleVec[c]
/// Comp[c] is the column sum of the s8 weight (precomputed constant);
/// ScaleVec[c] = a_scale * b_scale[c] folded at compile time.
void dequantAccTile(float *Dst, int64_t DstLd, const int32_t *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols,
                    const int32_t *Comp, int32_t AZp, const float *ScaleVec);

/// Quantizes f32 to u8: Dst = sat_u8(round(Src * InvScale) + Zp).
void quantizeU8Tile(uint8_t *Dst, int64_t DstLd, const float *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols, float InvScale,
                    int32_t Zp);

/// Quantizes f32 to s8 symmetric per-tensor: Dst = sat_s8(round(Src*InvScale)).
void quantizeS8Tile(int8_t *Dst, int64_t DstLd, const float *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols, float InvScale);

/// Dequantizes u8 to f32: Dst = (Src - Zp) * Scale.
void dequantU8Tile(float *Dst, int64_t DstLd, const uint8_t *Src,
                   int64_t SrcLd, int64_t Rows, int64_t Cols, float Scale,
                   int32_t Zp);

/// Dequantizes s8 to f32 with per-column scales (per-channel weights):
/// Dst[r][c] = Src[r][c] * ScaleVec[c].
void dequantS8PerChannelTile(float *Dst, int64_t DstLd, const int8_t *Src,
                             int64_t SrcLd, int64_t Rows, int64_t Cols,
                             const float *ScaleVec);

/// Converts an s32 tile to f32 with a single scale: Dst = Src * Scale.
void castS32F32Tile(float *Dst, int64_t DstLd, const int32_t *Src,
                    int64_t SrcLd, int64_t Rows, int64_t Cols, float Scale);

//===----------------------------------------------------------------------===//
// Dispatch tiers
//===----------------------------------------------------------------------===//

/// The f32 tile-op vocabulary of one kernel dispatch tier. The free
/// functions above forward to the active tier's table (selected once per
/// process from CPUID + GC_KERNELS); tests reach specific tiers directly
/// through tileOpsTable() for scalar-vs-simd differential checks.
struct TileOpsTable {
  void (*Relu)(const TileF32 &) = nullptr;
  void (*Exp)(const TileF32 &) = nullptr;
  void (*Tanh)(const TileF32 &) = nullptr;
  void (*Sqrt)(const TileF32 &) = nullptr;
  void (*Recip)(const TileF32 &) = nullptr;
  void (*Affine)(const TileF32 &, float, float) = nullptr;
  void (*GeluTanh)(const TileF32 &) = nullptr;
  void (*Sigmoid)(const TileF32 &) = nullptr;
  void (*Square)(const TileF32 &) = nullptr;
  void (*Add)(const TileF32 &, const ConstTileF32 &) = nullptr;
  void (*Sub)(const TileF32 &, const ConstTileF32 &) = nullptr;
  void (*Mul)(const TileF32 &, const ConstTileF32 &) = nullptr;
  void (*Div)(const TileF32 &, const ConstTileF32 &) = nullptr;
  void (*Max)(const TileF32 &, const ConstTileF32 &) = nullptr;
  void (*Min)(const TileF32 &, const ConstTileF32 &) = nullptr;
  void (*AddRowVec)(const TileF32 &, const float *) = nullptr;
  void (*SubRowVec)(const TileF32 &, const float *) = nullptr;
  void (*MulRowVec)(const TileF32 &, const float *) = nullptr;
  void (*AddColVec)(const TileF32 &, const float *) = nullptr;
  void (*SubColVec)(const TileF32 &, const float *) = nullptr;
  void (*MulColVec)(const TileF32 &, const float *) = nullptr;
  void (*DivColVec)(const TileF32 &, const float *) = nullptr;
  void (*ReduceSumRows)(const TileF32 &, float *, bool) = nullptr;
  void (*ReduceMaxRows)(const TileF32 &, float *, bool) = nullptr;
  void (*Fill)(const TileF32 &, float) = nullptr;
  const char *Name = "";
  KernelTier Tier = KernelTier::Scalar;
};

/// Table for \p Tier, or nullptr when the tier is not available in this
/// build / on this CPU. KernelTier::Scalar (the libm reference oracle) is
/// always available.
const TileOpsTable *tileOpsTable(KernelTier Tier);

/// The table the free functions dispatch to (never null).
const TileOpsTable &activeTileOps();

} // namespace kernels
} // namespace gc

#endif // GC_KERNELS_TILE_OPS_H
