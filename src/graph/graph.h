//===- graph.h - Graph IR ----------------------------------------*- C++ -*-===//
///
/// \file
/// The Graph IR of §II: a graph owns a set of OPs and logical tensors. Each
/// OP has a kind, category, attributes, and input/output logical tensors.
/// The graph tracks producer/consumer maps, supports use replacement and
/// removal (for the rewriting passes of §V), topological ordering, cloning,
/// verification and printing. Constant tensors may carry compile-time data
/// used by constant folding and constant weight preprocessing.
///
//===----------------------------------------------------------------------===//

#ifndef GC_GRAPH_GRAPH_H
#define GC_GRAPH_GRAPH_H

#include "graph/logical_tensor.h"
#include "graph/op_kind.h"
#include "runtime/tensor_data.h"
#include "support/status.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace gc {
namespace graph {

class Graph;

/// Attribute value of an op (scale factors, axes, transpose flags, ...).
using AttrValue =
    std::variant<int64_t, double, std::string, std::vector<int64_t>,
                 std::vector<double>>;

/// Ordered attribute map (ordered so printing and CSE hashing are
/// deterministic).
using AttrMap = std::map<std::string, AttrValue>;

/// One operation in a computation graph.
class Op {
public:
  Op(int64_t Id, OpKind Kind) : Id(Id), Kind(Kind) {}

  int64_t id() const { return Id; }
  OpKind kind() const { return Kind; }
  OpCategory category() const { return opCategory(Kind); }

  const std::vector<int64_t> &inputs() const { return Inputs; }
  const std::vector<int64_t> &outputs() const { return Outputs; }
  int64_t input(size_t I) const { return Inputs[I]; }
  int64_t output(size_t I) const { return Outputs[I]; }
  size_t numInputs() const { return Inputs.size(); }
  size_t numOutputs() const { return Outputs.size(); }

  const AttrMap &attrs() const { return Attrs; }

  bool hasAttr(const std::string &Name) const { return Attrs.count(Name); }

  void setAttr(const std::string &Name, AttrValue Value) {
    Attrs[Name] = std::move(Value);
  }

  int64_t getAttrInt(const std::string &Name, int64_t Default = 0) const;
  double getAttrFloat(const std::string &Name, double Default = 0.0) const;
  std::string getAttrString(const std::string &Name,
                            const std::string &Default = "") const;
  std::vector<int64_t> getAttrIntVec(const std::string &Name) const;
  std::vector<double> getAttrFloatVec(const std::string &Name) const;

  /// FusedOp only: the encapsulated subgraph (fine-grain fusion region).
  /// The subgraph's inputs/outputs line up index-wise with this op's
  /// inputs/outputs.
  Graph *subgraph() const { return Sub.get(); }
  void setSubgraph(std::unique_ptr<Graph> G);

  std::string toString(const Graph &Parent) const;

private:
  friend class Graph;

  int64_t Id;
  OpKind Kind;
  std::vector<int64_t> Inputs;
  std::vector<int64_t> Outputs;
  AttrMap Attrs;
  std::shared_ptr<Graph> Sub; // shared so Op stays copyable for clone()
};

/// A DNN computation graph: ops + logical tensors + boundary lists.
class Graph {
public:
  Graph() = default;
  Graph(const Graph &) = delete;
  Graph &operator=(const Graph &) = delete;
  Graph(Graph &&) = default;
  Graph &operator=(Graph &&) = default;

  //===--------------------------------------------------------------------===//
  // Construction
  //===--------------------------------------------------------------------===//

  /// Creates a logical tensor and returns its id.
  int64_t addTensor(DataType Ty, std::vector<int64_t> Shape,
                    const std::string &Name = "",
                    TensorProperty Property = TensorProperty::Variable);

  /// Creates an op with given inputs producing one fresh output tensor of
  /// (\p OutTy, \p OutShape); returns the new output tensor id.
  int64_t addOp(OpKind Kind, const std::vector<int64_t> &Inputs,
                DataType OutTy, std::vector<int64_t> OutShape,
                AttrMap Attrs = {}, const std::string &Name = "");

  /// Creates an op writing into existing output tensors. Returns op id.
  int64_t addOpExplicit(OpKind Kind, const std::vector<int64_t> &Inputs,
                        const std::vector<int64_t> &Outputs,
                        AttrMap Attrs = {});

  /// Declares \p TensorId as a graph input / output.
  void markInput(int64_t TensorId) {
    InputIds.push_back(TensorId);
    Finalized = false;
  }
  void markOutput(int64_t TensorId) {
    OutputIds.push_back(TensorId);
    Finalized = false;
  }

  /// Attaches compile-time data to a constant tensor.
  void setConstantData(int64_t TensorId, runtime::TensorData Data);

  //===--------------------------------------------------------------------===//
  // Deserialization (persistent artifact cache)
  //===--------------------------------------------------------------------===//

  /// Re-creates a tensor under its original id (bindings, fold outputs and
  /// constant caches all key by source ids, so deserialization must
  /// preserve them exactly). Unlike addTensor this validates instead of
  /// asserting — the input is an untrusted cache entry. Fails on a
  /// duplicate or negative id.
  Status restoreTensor(LogicalTensor T);

  /// Re-creates an op under its original id; every input/output id must
  /// name a previously restored tensor. \p Sub restores a FusedOp
  /// subgraph (null otherwise).
  Status restoreOp(int64_t OpId, OpKind Kind, std::vector<int64_t> Inputs,
                   std::vector<int64_t> Outputs, AttrMap Attrs,
                   std::unique_ptr<Graph> Sub = nullptr);

  /// Restores the id allocation counters so later mutation of a
  /// deserialized graph cannot collide with restored ids.
  void restoreIdCounters(int64_t NextTensor, int64_t NextOp);

  //===--------------------------------------------------------------------===//
  // Access
  //===--------------------------------------------------------------------===//

  LogicalTensor &tensor(int64_t Id);
  const LogicalTensor &tensor(int64_t Id) const;
  /// True when \p Id names a tensor of this graph — tensor() asserts on
  /// unknown ids, so untrusted ids must be probed with this first.
  bool hasTensor(int64_t Id) const { return Tensors.count(Id) != 0; }
  Op &op(int64_t Id);
  const Op &op(int64_t Id) const;

  /// Iterates live ops in id order (erased ops are skipped).
  std::vector<int64_t> opIds() const;
  /// Live tensor ids in id order.
  std::vector<int64_t> tensorIds() const;
  size_t numOps() const;

  const std::vector<int64_t> &inputs() const { return InputIds; }
  const std::vector<int64_t> &outputs() const { return OutputIds; }

  /// Id of the op producing \p TensorId, or -1 for graph inputs/constants.
  int64_t producerOf(int64_t TensorId) const;
  /// Ids of ops reading \p TensorId.
  std::vector<int64_t> consumersOf(int64_t TensorId) const;
  /// True when \p TensorId is listed as a graph output.
  bool isOutput(int64_t TensorId) const;
  /// True when \p TensorId is listed as a graph input.
  bool isInput(int64_t TensorId) const;

  /// Constant data of \p TensorId, or nullptr.
  const runtime::TensorData *constantData(int64_t TensorId) const;
  runtime::TensorData *mutableConstantData(int64_t TensorId);

  /// Discards every constant byte payload (tensors stay marked Constant).
  /// Used once a partition subgraph has compiled: the compiled partition
  /// owns its own copy, so retaining another here would double weight
  /// memory.
  void dropConstantData();

  /// Deep-copies every constant payload into owned storage. Used on
  /// fallback partition subgraphs whose constants were attached as
  /// non-owning views of a source graph that may not outlive them.
  void materializeConstantData();

  //===--------------------------------------------------------------------===//
  // Mutation
  //===--------------------------------------------------------------------===//

  /// Rewrites every use of \p OldTensor (op inputs and graph outputs) to
  /// \p NewTensor.
  void replaceAllUses(int64_t OldTensor, int64_t NewTensor);

  /// Removes an op. Its output tensors stay in the graph (callers remove
  /// or rewire them as needed).
  void eraseOp(int64_t OpId);

  /// Removes a tensor that no op consumes or produces.
  void eraseTensor(int64_t TensorId);

  /// Replaces the input list of an op (updates consumer maps).
  void setOpInputs(int64_t OpId, std::vector<int64_t> NewInputs);

  /// Rewrites every occurrence of \p OldTensor in the graph output list to
  /// \p NewTensor (op inputs are untouched; see replaceAllUses for both).
  void replaceOutput(int64_t OldTensor, int64_t NewTensor);

  /// Replaces the whole graph output list. Every id must name a tensor.
  void setOutputs(std::vector<int64_t> NewOutputs);

  /// Replaces the whole graph input list. Every id must name a tensor.
  void setInputs(std::vector<int64_t> NewInputs);

  //===--------------------------------------------------------------------===//
  // Analysis
  //===--------------------------------------------------------------------===//

  /// Ops in topological order (producers before consumers). Aborts on
  /// cycles (the IR is a DAG by construction).
  std::vector<int64_t> topologicalOrder() const;

  /// Checks structural invariants; returns an error description or empty.
  std::string verify() const;

  /// Full compile-readiness validation: structural verify() plus shape
  /// sanity (positive dimensions, or LogicalTensor::kDynamicDim in the
  /// leading position of variable tensors) and dynamic-batch flow rules
  /// (the sentinel must propagate along dim 0 through every consuming op,
  /// which is what makes padded polymorphic execution row-exact). Used by
  /// finalize() and by api::Session::compile for graphs that skipped
  /// finalize().
  Status validate() const;

  /// True when any tensor carries the dynamic-batch sentinel; such graphs
  /// compile into batch-polymorphic CompiledGraphs.
  bool hasDynamicDims() const;

  /// Deep copy with every LogicalTensor::kDynamicDim leading dimension
  /// replaced by \p Batch (> 0). Constant payloads are shared with this
  /// graph. The returned graph is fully static and compiles through the
  /// normal pipeline; Session uses it to build per-bucket specializations
  /// of a polymorphic graph.
  Graph specializeBatch(int64_t Batch) const;

  /// Marks graph construction complete: runs validate() and freezes the
  /// graph for partitioning / compilation (mirroring the oneDNN Graph
  /// API's graph.finalize()). Idempotent; any subsequent mutation through
  /// the graph's mutator methods clears the finalized state (direct edits
  /// via the mutable op()/tensor() accessors do not — Session::compile
  /// re-validates regardless).
  Status finalize();

  /// True while finalize() has succeeded and no mutator ran since.
  bool isFinalized() const { return Finalized; }

  /// Canonical 64-bit content hash over ops (kind + attrs, topological
  /// order), tensors (dtype, shape, layout, constness, constant bytes) and
  /// the input/output boundary. Tensor/op ids are renumbered canonically,
  /// so two graphs built in different id orders but describing the same
  /// computation collide. Used as the compiled-partition cache key.
  uint64_t fingerprint() const;

  /// Deep copy, preserving ids. Pass false to skip copying constant byte
  /// payloads (the Partitioner re-attaches data only for the tensors that
  /// survive subgraph extraction, avoiding O(partitions x weight-bytes)
  /// transient copies).
  Graph clone(bool WithConstData = true) const;

  /// Multi-line textual dump.
  std::string toString() const;

private:
  void recordOpLinks(int64_t OpId);
  void forgetOpLinks(int64_t OpId);

  std::map<int64_t, LogicalTensor> Tensors;
  std::map<int64_t, Op> Ops;
  std::vector<int64_t> InputIds;
  std::vector<int64_t> OutputIds;
  std::unordered_map<int64_t, int64_t> Producer;          // tensor -> op
  std::unordered_map<int64_t, std::vector<int64_t>> Consumers; // tensor -> ops
  std::unordered_map<int64_t, runtime::TensorData> ConstData;
  int64_t NextTensorId = 0;
  int64_t NextOpId = 0;
  bool Finalized = false;
};

} // namespace graph
} // namespace gc

#endif // GC_GRAPH_GRAPH_H
