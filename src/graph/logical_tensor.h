//===- logical_tensor.h - Tensor metadata ------------------------*- C++ -*-===//
///
/// \file
/// A logical tensor carries a value's metadata: element type, static shape,
/// memory layout and constness (§II "a logical tensor represents the
/// tensor's metadata, like the element's data type, shape, and memory
/// layout"). Layouts distinguish the plain row-major format used at graph
/// boundaries from the blocked formats the matmul template wants; layout
/// propagation (§V) rewrites these fields and inserts reorders.
///
//===----------------------------------------------------------------------===//

#ifndef GC_GRAPH_LOGICAL_TENSOR_H
#define GC_GRAPH_LOGICAL_TENSOR_H

#include "support/dtype.h"
#include "support/str.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gc {
namespace graph {

/// Memory layout of the trailing two (matrix) dimensions; any leading batch
/// dimensions remain outer row-major dimensions in every layout.
struct Layout {
  enum class Kind : uint8_t {
    Any,          ///< not yet decided (pre layout-propagation)
    Plain,        ///< row-major
    BlockedA,     ///< [ceil(R/B0)][ceil(C/B1)][B0][B1] - LHS/activation format
    BlockedB,     ///< [ceil(R/B0)][ceil(C/B1)][B0][B1] - RHS/weight format
    BlockedBVnni, ///< BlockedB with 4-deep k interleaving (int8 weights)
  };

  Kind K = Kind::Plain;
  /// Block sizes of the trailing two dims (rows, cols). 0 when plain/any.
  int64_t Block0 = 0;
  int64_t Block1 = 0;

  bool isPlain() const { return K == Kind::Plain; }
  bool isAny() const { return K == Kind::Any; }
  bool isBlocked() const {
    return K == Kind::BlockedA || K == Kind::BlockedB ||
           K == Kind::BlockedBVnni;
  }

  static Layout plain() { return Layout{Kind::Plain, 0, 0}; }
  static Layout any() { return Layout{Kind::Any, 0, 0}; }
  static Layout blockedA(int64_t B0, int64_t B1) {
    return Layout{Kind::BlockedA, B0, B1};
  }
  static Layout blockedB(int64_t B0, int64_t B1) {
    return Layout{Kind::BlockedB, B0, B1};
  }
  static Layout blockedBVnni(int64_t B0, int64_t B1) {
    return Layout{Kind::BlockedBVnni, B0, B1};
  }

  bool operator==(const Layout &O) const {
    return K == O.K && Block0 == O.Block0 && Block1 == O.Block1;
  }
  bool operator!=(const Layout &O) const { return !(*this == O); }

  std::string toString() const {
    switch (K) {
    case Kind::Any: return "any";
    case Kind::Plain: return "plain";
    case Kind::BlockedA:
      return formatString("blockedA<%lldx%lld>", (long long)Block0,
                          (long long)Block1);
    case Kind::BlockedB:
      return formatString("blockedB<%lldx%lld>", (long long)Block0,
                          (long long)Block1);
    case Kind::BlockedBVnni:
      return formatString("blockedBvnni<%lldx%lld>", (long long)Block0,
                          (long long)Block1);
    }
    return "?";
  }
};

/// Whether a tensor's contents are fixed at compile time (weights, scales)
/// or arrive per execution (activations).
enum class TensorProperty : uint8_t {
  Variable,
  Constant,
};

/// Metadata describing one value in the graph.
struct LogicalTensor {
  /// Late-bound dimension sentinel. Only the leading (batch) dimension may
  /// be dynamic; Session::compile turns such graphs into batch-polymorphic
  /// CompiledGraphs that specialize per concrete batch at execution time.
  static constexpr int64_t kDynamicDim = -1;

  int64_t Id = -1;
  std::string Name;
  DataType Ty = DataType::F32;
  std::vector<int64_t> Shape;
  Layout Lay = Layout::plain();
  TensorProperty Property = TensorProperty::Variable;

  int64_t rank() const { return static_cast<int64_t>(Shape.size()); }

  /// True when the leading dimension is the late-bound batch sentinel.
  bool hasDynamicBatch() const {
    return !Shape.empty() && Shape[0] == kDynamicDim;
  }

  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t D : Shape)
      N *= D;
    return N;
  }

  bool isConstant() const { return Property == TensorProperty::Constant; }

  /// Physical element count including block padding (>= numElements()).
  int64_t paddedNumElements() const;

  std::string toString() const {
    return formatString("t%lld:%s%s:%s%s", (long long)Id, dataTypeName(Ty),
                        shapeToString(Shape).c_str(), Lay.toString().c_str(),
                        isConstant() ? ":const" : "");
  }
};

} // namespace graph
} // namespace gc

#endif // GC_GRAPH_LOGICAL_TENSOR_H
