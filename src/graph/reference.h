//===- reference.h - Reference evaluator for Graph IR -----------*- C++ -*-===//
///
/// \file
/// A slow, obviously-correct interpreter for Graph IR operating on plain
/// row-major tensors. Three roles:
///  1. ground truth for every correctness test of the compiler and the
///     baselines,
///  2. the evaluation engine of the constant-folding pass (§V),
///  3. the executor of the compile-time half of constant weight
///     preprocessing (the "fold graph").
///
/// Layout attributes are ignored: the reference computes value semantics
/// (a Reorder is the identity on logical values).
///
//===----------------------------------------------------------------------===//

#ifndef GC_GRAPH_REFERENCE_H
#define GC_GRAPH_REFERENCE_H

#include "graph/graph.h"
#include "runtime/tensor_data.h"

#include <unordered_map>

namespace gc {
namespace graph {

/// Tensor environment: logical tensor id -> runtime value.
using TensorMap = std::unordered_map<int64_t, runtime::TensorData>;

/// Evaluates a single op. \p Inputs are indexed like the op's input list.
/// Returns one value per op output.
std::vector<runtime::TensorData> evalOpReference(const Graph &G, const Op &O,
                                                 const std::vector<const runtime::TensorData *> &Inputs);

/// Evaluates a whole graph: \p Env must bind every graph input; constant
/// tensors are read from the graph's constant data (unless already bound).
/// On return \p Env additionally binds every op output.
void evalGraphReference(const Graph &G, TensorMap &Env);

/// Convenience: evaluates \p G on \p Env and returns the graph outputs in
/// declaration order.
std::vector<runtime::TensorData> runGraphReference(const Graph &G,
                                                   TensorMap Env);

/// Computes the numpy-style broadcast shape of two shapes; aborts when the
/// shapes are incompatible. Exposed for tests.
std::vector<int64_t> broadcastShapes(const std::vector<int64_t> &A,
                                     const std::vector<int64_t> &B);

} // namespace graph
} // namespace gc

#endif // GC_GRAPH_REFERENCE_H
