//===- op_kind.h - DNN operation kinds & categories -------------*- C++ -*-===//
///
/// \file
/// Operation vocabulary of the Graph IR (§II). Ops fall into the paper's
/// three classes:
///  * Tunable OPs  - lowered through parameterized templates (matmul).
///  * Fusible OPs  - elementwise / broadcast / reduction / data movement
///                   ops that fuse into a Tunable OP's template anchors.
///  * Complex OPs  - framework-level ops (softmax, gelu, quantize, ...)
///                   that the decomposition pass expands into basic ops.
/// FusedOp is the structural container the fine-grain fusion pass builds.
///
//===----------------------------------------------------------------------===//

#ifndef GC_GRAPH_OP_KIND_H
#define GC_GRAPH_OP_KIND_H

#include <cstdint>

namespace gc {
namespace graph {

/// Kind of a Graph IR operation.
enum class OpKind : uint8_t {
  // Tunable (compute-intensive, template-lowered).
  MatMul,

  // Fusible: elementwise unary.
  ReLU,
  Exp,
  Tanh,
  Sqrt,
  Reciprocal,
  Square,
  Sigmoid,
  Round,
  Abs,

  // Fusible: elementwise binary (numpy-style broadcast).
  Add,
  Sub,
  Mul,
  Div,
  Max,
  Min,

  // Fusible: reduction / data movement / type conversion.
  ReduceSum,
  ReduceMax,
  Reorder,
  Transpose,
  /// Rank/shape change over the same row-major data (free at runtime).
  Reshape,
  Cast,
  /// Int8 accumulator dequantization produced by the low-precision pass:
  /// out[r][c] = (acc[r][c] - a_zp * comp[c]) * scales[c]. Inputs: s32
  /// accumulator, s32 per-channel weight column sums (compensation);
  /// attrs: "a_zp" (int), "scales" (double vector, a_scale * b_scale[c]).
  DequantAcc,

  // Complex (decomposed before optimization).
  Softmax,
  GELU,
  Sigmoid_, ///< reserved; kept to freeze enum numbering across versions
  BatchNorm,
  LayerNorm,
  Quantize,
  Dequantize,
  BiasAdd,

  // Structural.
  FusedOp,
};

/// Optimization category of an op kind (Table-less §II classification).
enum class OpCategory : uint8_t {
  Tunable,
  Fusible,
  Complex,
  Structural,
};

/// Returns the category of \p Kind.
constexpr OpCategory opCategory(OpKind Kind) {
  switch (Kind) {
  case OpKind::MatMul:
    return OpCategory::Tunable;
  case OpKind::ReLU:
  case OpKind::Exp:
  case OpKind::Tanh:
  case OpKind::Sqrt:
  case OpKind::Reciprocal:
  case OpKind::Square:
  case OpKind::Sigmoid:
  case OpKind::Round:
  case OpKind::Abs:
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Max:
  case OpKind::Min:
  case OpKind::ReduceSum:
  case OpKind::ReduceMax:
  case OpKind::Reorder:
  case OpKind::Transpose:
  case OpKind::Reshape:
  case OpKind::Cast:
  case OpKind::DequantAcc:
    return OpCategory::Fusible;
  case OpKind::Softmax:
  case OpKind::GELU:
  case OpKind::Sigmoid_:
  case OpKind::BatchNorm:
  case OpKind::LayerNorm:
  case OpKind::Quantize:
  case OpKind::Dequantize:
  case OpKind::BiasAdd:
    return OpCategory::Complex;
  case OpKind::FusedOp:
    return OpCategory::Structural;
  }
  return OpCategory::Fusible;
}

/// Printable op-kind name.
constexpr const char *opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::MatMul: return "matmul";
  case OpKind::ReLU: return "relu";
  case OpKind::Exp: return "exp";
  case OpKind::Tanh: return "tanh";
  case OpKind::Sqrt: return "sqrt";
  case OpKind::Reciprocal: return "reciprocal";
  case OpKind::Square: return "square";
  case OpKind::Sigmoid: return "sigmoid";
  case OpKind::Round: return "round";
  case OpKind::Abs: return "abs";
  case OpKind::Add: return "add";
  case OpKind::Sub: return "sub";
  case OpKind::Mul: return "mul";
  case OpKind::Div: return "div";
  case OpKind::Max: return "max";
  case OpKind::Min: return "min";
  case OpKind::ReduceSum: return "reduce_sum";
  case OpKind::ReduceMax: return "reduce_max";
  case OpKind::Reorder: return "reorder";
  case OpKind::Transpose: return "transpose";
  case OpKind::Reshape: return "reshape";
  case OpKind::Cast: return "cast";
  case OpKind::DequantAcc: return "dequant_acc";
  case OpKind::Softmax: return "softmax";
  case OpKind::GELU: return "gelu";
  case OpKind::Sigmoid_: return "sigmoid_reserved";
  case OpKind::BatchNorm: return "batchnorm";
  case OpKind::LayerNorm: return "layernorm";
  case OpKind::Quantize: return "quantize";
  case OpKind::Dequantize: return "dequantize";
  case OpKind::BiasAdd: return "bias_add";
  case OpKind::FusedOp: return "fused_op";
  }
  return "?";
}

/// True for elementwise unary fusible kinds.
constexpr bool isUnaryElementwise(OpKind Kind) {
  switch (Kind) {
  case OpKind::ReLU:
  case OpKind::Exp:
  case OpKind::Tanh:
  case OpKind::Sqrt:
  case OpKind::Reciprocal:
  case OpKind::Square:
  case OpKind::Sigmoid:
  case OpKind::Round:
  case OpKind::Abs:
    return true;
  default:
    return false;
  }
}

/// True for elementwise binary fusible kinds.
constexpr bool isBinaryElementwise(OpKind Kind) {
  switch (Kind) {
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Max:
  case OpKind::Min:
    return true;
  default:
    return false;
  }
}

/// True for reduction fusible kinds.
constexpr bool isReduction(OpKind Kind) {
  return Kind == OpKind::ReduceSum || Kind == OpKind::ReduceMax;
}

} // namespace graph
} // namespace gc

#endif // GC_GRAPH_OP_KIND_H
