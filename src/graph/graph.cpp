//===- graph.cpp - Graph IR ------------------------------------------------===//

#include "graph/graph.h"

#include "support/common.h"
#include "support/serial.h"
#include "support/str.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>

namespace gc {
namespace graph {

//===----------------------------------------------------------------------===//
// LogicalTensor
//===----------------------------------------------------------------------===//

int64_t LogicalTensor::paddedNumElements() const {
  if (!Lay.isBlocked() || rank() < 2)
    return numElements();
  int64_t Lead = 1;
  for (int64_t I = 0; I + 2 < rank(); ++I)
    Lead *= Shape[static_cast<size_t>(I)];
  const int64_t R = Shape[static_cast<size_t>(rank() - 2)];
  const int64_t C = Shape[static_cast<size_t>(rank() - 1)];
  return Lead * ceilDiv(R, Lay.Block0) * ceilDiv(C, Lay.Block1) * Lay.Block0 *
         Lay.Block1;
}

//===----------------------------------------------------------------------===//
// Op
//===----------------------------------------------------------------------===//

int64_t Op::getAttrInt(const std::string &Name, int64_t Default) const {
  auto It = Attrs.find(Name);
  if (It == Attrs.end())
    return Default;
  if (const int64_t *V = std::get_if<int64_t>(&It->second))
    return *V;
  if (const double *V = std::get_if<double>(&It->second))
    return static_cast<int64_t>(*V);
  return Default;
}

double Op::getAttrFloat(const std::string &Name, double Default) const {
  auto It = Attrs.find(Name);
  if (It == Attrs.end())
    return Default;
  if (const double *V = std::get_if<double>(&It->second))
    return *V;
  if (const int64_t *V = std::get_if<int64_t>(&It->second))
    return static_cast<double>(*V);
  return Default;
}

std::string Op::getAttrString(const std::string &Name,
                              const std::string &Default) const {
  auto It = Attrs.find(Name);
  if (It == Attrs.end())
    return Default;
  if (const std::string *V = std::get_if<std::string>(&It->second))
    return *V;
  return Default;
}

std::vector<int64_t> Op::getAttrIntVec(const std::string &Name) const {
  auto It = Attrs.find(Name);
  if (It == Attrs.end())
    return {};
  if (const auto *V = std::get_if<std::vector<int64_t>>(&It->second))
    return *V;
  return {};
}

std::vector<double> Op::getAttrFloatVec(const std::string &Name) const {
  auto It = Attrs.find(Name);
  if (It == Attrs.end())
    return {};
  if (const auto *V = std::get_if<std::vector<double>>(&It->second))
    return *V;
  return {};
}

void Op::setSubgraph(std::unique_ptr<Graph> G) { Sub = std::move(G); }

std::string Op::toString(const Graph &Parent) const {
  std::vector<std::string> Ins, Outs;
  for (int64_t T : Inputs)
    Ins.push_back(Parent.tensor(T).toString());
  for (int64_t T : Outputs)
    Outs.push_back(Parent.tensor(T).toString());
  std::string AttrStr;
  for (const auto &[Name, Value] : Attrs) {
    if (!AttrStr.empty())
      AttrStr += ", ";
    AttrStr += Name + "=";
    if (const int64_t *V = std::get_if<int64_t>(&Value))
      AttrStr += formatString("%lld", (long long)*V);
    else if (const double *V = std::get_if<double>(&Value))
      AttrStr += formatString("%g", *V);
    else if (const std::string *V = std::get_if<std::string>(&Value))
      AttrStr += *V;
    else if (const auto *V = std::get_if<std::vector<int64_t>>(&Value))
      AttrStr += shapeToString(*V);
    else if (const auto *V = std::get_if<std::vector<double>>(&Value))
      AttrStr += formatString("<%zu doubles>", V->size());
  }
  return formatString("op%lld %s(%s) -> (%s)%s%s", (long long)Id,
                      opKindName(Kind), joinStrings(Ins, ", ").c_str(),
                      joinStrings(Outs, ", ").c_str(),
                      AttrStr.empty() ? "" : (" {" + AttrStr + "}").c_str(),
                      Sub ? " [has subgraph]" : "");
}

//===----------------------------------------------------------------------===//
// Graph: construction
//===----------------------------------------------------------------------===//

int64_t Graph::addTensor(DataType Ty, std::vector<int64_t> Shape,
                         const std::string &Name, TensorProperty Property) {
  Finalized = false;
  LogicalTensor T;
  T.Id = NextTensorId++;
  T.Name = Name;
  T.Ty = Ty;
  T.Shape = std::move(Shape);
  T.Property = Property;
  const int64_t Id = T.Id;
  Tensors.emplace(Id, std::move(T));
  return Id;
}

int64_t Graph::addOp(OpKind Kind, const std::vector<int64_t> &Inputs,
                     DataType OutTy, std::vector<int64_t> OutShape,
                     AttrMap Attrs, const std::string &Name) {
  const int64_t OutId = addTensor(OutTy, std::move(OutShape), Name);
  addOpExplicit(Kind, Inputs, {OutId}, std::move(Attrs));
  return OutId;
}

int64_t Graph::addOpExplicit(OpKind Kind, const std::vector<int64_t> &Inputs,
                             const std::vector<int64_t> &Outputs,
                             AttrMap Attrs) {
  Finalized = false;
  Op NewOp(NextOpId++, Kind);
  NewOp.Inputs = Inputs;
  NewOp.Outputs = Outputs;
  NewOp.Attrs = std::move(Attrs);
  const int64_t Id = NewOp.Id;
  Ops.emplace(Id, std::move(NewOp));
  recordOpLinks(Id);
  return Id;
}

Status Graph::restoreTensor(LogicalTensor T) {
  if (T.Id < 0)
    return Status::error(StatusCode::InvalidArgument,
                         "restoreTensor: negative tensor id");
  if (Tensors.count(T.Id))
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("restoreTensor: duplicate tensor id t%lld",
                     (long long)T.Id));
  Finalized = false;
  const int64_t Id = T.Id;
  Tensors.emplace(Id, std::move(T));
  return Status::ok();
}

Status Graph::restoreOp(int64_t OpId, OpKind Kind,
                        std::vector<int64_t> Inputs,
                        std::vector<int64_t> Outputs, AttrMap Attrs,
                        std::unique_ptr<Graph> Sub) {
  if (OpId < 0)
    return Status::error(StatusCode::InvalidArgument,
                         "restoreOp: negative op id");
  if (Ops.count(OpId))
    return Status::error(StatusCode::InvalidArgument,
                         formatString("restoreOp: duplicate op id op%lld",
                                      (long long)OpId));
  for (int64_t T : Inputs)
    if (!Tensors.count(T))
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("restoreOp: op%lld input t%lld does not exist",
                       (long long)OpId, (long long)T));
  for (int64_t T : Outputs)
    if (!Tensors.count(T))
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("restoreOp: op%lld output t%lld does not exist",
                       (long long)OpId, (long long)T));
  Finalized = false;
  Op NewOp(OpId, Kind);
  NewOp.Inputs = std::move(Inputs);
  NewOp.Outputs = std::move(Outputs);
  NewOp.Attrs = std::move(Attrs);
  if (Sub)
    NewOp.setSubgraph(std::move(Sub));
  Ops.emplace(OpId, std::move(NewOp));
  recordOpLinks(OpId);
  return Status::ok();
}

void Graph::restoreIdCounters(int64_t NextTensor, int64_t NextOp) {
  NextTensorId = std::max(NextTensorId, NextTensor);
  NextOpId = std::max(NextOpId, NextOp);
}

void Graph::setConstantData(int64_t TensorId, runtime::TensorData Data) {
  Finalized = false;
  assert(Tensors.count(TensorId) && "unknown tensor");
  Tensors.at(TensorId).Property = TensorProperty::Constant;
  ConstData[TensorId] = std::move(Data);
}

//===----------------------------------------------------------------------===//
// Graph: access
//===----------------------------------------------------------------------===//

LogicalTensor &Graph::tensor(int64_t Id) {
  auto It = Tensors.find(Id);
  assert(It != Tensors.end() && "unknown tensor id");
  return It->second;
}

const LogicalTensor &Graph::tensor(int64_t Id) const {
  auto It = Tensors.find(Id);
  assert(It != Tensors.end() && "unknown tensor id");
  return It->second;
}

Op &Graph::op(int64_t Id) {
  auto It = Ops.find(Id);
  assert(It != Ops.end() && "unknown op id");
  return It->second;
}

const Op &Graph::op(int64_t Id) const {
  auto It = Ops.find(Id);
  assert(It != Ops.end() && "unknown op id");
  return It->second;
}

std::vector<int64_t> Graph::opIds() const {
  std::vector<int64_t> Ids;
  Ids.reserve(Ops.size());
  for (const auto &[Id, O] : Ops)
    Ids.push_back(Id);
  return Ids;
}

std::vector<int64_t> Graph::tensorIds() const {
  std::vector<int64_t> Ids;
  Ids.reserve(Tensors.size());
  for (const auto &[Id, T] : Tensors)
    Ids.push_back(Id);
  return Ids;
}

size_t Graph::numOps() const { return Ops.size(); }

int64_t Graph::producerOf(int64_t TensorId) const {
  auto It = Producer.find(TensorId);
  if (It == Producer.end())
    return -1;
  return It->second;
}

std::vector<int64_t> Graph::consumersOf(int64_t TensorId) const {
  auto It = Consumers.find(TensorId);
  if (It == Consumers.end())
    return {};
  return It->second;
}

bool Graph::isOutput(int64_t TensorId) const {
  return std::find(OutputIds.begin(), OutputIds.end(), TensorId) !=
         OutputIds.end();
}

bool Graph::isInput(int64_t TensorId) const {
  return std::find(InputIds.begin(), InputIds.end(), TensorId) !=
         InputIds.end();
}

const runtime::TensorData *Graph::constantData(int64_t TensorId) const {
  auto It = ConstData.find(TensorId);
  if (It == ConstData.end())
    return nullptr;
  return &It->second;
}

runtime::TensorData *Graph::mutableConstantData(int64_t TensorId) {
  auto It = ConstData.find(TensorId);
  if (It == ConstData.end())
    return nullptr;
  return &It->second;
}

void Graph::dropConstantData() { ConstData.clear(); }

void Graph::materializeConstantData() {
  for (auto &[Id, Data] : ConstData)
    Data = Data.clone();
}

//===----------------------------------------------------------------------===//
// Graph: mutation
//===----------------------------------------------------------------------===//

void Graph::recordOpLinks(int64_t OpId) {
  const Op &O = Ops.at(OpId);
  for (int64_t In : O.Inputs)
    Consumers[In].push_back(OpId);
  for (int64_t Out : O.Outputs) {
    assert(!Producer.count(Out) && "tensor already has a producer");
    Producer[Out] = OpId;
  }
}

void Graph::forgetOpLinks(int64_t OpId) {
  const Op &O = Ops.at(OpId);
  for (int64_t In : O.Inputs) {
    auto It = Consumers.find(In);
    if (It == Consumers.end())
      continue;
    auto &Vec = It->second;
    Vec.erase(std::remove(Vec.begin(), Vec.end(), OpId), Vec.end());
  }
  for (int64_t Out : O.Outputs)
    Producer.erase(Out);
}

void Graph::replaceAllUses(int64_t OldTensor, int64_t NewTensor) {
  Finalized = false;
  if (OldTensor == NewTensor)
    return;
  auto It = Consumers.find(OldTensor);
  if (It != Consumers.end()) {
    const std::vector<int64_t> Users = It->second;
    for (int64_t User : Users) {
      Op &O = Ops.at(User);
      for (int64_t &In : O.Inputs) {
        if (In != OldTensor)
          continue;
        In = NewTensor;
        Consumers[NewTensor].push_back(User);
      }
    }
    Consumers.erase(OldTensor);
  }
  for (int64_t &Out : OutputIds)
    if (Out == OldTensor)
      Out = NewTensor;
}

void Graph::eraseOp(int64_t OpId) {
  Finalized = false;
  assert(Ops.count(OpId) && "unknown op");
  forgetOpLinks(OpId);
  Ops.erase(OpId);
}

void Graph::eraseTensor(int64_t TensorId) {
  Finalized = false;
  assert(producerOf(TensorId) < 0 && consumersOf(TensorId).empty() &&
         "erasing a tensor still in use");
  Tensors.erase(TensorId);
  ConstData.erase(TensorId);
  InputIds.erase(std::remove(InputIds.begin(), InputIds.end(), TensorId),
                 InputIds.end());
}

void Graph::replaceOutput(int64_t OldTensor, int64_t NewTensor) {
  Finalized = false;
  assert(Tensors.count(NewTensor) && "unknown replacement tensor");
  for (int64_t &Out : OutputIds)
    if (Out == OldTensor)
      Out = NewTensor;
}

void Graph::setOutputs(std::vector<int64_t> NewOutputs) {
  Finalized = false;
  for (int64_t Out : NewOutputs) {
    (void)Out;
    assert(Tensors.count(Out) && "graph output must name a tensor");
  }
  OutputIds = std::move(NewOutputs);
}

void Graph::setInputs(std::vector<int64_t> NewInputs) {
  Finalized = false;
  for (int64_t In : NewInputs) {
    (void)In;
    assert(Tensors.count(In) && "graph input must name a tensor");
  }
  InputIds = std::move(NewInputs);
}

void Graph::setOpInputs(int64_t OpId, std::vector<int64_t> NewInputs) {
  Finalized = false;
  Op &O = Ops.at(OpId);
  for (int64_t In : O.Inputs) {
    auto It = Consumers.find(In);
    if (It == Consumers.end())
      continue;
    auto &Vec = It->second;
    Vec.erase(std::remove(Vec.begin(), Vec.end(), OpId), Vec.end());
  }
  O.Inputs = std::move(NewInputs);
  for (int64_t In : O.Inputs)
    Consumers[In].push_back(OpId);
}

//===----------------------------------------------------------------------===//
// Graph: analysis
//===----------------------------------------------------------------------===//

std::vector<int64_t> Graph::topologicalOrder() const {
  std::unordered_map<int64_t, int> PendingInputs;
  std::deque<int64_t> Ready;
  for (const auto &[Id, O] : Ops) {
    int Count = 0;
    for (int64_t In : O.Inputs)
      if (producerOf(In) >= 0)
        ++Count;
    PendingInputs[Id] = Count;
    if (Count == 0)
      Ready.push_back(Id);
  }
  std::vector<int64_t> Order;
  Order.reserve(Ops.size());
  while (!Ready.empty()) {
    // Pick the smallest ready id for determinism.
    auto MinIt = std::min_element(Ready.begin(), Ready.end());
    const int64_t Id = *MinIt;
    Ready.erase(MinIt);
    Order.push_back(Id);
    for (int64_t Out : Ops.at(Id).Outputs)
      for (int64_t User : consumersOf(Out))
        if (--PendingInputs[User] == 0)
          Ready.push_back(User);
  }
  if (Order.size() != Ops.size())
    fatalError("cycle detected in graph");
  return Order;
}

std::string Graph::verify() const {
  for (const auto &[Id, O] : Ops) {
    for (int64_t In : O.Inputs)
      if (!Tensors.count(In))
        return formatString("op%lld reads unknown tensor %lld", (long long)Id,
                            (long long)In);
    for (int64_t Out : O.Outputs) {
      if (!Tensors.count(Out))
        return formatString("op%lld writes unknown tensor %lld",
                            (long long)Id, (long long)Out);
      auto It = Producer.find(Out);
      if (It == Producer.end() || It->second != Id)
        return formatString("producer map inconsistent for tensor %lld",
                            (long long)Out);
    }
  }
  for (int64_t Out : OutputIds)
    if (!Tensors.count(Out))
      return formatString("graph output %lld is not a tensor",
                          (long long)Out);
  for (int64_t In : InputIds)
    if (!Tensors.count(In))
      return formatString("graph input %lld is not a tensor", (long long)In);
  // Every non-input, non-constant tensor consumed by an op needs a producer.
  for (const auto &[Id, O] : Ops)
    for (int64_t In : O.Inputs) {
      const LogicalTensor &T = Tensors.at(In);
      if (T.isConstant() || isInput(In))
        continue;
      if (producerOf(In) < 0)
        return formatString("tensor %lld consumed by op%lld has no producer",
                            (long long)In, (long long)Id);
    }
  return std::string();
}

Status Graph::validate() const {
  const std::string Err = verify();
  if (!Err.empty())
    return Status::error(StatusCode::InvalidGraph, Err);
  for (const auto &[Id, T] : Tensors)
    for (size_t D = 0; D < T.Shape.size(); ++D) {
      if (T.Shape[D] == LogicalTensor::kDynamicDim) {
        // The late-bound batch sentinel is legal only as the leading
        // dimension of a variable tensor; constants have fixed contents
        // and therefore fixed shapes.
        if (D != 0)
          return Status::error(
              StatusCode::InvalidGraph,
              formatString("tensor %lld has a dynamic dimension at "
                           "position %zu; only the leading (batch) "
                           "dimension may be dynamic",
                           (long long)Id, D));
        if (T.isConstant())
          return Status::error(
              StatusCode::InvalidGraph,
              formatString("constant tensor %lld cannot have a dynamic "
                           "batch dimension",
                           (long long)Id));
        continue;
      }
      if (T.Shape[D] <= 0)
        return Status::error(
            StatusCode::InvalidGraph,
            formatString("tensor %lld has non-positive dimension %lld",
                         (long long)Id, (long long)T.Shape[D]));
    }
  // Dynamic-batch flow: the sentinel names one shared batch symbol, so an
  // op either maps batch rows to batch rows (every output dynamic when any
  // input is) or is fully static. This is what makes padded polymorphic
  // execution row-exact: rows beyond the real batch never feed rows inside
  // it.
  for (const auto &[Id, O] : Ops) {
    bool DynIn = false;
    for (int64_t In : O.inputs())
      if (Tensors.at(In).hasDynamicBatch())
        DynIn = true;
    for (int64_t Out : O.outputs()) {
      const bool DynOut = Tensors.at(Out).hasDynamicBatch();
      if (DynIn && !DynOut)
        return Status::error(
            StatusCode::InvalidGraph,
            formatString("op%lld consumes a dynamic-batch tensor but "
                         "produces static tensor %lld: ops must carry the "
                         "batch dimension through (reductions over the "
                         "dynamic batch are unsupported)",
                         (long long)Id, (long long)Out));
      if (!DynIn && DynOut)
        return Status::error(
            StatusCode::InvalidGraph,
            formatString("op%lld produces dynamic-batch tensor %lld from "
                         "fully static inputs",
                         (long long)Id, (long long)Out));
    }
    if (!DynIn)
      continue;
    // Dyn-in => dyn-out alone does not rule out shape-preserving ops
    // whose *operating axis* is the batch axis itself (e.g. softmax over
    // a rank-1 dynamic tensor normalizes across the batch): check the
    // axis each op kind mixes elements along.
    auto rejectBatchMix = [OpId = Id](const char *Why) {
      return Status::error(
          StatusCode::InvalidGraph,
          formatString("op%lld %s the dynamic batch dimension, which "
                       "breaks batch-row independence",
                       (long long)OpId, Why));
    };
    auto resolvedAxis = [](int64_t Axis, int64_t Rank) {
      return Axis < 0 ? Rank + Axis : Axis;
    };
    const int64_t InRank =
        O.inputs().empty() ? 0 : Tensors.at(O.input(0)).rank();
    switch (O.kind()) {
    case OpKind::Softmax:
      if (resolvedAxis(O.getAttrInt("axis", -1), InRank) == 0)
        return rejectBatchMix("normalizes along");
      break;
    case OpKind::BatchNorm:
    case OpKind::LayerNorm:
      // Both normalize the last (channel) dimension.
      if (InRank == 1)
        return rejectBatchMix("normalizes along");
      break;
    case OpKind::ReduceSum:
    case OpKind::ReduceMax:
      for (int64_t Axis : O.getAttrIntVec("axes"))
        if (resolvedAxis(Axis, InRank) == 0)
          return rejectBatchMix("reduces over");
      break;
    case OpKind::MatMul:
      // The dynamic dim must be an M/leading-batch dim, never the
      // contraction dim: A needs rank >= 2, B needs a leading batch dim.
      if (Tensors.at(O.input(0)).hasDynamicBatch() && InRank < 2)
        return rejectBatchMix("contracts over");
      if (O.numInputs() > 1 && Tensors.at(O.input(1)).hasDynamicBatch() &&
          Tensors.at(O.input(1)).rank() < 3)
        return rejectBatchMix("contracts over");
      break;
    case OpKind::Quantize:
    case OpKind::Dequantize:
      // Per-channel parameters along the batch axis would need one scale
      // per (late-bound) row.
      if (O.getAttrFloatVec("scales").size() > 1 &&
          resolvedAxis(O.getAttrInt("axis", -1), InRank) == 0)
        return rejectBatchMix("applies per-channel parameters along");
      break;
    case OpKind::Reshape: {
      // A dynamic reshape must keep the per-batch-row element count so
      // the shared batch symbol stays linear ([B,x,y] -> [B,x*y] is
      // fine, [B,2k] -> [2B,k] is not representable).
      auto RowElems = [this](int64_t TId) {
        const LogicalTensor &T = Tensors.at(TId);
        int64_t N = 1;
        for (size_t D = 1; D < T.Shape.size(); ++D)
          N *= T.Shape[D];
        return N;
      };
      if (RowElems(O.input(0)) != RowElems(O.output(0)))
        return Status::error(
            StatusCode::InvalidGraph,
            formatString("op%lld: dynamic reshape must preserve the "
                         "per-batch-row element count",
                         (long long)Id));
      break;
    }
    default:
      break;
    }
  }
  return Status::ok();
}

bool Graph::hasDynamicDims() const {
  for (const auto &[Id, T] : Tensors)
    if (T.hasDynamicBatch())
      return true;
  return false;
}

Graph Graph::specializeBatch(int64_t Batch) const {
  assert(Batch > 0 && "specialization batch must be positive");
  // Constants are shared, not copied: TensorData's copy shares the owning
  // buffer, and the compile pipeline makes its own owned copies of
  // whatever survives (CompiledPartition / fold cache / fallback
  // materialization) — deep-copying the full weight set once per batch
  // bucket would only add transient memory spikes.
  Graph Copy = clone(/*WithConstData=*/false);
  Copy.ConstData = ConstData;
  for (auto &[Id, T] : Copy.Tensors)
    if (T.hasDynamicBatch())
      T.Shape[0] = Batch;
  // The copy is a different graph shape-wise; make finalize/compile
  // re-validate it from scratch.
  Copy.Finalized = false;
  return Copy;
}

Status Graph::finalize() {
  if (const Status S = validate(); !S.isOk())
    return S;
  Finalized = true;
  return Status::ok();
}

namespace {

/// FNV-1a accumulation over raw bytes; the basis of Graph::fingerprint().
struct Fnv1a {
  uint64_t H = 1469598103934665603ull;

  void bytes(const void *Data, size_t Len) {
    // Constant payloads dominate the fingerprint of weight-carrying
    // graphs, and fingerprinting runs on every compile whether or not
    // the artifact cache hits — large spans fold through the 4-lane
    // bulk digest (support/serial.h) at memory speed, small fields
    // through a word-wise FNV-1a chain (8 bytes per multiply).
    if (Len >= 1024) {
      u64(fnv1aBytesBulk(Data, Len));
      return;
    }
    const auto *P = static_cast<const unsigned char *>(Data);
    size_t I = 0;
    for (; I + 8 <= Len; I += 8) {
      uint64_t W;
      std::memcpy(&W, P + I, 8);
      H ^= W;
      H *= 1099511628211ull;
    }
    for (; I < Len; ++I) {
      H ^= P[I];
      H *= 1099511628211ull;
    }
  }
  void u64(uint64_t V) { bytes(&V, sizeof(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) { bytes(&V, sizeof(V)); }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void i64vec(const std::vector<int64_t> &V) {
    u64(V.size());
    for (int64_t X : V)
      i64(X);
  }
};

} // namespace

uint64_t Graph::fingerprint() const {
  Fnv1a H;
  // Canonical dense renumbering of tensor ids by first appearance, so the
  // hash is independent of construction-order id gaps.
  std::unordered_map<int64_t, uint64_t> Canon;
  auto canonId = [&](int64_t Id) -> uint64_t {
    auto It = Canon.find(Id);
    if (It != Canon.end())
      return It->second;
    const uint64_t C = Canon.size();
    Canon.emplace(Id, C);
    return C;
  };
  // Per-tensor digests are memoized: a tensor referenced by several ops
  // (notably large constants, whose byte payload dominates) is hashed
  // exactly once per fingerprint() call.
  std::unordered_map<int64_t, uint64_t> DigestMemo;
  auto hashTensor = [&](int64_t Id) {
    H.u64(canonId(Id));
    auto MemoIt = DigestMemo.find(Id);
    if (MemoIt != DigestMemo.end()) {
      H.u64(MemoIt->second);
      return;
    }
    const LogicalTensor &T = Tensors.at(Id);
    Fnv1a TH;
    TH.u64(static_cast<uint64_t>(T.Ty));
    TH.i64vec(T.Shape);
    TH.u64(static_cast<uint64_t>(T.Lay.K));
    TH.i64(T.Lay.Block0);
    TH.i64(T.Lay.Block1);
    TH.u64(static_cast<uint64_t>(T.Property));
    // Constant values are part of identity: two graphs differing only in
    // weight data must compile (and fold) separately.
    auto DataIt = ConstData.find(Id);
    if (DataIt != ConstData.end() && DataIt->second.valid()) {
      TH.i64(DataIt->second.numBytes());
      TH.bytes(DataIt->second.data(),
               static_cast<size_t>(DataIt->second.numBytes()));
    } else {
      TH.i64(-1);
    }
    DigestMemo.emplace(Id, TH.H);
    H.u64(TH.H);
  };
  H.u64(InputIds.size());
  for (int64_t In : InputIds)
    hashTensor(In);
  const std::vector<int64_t> Order = topologicalOrder();
  H.u64(Order.size());
  for (int64_t OpId : Order) {
    const Op &O = Ops.at(OpId);
    H.u64(static_cast<uint64_t>(O.kind()));
    H.u64(O.attrs().size());
    for (const auto &[Name, Value] : O.attrs()) {
      H.str(Name);
      H.u64(Value.index());
      if (const int64_t *V = std::get_if<int64_t>(&Value))
        H.i64(*V);
      else if (const double *V = std::get_if<double>(&Value))
        H.f64(*V);
      else if (const std::string *V = std::get_if<std::string>(&Value))
        H.str(*V);
      else if (const auto *V = std::get_if<std::vector<int64_t>>(&Value))
        H.i64vec(*V);
      else if (const auto *V = std::get_if<std::vector<double>>(&Value)) {
        H.u64(V->size());
        for (double D : *V)
          H.f64(D);
      }
    }
    H.u64(O.numInputs());
    for (int64_t In : O.inputs())
      hashTensor(In);
    H.u64(O.numOutputs());
    for (int64_t Out : O.outputs())
      hashTensor(Out);
    if (const Graph *Sub = O.subgraph())
      H.u64(Sub->fingerprint());
  }
  H.u64(OutputIds.size());
  for (int64_t Out : OutputIds)
    H.u64(canonId(Out));
  return H.H;
}

Graph Graph::clone(bool WithConstData) const {
  Graph Copy;
  Copy.Tensors = Tensors;
  Copy.InputIds = InputIds;
  Copy.OutputIds = OutputIds;
  Copy.NextTensorId = NextTensorId;
  Copy.NextOpId = NextOpId;
  Copy.Finalized = Finalized;
  for (const auto &[Id, O] : Ops) {
    Op NewOp(O.Id, O.Kind);
    NewOp.Inputs = O.Inputs;
    NewOp.Outputs = O.Outputs;
    NewOp.Attrs = O.Attrs;
    if (O.Sub) {
      auto SubCopy = std::make_unique<Graph>(O.Sub->clone());
      NewOp.Sub = std::move(SubCopy);
    }
    Copy.Ops.emplace(Id, std::move(NewOp));
    Copy.recordOpLinks(Id);
  }
  if (WithConstData)
    for (const auto &[Id, Data] : ConstData)
      Copy.ConstData[Id] = Data.clone();
  return Copy;
}

std::string Graph::toString() const {
  std::string Out = "graph {\n";
  Out += "  inputs: ";
  std::vector<std::string> Parts;
  for (int64_t In : InputIds)
    Parts.push_back(tensor(In).toString());
  Out += joinStrings(Parts, ", ") + "\n";
  for (int64_t Id : topologicalOrder()) {
    Out += "  " + op(Id).toString(*this) + "\n";
    if (const Graph *Sub = op(Id).subgraph()) {
      std::string SubStr = Sub->toString();
      // Indent nested dump.
      std::string Indented;
      size_t Pos = 0;
      while (Pos < SubStr.size()) {
        size_t Eol = SubStr.find('\n', Pos);
        if (Eol == std::string::npos)
          Eol = SubStr.size();
        Indented += "    " + SubStr.substr(Pos, Eol - Pos) + "\n";
        Pos = Eol + 1;
      }
      Out += Indented;
    }
  }
  Parts.clear();
  for (int64_t OutId : OutputIds)
    Parts.push_back(tensor(OutId).toString());
  Out += "  outputs: " + joinStrings(Parts, ", ") + "\n}\n";
  return Out;
}

} // namespace graph
} // namespace gc
