//===- reference.cpp - Reference evaluator for Graph IR -----------------------===//

#include "graph/reference.h"

#include "support/common.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gc {
namespace graph {

using runtime::TensorData;

namespace {

//===----------------------------------------------------------------------===//
// Generic element access as double
//===----------------------------------------------------------------------===//

double loadElem(const TensorData &T, int64_t I) {
  switch (T.dtype()) {
  case DataType::F32: return T.dataAs<float>()[I];
  case DataType::F64: return T.dataAs<double>()[I];
  case DataType::S32: return T.dataAs<int32_t>()[I];
  case DataType::S8: return T.dataAs<int8_t>()[I];
  case DataType::U8: return T.dataAs<uint8_t>()[I];
  }
  GC_UNREACHABLE("unhandled dtype");
}

void storeElem(TensorData &T, int64_t I, double V) {
  switch (T.dtype()) {
  case DataType::F32:
    T.dataAs<float>()[I] = static_cast<float>(V);
    return;
  case DataType::F64:
    T.dataAs<double>()[I] = V;
    return;
  case DataType::S32:
    T.dataAs<int32_t>()[I] = static_cast<int32_t>(V);
    return;
  case DataType::S8:
    T.dataAs<int8_t>()[I] = static_cast<int8_t>(
        std::clamp<int64_t>(static_cast<int64_t>(V), -128, 127));
    return;
  case DataType::U8:
    T.dataAs<uint8_t>()[I] = static_cast<uint8_t>(
        std::clamp<int64_t>(static_cast<int64_t>(V), 0, 255));
    return;
  }
  GC_UNREACHABLE("unhandled dtype");
}

/// Row-major strides of a shape.
std::vector<int64_t> rowMajorStrides(const std::vector<int64_t> &Shape) {
  std::vector<int64_t> Strides(Shape.size(), 1);
  for (int64_t I = static_cast<int64_t>(Shape.size()) - 2; I >= 0; --I)
    Strides[I] = Strides[I + 1] * Shape[I + 1];
  return Strides;
}

/// Maps a linear index in \p OutShape to a linear index in a broadcast
/// input with shape \p InShape (right-aligned broadcasting).
int64_t broadcastIndex(int64_t Linear, const std::vector<int64_t> &OutShape,
                       const std::vector<int64_t> &OutStrides,
                       const std::vector<int64_t> &InShape,
                       const std::vector<int64_t> &InStrides) {
  const int64_t OutRank = static_cast<int64_t>(OutShape.size());
  const int64_t InRank = static_cast<int64_t>(InShape.size());
  int64_t InIndex = 0;
  for (int64_t D = 0; D < OutRank; ++D) {
    const int64_t Coord = (Linear / OutStrides[D]) % OutShape[D];
    const int64_t InD = D - (OutRank - InRank);
    if (InD < 0)
      continue;
    const int64_t InCoord = InShape[InD] == 1 ? 0 : Coord;
    InIndex += InCoord * InStrides[InD];
  }
  return InIndex;
}

//===----------------------------------------------------------------------===//
// Op implementations
//===----------------------------------------------------------------------===//

TensorData evalMatMul(const Op &O, const TensorData &A, const TensorData &B,
                      DataType OutTy) {
  const bool TransA = O.getAttrInt("transpose_a", 0) != 0;
  const bool TransB = O.getAttrInt("transpose_b", 0) != 0;
  const auto &AS = A.shape();
  const auto &BS = B.shape();
  assert(AS.size() >= 2 && BS.size() >= 2 && "matmul needs rank >= 2");
  const int64_t M = TransA ? AS[AS.size() - 1] : AS[AS.size() - 2];
  const int64_t K = TransA ? AS[AS.size() - 2] : AS[AS.size() - 1];
  const int64_t KB = TransB ? BS[BS.size() - 1] : BS[BS.size() - 2];
  const int64_t N = TransB ? BS[BS.size() - 2] : BS[BS.size() - 1];
  assert(K == KB && "matmul reduction dims disagree");
  (void)KB;

  // Broadcast batch dims.
  std::vector<int64_t> ABatch(AS.begin(), AS.end() - 2);
  std::vector<int64_t> BBatch(BS.begin(), BS.end() - 2);
  std::vector<int64_t> Batch = broadcastShapes(ABatch, BBatch);
  std::vector<int64_t> OutShape = Batch;
  OutShape.push_back(M);
  OutShape.push_back(N);
  TensorData Out(OutTy, OutShape);

  int64_t BatchCount = 1;
  for (int64_t D : Batch)
    BatchCount *= D;
  const int64_t AMat = M * K;
  const int64_t BMat = K * N;
  const auto BatchStrides = rowMajorStrides(Batch);
  const auto ABatchStrides = rowMajorStrides(ABatch);
  const auto BBatchStrides = rowMajorStrides(BBatch);

  for (int64_t BI = 0; BI < BatchCount; ++BI) {
    const int64_t AOff =
        broadcastIndex(BI, Batch, BatchStrides, ABatch, ABatchStrides) * AMat;
    const int64_t BOff =
        broadcastIndex(BI, Batch, BatchStrides, BBatch, BBatchStrides) * BMat;
    const int64_t COff = BI * M * N;
    for (int64_t MI = 0; MI < M; ++MI) {
      for (int64_t NI = 0; NI < N; ++NI) {
        double Acc = 0.0;
        for (int64_t KI = 0; KI < K; ++KI) {
          const int64_t AIdx =
              AOff + (TransA ? KI * M + MI : MI * K + KI);
          const int64_t BIdx =
              BOff + (TransB ? NI * K + KI : KI * N + NI);
          Acc += loadElem(A, AIdx) * loadElem(B, BIdx);
        }
        storeElem(Out, COff + MI * N + NI, Acc);
      }
    }
  }
  return Out;
}

TensorData evalUnary(OpKind Kind, const TensorData &X, DataType OutTy) {
  TensorData Out(OutTy, X.shape());
  const int64_t N = X.numElements();
  for (int64_t I = 0; I < N; ++I) {
    const double V = loadElem(X, I);
    double R = 0.0;
    switch (Kind) {
    case OpKind::ReLU: R = V > 0 ? V : 0; break;
    case OpKind::Exp: R = std::exp(V); break;
    case OpKind::Tanh: R = std::tanh(V); break;
    case OpKind::Sqrt: R = std::sqrt(V); break;
    case OpKind::Reciprocal: R = 1.0 / V; break;
    case OpKind::Square: R = V * V; break;
    case OpKind::Sigmoid: R = 1.0 / (1.0 + std::exp(-V)); break;
    case OpKind::Round: R = std::nearbyint(V); break;
    case OpKind::Abs: R = std::abs(V); break;
    default: GC_UNREACHABLE("not a unary op");
    }
    storeElem(Out, I, R);
  }
  return Out;
}

TensorData evalBinary(OpKind Kind, const TensorData &A, const TensorData &B,
                      DataType OutTy) {
  const std::vector<int64_t> OutShape = broadcastShapes(A.shape(), B.shape());
  TensorData Out(OutTy, OutShape);
  const auto OutStrides = rowMajorStrides(OutShape);
  const auto AStrides = rowMajorStrides(A.shape());
  const auto BStrides = rowMajorStrides(B.shape());
  const int64_t N = Out.numElements();
  for (int64_t I = 0; I < N; ++I) {
    const double X = loadElem(
        A, broadcastIndex(I, OutShape, OutStrides, A.shape(), AStrides));
    const double Y = loadElem(
        B, broadcastIndex(I, OutShape, OutStrides, B.shape(), BStrides));
    double R = 0.0;
    switch (Kind) {
    case OpKind::Add: R = X + Y; break;
    case OpKind::Sub: R = X - Y; break;
    case OpKind::Mul: R = X * Y; break;
    case OpKind::Div: R = X / Y; break;
    case OpKind::Max: R = std::max(X, Y); break;
    case OpKind::Min: R = std::min(X, Y); break;
    default: GC_UNREACHABLE("not a binary op");
    }
    storeElem(Out, I, R);
  }
  return Out;
}

TensorData evalReduce(const Op &O, const TensorData &X, DataType OutTy) {
  std::vector<int64_t> Axes = O.getAttrIntVec("axes");
  if (Axes.empty())
    Axes.push_back(X.rank() - 1);
  for (int64_t &A : Axes)
    if (A < 0)
      A += X.rank();
  const bool KeepDims = O.getAttrInt("keep_dims", 1) != 0;
  std::vector<bool> Reduced(static_cast<size_t>(X.rank()), false);
  for (int64_t A : Axes)
    Reduced[static_cast<size_t>(A)] = true;

  std::vector<int64_t> OutShape;
  for (int64_t D = 0; D < X.rank(); ++D) {
    if (!Reduced[static_cast<size_t>(D)])
      OutShape.push_back(X.dim(D));
    else if (KeepDims)
      OutShape.push_back(1);
  }
  if (OutShape.empty())
    OutShape.push_back(1);
  TensorData Out(OutTy, OutShape);

  const bool IsMax = O.kind() == OpKind::ReduceMax;
  Out.fillConstant(IsMax ? -1e30 : 0.0);

  const auto InStrides = rowMajorStrides(X.shape());
  const auto OutStrides = rowMajorStrides(Out.shape());
  const int64_t N = X.numElements();
  for (int64_t I = 0; I < N; ++I) {
    // Map input coordinate to output coordinate (drop/one reduced dims).
    int64_t OutIdx = 0;
    int64_t OutD = 0;
    for (int64_t D = 0; D < X.rank(); ++D) {
      const int64_t Coord = (I / InStrides[D]) % X.dim(D);
      if (Reduced[static_cast<size_t>(D)]) {
        if (KeepDims)
          ++OutD;
        continue;
      }
      OutIdx += Coord * OutStrides[static_cast<size_t>(OutD)];
      ++OutD;
    }
    const double V = loadElem(X, I);
    const double Cur = loadElem(Out, OutIdx);
    storeElem(Out, OutIdx, IsMax ? std::max(Cur, V) : Cur + V);
  }
  return Out;
}

TensorData evalTranspose(const Op &O, const TensorData &X, DataType OutTy) {
  std::vector<int64_t> Perm = O.getAttrIntVec("perm");
  if (Perm.empty()) {
    // Default: swap last two dims.
    for (int64_t D = 0; D < X.rank(); ++D)
      Perm.push_back(D);
    if (Perm.size() >= 2)
      std::swap(Perm[Perm.size() - 1], Perm[Perm.size() - 2]);
  }
  std::vector<int64_t> OutShape(Perm.size());
  for (size_t D = 0; D < Perm.size(); ++D)
    OutShape[D] = X.dim(Perm[D]);
  TensorData Out(OutTy, OutShape);
  const auto InStrides = rowMajorStrides(X.shape());
  const auto OutStrides = rowMajorStrides(OutShape);
  const int64_t N = X.numElements();
  for (int64_t I = 0; I < N; ++I) {
    int64_t InIdx = 0;
    for (size_t D = 0; D < Perm.size(); ++D) {
      const int64_t Coord = (I / OutStrides[D]) % OutShape[D];
      InIdx += Coord * InStrides[static_cast<size_t>(Perm[D])];
    }
    storeElem(Out, I, loadElem(X, InIdx));
  }
  return Out;
}

TensorData evalCast(const Op &O, const TensorData &X, DataType OutTy) {
  TensorData Out(OutTy, X.shape());
  const bool DoRound = O.getAttrInt("round", 0) != 0;
  const int64_t N = X.numElements();
  for (int64_t I = 0; I < N; ++I) {
    double V = loadElem(X, I);
    if (DoRound && !isFloatType(OutTy))
      V = std::nearbyint(V);
    storeElem(Out, I, V);
  }
  return Out;
}

/// Per-channel aware scale/zp lookup for quantize/dequantize.
struct QuantParams {
  std::vector<double> Scales;
  std::vector<int64_t> Zps;
  int64_t Axis = -1;

  static QuantParams fromOp(const Op &O) {
    QuantParams P;
    P.Scales = O.getAttrFloatVec("scales");
    if (P.Scales.empty())
      P.Scales.push_back(O.getAttrFloat("scale", 1.0));
    P.Zps = O.getAttrIntVec("zps");
    if (P.Zps.empty())
      P.Zps.push_back(O.getAttrInt("zp", 0));
    P.Axis = O.getAttrInt("axis", -1);
    return P;
  }

  double scaleFor(int64_t Channel) const {
    return Scales.size() == 1 ? Scales[0]
                              : Scales[static_cast<size_t>(Channel)];
  }
  int64_t zpFor(int64_t Channel) const {
    return Zps.size() == 1 ? Zps[0] : Zps[static_cast<size_t>(Channel)];
  }
};

/// Channel coordinate of linear index \p I along \p Axis of \p Shape.
int64_t channelOf(int64_t I, const std::vector<int64_t> &Shape,
                  const std::vector<int64_t> &Strides, int64_t Axis) {
  if (Axis < 0)
    return 0;
  return (I / Strides[static_cast<size_t>(Axis)]) %
         Shape[static_cast<size_t>(Axis)];
}

TensorData evalQuantize(const Op &O, const TensorData &X, DataType OutTy) {
  const QuantParams P = QuantParams::fromOp(O);
  TensorData Out(OutTy, X.shape());
  const auto Strides = rowMajorStrides(X.shape());
  const int64_t N = X.numElements();
  for (int64_t I = 0; I < N; ++I) {
    const int64_t Ch = channelOf(I, X.shape(), Strides, P.Axis);
    const double Q =
        std::nearbyint(loadElem(X, I) / P.scaleFor(Ch)) + P.zpFor(Ch);
    storeElem(Out, I, Q); // storeElem saturates to the target dtype
  }
  return Out;
}

TensorData evalDequantize(const Op &O, const TensorData &X, DataType OutTy) {
  const QuantParams P = QuantParams::fromOp(O);
  TensorData Out(OutTy, X.shape());
  const auto Strides = rowMajorStrides(X.shape());
  const int64_t N = X.numElements();
  for (int64_t I = 0; I < N; ++I) {
    const int64_t Ch = channelOf(I, X.shape(), Strides, P.Axis);
    storeElem(Out, I,
              (loadElem(X, I) - static_cast<double>(P.zpFor(Ch))) *
                  P.scaleFor(Ch));
  }
  return Out;
}

TensorData evalSoftmax(const Op &O, const TensorData &X, DataType OutTy) {
  int64_t Axis = O.getAttrInt("axis", -1);
  if (Axis < 0)
    Axis += X.rank();
  assert(Axis == X.rank() - 1 && "reference softmax supports last axis");
  (void)Axis;
  const int64_t Cols = X.dim(X.rank() - 1);
  const int64_t Rows = X.numElements() / Cols;
  TensorData Out(OutTy, X.shape());
  for (int64_t R = 0; R < Rows; ++R) {
    double MaxV = -1e300;
    for (int64_t C = 0; C < Cols; ++C)
      MaxV = std::max(MaxV, loadElem(X, R * Cols + C));
    double Sum = 0.0;
    for (int64_t C = 0; C < Cols; ++C)
      Sum += std::exp(loadElem(X, R * Cols + C) - MaxV);
    for (int64_t C = 0; C < Cols; ++C)
      storeElem(Out, R * Cols + C,
                std::exp(loadElem(X, R * Cols + C) - MaxV) / Sum);
  }
  return Out;
}

TensorData evalGelu(const TensorData &X, DataType OutTy) {
  TensorData Out(OutTy, X.shape());
  constexpr double Sqrt2OverPi = 0.7978845608028654;
  constexpr double Coeff = 0.044715;
  const int64_t N = X.numElements();
  for (int64_t I = 0; I < N; ++I) {
    const double V = loadElem(X, I);
    const double Inner = Sqrt2OverPi * (V + Coeff * V * V * V);
    storeElem(Out, I, 0.5 * V * (1.0 + std::tanh(Inner)));
  }
  return Out;
}

TensorData evalBatchNorm(const Op &O,
                         const std::vector<const TensorData *> &In,
                         DataType OutTy) {
  // Inputs: x, gamma, beta, mean, var; normalizes the last dim (channels).
  const TensorData &X = *In[0];
  const double Eps = O.getAttrFloat("epsilon", 1e-5);
  const int64_t C = X.dim(X.rank() - 1);
  const int64_t Rows = X.numElements() / C;
  TensorData Out(OutTy, X.shape());
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t CI = 0; CI < C; ++CI) {
      const double V = loadElem(X, R * C + CI);
      const double G = loadElem(*In[1], CI);
      const double Bt = loadElem(*In[2], CI);
      const double Mean = loadElem(*In[3], CI);
      const double Var = loadElem(*In[4], CI);
      storeElem(Out, R * C + CI,
                G * (V - Mean) / std::sqrt(Var + Eps) + Bt);
    }
  return Out;
}

TensorData evalLayerNorm(const Op &O,
                         const std::vector<const TensorData *> &In,
                         DataType OutTy) {
  // Inputs: x, gamma, beta; normalizes the last dim.
  const TensorData &X = *In[0];
  const double Eps = O.getAttrFloat("epsilon", 1e-5);
  const int64_t C = X.dim(X.rank() - 1);
  const int64_t Rows = X.numElements() / C;
  TensorData Out(OutTy, X.shape());
  for (int64_t R = 0; R < Rows; ++R) {
    double Mean = 0.0;
    for (int64_t CI = 0; CI < C; ++CI)
      Mean += loadElem(X, R * C + CI);
    Mean /= static_cast<double>(C);
    double Var = 0.0;
    for (int64_t CI = 0; CI < C; ++CI) {
      const double D = loadElem(X, R * C + CI) - Mean;
      Var += D * D;
    }
    Var /= static_cast<double>(C);
    const double Inv = 1.0 / std::sqrt(Var + Eps);
    for (int64_t CI = 0; CI < C; ++CI)
      storeElem(Out, R * C + CI,
                loadElem(*In[1], CI) * (loadElem(X, R * C + CI) - Mean) *
                        Inv +
                    loadElem(*In[2], CI));
  }
  return Out;
}

} // namespace

std::vector<int64_t> broadcastShapes(const std::vector<int64_t> &A,
                                     const std::vector<int64_t> &B) {
  const size_t Rank = std::max(A.size(), B.size());
  std::vector<int64_t> Out(Rank, 1);
  for (size_t D = 0; D < Rank; ++D) {
    const int64_t AD = D < Rank - A.size() ? 1 : A[D - (Rank - A.size())];
    const int64_t BD = D < Rank - B.size() ? 1 : B[D - (Rank - B.size())];
    if (AD != BD && AD != 1 && BD != 1)
      fatalError("incompatible broadcast shapes");
    Out[D] = std::max(AD, BD);
  }
  return Out;
}

std::vector<TensorData>
evalOpReference(const Graph &G, const Op &O,
                const std::vector<const TensorData *> &Inputs) {
  const DataType OutTy = G.tensor(O.output(0)).Ty;
  switch (O.kind()) {
  case OpKind::MatMul:
    return {evalMatMul(O, *Inputs[0], *Inputs[1], OutTy)};
  case OpKind::ReLU:
  case OpKind::Exp:
  case OpKind::Tanh:
  case OpKind::Sqrt:
  case OpKind::Reciprocal:
  case OpKind::Square:
  case OpKind::Sigmoid:
  case OpKind::Round:
  case OpKind::Abs:
    return {evalUnary(O.kind(), *Inputs[0], OutTy)};
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Max:
  case OpKind::Min:
    return {evalBinary(O.kind(), *Inputs[0], *Inputs[1], OutTy)};
  case OpKind::ReduceSum:
  case OpKind::ReduceMax:
    return {evalReduce(O, *Inputs[0], OutTy)};
  case OpKind::Reorder: {
    // Value-level identity (layout is metadata to the reference).
    TensorData Out(OutTy, Inputs[0]->shape());
    const int64_t N = Inputs[0]->numElements();
    for (int64_t I = 0; I < N; ++I)
      storeElem(Out, I, loadElem(*Inputs[0], I));
    return {std::move(Out)};
  }
  case OpKind::Transpose:
    return {evalTranspose(O, *Inputs[0], OutTy)};
  case OpKind::Reshape: {
    // Same row-major data, new shape.
    TensorData Out(OutTy, G.tensor(O.output(0)).Shape);
    assert(Out.numElements() == Inputs[0]->numElements() &&
           "reshape must preserve element count");
    const int64_t N = Out.numElements();
    for (int64_t I = 0; I < N; ++I)
      storeElem(Out, I, loadElem(*Inputs[0], I));
    return {std::move(Out)};
  }
  case OpKind::Cast:
    return {evalCast(O, *Inputs[0], OutTy)};
  case OpKind::Softmax:
    return {evalSoftmax(O, *Inputs[0], OutTy)};
  case OpKind::GELU:
    return {evalGelu(*Inputs[0], OutTy)};
  case OpKind::BatchNorm:
    return {evalBatchNorm(O, Inputs, OutTy)};
  case OpKind::LayerNorm:
    return {evalLayerNorm(O, Inputs, OutTy)};
  case OpKind::Quantize:
    return {evalQuantize(O, *Inputs[0], OutTy)};
  case OpKind::Dequantize:
    return {evalDequantize(O, *Inputs[0], OutTy)};
  case OpKind::BiasAdd:
    return {evalBinary(OpKind::Add, *Inputs[0], *Inputs[1], OutTy)};
  case OpKind::DequantAcc: {
    // out[r][c] = (acc[r][c] - a_zp * comp[c]) * scales[c]
    const TensorData &Acc = *Inputs[0];
    const TensorData &Comp = *Inputs[1];
    const int64_t AZp = O.getAttrInt("a_zp", 0);
    const std::vector<double> Scales = O.getAttrFloatVec("scales");
    const int64_t Cols = Acc.dim(Acc.rank() - 1);
    const int64_t Rows = Acc.numElements() / Cols;
    TensorData Out(OutTy, Acc.shape());
    for (int64_t R = 0; R < Rows; ++R)
      for (int64_t CI = 0; CI < Cols; ++CI) {
        const double Adj =
            loadElem(Acc, R * Cols + CI) -
            static_cast<double>(AZp) * loadElem(Comp, CI);
        const double Scale =
            Scales.size() == 1 ? Scales[0] : Scales[static_cast<size_t>(CI)];
        storeElem(Out, R * Cols + CI, Adj * Scale);
      }
    return {std::move(Out)};
  }
  case OpKind::FusedOp: {
    const Graph *Sub = O.subgraph();
    assert(Sub && "fused op without subgraph");
    TensorMap SubEnv;
    for (size_t I = 0; I < O.numInputs(); ++I)
      SubEnv[Sub->inputs()[I]] = Inputs[I]->clone();
    evalGraphReference(*Sub, SubEnv);
    std::vector<TensorData> Outs;
    for (int64_t OutId : Sub->outputs())
      Outs.push_back(SubEnv.at(OutId).clone());
    return Outs;
  }
  case OpKind::Sigmoid_:
    break;
  }
  GC_UNREACHABLE("unhandled op kind in reference evaluator");
}

void evalGraphReference(const Graph &G, TensorMap &Env) {
  // Bind constants not already provided.
  for (int64_t TId : G.tensorIds()) {
    if (Env.count(TId))
      continue;
    if (const TensorData *Data = G.constantData(TId))
      Env[TId] = Data->clone();
  }
  for (int64_t OpId : G.topologicalOrder()) {
    const Op &O = G.op(OpId);
    std::vector<const TensorData *> Inputs;
    Inputs.reserve(O.numInputs());
    for (int64_t In : O.inputs()) {
      auto It = Env.find(In);
      if (It == Env.end())
        fatalError("reference evaluation: unbound tensor input");
      Inputs.push_back(&It->second);
    }
    std::vector<TensorData> Outs = evalOpReference(G, O, Inputs);
    assert(Outs.size() == O.numOutputs() && "output arity mismatch");
    for (size_t I = 0; I < Outs.size(); ++I)
      Env[O.output(I)] = std::move(Outs[I]);
  }
}

std::vector<TensorData> runGraphReference(const Graph &G, TensorMap Env) {
  evalGraphReference(G, Env);
  std::vector<TensorData> Outs;
  Outs.reserve(G.outputs().size());
  for (int64_t OutId : G.outputs())
    Outs.push_back(Env.at(OutId).clone());
  return Outs;
}

} // namespace graph
} // namespace gc
