//===- program_verifier.cpp - Bytecode program verification ---------------===//
///
/// \file
/// The compiled-Program verifier. Three layers:
///
///  1. A structural pass over every instruction and descriptor: opcode
///     validity, every register operand inside the register image, jump
///     targets inside the code block, Load/Store buffer ids inside the
///     buffer table, Call/Par descriptor indices valid, kernel pointers
///     non-null, CallDesc buffer/dynamic-scalar counts within the
///     marshalling limits, and buffer metadata consistent (element size,
///     arena placement).
///
///  2. A structured abstract interpretation over the canonical control
///     flow the program builder emits (documented at the top of
///     exec/program.cpp): serial loops are recognized from their
///     JumpIfGeI guard + LoopNext back edge, parallel nests from their
///     guard + ParallelFor descriptor. Register values live in the
///     symbolic domain of verify/symbolic.h: below the relational tier
///     every value is an interval box (the PR-6 analysis unchanged); at
///     GC_VERIFY=relational loop variables become bound-carrying symbols
///     and strength-reduced induction registers are reconstructed as
///     entry + (Imm/Step)·(var − begin), so correlated edge-tile offsets
///     are proven exactly. Within that state, every scalar load/store
///     offset register, every kernel-call buffer offset — and, at the
///     relational tier, every kernel-call tile/flat footprint — is
///     proven inside its buffer's element extent. Control flow that does
///     not fit the canonical shapes is rejected as unstructured — the
///     executor's dispatch loop has no checks, so only programs the
///     verifier can understand are accepted.
///
///  3. At the relational tier, a static race proof per parallel loop:
///     the body walk collects the load/store/kernel-call footprints of
///     one abstract iteration, and verify/relational.h proves every
///     cross-iteration pair with a write on a shared (non-thread-local)
///     buffer disjoint, or rejects with a Status naming the two
///     conflicting footprints. Layers 2+3 at full relational strength
///     are the precondition for executing mmap-loaded Programs from the
///     persistent cache, which is why verifyLoadedProgram always runs
///     them regardless of GC_VERIFY.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "exec/program.h"
#include "support/str.h"
#include "verify/relational.h"
#include "verify/symbolic.h"

#include <vector>

namespace gc {
namespace verify {

namespace {

using exec::CallDesc;
using exec::Instr;
using exec::Opcode;
using exec::ParDesc;
using exec::Program;
using tir::Intrinsic;

/// Abstract frame: one symbolic value per register (I field only; float
/// values are never used for addressing).
using RegState = std::vector<SymVal>;

class ProgramVerifier {
public:
  ProgramVerifier(const Program &P, const char *Context, bool Relational)
      : P(P), Context(Context), Ctx(Relational) {}

  Status run() {
    if (Status S = checkStructure(); !S.isOk())
      return S;
    RegState R(P.NumRegs, SymVal::top());
    for (size_t I = 0; I < P.InitRegs.size(); ++I)
      R[I] = SymVal::constant(P.InitRegs[I].I);
    return walkRegion(0, P.Code.size(), R);
  }

private:
  const Program &P;
  const char *Context;
  SymCtx Ctx;
  /// Non-null while walking a parallel body at the relational tier:
  /// every footprint the body touches is appended for the race proof.
  std::vector<Footprint> *Collect = nullptr;
  bool InParallel = false;

  Status err(size_t Pc, const std::string &What) const {
    return Status::error(
        StatusCode::Internal,
        formatString("program verifier%s%s: %s: instr %zu: %s",
                     *Context ? " after " : "", Context, P.Name.c_str(), Pc,
                     What.c_str()));
  }

  /// Destination register of \p I, or -1 when the opcode writes none.
  static int destReg(const Instr &I) {
    switch (I.Op) {
    case Opcode::Mov:
    case Opcode::I2F:
    case Opcode::F2I:
    case Opcode::AddI:
    case Opcode::SubI:
    case Opcode::MulI:
    case Opcode::DivI:
    case Opcode::ModI:
    case Opcode::MinI:
    case Opcode::MaxI:
    case Opcode::AddF:
    case Opcode::SubF:
    case Opcode::MulF:
    case Opcode::DivF:
    case Opcode::ModF:
    case Opcode::MinF:
    case Opcode::MaxF:
    case Opcode::AddImmI:
    case Opcode::LoadF32:
    case Opcode::LoadF64:
    case Opcode::LoadS32:
    case Opcode::LoadS8:
    case Opcode::LoadU8:
    case Opcode::LoopNext:
      return I.A;
    default:
      return -1;
    }
  }

  int64_t bufferElems(int BufferId) const {
    const exec::BufferInfo &B = P.Buffers[static_cast<size_t>(BufferId)];
    return B.ElemSize > 0 ? B.Bytes / B.ElemSize : 0;
  }

  Status checkStructure() const {
    if (P.InitRegs.size() != P.NumRegs)
      return Status::error(
          StatusCode::Internal,
          formatString("program verifier%s%s: %s: init image has %zu "
                       "registers, program declares %u",
                       *Context ? " after " : "", Context, P.Name.c_str(),
                       P.InitRegs.size(), P.NumRegs));
    for (size_t I = 0; I < P.Buffers.size(); ++I) {
      const exec::BufferInfo &B = P.Buffers[I];
      if (B.Bytes < 0 || B.ElemSize <= 0 || B.Bytes % B.ElemSize != 0)
        return err(0, formatString("buffer %zu has inconsistent size "
                                   "metadata (%lld bytes, elem size %lld)",
                                   I, (long long)B.Bytes,
                                   (long long)B.ElemSize));
      if (B.Scope == tir::BufferScope::Temp && B.ArenaOffset >= 0 &&
          B.ArenaOffset + B.Bytes > P.ArenaBytes)
        return err(0, formatString("buffer %zu arena slot [%lld, %lld) "
                                   "exceeds the %lld byte arena",
                                   I, (long long)B.ArenaOffset,
                                   (long long)(B.ArenaOffset + B.Bytes),
                                   (long long)P.ArenaBytes));
    }
    const auto RegOk = [&](uint16_t R) { return R < P.NumRegs; };
    for (size_t Pc = 0; Pc < P.Code.size(); ++Pc) {
      const Instr &I = P.Code[Pc];
      if (static_cast<uint8_t>(I.Op) >
          static_cast<uint8_t>(Opcode::ParallelFor))
        return err(Pc, formatString("invalid opcode %u",
                                    static_cast<unsigned>(I.Op)));
      switch (I.Op) {
      case Opcode::Mov:
      case Opcode::I2F:
      case Opcode::F2I:
        if (!RegOk(I.A) || !RegOk(I.B))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::MulI:
      case Opcode::DivI:
      case Opcode::ModI:
      case Opcode::MinI:
      case Opcode::MaxI:
      case Opcode::AddF:
      case Opcode::SubF:
      case Opcode::MulF:
      case Opcode::DivF:
      case Opcode::ModF:
      case Opcode::MinF:
      case Opcode::MaxF:
      case Opcode::LoopNext:
        if (!RegOk(I.A) || !RegOk(I.B) || !RegOk(I.C))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::AddImmI:
        if (!RegOk(I.A))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::LoadF32:
      case Opcode::LoadF64:
      case Opcode::LoadS32:
      case Opcode::LoadS8:
      case Opcode::LoadU8:
      case Opcode::StoreF32:
      case Opcode::StoreF64:
      case Opcode::StoreS32:
      case Opcode::StoreS8:
      case Opcode::StoreU8:
        if (!RegOk(I.A) || !RegOk(I.C))
          return err(Pc, "register operand outside the register image");
        if (I.B >= P.Buffers.size())
          return err(Pc, formatString("references unknown buffer %u", I.B));
        break;
      case Opcode::JumpIfGeI:
        if (!RegOk(I.A) || !RegOk(I.B))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::CallKernel: {
        if (I.Target < 0 ||
            static_cast<size_t>(I.Target) >= P.Calls.size())
          return err(Pc, formatString("call descriptor %d out of range",
                                      I.Target));
        const CallDesc &C = P.Calls[static_cast<size_t>(I.Target)];
        if (!C.Fn)
          return err(Pc, "kernel call has a null function pointer");
        if (C.NumBufs > 4 || C.NumDyn > 12)
          return err(Pc,
                     formatString("kernel call exceeds marshalling limits "
                                  "(%u buffers, %u dynamic scalars)",
                                  C.NumBufs, C.NumDyn));
        for (uint8_t BI = 0; BI < C.NumBufs; ++BI) {
          if (C.Bufs[BI].BufferId < 0 ||
              static_cast<size_t>(C.Bufs[BI].BufferId) >= P.Buffers.size())
            return err(Pc, formatString("kernel call buffer arg %u "
                                        "references unknown buffer %d",
                                        BI, C.Bufs[BI].BufferId));
          if (C.Bufs[BI].HasOffset && !RegOk(C.Bufs[BI].OffsetReg))
            return err(Pc, "kernel call offset register outside the "
                           "register image");
        }
        for (uint8_t DI = 0; DI < C.NumDyn; ++DI) {
          if (C.Dyns[DI].Idx >= 12)
            return err(Pc, "kernel call dynamic scalar index out of range");
          if (!RegOk(C.Dyns[DI].Reg))
            return err(Pc, "kernel call dynamic scalar register outside "
                           "the register image");
        }
        break;
      }
      case Opcode::ParallelFor: {
        if (I.Target < 0 || static_cast<size_t>(I.Target) >= P.Pars.size())
          return err(Pc, formatString("parallel descriptor %d out of range",
                                      I.Target));
        const ParDesc &D = P.Pars[static_cast<size_t>(I.Target)];
        if (!RegOk(D.VarReg) || !RegOk(D.BeginReg) || !RegOk(D.EndReg) ||
            !RegOk(D.StepReg))
          return err(Pc, "parallel descriptor register outside the "
                         "register image");
        if (Pc + 1 + D.BodyLen > P.Code.size())
          return err(Pc, formatString("parallel body of %u instructions "
                                      "runs past the end of the program",
                                      D.BodyLen));
        break;
      }
      }
      if (I.Op == Opcode::JumpIfGeI || I.Op == Opcode::LoopNext) {
        const int64_t T = static_cast<int64_t>(Pc) + I.Target;
        if (T < 0 || T > static_cast<int64_t>(P.Code.size()))
          return err(Pc, formatString("jump target %lld outside the code "
                                      "block",
                                      (long long)T));
      }
    }
    return Status::ok();
  }

  /// Registers written by instructions in [Begin, End).
  std::vector<uint16_t> writtenRegs(size_t Begin, size_t End) const {
    std::vector<bool> Seen(P.NumRegs, false);
    std::vector<uint16_t> Out;
    for (size_t Pc = Begin; Pc < End; ++Pc)
      if (int D = destReg(P.Code[Pc]); D >= 0 && !Seen[static_cast<size_t>(D)]) {
        Seen[static_cast<size_t>(D)] = true;
        Out.push_back(static_cast<uint16_t>(D));
      }
    return Out;
  }

  Status checkOffset(size_t Pc, uint16_t BufferId, const SymVal &Off,
                     const char *What) {
    const int64_t Elems = bufferElems(BufferId);
    const Interval R = Ctx.range(Off);
    if (!R.bounded()) {
      noteBoundsUndecided();
      return Status::ok();
    }
    if (R.Lo < 0 || R.Hi >= Elems)
      return err(Pc, formatString("%s offset range [%lld, %lld] is outside "
                                  "buffer %u's %lld elements",
                                  What, (long long)R.Lo, (long long)R.Hi,
                                  BufferId, (long long)Elems));
    noteBoundsProved();
    return Status::ok();
  }

  void record(Footprint F) {
    if (Collect)
      Collect->push_back(std::move(F));
  }

  /// Builds the per-buffer-argument footprints of one kernel call from
  /// the documented scalar conventions (tir/intrinsics.h) and appends
  /// them to \p Out. Tile footprints whose leading dimension is not a
  /// compile-time constant degrade to Whole (sound for the race proof;
  /// counted undecided for bounds). Returns false for an intrinsic the
  /// table does not cover (none today; future-proofing).
  void callFootprints(size_t Pc, const CallDesc &C, const RegState &R,
                      std::vector<Footprint> &Out,
                      std::vector<bool> &Degraded) {
    SymVal Sc[12];
    for (int I = 0; I < 12; ++I)
      Sc[I] = SymVal::constant(C.SI[I]);
    for (uint8_t DI = 0; DI < C.NumDyn; ++DI)
      if (!C.Dyns[DI].IsF64 && C.Dyns[DI].Idx < 12)
        Sc[C.Dyns[DI].Idx] = R[C.Dyns[DI].Reg];
    const SymVal One = SymVal::constant(1);
    const uint8_t WMask = tir::intrinsicWriteMask(C.In);
    const auto ArgOff = [&](int Arg) {
      return C.Bufs[Arg].HasOffset ? R[C.Bufs[Arg].OffsetReg]
                                   : SymVal::constant(0);
    };
    const auto Base = [&](int Arg, const char *AN) {
      Footprint F;
      F.Buffer = C.Bufs[Arg].BufferId;
      F.Write = (WMask >> Arg) & 1;
      F.Site = formatString("instr %zu (%s arg %s)", Pc,
                            tir::intrinsicName(C.In), AN);
      return F;
    };
    const auto Tile = [&](int Arg, const SymVal &Rows, const SymVal &Cols,
                          const SymVal &Ld, const char *AN) {
      Footprint F = Base(Arg, AN);
      int64_t LdC;
      if (Ld.isConstant(LdC)) {
        F.Sh = Footprint::Shape::Tile;
        F.Off = ArgOff(Arg);
        F.Rows = Rows;
        F.Cols = Cols;
        F.Ld = LdC;
        Degraded.push_back(false);
      } else {
        F.Sh = Footprint::Shape::Whole;
        Degraded.push_back(true);
      }
      Out.push_back(std::move(F));
    };
    const auto Flat = [&](int Arg, const SymVal &Len, const char *AN) {
      Footprint F = Base(Arg, AN);
      F.Sh = Footprint::Shape::Flat;
      F.Off = ArgOff(Arg);
      F.Len = Len;
      Degraded.push_back(false);
      Out.push_back(std::move(F));
    };
    const auto Whole = [&](int Arg, const char *AN) {
      // Genuine by-construction whole-buffer access (pack destinations /
      // packed unpack sources): trivially in-bounds, not a degradation.
      Out.push_back(Base(Arg, AN));
      Degraded.push_back(false);
    };

    switch (C.In) {
    case Intrinsic::BrgemmF32:
    case Intrinsic::BrgemmU8S8: {
      // A flat span: (Batch-1)*AStrideB + (M-1)*Lda + K.
      const SymVal BatchM1 = Ctx.add(Sc[8], SymVal::constant(-1));
      Flat(0,
           Ctx.add(Ctx.mul(BatchM1, Sc[6]),
                   Ctx.add(Ctx.mul(Ctx.sub(Sc[0], One), Sc[3]), Sc[2])),
           "A");
      if (C.In == Intrinsic::BrgemmF32) {
        Flat(1,
             Ctx.add(Ctx.mul(BatchM1, Sc[7]),
                     Ctx.add(Ctx.mul(Ctx.sub(Sc[2], One), Sc[4]), Sc[1])),
             "B");
      } else {
        // VNNI layout reads ceil(K/4) row groups of 4*NPadded.
        int64_t KC;
        const SymVal KPad = Sc[2].isConstant(KC)
                                ? SymVal::constant(((KC + 3) / 4) * 4)
                                : Ctx.add(Sc[2], SymVal::constant(3));
        Flat(1, Ctx.add(Ctx.mul(BatchM1, Sc[7]), Ctx.mul(KPad, Sc[4])),
             "B");
      }
      Tile(2, Sc[0], Sc[1], Sc[5], "C");
      return;
    }
    case Intrinsic::ReluTile:
    case Intrinsic::ExpTile:
    case Intrinsic::TanhTile:
    case Intrinsic::SqrtTile:
    case Intrinsic::RecipTile:
    case Intrinsic::SquareTile:
    case Intrinsic::SigmoidTile:
    case Intrinsic::GeluTile:
    case Intrinsic::AffineTile:
    case Intrinsic::FillTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "X");
      return;
    case Intrinsic::AddTile:
    case Intrinsic::SubTile:
    case Intrinsic::MulTile:
    case Intrinsic::DivTile:
    case Intrinsic::MaxTile:
    case Intrinsic::MinTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "X");
      Tile(1, Sc[0], Sc[1], Sc[3], "Y");
      return;
    case Intrinsic::AddRowVecTile:
    case Intrinsic::SubRowVecTile:
    case Intrinsic::MulRowVecTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "X");
      Flat(1, Sc[1], "V");
      return;
    case Intrinsic::AddColVecTile:
    case Intrinsic::SubColVecTile:
    case Intrinsic::MulColVecTile:
    case Intrinsic::DivColVecTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "X");
      Flat(1, Sc[0], "V");
      return;
    case Intrinsic::ReduceSumRowsTile:
    case Intrinsic::ReduceMaxRowsTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "X");
      Flat(1, Sc[0], "Out");
      return;
    case Intrinsic::CopyTile:
    case Intrinsic::CopyTileRaw:
      Tile(0, Sc[0], Sc[1], Sc[2], "D");
      Tile(1, Sc[0], Sc[1], Sc[3], "S");
      return;
    case Intrinsic::TransposeTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "D");
      Tile(1, Sc[1], Sc[0], Sc[3], "S");
      return;
    case Intrinsic::Permute0213: {
      const SymVal Prod =
          Ctx.mul(Ctx.mul(Sc[0], Sc[1]), Ctx.mul(Sc[2], Sc[3]));
      Flat(0, Prod, "D");
      Flat(1, Prod, "S");
      return;
    }
    case Intrinsic::QuantU8Tile:
    case Intrinsic::QuantS8Tile:
    case Intrinsic::DequantU8Tile:
    case Intrinsic::CastS32F32Tile:
      Tile(0, Sc[0], Sc[1], Sc[2], "D");
      Tile(1, Sc[0], Sc[1], Sc[3], "S");
      return;
    case Intrinsic::DequantS8PerChannelTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "D");
      Tile(1, Sc[0], Sc[1], Sc[3], "S");
      Flat(2, Sc[1], "Scale");
      return;
    case Intrinsic::DequantAccTile:
      Tile(0, Sc[0], Sc[1], Sc[2], "D");
      Tile(1, Sc[0], Sc[1], Sc[3], "S");
      Flat(2, Sc[1], "Comp");
      Flat(3, Sc[1], "Scale");
      return;
    case Intrinsic::PackAF32:
    case Intrinsic::PackAU8: {
      Whole(0, "D");
      int64_t Tr;
      if (Sc[5].isConstant(Tr))
        Tile(1, Tr ? Sc[1] : Sc[0], Tr ? Sc[0] : Sc[1], Sc[2], "S");
      else {
        Out.push_back(Base(1, "S"));
        Degraded.push_back(true);
      }
      return;
    }
    case Intrinsic::PackBF32:
    case Intrinsic::PackBS8Vnni: {
      Whole(0, "D");
      int64_t Tr;
      if (Sc[5].isConstant(Tr))
        Tile(1, Tr ? Sc[1] : Sc[0], Tr ? Sc[0] : Sc[1], Sc[2], "S");
      else {
        Out.push_back(Base(1, "S"));
        Degraded.push_back(true);
      }
      return;
    }
    case Intrinsic::UnpackAF32:
    case Intrinsic::UnpackAU8:
      Tile(0, Sc[0], Sc[1], Sc[4], "D");
      Whole(1, "S");
      return;
    }
  }

  /// Bounds verdict for one footprint (relational tier only — the box
  /// tier keeps the PR-6 base-offset-only checks to stay regression-free
  /// on min-shaped extents it cannot express).
  Status checkFootprintBounds(size_t Pc, const Footprint &F, bool Degraded) {
    const int64_t Elems = bufferElems(F.Buffer);
    switch (F.Sh) {
    case Footprint::Shape::Whole:
      if (Degraded)
        noteBoundsUndecided(); // lost shape, cannot decide
      return Status::ok();     // genuine whole-buffer: in-bounds by design
    case Footprint::Shape::Flat: {
      if (Ctx.ub(F.Len) <= 0) {
        noteBoundsProved();
        return Status::ok();
      }
      const int64_t Lo = Ctx.lb(F.Off);
      const int64_t Hi =
          Ctx.ub(Ctx.add(F.Off, Ctx.add(F.Len, SymVal::constant(-1))));
      if (Lo != Interval::kMin && Hi != Interval::kMax &&
          !(Lo >= 0 && Hi < Elems))
        return err(Pc, formatString("%s: flat footprint [%lld, %lld] is "
                                    "outside buffer %d's %lld elements",
                                    F.Site.c_str(), (long long)Lo,
                                    (long long)Hi, F.Buffer,
                                    (long long)Elems));
      if (Lo == Interval::kMin || Hi == Interval::kMax) {
        noteBoundsUndecided();
        return Status::ok();
      }
      noteBoundsProved();
      return Status::ok();
    }
    case Footprint::Shape::Tile: {
      if (Ctx.ub(F.Rows) <= 0 || Ctx.ub(F.Cols) <= 0) {
        noteBoundsProved();
        return Status::ok();
      }
      const SymVal RowsM1 = Ctx.add(F.Rows, SymVal::constant(-1));
      const int64_t Lo = Ctx.lb(
          Ctx.add(F.Off, Ctx.scale(RowsM1, std::min<int64_t>(F.Ld, 0))));
      const int64_t Hi = Ctx.ub(Ctx.add(
          F.Off, Ctx.add(Ctx.scale(RowsM1, std::max<int64_t>(F.Ld, 0)),
                         Ctx.add(F.Cols, SymVal::constant(-1)))));
      if (Lo != Interval::kMin && Hi != Interval::kMax &&
          !(Lo >= 0 && Hi < Elems))
        return err(Pc, formatString("%s: tile footprint [%lld, %lld] is "
                                    "outside buffer %d's %lld elements",
                                    F.Site.c_str(), (long long)Lo,
                                    (long long)Hi, F.Buffer,
                                    (long long)Elems));
      if (Lo == Interval::kMin || Hi == Interval::kMax) {
        noteBoundsUndecided();
        return Status::ok();
      }
      noteBoundsProved();
      return Status::ok();
    }
    }
    return Status::ok();
  }

  /// Straight-line transfer of one non-control-flow instruction.
  Status step(size_t Pc, RegState &R) {
    const Instr &I = P.Code[Pc];
    switch (I.Op) {
    case Opcode::Mov:
      R[I.A] = R[I.B];
      return Status::ok();
    case Opcode::I2F:
      // Writes only the F view; the I view of A is PRESERVED by the
      // executor (Value fields are independent) — but being conservative
      // about Value-struct semantics costs nothing here.
      R[I.A] = SymVal::top();
      return Status::ok();
    case Opcode::F2I:
      R[I.A] = SymVal::top();
      return Status::ok();
    case Opcode::AddI:
      R[I.A] = Ctx.add(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::SubI:
      R[I.A] = Ctx.sub(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::MulI:
      R[I.A] = Ctx.mul(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::DivI:
      R[I.A] = Ctx.div(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::ModI:
      R[I.A] = Ctx.mod(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::MinI:
      R[I.A] = Ctx.min(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::MaxI:
      R[I.A] = Ctx.max(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::AddF:
    case Opcode::SubF:
    case Opcode::MulF:
    case Opcode::DivF:
    case Opcode::ModF:
    case Opcode::MinF:
    case Opcode::MaxF:
      return Status::ok(); // float-only: the I view is untouched
    case Opcode::AddImmI:
      R[I.A] = Ctx.add(R[I.A], SymVal::constant(I.Imm));
      return Status::ok();
    case Opcode::LoadF32:
    case Opcode::LoadF64:
    case Opcode::LoadS32:
    case Opcode::LoadS8:
    case Opcode::LoadU8:
      if (Status S = checkOffset(Pc, I.B, R[I.C], "load"); !S.isOk())
        return S;
      if (Collect) {
        Footprint F;
        F.Buffer = I.B;
        F.Write = false;
        F.Sh = Footprint::Shape::Flat;
        F.Off = R[I.C];
        F.Len = SymVal::constant(1);
        F.Site = formatString("instr %zu (load)", Pc);
        record(std::move(F));
      }
      R[I.A] = SymVal::top();
      return Status::ok();
    case Opcode::StoreF32:
    case Opcode::StoreF64:
    case Opcode::StoreS32:
    case Opcode::StoreS8:
    case Opcode::StoreU8:
      if (Collect) {
        Footprint F;
        F.Buffer = I.B;
        F.Write = true;
        F.Sh = Footprint::Shape::Flat;
        F.Off = R[I.C];
        F.Len = SymVal::constant(1);
        F.Site = formatString("instr %zu (store)", Pc);
        record(std::move(F));
      }
      return checkOffset(Pc, I.B, R[I.C], "store");
    case Opcode::CallKernel: {
      const CallDesc &C = P.Calls[static_cast<size_t>(I.Target)];
      for (uint8_t BI = 0; BI < C.NumBufs; ++BI)
        if (C.Bufs[BI].HasOffset)
          if (Status S = checkOffset(
                  Pc, static_cast<uint16_t>(C.Bufs[BI].BufferId),
                  R[C.Bufs[BI].OffsetReg], "kernel-call buffer");
              !S.isOk())
            return S;
      if (Ctx.relational()) {
        std::vector<Footprint> FPs;
        std::vector<bool> Degraded;
        callFootprints(Pc, C, R, FPs, Degraded);
        for (size_t FI = 0; FI < FPs.size(); ++FI) {
          if (Status S = checkFootprintBounds(Pc, FPs[FI], Degraded[FI]);
              !S.isOk())
            return S;
          record(FPs[FI]);
        }
      }
      return Status::ok();
    }
    default:
      return err(Pc, "internal: control-flow opcode reached straight-line "
                     "transfer");
    }
  }

  /// Box-join of the registers written in [Begin, End) with \p Other
  /// (both states agree outside that set by construction, so their
  /// symbolic values survive the merge untouched).
  void joinWritten(size_t Begin, size_t End, RegState &R,
                   const RegState &Other) {
    for (uint16_t W : writtenRegs(Begin, End))
      R[W] = SymVal::box(Ctx.range(R[W]).join(Ctx.range(Other[W])));
  }

  /// Walks [Begin, End) updating \p R. Control flow must fit the
  /// canonical shapes (see file comment).
  Status walkRegion(size_t Begin, size_t End, RegState &R) {
    size_t Pc = Begin;
    while (Pc < End) {
      const Instr &I = P.Code[Pc];
      switch (I.Op) {
      case Opcode::LoopNext:
        // Every LoopNext must be consumed as the tail of a guarded
        // serial-loop region; meeting one head-on is a stray back edge.
        return err(Pc, "unstructured back edge (LoopNext without a "
                       "matching loop guard)");
      case Opcode::JumpIfGeI: {
        if (I.Target <= 0)
          return err(Pc, "backward or self jump guard is not canonical");
        const size_t T = Pc + static_cast<size_t>(I.Target);
        if (T > End)
          return err(Pc, "jump escapes the enclosing loop region");
        if (Status S = walkGuardedRegion(Pc, T, R); !S.isOk())
          return S;
        Pc = T;
        continue;
      }
      case Opcode::ParallelFor: {
        if (Status S = walkParallel(Pc, End, R); !S.isOk())
          return S;
        Pc += 1 + P.Pars[static_cast<size_t>(I.Target)].BodyLen;
        continue;
      }
      default:
        if (Status S = step(Pc, R); !S.isOk())
          return S;
        ++Pc;
        continue;
      }
    }
    return Status::ok();
  }

  /// Handles the region [Guard+1, T) jumped over by the JumpIfGeI at
  /// \p Guard: a serial loop (ends in LoopNext), a guarded parallel nest
  /// (contains ParallelFor), or a plain forward branch.
  Status walkGuardedRegion(size_t Guard, size_t T, RegState &R) {
    const Instr &G = P.Code[Guard];

    // Serial loop: region tail is the LoopNext advancing the guard's var.
    if (T - 1 > Guard && P.Code[T - 1].Op == Opcode::LoopNext &&
        P.Code[T - 1].A == G.A)
      return walkSerialLoop(Guard, T, R);

    // Guarded parallel nest: entry hoists then ParallelFor whose body
    // extends exactly to the guard target.
    for (size_t Q = Guard + 1; Q < T; ++Q) {
      if (P.Code[Q].Op != Opcode::ParallelFor)
        continue;
      const ParDesc &D = P.Pars[static_cast<size_t>(P.Code[Q].Target)];
      if (Q + 1 + D.BodyLen == T) {
        // Entry hoists run in the submitting frame (guard taken = skip).
        RegState Taken = R;
        if (Status S = walkRegion(Guard + 1, Q, R); !S.isOk())
          return S;
        if (Status S = walkParallel(Q, T, R); !S.isOk())
          return S;
        joinWritten(Guard + 1, T, R, Taken);
        return Status::ok();
      }
      break;
    }

    // Plain forward branch: analyze the region, then join with the
    // branch-taken state at the target.
    RegState Taken = R;
    if (Status S = walkRegion(Guard + 1, T, R); !S.isOk())
      return S;
    joinWritten(Guard + 1, T, R, Taken);
    return Status::ok();
  }

  /// Serial loop [Guard .. T): Guard = JumpIfGeI var,end; entry block;
  /// TOP: body; induction AddImmI...; LoopNext var,step,end -> TOP.
  Status walkSerialLoop(size_t Guard, size_t T, RegState &R) {
    const Instr &G = P.Code[Guard];
    const Instr &LN = P.Code[T - 1];
    if (LN.Target >= 0)
      return err(T - 1, "loop back edge must jump backward");
    const int64_t TopSigned = static_cast<int64_t>(T - 1) + LN.Target;
    if (TopSigned <= static_cast<int64_t>(Guard) ||
        TopSigned >= static_cast<int64_t>(T - 1))
      return err(T - 1, "loop back edge target outside the loop region");
    const size_t Top = static_cast<size_t>(TopSigned);
    if (G.B != LN.C) {
      // Guard end register and back-edge end register must agree — the
      // executor would otherwise run the two exits against different
      // bounds. (Step register has no guard-side counterpart.)
      return err(T - 1, "loop guard and back edge disagree on the end "
                        "register");
    }

    // The loop bound registers must be loop-invariant for the analysis
    // (the builder holds them in registers no body instruction writes).
    const std::vector<uint16_t> BodyWrites = writtenRegs(Top, T - 1);
    const auto WritesReg = [&](uint16_t Reg) {
      for (uint16_t W : BodyWrites)
        if (W == Reg && Reg != G.A)
          return true;
      return false;
    };
    if (WritesReg(G.B) || WritesReg(LN.B))
      return err(Guard, "loop bound register is mutated inside the body");

    const SymVal BeginV = R[G.A]; // var was Mov'd from begin just before
    const SymVal EndV = R[G.B];
    const SymVal StepV = R[LN.B];
    const Interval BeginI = Ctx.range(BeginV);
    const Interval EndI = Ctx.range(EndV);
    const Interval StepI = Ctx.range(StepV);
    if (StepI.boundedAbove() && StepI.Hi <= 0)
      return err(T - 1, formatString("non-positive loop step %lld",
                                     (long long)StepI.Hi));
    const Interval VarRange{BeginI.Lo, satAdd(EndI.Hi, -1)};

    // Definitely-zero-trip: the guard always jumps; nothing inside can
    // execute and the exit state is the entry state.
    if (BeginI.boundedBelow() && EndI.boundedAbove() && VarRange.empty())
      return Status::ok();

    // Entry block: runs with var == begin (and var < end, or it would
    // have been skipped).
    R[G.A] = BeginV.withBox(BeginI.meet(Interval{Interval::kMin, VarRange.Hi}));
    if (Status S = walkRegion(Guard + 1, Top, R); !S.isOk())
      return S;

    // Identify this loop's induction advances: the AddImmI run directly
    // before the LoopNext (AddImmI is only ever emitted there; inner
    // loops' advances sit before their own LoopNext).
    size_t IncrBegin = T - 1;
    while (IncrBegin > Top && P.Code[IncrBegin - 1].Op == Opcode::AddImmI)
      --IncrBegin;

    // Max increments any induction register sees before its last body
    // read: trips - 1.
    int64_t MaxIncr = Interval::kMax;
    if (StepI.isConst() && StepI.Lo > 0 && BeginI.boundedBelow() &&
        EndI.boundedAbove()) {
      const int64_t Span = satAdd(EndI.Hi, -BeginI.Lo);
      MaxIncr = Span <= 0 ? 0 : (Span - 1) / StepI.Lo;
    }

    // The loop symbol carries its symbolic bounds v >= begin and
    // v <= end - 1 — min-shaped clamped ends enter the relational
    // domain here.
    const SymVal UpperV = Ctx.add(EndV, SymVal::constant(-1));
    const SymVal LoopV = Ctx.makeLoopSym(
        formatString("v%u", static_cast<unsigned>(G.A)), VarRange, &BeginV,
        &UpperV);

    // Widen the body-entry state: everything the body writes becomes
    // unknown, except the loop var (its symbol) and the induction
    // registers. A strength-reduced induction register advancing by Imm
    // per iteration is reconstructed exactly as
    //   entry + (Imm/step) * (var - begin)
    // when step is a positive constant dividing Imm (the builder emits
    // Imm = coeff*step); the interval widening entry + [0, MaxIncr]*Imm
    // is kept as the box either way.
    RegState Body = R;
    for (uint16_t W : BodyWrites)
      Body[W] = SymVal::top();
    Body[G.A] = LoopV;
    for (size_t Pc = IncrBegin; Pc < T - 1; ++Pc) {
      const Instr &Adv = P.Code[Pc];
      const SymVal Entry = R[Adv.A];
      const Interval WidenBox = intervalAdd(
          Ctx.range(Entry),
          intervalMul(Interval::constant(Adv.Imm), Interval{0, MaxIncr}));
      if (Ctx.relational() && StepI.isConst() && StepI.Lo > 0 &&
          Adv.Imm % StepI.Lo == 0) {
        const SymVal Sym = Ctx.add(
            Entry,
            Ctx.scale(Ctx.sub(LoopV, BeginV), Adv.Imm / StepI.Lo));
        Body[Adv.A] = Sym.withBox(WidenBox);
      } else {
        Body[Adv.A] = SymVal::box(WidenBox);
      }
    }
    if (Status S = walkRegion(Top, IncrBegin, Body); !S.isOk())
      return S;

    // Post-loop state: body-written registers (and the loop var) hold
    // iteration-dependent values.
    for (uint16_t W : BodyWrites)
      R[W] = SymVal::top();
    R[G.A] = SymVal::top();
    return Status::ok();
  }

  /// ParallelFor at \p Pc: workers run the body over a frame copy; the
  /// submitting frame is unchanged by the body. At the relational tier
  /// the body walk additionally collects one abstract iteration's
  /// footprints and hands them to the static race checker.
  Status walkParallel(size_t Pc, size_t End, RegState &R) {
    const ParDesc &D = P.Pars[static_cast<size_t>(P.Code[Pc].Target)];
    const size_t BodyBegin = Pc + 1;
    const size_t BodyEnd = BodyBegin + D.BodyLen;
    if (BodyEnd > End)
      return err(Pc, "parallel body extends past the enclosing region");

    const Interval BeginI = Ctx.range(R[D.BeginReg]);
    const Interval EndI = Ctx.range(R[D.EndReg]);
    const Interval VarRange{BeginI.Lo, satAdd(EndI.Hi, -1)};
    if (BeginI.boundedBelow() && EndI.boundedAbove() && VarRange.empty())
      return Status::ok(); // definitely zero-trip (and guarded anyway)

    RegState Worker = R;
    for (uint16_t W : writtenRegs(BodyBegin, BodyEnd))
      Worker[W] = SymVal::top();

    if (!Ctx.relational()) {
      Worker[D.VarReg] = SymVal::box(VarRange);
      return walkRegion(BodyBegin, BodyEnd, Worker);
    }

    // The race analysis models exactly one level of parallelism (the
    // builder hoists guards and never nests ParallelFor); a nested
    // parallel loop would need a product iteration space.
    if (InParallel)
      return err(Pc, "nested parallel loop is outside the static race "
                     "analysis");

    const SymVal BeginV = R[D.BeginReg];
    const SymVal UpperV = Ctx.add(R[D.EndReg], SymVal::constant(-1));
    const int32_t Watermark = Ctx.numSyms();
    const SymVal LoopV = Ctx.makeLoopSym(
        formatString("p%u", static_cast<unsigned>(D.VarReg)), VarRange,
        &BeginV, &UpperV);
    Worker[D.VarReg] = LoopV;

    std::vector<Footprint> FPs;
    std::vector<Footprint> *SavedCollect = Collect;
    Collect = &FPs;
    InParallel = true;
    Status WalkS = walkRegion(BodyBegin, BodyEnd, Worker);
    InParallel = false;
    Collect = SavedCollect;
    if (!WalkS.isOk())
      return WalkS;

    ParallelRaceQuery Q;
    Q.Var = Watermark; // the loop symbol is the first past the watermark
    Q.Watermark = Watermark;
    const Interval StepI = Ctx.range(R[D.StepReg]);
    Q.Step = (StepI.boundedBelow() && StepI.Lo > 0) ? StepI.Lo : 1;
    Q.FPs = std::move(FPs);
    Q.BufferElems = [this](int B) { return bufferElems(B); };
    Q.BufferIsThreadLocal = [this](int B) {
      return P.Buffers[static_cast<size_t>(B)].Scope ==
             tir::BufferScope::ThreadLocal;
    };
    Q.BufferName = [](int B) { return formatString("buffer %d", B); };
    Q.LoopDesc = formatString("%s: instr %zu", P.Name.c_str(), Pc);
    return checkParallelRaces(Ctx, Q);
  }
};

} // namespace

Status verifyProgram(const Program &P, const char *Context) {
  return ProgramVerifier(P, Context,
                         verifyLevel() >= VerifyLevel::Relational)
      .run();
}

Status verifyLoadedProgram(const Program &P, const char *Context) {
  // Deliberately ignores verifyLevel(): a Program deserialized from the
  // persistent artifact cache is untrusted input headed for the unchecked
  // dispatch loop, so the FULL verification — relational bounds AND the
  // static race proof — runs even when GC_VERIFY=off. Kernel calls must
  // additionally have been relinked.
  for (size_t I = 0; I < P.Calls.size(); ++I)
    if (!P.Calls[I].Fn)
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("%s: call %zu has no relinked kernel pointer",
                       Context, I));
  return ProgramVerifier(P, Context, /*Relational=*/true).run();
}

} // namespace verify
} // namespace gc
