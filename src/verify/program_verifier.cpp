//===- program_verifier.cpp - Bytecode program verification ---------------===//
///
/// \file
/// The compiled-Program verifier. Two layers:
///
///  1. A structural pass over every instruction and descriptor: opcode
///     validity, every register operand inside the register image, jump
///     targets inside the code block, Load/Store buffer ids inside the
///     buffer table, Call/Par descriptor indices valid, kernel pointers
///     non-null, CallDesc buffer/dynamic-scalar counts within the
///     marshalling limits, and buffer metadata consistent (element size,
///     arena placement).
///
///  2. A structured abstract interpretation over the canonical control
///     flow the program builder emits (documented at the top of
///     exec/program.cpp): serial loops are recognized from their
///     JumpIfGeI guard + LoopNext back edge, parallel nests from their
///     guard + ParallelFor descriptor. Loop variables are widened to
///     [begin, end-1], induction registers to their entry value plus
///     (trips-1) increments, every other register written inside a body
///     is invalidated for the body walk — which makes a single pass per
///     body sound without a fixpoint. Within that state, every scalar
///     load/store offset register and every kernel-call buffer offset is
///     proven inside its buffer's element extent. Control flow that does
///     not fit the canonical shapes (stray back edges, jumps escaping a
///     loop region) is rejected as unstructured — the executor's dispatch
///     loop has no checks, so only programs the verifier can understand
///     are accepted. This is the precondition for ever executing
///     mmap-loaded Programs from a persistent cache.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "exec/program.h"
#include "support/str.h"
#include "verify/interval.h"

#include <vector>

namespace gc {
namespace verify {

namespace {

using exec::CallDesc;
using exec::Instr;
using exec::Opcode;
using exec::ParDesc;
using exec::Program;

/// Abstract frame: one interval per register (I field only; float values
/// are never used for addressing).
using RegState = std::vector<Interval>;

class ProgramVerifier {
public:
  ProgramVerifier(const Program &P, const char *Context)
      : P(P), Context(Context) {}

  Status run() {
    if (Status S = checkStructure(); !S.isOk())
      return S;
    RegState R(P.NumRegs, Interval::top());
    for (size_t I = 0; I < P.InitRegs.size(); ++I)
      R[I] = Interval::constant(P.InitRegs[I].I);
    return walkRegion(0, P.Code.size(), R);
  }

private:
  const Program &P;
  const char *Context;

  Status err(size_t Pc, const std::string &What) const {
    return Status::error(
        StatusCode::Internal,
        formatString("program verifier%s%s: %s: instr %zu: %s",
                     *Context ? " after " : "", Context, P.Name.c_str(), Pc,
                     What.c_str()));
  }

  /// Destination register of \p I, or -1 when the opcode writes none.
  static int destReg(const Instr &I) {
    switch (I.Op) {
    case Opcode::Mov:
    case Opcode::I2F:
    case Opcode::F2I:
    case Opcode::AddI:
    case Opcode::SubI:
    case Opcode::MulI:
    case Opcode::DivI:
    case Opcode::ModI:
    case Opcode::MinI:
    case Opcode::MaxI:
    case Opcode::AddF:
    case Opcode::SubF:
    case Opcode::MulF:
    case Opcode::DivF:
    case Opcode::ModF:
    case Opcode::MinF:
    case Opcode::MaxF:
    case Opcode::AddImmI:
    case Opcode::LoadF32:
    case Opcode::LoadF64:
    case Opcode::LoadS32:
    case Opcode::LoadS8:
    case Opcode::LoadU8:
    case Opcode::LoopNext:
      return I.A;
    default:
      return -1;
    }
  }

  int64_t bufferElems(uint16_t BufferId) const {
    const exec::BufferInfo &B = P.Buffers[BufferId];
    return B.ElemSize > 0 ? B.Bytes / B.ElemSize : 0;
  }

  Status checkStructure() const {
    if (P.InitRegs.size() != P.NumRegs)
      return Status::error(
          StatusCode::Internal,
          formatString("program verifier%s%s: %s: init image has %zu "
                       "registers, program declares %u",
                       *Context ? " after " : "", Context, P.Name.c_str(),
                       P.InitRegs.size(), P.NumRegs));
    for (size_t I = 0; I < P.Buffers.size(); ++I) {
      const exec::BufferInfo &B = P.Buffers[I];
      if (B.Bytes < 0 || B.ElemSize <= 0 || B.Bytes % B.ElemSize != 0)
        return err(0, formatString("buffer %zu has inconsistent size "
                                   "metadata (%lld bytes, elem size %lld)",
                                   I, (long long)B.Bytes,
                                   (long long)B.ElemSize));
      if (B.Scope == tir::BufferScope::Temp && B.ArenaOffset >= 0 &&
          B.ArenaOffset + B.Bytes > P.ArenaBytes)
        return err(0, formatString("buffer %zu arena slot [%lld, %lld) "
                                   "exceeds the %lld byte arena",
                                   I, (long long)B.ArenaOffset,
                                   (long long)(B.ArenaOffset + B.Bytes),
                                   (long long)P.ArenaBytes));
    }
    const auto RegOk = [&](uint16_t R) { return R < P.NumRegs; };
    for (size_t Pc = 0; Pc < P.Code.size(); ++Pc) {
      const Instr &I = P.Code[Pc];
      if (static_cast<uint8_t>(I.Op) >
          static_cast<uint8_t>(Opcode::ParallelFor))
        return err(Pc, formatString("invalid opcode %u",
                                    static_cast<unsigned>(I.Op)));
      switch (I.Op) {
      case Opcode::Mov:
      case Opcode::I2F:
      case Opcode::F2I:
        if (!RegOk(I.A) || !RegOk(I.B))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::MulI:
      case Opcode::DivI:
      case Opcode::ModI:
      case Opcode::MinI:
      case Opcode::MaxI:
      case Opcode::AddF:
      case Opcode::SubF:
      case Opcode::MulF:
      case Opcode::DivF:
      case Opcode::ModF:
      case Opcode::MinF:
      case Opcode::MaxF:
      case Opcode::LoopNext:
        if (!RegOk(I.A) || !RegOk(I.B) || !RegOk(I.C))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::AddImmI:
        if (!RegOk(I.A))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::LoadF32:
      case Opcode::LoadF64:
      case Opcode::LoadS32:
      case Opcode::LoadS8:
      case Opcode::LoadU8:
      case Opcode::StoreF32:
      case Opcode::StoreF64:
      case Opcode::StoreS32:
      case Opcode::StoreS8:
      case Opcode::StoreU8:
        if (!RegOk(I.A) || !RegOk(I.C))
          return err(Pc, "register operand outside the register image");
        if (I.B >= P.Buffers.size())
          return err(Pc, formatString("references unknown buffer %u", I.B));
        break;
      case Opcode::JumpIfGeI:
        if (!RegOk(I.A) || !RegOk(I.B))
          return err(Pc, "register operand outside the register image");
        break;
      case Opcode::CallKernel: {
        if (I.Target < 0 ||
            static_cast<size_t>(I.Target) >= P.Calls.size())
          return err(Pc, formatString("call descriptor %d out of range",
                                      I.Target));
        const CallDesc &C = P.Calls[static_cast<size_t>(I.Target)];
        if (!C.Fn)
          return err(Pc, "kernel call has a null function pointer");
        if (C.NumBufs > 4 || C.NumDyn > 12)
          return err(Pc,
                     formatString("kernel call exceeds marshalling limits "
                                  "(%u buffers, %u dynamic scalars)",
                                  C.NumBufs, C.NumDyn));
        for (uint8_t BI = 0; BI < C.NumBufs; ++BI) {
          if (C.Bufs[BI].BufferId < 0 ||
              static_cast<size_t>(C.Bufs[BI].BufferId) >= P.Buffers.size())
            return err(Pc, formatString("kernel call buffer arg %u "
                                        "references unknown buffer %d",
                                        BI, C.Bufs[BI].BufferId));
          if (C.Bufs[BI].HasOffset && !RegOk(C.Bufs[BI].OffsetReg))
            return err(Pc, "kernel call offset register outside the "
                           "register image");
        }
        for (uint8_t DI = 0; DI < C.NumDyn; ++DI) {
          if (C.Dyns[DI].Idx >= 12)
            return err(Pc, "kernel call dynamic scalar index out of range");
          if (!RegOk(C.Dyns[DI].Reg))
            return err(Pc, "kernel call dynamic scalar register outside "
                           "the register image");
        }
        break;
      }
      case Opcode::ParallelFor: {
        if (I.Target < 0 || static_cast<size_t>(I.Target) >= P.Pars.size())
          return err(Pc, formatString("parallel descriptor %d out of range",
                                      I.Target));
        const ParDesc &D = P.Pars[static_cast<size_t>(I.Target)];
        if (!RegOk(D.VarReg) || !RegOk(D.BeginReg) || !RegOk(D.EndReg) ||
            !RegOk(D.StepReg))
          return err(Pc, "parallel descriptor register outside the "
                         "register image");
        if (Pc + 1 + D.BodyLen > P.Code.size())
          return err(Pc, formatString("parallel body of %u instructions "
                                      "runs past the end of the program",
                                      D.BodyLen));
        break;
      }
      }
      if (I.Op == Opcode::JumpIfGeI || I.Op == Opcode::LoopNext) {
        const int64_t T = static_cast<int64_t>(Pc) + I.Target;
        if (T < 0 || T > static_cast<int64_t>(P.Code.size()))
          return err(Pc, formatString("jump target %lld outside the code "
                                      "block",
                                      (long long)T));
      }
    }
    return Status::ok();
  }

  /// Registers written by instructions in [Begin, End).
  std::vector<uint16_t> writtenRegs(size_t Begin, size_t End) const {
    std::vector<bool> Seen(P.NumRegs, false);
    std::vector<uint16_t> Out;
    for (size_t Pc = Begin; Pc < End; ++Pc)
      if (int D = destReg(P.Code[Pc]); D >= 0 && !Seen[static_cast<size_t>(D)]) {
        Seen[static_cast<size_t>(D)] = true;
        Out.push_back(static_cast<uint16_t>(D));
      }
    return Out;
  }

  Status checkOffset(size_t Pc, uint16_t BufferId, const Interval &Off,
                     const char *What) const {
    const int64_t Elems = bufferElems(BufferId);
    if (Off.bounded() && (Off.Lo < 0 || Off.Hi >= Elems))
      return err(Pc, formatString("%s offset range [%lld, %lld] is outside "
                                  "buffer %u's %lld elements",
                                  What, (long long)Off.Lo, (long long)Off.Hi,
                                  BufferId, (long long)Elems));
    return Status::ok();
  }

  /// Straight-line transfer of one non-control-flow instruction.
  Status step(size_t Pc, RegState &R) const {
    const Instr &I = P.Code[Pc];
    switch (I.Op) {
    case Opcode::Mov:
      R[I.A] = R[I.B];
      return Status::ok();
    case Opcode::I2F:
      // Writes only the F view; the I view of A is PRESERVED by the
      // executor (Value fields are independent) — but being conservative
      // about Value-struct semantics costs nothing here.
      R[I.A] = Interval::top();
      return Status::ok();
    case Opcode::F2I:
      R[I.A] = Interval::top();
      return Status::ok();
    case Opcode::AddI:
      R[I.A] = intervalAdd(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::SubI:
      R[I.A] = intervalSub(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::MulI:
      R[I.A] = intervalMul(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::DivI:
      R[I.A] = intervalDiv(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::ModI:
      R[I.A] = intervalMod(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::MinI:
      R[I.A] = intervalMin(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::MaxI:
      R[I.A] = intervalMax(R[I.B], R[I.C]);
      return Status::ok();
    case Opcode::AddF:
    case Opcode::SubF:
    case Opcode::MulF:
    case Opcode::DivF:
    case Opcode::ModF:
    case Opcode::MinF:
    case Opcode::MaxF:
      return Status::ok(); // float-only: the I view is untouched
    case Opcode::AddImmI:
      R[I.A] = intervalAdd(R[I.A], Interval::constant(I.Imm));
      return Status::ok();
    case Opcode::LoadF32:
    case Opcode::LoadF64:
    case Opcode::LoadS32:
    case Opcode::LoadS8:
    case Opcode::LoadU8:
      if (Status S = checkOffset(Pc, I.B, R[I.C], "load"); !S.isOk())
        return S;
      R[I.A] = Interval::top();
      return Status::ok();
    case Opcode::StoreF32:
    case Opcode::StoreF64:
    case Opcode::StoreS32:
    case Opcode::StoreS8:
    case Opcode::StoreU8:
      return checkOffset(Pc, I.B, R[I.C], "store");
    case Opcode::CallKernel: {
      const CallDesc &C = P.Calls[static_cast<size_t>(I.Target)];
      for (uint8_t BI = 0; BI < C.NumBufs; ++BI)
        if (C.Bufs[BI].HasOffset)
          if (Status S = checkOffset(
                  Pc, static_cast<uint16_t>(C.Bufs[BI].BufferId),
                  R[C.Bufs[BI].OffsetReg], "kernel-call buffer");
              !S.isOk())
            return S;
      return Status::ok();
    }
    default:
      return err(Pc, "internal: control-flow opcode reached straight-line "
                     "transfer");
    }
  }

  /// Walks [Begin, End) updating \p R. Control flow must fit the
  /// canonical shapes (see file comment).
  Status walkRegion(size_t Begin, size_t End, RegState &R) {
    size_t Pc = Begin;
    while (Pc < End) {
      const Instr &I = P.Code[Pc];
      switch (I.Op) {
      case Opcode::LoopNext:
        // Every LoopNext must be consumed as the tail of a guarded
        // serial-loop region; meeting one head-on is a stray back edge.
        return err(Pc, "unstructured back edge (LoopNext without a "
                       "matching loop guard)");
      case Opcode::JumpIfGeI: {
        if (I.Target <= 0)
          return err(Pc, "backward or self jump guard is not canonical");
        const size_t T = Pc + static_cast<size_t>(I.Target);
        if (T > End)
          return err(Pc, "jump escapes the enclosing loop region");
        if (Status S = walkGuardedRegion(Pc, T, R); !S.isOk())
          return S;
        Pc = T;
        continue;
      }
      case Opcode::ParallelFor: {
        if (Status S = walkParallel(Pc, End, R); !S.isOk())
          return S;
        Pc += 1 + P.Pars[static_cast<size_t>(I.Target)].BodyLen;
        continue;
      }
      default:
        if (Status S = step(Pc, R); !S.isOk())
          return S;
        ++Pc;
        continue;
      }
    }
    return Status::ok();
  }

  /// Handles the region [Guard+1, T) jumped over by the JumpIfGeI at
  /// \p Guard: a serial loop (ends in LoopNext), a guarded parallel nest
  /// (contains ParallelFor), or a plain forward branch.
  Status walkGuardedRegion(size_t Guard, size_t T, RegState &R) {
    const Instr &G = P.Code[Guard];

    // Serial loop: region tail is the LoopNext advancing the guard's var.
    if (T - 1 > Guard && P.Code[T - 1].Op == Opcode::LoopNext &&
        P.Code[T - 1].A == G.A)
      return walkSerialLoop(Guard, T, R);

    // Guarded parallel nest: entry hoists then ParallelFor whose body
    // extends exactly to the guard target.
    for (size_t Q = Guard + 1; Q < T; ++Q) {
      if (P.Code[Q].Op != Opcode::ParallelFor)
        continue;
      const ParDesc &D = P.Pars[static_cast<size_t>(P.Code[Q].Target)];
      if (Q + 1 + D.BodyLen == T) {
        // Entry hoists run in the submitting frame (guard taken = skip).
        RegState Taken = R;
        if (Status S = walkRegion(Guard + 1, Q, R); !S.isOk())
          return S;
        if (Status S = walkParallel(Q, T, R); !S.isOk())
          return S;
        for (size_t I = 0; I < R.size(); ++I)
          R[I] = R[I].join(Taken[I]);
        return Status::ok();
      }
      break;
    }

    // Plain forward branch: analyze the region, then join with the
    // branch-taken state at the target.
    RegState Taken = R;
    if (Status S = walkRegion(Guard + 1, T, R); !S.isOk())
      return S;
    for (size_t I = 0; I < R.size(); ++I)
      R[I] = R[I].join(Taken[I]);
    return Status::ok();
  }

  /// Serial loop [Guard .. T): Guard = JumpIfGeI var,end; entry block;
  /// TOP: body; induction AddImmI...; LoopNext var,step,end -> TOP.
  Status walkSerialLoop(size_t Guard, size_t T, RegState &R) {
    const Instr &G = P.Code[Guard];
    const Instr &LN = P.Code[T - 1];
    if (LN.Target >= 0)
      return err(T - 1, "loop back edge must jump backward");
    const int64_t TopSigned = static_cast<int64_t>(T - 1) + LN.Target;
    if (TopSigned <= static_cast<int64_t>(Guard) ||
        TopSigned >= static_cast<int64_t>(T - 1))
      return err(T - 1, "loop back edge target outside the loop region");
    const size_t Top = static_cast<size_t>(TopSigned);
    if (G.B != LN.C) {
      // Guard end register and back-edge end register must agree — the
      // executor would otherwise run the two exits against different
      // bounds. (Step register has no guard-side counterpart.)
      return err(T - 1, "loop guard and back edge disagree on the end "
                        "register");
    }

    // The loop bound registers must be loop-invariant for the analysis
    // (the builder holds them in registers no body instruction writes).
    const std::vector<uint16_t> BodyWrites = writtenRegs(Top, T - 1);
    const auto WritesReg = [&](uint16_t Reg) {
      for (uint16_t W : BodyWrites)
        if (W == Reg && Reg != G.A)
          return true;
      return false;
    };
    if (WritesReg(G.B) || WritesReg(LN.B))
      return err(Guard, "loop bound register is mutated inside the body");

    const Interval BeginI = R[G.A]; // var was Mov'd from begin just before
    const Interval EndI = R[G.B];
    const Interval StepI = R[LN.B];
    if (StepI.boundedAbove() && StepI.Hi <= 0)
      return err(T - 1, formatString("non-positive loop step %lld",
                                     (long long)StepI.Hi));
    const Interval VarRange{BeginI.Lo, satAdd(EndI.Hi, -1)};

    // Definitely-zero-trip: the guard always jumps; nothing inside can
    // execute and the exit state is the entry state.
    if (BeginI.boundedBelow() && EndI.boundedAbove() && VarRange.empty())
      return Status::ok();

    // Entry block: runs with var == begin (and var < end, or it would
    // have been skipped).
    R[G.A] = BeginI.meet(Interval{Interval::kMin, VarRange.Hi});
    const size_t EntryEnd = Top;
    if (Status S = walkRegion(Guard + 1, EntryEnd, R); !S.isOk())
      return S;

    // Identify this loop's induction advances: the AddImmI run directly
    // before the LoopNext (AddImmI is only ever emitted there; inner
    // loops' advances sit before their own LoopNext).
    size_t IncrBegin = T - 1;
    while (IncrBegin > Top && P.Code[IncrBegin - 1].Op == Opcode::AddImmI)
      --IncrBegin;

    // Max increments any induction register sees before its last body
    // read: trips - 1.
    int64_t MaxIncr = Interval::kMax;
    if (StepI.isConst() && StepI.Lo > 0 && BeginI.boundedBelow() &&
        EndI.boundedAbove()) {
      const int64_t Span = satAdd(EndI.Hi, -BeginI.Lo);
      MaxIncr = Span <= 0 ? 0 : (Span - 1) / StepI.Lo;
    }

    // Widen the body-entry state: everything the body writes becomes
    // unknown, except the loop var (guard range) and the induction
    // registers (entry value + up to MaxIncr advances).
    RegState Body = R;
    for (uint16_t W : BodyWrites)
      Body[W] = Interval::top();
    Body[G.A] = VarRange;
    for (size_t Pc = IncrBegin; Pc < T - 1; ++Pc) {
      const Instr &Adv = P.Code[Pc];
      const Interval Entry = R[Adv.A];
      const Interval Total =
          intervalMul(Interval::constant(Adv.Imm),
                      Interval{0, MaxIncr});
      Body[Adv.A] = intervalAdd(Entry, Total);
    }
    if (Status S = walkRegion(Top, IncrBegin, Body); !S.isOk())
      return S;

    // Post-loop state: body-written registers (and the loop var) hold
    // iteration-dependent values.
    for (uint16_t W : BodyWrites)
      R[W] = Interval::top();
    R[G.A] = Interval::top();
    return Status::ok();
  }

  /// ParallelFor at \p Pc: workers run the body over a frame copy; the
  /// submitting frame is unchanged by the body.
  Status walkParallel(size_t Pc, size_t End, RegState &R) {
    const ParDesc &D = P.Pars[static_cast<size_t>(P.Code[Pc].Target)];
    const size_t BodyBegin = Pc + 1;
    const size_t BodyEnd = BodyBegin + D.BodyLen;
    if (BodyEnd > End)
      return err(Pc, "parallel body extends past the enclosing region");

    RegState Worker = R;
    for (uint16_t W : writtenRegs(BodyBegin, BodyEnd))
      Worker[W] = Interval::top();
    const Interval VarRange{R[D.BeginReg].Lo, satAdd(R[D.EndReg].Hi, -1)};
    if (R[D.BeginReg].boundedBelow() && R[D.EndReg].boundedAbove() &&
        VarRange.empty())
      return Status::ok(); // definitely zero-trip (and guarded anyway)
    Worker[D.VarReg] = VarRange;
    return walkRegion(BodyBegin, BodyEnd, Worker);
  }
};

} // namespace

Status verifyProgram(const Program &P, const char *Context) {
  return ProgramVerifier(P, Context).run();
}

Status verifyLoadedProgram(const Program &P, const char *Context) {
  // Deliberately ignores verifyLevel(): a Program deserialized from the
  // persistent artifact cache is untrusted input headed for the unchecked
  // dispatch loop, so the full bytecode verification runs even when
  // GC_VERIFY=off. Kernel calls must additionally have been relinked.
  for (size_t I = 0; I < P.Calls.size(); ++I)
    if (!P.Calls[I].Fn)
      return Status::error(
          StatusCode::InvalidArgument,
          formatString("%s: call %zu has no relinked kernel pointer",
                       Context, I));
  return ProgramVerifier(P, Context).run();
}

} // namespace verify
} // namespace gc
