//===- relational.h - Footprint disjointness + race engine ------*- C++ -*-===//
///
/// \file
/// The shared engine behind the relational verification tier: buffer
/// footprints described over the symbolic domain (symbolic.h), a
/// 2-D-aware disjointness test between footprints, and the static race
/// checker for parallel loops — given every load/store footprint of one
/// abstract iteration, it proves that any two DISTINCT iterations'
/// footprints with at least one write on the same shared buffer are
/// disjoint, by instantiating two ordered copies of the iteration symbol
/// (or, for grid loops decomposed with div/mod, case-splitting on the
/// first differing digit) and running the affine difference test with
/// min/max splitting on each case. Anything the engine cannot decide is
/// a conservative rejection with a Status naming both footprints — the
/// executor dispatch loop runs unchecked, so "cannot prove" must not
/// become "assume safe".
///
/// Also exported: the verification statistics counters used by the
/// "zero out-of-scope skips" acceptance test and by the verifiers'
/// proved/undecided bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef GC_VERIFY_RELATIONAL_H
#define GC_VERIFY_RELATIONAL_H

#include "support/status.h"
#include "verify/symbolic.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gc {
namespace verify {

/// One buffer access of one abstract loop iteration.
struct Footprint {
  enum class Shape : uint8_t {
    Flat,  ///< elements [Off, Off + Len)
    Tile,  ///< elements Off + r*Ld + c, r in [0,Rows), c in [0,Cols)
    Whole, ///< the entire buffer
  };
  int Buffer = -1;
  bool Write = false;
  Shape Sh = Shape::Whole;
  SymVal Off, Len;        ///< Flat
  SymVal Rows, Cols;      ///< Tile (with Off); Ld is a compile-time const
  int64_t Ld = 0;
  std::string Site; ///< "instr 12 (CallKernel brgemm_f32 arg C)" etc.
};

/// Counters behind the zero-conservative-skip acceptance test. Proved =
/// footprints decided in-bounds; Undecided = footprints the bounds
/// engine skipped because it could not decide (the PR-6 "deliberately
/// out of scope" class — must be zero at GC_VERIFY=relational on the
/// standard workloads); RacePairsProved = parallel footprint pairs
/// proven disjoint.
struct VerifyStats {
  uint64_t BoundsProved = 0;
  uint64_t BoundsUndecided = 0;
  uint64_t RacePairsProved = 0;
};

/// Snapshot of the process-wide counters (atomic, relaxed).
VerifyStats verifyStats();
/// Zeroes the counters (test seam).
void resetVerifyStats();
/// Incremented by the bounds engines in tir_verifier / program_verifier.
void noteBoundsProved();
void noteBoundsUndecided();
void noteRacePairProved();

/// Everything the race checker needs to know about one parallel loop.
struct ParallelRaceQuery {
  /// The loop's iteration symbol (a root symbol in Ctx); the loop body
  /// was walked once with this symbol bound to the induction variable.
  int32_t Var = -1;
  /// Symbols with id >= Watermark are per-iteration (created while
  /// walking the body: digits of Var, inner serial-loop vars); symbols
  /// below are loop-invariant and shared between iterations.
  int32_t Watermark = 0;
  /// Step lower bound (>= 1): distinct iterations differ by >= Step.
  int64_t Step = 1;
  std::vector<Footprint> FPs;
  /// Element count per buffer id (for Whole footprints) — kMax-sized
  /// spans are never provable, so tests can pass exact extents.
  std::function<int64_t(int)> BufferElems;
  /// True when the buffer is thread-local (per-worker frame copy) and
  /// therefore exempt from cross-iteration pairing.
  std::function<bool(int)> BufferIsThreadLocal;
  /// Printable buffer name for the rejection message.
  std::function<std::string(int)> BufferName;
  /// Location prefix for error messages ("instr 7" / "body.pfor(g)").
  std::string LoopDesc;
};

/// Proves every cross-iteration pair of footprints with >= 1 write on a
/// shared (non-thread-local) buffer disjoint, or returns a located
/// error Status naming the two conflicting footprints. \p Ctx must be
/// the context the footprints were collected in; the checker appends
/// case-instantiation symbols to it.
Status checkParallelRaces(SymCtx &Ctx, const ParallelRaceQuery &Q);

/// Disjointness of two footprints over the SAME buffer in \p Ctx:
/// true only when the engine can PROVE no element is shared. Used by
/// the race checker per case split and by the memory-plan verifier's
/// symbolic arena re-check.
bool footprintsDisjoint(SymCtx &Ctx, const Footprint &A, const Footprint &B,
                        int64_t BufferElems);

} // namespace verify
} // namespace gc

#endif // GC_VERIFY_RELATIONAL_H
