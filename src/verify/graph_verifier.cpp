//===- graph_verifier.cpp - Graph IR static verification ------------------===//
///
/// \file
/// The Graph IR verifier: re-derives the producer relation from the op
/// list (no trust in the graph's cached maps — those are separately
/// cross-checked by Graph::verify), proves the graph acyclic, checks the
/// input/output boundary for dangling ids, and replays the reference
/// evaluator's shape/dtype algebra (graph/reference.cpp) over every op so
/// a pass that miscomputes a shape, drops a contraction-dim agreement or
/// rewires a fused-op boundary is caught at the op that broke, not as
/// wrong numbers downstream.
///
/// Dynamic leading dims (LogicalTensor::kDynamicDim) are tracked
/// symbolically: a dynamic dim matches anything derived from a dynamic
/// dim, and any shape position whose expected value depends on one is
/// skipped rather than guessed (the flow-legality rules themselves live
/// in Graph::validate, which Session::compile always runs).
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "support/str.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace gc {
namespace verify {

namespace {

using graph::Graph;
using graph::LogicalTensor;
using graph::Op;
using graph::OpKind;

/// Shape-position wildcard: "derived from a dynamic dim, matches any
/// declared value". Distinct from kDynamicDim, which must match exactly.
constexpr int64_t kWild = INT64_MIN;

bool isDyn(int64_t D) { return D == LogicalTensor::kDynamicDim; }

/// Error factory carrying the op-id pinpoint.
class OpError {
public:
  OpError(const char *Context, const Op &O) : Context(Context), O(O) {}

  Status operator()(const std::string &What) const {
    return Status::error(
        StatusCode::InvalidGraph,
        formatString("graph verifier%s%s: op%lld(%s): %s",
                     *Context ? " after " : "", Context, (long long)O.id(),
                     opKindName(O.kind()), What.c_str()));
  }

private:
  const char *Context;
  const Op &O;
};

/// Numpy-style right-aligned broadcast of two shapes, dynamic-aware.
/// Returns false when definitely incompatible.
bool broadcastDims(const std::vector<int64_t> &A,
                   const std::vector<int64_t> &B,
                   std::vector<int64_t> &Out) {
  const size_t Rank = std::max(A.size(), B.size());
  Out.assign(Rank, 1);
  for (size_t D = 0; D < Rank; ++D) {
    const int64_t AD = D < Rank - A.size() ? 1 : A[D - (Rank - A.size())];
    const int64_t BD = D < Rank - B.size() ? 1 : B[D - (Rank - B.size())];
    if (isDyn(AD) || isDyn(BD)) {
      // dyn x dyn stays dyn; dyn x 1 stays dyn; dyn x static-N is a flow
      // question Graph::validate owns — treat as wildcard here.
      Out[D] = (AD == BD || AD == 1 || BD == 1)
                   ? LogicalTensor::kDynamicDim
                   : kWild;
      continue;
    }
    if (AD != BD && AD != 1 && BD != 1)
      return false;
    Out[D] = std::max(AD, BD);
  }
  return true;
}

/// Compares an expected shape (possibly containing kWild positions)
/// against the declared one.
bool shapeMatches(const std::vector<int64_t> &Expected,
                  const std::vector<int64_t> &Declared) {
  if (Expected.size() != Declared.size())
    return false;
  for (size_t D = 0; D < Expected.size(); ++D)
    if (Expected[D] != kWild && Expected[D] != Declared[D])
      return false;
  return true;
}

std::string shapeStr(const std::vector<int64_t> &S) {
  std::string R = "[";
  for (size_t I = 0; I < S.size(); ++I) {
    if (I)
      R += "x";
    R += S[I] == kWild ? "*" : std::to_string((long long)S[I]);
  }
  return R + "]";
}

/// Checks the declared output shape/dtype of \p O against what the
/// reference semantics derive from the inputs.
Status checkOpShapes(const Graph &G, const Op &O, const OpError &Err) {
  const auto ShapeOf = [&](size_t I) -> const std::vector<int64_t> & {
    return G.tensor(O.input(I)).Shape;
  };
  const auto TyOf = [&](size_t I) { return G.tensor(O.input(I)).Ty; };

  // Arity table: -1 = variable.
  int ExpectIns = -1;
  switch (O.kind()) {
  case OpKind::MatMul:
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Max:
  case OpKind::Min:
  case OpKind::BiasAdd:
  case OpKind::DequantAcc:
    ExpectIns = 2;
    break;
  case OpKind::BatchNorm:
    ExpectIns = 5;
    break;
  case OpKind::LayerNorm:
    ExpectIns = 3;
    break;
  case OpKind::FusedOp:
    break;
  default:
    ExpectIns = 1;
    break;
  }
  if (ExpectIns >= 0 && O.numInputs() != static_cast<size_t>(ExpectIns))
    return Err(formatString("expects %d inputs, has %zu", ExpectIns,
                            O.numInputs()));
  if (O.numOutputs() == 0)
    return Err("has no outputs");
  if (O.kind() != OpKind::FusedOp && O.numOutputs() != 1)
    return Err(formatString("expects 1 output, has %zu", O.numOutputs()));

  const LogicalTensor &OutT = G.tensor(O.output(0));
  const auto CheckOut = [&](const std::vector<int64_t> &Expected) -> Status {
    if (!shapeMatches(Expected, OutT.Shape))
      return Err(formatString("output shape %s does not match expected %s",
                              shapeStr(OutT.Shape).c_str(),
                              shapeStr(Expected).c_str()));
    return Status::ok();
  };

  switch (O.kind()) {
  case OpKind::MatMul: {
    const auto &AS = ShapeOf(0);
    const auto &BS = ShapeOf(1);
    if (AS.size() < 2 || BS.size() < 2)
      return Err("matmul inputs must have rank >= 2");
    const bool TA = O.getAttrInt("transpose_a", 0) != 0;
    const bool TB = O.getAttrInt("transpose_b", 0) != 0;
    const int64_t M = TA ? AS[AS.size() - 1] : AS[AS.size() - 2];
    const int64_t K = TA ? AS[AS.size() - 2] : AS[AS.size() - 1];
    const int64_t KB = TB ? BS[BS.size() - 1] : BS[BS.size() - 2];
    const int64_t N = TB ? BS[BS.size() - 2] : BS[BS.size() - 1];
    if (!isDyn(K) && !isDyn(KB) && K != KB)
      return Err(formatString("matmul contraction dims disagree "
                              "(K=%lld vs %lld)",
                              (long long)K, (long long)KB));
    std::vector<int64_t> Batch;
    if (!broadcastDims({AS.begin(), AS.end() - 2},
                       {BS.begin(), BS.end() - 2}, Batch))
      return Err("matmul batch dims are not broadcast-compatible");
    Batch.push_back(isDyn(M) ? LogicalTensor::kDynamicDim : M);
    Batch.push_back(isDyn(N) ? LogicalTensor::kDynamicDim : N);
    return CheckOut(Batch);
  }

  case OpKind::ReLU:
  case OpKind::Exp:
  case OpKind::Tanh:
  case OpKind::Sqrt:
  case OpKind::Reciprocal:
  case OpKind::Square:
  case OpKind::Sigmoid:
  case OpKind::Round:
  case OpKind::Abs:
    if (OutT.Ty != TyOf(0))
      return Err(formatString("elementwise output dtype %s differs from "
                              "input dtype %s",
                              dataTypeName(OutT.Ty),
                              dataTypeName(TyOf(0))));
    return CheckOut(ShapeOf(0));

  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Max:
  case OpKind::Min:
  case OpKind::BiasAdd: {
    std::vector<int64_t> Out;
    if (!broadcastDims(ShapeOf(0), ShapeOf(1), Out))
      return Err(formatString("input shapes %s and %s are not "
                              "broadcast-compatible",
                              shapeStr(ShapeOf(0)).c_str(),
                              shapeStr(ShapeOf(1)).c_str()));
    return CheckOut(Out);
  }

  case OpKind::ReduceSum:
  case OpKind::ReduceMax: {
    const auto &XS = ShapeOf(0);
    const int64_t Rank = static_cast<int64_t>(XS.size());
    std::vector<int64_t> Axes = O.getAttrIntVec("axes");
    if (Axes.empty())
      Axes.push_back(Rank - 1);
    std::vector<bool> Reduced(XS.size(), false);
    for (int64_t A : Axes) {
      if (A < 0)
        A += Rank;
      if (A < 0 || A >= Rank)
        return Err(formatString("reduce axis %lld out of range for rank "
                                "%lld input",
                                (long long)A, (long long)Rank));
      Reduced[static_cast<size_t>(A)] = true;
    }
    const bool KeepDims = O.getAttrInt("keep_dims", 1) != 0;
    std::vector<int64_t> Out;
    for (size_t D = 0; D < XS.size(); ++D) {
      if (!Reduced[D])
        Out.push_back(XS[D]);
      else if (KeepDims)
        Out.push_back(1);
    }
    if (Out.empty())
      Out.push_back(1);
    return CheckOut(Out);
  }

  case OpKind::Reorder:
    if (OutT.Ty != TyOf(0))
      return Err("reorder must preserve dtype");
    return CheckOut(ShapeOf(0));

  case OpKind::Transpose: {
    const auto &XS = ShapeOf(0);
    std::vector<int64_t> Perm = O.getAttrIntVec("perm");
    if (Perm.empty()) {
      for (size_t D = 0; D < XS.size(); ++D)
        Perm.push_back(static_cast<int64_t>(D));
      if (Perm.size() >= 2)
        std::swap(Perm[Perm.size() - 1], Perm[Perm.size() - 2]);
    }
    if (Perm.size() != XS.size())
      return Err("transpose perm length does not match input rank");
    std::vector<bool> Seen(XS.size(), false);
    for (int64_t P : Perm) {
      if (P < 0 || P >= static_cast<int64_t>(XS.size()) ||
          Seen[static_cast<size_t>(P)])
        return Err("transpose perm is not a permutation of the input rank");
      Seen[static_cast<size_t>(P)] = true;
    }
    std::vector<int64_t> Out(Perm.size());
    for (size_t D = 0; D < Perm.size(); ++D)
      Out[D] = XS[static_cast<size_t>(Perm[D])];
    if (OutT.Ty != TyOf(0))
      return Err("transpose must preserve dtype");
    return CheckOut(Out);
  }

  case OpKind::Reshape: {
    if (OutT.Ty != TyOf(0))
      return Err("reshape must preserve dtype");
    const auto &XS = ShapeOf(0);
    const auto &OS = OutT.Shape;
    const bool InDyn = !XS.empty() && isDyn(XS[0]);
    const bool OutDyn = !OS.empty() && isDyn(OS[0]);
    if (InDyn != OutDyn)
      return Err("reshape must keep the dynamic batch dim on both sides");
    int64_t InN = 1, OutN = 1;
    for (size_t D = InDyn ? 1 : 0; D < XS.size(); ++D)
      InN *= XS[D];
    for (size_t D = OutDyn ? 1 : 0; D < OS.size(); ++D)
      OutN *= OS[D];
    if (InN != OutN)
      return Err(formatString("reshape changes element count "
                              "(%lld -> %lld)",
                              (long long)InN, (long long)OutN));
    return Status::ok();
  }

  case OpKind::Cast:
    return CheckOut(ShapeOf(0));

  case OpKind::Softmax: {
    const auto &XS = ShapeOf(0);
    int64_t Axis = O.getAttrInt("axis", -1);
    if (Axis < 0)
      Axis += static_cast<int64_t>(XS.size());
    if (Axis != static_cast<int64_t>(XS.size()) - 1)
      return Err("softmax supports only the last axis");
    return CheckOut(XS);
  }

  case OpKind::GELU:
    return CheckOut(ShapeOf(0));

  case OpKind::BatchNorm:
  case OpKind::LayerNorm: {
    const auto &XS = ShapeOf(0);
    if (XS.empty())
      return Err("normalization input must have rank >= 1");
    const int64_t C = XS.back();
    for (size_t I = 1; I < O.numInputs(); ++I) {
      const LogicalTensor &P = G.tensor(O.input(I));
      if (!isDyn(C) && P.numElements() != C)
        return Err(formatString("normalization parameter %zu has %lld "
                                "elements, expected %lld channels",
                                I, (long long)P.numElements(),
                                (long long)C));
    }
    return CheckOut(XS);
  }

  case OpKind::Quantize:
  case OpKind::Dequantize: {
    const auto &XS = ShapeOf(0);
    const std::vector<double> Scales = O.getAttrFloatVec("scales");
    const std::vector<int64_t> Zps = O.getAttrIntVec("zps");
    const size_t PerChannel = std::max(Scales.size(), Zps.size());
    if (PerChannel > 1) {
      int64_t Axis = O.getAttrInt("axis", -1);
      if (Axis < 0 || Axis >= static_cast<int64_t>(XS.size()))
        return Err("per-channel quantization axis out of range");
      const int64_t Dim = XS[static_cast<size_t>(Axis)];
      if (Scales.size() > 1 && !isDyn(Dim) &&
          static_cast<int64_t>(Scales.size()) != Dim)
        return Err(formatString("per-channel scales length %zu does not "
                                "match axis dim %lld",
                                Scales.size(), (long long)Dim));
      if (Zps.size() > 1 && !isDyn(Dim) &&
          static_cast<int64_t>(Zps.size()) != Dim)
        return Err(formatString("per-channel zps length %zu does not "
                                "match axis dim %lld",
                                Zps.size(), (long long)Dim));
    }
    return CheckOut(XS);
  }

  case OpKind::DequantAcc: {
    const auto &AccS = ShapeOf(0);
    if (AccS.empty())
      return Err("dequant_acc accumulator must have rank >= 1");
    const int64_t Cols = AccS.back();
    const LogicalTensor &Comp = G.tensor(O.input(1));
    // A 1-element compensation is the a_zp == 0 sentinel the low-precision
    // pass emits (the kernel multiplies it by the zero point).
    if (!isDyn(Cols) && Comp.numElements() != Cols &&
        Comp.numElements() != 1)
      return Err(formatString("compensation has %lld elements, expected "
                              "%lld columns (or 1)",
                              (long long)Comp.numElements(),
                              (long long)Cols));
    const std::vector<double> Scales = O.getAttrFloatVec("scales");
    if (Scales.size() > 1 && !isDyn(Cols) &&
        static_cast<int64_t>(Scales.size()) != Cols)
      return Err(formatString("scales length %zu does not match %lld "
                              "columns",
                              Scales.size(), (long long)Cols));
    return CheckOut(AccS);
  }

  case OpKind::FusedOp: {
    const Graph *Sub = O.subgraph();
    if (!Sub)
      return Err("fused op has no subgraph");
    if (Sub->inputs().size() != O.numInputs() ||
        Sub->outputs().size() != O.numOutputs())
      return Err(formatString(
          "subgraph boundary arity (%zu in / %zu out) does not match the "
          "op boundary (%zu in / %zu out)",
          Sub->inputs().size(), Sub->outputs().size(), O.numInputs(),
          O.numOutputs()));
    for (size_t I = 0; I < O.numInputs(); ++I) {
      const LogicalTensor &Outer = G.tensor(O.input(I));
      const LogicalTensor &Inner = Sub->tensor(Sub->inputs()[I]);
      if (Outer.Ty != Inner.Ty || Outer.Shape != Inner.Shape)
        return Err(formatString("input %zu (%s) does not match subgraph "
                                "boundary tensor %s",
                                I, Outer.toString().c_str(),
                                Inner.toString().c_str()));
    }
    for (size_t I = 0; I < O.numOutputs(); ++I) {
      const LogicalTensor &Outer = G.tensor(O.output(I));
      const LogicalTensor &Inner = Sub->tensor(Sub->outputs()[I]);
      if (Outer.Ty != Inner.Ty || Outer.Shape != Inner.Shape)
        return Err(formatString("output %zu (%s) does not match subgraph "
                                "boundary tensor %s",
                                I, Outer.toString().c_str(),
                                Inner.toString().c_str()));
    }
    return Status::ok();
  }

  case OpKind::Sigmoid_:
    return Err("reserved op kind must not appear in a graph");
  }
  return Status::ok();
}

} // namespace

Status verifyGraph(const Graph &G, const char *Context) {
  // Structural invariants first: Graph::verify cross-checks the cached
  // producer/consumer maps against the op lists and catches references to
  // erased tensors; anything it reports is already a precise diagnosis.
  if (std::string E = G.verify(); !E.empty())
    return Status::error(StatusCode::InvalidGraph,
                         formatString("graph verifier%s%s: %s",
                                      *Context ? " after " : "", Context,
                                      E.c_str()));

  // Re-derive the producer relation from the ops themselves: exactly one
  // producer per tensor, and the use->def relation must be acyclic
  // (def-before-use over tensor ids). Done with Kahn's algorithm so a
  // cycle comes back as a located Status instead of the fatalError inside
  // Graph::topologicalOrder.
  const std::vector<int64_t> OpIds = G.opIds();
  std::unordered_map<int64_t, int64_t> ProducerOp;
  for (int64_t OpId : OpIds) {
    const Op &O = G.op(OpId);
    for (int64_t Out : O.outputs()) {
      auto [It, Inserted] = ProducerOp.try_emplace(Out, OpId);
      if (!Inserted)
        return OpError(Context, O)(formatString(
            "tensor t%lld already has producer op%lld", (long long)Out,
            (long long)It->second));
      if (G.isInput(Out))
        return OpError(Context, O)(formatString(
            "produces t%lld, which is listed as a graph input",
            (long long)Out));
    }
  }
  std::unordered_map<int64_t, int> Pending; // op -> unproduced inputs
  std::unordered_map<int64_t, std::vector<int64_t>> WaitingOn;
  std::vector<int64_t> Ready;
  for (int64_t OpId : OpIds) {
    const Op &O = G.op(OpId);
    int N = 0;
    for (int64_t In : O.inputs())
      if (auto It = ProducerOp.find(In); It != ProducerOp.end()) {
        ++N;
        WaitingOn[It->second].push_back(OpId);
      }
    Pending[OpId] = N;
    if (N == 0)
      Ready.push_back(OpId);
  }
  size_t Done = 0;
  while (!Ready.empty()) {
    const int64_t OpId = Ready.back();
    Ready.pop_back();
    ++Done;
    if (auto It = WaitingOn.find(OpId); It != WaitingOn.end())
      for (int64_t W : It->second)
        if (--Pending[W] == 0)
          Ready.push_back(W);
  }
  if (Done != OpIds.size())
    for (int64_t OpId : OpIds)
      if (Pending[OpId] > 0)
        return OpError(Context, G.op(OpId))(
            "is part of a def-before-use cycle");

  // Boundary closure: every graph output must have a definition (a
  // producing op, a graph input, or constant data); a dangling output
  // would read unwritten memory at execution time.
  for (int64_t Out : G.outputs())
    if (!ProducerOp.count(Out) && !G.isInput(Out) &&
        !G.tensor(Out).isConstant())
      return Status::error(
          StatusCode::InvalidGraph,
          formatString("graph verifier%s%s: graph output t%lld is dangling "
                       "(no producer, not an input, not constant)",
                       *Context ? " after " : "", Context, (long long)Out));

  // A consumed non-constant tensor with no producer must be a graph
  // input, otherwise it is a dangling read. (Graph::verify already
  // enforces this; re-checked here so the verifier stands alone.)
  for (int64_t OpId : OpIds) {
    const Op &O = G.op(OpId);
    for (int64_t In : O.inputs()) {
      const LogicalTensor &T = G.tensor(In);
      if (!ProducerOp.count(In) && !G.isInput(In) && !T.isConstant())
        return OpError(Context, O)(formatString(
            "reads dangling tensor t%lld (no producer, not an input, "
            "not constant)",
            (long long)In));
    }
  }

  // Dynamic-dim placement: the sentinel is only legal in the leading
  // position (flow legality along consuming ops is Graph::validate's
  // job and needs the full op-kind rules it implements).
  for (int64_t TId : G.tensorIds()) {
    const LogicalTensor &T = G.tensor(TId);
    for (size_t D = 1; D < T.Shape.size(); ++D)
      if (isDyn(T.Shape[D]))
        return Status::error(
            StatusCode::InvalidGraph,
            formatString("graph verifier%s%s: tensor t%lld has a dynamic "
                         "dim in non-leading position %zu",
                         *Context ? " after " : "", Context, (long long)TId,
                         D));
  }

  // Per-op shape/dtype consistency, recursing into fused subgraphs.
  for (int64_t OpId : OpIds) {
    const Op &O = G.op(OpId);
    if (Status S = checkOpShapes(G, O, OpError(Context, O)); !S.isOk())
      return S;
    if (O.kind() == OpKind::FusedOp && O.subgraph())
      if (Status S = verifyGraph(*O.subgraph(), Context); !S.isOk())
        return S;
  }
  return Status::ok();
}

} // namespace verify
} // namespace gc
