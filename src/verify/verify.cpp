//===- verify.cpp - Verification level resolution -------------------------===//
///
/// \file
/// GC_VERIFY resolution and the shared level cache. The individual
/// verifiers live in graph_verifier.cpp / tir_verifier.cpp /
/// program_verifier.cpp / memplan_verifier.cpp.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "support/common.h"
#include "support/env.h"

#include <atomic>

namespace gc {
namespace verify {

namespace {

VerifyLevel resolveFromEnv() {
#ifdef NDEBUG
  const char *Default = "graph";
#else
  const char *Default = "all";
#endif
  const std::string V = getEnvString("GC_VERIFY", Default);
  if (V == "off" || V == "0" || V == "none")
    return VerifyLevel::Off;
  if (V == "graph")
    return VerifyLevel::Graph;
  if (V == "passes")
    return VerifyLevel::Passes;
  if (V == "all")
    return VerifyLevel::All;
  if (V == "relational")
    return VerifyLevel::Relational;
  const std::string Msg =
      "GC_VERIFY must be one of off|graph|passes|all|relational, got \"" +
      V + "\"";
  fatalError(Msg.c_str());
}

/// Cached level + a "resolved" flag so the first call pays the env read
/// and every pass hook afterwards is one relaxed atomic load.
std::atomic<int> CachedLevel{-1};

} // namespace

VerifyLevel verifyLevel() {
  int L = CachedLevel.load(std::memory_order_relaxed);
  if (L < 0) {
    L = static_cast<int>(resolveFromEnv());
    CachedLevel.store(L, std::memory_order_relaxed);
  }
  return static_cast<VerifyLevel>(L);
}

VerifyLevel setVerifyLevel(VerifyLevel Level) {
  const VerifyLevel Prev = verifyLevel();
  CachedLevel.store(static_cast<int>(Level), std::memory_order_relaxed);
  return Prev;
}

void clearVerifyLevelCache() {
  CachedLevel.store(-1, std::memory_order_relaxed);
}

} // namespace verify
} // namespace gc
