//===- memplan_verifier.cpp - Memory plan alias checking ------------------===//
///
/// \file
/// Independent checker for the cross-partition execution plan: boundary
/// closure (every partition input is a graph input or an earlier
/// partition's output), topological list order, slot-table coverage of
/// every intermediate, and — the load-bearing part — an alias proof for
/// the packed arena. The checker recomputes partition reachability and
/// intermediate lifetimes from nothing but the boundary id lists, then
/// demands that any two slots whose lifetimes can coexist under SOME
/// DAG-consistent schedule occupy disjoint byte ranges. This is the same
/// may-coexist criterion the packer in api/session.cpp uses, but derived
/// separately from the plan's inputs rather than trusted from its output,
/// so a packer regression (or a hand-edited plan) fails here instead of
/// as silent cross-partition data corruption under the async scheduler.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "support/str.h"
#include "verify/relational.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gc {
namespace verify {

namespace {

Status planErr(const char *Context, const std::string &What) {
  return Status::error(StatusCode::Internal,
                       formatString("memory plan verifier%s%s: %s",
                                    *Context ? " after " : "", Context,
                                    What.c_str()));
}

} // namespace

Status verifyMemoryPlan(const MemoryPlanView &Plan, const char *Context) {
  const size_t N = Plan.Partitions.size();
  std::unordered_set<int64_t> GraphIns(Plan.GraphInputs.begin(),
                                       Plan.GraphInputs.end());
  std::unordered_set<int64_t> GraphOuts(Plan.GraphOutputs.begin(),
                                        Plan.GraphOutputs.end());

  // Producers: first partition listing the id as an output (duplicate
  // graph-output listings alias the first writer by design). Two DISTINCT
  // partitions claiming the same intermediate is a write-write conflict:
  // under the async scheduler both may run concurrently and the arena
  // slot has a single byte range, so the plan is rejected rather than
  // silently keeping the first writer.
  std::unordered_map<int64_t, uint32_t> ProducerOf;
  for (size_t I = 0; I < N; ++I)
    for (int64_t Out : Plan.Partitions[I].Outputs) {
      if (GraphIns.count(Out))
        return planErr(Context,
                       formatString("partition %zu writes graph input "
                                    "t%lld",
                                    I, (long long)Out));
      const auto Ins = ProducerOf.try_emplace(Out, static_cast<uint32_t>(I));
      if (!Ins.second && Ins.first->second != static_cast<uint32_t>(I) &&
          !GraphOuts.count(Out))
        return planErr(Context,
                       formatString("intermediate t%lld is written by both "
                                    "partition %u and partition %zu",
                                    (long long)Out, Ins.first->second, I));
    }

  // Closure + dependency edges. The slot consumers are collected here so
  // lifetimes below come from the boundary lists, not the packer.
  std::unordered_map<int64_t, size_t> SlotOf;
  for (size_t S = 0; S < Plan.Slots.size(); ++S) {
    if (!SlotOf.try_emplace(Plan.Slots[S].TensorId, S).second)
      return planErr(Context,
                     formatString("two arena slots are keyed by t%lld",
                                  (long long)Plan.Slots[S].TensorId));
  }
  std::vector<std::vector<uint32_t>> Succs(N);
  std::vector<std::vector<uint32_t>> SlotConsumers(Plan.Slots.size());
  for (size_t I = 0; I < N; ++I) {
    std::unordered_set<uint32_t> Preds;
    for (int64_t In : Plan.Partitions[I].Inputs) {
      if (GraphIns.count(In))
        continue;
      auto ProdIt = ProducerOf.find(In);
      if (ProdIt == ProducerOf.end())
        return planErr(Context,
                       formatString("partition %zu reads t%lld, which is "
                                    "neither a graph input nor any "
                                    "partition's output",
                                    I, (long long)In));
      if (ProdIt->second >= static_cast<uint32_t>(I))
        return planErr(Context,
                       formatString("partition list is not topologically "
                                    "ordered: t%lld is produced by "
                                    "partition %u but consumed by "
                                    "partition %zu",
                                    (long long)In, ProdIt->second, I));
      Preds.insert(ProdIt->second);
      if (GraphOuts.count(In))
        continue; // lives in the caller's output buffer, not the arena
      auto SlotIt = SlotOf.find(In);
      if (SlotIt == SlotOf.end())
        return planErr(Context,
                       formatString("intermediate t%lld read by partition "
                                    "%zu has no arena slot",
                                    (long long)In, I));
      SlotConsumers[SlotIt->second].push_back(static_cast<uint32_t>(I));
    }
    for (uint32_t P : Preds)
      Succs[P].push_back(static_cast<uint32_t>(I));
  }

  // Every slot must belong to a produced intermediate, and every
  // non-boundary partition output must have a slot (or nothing could ever
  // read or write it safely).
  for (const MemoryPlanView::Slot &S : Plan.Slots) {
    if (!ProducerOf.count(S.TensorId))
      return planErr(Context, formatString("arena slot for t%lld has no "
                                           "producing partition",
                                           (long long)S.TensorId));
    if (GraphOuts.count(S.TensorId) || GraphIns.count(S.TensorId))
      return planErr(Context,
                     formatString("boundary tensor t%lld must not be "
                                  "arena-allocated",
                                  (long long)S.TensorId));
    if (S.Offset + S.Bytes > Plan.ArenaBytes)
      return planErr(Context,
                     formatString("slot for t%lld spans [%llu, %llu), "
                                  "beyond the %llu byte arena",
                                  (long long)S.TensorId,
                                  (unsigned long long)S.Offset,
                                  (unsigned long long)(S.Offset + S.Bytes),
                                  (unsigned long long)Plan.ArenaBytes));
  }
  for (size_t I = 0; I < N; ++I)
    for (int64_t Out : Plan.Partitions[I].Outputs)
      if (!GraphOuts.count(Out) && !SlotOf.count(Out))
        return planErr(Context,
                       formatString("intermediate t%lld produced by "
                                    "partition %zu has no arena slot",
                                    (long long)Out, I));

  // Happens-before closure. The list order is topological (verified
  // above: edges point forward), so one reverse sweep closes it.
  std::vector<std::vector<bool>> Reach(N, std::vector<bool>(N, false));
  for (size_t I = N; I-- > 0;)
    for (uint32_t S : Succs[I]) {
      Reach[I][S] = true;
      for (size_t J = 0; J < N; ++J)
        if (Reach[S][J])
          Reach[I][J] = true;
    }

  // diesBefore(A, B): every use of slot A (producer + all consumers) is a
  // strict DAG predecessor of slot B's producer — A's bytes are dead
  // before B's first write under EVERY schedule the dependency edges
  // admit, not just the serial list order.
  const auto SlotProd = [&](size_t S) {
    return ProducerOf.at(Plan.Slots[S].TensorId);
  };
  const auto DiesBefore = [&](size_t A, size_t B) {
    const uint32_t ProdA = SlotProd(A), ProdB = SlotProd(B);
    if (ProdA == ProdB || !Reach[ProdA][ProdB])
      return false;
    for (uint32_t C : SlotConsumers[A])
      if (C == ProdB || !Reach[C][ProdB])
        return false;
    return true;
  };

  // At the relational tier, pairs whose safety rests on byte-range
  // disjointness (no dies-before ordering either way) are re-proven with
  // the symbolic engine over an UNKNOWN arena base: the base symbol
  // cancels in the affine difference, so the proof shows the packing is
  // translation-invariant rather than a coincidence of concrete offsets.
  const bool Symbolic = verifyLevel() >= VerifyLevel::Relational;
  constexpr int64_t kBaseHi = int64_t{1} << 47;
  SymCtx Ctx(/*Relational=*/true);
  const int32_t Base =
      Symbolic ? Ctx.addSym("arena", Interval{0, kBaseHi}, nullptr, nullptr)
               : -1;
  const auto SlotFootprint = [&](const MemoryPlanView::Slot &S) {
    Footprint F;
    F.Buffer = 0;
    F.Write = true;
    F.Sh = Footprint::Shape::Flat;
    F.Off = Ctx.add(Ctx.leaf(Base),
                    SymVal::constant(static_cast<int64_t>(S.Offset)));
    F.Len = SymVal::constant(static_cast<int64_t>(S.Bytes));
    F.Site = formatString("slot t%lld", (long long)S.TensorId);
    return F;
  };

  for (size_t A = 0; A < Plan.Slots.size(); ++A) {
    for (size_t B = A + 1; B < Plan.Slots.size(); ++B) {
      const MemoryPlanView::Slot &SA = Plan.Slots[A];
      const MemoryPlanView::Slot &SB = Plan.Slots[B];
      if (SA.Bytes == 0 || SB.Bytes == 0)
        continue;
      const bool Disjoint =
          SA.Offset + SA.Bytes <= SB.Offset || SB.Offset + SB.Bytes <= SA.Offset;
      if (!Disjoint && !DiesBefore(A, B) && !DiesBefore(B, A))
        return planErr(
            Context,
            formatString("slots for t%lld [%llu, %llu) and t%lld "
                         "[%llu, %llu) overlap but their lifetimes can "
                         "coexist under a DAG-consistent schedule",
                         (long long)SA.TensorId, (unsigned long long)SA.Offset,
                         (unsigned long long)(SA.Offset + SA.Bytes),
                         (long long)SB.TensorId, (unsigned long long)SB.Offset,
                         (unsigned long long)(SB.Offset + SB.Bytes)));
      if (Symbolic && Disjoint && !DiesBefore(A, B) && !DiesBefore(B, A)) {
        const int64_t ArenaElems =
            kBaseHi + static_cast<int64_t>(Plan.ArenaBytes);
        if (!footprintsDisjoint(Ctx, SlotFootprint(SA), SlotFootprint(SB),
                                ArenaElems))
          return planErr(
              Context,
              formatString("symbolic arena re-check could not prove slots "
                           "for t%lld and t%lld disjoint over an unknown "
                           "base (packer/engine inconsistency)",
                           (long long)SA.TensorId, (long long)SB.TensorId));
      }
    }
  }
  return Status::ok();
}

} // namespace verify
} // namespace gc
