//===- symbolic.h - Relational symbolic affine domain -----------*- C++ -*-===//
///
/// \file
/// The relational layer over interval.h that powers GC_VERIFY=relational:
/// a symbolic value domain whose elements are min/max trees over affine
/// forms (K + sum Coeff_i * Sym_i) of analysis symbols, each element also
/// carrying a sound interval box. Symbols stand for loop induction
/// variables and for div/mod-derived "digits" of a parallel grid index;
/// each may carry relational upper/lower bounds that are themselves
/// symbolic values referencing strictly earlier symbols, which is what
/// lets ub()/lb() prove correlated facts like
///
///   (npi*NSN + nsi)*NB + min(NB, N - (npi*NSN + nsi)*NB) <= N
///
/// exactly: substituting nsi's upper bound min(NSN, NBlocks - npi*NSN)-1
/// cancels the correlated terms instead of maximizing them independently
/// the way a plain interval product would.
///
/// Soundness contract: every SymVal's box is a correct over-approximation
/// of its concrete values, and ub()/lb() return bounds at least as tight
/// as the box. Any construction the domain cannot represent exactly
/// (non-affine products, overflowing coefficients, trees past the leaf
/// cap) collapses to a box — "cannot decide", never a wrong bound. With
/// a SymCtx in non-relational mode no symbols are ever created, every
/// value is a box, and the engine degenerates to exactly the PR-6
/// interval analysis: the fast fallback and the relational tier are one
/// implementation.
///
//===----------------------------------------------------------------------===//

#ifndef GC_VERIFY_SYMBOLIC_H
#define GC_VERIFY_SYMBOLIC_H

#include "verify/interval.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

namespace gc {
namespace verify {

/// One term of an affine form: Coeff * Sym.
struct AffTerm {
  int32_t Sym = -1;
  int64_t Coeff = 0;
};

/// Affine form K + sum of terms, terms sorted by symbol id, no zero
/// coefficients. All arithmetic is overflow-checked; operations that
/// would overflow report failure and the caller degrades to a box.
struct Affine {
  int64_t K = 0;
  std::vector<AffTerm> Terms;

  bool isConst() const { return Terms.empty(); }
  /// True when this is exactly one symbol with coefficient 1 and no
  /// constant — the only shape div/mod digit derivation accepts.
  bool isPureSym() const {
    return K == 0 && Terms.size() == 1 && Terms[0].Coeff == 1;
  }
};

/// Checked scalar helpers: false on int64 overflow.
inline bool addOv(int64_t A, int64_t B, int64_t &Out) {
  const __int128 R = static_cast<__int128>(A) + B;
  if (R < INT64_MIN || R > INT64_MAX)
    return false;
  Out = static_cast<int64_t>(R);
  return true;
}
inline bool mulOv(int64_t A, int64_t B, int64_t &Out) {
  const __int128 R = static_cast<__int128>(A) * B;
  if (R < INT64_MIN || R > INT64_MAX)
    return false;
  Out = static_cast<int64_t>(R);
  return true;
}

/// A + B; false on overflow.
inline bool affAdd(const Affine &A, const Affine &B, Affine &Out) {
  Out.Terms.clear();
  if (!addOv(A.K, B.K, Out.K))
    return false;
  size_t I = 0, J = 0;
  while (I < A.Terms.size() || J < B.Terms.size()) {
    if (J == B.Terms.size() ||
        (I < A.Terms.size() && A.Terms[I].Sym < B.Terms[J].Sym)) {
      Out.Terms.push_back(A.Terms[I++]);
    } else if (I == A.Terms.size() || B.Terms[J].Sym < A.Terms[I].Sym) {
      Out.Terms.push_back(B.Terms[J++]);
    } else {
      int64_t C;
      if (!addOv(A.Terms[I].Coeff, B.Terms[J].Coeff, C))
        return false;
      if (C != 0)
        Out.Terms.push_back({A.Terms[I].Sym, C});
      ++I;
      ++J;
    }
  }
  return true;
}

/// A * C; false on overflow.
inline bool affScale(const Affine &A, int64_t C, Affine &Out) {
  Out.Terms.clear();
  if (C == 0) {
    Out.K = 0;
    return true;
  }
  if (!mulOv(A.K, C, Out.K))
    return false;
  for (const AffTerm &T : A.Terms) {
    int64_t NC;
    if (!mulOv(T.Coeff, C, NC))
      return false;
    Out.Terms.push_back({T.Sym, NC});
  }
  return true;
}

/// A symbolic value: a tree whose internal nodes are Min/Max and whose
/// leaves are affine forms, plus an interval box that is ALWAYS a sound
/// over-approximation on its own (Kind::Box values carry only the box).
/// Trees are immutable after construction and shared by shared_ptr.
class SymVal {
public:
  enum class Kind : uint8_t { Box, Leaf, Min, Max };

  Kind K = Kind::Box;
  Interval B = Interval::top();
  Affine A;                           ///< Leaf payload
  std::shared_ptr<const SymVal> L, R; ///< Min/Max children

  static SymVal box(Interval I) {
    if (I.isConst())
      return constant(I.Lo); // a point box IS a constant — keeping it
                             // Box-kind would poison affine arithmetic
    SymVal V;
    V.K = Kind::Box;
    V.B = I;
    return V;
  }
  static SymVal top() { return box(Interval::top()); }
  static SymVal constant(int64_t C) {
    SymVal V;
    V.K = Kind::Leaf;
    V.A.K = C;
    V.B = Interval::constant(C);
    return V;
  }

  bool isConstant(int64_t &Out) const {
    if (K == Kind::Leaf && A.isConst()) {
      Out = A.K;
      return true;
    }
    if (B.isConst()) {
      Out = B.Lo;
      return true;
    }
    return false;
  }

  int leafCount() const {
    switch (K) {
    case Kind::Box:
    case Kind::Leaf:
      return 1;
    case Kind::Min:
    case Kind::Max:
      return L->leafCount() + R->leafCount();
    }
    return 1;
  }

  /// Same value, tighter (met) box. Sound: meet of two sound boxes.
  SymVal withBox(Interval I) const {
    SymVal V = *this;
    V.B = V.B.meet(I);
    return V;
  }
};

/// The symbol table and the arithmetic over SymVals. Non-copyable;
/// one per verifier run. In non-relational mode makeLoopSym() returns
/// boxes and no symbol is ever created.
class SymCtx {
public:
  /// Trees whose distributed form would exceed this many leaves collapse
  /// to their box instead (cost guard; precision loss only).
  static constexpr int kMaxLeaves = 64;
  /// Bound-substitution recursion guard (termination is guaranteed by
  /// strictly-decreasing symbol ids; the cap bounds pathological cost).
  static constexpr int kMaxSubstDepth = 48;

  struct Sym {
    std::string Name;
    Interval Range = Interval::top();
    /// Optional relational bounds: value <= Upper, value >= Lower. Both
    /// trees may only reference symbols with strictly smaller ids.
    std::shared_ptr<const SymVal> Upper, Lower;
    /// Digit definition: this symbol equals (Parent / Div) % Mod
    /// (Mod == 0 means plain Parent / Div), with Parent >= 0 known.
    int32_t Parent = -1;
    int64_t Div = 1;
    int64_t Mod = 0;
  };

  explicit SymCtx(bool Relational) : Relational(Relational) {}
  SymCtx(const SymCtx &) = delete;
  SymCtx &operator=(const SymCtx &) = delete;

  bool relational() const { return Relational; }
  const std::vector<Sym> &symbols() const { return Syms; }
  int32_t numSyms() const { return static_cast<int32_t>(Syms.size()); }

  /// Creates a fresh root symbol (loop induction variable). In
  /// non-relational mode returns a box over \p Range and creates nothing.
  /// \p Lower / \p Upper are optional relational bounds (may be null).
  SymVal makeLoopSym(const std::string &Name, Interval Range,
                     const SymVal *Lower, const SymVal *Upper) {
    if (!Relational)
      return SymVal::box(Range);
    const int32_t Id = numSyms();
    Sym S;
    S.Name = Name;
    S.Range = Range;
    if (Lower && Lower->K != SymVal::Kind::Box)
      S.Lower = std::make_shared<SymVal>(*Lower);
    if (Upper && Upper->K != SymVal::Kind::Box)
      S.Upper = std::make_shared<SymVal>(*Upper);
    Syms.push_back(std::move(S));
    return leafOf(Id, Range);
  }

  /// Raw symbol creation for the race engine (case instantiation); same
  /// contract as makeLoopSym but always creates, even without bounds.
  int32_t addSym(const std::string &Name, Interval Range,
                 std::shared_ptr<const SymVal> Lower,
                 std::shared_ptr<const SymVal> Upper, int32_t Parent = -1,
                 int64_t Div = 1, int64_t Mod = 0) {
    Sym S;
    S.Name = Name;
    S.Range = Range;
    S.Lower = std::move(Lower);
    S.Upper = std::move(Upper);
    S.Parent = Parent;
    S.Div = Div;
    S.Mod = Mod;
    Syms.push_back(std::move(S));
    return numSyms() - 1;
  }

  /// A leaf referencing an existing symbol.
  SymVal leaf(int32_t Id) const { return leafOf(Id, Syms[Id].Range); }

  // --- Arithmetic (all results are sound over-approximations) ---

  SymVal add(const SymVal &X, const SymVal &Y) const {
    const Interval BoxR = intervalAdd(X.B, Y.B);
    if (X.K == SymVal::Kind::Box || Y.K == SymVal::Kind::Box)
      return SymVal::box(BoxR);
    if (X.leafCount() * Y.leafCount() > kMaxLeaves)
      return SymVal::box(BoxR);
    return addDist(X, Y).withBox(BoxR);
  }

  SymVal neg(const SymVal &X) const {
    const Interval BoxR = intervalSub(Interval::constant(0), X.B);
    switch (X.K) {
    case SymVal::Kind::Box:
      return SymVal::box(BoxR);
    case SymVal::Kind::Leaf: {
      Affine NA;
      if (!affScale(X.A, -1, NA))
        return SymVal::box(BoxR);
      return leafVal(std::move(NA)).withBox(BoxR);
    }
    case SymVal::Kind::Min:
    case SymVal::Kind::Max: {
      // -min(a,b) = max(-a,-b) and dually.
      SymVal V;
      V.K = X.K == SymVal::Kind::Min ? SymVal::Kind::Max : SymVal::Kind::Min;
      V.L = std::make_shared<SymVal>(neg(*X.L));
      V.R = std::make_shared<SymVal>(neg(*X.R));
      V.B = BoxR;
      return V;
    }
    }
    return SymVal::box(BoxR);
  }

  SymVal sub(const SymVal &X, const SymVal &Y) const { return add(X, neg(Y)); }

  /// X * C for a compile-time constant C.
  SymVal scale(const SymVal &X, int64_t C) const {
    if (C == 0)
      return SymVal::constant(0);
    const Interval BoxR = intervalMul(X.B, Interval::constant(C));
    if (C < 0) {
      if (C == INT64_MIN)
        return SymVal::box(BoxR);
      return neg(scale(X, -C)).withBox(BoxR);
    }
    switch (X.K) {
    case SymVal::Kind::Box:
      return SymVal::box(BoxR);
    case SymVal::Kind::Leaf: {
      Affine SA;
      if (!affScale(X.A, C, SA))
        return SymVal::box(BoxR);
      return leafVal(std::move(SA)).withBox(BoxR);
    }
    case SymVal::Kind::Min:
    case SymVal::Kind::Max: {
      SymVal V;
      V.K = X.K;
      V.L = std::make_shared<SymVal>(scale(*X.L, C));
      V.R = std::make_shared<SymVal>(scale(*X.R, C));
      V.B = BoxR;
      return V;
    }
    }
    return SymVal::box(BoxR);
  }

  SymVal mul(const SymVal &X, const SymVal &Y) const {
    int64_t C;
    if (Y.isConstant(C))
      return scale(X, C);
    if (X.isConstant(C))
      return scale(Y, C);
    return SymVal::box(intervalMul(X.B, Y.B));
  }

  SymVal min(const SymVal &X, const SymVal &Y) const {
    return mkMinMax(SymVal::Kind::Min, X, Y, intervalMin(X.B, Y.B));
  }
  SymVal max(const SymVal &X, const SymVal &Y) const {
    return mkMinMax(SymVal::Kind::Max, X, Y, intervalMax(X.B, Y.B));
  }

  /// Integer division, modeled exactly only for digit-shaped operands
  /// (pure symbol / positive constant with a non-negative parent); all
  /// other shapes keep the interval result.
  SymVal div(const SymVal &X, const SymVal &Y) {
    const Interval BoxR = intervalDiv(X.B, Y.B);
    int64_t C;
    if (!Y.isConstant(C) || C <= 0)
      return SymVal::box(BoxR);
    if (C == 1)
      return X.withBox(BoxR);
    int64_t XC;
    if (X.isConstant(XC) && XC >= 0)
      return SymVal::constant(XC / C);
    if (X.K == SymVal::Kind::Leaf) {
      // Exact fold: when X = C * Y term-for-term, X / C = Y in truncating
      // division regardless of sign (e.g. (v*32)/32 from strength-reduced
      // row indices stays symbolic instead of collapsing to the box).
      bool Exact = X.A.K % C == 0;
      for (const AffTerm &T : X.A.Terms)
        Exact = Exact && T.Coeff % C == 0;
      if (Exact) {
        SymVal R = X;
        R.A.K /= C;
        for (AffTerm &T : R.A.Terms)
          T.Coeff /= C;
        R.B = BoxR;
        return R;
      }
    }
    const int32_t D = digitOf(X, C, /*IsMod=*/false);
    if (D < 0)
      return SymVal::box(BoxR);
    return leaf(D).withBox(BoxR);
  }

  SymVal mod(const SymVal &X, const SymVal &Y) {
    const Interval BoxR = intervalMod(X.B, Y.B);
    int64_t C;
    if (!Y.isConstant(C) || C <= 0)
      return SymVal::box(BoxR);
    if (C == 1)
      return SymVal::constant(0); // x % 1 == 0; avoids a degenerate digit
    int64_t XC;
    if (X.isConstant(XC) && XC >= 0)
      return SymVal::constant(XC % C);
    const int32_t D = digitOf(X, C, /*IsMod=*/true);
    if (D < 0)
      return SymVal::box(BoxR);
    return leaf(D).withBox(BoxR);
  }

  // --- Bound queries ---

  /// Greatest possible value (kMax = unbounded). Uses relational bound
  /// substitution on affine leaves, never looser than the box.
  int64_t ub(const SymVal &V) { return ubRec(V, 0); }
  /// Least possible value (kMin = unbounded).
  int64_t lb(const SymVal &V) { return lbRec(V, 0); }
  Interval range(const SymVal &V) { return {lb(V), ub(V)}; }

  /// Collects the symbol ids a value's tree references (leaves only; the
  /// race engine closes over bound trees itself).
  void collectSyms(const SymVal &V, std::vector<int32_t> &Out) const {
    switch (V.K) {
    case SymVal::Kind::Box:
      return;
    case SymVal::Kind::Leaf:
      for (const AffTerm &T : V.A.Terms)
        Out.push_back(T.Sym);
      return;
    case SymVal::Kind::Min:
    case SymVal::Kind::Max:
      collectSyms(*V.L, Out);
      collectSyms(*V.R, Out);
      return;
    }
  }

  /// Rewrites every symbol reference through \p Map (Map[old] = new id;
  /// ids outside the map or mapped to -1 make the result a box — the
  /// race engine always provides a total map for the symbols in play).
  SymVal remap(const SymVal &V, const std::vector<int32_t> &Map) const {
    switch (V.K) {
    case SymVal::Kind::Box:
      return V;
    case SymVal::Kind::Leaf: {
      Affine NA;
      NA.K = V.A.K;
      for (const AffTerm &T : V.A.Terms) {
        if (T.Sym < 0 || static_cast<size_t>(T.Sym) >= Map.size() ||
            Map[T.Sym] < 0)
          return SymVal::box(V.B);
        NA.Terms.push_back({Map[T.Sym], T.Coeff});
      }
      std::sort(NA.Terms.begin(), NA.Terms.end(),
                [](const AffTerm &A, const AffTerm &B) {
                  return A.Sym < B.Sym;
                });
      // A non-injective map can fuse terms; merge duplicates.
      std::vector<AffTerm> Merged;
      for (const AffTerm &T : NA.Terms) {
        if (!Merged.empty() && Merged.back().Sym == T.Sym) {
          if (!addOv(Merged.back().Coeff, T.Coeff, Merged.back().Coeff))
            return SymVal::box(V.B);
        } else {
          Merged.push_back(T);
        }
      }
      Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                                  [](const AffTerm &T) {
                                    return T.Coeff == 0;
                                  }),
                   Merged.end());
      NA.Terms = std::move(Merged);
      return leafVal(std::move(NA)).withBox(V.B);
    }
    case SymVal::Kind::Min:
    case SymVal::Kind::Max: {
      SymVal W;
      W.K = V.K;
      W.L = std::make_shared<SymVal>(remap(*V.L, Map));
      W.R = std::make_shared<SymVal>(remap(*V.R, Map));
      W.B = V.B;
      return W;
    }
    }
    return V;
  }

private:
  bool Relational;
  std::vector<Sym> Syms;
  /// (parent, div, mod) -> existing digit symbol, so the same textual
  /// div/mod re-derivation yields the same symbol (Lets recompute them).
  std::map<std::tuple<int32_t, int64_t, int64_t>, int32_t> DigitMemo;

  static SymVal leafVal(Affine A) {
    SymVal V;
    V.K = SymVal::Kind::Leaf;
    V.A = std::move(A);
    return V; // box set by caller via withBox / leafBox
  }

  SymVal leafOf(int32_t Id, Interval Range) const {
    SymVal V;
    V.K = SymVal::Kind::Leaf;
    V.A.Terms.push_back({Id, 1});
    V.B = Range;
    return V;
  }

  /// Plain range-based bounds of an affine form (no substitution).
  int64_t rangeUB(const Affine &A) const {
    int64_t Acc = A.K;
    for (const AffTerm &T : A.Terms) {
      const Interval &R = Syms[T.Sym].Range;
      Acc = satAdd(Acc, satMul(T.Coeff, T.Coeff > 0 ? R.Hi : R.Lo));
    }
    return Acc;
  }
  int64_t rangeLB(const Affine &A) const {
    int64_t Acc = A.K;
    for (const AffTerm &T : A.Terms) {
      const Interval &R = Syms[T.Sym].Range;
      Acc = satAdd(Acc, satMul(T.Coeff, T.Coeff > 0 ? R.Lo : R.Hi));
    }
    return Acc;
  }

  int64_t ubRec(const SymVal &V, int Depth) {
    switch (V.K) {
    case SymVal::Kind::Box:
      return V.B.Hi;
    case SymVal::Kind::Min:
      return std::min(ubRec(*V.L, Depth), ubRec(*V.R, Depth));
    case SymVal::Kind::Max:
      return std::max(ubRec(*V.L, Depth), ubRec(*V.R, Depth));
    case SymVal::Kind::Leaf:
      return std::min(affUB(V.A, Depth), V.B.Hi);
    }
    return V.B.Hi;
  }
  int64_t lbRec(const SymVal &V, int Depth) {
    switch (V.K) {
    case SymVal::Kind::Box:
      return V.B.Lo;
    case SymVal::Kind::Min:
      return std::min(lbRec(*V.L, Depth), lbRec(*V.R, Depth));
    case SymVal::Kind::Max:
      return std::max(lbRec(*V.L, Depth), lbRec(*V.R, Depth));
    case SymVal::Kind::Leaf:
      return std::max(affLB(V.A, Depth), V.B.Lo);
    }
    return V.B.Lo;
  }

  /// Upper bound of an affine form with relational substitution: find
  /// the highest-id term whose direction-relevant bound exists, replace
  /// c*s by c*bound(s) (sound since the bound tree only references
  /// smaller ids — the multiset of ids strictly decreases, so this
  /// terminates), and keep the tighter of the substituted and plain
  /// range-based results.
  int64_t affUB(const Affine &A, int Depth) {
    const int64_t Plain = rangeUB(A);
    if (Depth >= kMaxSubstDepth)
      return Plain;
    for (size_t I = A.Terms.size(); I-- > 0;) {
      const AffTerm &T = A.Terms[I];
      const Sym &S = Syms[T.Sym];
      const std::shared_ptr<const SymVal> &Bnd =
          T.Coeff > 0 ? S.Upper : S.Lower;
      if (!Bnd)
        continue;
      Affine Rest = A;
      Rest.Terms.erase(Rest.Terms.begin() + static_cast<long>(I));
      SymVal RestV = leafVal(std::move(Rest));
      RestV.B = Interval{rangeLB(RestV.A), rangeUB(RestV.A)};
      const SymVal Sub = add(RestV, scale(*Bnd, T.Coeff));
      return std::min(ubRec(Sub, Depth + 1), Plain);
    }
    return Plain;
  }
  int64_t affLB(const Affine &A, int Depth) {
    const int64_t Plain = rangeLB(A);
    if (Depth >= kMaxSubstDepth)
      return Plain;
    for (size_t I = A.Terms.size(); I-- > 0;) {
      const AffTerm &T = A.Terms[I];
      const Sym &S = Syms[T.Sym];
      const std::shared_ptr<const SymVal> &Bnd =
          T.Coeff > 0 ? S.Lower : S.Upper;
      if (!Bnd)
        continue;
      Affine Rest = A;
      Rest.Terms.erase(Rest.Terms.begin() + static_cast<long>(I));
      SymVal RestV = leafVal(std::move(Rest));
      RestV.B = Interval{rangeLB(RestV.A), rangeUB(RestV.A)};
      const SymVal Sub = add(RestV, scale(*Bnd, T.Coeff));
      return std::max(lbRec(Sub, Depth + 1), Plain);
    }
    return Plain;
  }

  /// Distributing addition: min(a,b) + t = min(a+t, b+t) (exact — both
  /// distributions hold with equality for min and max), leaves add as
  /// affine forms. Caller has already bounded the leaf product.
  SymVal addDist(const SymVal &X, const SymVal &Y) const {
    if (X.K == SymVal::Kind::Min || X.K == SymVal::Kind::Max) {
      SymVal V;
      V.K = X.K;
      V.L = std::make_shared<SymVal>(addDist(*X.L, Y));
      V.R = std::make_shared<SymVal>(addDist(*X.R, Y));
      V.B = intervalAdd(X.B, Y.B);
      return V;
    }
    if (Y.K == SymVal::Kind::Min || Y.K == SymVal::Kind::Max) {
      SymVal V;
      V.K = Y.K;
      V.L = std::make_shared<SymVal>(addDist(X, *Y.L));
      V.R = std::make_shared<SymVal>(addDist(X, *Y.R));
      V.B = intervalAdd(X.B, Y.B);
      return V;
    }
    // Leaf + Leaf.
    Affine Sum;
    if (!affAdd(X.A, Y.A, Sum))
      return SymVal::box(intervalAdd(X.B, Y.B));
    return leafVal(std::move(Sum)).withBox(intervalAdd(X.B, Y.B));
  }

  SymVal mkMinMax(SymVal::Kind K, const SymVal &X, const SymVal &Y,
                  Interval BoxR) const {
    int64_t XC, YC;
    if (X.isConstant(XC) && Y.isConstant(YC))
      return SymVal::constant(K == SymVal::Kind::Min ? std::min(XC, YC)
                                                     : std::max(XC, YC));
    if (X.K == SymVal::Kind::Box && Y.K == SymVal::Kind::Box)
      return SymVal::box(BoxR);
    if (X.leafCount() + Y.leafCount() > kMaxLeaves)
      return SymVal::box(BoxR);
    SymVal V;
    V.K = K;
    V.L = std::make_shared<SymVal>(X);
    V.R = std::make_shared<SymVal>(Y);
    V.B = BoxR;
    return V;
  }

  /// Digit symbol for X / C or X % C when X is a pure symbol whose value
  /// is known non-negative. Composition folds chained derivations:
  ///   ((p/d)%m)/c -> (p/(d*c)) % (m/c)   when c | m (or m == 0)
  ///   ((p/d)%m)%c -> (p/d) % c           when c | m (or m == 0)
  /// Returns -1 when the shape does not fit (caller boxes).
  int32_t digitOf(const SymVal &X, int64_t C, bool IsMod) {
    if (!Relational || X.K != SymVal::Kind::Leaf || !X.A.isPureSym())
      return -1;
    const int32_t Id = X.A.Terms[0].Sym;
    const Sym &S = Syms[Id];
    int32_t Parent;
    int64_t Div, Mod;
    if (S.Parent < 0) {
      // Root symbol: only usable when its own range is non-negative.
      if (!S.Range.boundedBelow() || S.Range.Lo < 0)
        return -1;
      Parent = Id;
      Div = IsMod ? 1 : C;
      Mod = IsMod ? C : 0;
    } else {
      Parent = S.Parent;
      if (IsMod) {
        if (S.Mod != 0 && S.Mod % C != 0)
          return -1;
        Div = S.Div;
        Mod = C;
      } else {
        if (S.Mod != 0 && S.Mod % C != 0)
          return -1;
        int64_t ND;
        if (!mulOv(S.Div, C, ND))
          return -1;
        Div = ND;
        Mod = S.Mod == 0 ? 0 : S.Mod / C;
        if (Mod == 1)
          return -1; // degenerate digit (always 0); keep the box instead
      }
    }
    const auto Key = std::make_tuple(Parent, Div, Mod);
    auto It = DigitMemo.find(Key);
    if (It != DigitMemo.end())
      return It->second;
    // Range of (Parent / Div) % Mod from the parent's range.
    const Interval PR = Syms[Parent].Range;
    Interval DR = intervalDiv(PR, Interval::constant(Div));
    if (Mod != 0)
      DR = DR.meet(Interval{0, Mod - 1});
    if (DR.Lo < 0)
      DR.Lo = 0;
    const int32_t NewId =
        addSym(Syms[Parent].Name + (IsMod ? "%" : "/") + std::to_string(C),
               DR, nullptr, nullptr, Parent, Div, Mod);
    DigitMemo.emplace(Key, NewId);
    return NewId;
  }
};

} // namespace verify
} // namespace gc

#endif // GC_VERIFY_SYMBOLIC_H
