//===- tir_verifier.cpp - Tensor IR static verification -------------------===//
///
/// \file
/// The Tensor IR verifier: buffer-table consistency, variable
/// def-before-use in execution order, loop-bound sanity, intrinsic-call
/// arity against the documented conventions (tir/intrinsics.h), and a
/// bounds analysis proving every Load/Store/BufferRef element offset —
/// and the tile/flat footprints of intrinsic calls — stays inside its
/// buffer's extent for all loop iterations.
///
/// The analysis runs over the symbolic domain of verify/symbolic.h. At
/// GC_VERIFY levels below `relational` the SymCtx creates no symbols and
/// every value is an interval box, reproducing the PR-6 interval
/// analysis bit for bit (including its deliberate skip of non-constant
/// tile extents, which a non-relational domain cannot decide without
/// false positives). At `relational`, loop variables become symbols
/// carrying their bounds as symbolic values — min-shaped upper bounds
/// included — so correlated edge-tile footprints like
/// Off = i*TILE, Rows = min(TILE, N - i*TILE) are proven exactly and a
/// genuinely escaping access is rejected with a located Status.
///
/// The analysis is deliberately one-pass (no fixpoint): a loop body is
/// interpreted once with the loop variable widened to [lo(Begin),
/// hi(End)-1], which is sound because TIR expressions are pure and
/// loop-carried scalar state does not exist in the lowered form (every
/// Let re-binds from loop variables downward).
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "support/str.h"
#include "verify/relational.h"
#include "verify/symbolic.h"

#include <unordered_map>

namespace gc {
namespace verify {

namespace {

using namespace tir;

/// Buffer/scalar arity of each intrinsic, from the conventions table in
/// tir/intrinsics.h (the same contract the evaluator and the kernel
/// adapters marshal by).
struct IntrinsicSig {
  uint8_t NumBufs = 0;
  uint8_t NumScalars = 0;
};

IntrinsicSig sigOf(Intrinsic In) {
  switch (In) {
  case Intrinsic::BrgemmF32:
  case Intrinsic::BrgemmU8S8:
    return {3, 10};
  case Intrinsic::ReluTile:
  case Intrinsic::ExpTile:
  case Intrinsic::TanhTile:
  case Intrinsic::SqrtTile:
  case Intrinsic::RecipTile:
  case Intrinsic::SquareTile:
  case Intrinsic::SigmoidTile:
  case Intrinsic::GeluTile:
    return {1, 3};
  case Intrinsic::AffineTile:
    return {1, 5};
  case Intrinsic::AddTile:
  case Intrinsic::SubTile:
  case Intrinsic::MulTile:
  case Intrinsic::DivTile:
  case Intrinsic::MaxTile:
  case Intrinsic::MinTile:
    return {2, 4};
  case Intrinsic::AddRowVecTile:
  case Intrinsic::SubRowVecTile:
  case Intrinsic::MulRowVecTile:
  case Intrinsic::AddColVecTile:
  case Intrinsic::SubColVecTile:
  case Intrinsic::MulColVecTile:
  case Intrinsic::DivColVecTile:
    return {2, 3};
  case Intrinsic::ReduceSumRowsTile:
  case Intrinsic::ReduceMaxRowsTile:
    return {2, 4};
  case Intrinsic::CopyTile:
  case Intrinsic::TransposeTile:
    return {2, 4};
  case Intrinsic::CopyTileRaw:
  case Intrinsic::Permute0213:
    return {2, 5};
  case Intrinsic::FillTile:
    return {1, 4};
  case Intrinsic::DequantAccTile:
    return {4, 5};
  case Intrinsic::QuantU8Tile:
  case Intrinsic::DequantU8Tile:
    return {2, 6};
  case Intrinsic::QuantS8Tile:
    return {2, 5};
  case Intrinsic::DequantS8PerChannelTile:
    return {3, 4};
  case Intrinsic::CastS32F32Tile:
    return {2, 5};
  case Intrinsic::PackAF32:
  case Intrinsic::PackAU8:
  case Intrinsic::PackBF32:
  case Intrinsic::PackBS8Vnni:
    return {2, 6};
  case Intrinsic::UnpackAF32:
  case Intrinsic::UnpackAU8:
    return {2, 5};
  }
  return {0, 0};
}

/// Expected element type per buffer argument; DataType-count means
/// "unconstrained" (type-agnostic kernels like copyTileRaw).
constexpr DataType kAnyTy = static_cast<DataType>(255);

void bufferTypesOf(Intrinsic In, DataType (&Ty)[4]) {
  Ty[0] = Ty[1] = Ty[2] = Ty[3] = kAnyTy;
  switch (In) {
  case Intrinsic::BrgemmF32:
    Ty[0] = Ty[1] = Ty[2] = DataType::F32;
    break;
  case Intrinsic::BrgemmU8S8:
    Ty[0] = DataType::U8;
    Ty[1] = DataType::S8;
    Ty[2] = DataType::S32;
    break;
  case Intrinsic::QuantU8Tile:
    Ty[0] = DataType::U8;
    Ty[1] = DataType::F32;
    break;
  case Intrinsic::QuantS8Tile:
    Ty[0] = DataType::S8;
    Ty[1] = DataType::F32;
    break;
  case Intrinsic::DequantU8Tile:
    Ty[0] = DataType::F32;
    Ty[1] = DataType::U8;
    break;
  case Intrinsic::DequantS8PerChannelTile:
    Ty[0] = DataType::F32;
    Ty[1] = DataType::S8;
    Ty[2] = DataType::F32;
    break;
  case Intrinsic::DequantAccTile:
    Ty[0] = DataType::F32;
    Ty[1] = DataType::S32;
    Ty[2] = DataType::S32;
    Ty[3] = DataType::F32;
    break;
  case Intrinsic::CastS32F32Tile:
    Ty[0] = DataType::F32;
    Ty[1] = DataType::S32;
    break;
  case Intrinsic::PackAF32:
  case Intrinsic::PackBF32:
  case Intrinsic::UnpackAF32:
    Ty[0] = Ty[1] = DataType::F32;
    break;
  case Intrinsic::PackAU8:
  case Intrinsic::UnpackAU8:
    Ty[0] = Ty[1] = DataType::U8;
    break;
  case Intrinsic::PackBS8Vnni:
    Ty[0] = Ty[1] = DataType::S8;
    break;
  default:
    // Elementwise / reduction / movement tile families operate on f32
    // (the type-agnostic ones were cleared to kAnyTy above).
    if (In != Intrinsic::CopyTileRaw && In != Intrinsic::Permute0213)
      Ty[0] = Ty[1] = Ty[2] = Ty[3] = DataType::F32;
    break;
  }
}

/// Per-function verification state.
class FuncVerifier {
public:
  FuncVerifier(const Func &F, const char *Context)
      : F(F), Context(Context),
        Ctx(verifyLevel() >= VerifyLevel::Relational) {}

  Status run() {
    if (Status S = checkBuffers(); !S.isOk())
      return S;
    return walkStmts(F.Body, "body");
  }

private:
  const Func &F;
  const char *Context;
  SymCtx Ctx;
  /// Defined variables with their symbolic value (top when unknown).
  /// Execution-order accumulation matches the executor's frame-slot
  /// semantics: a binding stays readable after its scope exits.
  std::unordered_map<const VarNode *, SymVal> Env;

  Status err(const std::string &Where, const std::string &What) const {
    return Status::error(
        StatusCode::Internal,
        formatString("tir verifier%s%s: func %s: %s: %s",
                     *Context ? " after " : "", Context, F.Name.c_str(),
                     Where.c_str(), What.c_str()));
  }

  Status checkBuffers() const {
    for (size_t I = 0; I < F.Buffers.size(); ++I) {
      const BufferDecl &B = F.Buffers[I];
      const std::string Where = formatString("buffer %zu (%s)", I,
                                             B.Name.c_str());
      if (B.Id != static_cast<int>(I))
        return err(Where, formatString("id %d does not match table index",
                                       B.Id));
      if (dataTypeSize(B.ElemTy) <= 0)
        return err(Where, "invalid element type");
      for (int64_t D : B.Dims)
        if (D <= 0)
          return err(Where, formatString("non-positive dimension %lld",
                                         (long long)D));
      if (B.Scope == BufferScope::Temp && B.ArenaOffset >= 0 &&
          B.ArenaOffset + B.numBytes() > F.ArenaBytes)
        return err(Where,
                   formatString("arena slot [%lld, %lld) exceeds the %lld "
                                "byte arena",
                                (long long)B.ArenaOffset,
                                (long long)(B.ArenaOffset + B.numBytes()),
                                (long long)F.ArenaBytes));
      if ((B.Scope == BufferScope::Param ||
           B.Scope == BufferScope::FoldedConst) &&
          B.GraphTensorId < 0)
        return err(Where, "parameter buffer has no graph tensor binding");
      if (B.Scope == BufferScope::Const && B.GraphTensorId < 0 &&
          (B.BakedIndex < 0 ||
           B.BakedIndex >= static_cast<int>(F.Baked.size())))
        return err(Where, "const buffer has neither a graph tensor "
                          "binding nor valid baked data");
    }
    return Status::ok();
  }

  Status checkVar(const Var &V, const std::string &Where) const {
    if (F.NumSlots >= 0 && (V->Slot < 0 || V->Slot >= F.NumSlots))
      return err(Where, formatString("variable %s has slot %d outside the "
                                     "%d-slot frame",
                                     V->Name.c_str(), V->Slot, F.NumSlots));
    return Status::ok();
  }

  /// Evaluates the symbolic value of an integer expression, checking
  /// def-before-use and any embedded Load bounds along the way.
  Status evalExpr(const Expr &E, const std::string &Where, SymVal &Out) {
    switch (E->kind()) {
    case ExprNode::Kind::IntImm:
      Out = SymVal::constant(static_cast<const IntImmNode &>(*E).Value);
      return Status::ok();
    case ExprNode::Kind::FloatImm:
      Out = SymVal::top(); // float values are not tracked
      return Status::ok();
    case ExprNode::Kind::Var: {
      const auto *V = static_cast<const VarNode *>(E.get());
      auto It = Env.find(V);
      if (It == Env.end())
        return err(Where, formatString("variable %s is used before any "
                                       "definition",
                                       V->Name.c_str()));
      if (F.NumSlots >= 0 && (V->Slot < 0 || V->Slot >= F.NumSlots))
        return err(Where,
                   formatString("variable %s has slot %d outside the "
                                "%d-slot frame",
                                V->Name.c_str(), V->Slot, F.NumSlots));
      Out = E->type() == ScalarType::I64 ? It->second : SymVal::top();
      return Status::ok();
    }
    case ExprNode::Kind::Binary: {
      const auto &B = static_cast<const BinaryNode &>(*E);
      SymVal A, C;
      if (Status S = evalExpr(B.A, Where, A); !S.isOk())
        return S;
      if (Status S = evalExpr(B.B, Where, C); !S.isOk())
        return S;
      if (E->type() == ScalarType::F64) {
        Out = SymVal::top();
        return Status::ok();
      }
      switch (B.Op) {
      case BinOp::Add: Out = Ctx.add(A, C); break;
      case BinOp::Sub: Out = Ctx.sub(A, C); break;
      case BinOp::Mul: Out = Ctx.mul(A, C); break;
      case BinOp::Div: Out = Ctx.div(A, C); break;
      case BinOp::Mod: Out = Ctx.mod(A, C); break;
      case BinOp::Min: Out = Ctx.min(A, C); break;
      case BinOp::Max: Out = Ctx.max(A, C); break;
      }
      return Status::ok();
    }
    case ExprNode::Kind::Load: {
      const auto &L = static_cast<const LoadNode &>(*E);
      if (Status S = checkAccess(L.BufferId, L.Indices, Where, "load");
          !S.isOk())
        return S;
      Out = SymVal::top();
      return Status::ok();
    }
    }
    Out = SymVal::top();
    return Status::ok();
  }

  /// Shared verdict for a fully-constructed [MinIdx, MaxIdx] touched
  /// range: proved / undecided (counted) / rejected. \p Precise gates
  /// rejection: the caller sets it when the bounds are exact enough that
  /// an escaping over-approximation means a real escape (always true for
  /// the relational domain on the forms the lowering emits; for the box
  /// domain only when the old constant-extent preconditions held).
  Status judge(const BufferDecl &B, int64_t MinIdx, int64_t MaxIdx,
               bool Precise, const std::string &Where, const char *ArgName) {
    const int64_t Elems = B.numElements();
    const bool Bounded =
        MinIdx != Interval::kMin && MaxIdx != Interval::kMax;
    if (Bounded && MinIdx >= 0 && MaxIdx < Elems) {
      noteBoundsProved();
      return Status::ok();
    }
    if (!Bounded || !Precise) {
      noteBoundsUndecided();
      return Status::ok(); // cannot decide — never a false positive
    }
    return err(Where,
               formatString("%s footprint of %s reaches elements "
                            "[%lld, %lld], outside the buffer's %lld "
                            "elements",
                            ArgName, B.Name.c_str(), (long long)MinIdx,
                            (long long)MaxIdx, (long long)Elems));
  }

  /// Bounds-checks a (possibly multi-dimensional) element access against
  /// the buffer extents via the row-major flattened offset, which is what
  /// the executor actually computes.
  Status checkAccess(int BufferId, const std::vector<Expr> &Indices,
                     const std::string &Where, const char *What) {
    if (BufferId < 0 || BufferId >= static_cast<int>(F.Buffers.size()))
      return err(Where, formatString("%s references unknown buffer %d",
                                     What, BufferId));
    const BufferDecl &B = F.buffer(BufferId);
    if (Indices.size() != B.Dims.size() && Indices.size() != 1)
      return err(Where,
                 formatString("%s of %s uses %zu indices for a rank-%zu "
                              "buffer",
                              What, B.Name.c_str(), Indices.size(),
                              B.Dims.size()));
    SymVal Flat = SymVal::constant(0);
    if (Indices.size() == B.Dims.size()) {
      int64_t Stride = 1;
      std::vector<int64_t> Strides(B.Dims.size());
      for (size_t D = B.Dims.size(); D-- > 0;) {
        Strides[D] = Stride;
        Stride = satMul(Stride, B.Dims[D]);
      }
      for (size_t D = 0; D < Indices.size(); ++D) {
        SymVal Idx;
        if (Status S = evalExpr(Indices[D], Where, Idx); !S.isOk())
          return S;
        Flat = Ctx.add(Flat, Ctx.scale(Idx, Strides[D]));
      }
    } else {
      if (Status S = evalExpr(Indices[0], Where, Flat); !S.isOk())
        return S;
    }
    return judge(B, Ctx.lb(Flat), Ctx.ub(Flat), /*Precise=*/true, Where,
                 What);
  }

  /// Proves a strided 2-D tile access Base[Off + r*Ld + c] (r < Rows,
  /// c < Cols) in bounds. The maximum touched element for a non-empty
  /// tile is Off + (Rows-1)*Ld + (Cols-1); evaluating it as one symbolic
  /// expression is what keeps correlated min-extents exact at the
  /// relational level. The box domain keeps the PR-6 preconditions
  /// (constant extents) before an escape may reject.
  Status checkTileFootprint(const BufferDecl &B, const SymVal &Off,
                            const SymVal &Rows, const SymVal &Cols,
                            const SymVal &Ld, const std::string &Where,
                            const char *ArgName) {
    int64_t LdC;
    if (!Ld.isConstant(LdC)) {
      noteBoundsUndecided();
      return Status::ok(); // non-constant stride: outside every tier
    }
    if (Ctx.ub(Rows) <= 0 || Ctx.ub(Cols) <= 0) {
      noteBoundsProved();
      return Status::ok(); // no elements touched
    }
    int64_t RC, CC;
    const bool Precise =
        Ctx.relational() ||
        (Rows.isConstant(RC) && Cols.isConstant(CC) &&
         Ctx.range(Off).bounded());
    const SymVal RowsM1 = Ctx.add(Rows, SymVal::constant(-1));
    const SymVal MaxV = Ctx.add(
        Off, Ctx.add(Ctx.scale(RowsM1, std::max<int64_t>(LdC, 0)),
                     Ctx.add(Cols, SymVal::constant(-1))));
    const SymVal MinV =
        Ctx.add(Off, Ctx.scale(RowsM1, std::min<int64_t>(LdC, 0)));
    return judge(B, Ctx.lb(MinV), Ctx.ub(MaxV), Precise, Where, ArgName);
  }

  /// Flat footprint: Base[Off .. Off + Len) must be inside the buffer.
  Status checkFlatFootprint(const BufferDecl &B, const SymVal &Off,
                            const SymVal &Len, const std::string &Where,
                            const char *ArgName) {
    if (Ctx.ub(Len) <= 0) {
      noteBoundsProved();
      return Status::ok();
    }
    int64_t LC;
    const bool Precise =
        Ctx.relational() || (Len.isConstant(LC) && Ctx.range(Off).bounded());
    const SymVal MaxV = Ctx.add(Off, Ctx.add(Len, SymVal::constant(-1)));
    return judge(B, Ctx.lb(Off), Ctx.ub(MaxV), Precise, Where, ArgName);
  }

  Status checkCall(const CallNode &C, const std::string &Where) {
    const IntrinsicSig Sig = sigOf(C.In);
    if (C.Buffers.size() != Sig.NumBufs)
      return err(Where, formatString("%s expects %u buffer args, has %zu",
                                     intrinsicName(C.In), Sig.NumBufs,
                                     C.Buffers.size()));
    if (C.Scalars.size() != Sig.NumScalars)
      return err(Where, formatString("%s expects %u scalar args, has %zu",
                                     intrinsicName(C.In), Sig.NumScalars,
                                     C.Scalars.size()));

    DataType ExpectTy[4];
    bufferTypesOf(C.In, ExpectTy);
    // DequantAccTile with a constant-zero activation zero point never
    // reads the compensation arg; the lowering aliases it to the f32
    // scale buffer, so its element type is unconstrained.
    if (C.In == Intrinsic::DequantAccTile && C.Scalars.size() >= 5) {
      int64_t AZp = 0;
      if (tir::asConstInt(C.Scalars[4], AZp) && AZp == 0)
        ExpectTy[2] = kAnyTy;
    }
    std::vector<SymVal> Offs(C.Buffers.size());
    for (size_t I = 0; I < C.Buffers.size(); ++I) {
      const BufferRef &R = C.Buffers[I];
      if (R.BufferId < 0 || R.BufferId >= static_cast<int>(F.Buffers.size()))
        return err(Where,
                   formatString("%s buffer arg %zu references unknown "
                                "buffer %d",
                                intrinsicName(C.In), I, R.BufferId));
      const BufferDecl &B = F.buffer(R.BufferId);
      if (ExpectTy[I] != kAnyTy && B.ElemTy != ExpectTy[I])
        return err(Where,
                   formatString("%s buffer arg %zu (%s) has element type "
                                "%s, kernel expects %s",
                                intrinsicName(C.In), I, B.Name.c_str(),
                                dataTypeName(B.ElemTy),
                                dataTypeName(ExpectTy[I])));
      Offs[I] = SymVal::constant(0);
      if (R.Offset)
        if (Status S = evalExpr(R.Offset, Where, Offs[I]); !S.isOk())
          return S;
      // Base offset must itself be inside the buffer whenever provable.
      const Interval OffR = Ctx.range(Offs[I]);
      if (OffR.bounded() && (OffR.Lo < 0 || OffR.Hi >= B.numElements()))
        return err(Where,
                   formatString("%s buffer arg %zu offset range "
                                "[%lld, %lld] is outside %s's %lld "
                                "elements",
                                intrinsicName(C.In), I, (long long)OffR.Lo,
                                (long long)OffR.Hi, B.Name.c_str(),
                                (long long)B.numElements()));
    }

    std::vector<SymVal> Sc(C.Scalars.size());
    for (size_t I = 0; I < C.Scalars.size(); ++I)
      if (Status S = evalExpr(C.Scalars[I], Where, Sc[I]); !S.isOk())
        return S;

    // Footprint proofs per family (scalar layout per tir/intrinsics.h).
    const auto Buf = [&](size_t I) -> const BufferDecl & {
      return F.buffer(C.Buffers[I].BufferId);
    };
    const SymVal One = SymVal::constant(1);
    switch (C.In) {
    case Intrinsic::ReluTile:
    case Intrinsic::ExpTile:
    case Intrinsic::TanhTile:
    case Intrinsic::SqrtTile:
    case Intrinsic::RecipTile:
    case Intrinsic::SquareTile:
    case Intrinsic::SigmoidTile:
    case Intrinsic::GeluTile:
    case Intrinsic::AffineTile:
    case Intrinsic::FillTile:
      return checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1], Sc[2], Where,
                                "X");
    case Intrinsic::AddTile:
    case Intrinsic::SubTile:
    case Intrinsic::MulTile:
    case Intrinsic::DivTile:
    case Intrinsic::MaxTile:
    case Intrinsic::MinTile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "X");
          !S.isOk())
        return S;
      return checkTileFootprint(Buf(1), Offs[1], Sc[0], Sc[1], Sc[3], Where,
                                "Y");
    case Intrinsic::AddRowVecTile:
    case Intrinsic::SubRowVecTile:
    case Intrinsic::MulRowVecTile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "X");
          !S.isOk())
        return S;
      return checkFlatFootprint(Buf(1), Offs[1], Sc[1], Where, "V");
    case Intrinsic::AddColVecTile:
    case Intrinsic::SubColVecTile:
    case Intrinsic::MulColVecTile:
    case Intrinsic::DivColVecTile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "X");
          !S.isOk())
        return S;
      return checkFlatFootprint(Buf(1), Offs[1], Sc[0], Where, "V");
    case Intrinsic::ReduceSumRowsTile:
    case Intrinsic::ReduceMaxRowsTile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "X");
          !S.isOk())
        return S;
      return checkFlatFootprint(Buf(1), Offs[1], Sc[0], Where, "Out");
    case Intrinsic::CopyTile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "D");
          !S.isOk())
        return S;
      return checkTileFootprint(Buf(1), Offs[1], Sc[0], Sc[1], Sc[3], Where,
                                "S");
    case Intrinsic::CopyTileRaw:
      // B[D,S] S[Rows,Cols,LdD,LdS,ElemSize]: same tile shape both sides.
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "D");
          !S.isOk())
        return S;
      return checkTileFootprint(Buf(1), Offs[1], Sc[0], Sc[1], Sc[3], Where,
                                "S");
    case Intrinsic::TransposeTile:
      // Dst is Rows x Cols; Src is read as Src[c*LdS + r].
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "D");
          !S.isOk())
        return S;
      return checkTileFootprint(Buf(1), Offs[1], Sc[1], Sc[0], Sc[3], Where,
                                "S");
    case Intrinsic::Permute0213: {
      // 4-D [A,B,C,D] -> [A,C,B,D]: both sides touch exactly the flat
      // product of the four extents.
      const SymVal Prod =
          Ctx.mul(Ctx.mul(Sc[0], Sc[1]), Ctx.mul(Sc[2], Sc[3]));
      if (Status S = checkFlatFootprint(Buf(0), Offs[0], Prod, Where, "D");
          !S.isOk())
        return S;
      return checkFlatFootprint(Buf(1), Offs[1], Prod, Where, "S");
    }
    case Intrinsic::QuantU8Tile:
    case Intrinsic::QuantS8Tile:
    case Intrinsic::DequantU8Tile:
    case Intrinsic::CastS32F32Tile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "D");
          !S.isOk())
        return S;
      return checkTileFootprint(Buf(1), Offs[1], Sc[0], Sc[1], Sc[3], Where,
                                "S");
    case Intrinsic::DequantS8PerChannelTile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "D");
          !S.isOk())
        return S;
      if (Status S = checkTileFootprint(Buf(1), Offs[1], Sc[0], Sc[1],
                                        Sc[3], Where, "S");
          !S.isOk())
        return S;
      return checkFlatFootprint(Buf(2), Offs[2], Sc[1], Where, "Scale");
    case Intrinsic::DequantAccTile:
      if (Status S = checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1],
                                        Sc[2], Where, "D");
          !S.isOk())
        return S;
      if (Status S = checkTileFootprint(Buf(1), Offs[1], Sc[0], Sc[1],
                                        Sc[3], Where, "S");
          !S.isOk())
        return S;
      if (Status S = checkFlatFootprint(Buf(2), Offs[2], Sc[1], Where,
                                        "Comp");
          !S.isOk())
        return S;
      return checkFlatFootprint(Buf(3), Offs[3], Sc[1], Where, "Scale");
    case Intrinsic::BrgemmF32:
    case Intrinsic::BrgemmU8S8: {
      // C tile: M x N on stride Ldc (both layouts keep Ldc at S[5]).
      if (Status S = checkTileFootprint(Buf(2), Offs[2], Sc[0], Sc[1],
                                        Sc[5], Where, "C");
          !S.isOk())
        return S;
      // A flat span: (Batch-1)*AStrideB + (M-1)*Lda + K.
      const SymVal BatchM1 = Ctx.add(Sc[8], SymVal::constant(-1));
      const SymVal ALen = Ctx.add(
          Ctx.mul(BatchM1, Sc[6]),
          Ctx.add(Ctx.mul(Ctx.sub(Sc[0], One), Sc[3]), Sc[2]));
      if (Status S = checkFlatFootprint(Buf(0), Offs[0], ALen, Where, "A");
          !S.isOk())
        return S;
      // B flat span: f32 reads (K-1)*Ldb + N per batch; the VNNI layout
      // reads ceil(K/4) row groups of 4*NPadded.
      SymVal BLen;
      if (C.In == Intrinsic::BrgemmF32) {
        BLen = Ctx.add(Ctx.mul(BatchM1, Sc[7]),
                       Ctx.add(Ctx.mul(Ctx.sub(Sc[2], One), Sc[4]), Sc[1]));
      } else {
        int64_t KC;
        // ceil(K/4)*4 <= K+3 bounds the non-constant case soundly.
        const int64_t KGroups4 =
            Sc[2].isConstant(KC) ? ((KC + 3) / 4) * 4 : -1;
        const SymVal KPad = KGroups4 >= 0
                                ? SymVal::constant(KGroups4)
                                : Ctx.add(Sc[2], SymVal::constant(3));
        BLen = Ctx.add(Ctx.mul(BatchM1, Sc[7]), Ctx.mul(KPad, Sc[4]));
      }
      return checkFlatFootprint(Buf(1), Offs[1], BLen, Where, "B");
    }
    case Intrinsic::PackAF32:
    case Intrinsic::PackAU8: {
      // S[M,K,SrcLd,MB,KB,Transposed]: src tile is M x K (or K x M when
      // transposed) on SrcLd. The packed dest covers its whole buffer by
      // construction; its base-offset check above is the documented
      // precision limit.
      int64_t Tr;
      if (!Sc[5].isConstant(Tr)) {
        noteBoundsUndecided();
        return Status::ok();
      }
      return checkTileFootprint(Buf(1), Offs[1], Tr ? Sc[1] : Sc[0],
                                Tr ? Sc[0] : Sc[1], Sc[2], Where, "S");
    }
    case Intrinsic::PackBF32:
    case Intrinsic::PackBS8Vnni: {
      // S[K,N,SrcLd,KB,NB,Transposed]: src tile is K x N (or N x K).
      int64_t Tr;
      if (!Sc[5].isConstant(Tr)) {
        noteBoundsUndecided();
        return Status::ok();
      }
      return checkTileFootprint(Buf(1), Offs[1], Tr ? Sc[1] : Sc[0],
                                Tr ? Sc[0] : Sc[1], Sc[2], Where, "S");
    }
    case Intrinsic::UnpackAF32:
    case Intrinsic::UnpackAU8:
      // S[M,K,MB,KB,DstLd]: dest tile is M x K on DstLd; the packed src
      // is read whole (base-offset check only, same limit as pack dest).
      return checkTileFootprint(Buf(0), Offs[0], Sc[0], Sc[1], Sc[4], Where,
                                "D");
    }
    return Status::ok();
  }

  Status walkStmts(const StmtList &L, const std::string &Path) {
    for (size_t I = 0; I < L.size(); ++I)
      if (Status S = walkStmt(L[I], formatString("%s[%zu]", Path.c_str(), I));
          !S.isOk())
        return S;
    return Status::ok();
  }

  Status walkStmt(const Stmt &St, const std::string &Path) {
    switch (St->kind()) {
    case StmtNode::Kind::Seq: {
      const auto &S = static_cast<const SeqNode &>(*St);
      const std::string P =
          S.Tag.empty() ? Path + ".seq" : Path + ".seq(" + S.Tag + ")";
      return walkStmts(S.Body, P);
    }
    case StmtNode::Kind::Let: {
      const auto &Let = static_cast<const LetNode &>(*St);
      if (!Let.BoundVar)
        return err(Path, "let binds no variable");
      SymVal V = SymVal::top();
      if (Status S = evalExpr(Let.Value, Path + ".let", V); !S.isOk())
        return S;
      if (Status S = checkVar(Let.BoundVar, Path + ".let"); !S.isOk())
        return S;
      Env[Let.BoundVar.get()] =
          Let.BoundVar->type() == ScalarType::I64 ? V : SymVal::top();
      return Status::ok();
    }
    case StmtNode::Kind::Store: {
      const auto &S = static_cast<const StoreNode &>(*St);
      SymVal V;
      if (Status E = evalExpr(S.Value, Path + ".store", V); !E.isOk())
        return E;
      return checkAccess(S.BufferId, S.Indices, Path + ".store", "store");
    }
    case StmtNode::Kind::Call: {
      const auto &C = static_cast<const CallNode &>(*St);
      return checkCall(C, Path + ".call(" +
                              std::string(intrinsicName(C.In)) + ")");
    }
    case StmtNode::Kind::For: {
      const auto &For = static_cast<const ForNode &>(*St);
      const std::string P =
          Path + (For.Parallel ? ".pfor(" : ".for(") +
          (For.LoopVar ? For.LoopVar->Name : std::string("?")) + ")";
      if (!For.LoopVar)
        return err(P, "loop has no induction variable");
      SymVal Begin, End, Step;
      if (Status S = evalExpr(For.Begin, P, Begin); !S.isOk())
        return S;
      if (Status S = evalExpr(For.End, P, End); !S.isOk())
        return S;
      if (Status S = evalExpr(For.Step, P, Step); !S.isOk())
        return S;
      const Interval StepR = Ctx.range(Step);
      if (StepR.boundedAbove() && StepR.Hi <= 0)
        return err(P, formatString("non-positive loop step %lld",
                                   (long long)StepR.Hi));
      if (For.LoopVar->type() != ScalarType::I64)
        return err(P, "loop variable must be an integer");
      if (Status S = checkVar(For.LoopVar, P); !S.isOk())
        return S;
      // Definitely-zero-trip loop: the body can never execute, so there
      // is nothing to prove inside it (and proving against the empty
      // iteration space would reject vacuously-safe bodies).
      const Interval BeginR = Ctx.range(Begin);
      const Interval EndR = Ctx.range(End);
      const Interval VarRange{BeginR.Lo, satAdd(EndR.Hi, -1)};
      if (!(VarRange.empty() && BeginR.isConst() && EndR.boundedAbove())) {
        // The loop symbol carries its symbolic bounds (v >= Begin,
        // v <= End - 1) — this is where min-shaped clamped loop ends
        // like nsi < min(NSN, NBlocks - npi*NSN) enter the relational
        // domain.
        const SymVal UpperB = Ctx.add(End, SymVal::constant(-1));
        Env[For.LoopVar.get()] =
            Ctx.makeLoopSym(For.LoopVar->Name, VarRange, &Begin, &UpperB);
        if (Status S = walkStmts(For.Body, P); !S.isOk())
          return S;
      }
      // After the loop the variable holds begin + k*step for some k the
      // analysis does not track exactly.
      Env[For.LoopVar.get()] = SymVal::top();
      return Status::ok();
    }
    }
    return Status::ok();
  }
};

} // namespace

Status verifyFunc(const Func &F, const char *Context) {
  return FuncVerifier(F, Context).run();
}

} // namespace verify
} // namespace gc
