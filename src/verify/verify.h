//===- verify.h - Static verification layer ---------------------*- C++ -*-===//
///
/// \file
/// Static verifiers for every artifact the lowering pipeline produces:
/// Graph IR, Tensor IR functions, compiled bytecode Programs, and the
/// cross-partition memory plan. Each verifier independently re-derives the
/// invariants the producing stage is supposed to establish and returns a
/// pinpointed Status (op id / statement path / instruction index) through
/// the existing error model — no verifier trusts bookkeeping computed by
/// the stage it checks.
///
/// What each verifier proves:
///  * verifyGraph — structural def-before-use over tensor ids (acyclic
///    producer relation, no dangling inputs/outputs, producer/consumer map
///    consistency), per-op-kind dtype/shape consistency against the
///    reference semantics (broadcast rules, matmul contraction dims,
///    reduce/transpose/reshape shape algebra, normalization parameter
///    shapes, fused-op boundary agreement, recursively into subgraphs),
///    and dynamic-dim flow legality.
///  * verifyFunc — variable def-before-use in execution order, loop-bound
///    sanity (integer bounds, positive constant steps), buffer-table
///    consistency (ids, extents, arena placement), intrinsic call
///    arity/shape-scalar conventions, and an affine interval analysis
///    proving every Load/Store/BufferRef element offset stays inside its
///    buffer's extent for all loop iterations.
///  * verifyProgram — every register index within the register image,
///    jump targets within the code block, call/par descriptor indices
///    valid, and a structured abstract interpretation of the canonical
///    loop shapes the program builder emits that bounds induction
///    registers and proves strength-reduced load/store/call offsets stay
///    inside their buffers. A Program that passes is safe to hand to the
///    executor's unchecked dispatch loop (the precondition for ever
///    mmap-loading Programs from a persistent cache).
///  * verifyMemoryPlan — partition-boundary closure (every partition input
///    is a graph input, an earlier partition's output, or a graph output
///    produced earlier), topological partition order, and an independent
///    recomputation of cross-partition lifetimes proving that any two
///    arena slots whose byte ranges overlap can never be simultaneously
///    live under ANY schedule consistent with the partition DAG.
///
/// Verification level is resolved once from GC_VERIFY
/// (off | graph | passes | all); Debug builds default to "all", Release
/// builds to "graph". Verifiers run at compile time only — nothing here
/// is on the execute hot path.
///
//===----------------------------------------------------------------------===//

#ifndef GC_VERIFY_VERIFY_H
#define GC_VERIFY_VERIFY_H

#include "graph/graph.h"
#include "support/status.h"
#include "tir/function.h"

#include <cstdint>
#include <vector>

namespace gc {
namespace exec {
struct Program;
} // namespace exec

namespace verify {

/// How much of the pipeline re-checks its own output.
enum class VerifyLevel : uint8_t {
  Off = 0,    ///< no verification
  Graph = 1,  ///< graph verified once per Session::compile entry
  Passes = 2, ///< + after every graph pass and Tensor IR pass
  All = 3,    ///< + final TIR, bytecode Program and memory plan
  /// All, with the TIR/bytecode bounds engines running over the
  /// relational symbolic domain (verify/symbolic.h): correlated
  /// min(TILE, N - i) edge-tile extents and strength-reduced induction
  /// offsets are proven exactly instead of skipped, and every parallel
  /// bytecode loop gets the static race proof (verify/relational.h).
  Relational = 4,
};

/// Resolved verification level: GC_VERIFY=off|graph|passes|all|relational,
/// defaulting to All in Debug builds and Graph in Release builds. Cached
/// after the first call (reading it on every pass hook must be free).
VerifyLevel verifyLevel();

/// Test seam: overrides the cached level and returns the previous one —
/// tests set an explicit level and restore the previous value.
VerifyLevel setVerifyLevel(VerifyLevel Level);

/// Test seam: invalidates the cached level so the next verifyLevel()
/// call re-resolves from GC_VERIFY. Without this, a test that changes
/// the environment variable after any earlier test (or fixture setup)
/// already touched verifyLevel() silently keeps the stale cached level.
void clearVerifyLevelCache();

/// Full Graph IR verification (structure, per-op shape/dtype rules,
/// dynamic-dim flow). \p Context prefixes the error message, e.g. the
/// name of the pass that just ran.
Status verifyGraph(const graph::Graph &G, const char *Context = "");

/// Tensor IR function verification. Runs on both pre-slot and
/// slot-assigned functions (slot/arena invariants are only enforced once
/// the corresponding pass has run, i.e. F.NumSlots >= 0 / ArenaOffset set).
Status verifyFunc(const tir::Func &F, const char *Context = "");

/// Compiled bytecode Program verification.
Status verifyProgram(const exec::Program &P, const char *Context = "");

/// Load-time validation entry point for the persistent artifact cache:
/// full bytecode Program verification plus a relinked-kernel-pointer
/// check, run UNCONDITIONALLY (GC_VERIFY is a trust dial for this
/// process's own pipeline; a Program deserialized from disk is untrusted
/// input and always earns the proof before reaching the unchecked
/// dispatch loop).
Status verifyLoadedProgram(const exec::Program &P, const char *Context = "");

/// The memory-plan facts the alias checker consumes, decoupled from
/// api::CompiledGraph's internals so Session can bridge into it and tests
/// can corrupt it freely.
struct MemoryPlanView {
  /// One arena slot backing a cross-partition intermediate.
  struct Slot {
    int64_t TensorId = -1;
    uint64_t Offset = 0; ///< byte offset into the shared arena
    uint64_t Bytes = 0;
  };
  /// Per-partition boundary tensor ids, in partition list order (the
  /// order the serial scheduler executes).
  struct Partition {
    std::vector<int64_t> Inputs;
    std::vector<int64_t> Outputs;
  };
  std::vector<Partition> Partitions;
  std::vector<int64_t> GraphInputs;
  std::vector<int64_t> GraphOutputs;
  std::vector<Slot> Slots;
  uint64_t ArenaBytes = 0;
};

/// Memory-plan alias checking: boundary closure, topological order, and
/// non-overlap of simultaneously-live arena slots under every
/// DAG-consistent schedule (lifetimes recomputed from scratch).
Status verifyMemoryPlan(const MemoryPlanView &Plan, const char *Context = "");

} // namespace verify
} // namespace gc

#endif // GC_VERIFY_VERIFY_H
