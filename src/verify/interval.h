//===- interval.h - Saturating integer intervals ----------------*- C++ -*-===//
///
/// \file
/// Tiny interval-arithmetic domain used by the Tensor IR and bytecode
/// verifiers to bound loop variables, induction registers and affine
/// offsets. Bounds saturate at kMin/kMax (the "unbounded" sentinels);
/// every transfer function over-approximates, so an access is only
/// reported out-of-bounds when its whole over-approximated range is known
/// and still escapes the buffer — an unbounded range is "cannot decide",
/// never a false positive.
///
//===----------------------------------------------------------------------===//

#ifndef GC_VERIFY_INTERVAL_H
#define GC_VERIFY_INTERVAL_H

#include <algorithm>
#include <cstdint>

namespace gc {
namespace verify {

/// Inclusive integer interval [Lo, Hi] with saturating bounds.
struct Interval {
  static constexpr int64_t kMin = INT64_MIN;
  static constexpr int64_t kMax = INT64_MAX;

  int64_t Lo = kMin;
  int64_t Hi = kMax;

  static Interval top() { return {kMin, kMax}; }
  static Interval constant(int64_t V) { return {V, V}; }
  static Interval range(int64_t Lo, int64_t Hi) { return {Lo, Hi}; }

  bool isConst() const { return Lo == Hi && Lo != kMin && Lo != kMax; }
  bool boundedBelow() const { return Lo != kMin; }
  bool boundedAbove() const { return Hi != kMax; }
  bool bounded() const { return boundedBelow() && boundedAbove(); }
  /// Empty = contradictory bounds (e.g. a definitely zero-trip loop body).
  bool empty() const { return Lo > Hi; }

  Interval join(const Interval &O) const {
    return {std::min(Lo, O.Lo), std::max(Hi, O.Hi)};
  }
  Interval meet(const Interval &O) const {
    return {std::max(Lo, O.Lo), std::min(Hi, O.Hi)};
  }
};

/// Saturating scalar ops. A saturated operand stays saturated: arithmetic
/// on an unbounded bound can never tighten it.
inline int64_t satAdd(int64_t A, int64_t B) {
  if (A == Interval::kMin || B == Interval::kMin)
    return Interval::kMin;
  if (A == Interval::kMax || B == Interval::kMax)
    return Interval::kMax;
  const __int128 R = static_cast<__int128>(A) + B;
  if (R <= Interval::kMin)
    return Interval::kMin;
  if (R >= Interval::kMax)
    return Interval::kMax;
  return static_cast<int64_t>(R);
}

inline int64_t satMul(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  const bool Neg = (A < 0) != (B < 0);
  if (A == Interval::kMin || B == Interval::kMin || A == Interval::kMax ||
      B == Interval::kMax)
    return Neg ? Interval::kMin : Interval::kMax;
  const __int128 R = static_cast<__int128>(A) * B;
  if (R <= Interval::kMin)
    return Interval::kMin;
  if (R >= Interval::kMax)
    return Interval::kMax;
  return static_cast<int64_t>(R);
}

inline Interval intervalAdd(const Interval &A, const Interval &B) {
  return {satAdd(A.Lo, B.Lo), satAdd(A.Hi, B.Hi)};
}

inline Interval intervalSub(const Interval &A, const Interval &B) {
  const int64_t NegHi = B.Lo == Interval::kMin ? Interval::kMax
                        : B.Lo == Interval::kMax ? Interval::kMin
                                                 : -B.Lo;
  const int64_t NegLo = B.Hi == Interval::kMax ? Interval::kMin
                        : B.Hi == Interval::kMin ? Interval::kMax
                                                 : -B.Hi;
  return intervalAdd(A, {NegLo, NegHi});
}

inline Interval intervalMul(const Interval &A, const Interval &B) {
  const int64_t C[4] = {satMul(A.Lo, B.Lo), satMul(A.Lo, B.Hi),
                        satMul(A.Hi, B.Lo), satMul(A.Hi, B.Hi)};
  return {*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
}

inline Interval intervalMin(const Interval &A, const Interval &B) {
  return {std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
}

inline Interval intervalMax(const Interval &A, const Interval &B) {
  return {std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

/// Division / modulo only model the common positive-divisor cases the
/// lowering emits (tile counts, blocked-layout index math); anything else
/// degrades to top.
inline Interval intervalDiv(const Interval &A, const Interval &B) {
  if (B.isConst() && B.Lo > 0 && A.bounded())
    return {A.Lo / B.Lo - (A.Lo % B.Lo < 0 ? 1 : 0),
            A.Hi / B.Lo - (A.Hi % B.Lo < 0 ? 1 : 0)};
  return Interval::top();
}

inline Interval intervalMod(const Interval &A, const Interval &B) {
  if (B.isConst() && B.Lo > 0) {
    if (A.boundedBelow() && A.Lo >= 0)
      return {0, B.Lo - 1}; // non-negative dividend: C++ % stays in range
    return {-(B.Lo - 1), B.Lo - 1};
  }
  return Interval::top();
}

} // namespace verify
} // namespace gc

#endif // GC_VERIFY_INTERVAL_H
