//===- relational.cpp - Footprint disjointness + race engine --------------===//
///
/// \file
/// Implementation of the footprint disjointness test and the parallel
/// race checker declared in relational.h, plus the process-wide
/// verification statistics counters.
///
/// The race proof obligation: for a parallel loop over v with body
/// footprints F(v), show that for all a != b in the iteration space,
/// every pair (f in F(a), g in F(b)) with a write on a shared buffer is
/// disjoint. Two instantiation strategies produce the ordered pair
/// (a, b), a < b, as fresh symbols:
///
///  * RAW — the body indexes with v directly: one case, it2 carries the
///    relational lower bound it1 + step.
///  * DIGITS — the body decomposed v into radix digits (bt = v/GridMN,
///    mpi = (v/NPN)%MPN, npi = v%NPN). After validating that the digits
///    tile the iteration space bijectively, a != b iff some digit
///    differs; case-split on the FIRST (most significant) differing
///    digit: higher digits shared, the differing digit ordered
///    (d2 >= d1 + 1), lower digits independent per side.
///
/// Per-iteration helper symbols (inner serial loop variables) are cloned
/// per side with their relational bounds remapped through the side's
/// symbol map, so correlated facts like nsi < NBlocks - npi*NSN survive
/// into the instantiated proof. Everything undecidable is a rejection.
///
//===----------------------------------------------------------------------===//

#include "verify/relational.h"

#include "support/str.h"

#include <atomic>

namespace gc {
namespace verify {

namespace {

std::atomic<uint64_t> StatBoundsProved{0};
std::atomic<uint64_t> StatBoundsUndecided{0};
std::atomic<uint64_t> StatRacePairsProved{0};

} // namespace

VerifyStats verifyStats() {
  VerifyStats S;
  S.BoundsProved = StatBoundsProved.load(std::memory_order_relaxed);
  S.BoundsUndecided = StatBoundsUndecided.load(std::memory_order_relaxed);
  S.RacePairsProved = StatRacePairsProved.load(std::memory_order_relaxed);
  return S;
}

void resetVerifyStats() {
  StatBoundsProved.store(0, std::memory_order_relaxed);
  StatBoundsUndecided.store(0, std::memory_order_relaxed);
  StatRacePairsProved.store(0, std::memory_order_relaxed);
}

void noteBoundsProved() {
  StatBoundsProved.fetch_add(1, std::memory_order_relaxed);
}
void noteBoundsUndecided() {
  StatBoundsUndecided.fetch_add(1, std::memory_order_relaxed);
}
void noteRacePairProved() {
  StatRacePairsProved.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// True when the footprint provably touches no element.
bool definitelyEmpty(SymCtx &Ctx, const Footprint &F) {
  switch (F.Sh) {
  case Footprint::Shape::Flat:
    return Ctx.ub(F.Len) <= 0;
  case Footprint::Shape::Tile:
    return Ctx.ub(F.Rows) <= 0 || Ctx.ub(F.Cols) <= 0;
  case Footprint::Shape::Whole:
    return false;
  }
  return false;
}

/// Flat span of a footprint: [Start, End) over-approximating every
/// element it can touch whenever it is non-empty (see the soundness
/// note in footprintsDisjoint).
void flatSpan(SymCtx &Ctx, const Footprint &F, int64_t Elems, SymVal &Start,
              SymVal &End) {
  switch (F.Sh) {
  case Footprint::Shape::Flat:
    Start = F.Off;
    End = Ctx.add(F.Off, F.Len);
    return;
  case Footprint::Shape::Tile: {
    Start = F.Off;
    // End = Off + (Rows-1)*Ld + Cols: exact one-past-the-last element
    // for Rows >= 1, Cols >= 1; smaller otherwise (footprint empty).
    const SymVal RowsM1 = Ctx.add(F.Rows, SymVal::constant(-1));
    End = Ctx.add(F.Off, Ctx.add(Ctx.scale(RowsM1, F.Ld), F.Cols));
    return;
  }
  case Footprint::Shape::Whole:
    Start = SymVal::constant(0);
    End = Elems >= 0 ? SymVal::constant(Elems) : SymVal::top();
    return;
  }
}

/// Splits a tile offset into row/column affine parts against stride Ld:
/// Off = R*Ld + C with every Ld-divisible term (and the row part of the
/// constant) in R. Only affine leaves decompose; min/max offsets fall
/// back to the flat-span test. Returns false when not decomposable.
bool splitRowCol(SymCtx &Ctx, const SymVal &Off, int64_t Ld, SymVal &R,
                 SymVal &C) {
  if (Ld <= 0 || Off.K != SymVal::Kind::Leaf)
    return false;
  Affine RA, CA;
  // Floor-divide the constant so the column remainder is in [0, Ld).
  const int64_t K = Off.A.K;
  RA.K = K >= 0 ? K / Ld : -((-K + Ld - 1) / Ld);
  CA.K = K - RA.K * Ld;
  for (const AffTerm &T : Off.A.Terms) {
    if (T.Coeff % Ld == 0)
      RA.Terms.push_back({T.Sym, T.Coeff / Ld});
    else
      CA.Terms.push_back({T.Sym, T.Coeff});
  }
  SymVal RV, CV;
  RV.K = SymVal::Kind::Leaf;
  RV.A = std::move(RA);
  CV.K = SymVal::Kind::Leaf;
  CV.A = std::move(CA);
  R = RV;
  C = CV;
  (void)Ctx;
  return true;
}

/// lb(B - A) >= 0, i.e. A <= B for every assignment.
bool provedLe(SymCtx &Ctx, const SymVal &A, const SymVal &B) {
  return Ctx.lb(Ctx.sub(B, A)) >= 0;
}

} // namespace

bool footprintsDisjoint(SymCtx &Ctx, const Footprint &A, const Footprint &B,
                        int64_t BufferElems) {
  if (definitelyEmpty(Ctx, A) || definitelyEmpty(Ctx, B))
    return true;

  // 2-D test: when both are tiles on the same constant stride and both
  // column parts provably stay inside one row (0 <= C, C + Cols <= Ld),
  // the tiles are disjoint if their row ranges or their column ranges
  // are — this is what separates column-partitioned tiles whose flat
  // spans interleave.
  if (A.Sh == Footprint::Shape::Tile && B.Sh == Footprint::Shape::Tile &&
      A.Ld == B.Ld && A.Ld > 0) {
    SymVal RA, CA, RB, CB;
    if (splitRowCol(Ctx, A.Off, A.Ld, RA, CA) &&
        splitRowCol(Ctx, B.Off, B.Ld, RB, CB)) {
      const SymVal LdV = SymVal::constant(A.Ld);
      const bool ColsOk =
          Ctx.lb(CA) >= 0 && provedLe(Ctx, Ctx.add(CA, A.Cols), LdV) &&
          Ctx.lb(CB) >= 0 && provedLe(Ctx, Ctx.add(CB, B.Cols), LdV);
      if (ColsOk) {
        const bool RowsApart =
            provedLe(Ctx, Ctx.add(RA, A.Rows), RB) ||
            provedLe(Ctx, Ctx.add(RB, B.Rows), RA);
        const bool ColsApart =
            provedLe(Ctx, Ctx.add(CA, A.Cols), CB) ||
            provedLe(Ctx, Ctx.add(CB, B.Cols), CA);
        if (RowsApart || ColsApart)
          return true;
      }
    }
  }

  // Flat-span fallback. Soundness: per assignment, either a footprint is
  // empty (disjoint regardless) or its span covers exactly the touched
  // elements, so span separation implies element disjointness.
  SymVal SA, EA, SB, EB;
  flatSpan(Ctx, A, BufferElems, SA, EA);
  flatSpan(Ctx, B, BufferElems, SB, EB);
  return provedLe(Ctx, EA, SB) || provedLe(Ctx, EB, SA);
}

namespace {

/// Per-iteration symbol classification for one race query.
struct IterSyms {
  std::vector<int32_t> Digits;  ///< syms with Parent == Var, by id
  std::vector<int32_t> Serials; ///< other per-iteration syms, by id
};

/// One case instantiation: side maps sized to the pre-instantiation
/// symbol count (identity for shared symbols).
struct CaseMaps {
  std::string Desc;
  std::vector<int32_t> Map1, Map2;
  /// Case-DEFINING symbols: the ordered iteration pair (it1/it2 or the
  /// differing digit pair) and the shared/independent digit
  /// instantiations. A case whose defining symbols have contradictory
  /// bounds (relational lower bound above the range's upper end)
  /// describes an impossible iteration pair — it2 >= it1 + 1 in a
  /// single-iteration grid, or a differing-digit case on a digit whose
  /// radix is 1 — and is vacuously race-free. Serial-loop clones are
  /// deliberately excluded (their emptiness vacuates only the footprints
  /// collected inside them, not the case).
  std::vector<int32_t> News;
};

/// Leaf symbols >= Watermark used by a footprint.
bool usesPerIterSyms(SymCtx &Ctx, const Footprint &F, int32_t Watermark,
                     bool &UsesVarDirectly, int32_t Var) {
  std::vector<int32_t> Used;
  Ctx.collectSyms(F.Off, Used);
  Ctx.collectSyms(F.Len, Used);
  Ctx.collectSyms(F.Rows, Used);
  Ctx.collectSyms(F.Cols, Used);
  bool Any = false;
  for (int32_t S : Used) {
    if (S == Var)
      UsesVarDirectly = true;
    if (S >= Watermark)
      Any = true;
  }
  return Any;
}

/// Validates that the digit symbols tile the iteration space: sorted by
/// descending Div they must form a radix chain d_i = d_{i+1} * m_{i+1}
/// with the finest digit at Div 1 and the top digit covering the full
/// range — then v != v' iff some digit differs, which is what the
/// first-differing-digit case split relies on.
bool validDigitChain(const SymCtx &Ctx, const std::vector<int32_t> &Digits,
                     int64_t VarHi) {
  const auto &Syms = Ctx.symbols();
  for (size_t I = 0; I < Digits.size(); ++I) {
    const auto &D = Syms[Digits[I]];
    if (I + 1 < Digits.size()) {
      const auto &Next = Syms[Digits[I + 1]];
      if (Next.Mod == 0 || D.Div != Next.Div * Next.Mod)
        return false;
    } else if (D.Div != 1) {
      return false;
    }
  }
  const auto &Top = Syms[Digits.front()];
  if (Top.Mod != 0) {
    int64_t Cover;
    if (!mulOv(Top.Div, Top.Mod, Cover) || Cover <= VarHi)
      return false;
  }
  return true;
}

/// Clones the per-iteration serial symbols into both side maps, in id
/// order so each clone's relational bounds can be remapped through the
/// already-populated portion of its side's map.
void cloneSerials(SymCtx &Ctx, const IterSyms &IS, CaseMaps &CM) {
  for (int32_t Id : IS.Serials) {
    const SymCtx::Sym S = Ctx.symbols()[Id]; // copy: addSym reallocates
    for (int Side = 0; Side < 2; ++Side) {
      std::vector<int32_t> &Map = Side == 0 ? CM.Map1 : CM.Map2;
      std::shared_ptr<const SymVal> Lo, Up;
      if (S.Lower)
        Lo = std::make_shared<SymVal>(Ctx.remap(*S.Lower, Map));
      if (S.Upper)
        Up = std::make_shared<SymVal>(Ctx.remap(*S.Upper, Map));
      Map[Id] = Ctx.addSym(S.Name + (Side == 0 ? "@1" : "@2"), S.Range,
                           std::move(Lo), std::move(Up));
      // NOT added to CM.News: a contradictory serial clone only means
      // that inner loop has zero trips in this case, which vacuates the
      // footprints collected inside it but not the case itself.
    }
  }
}

/// Builds the ordered-pair case instantiations for the query. Empty
/// result = the loop structure is outside the engine (caller rejects).
bool buildCases(SymCtx &Ctx, const ParallelRaceQuery &Q, const IterSyms &IS,
                bool AnyUsesVarDirectly, std::vector<CaseMaps> &Out,
                std::string &WhyNot) {
  const int32_t N = Ctx.numSyms();
  const Interval VarRange = Ctx.symbols()[Q.Var].Range;
  const auto FreshMaps = [&]() {
    CaseMaps CM;
    CM.Map1.assign(static_cast<size_t>(N), -1);
    CM.Map2.assign(static_cast<size_t>(N), -1);
    for (int32_t I = 0; I < Q.Watermark; ++I)
      CM.Map1[I] = CM.Map2[I] = I; // loop-invariant: shared verbatim
    return CM;
  };

  if (IS.Digits.empty()) {
    // RAW: it1 < it2 over the full range, separated by >= step.
    CaseMaps CM = FreshMaps();
    CM.Desc = "it1 < it2";
    const int32_t S1 = Ctx.addSym("it1", VarRange, nullptr, nullptr);
    const SymVal LoB =
        Ctx.add(Ctx.leaf(S1), SymVal::constant(std::max<int64_t>(1, Q.Step)));
    const int32_t S2 = Ctx.addSym("it2", VarRange,
                                  std::make_shared<SymVal>(LoB), nullptr);
    CM.Map1[Q.Var] = S1;
    CM.Map2[Q.Var] = S2;
    CM.News.push_back(S1);
    CM.News.push_back(S2);
    cloneSerials(Ctx, IS, CM);
    Out.push_back(std::move(CM));
    return true;
  }

  if (AnyUsesVarDirectly) {
    WhyNot = "mixes direct and div/mod-decomposed uses of the parallel "
             "index";
    return false;
  }
  // Sort digits most-significant first and validate the radix chain.
  std::vector<int32_t> Digits = IS.Digits;
  std::sort(Digits.begin(), Digits.end(), [&](int32_t A, int32_t B) {
    return Ctx.symbols()[A].Div > Ctx.symbols()[B].Div;
  });
  for (size_t I = 0; I + 1 < Digits.size(); ++I)
    if (Ctx.symbols()[Digits[I]].Div == Ctx.symbols()[Digits[I + 1]].Div) {
      WhyNot = "parallel index digits with duplicate strides";
      return false;
    }
  if (!VarRange.boundedAbove() || VarRange.Lo < 0 ||
      !validDigitChain(Ctx, Digits, VarRange.Hi)) {
    WhyNot = "parallel index div/mod decomposition is not a complete "
             "radix chain";
    return false;
  }

  // One case per first-differing digit position.
  for (size_t J = 0; J < Digits.size(); ++J) {
    CaseMaps CM = FreshMaps();
    CM.Map1[Q.Var] = CM.Map2[Q.Var] = -1; // raw var unused by contract
    for (size_t I = 0; I < Digits.size(); ++I) {
      const SymCtx::Sym D = Ctx.symbols()[Digits[I]]; // copy
      if (I < J) {
        const int32_t Shared = Ctx.addSym(D.Name + "@eq", D.Range, nullptr,
                                          nullptr);
        CM.Map1[Digits[I]] = CM.Map2[Digits[I]] = Shared;
        CM.News.push_back(Shared);
      } else if (I == J) {
        CM.Desc = formatString("first differing digit %s", D.Name.c_str());
        const int32_t D1 = Ctx.addSym(D.Name + "@1", D.Range, nullptr,
                                      nullptr);
        const SymVal LoB = Ctx.add(Ctx.leaf(D1), SymVal::constant(1));
        const int32_t D2 = Ctx.addSym(D.Name + "@2", D.Range,
                                      std::make_shared<SymVal>(LoB), nullptr);
        CM.Map1[Digits[I]] = D1;
        CM.Map2[Digits[I]] = D2;
        CM.News.push_back(D1);
        CM.News.push_back(D2);
      } else {
        CM.Map1[Digits[I]] = Ctx.addSym(D.Name + "@1", D.Range, nullptr,
                                        nullptr);
        CM.Map2[Digits[I]] = Ctx.addSym(D.Name + "@2", D.Range, nullptr,
                                        nullptr);
        CM.News.push_back(CM.Map1[Digits[I]]);
        CM.News.push_back(CM.Map2[Digits[I]]);
      }
    }
    cloneSerials(Ctx, IS, CM);
    Out.push_back(std::move(CM));
  }
  return true;
}

Footprint remapFootprint(SymCtx &Ctx, const Footprint &F,
                         const std::vector<int32_t> &Map) {
  Footprint R = F;
  R.Off = Ctx.remap(F.Off, Map);
  R.Len = Ctx.remap(F.Len, Map);
  R.Rows = Ctx.remap(F.Rows, Map);
  R.Cols = Ctx.remap(F.Cols, Map);
  return R;
}

} // namespace

Status checkParallelRaces(SymCtx &Ctx, const ParallelRaceQuery &Q) {
  // Group footprints by shared buffer, keeping only buffers some
  // footprint writes (read-read never races) and skipping thread-local
  // buffers (each worker owns a private copy / scratch slab).
  std::vector<int> Buffers;
  for (const Footprint &F : Q.FPs)
    if (F.Write && !Q.BufferIsThreadLocal(F.Buffer))
      Buffers.push_back(F.Buffer);
  std::sort(Buffers.begin(), Buffers.end());
  Buffers.erase(std::unique(Buffers.begin(), Buffers.end()), Buffers.end());
  if (Buffers.empty())
    return Status::ok();

  // Footprint iteration-dependence and per-footprint direct-var use.
  std::vector<bool> PerIter(Q.FPs.size(), false);
  std::vector<bool> VarDirect(Q.FPs.size(), false);
  for (size_t I = 0; I < Q.FPs.size(); ++I) {
    bool Direct = false;
    PerIter[I] = usesPerIterSyms(Ctx, Q.FPs[I], Q.Watermark, Direct, Q.Var);
    VarDirect[I] = Direct;
  }

  const auto Reject = [&](const Footprint &W, const Footprint &O,
                          const std::string &Why) {
    return Status::error(
        StatusCode::Internal,
        formatString("static race: %s: iterations of the parallel loop may "
                     "conflict on buffer %s: %s [%s] vs %s [%s]: %s",
                     Q.LoopDesc.c_str(), Q.BufferName(W.Buffer).c_str(),
                     W.Site.c_str(), W.Write ? "write" : "read",
                     O.Site.c_str(), O.Write ? "write" : "read",
                     Why.c_str()));
  };

  // Snapshot the symbol count before any case instantiation: the body's
  // footprints can only reference symbols below this mark, and the clone
  // symbols cloneSerials appends for one group must not be swept into
  // the next group's Serials (re-cloning clones grows the context
  // exponentially in the number of racing-buffer groups).
  const int32_t BodyEnd = Ctx.numSyms();

  for (int B : Buffers) {
    std::vector<size_t> Idx;
    for (size_t I = 0; I < Q.FPs.size(); ++I)
      if (Q.FPs[I].Buffer == B)
        Idx.push_back(I);

    // Classify the per-iteration symbols for THIS buffer's footprints.
    // Only digits of the parallel index that actually appear in the
    // group's footprints select the digit strategy — a div/mod digit
    // computed for some other buffer (e.g. a read-only mask offset)
    // must not force the digit split onto a group that indexes with
    // the variable directly. Unused digits are demoted to generic
    // per-side clones (their value is f(Var), so an uncorrelated
    // fresh symbol over the same range over-approximates it soundly).
    std::vector<bool> UsedByGroup(static_cast<size_t>(BodyEnd), false);
    bool AnyUsesVar = false;
    for (size_t I : Idx) {
      const Footprint &F = Q.FPs[I];
      std::vector<int32_t> Used;
      Ctx.collectSyms(F.Off, Used);
      Ctx.collectSyms(F.Len, Used);
      Ctx.collectSyms(F.Rows, Used);
      Ctx.collectSyms(F.Cols, Used);
      for (int32_t S : Used)
        UsedByGroup[static_cast<size_t>(S)] = true;
      AnyUsesVar = AnyUsesVar || VarDirect[I];
    }
    IterSyms IS;
    for (int32_t Id = Q.Watermark; Id < BodyEnd; ++Id) {
      if (Id == Q.Var)
        continue;
      if (Ctx.symbols()[Id].Parent == Q.Var &&
          UsedByGroup[static_cast<size_t>(Id)])
        IS.Digits.push_back(Id);
      else
        IS.Serials.push_back(Id);
    }

    // Build the ordered-pair instantiations for this group, then drop
    // infeasible cases (contradictory case-defining symbol bounds —
    // see CaseMaps).
    std::vector<CaseMaps> Cases;
    std::string WhyNot;
    if (!buildCases(Ctx, Q, IS, AnyUsesVar, Cases, WhyNot)) {
      // Structure outside the engine: reject this group's first write.
      for (size_t I : Idx)
        if (Q.FPs[I].Write)
          return Reject(Q.FPs[I], Q.FPs[I], WhyNot);
      continue;
    }
    Cases.erase(std::remove_if(Cases.begin(), Cases.end(),
                               [&](const CaseMaps &CM) {
                                 for (int32_t Id : CM.News)
                                   if (Ctx.lb(Ctx.leaf(Id)) >
                                       Ctx.ub(Ctx.leaf(Id)))
                                     return true;
                                 return false;
                               }),
                Cases.end());
    if (Cases.empty()) {
      // Every ordered pair of distinct iterations is infeasible — the
      // loop runs at most one iteration, so nothing can race (this also
      // covers the iteration-invariant footprints below).
      continue;
    }
    const int64_t Elems = Q.BufferElems(B);
    for (size_t A = 0; A < Idx.size(); ++A) {
      for (size_t C = A; C < Idx.size(); ++C) {
        const Footprint &FA = Q.FPs[Idx[A]];
        const Footprint &FC = Q.FPs[Idx[C]];
        if (!FA.Write && !FC.Write)
          continue;
        if (!PerIter[Idx[A]] && !PerIter[Idx[C]]) {
          // Iteration-invariant on both sides: every iteration touches
          // the same elements, so a write conflicts unless the regions
          // are statically disjoint (identical write sites never are).
          if (!footprintsDisjoint(Ctx, FA, FC, Elems))
            return Reject(FA.Write ? FA : FC, FA.Write ? FC : FA,
                          "footprint does not depend on the iteration "
                          "index, so distinct iterations touch the same "
                          "elements");
          noteRacePairProved();
          continue;
        }
        // Both orientations for distinct sites (f@it1 vs g@it2 and
        // g@it1 vs f@it2); one suffices for a site against itself.
        const int NumOrient = A == C ? 1 : 2;
        for (int O = 0; O < NumOrient; ++O) {
          const Footprint &F1 = O == 0 ? FA : FC;
          const Footprint &F2 = O == 0 ? FC : FA;
          for (const CaseMaps &CM : Cases) {
            const Footprint R1 = remapFootprint(Ctx, F1, CM.Map1);
            const Footprint R2 = remapFootprint(Ctx, F2, CM.Map2);
            if (!footprintsDisjoint(Ctx, R1, R2, Elems))
              return Reject(F1.Write ? F1 : F2, F1.Write ? F2 : F1,
                            formatString("cannot prove disjoint when %s",
                                         CM.Desc.c_str()));
          }
        }
        noteRacePairProved();
      }
    }
  }
  return Status::ok();
}

} // namespace verify
} // namespace gc
