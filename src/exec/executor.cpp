//===- executor.cpp - Bytecode dispatch loop ----------------------------------===//

#include "exec/executor.h"

#include "kernels/brgemm.h"
#include "kernels/packing.h"
#include "kernels/tile_ops.h"
#include "support/common.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gc {
namespace exec {

//===----------------------------------------------------------------------===//
// Kernel adapters
//===----------------------------------------------------------------------===//
//
// One flat function per intrinsic, selected once at program compile time;
// executing a Call is register marshalling plus one indirect call. The
// argument layouts mirror tir/intrinsics.h (and the tree evaluator's
// execCall, which these must match bit for bit).

namespace {

using namespace kernels;

inline TileF32 tileArg(void *const *Ptrs, const int64_t *SI, int BufIdx,
                       int RowsIdx = 0) {
  TileF32 T;
  T.Data = static_cast<float *>(Ptrs[BufIdx]);
  T.Rows = SI[RowsIdx];
  T.Cols = SI[RowsIdx + 1];
  T.Ld = SI[RowsIdx + 2];
  return T;
}

void adBrgemmF32(void *const *Ptrs, const int64_t *SI, const double *) {
  BrgemmF32Args A;
  A.A = static_cast<const float *>(Ptrs[0]);
  A.B = static_cast<const float *>(Ptrs[1]);
  A.C = static_cast<float *>(Ptrs[2]);
  A.M = SI[0]; A.N = SI[1]; A.K = SI[2];
  A.Lda = SI[3]; A.Ldb = SI[4]; A.Ldc = SI[5];
  A.AStrideBatch = SI[6]; A.BStrideBatch = SI[7];
  A.Batch = SI[8]; A.InitC = SI[9] != 0;
  brgemmF32(A);
}

void adBrgemmU8S8(void *const *Ptrs, const int64_t *SI, const double *) {
  BrgemmU8S8Args A;
  A.A = static_cast<const uint8_t *>(Ptrs[0]);
  A.B = static_cast<const int8_t *>(Ptrs[1]);
  A.C = static_cast<int32_t *>(Ptrs[2]);
  A.M = SI[0]; A.N = SI[1]; A.K = SI[2];
  A.Lda = SI[3]; A.NPadded = SI[4]; A.Ldc = SI[5];
  A.AStrideBatch = SI[6]; A.BStrideBatch = SI[7];
  A.Batch = SI[8]; A.InitC = SI[9] != 0;
  brgemmU8S8(A);
}

void adReluTile(void *const *P, const int64_t *SI, const double *) {
  reluTile(tileArg(P, SI, 0));
}
void adExpTile(void *const *P, const int64_t *SI, const double *) {
  expTile(tileArg(P, SI, 0));
}
void adTanhTile(void *const *P, const int64_t *SI, const double *) {
  tanhTile(tileArg(P, SI, 0));
}
void adSqrtTile(void *const *P, const int64_t *SI, const double *) {
  sqrtTile(tileArg(P, SI, 0));
}
void adRecipTile(void *const *P, const int64_t *SI, const double *) {
  recipTile(tileArg(P, SI, 0));
}
void adSquareTile(void *const *P, const int64_t *SI, const double *) {
  squareTile(tileArg(P, SI, 0));
}
void adSigmoidTile(void *const *P, const int64_t *SI, const double *) {
  sigmoidTile(tileArg(P, SI, 0));
}
void adGeluTile(void *const *P, const int64_t *SI, const double *) {
  geluTanhTile(tileArg(P, SI, 0));
}
void adAffineTile(void *const *P, const int64_t *SI, const double *SF) {
  affineTile(tileArg(P, SI, 0), static_cast<float>(SF[3]),
             static_cast<float>(SF[4]));
}

inline ConstTileF32 rhsArg(void *const *Ptrs, const int64_t *SI) {
  ConstTileF32 Y;
  Y.Data = static_cast<const float *>(Ptrs[1]);
  Y.Ld = SI[3];
  return Y;
}

void adAddTile(void *const *P, const int64_t *SI, const double *) {
  addTile(tileArg(P, SI, 0), rhsArg(P, SI));
}
void adSubTile(void *const *P, const int64_t *SI, const double *) {
  subTile(tileArg(P, SI, 0), rhsArg(P, SI));
}
void adMulTile(void *const *P, const int64_t *SI, const double *) {
  mulTile(tileArg(P, SI, 0), rhsArg(P, SI));
}
void adDivTile(void *const *P, const int64_t *SI, const double *) {
  divTile(tileArg(P, SI, 0), rhsArg(P, SI));
}
void adMaxTile(void *const *P, const int64_t *SI, const double *) {
  maxTile(tileArg(P, SI, 0), rhsArg(P, SI));
}
void adMinTile(void *const *P, const int64_t *SI, const double *) {
  minTile(tileArg(P, SI, 0), rhsArg(P, SI));
}

void adAddRowVecTile(void *const *P, const int64_t *SI, const double *) {
  addRowVecTile(tileArg(P, SI, 0), static_cast<const float *>(P[1]));
}
void adSubRowVecTile(void *const *P, const int64_t *SI, const double *) {
  subRowVecTile(tileArg(P, SI, 0), static_cast<const float *>(P[1]));
}
void adMulRowVecTile(void *const *P, const int64_t *SI, const double *) {
  mulRowVecTile(tileArg(P, SI, 0), static_cast<const float *>(P[1]));
}
void adAddColVecTile(void *const *P, const int64_t *SI, const double *) {
  addColVecTile(tileArg(P, SI, 0), static_cast<const float *>(P[1]));
}
void adSubColVecTile(void *const *P, const int64_t *SI, const double *) {
  subColVecTile(tileArg(P, SI, 0), static_cast<const float *>(P[1]));
}
void adMulColVecTile(void *const *P, const int64_t *SI, const double *) {
  mulColVecTile(tileArg(P, SI, 0), static_cast<const float *>(P[1]));
}
void adDivColVecTile(void *const *P, const int64_t *SI, const double *) {
  divColVecTile(tileArg(P, SI, 0), static_cast<const float *>(P[1]));
}

void adReduceSumRowsTile(void *const *P, const int64_t *SI, const double *) {
  reduceSumRowsTile(tileArg(P, SI, 0), static_cast<float *>(P[1]),
                    SI[3] != 0);
}
void adReduceMaxRowsTile(void *const *P, const int64_t *SI, const double *) {
  reduceMaxRowsTile(tileArg(P, SI, 0), static_cast<float *>(P[1]),
                    SI[3] != 0);
}

void adCopyTile(void *const *P, const int64_t *SI, const double *) {
  TileF32 D;
  D.Data = static_cast<float *>(P[0]);
  D.Rows = SI[0]; D.Cols = SI[1]; D.Ld = SI[2];
  ConstTileF32 Src;
  Src.Data = static_cast<const float *>(P[1]);
  Src.Ld = SI[3];
  copyTile(D, Src);
}
void adCopyTileRaw(void *const *P, const int64_t *SI, const double *) {
  copyTileRaw(P[0], SI[2], P[1], SI[3], SI[0], SI[1], SI[4]);
}
void adTransposeTile(void *const *P, const int64_t *SI, const double *) {
  TileF32 D;
  D.Data = static_cast<float *>(P[0]);
  D.Rows = SI[0]; D.Cols = SI[1]; D.Ld = SI[2];
  ConstTileF32 Src;
  Src.Data = static_cast<const float *>(P[1]);
  Src.Ld = SI[3];
  transposeTile(D, Src);
}
void adPermute0213(void *const *P, const int64_t *SI, const double *) {
  permute0213(P[0], P[1], SI[0], SI[1], SI[2], SI[3], SI[4]);
}
void adFillTile(void *const *P, const int64_t *SI, const double *SF) {
  fillTile(tileArg(P, SI, 0), static_cast<float>(SF[3]));
}

void adDequantAccTile(void *const *P, const int64_t *SI, const double *) {
  dequantAccTile(static_cast<float *>(P[0]), SI[2],
                 static_cast<const int32_t *>(P[1]), SI[3], SI[0], SI[1],
                 static_cast<const int32_t *>(P[2]),
                 static_cast<int32_t>(SI[4]),
                 static_cast<const float *>(P[3]));
}
void adQuantU8Tile(void *const *P, const int64_t *SI, const double *SF) {
  quantizeU8Tile(static_cast<uint8_t *>(P[0]), SI[2],
                 static_cast<const float *>(P[1]), SI[3], SI[0], SI[1],
                 static_cast<float>(SF[4]), static_cast<int32_t>(SI[5]));
}
void adQuantS8Tile(void *const *P, const int64_t *SI, const double *SF) {
  quantizeS8Tile(static_cast<int8_t *>(P[0]), SI[2],
                 static_cast<const float *>(P[1]), SI[3], SI[0], SI[1],
                 static_cast<float>(SF[4]));
}
void adDequantU8Tile(void *const *P, const int64_t *SI, const double *SF) {
  dequantU8Tile(static_cast<float *>(P[0]), SI[2],
                static_cast<const uint8_t *>(P[1]), SI[3], SI[0], SI[1],
                static_cast<float>(SF[4]), static_cast<int32_t>(SI[5]));
}
void adDequantS8PerChannelTile(void *const *P, const int64_t *SI,
                               const double *) {
  dequantS8PerChannelTile(static_cast<float *>(P[0]), SI[2],
                          static_cast<const int8_t *>(P[1]), SI[3], SI[0],
                          SI[1], static_cast<const float *>(P[2]));
}
void adCastS32F32Tile(void *const *P, const int64_t *SI, const double *SF) {
  castS32F32Tile(static_cast<float *>(P[0]), SI[2],
                 static_cast<const int32_t *>(P[1]), SI[3], SI[0], SI[1],
                 static_cast<float>(SF[4]));
}

inline PlainMatrix plainArg(void *const *P, const int64_t *SI) {
  PlainMatrix Src;
  Src.Data = P[1];
  Src.Rows = SI[0];
  Src.Cols = SI[1];
  Src.Ld = SI[2];
  Src.Transposed = SI[5] != 0;
  return Src;
}

void adPackAF32(void *const *P, const int64_t *SI, const double *) {
  packAF32(plainArg(P, SI), static_cast<float *>(P[0]), SI[3], SI[4]);
}
void adPackAU8(void *const *P, const int64_t *SI, const double *) {
  packAU8(plainArg(P, SI), static_cast<uint8_t *>(P[0]), SI[3], SI[4]);
}
void adPackBF32(void *const *P, const int64_t *SI, const double *) {
  packBF32(plainArg(P, SI), static_cast<float *>(P[0]), SI[3], SI[4]);
}
void adPackBS8Vnni(void *const *P, const int64_t *SI, const double *) {
  packBS8Vnni(plainArg(P, SI), static_cast<int8_t *>(P[0]), SI[3], SI[4]);
}
void adUnpackAF32(void *const *P, const int64_t *SI, const double *) {
  unpackAF32(static_cast<const float *>(P[1]), static_cast<float *>(P[0]),
             SI[0], SI[1], SI[2], SI[3], SI[4]);
}
void adUnpackAU8(void *const *P, const int64_t *SI, const double *) {
  unpackAU8(static_cast<const uint8_t *>(P[1]),
            static_cast<uint8_t *>(P[0]), SI[0], SI[1], SI[2], SI[3],
            SI[4]);
}

} // namespace

KernelFn kernelAdapter(tir::Intrinsic In) {
  using tir::Intrinsic;
  switch (In) {
  case Intrinsic::BrgemmF32: return adBrgemmF32;
  case Intrinsic::BrgemmU8S8: return adBrgemmU8S8;
  case Intrinsic::ReluTile: return adReluTile;
  case Intrinsic::ExpTile: return adExpTile;
  case Intrinsic::TanhTile: return adTanhTile;
  case Intrinsic::SqrtTile: return adSqrtTile;
  case Intrinsic::RecipTile: return adRecipTile;
  case Intrinsic::SquareTile: return adSquareTile;
  case Intrinsic::SigmoidTile: return adSigmoidTile;
  case Intrinsic::GeluTile: return adGeluTile;
  case Intrinsic::AffineTile: return adAffineTile;
  case Intrinsic::AddTile: return adAddTile;
  case Intrinsic::SubTile: return adSubTile;
  case Intrinsic::MulTile: return adMulTile;
  case Intrinsic::DivTile: return adDivTile;
  case Intrinsic::MaxTile: return adMaxTile;
  case Intrinsic::MinTile: return adMinTile;
  case Intrinsic::AddRowVecTile: return adAddRowVecTile;
  case Intrinsic::SubRowVecTile: return adSubRowVecTile;
  case Intrinsic::MulRowVecTile: return adMulRowVecTile;
  case Intrinsic::AddColVecTile: return adAddColVecTile;
  case Intrinsic::SubColVecTile: return adSubColVecTile;
  case Intrinsic::MulColVecTile: return adMulColVecTile;
  case Intrinsic::DivColVecTile: return adDivColVecTile;
  case Intrinsic::ReduceSumRowsTile: return adReduceSumRowsTile;
  case Intrinsic::ReduceMaxRowsTile: return adReduceMaxRowsTile;
  case Intrinsic::CopyTile: return adCopyTile;
  case Intrinsic::CopyTileRaw: return adCopyTileRaw;
  case Intrinsic::TransposeTile: return adTransposeTile;
  case Intrinsic::Permute0213: return adPermute0213;
  case Intrinsic::FillTile: return adFillTile;
  case Intrinsic::DequantAccTile: return adDequantAccTile;
  case Intrinsic::QuantU8Tile: return adQuantU8Tile;
  case Intrinsic::QuantS8Tile: return adQuantS8Tile;
  case Intrinsic::DequantU8Tile: return adDequantU8Tile;
  case Intrinsic::DequantS8PerChannelTile: return adDequantS8PerChannelTile;
  case Intrinsic::CastS32F32Tile: return adCastS32F32Tile;
  case Intrinsic::PackAF32: return adPackAF32;
  case Intrinsic::PackAU8: return adPackAU8;
  case Intrinsic::PackBF32: return adPackBF32;
  case Intrinsic::PackBS8Vnni: return adPackBS8Vnni;
  case Intrinsic::UnpackAF32: return adUnpackAF32;
  case Intrinsic::UnpackAU8: return adUnpackAU8;
  }
  GC_UNREACHABLE("unhandled intrinsic");
}

//===----------------------------------------------------------------------===//
// Executor setup (mirrors the tree evaluator's buffer placement)
//===----------------------------------------------------------------------===//

Executor::Executor(std::shared_ptr<const Program> Prog,
                   runtime::ThreadPool &Pool)
    : P(std::move(Prog)), Pool(Pool) {
  const size_t NumBuffers = P->Buffers.size();
  BasePtrs.assign(NumBuffers, nullptr);

  if (P->ArenaBytes > 0)
    Arena.resize(static_cast<size_t>(P->ArenaBytes));

  const int NumWorkers = Pool.numThreads();
  ThreadScratch.resize(static_cast<size_t>(NumWorkers));
  int64_t ScratchBytes = 0;
  for (const BufferInfo &B : P->Buffers)
    if (B.Scope == tir::BufferScope::ThreadLocal)
      ScratchBytes += roundUp(B.Bytes, runtime::kDefaultAlignment);
  for (auto &Block : ThreadScratch)
    if (ScratchBytes > 0)
      Block.resize(static_cast<size_t>(ScratchBytes));

  WorkerPtrs.assign(static_cast<size_t>(NumWorkers),
                    std::vector<void *>(NumBuffers, nullptr));
  std::vector<int64_t> ScratchOffset(static_cast<size_t>(NumWorkers), 0);

  for (size_t Id = 0; Id < NumBuffers; ++Id) {
    const BufferInfo &B = P->Buffers[Id];
    switch (B.Scope) {
    case tir::BufferScope::Param:
    case tir::BufferScope::FoldedConst:
      break; // bound by caller
    case tir::BufferScope::Const:
      if (B.BakedData)
        BasePtrs[Id] = const_cast<void *>(B.BakedData);
      break; // otherwise bound by caller
    case tir::BufferScope::Temp: {
      void *Ptr = nullptr;
      if (B.ArenaOffset >= 0) {
        assert(B.ArenaOffset + B.Bytes <= static_cast<int64_t>(Arena.size()) &&
               "arena overflow");
        Ptr = static_cast<char *>(Arena.data()) + B.ArenaOffset;
      } else {
        Locals.emplace_back(static_cast<size_t>(B.Bytes));
        Ptr = Locals.back().data();
      }
      BasePtrs[Id] = Ptr;
      break;
    }
    case tir::BufferScope::ThreadLocal: {
      for (int W = 0; W < NumWorkers; ++W) {
        void *Ptr =
            static_cast<char *>(ThreadScratch[W].data()) + ScratchOffset[W];
        ScratchOffset[W] += roundUp(B.Bytes, runtime::kDefaultAlignment);
        WorkerPtrs[W][Id] = Ptr;
      }
      break;
    }
    }
  }

  // The constant image loads once: every non-constant register (loop
  // vars, lets, temps, inductions) is written before it is read, so runs
  // never need a fresh frame.
  MainRegs = P->InitRegs;
  WorkerRegs.assign(static_cast<size_t>(NumWorkers),
                    std::vector<Value>(P->NumRegs));
}

void Executor::bindBuffer(int BufferId, void *Ptr) {
  assert(BufferId >= 0 &&
         static_cast<size_t>(BufferId) < BasePtrs.size() && "bad buffer id");
  BasePtrs[static_cast<size_t>(BufferId)] = Ptr;
}

void Executor::run() {
  // Finalize worker tables: every non-ThreadLocal buffer points at the
  // shared base.
  for (size_t BId = 0; BId < BasePtrs.size(); ++BId) {
    if (P->Buffers[BId].Scope == tir::BufferScope::ThreadLocal)
      continue;
    if (!BasePtrs[BId])
      fatalError("unbound tensor buffer at execution");
    for (auto &Table : WorkerPtrs)
      Table[BId] = BasePtrs[BId];
  }
  Frame Fr;
  Fr.Regs = MainRegs.data();
  Fr.Buffers = WorkerPtrs[0].data();
  runRange(0, static_cast<uint32_t>(P->Code.size()), Fr);
}

//===----------------------------------------------------------------------===//
// Dispatch loop
//===----------------------------------------------------------------------===//

void Executor::runParallel(const Instr &In, Frame &Fr, uint32_t BodyBegin) {
  const ParDesc &D = P->Pars[static_cast<size_t>(In.Target)];
  Value *R = Fr.Regs;
  const int64_t Begin = R[D.BeginReg].I;
  const int64_t End = R[D.EndReg].I;
  const int64_t Step = R[D.StepReg].I;
  assert(Step > 0 && "parallel loop requires positive step");
  const int64_t Trips = Begin < End ? ceilDiv(End - Begin, Step) : 0;
  if (Trips <= 0)
    return;
  const uint32_t BodyEnd = BodyBegin + D.BodyLen;
  const int NumWorkers = Pool.numThreads();
  if (NumWorkers == 1) {
    // Single worker: the body only writes registers that are dead outside
    // the nest (its loop variable, body lets, body temporaries), so it can
    // run on the submitting frame directly; the pool call is kept for the
    // one-barrier-per-nest accounting.
    Pool.parallelFor(0, Trips, [&](int64_t I, int) {
      Fr.Regs[D.VarReg].I = Begin + I * Step;
      runRange(BodyBegin, BodyEnd, Fr);
    });
    return;
  }
  // Copy the submitting frame per worker so outer values (lets, hoisted
  // invariants, inductions) stay visible; each worker uses its own
  // thread-local buffer table. The pool partitions statically over worker
  // ids 0..Trips-1 at most, so short nests only need that many frames.
  const int ActiveWorkers =
      static_cast<int>(std::min<int64_t>(NumWorkers, Trips));
  for (int W = 0; W < ActiveWorkers; ++W)
    std::copy(Fr.Regs, Fr.Regs + P->NumRegs, WorkerRegs[W].data());
  Pool.parallelFor(0, Trips, [&](int64_t I, int ThreadId) {
    Frame WFr;
    WFr.Regs = WorkerRegs[static_cast<size_t>(ThreadId)].data();
    WFr.Buffers = WorkerPtrs[static_cast<size_t>(ThreadId)].data();
    WFr.Regs[D.VarReg].I = Begin + I * Step;
    runRange(BodyBegin, BodyEnd, WFr);
  });
}

void Executor::runRange(uint32_t PC, uint32_t End, Frame &Fr) {
  const Instr *Code = P->Code.data();
  Value *R = Fr.Regs;
  void *const *Bufs = Fr.Buffers;
  const BufferInfo *BI = P->Buffers.data();
  while (PC < End) {
    const Instr &I = Code[PC];
    switch (I.Op) {
    case Opcode::Mov: R[I.A] = R[I.B]; break;
    case Opcode::I2F: R[I.A].F = static_cast<double>(R[I.B].I); break;
    case Opcode::F2I: R[I.A].I = static_cast<int64_t>(R[I.B].F); break;
    case Opcode::AddI: R[I.A].I = R[I.B].I + R[I.C].I; break;
    case Opcode::SubI: R[I.A].I = R[I.B].I - R[I.C].I; break;
    case Opcode::MulI: R[I.A].I = R[I.B].I * R[I.C].I; break;
    case Opcode::DivI: R[I.A].I = R[I.B].I / R[I.C].I; break;
    case Opcode::ModI: R[I.A].I = R[I.B].I % R[I.C].I; break;
    case Opcode::MinI: R[I.A].I = std::min(R[I.B].I, R[I.C].I); break;
    case Opcode::MaxI: R[I.A].I = std::max(R[I.B].I, R[I.C].I); break;
    case Opcode::AddF: R[I.A].F = R[I.B].F + R[I.C].F; break;
    case Opcode::SubF: R[I.A].F = R[I.B].F - R[I.C].F; break;
    case Opcode::MulF: R[I.A].F = R[I.B].F * R[I.C].F; break;
    case Opcode::DivF: R[I.A].F = R[I.B].F / R[I.C].F; break;
    case Opcode::ModF: R[I.A].F = std::fmod(R[I.B].F, R[I.C].F); break;
    case Opcode::MinF: R[I.A].F = std::min(R[I.B].F, R[I.C].F); break;
    case Opcode::MaxF: R[I.A].F = std::max(R[I.B].F, R[I.C].F); break;
    case Opcode::AddImmI: R[I.A].I += I.Imm; break;
    case Opcode::LoadF32:
      R[I.A].F = *reinterpret_cast<const float *>(
          static_cast<const char *>(Bufs[I.B]) + R[I.C].I * 4);
      break;
    case Opcode::LoadF64:
      R[I.A].F = *reinterpret_cast<const double *>(
          static_cast<const char *>(Bufs[I.B]) + R[I.C].I * 8);
      break;
    case Opcode::LoadS32:
      R[I.A].I = *reinterpret_cast<const int32_t *>(
          static_cast<const char *>(Bufs[I.B]) + R[I.C].I * 4);
      break;
    case Opcode::LoadS8:
      R[I.A].I = *reinterpret_cast<const int8_t *>(
          static_cast<const char *>(Bufs[I.B]) + R[I.C].I);
      break;
    case Opcode::LoadU8:
      R[I.A].I = *reinterpret_cast<const uint8_t *>(
          static_cast<const char *>(Bufs[I.B]) + R[I.C].I);
      break;
    case Opcode::StoreF32:
      *reinterpret_cast<float *>(static_cast<char *>(Bufs[I.B]) +
                                 R[I.C].I * 4) =
          static_cast<float>(R[I.A].F);
      break;
    case Opcode::StoreF64:
      *reinterpret_cast<double *>(static_cast<char *>(Bufs[I.B]) +
                                  R[I.C].I * 8) = R[I.A].F;
      break;
    case Opcode::StoreS32:
      *reinterpret_cast<int32_t *>(static_cast<char *>(Bufs[I.B]) +
                                   R[I.C].I * 4) =
          static_cast<int32_t>(R[I.A].I);
      break;
    case Opcode::StoreS8:
      *reinterpret_cast<int8_t *>(static_cast<char *>(Bufs[I.B]) +
                                  R[I.C].I) =
          static_cast<int8_t>(std::clamp<int64_t>(R[I.A].I, -128, 127));
      break;
    case Opcode::StoreU8:
      *reinterpret_cast<uint8_t *>(static_cast<char *>(Bufs[I.B]) +
                                   R[I.C].I) =
          static_cast<uint8_t>(std::clamp<int64_t>(R[I.A].I, 0, 255));
      break;
    case Opcode::JumpIfGeI:
      if (R[I.A].I >= R[I.B].I) {
        PC = static_cast<uint32_t>(static_cast<int64_t>(PC) + I.Target);
        continue;
      }
      break;
    case Opcode::LoopNext:
      R[I.A].I += R[I.B].I;
      if (R[I.A].I < R[I.C].I) {
        PC = static_cast<uint32_t>(static_cast<int64_t>(PC) + I.Target);
        continue;
      }
      break;
    case Opcode::CallKernel: {
      const CallDesc &D = P->Calls[static_cast<size_t>(I.Target)];
      void *Ptrs[4] = {nullptr, nullptr, nullptr, nullptr};
      for (uint8_t K = 0; K < D.NumBufs; ++K) {
        const CallDesc::Buf &BRef = D.Bufs[K];
        const int64_t Off = BRef.HasOffset ? R[BRef.OffsetReg].I : 0;
        Ptrs[K] =
            static_cast<char *>(Bufs[BRef.BufferId]) +
            Off * BI[BRef.BufferId].ElemSize;
      }
      if (D.NumDyn == 0) {
        // Fully constant scalars: use the pre-marshalled views in place.
        D.Fn(Ptrs, D.SI, D.SF);
        break;
      }
      int64_t SI[12];
      double SF[12];
      std::memcpy(SI, D.SI, sizeof(SI));
      std::memcpy(SF, D.SF, sizeof(SF));
      for (uint8_t K = 0; K < D.NumDyn; ++K) {
        const CallDesc::Dyn &S = D.Dyns[K];
        if (S.IsF64) {
          SF[S.Idx] = R[S.Reg].F;
          SI[S.Idx] = static_cast<int64_t>(R[S.Reg].F);
        } else {
          SI[S.Idx] = R[S.Reg].I;
          SF[S.Idx] = static_cast<double>(R[S.Reg].I);
        }
      }
      D.Fn(Ptrs, SI, SF);
      break;
    }
    case Opcode::ParallelFor:
      runParallel(I, Fr, PC + 1);
      PC += 1 + P->Pars[static_cast<size_t>(I.Target)].BodyLen;
      continue;
    }
    ++PC;
  }
}

} // namespace exec
} // namespace gc
