//===- program.h - Flat bytecode program for Tensor IR ----------*- C++ -*-===//
///
/// \file
/// The compiled form of a slot-assigned tir::Func: a contiguous,
/// register-based instruction array executed by a tight dispatch loop
/// (exec/executor.h). This replaces the recursive tree-walking evaluator
/// on the hot path — the paper JIT-compiles Tensor IR to LLVM IR so all
/// loop/index arithmetic around the microkernel calls costs essentially
/// nothing; the bytecode program is the offline reproduction of that
/// property (stage 1: lower -> Tensor IR; stage 2: compile -> bytecode;
/// stage 3: dispatch loop + microkernels).
///
/// What compilation buys over tree walking:
///  * one flat instruction stream — no shared_ptr node chasing, no
///    recursive evalExpr, no per-statement kind switches over trees;
///  * constant-folded scalar arithmetic, with all literals preloaded into
///    a constant register image copied once per frame;
///  * Lets become plain register moves (slots are registers 0..NumSlots);
///  * affine Load/Store/BufferRef element offsets are strength-reduced
///    into induction registers: initialized once per loop entry, advanced
///    by a constant increment on the back edge, instead of re-evaluating
///    the index expression every iteration (loop-invariant offsets hoist
///    to the loop entry with increment 0);
///  * kernel Calls bind to direct function pointers into kernels/ at
///    compile time — executing a call is argument marshalling from
///    registers plus one indirect call, with no intrinsic switch.
///
/// Parallel For nests map onto ThreadPool::parallelFor exactly as the
/// tree evaluator maps them (same trip counts, same one-barrier-per-nest
/// structure), so numerical behavior and barrierCount() are unchanged.
///
/// Control flow uses relative jump offsets, which keeps compiled blocks
/// position-independent and lets the builder splice loop-entry code
/// without patch passes.
///
//===----------------------------------------------------------------------===//

#ifndef GC_EXEC_PROGRAM_H
#define GC_EXEC_PROGRAM_H

#include "tir/function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gc {
namespace exec {

/// Register value; mirrors the tree evaluator's int/float split so both
/// engines perform identical conversions (bit-identical results).
struct Value {
  int64_t I = 0;
  double F = 0.0;
};

/// Bytecode operations. Register operands are indices into the frame's
/// register array; A is the destination unless noted.
enum class Opcode : uint8_t {
  // Moves / conversions.
  Mov,  ///< R[A] = R[B] (both fields)
  I2F,  ///< R[A].F = double(R[B].I)
  F2I,  ///< R[A].I = int64(R[B].F)
  // Integer arithmetic: R[A].I = R[B].I op R[C].I.
  AddI, SubI, MulI, DivI, ModI, MinI, MaxI,
  // Float arithmetic: R[A].F = R[B].F op R[C].F (Mod = fmod).
  AddF, SubF, MulF, DivF, ModF, MinF, MaxF,
  AddImmI, ///< R[A].I += Imm (induction advance on loop back edges)
  // Scalar element loads: R[A] = Buffers[B][R[C].I] (typed).
  LoadF32, LoadF64, LoadS32, LoadS8, LoadU8,
  // Scalar element stores: Buffers[B][R[C].I] = R[A] (typed; S8/U8 clamp
  // exactly as the tree evaluator does).
  StoreF32, StoreF64, StoreS32, StoreS8, StoreU8,
  // Control flow (Target is a signed offset relative to this instruction).
  JumpIfGeI, ///< if R[A].I >= R[B].I: PC += Target, else fall through
  LoopNext,  ///< R[A].I += R[B].I; if R[A].I < R[C].I: PC += Target
  CallKernel,  ///< invoke Calls[Target]
  ParallelFor, ///< run Pars[Target]; body is the next BodyLen instructions
};

/// One instruction. 24 bytes, laid out for the dispatch loop.
struct Instr {
  Opcode Op = Opcode::Mov;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int32_t Target = 0; ///< relative jump offset, or Calls/Pars index
  int64_t Imm = 0;    ///< immediate operand (AddImmI)
};

/// Kernel entry: pre-resolved buffer pointers (base + element offset
/// already applied) plus the int/float views of the scalar arguments, in
/// the intrinsic's documented order (tir/intrinsics.h).
using KernelFn = void (*)(void *const *Ptrs, const int64_t *SI,
                          const double *SF);

/// Compiled kernel call: direct function pointer + argument recipe.
/// Compile-time-constant scalars are pre-marshalled into SI/SF; only the
/// (typically few) dynamic scalars are patched in from registers at
/// dispatch, and a call with none uses the arrays in place.
struct CallDesc {
  KernelFn Fn = nullptr;
  /// Symbolic identity of Fn. Function pointers do not survive process
  /// boundaries, so the persistent artifact cache serializes this and
  /// relinks Fn via kernelAdapter() at load time.
  tir::Intrinsic In = tir::Intrinsic::BrgemmF32;
  uint8_t NumBufs = 0;
  uint8_t NumDyn = 0; ///< dynamic scalar count (Dyn entries)
  struct Buf {
    int32_t BufferId = -1;
    uint16_t OffsetReg = 0; ///< element offset register
    bool HasOffset = false; ///< false = offset 0 (no register read)
  } Bufs[4];
  /// Pre-marshalled scalar views (constants filled at compile time).
  int64_t SI[12] = {0};
  double SF[12] = {0};
  struct Dyn {
    uint8_t Idx = 0;    ///< scalar position to patch
    bool IsF64 = false; ///< marshal from the F view (else the I view)
    uint16_t Reg = 0;
  } Dyns[12];
};

/// Compiled parallel loop. The body is the BodyLen instructions following
/// the ParallelFor instruction; each worker runs it over a copy of the
/// submitting frame with its own thread-local buffer table, matching the
/// tree evaluator's execParallelFor.
struct ParDesc {
  uint16_t VarReg = 0;
  uint16_t BeginReg = 0;
  uint16_t EndReg = 0;
  uint16_t StepReg = 0;
  uint32_t BodyLen = 0;
};

/// Per-buffer execution metadata, copied out of the tir::Func so the
/// executor never touches the IR.
struct BufferInfo {
  int64_t Bytes = 0;
  int64_t ElemSize = 1;
  tir::BufferScope Scope = tir::BufferScope::Temp;
  int64_t ArenaOffset = -1;          ///< Temp: offset into the shared arena
  const void *BakedData = nullptr;   ///< Const with baked data, else null
};

/// An executable bytecode program. Immutable after build; shared by every
/// execution of the owning partition (per-execution state lives in
/// exec::Executor).
struct Program {
  std::string Name;
  std::vector<Instr> Code;
  std::vector<CallDesc> Calls;
  std::vector<ParDesc> Pars;
  /// Initial register image (constants preloaded); frame setup is one copy.
  std::vector<Value> InitRegs;
  uint32_t NumRegs = 0;
  std::vector<BufferInfo> Buffers;
  int64_t ArenaBytes = 0;
};

/// Returns the marshalling adapter (defined with the executor) that calls
/// the kernels/ implementation of \p In through the CallDesc convention.
KernelFn kernelAdapter(tir::Intrinsic In);

/// Compiles a slot-assigned function into a bytecode program. \p F must
/// have slots assigned (the lowering driver compiles the program as its
/// final step). The returned program holds pointers into F.Baked, so F
/// must outlive it.
std::shared_ptr<const Program> compileProgram(const tir::Func &F);

/// Disassembles \p P for debugging / tests.
std::string printProgram(const Program &P);

} // namespace exec
} // namespace gc

#endif // GC_EXEC_PROGRAM_H
