//===- executor.h - Bytecode dispatch loop ----------------------*- C++ -*-===//
///
/// \file
/// Per-execution state and dispatch loop for exec::Program. The Program is
/// compiled once per partition (second stage of the lower -> bytecode ->
/// dispatch pipeline, see exec/program.h); each execution draws an
/// Executor whose register frame, temp arena and per-worker scratch belong
/// to that execution, so concurrent executes of one partition never share
/// mutable state. This mirrors the tree evaluator's ownership model
/// (tir/eval.h) with a program pointer instead of an IR walk.
///
/// Parallel For nests run through runtime::ThreadPool::parallelFor with a
/// register-frame copy per worker — the same fork/join structure, trip
/// counts and barrierCount() as the tree evaluator, so the two engines are
/// interchangeable and bit-identical (the differential tests assert this).
///
//===----------------------------------------------------------------------===//

#ifndef GC_EXEC_EXECUTOR_H
#define GC_EXEC_EXECUTOR_H

#include "exec/program.h"
#include "runtime/buffer.h"
#include "runtime/thread_pool.h"

#include <memory>
#include <vector>

namespace gc {
namespace exec {

/// Executes a bytecode program against caller-provided buffer bindings.
class Executor {
public:
  /// Prepares execution state (temp arena, per-worker scratch, register
  /// frames). \p P must outlive the executor.
  Executor(std::shared_ptr<const Program> P, runtime::ThreadPool &Pool);

  /// Binds a Param/FoldedConst/Const buffer to caller storage.
  void bindBuffer(int BufferId, void *Ptr);

  /// Runs the program. All param buffers must be bound.
  void run();

private:
  struct Frame {
    Value *Regs = nullptr;
    /// Buffer id -> base pointer (thread-specific for ThreadLocal).
    void *const *Buffers = nullptr;
  };

  void runRange(uint32_t PC, uint32_t End, Frame &Fr);
  void runParallel(const Instr &I, Frame &Fr, uint32_t BodyBegin);

  std::shared_ptr<const Program> P;
  runtime::ThreadPool &Pool;

  /// Base pointers indexed by buffer id; worker 0 view.
  std::vector<void *> BasePtrs;
  /// Per-worker pointer tables (ThreadLocal buffers diverge).
  std::vector<std::vector<void *>> WorkerPtrs;

  runtime::AlignedBuffer Arena;               // shared temp arena
  std::vector<runtime::AlignedBuffer> Locals; // temps without arena offset
  std::vector<runtime::AlignedBuffer> ThreadScratch; // per worker blocks

  /// Main register frame plus one persistent frame per worker (copied
  /// from the submitting frame at each parallel nest entry).
  std::vector<Value> MainRegs;
  std::vector<std::vector<Value>> WorkerRegs;
};

} // namespace exec
} // namespace gc

#endif // GC_EXEC_EXECUTOR_H
