//===- backend.h - Executor backend selection -------------------*- C++ -*-===//
///
/// \file
/// Selects which of the two Tensor IR execution engines a compiled
/// partition uses:
///
///  * Tree — the original recursive tree-walking evaluator (tir/eval.h).
///    Kept as the reference oracle: it executes the Tensor IR exactly as
///    written, so differential tests can pin the bytecode executor
///    against it bit-for-bit.
///  * Bytecode — the flat register-based bytecode program (exec/program.h)
///    compiled once per partition and run by a tight dispatch loop
///    (exec/executor.h). This is the default hot path.
///
/// The default comes from the GC_EXEC environment variable ("tree" or
/// "bytecode"); core::CompileOptions carries the resolved choice so tests
/// and benches can also toggle it programmatically per Session.
///
//===----------------------------------------------------------------------===//

#ifndef GC_EXEC_BACKEND_H
#define GC_EXEC_BACKEND_H

namespace gc {
namespace exec {

/// Execution engine for compiled partitions.
enum class Backend {
  /// Recursive tree-walking evaluator (reference oracle).
  Tree,
  /// Flat bytecode program + dispatch loop (default).
  Bytecode,
};

/// Resolves GC_EXEC ("tree" | "bytecode", default "bytecode"). Unknown
/// values fall back to Bytecode.
Backend defaultBackend();

/// Printable backend name ("tree" / "bytecode").
const char *backendName(Backend B);

} // namespace exec
} // namespace gc

#endif // GC_EXEC_BACKEND_H
