//===- program.cpp - Tensor IR -> bytecode compiler ---------------------------===//
//
// Single-pass compiler from a slot-assigned tir::Func to the flat bytecode
// of program.h. Variables keep their frame slots as register numbers;
// temporaries come from a small free list (expression trees release their
// operand registers as they are consumed), and constants / induction
// variables get permanent registers that are never recycled.
//
// Loop compilation shape (relative jump offsets):
//
//     <preheader: begin/end/step into registers>
//     Mov       var, begin
//     JumpIfGeI var, end  -> EXIT          ; zero-trip guard
//     <entry: induction bases / hoisted invariants, once per loop entry>
//   TOP:
//     <body>
//     AddImmI   ind, coeff*step ...        ; induction advances
//     LoopNext  var, step, end -> TOP
//   EXIT:
//
// Affine strength reduction: element-offset expressions are decomposed as
// rest + coeff * loopvar (inlining let definitions bound inside the loop);
// when coeff is a compile-time constant and rest only references values
// bound outside the loop, the offset becomes an induction register that is
// initialized in the entry block and advanced on the back edge. Offsets
// invariant in a loop (coeff 0) hoist to the entry block of the outermost
// loop they are invariant in. Parallel loops accept hoists (evaluated in
// the submitting frame, copied to the workers with the rest of the frame)
// but no inductions, since their iterations execute out of order.
//
//===----------------------------------------------------------------------===//

#include "exec/program.h"

#include "support/common.h"
#include "support/str.h"
#include "tir/intrinsics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace gc {
namespace exec {

using namespace tir;

namespace {

//===----------------------------------------------------------------------===//
// Constant folding helpers
//===----------------------------------------------------------------------===//

/// Evaluates \p E when it is a compile-time constant, with exactly the
/// tree evaluator's arithmetic (so folded results match runtime results
/// bit for bit). Returns false for anything touching a variable or memory.
bool evalConst(const ExprNode *E, Value &Out) {
  switch (E->kind()) {
  case ExprNode::Kind::IntImm:
    Out = Value();
    Out.I = static_cast<const IntImmNode *>(E)->Value;
    return true;
  case ExprNode::Kind::FloatImm:
    Out = Value();
    Out.F = static_cast<const FloatImmNode *>(E)->Value;
    return true;
  case ExprNode::Kind::Binary: {
    const auto *B = static_cast<const BinaryNode *>(E);
    Value A, C;
    if (!evalConst(B->A.get(), A) || !evalConst(B->B.get(), C))
      return false;
    Value R;
    if (B->type() == ScalarType::F64) {
      const double X =
          B->A->type() == ScalarType::F64 ? A.F : static_cast<double>(A.I);
      const double Y =
          B->B->type() == ScalarType::F64 ? C.F : static_cast<double>(C.I);
      switch (B->Op) {
      case BinOp::Add: R.F = X + Y; break;
      case BinOp::Sub: R.F = X - Y; break;
      case BinOp::Mul: R.F = X * Y; break;
      case BinOp::Div: R.F = X / Y; break;
      case BinOp::Mod: R.F = std::fmod(X, Y); break;
      case BinOp::Min: R.F = std::min(X, Y); break;
      case BinOp::Max: R.F = std::max(X, Y); break;
      }
      Out = R;
      return true;
    }
    switch (B->Op) {
    case BinOp::Add: R.I = A.I + C.I; break;
    case BinOp::Sub: R.I = A.I - C.I; break;
    case BinOp::Mul: R.I = A.I * C.I; break;
    case BinOp::Div:
      if (C.I == 0)
        return false; // leave the runtime behavior to the interpreter
      R.I = A.I / C.I;
      break;
    case BinOp::Mod:
      if (C.I == 0)
        return false;
      R.I = A.I % C.I;
      break;
    case BinOp::Min: R.I = std::min(A.I, C.I); break;
    case BinOp::Max: R.I = std::max(A.I, C.I); break;
    }
    Out = R;
    return true;
  }
  case ExprNode::Kind::Var:
  case ExprNode::Kind::Load:
    return false;
  }
  return false;
}

/// Integer-expression builder with local folding; used by the affine
/// decomposition so "rest" expressions stay small and constant tails
/// collapse to literals.
Expr mkBin(BinOp Op, Expr A, Expr B) {
  int64_t CA, CB;
  const bool KA = asConstInt(A, CA);
  const bool KB = asConstInt(B, CB);
  if (KA && KB) {
    switch (Op) {
    case BinOp::Add: return makeInt(CA + CB);
    case BinOp::Sub: return makeInt(CA - CB);
    case BinOp::Mul: return makeInt(CA * CB);
    case BinOp::Div:
      if (CB != 0)
        return makeInt(CA / CB);
      break;
    case BinOp::Mod:
      if (CB != 0)
        return makeInt(CA % CB);
      break;
    case BinOp::Min: return makeInt(std::min(CA, CB));
    case BinOp::Max: return makeInt(std::max(CA, CB));
    }
  }
  if (Op == BinOp::Add) {
    if (KA && CA == 0)
      return B;
    if (KB && CB == 0)
      return A;
  }
  if (Op == BinOp::Sub && KB && CB == 0)
    return A;
  if (Op == BinOp::Mul) {
    if ((KA && CA == 0) || (KB && CB == 0))
      return makeInt(0);
    if (KA && CA == 1)
      return B;
    if (KB && CB == 1)
      return A;
  }
  return makeBinary(Op, std::move(A), std::move(B));
}

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

class ProgramBuilder {
public:
  explicit ProgramBuilder(const Func &F) : F(F) {}

  std::shared_ptr<const Program> build();

private:
  struct Operand {
    uint16_t Reg = 0;
    bool Temp = false;
  };

  /// Compilation context of one active (enclosing) loop.
  struct LoopCtx {
    const VarNode *LoopVar = nullptr;
    Var VarHandle;
    bool Parallel = false;
    bool StepIsConst = false;
    int64_t StepConst = 0;
    /// Once-per-entry code: induction bases and hoisted invariants.
    std::vector<Instr> Entry;
    /// Back-edge advances (AddImmI per induction).
    std::vector<Instr> Incr;
    /// Variables bound inside this loop's body so far (lets and nested
    /// loop variables) — anything here is NOT loop-invariant.
    std::unordered_set<const VarNode *> InnerDefs;
    /// Offset expression node -> installed induction/hoist register.
    std::unordered_map<const ExprNode *, uint16_t> Memo;
  };

  // --- register management ---
  uint16_t allocPermanent() {
    if (NextReg > 0xFFFF)
      fatalError("bytecode program exceeds 65536 registers");
    return static_cast<uint16_t>(NextReg++);
  }
  Operand allocTemp() {
    if (!FreeTemps.empty()) {
      const uint16_t R = FreeTemps.back();
      FreeTemps.pop_back();
      return {R, true};
    }
    return {allocPermanent(), true};
  }
  void release(const Operand &O) {
    if (O.Temp)
      FreeTemps.push_back(O.Reg);
  }

  uint16_t slotReg(const VarNode *V) const {
    assert(V->Slot >= 0 && "slot not assigned");
    return static_cast<uint16_t>(V->Slot);
  }

  uint16_t constReg(const Value &V) {
    // Key the float half by bit pattern: value-keying would merge -0.0
    // with +0.0 and make NaN compare equivalent to everything.
    uint64_t FBits;
    std::memcpy(&FBits, &V.F, sizeof(FBits));
    const auto Key = std::make_pair(V.I, FBits);
    auto It = ConstRegs.find(Key);
    if (It != ConstRegs.end())
      return It->second;
    const uint16_t R = allocPermanent();
    ConstRegs.emplace(Key, R);
    ConstPool.emplace_back(R, V);
    return R;
  }
  uint16_t intConstReg(int64_t I) {
    Value V;
    V.I = I;
    return constReg(V);
  }

  // --- emission ---
  void emit(Opcode Op, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
            int32_t Target = 0, int64_t Imm = 0) {
    Instr I;
    I.Op = Op;
    I.A = A;
    I.B = B;
    I.C = C;
    I.Target = Target;
    I.Imm = Imm;
    Out->push_back(I);
  }

  /// RAII redirection of the emission buffer (loop bodies, entry blocks).
  struct EmitTo {
    ProgramBuilder &PB;
    std::vector<Instr> *Saved;
    EmitTo(ProgramBuilder &PB, std::vector<Instr> *Buf)
        : PB(PB), Saved(PB.Out) {
      PB.Out = Buf;
    }
    ~EmitTo() { PB.Out = Saved; }
  };

  // --- expressions ---
  Operand compileExpr(const ExprNode *E);
  Operand compileExprAsInt(const Expr &E);
  Operand compileExprAsFloat(const Expr &E);
  Operand compileOffset(const Expr &E);
  Operand compileLoadStoreOffset(int BufferId, const std::vector<Expr> &Idx);

  // --- affine analysis ---
  bool splitAffine(const Expr &E, const LoopCtx &Ctx, int64_t &Coeff,
                   Expr &Rest, int Depth);
  bool tryStrengthReduce(const Expr &E, Operand &OutOp);

  // --- statements ---
  void compileStmtList(const StmtList &L, bool InParallel);
  void compileStmt(const StmtNode *S, bool InParallel);
  void compileFor(const ForNode *For, bool InParallel);
  void compileParallelFor(const ForNode *For);
  void compileStore(const StoreNode *St);
  void compileCall(const CallNode *C);

  /// Records that \p V became bound inside every currently active loop.
  void markBound(const VarNode *V) {
    for (LoopCtx &Ctx : Loops)
      Ctx.InnerDefs.insert(V);
  }

  const Func &F;
  Program P;
  std::vector<Instr> *Out = nullptr;
  uint32_t NextReg = 0;
  std::vector<uint16_t> FreeTemps;
  std::map<std::pair<int64_t, uint64_t>, uint16_t> ConstRegs;
  std::vector<std::pair<uint16_t, Value>> ConstPool;
  std::vector<LoopCtx> Loops;
  /// Let-bound variable -> defining expression (for affine inlining).
  std::unordered_map<const VarNode *, Expr> LetDefs;
  /// Vars currently being inlined (self/cyclic definition guard).
  std::unordered_set<const VarNode *> Inlining;
};

//===----------------------------------------------------------------------===//
// Expression compilation
//===----------------------------------------------------------------------===//

ProgramBuilder::Operand ProgramBuilder::compileExpr(const ExprNode *E) {
  Value CV;
  if (evalConst(E, CV))
    return {constReg(CV), false};
  switch (E->kind()) {
  case ExprNode::Kind::IntImm:
  case ExprNode::Kind::FloatImm:
    GC_UNREACHABLE("constants handled by evalConst");
  case ExprNode::Kind::Var:
    return {slotReg(static_cast<const VarNode *>(E)), false};
  case ExprNode::Kind::Binary: {
    const auto *B = static_cast<const BinaryNode *>(E);
    Operand A = compileExpr(B->A.get());
    Operand C = compileExpr(B->B.get());
    if (B->type() == ScalarType::F64) {
      // Convert any integer operand, mirroring the evaluator's per-operand
      // static-type conversion.
      if (B->A->type() != ScalarType::F64) {
        Operand Conv = allocTemp();
        emit(Opcode::I2F, Conv.Reg, A.Reg);
        release(A);
        A = Conv;
      }
      if (B->B->type() != ScalarType::F64) {
        Operand Conv = allocTemp();
        emit(Opcode::I2F, Conv.Reg, C.Reg);
        release(C);
        C = Conv;
      }
      release(A);
      release(C);
      Operand R = allocTemp();
      Opcode Op;
      switch (B->Op) {
      case BinOp::Add: Op = Opcode::AddF; break;
      case BinOp::Sub: Op = Opcode::SubF; break;
      case BinOp::Mul: Op = Opcode::MulF; break;
      case BinOp::Div: Op = Opcode::DivF; break;
      case BinOp::Mod: Op = Opcode::ModF; break;
      case BinOp::Min: Op = Opcode::MinF; break;
      case BinOp::Max: Op = Opcode::MaxF; break;
      default: GC_UNREACHABLE("binop");
      }
      emit(Op, R.Reg, A.Reg, C.Reg);
      return R;
    }
    release(A);
    release(C);
    Operand R = allocTemp();
    Opcode Op;
    switch (B->Op) {
    case BinOp::Add: Op = Opcode::AddI; break;
    case BinOp::Sub: Op = Opcode::SubI; break;
    case BinOp::Mul: Op = Opcode::MulI; break;
    case BinOp::Div: Op = Opcode::DivI; break;
    case BinOp::Mod: Op = Opcode::ModI; break;
    case BinOp::Min: Op = Opcode::MinI; break;
    case BinOp::Max: Op = Opcode::MaxI; break;
    default: GC_UNREACHABLE("binop");
    }
    emit(Op, R.Reg, A.Reg, C.Reg);
    return R;
  }
  case ExprNode::Kind::Load: {
    const auto *L = static_cast<const LoadNode *>(E);
    Operand Off = compileLoadStoreOffset(L->BufferId, L->Indices);
    release(Off);
    Operand R = allocTemp();
    Opcode Op;
    switch (F.buffer(L->BufferId).ElemTy) {
    case DataType::F32: Op = Opcode::LoadF32; break;
    case DataType::F64: Op = Opcode::LoadF64; break;
    case DataType::S32: Op = Opcode::LoadS32; break;
    case DataType::S8: Op = Opcode::LoadS8; break;
    case DataType::U8: Op = Opcode::LoadU8; break;
    default: GC_UNREACHABLE("load dtype");
    }
    emit(Op, R.Reg, static_cast<uint16_t>(L->BufferId), Off.Reg);
    return R;
  }
  }
  GC_UNREACHABLE("unhandled expr kind");
}

ProgramBuilder::Operand ProgramBuilder::compileExprAsInt(const Expr &E) {
  Operand O = compileExpr(E.get());
  if (E->type() != ScalarType::F64)
    return O;
  release(O);
  Operand R = allocTemp();
  emit(Opcode::F2I, R.Reg, O.Reg);
  return R;
}

ProgramBuilder::Operand ProgramBuilder::compileExprAsFloat(const Expr &E) {
  Operand O = compileExpr(E.get());
  if (E->type() == ScalarType::F64)
    return O;
  release(O);
  Operand R = allocTemp();
  emit(Opcode::I2F, R.Reg, O.Reg);
  return R;
}

//===----------------------------------------------------------------------===//
// Affine decomposition & strength reduction
//===----------------------------------------------------------------------===//

bool ProgramBuilder::splitAffine(const Expr &E, const LoopCtx &Ctx,
                                 int64_t &Coeff, Expr &Rest, int Depth) {
  if (!E || Depth > 64 || E->type() == ScalarType::F64)
    return false;
  switch (E->kind()) {
  case ExprNode::Kind::IntImm:
    Coeff = 0;
    Rest = E;
    return true;
  case ExprNode::Kind::FloatImm:
    return false;
  case ExprNode::Kind::Var: {
    const auto *V = static_cast<const VarNode *>(E.get());
    if (V == Ctx.LoopVar) {
      Coeff = 1;
      Rest = makeInt(0);
      return true;
    }
    if (Ctx.InnerDefs.count(V)) {
      // Bound inside the loop: inline a let definition (recomputed from
      // outer-scope values) or give up on nested loop variables.
      const auto It = LetDefs.find(V);
      if (It == LetDefs.end() || Inlining.count(V))
        return false;
      Inlining.insert(V);
      const bool Ok = splitAffine(It->second, Ctx, Coeff, Rest, Depth + 1);
      Inlining.erase(V);
      return Ok;
    }
    Coeff = 0;
    Rest = E;
    return true;
  }
  case ExprNode::Kind::Binary: {
    const auto *B = static_cast<const BinaryNode *>(E.get());
    int64_t CA, CB;
    Expr RA, RB;
    if (!splitAffine(B->A, Ctx, CA, RA, Depth + 1) ||
        !splitAffine(B->B, Ctx, CB, RB, Depth + 1))
      return false;
    switch (B->Op) {
    case BinOp::Add:
      Coeff = CA + CB;
      Rest = mkBin(BinOp::Add, RA, RB);
      return true;
    case BinOp::Sub:
      Coeff = CA - CB;
      Rest = mkBin(BinOp::Sub, RA, RB);
      return true;
    case BinOp::Mul: {
      if (CA == 0 && CB == 0) {
        Coeff = 0;
        Rest = mkBin(BinOp::Mul, RA, RB);
        return true;
      }
      int64_t K;
      if (CA != 0 && CB == 0 && asConstInt(RB, K)) {
        Coeff = CA * K;
        Rest = mkBin(BinOp::Mul, RA, RB);
        return true;
      }
      if (CB != 0 && CA == 0 && asConstInt(RA, K)) {
        Coeff = K * CB;
        Rest = mkBin(BinOp::Mul, RA, RB);
        return true;
      }
      return false;
    }
    case BinOp::Div:
    case BinOp::Mod:
    case BinOp::Min:
    case BinOp::Max:
      if (CA == 0 && CB == 0) {
        Coeff = 0;
        Rest = mkBin(B->Op, RA, RB);
        return true;
      }
      return false;
    }
    return false;
  }
  case ExprNode::Kind::Load:
    // Memory may be written inside the loop; never treat as invariant.
    return false;
  }
  return false;
}

/// True when evaluating \p E could trap: an integer Div/Mod whose divisor
/// is not a nonzero constant. Hoisted entry code runs at loop entry even
/// when the use site sits inside a deeper zero-trip loop the tree oracle
/// would skip, so trapping expressions must not be hoisted.
bool mayTrap(const Expr &E) {
  if (!E || E->kind() != ExprNode::Kind::Binary)
    return false;
  const auto &B = static_cast<const BinaryNode &>(*E);
  if ((B.Op == BinOp::Div || B.Op == BinOp::Mod) &&
      B.type() != ScalarType::F64) {
    int64_t D;
    if (!asConstInt(B.B, D) || D == 0)
      return true;
  }
  return mayTrap(B.A) || mayTrap(B.B);
}

bool ProgramBuilder::tryStrengthReduce(const Expr &E, Operand &OutOp) {
  if (Loops.empty())
    return false;
  // Trivial expressions gain nothing.
  if (E->kind() == ExprNode::Kind::IntImm ||
      E->kind() == ExprNode::Kind::FloatImm ||
      E->kind() == ExprNode::Kind::Var)
    return false;
  int Install = -1;
  int64_t InstallCoeff = 0;
  Expr InstallRest;
  for (int I = static_cast<int>(Loops.size()) - 1; I >= 0; --I) {
    LoopCtx &Ctx = Loops[static_cast<size_t>(I)];
    const auto MIt = Ctx.Memo.find(E.get());
    if (MIt != Ctx.Memo.end()) {
      OutOp = {MIt->second, false};
      return true;
    }
    int64_t Coeff;
    Expr Rest;
    if (!splitAffine(E, Ctx, Coeff, Rest, 0))
      break;
    if (Coeff != 0) {
      // Induction: needs ordered iterations and a constant step.
      if (Ctx.Parallel || !Ctx.StepIsConst)
        break;
      Install = I;
      InstallCoeff = Coeff;
      InstallRest = Rest;
      break;
    }
    // Invariant at this level; keep walking outward for the widest hoist.
    Install = I;
    InstallCoeff = 0;
    InstallRest = Rest;
  }
  if (Install < 0)
    return false;
  // A hoist of a constant or bare variable is not worth a register.
  if (InstallCoeff == 0 &&
      (InstallRest->kind() == ExprNode::Kind::IntImm ||
       InstallRest->kind() == ExprNode::Kind::Var))
    return false;
  // Entry code must be safe to run when the use site never executes
  // (zero-trip loop between the install loop and the use).
  if (mayTrap(InstallRest))
    return false;
  LoopCtx &Ctx = Loops[static_cast<size_t>(Install)];
  const uint16_t R = allocPermanent();
  // Entry value: rest + coeff*var with var at its begin value.
  Expr EntryE = InstallRest;
  if (InstallCoeff != 0)
    EntryE = mkBin(BinOp::Add, EntryE,
                   mkBin(BinOp::Mul, makeInt(InstallCoeff),
                         std::static_pointer_cast<const ExprNode>(
                             Ctx.VarHandle)));
  {
    EmitTo Guard(*this, &Ctx.Entry);
    Operand V = compileExprAsInt(EntryE);
    emit(Opcode::Mov, R, V.Reg);
    release(V);
  }
  if (InstallCoeff != 0)
    Ctx.Incr.push_back(
        [&] {
          Instr I;
          I.Op = Opcode::AddImmI;
          I.A = R;
          I.Imm = InstallCoeff * Ctx.StepConst;
          return I;
        }());
  Ctx.Memo.emplace(E.get(), R);
  OutOp = {R, false};
  return true;
}

ProgramBuilder::Operand ProgramBuilder::compileOffset(const Expr &E) {
  if (!E)
    return {intConstReg(0), false};
  Operand O;
  if (tryStrengthReduce(E, O))
    return O;
  return compileExprAsInt(E);
}

ProgramBuilder::Operand
ProgramBuilder::compileLoadStoreOffset(int BufferId,
                                       const std::vector<Expr> &Idx) {
  const BufferDecl &B = F.buffer(BufferId);
  if (Idx.size() == 1)
    return compileOffset(Idx[0]);
  // Row-major flatten, symbolically, so the combined offset expression is
  // eligible for folding and strength reduction as a whole.
  bool AllInt = true;
  for (const Expr &I : Idx)
    AllInt = AllInt && I->type() != ScalarType::F64;
  if (AllInt) {
    Expr Flat;
    int64_t Stride = 1;
    for (int64_t D = static_cast<int64_t>(Idx.size()) - 1; D >= 0; --D) {
      Expr Term = mkBin(BinOp::Mul, Idx[static_cast<size_t>(D)],
                        makeInt(Stride));
      Flat = Flat ? mkBin(BinOp::Add, Flat, Term) : Term;
      Stride *= B.Dims[static_cast<size_t>(D)];
    }
    return compileOffset(Flat);
  }
  // Rare mixed-type indices: accumulate per dimension with the evaluator's
  // per-index truncation.
  Operand Acc = {intConstReg(0), false};
  int64_t Stride = 1;
  for (int64_t D = static_cast<int64_t>(Idx.size()) - 1; D >= 0; --D) {
    Operand IO = compileExprAsInt(Idx[static_cast<size_t>(D)]);
    Operand Scaled = allocTemp();
    emit(Opcode::MulI, Scaled.Reg, IO.Reg, intConstReg(Stride));
    release(IO);
    Operand Sum = allocTemp();
    emit(Opcode::AddI, Sum.Reg, Acc.Reg, Scaled.Reg);
    release(Scaled);
    release(Acc);
    Acc = Sum;
    Stride *= B.Dims[static_cast<size_t>(D)];
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// Statement compilation
//===----------------------------------------------------------------------===//

void ProgramBuilder::compileStmtList(const StmtList &L, bool InParallel) {
  for (const Stmt &S : L)
    compileStmt(S.get(), InParallel);
}

void ProgramBuilder::compileStmt(const StmtNode *S, bool InParallel) {
  switch (S->kind()) {
  case StmtNode::Kind::For:
    compileFor(static_cast<const ForNode *>(S), InParallel);
    return;
  case StmtNode::Kind::Let: {
    const auto *L = static_cast<const LetNode *>(S);
    Operand V = compileExpr(L->Value.get());
    emit(Opcode::Mov, slotReg(L->BoundVar.get()), V.Reg);
    release(V);
    LetDefs[L->BoundVar.get()] = L->Value;
    markBound(L->BoundVar.get());
    return;
  }
  case StmtNode::Kind::Store:
    compileStore(static_cast<const StoreNode *>(S));
    return;
  case StmtNode::Kind::Call:
    compileCall(static_cast<const CallNode *>(S));
    return;
  case StmtNode::Kind::Seq:
    compileStmtList(static_cast<const SeqNode *>(S)->Body, InParallel);
    return;
  }
  GC_UNREACHABLE("unhandled stmt kind");
}

void ProgramBuilder::compileFor(const ForNode *For, bool InParallel) {
  if (For->Parallel && !InParallel) {
    compileParallelFor(For);
    return;
  }
  Operand B = compileExprAsInt(For->Begin);
  Operand E = compileExprAsInt(For->End);
  Operand S = compileExprAsInt(For->Step);
  const uint16_t VarReg = slotReg(For->LoopVar.get());
  emit(Opcode::Mov, VarReg, B.Reg);
  const size_t GuardPos = Out->size();
  emit(Opcode::JumpIfGeI, VarReg, E.Reg); // target patched below

  markBound(For->LoopVar.get());
  LoopCtx Ctx;
  Ctx.LoopVar = For->LoopVar.get();
  Ctx.VarHandle = For->LoopVar;
  Ctx.Parallel = false;
  Value StepV;
  Ctx.StepIsConst = evalConst(For->Step.get(), StepV) &&
                    For->Step->type() != ScalarType::F64;
  Ctx.StepConst = StepV.I;
  Loops.push_back(std::move(Ctx));

  std::vector<Instr> BodyBuf;
  {
    EmitTo Guard(*this, &BodyBuf);
    compileStmtList(For->Body, InParallel);
  }
  LoopCtx Done = std::move(Loops.back());
  Loops.pop_back();

  for (const Instr &I : Done.Entry)
    Out->push_back(I);
  const size_t Top = Out->size();
  for (const Instr &I : BodyBuf)
    Out->push_back(I);
  for (const Instr &I : Done.Incr)
    Out->push_back(I);
  Instr LN;
  LN.Op = Opcode::LoopNext;
  LN.A = VarReg;
  LN.B = S.Reg;
  LN.C = E.Reg;
  LN.Target = static_cast<int32_t>(static_cast<int64_t>(Top) -
                                   static_cast<int64_t>(Out->size()));
  Out->push_back(LN);
  (*Out)[GuardPos].Target =
      static_cast<int32_t>(Out->size() - GuardPos);
  release(B);
  release(E);
  release(S);
}

void ProgramBuilder::compileParallelFor(const ForNode *For) {
  Operand B = compileExprAsInt(For->Begin);
  Operand E = compileExprAsInt(For->End);
  Operand S = compileExprAsInt(For->Step);
  const uint16_t VarReg = slotReg(For->LoopVar.get());

  markBound(For->LoopVar.get());
  LoopCtx Ctx;
  Ctx.LoopVar = For->LoopVar.get();
  Ctx.VarHandle = For->LoopVar;
  Ctx.Parallel = true;
  Ctx.StepIsConst = false; // no inductions on unordered iterations
  Loops.push_back(std::move(Ctx));

  std::vector<Instr> BodyBuf;
  {
    EmitTo Guard(*this, &BodyBuf);
    compileStmtList(For->Body, /*InParallel=*/true);
  }
  LoopCtx Done = std::move(Loops.back());
  Loops.pop_back();
  assert(Done.Incr.empty() && "no inductions against a parallel loop");

  // Zero-trip guard over the whole region: the tree oracle never
  // evaluates a hoisted invariant (or dispatches the nest) when the loop
  // is empty, and an entry expression may trap (Div/Mod) on the degenerate
  // bounds. Skipping the nest entirely also skips the barrier, exactly as
  // the tree evaluator's early return does.
  const size_t GuardPos = Out->size();
  emit(Opcode::JumpIfGeI, B.Reg, E.Reg); // target patched below

  // Hoisted invariants evaluate once in the submitting frame; the worker
  // frame copy carries them into the nest.
  for (const Instr &I : Done.Entry)
    Out->push_back(I);

  ParDesc D;
  D.VarReg = VarReg;
  D.BeginReg = B.Reg;
  D.EndReg = E.Reg;
  D.StepReg = S.Reg;
  D.BodyLen = static_cast<uint32_t>(BodyBuf.size());
  const int32_t DescIdx = static_cast<int32_t>(P.Pars.size());
  P.Pars.push_back(D);
  emit(Opcode::ParallelFor, 0, 0, 0, DescIdx);
  for (const Instr &I : BodyBuf)
    Out->push_back(I);
  (*Out)[GuardPos].Target = static_cast<int32_t>(Out->size() - GuardPos);
  release(B);
  release(E);
  release(S);
}

void ProgramBuilder::compileStore(const StoreNode *St) {
  Operand Off = compileLoadStoreOffset(St->BufferId, St->Indices);
  const DataType Ty = F.buffer(St->BufferId).ElemTy;
  Opcode Op;
  Operand V;
  switch (Ty) {
  case DataType::F32:
    Op = Opcode::StoreF32;
    V = compileExprAsFloat(St->Value);
    break;
  case DataType::F64:
    Op = Opcode::StoreF64;
    V = compileExprAsFloat(St->Value);
    break;
  case DataType::S32:
    Op = Opcode::StoreS32;
    V = compileExprAsInt(St->Value);
    break;
  case DataType::S8:
    Op = Opcode::StoreS8;
    V = compileExprAsInt(St->Value);
    break;
  case DataType::U8:
    Op = Opcode::StoreU8;
    V = compileExprAsInt(St->Value);
    break;
  default:
    GC_UNREACHABLE("store dtype");
  }
  emit(Op, V.Reg, static_cast<uint16_t>(St->BufferId), Off.Reg);
  release(V);
  release(Off);
}

void ProgramBuilder::compileCall(const CallNode *C) {
  CallDesc D;
  D.Fn = kernelAdapter(C->In);
  D.In = C->In;
  assert(C->Buffers.size() <= 4 && "intrinsics take at most 4 buffers");
  assert(C->Scalars.size() <= 12 && "intrinsics take at most 12 scalars");
  std::vector<Operand> Held;
  D.NumBufs = static_cast<uint8_t>(C->Buffers.size());
  for (size_t I = 0; I < C->Buffers.size(); ++I) {
    const BufferRef &Ref = C->Buffers[I];
    D.Bufs[I].BufferId = Ref.BufferId;
    if (Ref.Offset) {
      Operand Off = compileOffset(Ref.Offset);
      D.Bufs[I].OffsetReg = Off.Reg;
      D.Bufs[I].HasOffset = true;
      Held.push_back(Off);
    }
  }
  for (size_t I = 0; I < C->Scalars.size(); ++I) {
    const Expr &E = C->Scalars[I];
    Value CV;
    if (evalConst(E.get(), CV)) {
      // Pre-marshal both views exactly as the tree evaluator would.
      if (E->type() == ScalarType::F64) {
        D.SF[I] = CV.F;
        D.SI[I] = static_cast<int64_t>(CV.F);
      } else {
        D.SI[I] = CV.I;
        D.SF[I] = static_cast<double>(CV.I);
      }
      continue;
    }
    Operand O = compileExpr(E.get());
    CallDesc::Dyn &Dy = D.Dyns[D.NumDyn++];
    Dy.Idx = static_cast<uint8_t>(I);
    Dy.IsF64 = E->type() == ScalarType::F64;
    Dy.Reg = O.Reg;
    Held.push_back(O);
  }
  const int32_t DescIdx = static_cast<int32_t>(P.Calls.size());
  P.Calls.push_back(D);
  emit(Opcode::CallKernel, 0, 0, 0, DescIdx);
  for (const Operand &O : Held)
    release(O);
}

//===----------------------------------------------------------------------===//
// build()
//===----------------------------------------------------------------------===//

std::shared_ptr<const Program> ProgramBuilder::build() {
  assert(F.NumSlots >= 0 && "run assignSlots before program compilation");
  P.Name = F.Name;
  NextReg = static_cast<uint32_t>(F.NumSlots);

  P.Buffers.reserve(F.Buffers.size());
  for (const BufferDecl &B : F.Buffers) {
    BufferInfo Info;
    Info.Bytes = B.numBytes();
    Info.ElemSize = dataTypeSize(B.ElemTy);
    Info.Scope = B.Scope;
    Info.ArenaOffset = B.ArenaOffset;
    if (B.Scope == BufferScope::Const && B.BakedIndex >= 0)
      Info.BakedData = F.Baked[static_cast<size_t>(B.BakedIndex)].data();
    P.Buffers.push_back(Info);
  }
  P.ArenaBytes = F.ArenaBytes;

  Out = &P.Code;
  compileStmtList(F.Body, /*InParallel=*/false);

  P.NumRegs = NextReg;
  P.InitRegs.assign(P.NumRegs, Value());
  for (const auto &KV : ConstPool)
    P.InitRegs[KV.first] = KV.second;
  return std::make_shared<const Program>(std::move(P));
}

} // namespace

std::shared_ptr<const Program> compileProgram(const Func &F) {
  return ProgramBuilder(F).build();
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

std::string printProgram(const Program &P) {
  static const char *Names[] = {
      "mov",    "i2f",    "f2i",    "add.i",  "sub.i",  "mul.i",  "div.i",
      "mod.i",  "min.i",  "max.i",  "add.f",  "sub.f",  "mul.f",  "div.f",
      "mod.f",  "min.f",  "max.f",  "addimm", "ld.f32", "ld.f64", "ld.s32",
      "ld.s8",  "ld.u8",  "st.f32", "st.f64", "st.s32", "st.s8",  "st.u8",
      "jge",    "next",   "call",   "parfor"};
  std::string S = formatString("program %s: %zu instrs, %u regs, %zu calls, "
                               "%zu parallel nests\n",
                               P.Name.c_str(), P.Code.size(), P.NumRegs,
                               P.Calls.size(), P.Pars.size());
  for (size_t I = 0; I < P.Code.size(); ++I) {
    const Instr &In = P.Code[I];
    S += formatString("%4zu: %-7s A=%u B=%u C=%u T=%d Imm=%lld\n", I,
                      Names[static_cast<size_t>(In.Op)], In.A, In.B, In.C,
                      In.Target, static_cast<long long>(In.Imm));
  }
  return S;
}

} // namespace exec
} // namespace gc
