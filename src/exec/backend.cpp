//===- backend.cpp - Executor backend selection -------------------------------===//

#include "exec/backend.h"

#include "support/env.h"

namespace gc {
namespace exec {

Backend defaultBackend() {
  const std::string V = getEnvString("GC_EXEC", "bytecode");
  if (V == "tree")
    return Backend::Tree;
  return Backend::Bytecode;
}

const char *backendName(Backend B) {
  return B == Backend::Tree ? "tree" : "bytecode";
}

} // namespace exec
} // namespace gc
