//===- driver.h - Graph -> Tensor IR lowering driver ------------*- C++ -*-===//
///
/// \file
/// Drives the final lowering stage: splits the optimized graph into a fold
/// side (constant weight preprocessing, executed once at first run) and a
/// main side (the fused-op regions lowered to Tensor IR loop nests), then
/// runs the Tensor IR passes (coarse-grain loop merging, buffer reuse,
/// slot assignment) over the entry function.
///
//===----------------------------------------------------------------------===//

#ifndef GC_LOWER_DRIVER_H
#define GC_LOWER_DRIVER_H

#include "graph/graph.h"
#include "support/status.h"
#include "tir/function.h"
#include "tirpass/tirpass.h"

#include <memory>
#include <vector>

namespace gc {
namespace exec {
struct Program;
} // namespace exec
} // namespace gc

namespace gc {
namespace lower {

/// Options of the lowering stage.
struct DriverOptions {
  int Threads = 1;
  /// Merge aligned parallel nests (§V coarse-grain fusion).
  bool EnableCoarseGrainFusion = true;
  /// Pack entry temporaries into a reused arena (§VI buffer reuse).
  bool EnableBufferReuse = true;
};

/// How an entry buffer is bound at execution time.
enum class BindingKind : uint8_t {
  Input,     ///< caller-provided graph input
  Output,    ///< caller-provided graph output
  Folded,    ///< fold-function output served from the constant cache
  ConstData, ///< raw constant data attached to the graph
};

/// One execution-time buffer binding.
struct Binding {
  int BufferId = -1;
  int64_t TensorId = -1;
  BindingKind Kind = BindingKind::Input;
};

/// Result of lowering one optimized graph.
struct LoweredProgram {
  tir::Func Entry;
  /// Entry compiled to flat bytecode (exec/program.h) as the final
  /// lowering step; shared by every execution of the partition. Holds
  /// pointers into Entry.Baked, so it lives alongside Entry. The tree
  /// evaluator (GC_EXEC=tree) ignores it and walks Entry directly.
  std::shared_ptr<const exec::Program> Bytecode;
  /// Fold side: the constant-reachable subgraph ("initial function" of
  /// §V); executed once by the runtime, outputs cached.
  graph::Graph FoldGraph;
  /// Tensor ids (outer numbering) the main side consumes from the fold.
  std::vector<int64_t> FoldOutputs;
  std::vector<Binding> Bindings;
  /// Pass statistics for reporting / tests.
  int CoarseGrainMerges = 0;
  tirpass::BufferReuseStats ReuseStats;
};

/// Lowers the optimized (fused + layout-propagated) graph \p G. Returns an
/// Unsupported error when a main-side op has no lowering rule (unfused op,
/// non-[0,2,1,3] standalone transpose) instead of aborting; the caller
/// (api::Session) routes such graphs to the reference fallback.
Expected<LoweredProgram> lowerGraph(const graph::Graph &G,
                                    const DriverOptions &Opts);

} // namespace lower
} // namespace gc

#endif // GC_LOWER_DRIVER_H
