//===- region_lowering.h - FusedOp -> Tensor IR templates -------*- C++ -*-===//
///
/// \file
/// Lowers one FusedOp region to a Tensor IR loop nest:
///  * tunable regions instantiate the microkernel-based matmul template of
///    Fig. 2 (collapsed outer parallel grid, single-core msi/ksi/nsi loops,
///    brgemm in the innermost body) and commit the region's Fusible OPs at
///    the anchors chosen by the Fig. 3 cost model (pre-op packs at pre#4 /
///    the grid anchor, post-ops at post#1),
///  * elementwise regions lower to a parallel row-block loop applying the
///    same tile-kernel chain to full-width strips.
///
/// The returned statement is a Seq wrapping the nest; its contained
/// parallel For carries the Mergeable flag when the Graph IR coarse-grain
/// decision allows merging with the preceding nest.
///
//===----------------------------------------------------------------------===//

#ifndef GC_LOWER_REGION_LOWERING_H
#define GC_LOWER_REGION_LOWERING_H

#include "graph/graph.h"
#include "tir/function.h"

#include <functional>

namespace gc {
namespace lower {

/// Shared state across the regions of one compilation.
struct LoweringContext {
  const graph::Graph *G = nullptr;
  tir::Func *Entry = nullptr;
  int Threads = 1;
  /// Resolves an outer-graph tensor id to an entry buffer id (the driver
  /// creates Param/Temp/FoldedConst buffers lazily).
  std::function<int(int64_t)> BufferFor;
  /// Monotonic counter for unique thread-local buffer names.
  int ScratchCounter = 0;
};

/// Lowers the FusedOp \p FusedOpId of Ctx.G. Returns the region statement.
tir::Stmt lowerRegion(LoweringContext &Ctx, int64_t FusedOpId);

} // namespace lower
} // namespace gc

#endif // GC_LOWER_REGION_LOWERING_H
