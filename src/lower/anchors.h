//===- anchors.h - Fused-OP template anchors (Fig. 3) -----------*- C++ -*-===//
///
/// \file
/// The anchor model of §IV: the matmul template publishes placeholders at
/// each loop level where Fusible OPs can commit. Each anchor has a
/// working-set size, an invocation count per core, and a total memory
/// access count -- the Fig. 3 cost table -- which the fusion optimization
/// evaluates to place pre-ops and post-ops.
///
/// Anchor positions (template of Fig. 2/3):
///   pre#1  before the npi loop        - whole-core A and B panels
///   pre#2  inside npi, before msi     - A panel + this core's B slice
///   pre#3  inside msi, before ksi     - one A row-block strip
///   pre#4  inside ksi, before nsi     - BS A blocks (the default A pack)
///   pre#5  inside nsi (innermost)     - BS A blocks, repacked per nsi
///   post#1 after the ksi loop (per msi)  - one C row strip [MB, NSBN]
///   post#2 after the msi loop (per npi)  - the core's C panel
///   post#3 after the npi loop            - the core's full-N C panel
///
//===----------------------------------------------------------------------===//

#ifndef GC_LOWER_ANCHORS_H
#define GC_LOWER_ANCHORS_H

#include "lower/blocking.h"

#include <cstdint>

namespace gc {
namespace lower {

/// Pre-op anchor positions of Fig. 3.
enum class PreAnchor : uint8_t { Pre1, Pre2, Pre3, Pre4, Pre5 };

/// Post-op anchor positions of Fig. 3.
enum class PostAnchor : uint8_t { Post1, Post2, Post3 };

/// One row of the Fig. 3 cost table (element counts, per core).
struct AnchorCost {
  /// Tensor-slice working set touched per invocation.
  int64_t WorkingSetElems = 0;
  /// Invocations of the fused op per single-core kernel.
  int64_t AccessTimesPerCore = 0;
  /// Total tensor elements moved per core across the kernel.
  int64_t TotalAccessElems = 0;
};

/// Fig. 3 cost of placing an A-side pre-op at \p Anchor.
AnchorCost preOpAnchorCostA(const BlockingParams &P, PreAnchor Anchor);

/// Fig. 3 cost of placing a B-side pre-op at \p Anchor.
AnchorCost preOpAnchorCostB(const BlockingParams &P, PreAnchor Anchor);

/// Fig. 3 cost of placing a post-op at \p Anchor (C-side), for a kernel
/// with full-problem N of \p N elements.
AnchorCost postOpAnchorCost(const BlockingParams &P, int64_t N,
                            PostAnchor Anchor);

/// Chooses the pre-op anchor for packing the A operand: the anchor with
/// the smallest total memory traffic, tie-broken toward the smaller
/// working set (the paper: "the anchors at inner loop bodies require
/// smaller temporary buffer size but may have redundant computations").
PreAnchor choosePreAnchorA(const BlockingParams &P);

/// Chooses the pre-op anchor for packing the B operand (B tiles are reused
/// across msi iterations, so inner anchors repack redundantly).
PreAnchor choosePreAnchorB(const BlockingParams &P);

/// Chooses the post-op anchor: the innermost anchor whose slice covers the
/// fused chain's needs ("the post-op usually finds the first anchor point
/// toward the innermost loop the best choice"). Row reductions need the
/// full row, which post#1 provides only when NPN == 1; otherwise post#3.
PostAnchor choosePostAnchor(const BlockingParams &P, bool NeedsFullRows);

} // namespace lower
} // namespace gc

#endif // GC_LOWER_ANCHORS_H
