//===- anchors.cpp - Fused-OP template anchor cost table (Fig. 3) ----------------===//

#include "lower/anchors.h"

#include "support/common.h"

namespace gc {
namespace lower {

// Shorthands matching Fig. 3's symbols:
//   MSN/NSN/KSN  blocks per single-core kernel
//   NPSN         total N blocks (NSN * NPN)
//   MSBN/NSBN    elements per single-core kernel along m/n

AnchorCost preOpAnchorCostA(const BlockingParams &P, PreAnchor Anchor) {
  AnchorCost C;
  const int64_t ABlock = P.MB * P.KB;
  switch (Anchor) {
  case PreAnchor::Pre1:
  case PreAnchor::Pre2:
    // A'[MSN, KSN, MB, KB], touched once.
    C.WorkingSetElems = P.MSN * P.KSN * ABlock;
    C.AccessTimesPerCore = 1;
    C.TotalAccessElems = P.MSN * P.MB * P.KSN * P.KB;
    return C;
  case PreAnchor::Pre3:
    // A'[KSN, MB, KB], once per msi.
    C.WorkingSetElems = P.KSN * ABlock;
    C.AccessTimesPerCore = P.MSN;
    C.TotalAccessElems = P.MSN * P.MB * P.KSN * P.KB;
    return C;
  case PreAnchor::Pre4:
    // A'[BS, MB, KB], once per (msi, ksi/BS).
    C.WorkingSetElems = P.BS * ABlock;
    C.AccessTimesPerCore = P.MSN * ceilDiv(P.KSN, P.BS);
    C.TotalAccessElems = P.MSN * P.MB * P.KSN * P.KB;
    return C;
  case PreAnchor::Pre5:
    // A'[BS, MB, KB], repacked for every nsi: NSN-fold redundancy.
    C.WorkingSetElems = P.BS * ABlock;
    C.AccessTimesPerCore = P.MSN * P.NSN * ceilDiv(P.KSN, P.BS);
    C.TotalAccessElems = P.MSN * P.MB * P.KSN * P.KB * P.NSN;
    return C;
  }
  GC_UNREACHABLE("unknown pre anchor");
}

AnchorCost preOpAnchorCostB(const BlockingParams &P, PreAnchor Anchor) {
  AnchorCost C;
  const int64_t BBlock = P.NB * P.KB;
  const int64_t NPSN = P.NSN * P.NPN;
  switch (Anchor) {
  case PreAnchor::Pre1:
    // B'[KSN, NPSN, NB, KB] - the whole B panel, once.
    C.WorkingSetElems = P.KSN * NPSN * BBlock;
    C.AccessTimesPerCore = 1;
    C.TotalAccessElems = NPSN * P.NB * P.KSN * P.KB;
    return C;
  case PreAnchor::Pre2:
    // B'[KSN, NSN, NB, KB] - this core's slice, once.
    C.WorkingSetElems = P.KSN * P.NSN * BBlock;
    C.AccessTimesPerCore = 1;
    C.TotalAccessElems = P.NSN * P.NB * P.KSN * P.KB;
    return C;
  case PreAnchor::Pre3:
    // Same slice but repacked per msi.
    C.WorkingSetElems = P.KSN * P.NSN * BBlock;
    C.AccessTimesPerCore = P.MSN;
    C.TotalAccessElems = P.MSN * P.NSN * P.NB * P.KSN * P.KB;
    return C;
  case PreAnchor::Pre4:
    // B'[BS, NSN, NB, KB] per (msi, ksi/BS).
    C.WorkingSetElems = P.BS * P.NSN * BBlock;
    C.AccessTimesPerCore = P.MSN * ceilDiv(P.KSN, P.BS);
    C.TotalAccessElems = P.MSN * P.NSN * P.NB * P.KSN * P.KB;
    return C;
  case PreAnchor::Pre5:
    // B'[BS, KB, NB] per (msi, ksi/BS, nsi).
    C.WorkingSetElems = P.BS * BBlock;
    C.AccessTimesPerCore = P.MSN * P.NSN * ceilDiv(P.KSN, P.BS);
    C.TotalAccessElems = P.MSN * P.NSN * P.NB * P.KSN * P.KB;
    return C;
  }
  GC_UNREACHABLE("unknown pre anchor");
}

AnchorCost postOpAnchorCost(const BlockingParams &P, int64_t N,
                            PostAnchor Anchor) {
  AnchorCost C;
  const int64_t MSBN = P.MB * P.MSN;
  const int64_t NSBN = P.NB * P.NSN;
  switch (Anchor) {
  case PostAnchor::Post1:
    // C[MB, NSBN] per msi.
    C.WorkingSetElems = P.MB * NSBN;
    C.AccessTimesPerCore = P.MSN;
    C.TotalAccessElems = MSBN * NSBN;
    return C;
  case PostAnchor::Post2:
    // C[MSBN, NSBN] once.
    C.WorkingSetElems = MSBN * NSBN;
    C.AccessTimesPerCore = 1;
    C.TotalAccessElems = MSBN * NSBN;
    return C;
  case PostAnchor::Post3:
    // C[MSBN, N] once (full output width).
    C.WorkingSetElems = MSBN * N;
    C.AccessTimesPerCore = 1;
    C.TotalAccessElems = MSBN * N;
    return C;
  }
  GC_UNREACHABLE("unknown post anchor");
}

namespace {

/// Picks the anchor with minimal total traffic; among equals, the smallest
/// working set (innermost) wins.
template <typename CostFn>
PreAnchor argminPre(const BlockingParams &P, CostFn &&Cost) {
  static const PreAnchor All[] = {PreAnchor::Pre1, PreAnchor::Pre2,
                                  PreAnchor::Pre3, PreAnchor::Pre4,
                                  PreAnchor::Pre5};
  PreAnchor Best = PreAnchor::Pre1;
  AnchorCost BestCost = Cost(P, PreAnchor::Pre1);
  for (PreAnchor A : All) {
    const AnchorCost C = Cost(P, A);
    // Prefer lower traffic, then smaller buffers, then the inner anchor
    // (ties mean the loop levels are degenerate and equivalent).
    if (C.TotalAccessElems < BestCost.TotalAccessElems ||
        (C.TotalAccessElems == BestCost.TotalAccessElems &&
         C.WorkingSetElems <= BestCost.WorkingSetElems)) {
      Best = A;
      BestCost = C;
    }
  }
  return Best;
}

} // namespace

PreAnchor choosePreAnchorA(const BlockingParams &P) {
  return argminPre(P, preOpAnchorCostA);
}

PreAnchor choosePreAnchorB(const BlockingParams &P) {
  return argminPre(P, preOpAnchorCostB);
}

PostAnchor choosePostAnchor(const BlockingParams &P, bool NeedsFullRows) {
  if (NeedsFullRows && P.NPN > 1)
    return PostAnchor::Post3;
  return PostAnchor::Post1;
}

} // namespace lower
} // namespace gc
