//===- region_lowering.cpp - FusedOp -> Tensor IR templates ----------------------===//
//
// Template instantiation (Fig. 2) plus anchor-based fusion (Fig. 3/4).
// The post-op chain is committed at post-op anchor #1: after the ksi
// reduction loop of each msi iteration the whole C' strip [NSN, MB, NB] is
// live in cache, and every fused Fusible OP is applied tile-by-tile in one
// or more nsi loops. Reductions split the chain into phases: ops that
// consume a row-reduction result run in a later nsi loop, after the
// reduction has seen the full row (exactly the Fig. 6 structure, where the
// two post-ops share one merged loop nest).
//
//===----------------------------------------------------------------------===//

#include "lower/region_lowering.h"

#include "lower/anchors.h"
#include "lower/blocking.h"
#include "support/common.h"
#include "support/str.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace gc {
namespace lower {

using namespace graph;
using namespace tir;

namespace {

//===----------------------------------------------------------------------===//
// Value descriptors
//===----------------------------------------------------------------------===//

/// How an external (non-interior) tensor broadcasts against the region
/// output at the anchor.
enum class ExtKind : uint8_t { Scalar, RowVec, ColVec, Full };

/// An external operand of the post-op chain.
struct ExtRef {
  ExtKind K = ExtKind::Full;
  int BufferId = -1;
  double ScalarValue = 0.0;
  DataType Ty = DataType::F32;
  std::vector<int64_t> Shape; // logical shape in the subgraph
  /// Eltwise path only: a row vector that varies per batch group (e.g. a
  /// [B, 1, 1, S] mask against flattened [B*H*S] rows). Every GroupRows
  /// consecutive rows share one vector; 0 = uniform vector.
  int64_t RowVecGroupRows = 0;
};

/// Where an interior tensor's value lives at the anchor.
struct StripVal {
  enum class Kind : uint8_t { None, Acc, Strip, RedVec, PendingQuant };
  Kind K = Kind::None;
  int BufferId = -1; // strip / vec buffer (Acc: the C' accumulator)
  DataType Ty = DataType::F32;
  // PendingQuant (quantize folded into the store):
  int SrcStrip = -1;
  double InvScale = 1.0;
  int64_t Zp = 0;
  bool Signed = false;
};

//===----------------------------------------------------------------------===//
// RegionLowerer
//===----------------------------------------------------------------------===//

class RegionLowerer {
public:
  RegionLowerer(LoweringContext &Ctx, int64_t FusedOpId)
      : Ctx(Ctx), G(*Ctx.G), FO(G.op(FusedOpId)), Sub(*FO.subgraph()) {}

  Stmt lower() {
    const int64_t MmId = findMatMul();
    if (MmId >= 0)
      return lowerTunable(MmId);
    return lowerEltwise();
  }

private:
  LoweringContext &Ctx;
  const Graph &G;
  const Op &FO;
  const Graph &Sub;

  // Template state (tunable path).
  BlockingParams P;
  MatmulShape Shape;
  bool Quantized = false;
  bool TransB = false;

  // Anchor geometry shared by both paths.
  int64_t TileRows = 0;  // MB (tunable) / RB (eltwise)
  int64_t TileCols = 0;  // NB / C
  int64_t FullN = 0;     // N / C
  int64_t MDim = 0;      // rows per batch item
  std::vector<int64_t> OutLeadDims; // leading batch dims of the output
  Expr BtE;              // batch coordinate (null in eltwise path)
  Expr RowBaseE;         // first global row (within batch) of the strip
  Expr ValidRowsE;       // valid rows of the strip
  std::function<Expr(const Expr &)> NpsiOf;      // nsi -> global n-block
  std::function<Expr(const Expr &)> ValidColsOf; // nsi -> valid cols

  std::unordered_map<int64_t, ExtRef> Ext;    // sub tensor -> external ref
  std::unordered_map<int64_t, StripVal> Env;  // sub tensor -> value
  std::unordered_map<int64_t, int> UseCount;  // remaining uses

  //===--------------------------------------------------------------------===//
  // Small helpers
  //===--------------------------------------------------------------------===//

  int64_t findMatMul() const {
    for (int64_t OpId : Sub.topologicalOrder())
      if (Sub.op(OpId).kind() == OpKind::MatMul)
        return OpId;
    return -1;
  }

  /// Index of a sub tensor in the subgraph input list (-1 if interior).
  int64_t subInputIndex(int64_t SubTensor) const {
    const auto &Ins = Sub.inputs();
    auto It = std::find(Ins.begin(), Ins.end(), SubTensor);
    return It == Ins.end() ? -1 : static_cast<int64_t>(It - Ins.begin());
  }

  /// Entry buffer for the outer tensor behind subgraph input \p SubTensor.
  int outerBufferFor(int64_t SubTensor) const {
    const int64_t Idx = subInputIndex(SubTensor);
    assert(Idx >= 0 && "not a subgraph input");
    return Ctx.BufferFor(FO.input(static_cast<size_t>(Idx)));
  }

  /// Outer logical tensor behind subgraph input \p SubTensor.
  const LogicalTensor &outerTensorFor(int64_t SubTensor) const {
    const int64_t Idx = subInputIndex(SubTensor);
    assert(Idx >= 0 && "not a subgraph input");
    return G.tensor(FO.input(static_cast<size_t>(Idx)));
  }

  /// Allocates a thread-local scratch buffer.
  int scratch(const std::string &Hint, DataType Ty,
              std::vector<int64_t> Dims) {
    return Ctx.Entry->addBuffer(
        formatString("%s_%d", Hint.c_str(), Ctx.ScratchCounter++), Ty,
        std::move(Dims), BufferScope::ThreadLocal);
  }

  /// Bakes constant data into the entry function and returns a buffer.
  int bakeConst(const std::string &Hint, runtime::TensorData Data) {
    tir::Func &F = *Ctx.Entry;
    const int Id = F.addBuffer(
        formatString("%s_%d", Hint.c_str(), Ctx.ScratchCounter++),
        Data.dtype(), Data.shape(), BufferScope::Const);
    F.buffer(Id).BakedIndex = static_cast<int>(F.Baked.size());
    F.Baked.push_back(std::move(Data));
    return Id;
  }

  /// Builds the linear offset contribution of the external tensor's
  /// leading (batch) dims given the batch coordinate BtE.
  Expr extBatchOffset(const ExtRef &E, int64_t TrailElems) const {
    if (!BtE || OutLeadDims.empty())
      return makeInt(0);
    const int64_t OutLead = static_cast<int64_t>(OutLeadDims.size());
    const int64_t ExtLead = std::max<int64_t>(
        0, static_cast<int64_t>(E.Shape.size()) - 2);
    // Ext strides over its leading dims (elements).
    std::vector<int64_t> ExtStride(static_cast<size_t>(ExtLead), TrailElems);
    for (int64_t D = ExtLead - 2; D >= 0; --D)
      ExtStride[static_cast<size_t>(D)] =
          ExtStride[static_cast<size_t>(D + 1)] *
          E.Shape[static_cast<size_t>(D + 1)];
    Expr Off = makeInt(0);
    int64_t Suffix = 1; // product of out lead dims after d
    for (int64_t D = OutLead - 1; D >= 0; --D) {
      const int64_t ExtD = D - (OutLead - ExtLead);
      if (ExtD >= 0 && E.Shape[static_cast<size_t>(ExtD)] > 1) {
        Expr Coord = (BtE / makeInt(Suffix)) %
                     makeInt(OutLeadDims[static_cast<size_t>(D)]);
        Off = Off + Coord * makeInt(ExtStride[static_cast<size_t>(ExtD)]);
      }
      Suffix *= OutLeadDims[static_cast<size_t>(D)];
    }
    return Off;
  }

  /// Classifies a subgraph tensor that is external to the interior chain.
  ExtRef classifyExternal(int64_t SubTensor) {
    const LogicalTensor &T = Sub.tensor(SubTensor);
    ExtRef E;
    E.Ty = T.Ty;
    E.Shape = T.Shape;
    // Scalar constant with data -> immediate.
    const runtime::TensorData *Data = Sub.constantData(SubTensor);
    if (Data && T.numElements() == 1 && T.Ty == DataType::F32) {
      E.K = ExtKind::Scalar;
      E.ScalarValue = Data->dataAs<float>()[0];
      return E;
    }
    // Resolve storage: cloned subgraph constants are baked; external
    // inputs use the outer buffer.
    if (Data) {
      E.BufferId = bakeConst("cst", Data->clone());
    } else {
      E.BufferId = outerBufferFor(SubTensor);
    }
    // Broadcast classification against the output [lead..., M, N]. In the
    // eltwise path MDim is the flattened row count, so a [lead..., M, 1]
    // operand matches via the product of its leading dims.
    const int64_t Rank = T.rank();
    const int64_t Last = Rank >= 1 ? T.Shape[static_cast<size_t>(Rank - 1)] : 1;
    const int64_t Second =
        Rank >= 2 ? T.Shape[static_cast<size_t>(Rank - 2)] : 1;
    int64_t RowsProd = 1;
    for (int64_t D = 0; D + 1 < Rank; ++D)
      RowsProd *= T.Shape[static_cast<size_t>(D)];
    if (Last == FullN && (Rank < 2 || Second == 1)) {
      E.K = ExtKind::RowVec;
      // Eltwise path: detect batch-grouped vectors ([G, 1, ..., 1, C]).
      if (OutLeadDims.empty() && RowsProd > 1) {
        assert(RowsProd == T.Shape[0] &&
               "grouped rowvec must vary only in its outermost dim");
        assert(MDim % RowsProd == 0 && "group size must divide the rows");
        E.RowVecGroupRows = MDim / RowsProd;
      }
    }
    else if (Last == 1 && (Second == MDim || RowsProd == MDim))
      E.K = ExtKind::ColVec;
    else if (Last == FullN && (Second == MDim || RowsProd == MDim))
      E.K = ExtKind::Full;
    else if (T.numElements() == 1)
      E.K = ExtKind::Scalar; // non-const scalar: treated as rowvec of 1
    else
      fatalError("unsupported broadcast shape for fused extra input");
    return E;
  }

  //===--------------------------------------------------------------------===//
  // Tile references at the anchor
  //===--------------------------------------------------------------------===//

  /// Offset of tile \p Nsi inside a strip buffer [NTiles, TileRows, TileCols].
  Expr stripTileOffset(const Expr &Nsi) const {
    return Nsi * makeInt(TileRows * TileCols);
  }

  /// Buffer+offset+ld for reading external tensors at tile (Nsi).
  struct TileAddr {
    int BufferId;
    Expr Offset;
    int64_t Ld;
  };

  TileAddr extFullAddr(const ExtRef &E, const Expr &Nsi) const {
    Expr Off = extBatchOffset(E, MDim * FullN) + RowBaseE * makeInt(FullN) +
               NpsiOf(Nsi) * makeInt(TileCols);
    return {E.BufferId, Off, FullN};
  }

  Expr extRowVecOffset(const ExtRef &E, const Expr &Nsi) const {
    if (E.RowVecGroupRows > 0) {
      // Grouped vector over flattened rows: strips never straddle groups
      // (the eltwise row block divides the group size).
      return (RowBaseE / makeInt(E.RowVecGroupRows)) * makeInt(FullN) +
             NpsiOf(Nsi) * makeInt(TileCols);
    }
    return extBatchOffset(E, FullN) + NpsiOf(Nsi) * makeInt(TileCols);
  }

  Expr extColVecOffset(const ExtRef &E) const {
    return extBatchOffset(E, MDim) + RowBaseE;
  }

  //===--------------------------------------------------------------------===//
  // Post-op chain lowering at the anchor
  //===--------------------------------------------------------------------===//

  /// Interior ops in topological order, excluding the matmul.
  std::vector<int64_t> interiorOps(int64_t MmId) const {
    std::vector<int64_t> Out;
    for (int64_t OpId : Sub.topologicalOrder())
      if (OpId != MmId)
        Out.push_back(OpId);
    return Out;
  }

  /// True when the op produces a per-row vector ([..., M, 1]) rather than
  /// a full strip; such ops run once per strip, outside the nsi loops.
  /// For genuinely N == 1 problems (GEMMV) the strip machinery already is
  /// one column wide, so everything stays a strip.
  bool producesVec(const Op &O) const {
    if (FullN == 1)
      return false;
    const LogicalTensor &T = Sub.tensor(O.output(0));
    return !T.Shape.empty() && T.Shape.back() == 1;
  }

  /// Emits the whole fused chain plus the store of the region output as a
  /// sequence of segments: strip ops and reductions share an nsi loop (the
  /// merged loop nest of Fig. 6); a consumer of a reduction produced in
  /// the open segment -- and every vector-valued op -- closes the segment,
  /// because row values complete only after the loop over all n tiles.
  StmtList emitChainAndStore(const std::vector<int64_t> &OpsInOrder,
                             const std::vector<int64_t> &OutSubTensors,
                             const std::vector<int64_t> &OuterOuts) {
    StmtList Anchor;
    StmtList SegmentBody;
    std::unordered_set<int64_t> OpenVecs; // vecs produced in open segment
    Var Nsi = makeVar(formatString("nsi_s%d", SegmentCounter));

    auto closeSegment = [&]() {
      if (SegmentBody.empty()) {
        OpenVecs.clear();
        return;
      }
      Anchor.push_back(makeFor(
          Nsi, makeInt(0), nsiEnd(), makeInt(1), std::move(SegmentBody),
          /*Parallel=*/false,
          formatString("post_anchor_seg%d", SegmentCounter)));
      SegmentBody = StmtList();
      OpenVecs.clear();
      Nsi = makeVar(formatString("nsi_s%d", ++SegmentCounter));
    };

    for (int64_t OpId : OpsInOrder) {
      const Op &O = Sub.op(OpId);
      const bool ReadsOpenVec = [&] {
        for (int64_t In : O.inputs())
          if (OpenVecs.count(In))
            return true;
        return false;
      }();
      if (producesVec(O) && !isReduction(O.kind())) {
        // Pure vector arithmetic (layernorm mean/var chains): runs once
        // per strip. Close the segment if it feeds on an open vec.
        if (ReadsOpenVec)
          closeSegment();
        emitVecOp(O, Anchor);
        continue;
      }
      if (ReadsOpenVec)
        closeSegment();
      emitOp(O, Expr(Nsi), SegmentBody);
      if (isReduction(O.kind()))
        OpenVecs.insert(O.output(0));
    }

    // Stores: vec outputs store standalone, strips store inside a loop.
    // A strip store never reads open vecs, so strip stores share the open
    // (or a fresh) segment; vec stores run after it closes.
    for (size_t I = 0; I < OutSubTensors.size(); ++I) {
      const StripVal &OutV = Env.at(OutSubTensors[I]);
      if (OutV.K == StripVal::Kind::RedVec)
        continue;
      emitStore(OutSubTensors[I], OuterOuts[I], Expr(Nsi), SegmentBody);
    }
    closeSegment();
    for (size_t I = 0; I < OutSubTensors.size(); ++I) {
      const StripVal &OutV = Env.at(OutSubTensors[I]);
      if (OutV.K != StripVal::Kind::RedVec)
        continue;
      StmtList StoreStmts;
      emitStore(OutSubTensors[I], OuterOuts[I], makeInt(0), StoreStmts);
      for (Stmt &S : StoreStmts)
        Anchor.push_back(std::move(S));
    }
    return Anchor;
  }
  int SegmentCounter = 0;

  /// Emits a vector-valued op (operands are per-row vectors, scalars, or
  /// external colvecs); executed once per strip.
  void emitVecOp(const Op &O, StmtList &Out) {
    const int64_t OutT = O.output(0);
    const auto vecTile = [&](int Buf) {
      return BufferRef(Buf, makeInt(0));
    };
    const std::vector<Expr> VecScalars = {ValidRowsE, makeInt(1),
                                          makeInt(1)};
    // Resolve the first operand into an owned vec buffer.
    const auto ownedVec = [&](int64_t In) -> int {
      auto EnvIt = Env.find(In);
      if (EnvIt != Env.end()) {
        assert(EnvIt->second.K == StripVal::Kind::RedVec &&
               "vec op operand must be a row vector");
        if (UseCount[In] <= 1)
          return EnvIt->second.BufferId;
        const int Fresh = scratch("vec", DataType::F32, {TileRows});
        Out.push_back(makeCall(Intrinsic::CopyTile,
                               {vecTile(Fresh),
                                vecTile(EnvIt->second.BufferId)},
                               {ValidRowsE, makeInt(1), makeInt(1),
                                makeInt(1)}));
        return Fresh;
      }
      const ExtRef &E = Ext.at(In);
      assert(E.K == ExtKind::ColVec && "vec operand must be a colvec");
      const int Fresh = scratch("vec", DataType::F32, {TileRows});
      Out.push_back(makeCall(Intrinsic::CopyTile,
                             {vecTile(Fresh),
                              BufferRef(E.BufferId, extColVecOffset(E))},
                             {ValidRowsE, makeInt(1), makeInt(1),
                              makeInt(1)}));
      return Fresh;
    };

    if (isUnaryElementwise(O.kind())) {
      const int Vec = ownedVec(O.input(0));
      consume(O.input(0));
      Intrinsic In;
      switch (O.kind()) {
      case OpKind::Sqrt: In = Intrinsic::SqrtTile; break;
      case OpKind::Reciprocal: In = Intrinsic::RecipTile; break;
      case OpKind::Exp: In = Intrinsic::ExpTile; break;
      case OpKind::Tanh: In = Intrinsic::TanhTile; break;
      case OpKind::Square: In = Intrinsic::SquareTile; break;
      case OpKind::ReLU: In = Intrinsic::ReluTile; break;
      case OpKind::Sigmoid: In = Intrinsic::SigmoidTile; break;
      default: fatalError("unsupported unary vec op");
      }
      Out.push_back(makeCall(In, {vecTile(Vec)}, VecScalars));
      StripVal V;
      V.K = StripVal::Kind::RedVec;
      V.BufferId = Vec;
      Env[OutT] = V;
      return;
    }
    if (isBinaryElementwise(O.kind())) {
      // Normalize: vec side first.
      int64_t Lhs = O.input(0), Rhs = O.input(1);
      auto isVecOperand = [&](int64_t T) {
        auto It = Env.find(T);
        if (It != Env.end())
          return It->second.K == StripVal::Kind::RedVec;
        auto E = Ext.find(T);
        return E != Ext.end() && E->second.K == ExtKind::ColVec;
      };
      bool Swapped = false;
      if (!isVecOperand(Lhs)) {
        std::swap(Lhs, Rhs);
        Swapped = true;
      }
      const int Vec = ownedVec(Lhs);
      consume(Lhs);
      // RHS: scalar const or another vec.
      const auto ExtIt = Ext.find(Rhs);
      if (ExtIt != Ext.end() && ExtIt->second.K == ExtKind::Scalar) {
        const double S = ExtIt->second.ScalarValue;
        consume(Rhs);
        switch (O.kind()) {
        case OpKind::Add:
          Out.push_back(makeCall(Intrinsic::AffineTile, {vecTile(Vec)},
                                 {ValidRowsE, makeInt(1), makeInt(1),
                                  makeFloat(1.0), makeFloat(S)}));
          break;
        case OpKind::Mul:
          Out.push_back(makeCall(Intrinsic::AffineTile, {vecTile(Vec)},
                                 {ValidRowsE, makeInt(1), makeInt(1),
                                  makeFloat(S), makeFloat(0.0)}));
          break;
        case OpKind::Sub:
          Out.push_back(makeCall(
              Intrinsic::AffineTile, {vecTile(Vec)},
              {ValidRowsE, makeInt(1), makeInt(1),
               makeFloat(Swapped ? -1.0 : 1.0),
               makeFloat(Swapped ? S : -S)}));
          break;
        case OpKind::Div:
          if (!Swapped) {
            Out.push_back(makeCall(Intrinsic::AffineTile, {vecTile(Vec)},
                                   {ValidRowsE, makeInt(1), makeInt(1),
                                    makeFloat(1.0 / S), makeFloat(0.0)}));
          } else {
            Out.push_back(
                makeCall(Intrinsic::RecipTile, {vecTile(Vec)}, VecScalars));
            Out.push_back(makeCall(Intrinsic::AffineTile, {vecTile(Vec)},
                                   {ValidRowsE, makeInt(1), makeInt(1),
                                    makeFloat(S), makeFloat(0.0)}));
          }
          break;
        default:
          fatalError("unsupported scalar vec binary");
        }
      } else {
        const int Other = ownedVec(Rhs); // read-only use; owned is fine
        consume(Rhs);
        Intrinsic In;
        switch (O.kind()) {
        case OpKind::Add: In = Intrinsic::AddTile; break;
        case OpKind::Sub: In = Intrinsic::SubTile; break;
        case OpKind::Mul: In = Intrinsic::MulTile; break;
        case OpKind::Div: In = Intrinsic::DivTile; break;
        case OpKind::Max: In = Intrinsic::MaxTile; break;
        case OpKind::Min: In = Intrinsic::MinTile; break;
        default: fatalError("unsupported vec binary");
        }
        assert(!Swapped || O.kind() == OpKind::Add ||
               O.kind() == OpKind::Mul);
        Out.push_back(makeCall(In, {vecTile(Vec), vecTile(Other)},
                               {ValidRowsE, makeInt(1), makeInt(1),
                                makeInt(1)}));
      }
      StripVal V;
      V.K = StripVal::Kind::RedVec;
      V.BufferId = Vec;
      Env[OutT] = V;
      return;
    }
    fatalError("unsupported vector-valued op in fused region");
  }

  /// Trip count of an anchor nsi loop (clamped NSN for tunable, 1 for
  /// eltwise).
  Expr nsiEnd() const { return NsiEndE; }
  Expr NsiEndE;

  /// Ensures the given interior tensor's value is a writable f32 strip;
  /// emits a copy when needed. Returns the strip buffer id.
  int ensureOwnedStrip(int64_t SubTensor, const Expr &Nsi, StmtList &Out) {
    StripVal &V = Env.at(SubTensor);
    assert((V.K == StripVal::Kind::Strip || V.K == StripVal::Kind::Acc) &&
           "expected a strip value");
    const bool CanInPlace =
        V.Ty == DataType::F32 && UseCount[SubTensor] <= 1;
    if (V.K == StripVal::Kind::Strip && CanInPlace)
      return V.BufferId;
    if (V.K == StripVal::Kind::Acc && CanInPlace && !Quantized)
      return V.BufferId; // operate directly on the f32 accumulator
    assert(V.Ty == DataType::F32 &&
           "s32 accumulators are consumed by dequant_acc");
    const int NewStrip = newStripBuffer();
    Out.push_back(makeCall(
        Intrinsic::CopyTile,
        {BufferRef(NewStrip, stripTileOffset(Nsi)),
         BufferRef(V.BufferId, stripTileOffset(Nsi))},
        {ValidRowsE, ValidColsOf(Nsi), makeInt(TileCols),
         makeInt(TileCols)}));
    return NewStrip;
  }

  int newStripBuffer(DataType Ty = DataType::F32) {
    return scratch("strip", Ty, {StripTiles, TileRows, TileCols});
  }
  int64_t StripTiles = 1; // NSN for tunable, 1 for eltwise

  /// Reads an operand as a tile address (external or interior strip).
  /// Only valid for Full-ish reads (strip / Full ext).
  TileAddr operandTile(int64_t SubTensor, const Expr &Nsi) {
    auto EnvIt = Env.find(SubTensor);
    if (EnvIt != Env.end()) {
      const StripVal &V = EnvIt->second;
      assert((V.K == StripVal::Kind::Strip || V.K == StripVal::Kind::Acc) &&
             "operand is not tile-addressable");
      return {V.BufferId, stripTileOffset(Nsi), TileCols};
    }
    const ExtRef &E = Ext.at(SubTensor);
    assert(E.K == ExtKind::Full && "operand is not a full tensor");
    return extFullAddr(E, Nsi);
  }

  /// True when the tensor is an interior strip (or acc).
  bool isStrip(int64_t SubTensor) const {
    auto It = Env.find(SubTensor);
    return It != Env.end() && (It->second.K == StripVal::Kind::Strip ||
                               It->second.K == StripVal::Kind::Acc);
  }

  /// Emits one interior op at tile (Nsi) into \p Out.
  void emitOp(const Op &O, const Expr &Nsi, StmtList &Out) {
    const OpKind Kind = O.kind();
    const int64_t OutT = O.output(0);

    // Reductions: strip -> per-row vector.
    if (isReduction(Kind)) {
      const TileAddr X = operandTile(O.input(0), Nsi);
      consume(O.input(0));
      int Vec;
      auto It = Env.find(OutT);
      if (It != Env.end() && It->second.BufferId >= 0) {
        Vec = It->second.BufferId;
      } else {
        Vec = scratch("redvec", DataType::F32, {TileRows});
      }
      Out.push_back(makeCall(Kind == OpKind::ReduceSum
                                 ? Intrinsic::ReduceSumRowsTile
                                 : Intrinsic::ReduceMaxRowsTile,
                             {BufferRef(X.BufferId, X.Offset),
                              BufferRef(Vec, makeInt(0))},
                             {ValidRowsE, ValidColsOf(Nsi), makeInt(X.Ld),
                              minExpr(Nsi, makeInt(1))}));
      StripVal V;
      V.K = StripVal::Kind::RedVec;
      V.BufferId = Vec;
      Env[OutT] = V;
      return;
    }

    // DequantAcc: s32 strip -> f32 strip with scales/compensation.
    if (Kind == OpKind::DequantAcc) {
      const TileAddr Acc = operandTile(O.input(0), Nsi);
      consume(O.input(0));
      // Compensation vector (FoldedConst outer input or zero placeholder).
      int CompBuf = -1;
      Expr CompOff = makeInt(0);
      const int64_t AZp = O.getAttrInt("a_zp", 0);
      if (AZp != 0) {
        const ExtRef &Comp = Ext.at(O.input(1));
        CompBuf = Comp.BufferId;
        CompOff = extRowVecOffset(Comp, Nsi);
      }
      // Scale vector baked from the attr, broadcast to N.
      std::vector<double> Scales = O.getAttrFloatVec("scales");
      runtime::TensorData ScaleData(DataType::F32, {FullN});
      for (int64_t I = 0; I < FullN; ++I)
        ScaleData.dataAs<float>()[I] = static_cast<float>(
            Scales.size() == 1 ? Scales[0]
                               : Scales[static_cast<size_t>(I)]);
      const int ScaleBuf = bakeConst("oscale", std::move(ScaleData));
      if (CompBuf < 0)
        CompBuf = ScaleBuf; // unread when AZp == 0
      const int Dst = newStripBuffer();
      Out.push_back(makeCall(
          Intrinsic::DequantAccTile,
          {BufferRef(Dst, stripTileOffset(Nsi)),
           BufferRef(Acc.BufferId, Acc.Offset), BufferRef(CompBuf, CompOff),
           BufferRef(ScaleBuf, NpsiOf(Nsi) * makeInt(TileCols))},
          {ValidRowsE, ValidColsOf(Nsi), makeInt(TileCols), makeInt(Acc.Ld),
           makeInt(AZp)}));
      StripVal V;
      V.K = StripVal::Kind::Strip;
      V.BufferId = Dst;
      Env[OutT] = V;
      return;
    }

    // Dequantize (u8 -> f32, per-tensor).
    if (Kind == OpKind::Dequantize) {
      const double Scale = O.getAttrFloat("scale", 1.0);
      const int64_t Zp = O.getAttrInt("zp", 0);
      TileAddr X{-1, makeInt(0), 0};
      if (isStrip(O.input(0))) {
        X = operandTile(O.input(0), Nsi);
      } else {
        const ExtRef &E = Ext.at(O.input(0));
        assert(E.K == ExtKind::Full && "dequantize needs a full operand");
        X = extFullAddr(E, Nsi);
      }
      consume(O.input(0));
      const int Dst = newStripBuffer();
      Out.push_back(makeCall(Intrinsic::DequantU8Tile,
                             {BufferRef(Dst, stripTileOffset(Nsi)),
                              BufferRef(X.BufferId, X.Offset)},
                             {ValidRowsE, ValidColsOf(Nsi),
                              makeInt(TileCols), makeInt(X.Ld),
                              makeFloat(Scale), makeInt(Zp)}));
      StripVal V;
      V.K = StripVal::Kind::Strip;
      V.BufferId = Dst;
      Env[OutT] = V;
      return;
    }

    // Quantize: folded into the store when it produces the region output;
    // a mid-chain quantize (requantization pair) materializes a u8 strip.
    if (Kind == OpKind::Quantize) {
      const int SrcStrip = materializeFirst(O.input(0), Nsi, Out);
      consume(O.input(0));
      const double InvScale = 1.0 / O.getAttrFloat("scale", 1.0);
      const int64_t Zp = O.getAttrInt("zp", 0);
      const bool Signed = Sub.tensor(OutT).Ty == DataType::S8;
      if (Sub.isOutput(OutT)) {
        StripVal V;
        V.K = StripVal::Kind::PendingQuant;
        V.SrcStrip = SrcStrip;
        V.InvScale = InvScale;
        V.Zp = Zp;
        V.Signed = Signed;
        Env[OutT] = V;
        return;
      }
      const int Dst = newStripBuffer(Signed ? DataType::S8 : DataType::U8);
      Out.push_back(makeCall(
          Signed ? Intrinsic::QuantS8Tile : Intrinsic::QuantU8Tile,
          {BufferRef(Dst, stripTileOffset(Nsi)),
           BufferRef(SrcStrip, stripTileOffset(Nsi))},
          Signed ? std::vector<Expr>{ValidRowsE, ValidColsOf(Nsi),
                                     makeInt(TileCols), makeInt(TileCols),
                                     makeFloat(InvScale)}
                 : std::vector<Expr>{ValidRowsE, ValidColsOf(Nsi),
                                     makeInt(TileCols), makeInt(TileCols),
                                     makeFloat(InvScale), makeInt(Zp)}));
      StripVal V;
      V.K = StripVal::Kind::Strip;
      V.BufferId = Dst;
      V.Ty = Signed ? DataType::S8 : DataType::U8;
      Env[OutT] = V;
      return;
    }

    // Cast s32 -> f32 (comp chains when unfused).
    if (Kind == OpKind::Cast) {
      const TileAddr X = operandTile(O.input(0), Nsi);
      consume(O.input(0));
      const int Dst = newStripBuffer();
      Out.push_back(makeCall(Intrinsic::CastS32F32Tile,
                             {BufferRef(Dst, stripTileOffset(Nsi)),
                              BufferRef(X.BufferId, X.Offset)},
                             {ValidRowsE, ValidColsOf(Nsi),
                              makeInt(TileCols), makeInt(X.Ld),
                              makeFloat(1.0)}));
      StripVal V;
      V.K = StripVal::Kind::Strip;
      V.BufferId = Dst;
      Env[OutT] = V;
      return;
    }

    // Unary elementwise.
    if (isUnaryElementwise(Kind)) {
      const int Strip = materializeFirst(O.input(0), Nsi, Out);
      consume(O.input(0));
      Intrinsic In;
      switch (Kind) {
      case OpKind::ReLU: In = Intrinsic::ReluTile; break;
      case OpKind::Exp: In = Intrinsic::ExpTile; break;
      case OpKind::Tanh: In = Intrinsic::TanhTile; break;
      case OpKind::Sqrt: In = Intrinsic::SqrtTile; break;
      case OpKind::Reciprocal: In = Intrinsic::RecipTile; break;
      case OpKind::Square: In = Intrinsic::SquareTile; break;
      case OpKind::Sigmoid: In = Intrinsic::SigmoidTile; break;
      default: fatalError("unsupported unary op in fused region");
      }
      Out.push_back(makeCall(In, {BufferRef(Strip, stripTileOffset(Nsi))},
                             {ValidRowsE, ValidColsOf(Nsi),
                              makeInt(TileCols)}));
      StripVal V;
      V.K = StripVal::Kind::Strip;
      V.BufferId = Strip;
      Env[OutT] = V;
      return;
    }

    // Binary elementwise.
    if (isBinaryElementwise(Kind)) {
      emitBinary(O, Nsi, Out);
      return;
    }

    fatalError(formatString("unsupported op '%s' in fused region lowering",
                            opKindName(Kind))
                   .c_str());
  }

  /// Materializes an operand into a writable strip (copying from an
  /// external tensor when needed).
  int materializeFirst(int64_t SubTensor, const Expr &Nsi, StmtList &Out) {
    if (isStrip(SubTensor))
      return ensureOwnedStrip(SubTensor, Nsi, Out);
    const ExtRef &E = Ext.at(SubTensor);
    assert(E.K == ExtKind::Full && E.Ty == DataType::F32 &&
           "cannot materialize this operand into a strip");
    const TileAddr X = extFullAddr(E, Nsi);
    const int Strip = newStripBuffer();
    Out.push_back(makeCall(Intrinsic::CopyTile,
                           {BufferRef(Strip, stripTileOffset(Nsi)),
                            BufferRef(X.BufferId, X.Offset)},
                           {ValidRowsE, ValidColsOf(Nsi), makeInt(TileCols),
                            makeInt(X.Ld)}));
    return Strip;
  }

  void consume(int64_t SubTensor) {
    auto It = UseCount.find(SubTensor);
    if (It != UseCount.end() && It->second > 0)
      --It->second;
  }

  /// Emits a binary elementwise op. Normalizes so the strip operand is
  /// mutated in place; the other operand is read as scalar / rowvec /
  /// colvec / tile.
  void emitBinary(const Op &O, const Expr &Nsi, StmtList &Out) {
    const OpKind Kind = O.kind();
    int64_t Lhs = O.input(0);
    int64_t Rhs = O.input(1);
    // Decide which side is materialized. Prefer an interior strip; fall
    // back to a Full external.
    auto isStripable = [&](int64_t T) {
      if (isStrip(T))
        return true;
      auto It = Ext.find(T);
      return It != Ext.end() && It->second.K == ExtKind::Full &&
             It->second.Ty == DataType::F32;
    };
    bool Swapped = false;
    if (!isStripable(Lhs)) {
      std::swap(Lhs, Rhs);
      Swapped = true;
    }
    assert(isStripable(Lhs) && "binary op without a tile-shaped operand");
    [[maybe_unused]] const bool Commutative =
        Kind == OpKind::Add || Kind == OpKind::Mul || Kind == OpKind::Max ||
        Kind == OpKind::Min;

    const int Strip = materializeFirst(Lhs, Nsi, Out);
    consume(Lhs);
    const BufferRef StripRef(Strip, stripTileOffset(Nsi));
    const std::vector<Expr> UnaryScalars = {ValidRowsE, ValidColsOf(Nsi),
                                            makeInt(TileCols)};

    // Classify RHS.
    auto EnvIt = Env.find(Rhs);
    if (EnvIt != Env.end() && EnvIt->second.K == StripVal::Kind::RedVec) {
      // Row-reduction vector: colvec broadcast ops.
      consume(Rhs);
      Intrinsic In;
      switch (Kind) {
      case OpKind::Add: In = Intrinsic::AddColVecTile; break;
      case OpKind::Sub: In = Intrinsic::SubColVecTile; break;
      case OpKind::Mul: In = Intrinsic::MulColVecTile; break;
      case OpKind::Div: In = Intrinsic::DivColVecTile; break;
      default: fatalError("unsupported colvec binary");
      }
      assert(!Swapped && "reduction result must be the second operand");
      Out.push_back(makeCall(
          In, {StripRef, BufferRef(EnvIt->second.BufferId, makeInt(0))},
          UnaryScalars));
      finishBinary(O, Strip);
      return;
    }
    if (EnvIt != Env.end()) {
      // Interior strip RHS.
      const TileAddr Y = operandTile(Rhs, Nsi);
      consume(Rhs);
      emitBinaryTile(Kind, Swapped, StripRef, Y, Out, Nsi);
      finishBinary(O, Strip);
      return;
    }
    const ExtRef &E = Ext.at(Rhs);
    consume(Rhs);
    switch (E.K) {
    case ExtKind::Scalar: {
      const double S = E.ScalarValue;
      // strip OP scalar (or scalar OP strip when swapped).
      switch (Kind) {
      case OpKind::Add:
        Out.push_back(makeCall(Intrinsic::AffineTile, {StripRef},
                               {ValidRowsE, ValidColsOf(Nsi),
                                makeInt(TileCols), makeFloat(1.0),
                                makeFloat(S)}));
        break;
      case OpKind::Mul:
        Out.push_back(makeCall(Intrinsic::AffineTile, {StripRef},
                               {ValidRowsE, ValidColsOf(Nsi),
                                makeInt(TileCols), makeFloat(S),
                                makeFloat(0.0)}));
        break;
      case OpKind::Sub:
        Out.push_back(makeCall(
            Intrinsic::AffineTile, {StripRef},
            {ValidRowsE, ValidColsOf(Nsi), makeInt(TileCols),
             makeFloat(Swapped ? -1.0 : 1.0),
             makeFloat(Swapped ? S : -S)}));
        break;
      case OpKind::Div:
        if (!Swapped) {
          Out.push_back(makeCall(Intrinsic::AffineTile, {StripRef},
                                 {ValidRowsE, ValidColsOf(Nsi),
                                  makeInt(TileCols), makeFloat(1.0 / S),
                                  makeFloat(0.0)}));
        } else {
          // scalar / strip.
          Out.push_back(makeCall(Intrinsic::RecipTile, {StripRef},
                                 UnaryScalars));
          Out.push_back(makeCall(Intrinsic::AffineTile, {StripRef},
                                 {ValidRowsE, ValidColsOf(Nsi),
                                  makeInt(TileCols), makeFloat(S),
                                  makeFloat(0.0)}));
        }
        break;
      case OpKind::Max:
      case OpKind::Min: {
        // max/min with a scalar: bake a one-element rowvec is overkill;
        // use a tiny baked tile broadcast via rowvec semantics.
        runtime::TensorData VData(DataType::F32, {FullN});
        for (int64_t I = 0; I < FullN; ++I)
          VData.dataAs<float>()[I] = static_cast<float>(S);
        const int VBuf = bakeConst("scalar_vec", std::move(VData));
        fatalError("scalar max/min not reachable in current decompositions");
        (void)VBuf;
        break;
      }
      default:
        fatalError("unsupported scalar binary");
      }
      finishBinary(O, Strip);
      return;
    }
    case ExtKind::RowVec: {
      assert(!Swapped || Commutative ||
             Kind == OpKind::Add || Kind == OpKind::Mul);
      Intrinsic In;
      switch (Kind) {
      case OpKind::Add: In = Intrinsic::AddRowVecTile; break;
      case OpKind::Sub: In = Intrinsic::SubRowVecTile; break;
      case OpKind::Mul: In = Intrinsic::MulRowVecTile; break;
      default: fatalError("unsupported rowvec binary");
      }
      Out.push_back(makeCall(
          In, {StripRef, BufferRef(E.BufferId, extRowVecOffset(E, Nsi))},
          UnaryScalars));
      finishBinary(O, Strip);
      return;
    }
    case ExtKind::ColVec: {
      Intrinsic In;
      switch (Kind) {
      case OpKind::Add: In = Intrinsic::AddColVecTile; break;
      case OpKind::Sub: In = Intrinsic::SubColVecTile; break;
      case OpKind::Mul: In = Intrinsic::MulColVecTile; break;
      case OpKind::Div: In = Intrinsic::DivColVecTile; break;
      default: fatalError("unsupported colvec binary");
      }
      assert(!Swapped && "colvec must be the second operand");
      Out.push_back(makeCall(
          In, {StripRef, BufferRef(E.BufferId, extColVecOffset(E))},
          UnaryScalars));
      finishBinary(O, Strip);
      return;
    }
    case ExtKind::Full: {
      const TileAddr Y = extFullAddr(E, Nsi);
      emitBinaryTile(Kind, Swapped, StripRef, Y, Out, Nsi);
      finishBinary(O, Strip);
      return;
    }
    }
  }

  void emitBinaryTile(OpKind Kind, bool Swapped, const BufferRef &StripRef,
                      const TileAddr &Y, StmtList &Out, const Expr &Nsi) {
    // In-place on the strip; for non-commutative swapped forms, rewrite:
    // sub: (y - x) = -(x - y); div: y / x needs recip then mul.
    Intrinsic In;
    switch (Kind) {
    case OpKind::Add: In = Intrinsic::AddTile; break;
    case OpKind::Sub: In = Intrinsic::SubTile; break;
    case OpKind::Mul: In = Intrinsic::MulTile; break;
    case OpKind::Div: In = Intrinsic::DivTile; break;
    case OpKind::Max: In = Intrinsic::MaxTile; break;
    case OpKind::Min: In = Intrinsic::MinTile; break;
    default: fatalError("not a binary tile op");
    }
    const std::vector<Expr> Scalars = {ValidRowsE, ValidColsOf(Nsi),
                                       makeInt(TileCols), makeInt(Y.Ld)};
    Out.push_back(
        makeCall(In, {StripRef, BufferRef(Y.BufferId, Y.Offset)}, Scalars));
    if (Swapped && Kind == OpKind::Sub) {
      // Computed x - y, need y - x: negate.
      Out.push_back(makeCall(Intrinsic::AffineTile, {StripRef},
                             {ValidRowsE, ValidColsOf(Nsi),
                              makeInt(TileCols), makeFloat(-1.0),
                              makeFloat(0.0)}));
    } else if (Swapped && Kind == OpKind::Div) {
      fatalError("swapped division between tiles is not supported");
    }
  }

  void finishBinary(const Op &O, int Strip) {
    StripVal V;
    V.K = StripVal::Kind::Strip;
    V.BufferId = Strip;
    Env[O.output(0)] = V;
  }

  //===--------------------------------------------------------------------===//
  // Store
  //===--------------------------------------------------------------------===//

  void emitStore(int64_t OutSubTensor, int64_t OuterOut, const Expr &Nsi,
                 StmtList &Out) {
    const LogicalTensor &OutT = G.tensor(OuterOut);
    const int OutBuf = Ctx.BufferFor(OuterOut);
    const StripVal &V = Env.at(OutSubTensor);
    const bool Blocked = OutT.Lay.isBlocked();

    Expr DstOff;
    int64_t DstLd;
    Expr Rows, Cols;
    if (Blocked) {
      // Consumer A-format tile: ((bt*MBlocks + mpsi)*KBc + npsi)*MB*NB.
      const int64_t KBc = ceilDiv(FullN, TileCols);
      Expr BlockIdx =
          ((BtE ? BtE * makeInt(ceilDiv(MDim, TileRows)) : makeInt(0)) +
           RowBaseE / makeInt(TileRows)) *
              makeInt(KBc) +
          NpsiOf(Nsi);
      DstOff = BlockIdx * makeInt(TileRows * TileCols);
      DstLd = TileCols;
      // Full tiles: padding rows/cols feed zero weight rows downstream.
      Rows = makeInt(TileRows);
      Cols = makeInt(TileCols);
    } else {
      Expr BatchOff = BtE ? BtE * makeInt(MDim * FullN) : makeInt(0);
      DstOff = BatchOff + RowBaseE * makeInt(FullN) +
               NpsiOf(Nsi) * makeInt(TileCols);
      DstLd = FullN;
      Rows = ValidRowsE;
      Cols = ValidColsOf(Nsi);
    }

    switch (V.K) {
    case StripVal::Kind::PendingQuant: {
      assert(isQuantizedType(OutT.Ty) && "pending quant into non-int8 out");
      Out.push_back(makeCall(
          V.Signed ? Intrinsic::QuantS8Tile : Intrinsic::QuantU8Tile,
          {BufferRef(OutBuf, DstOff), BufferRef(V.SrcStrip,
                                                stripTileOffset(Nsi))},
          V.Signed
              ? std::vector<Expr>{Rows, Cols, makeInt(DstLd),
                                  makeInt(TileCols), makeFloat(V.InvScale)}
              : std::vector<Expr>{Rows, Cols, makeInt(DstLd),
                                  makeInt(TileCols), makeFloat(V.InvScale),
                                  makeInt(V.Zp)}));
      return;
    }
    case StripVal::Kind::Strip:
    case StripVal::Kind::Acc: {
      if (V.Ty == DataType::F32) {
        Out.push_back(makeCall(
            Intrinsic::CopyTile,
            {BufferRef(OutBuf, DstOff),
             BufferRef(V.BufferId, stripTileOffset(Nsi))},
            {Rows, Cols, makeInt(DstLd), makeInt(TileCols)}));
      } else {
        // s32 accumulator stored raw (unfused quantized matmul).
        Out.push_back(makeCall(
            Intrinsic::CopyTileRaw,
            {BufferRef(OutBuf, DstOff),
             BufferRef(V.BufferId, stripTileOffset(Nsi))},
            {Rows, Cols, makeInt(DstLd), makeInt(TileCols),
             makeInt(dataTypeSize(V.Ty))}));
      }
      return;
    }
    case StripVal::Kind::RedVec: {
      // Region output is a row-reduction vector ([..., M, 1] plain).
      assert(!Blocked && "reduction output must stay plain");
      Expr VecOff = (BtE ? BtE * makeInt(MDim) : makeInt(0)) + RowBaseE;
      Out.push_back(makeCall(Intrinsic::CopyTile,
                             {BufferRef(OutBuf, VecOff),
                              BufferRef(V.BufferId, makeInt(0))},
                             {ValidRowsE, makeInt(1), makeInt(1),
                              makeInt(1)}));
      return;
    }
    case StripVal::Kind::None:
      fatalError("region output value has no storable form");
    }
  }

  //===--------------------------------------------------------------------===//
  // Tunable template (Fig. 2)
  //===--------------------------------------------------------------------===//

  Stmt lowerTunable(int64_t MmId);
  Stmt lowerEltwise();

  void setupExternals(int64_t MmId) {
    std::unordered_set<int64_t> Skip;
    if (MmId >= 0) {
      Skip.insert(Sub.op(MmId).input(0));
      Skip.insert(Sub.op(MmId).input(1));
    }
    // Count uses and classify externals lazily (only tensors actually read
    // by interior ops).
    for (int64_t OpId : Sub.topologicalOrder()) {
      if (OpId == MmId)
        continue;
      for (int64_t In : Sub.op(OpId).inputs()) {
        ++UseCount[In];
        if (Skip.count(In) || Sub.producerOf(In) >= 0 ||
            (MmId >= 0 && In == Sub.op(MmId).output(0)))
          continue;
        if (!Ext.count(In))
          Ext.emplace(In, classifyExternal(In));
      }
    }
    for (int64_t Out : Sub.outputs())
      ++UseCount[Out];
  }
};

//===----------------------------------------------------------------------===//
// Tunable path
//===----------------------------------------------------------------------===//

Stmt RegionLowerer::lowerTunable(int64_t MmId) {
  const Op &Mm = Sub.op(MmId);
  assert(Mm.getAttrInt("transpose_a", 0) == 0 && "transpose_a unsupported");
  TransB = Mm.getAttrInt("transpose_b", 0) != 0;
  Quantized = Mm.getAttrInt("quantized", 0) != 0;

  const LogicalTensor &ASub = Sub.tensor(Mm.input(0));
  const LogicalTensor &MmOutT = Sub.tensor(Mm.output(0));
  Shape.M = MmOutT.Shape[MmOutT.rank() - 2];
  Shape.N = MmOutT.Shape[MmOutT.rank() - 1];
  Shape.K = ASub.Shape[ASub.rank() - 1];
  Shape.Batch = 1;
  OutLeadDims.assign(MmOutT.Shape.begin(), MmOutT.Shape.end() - 2);
  for (int64_t D : OutLeadDims)
    Shape.Batch *= D;
  Shape.ADtype = ASub.Ty == DataType::U8 ? DataType::U8 : DataType::F32;

  // Template parameters: from layout-propagation attrs, else on the fly.
  if (FO.hasAttr("blk_mb")) {
    P.MB = FO.getAttrInt("blk_mb");
    P.NB = FO.getAttrInt("blk_nb");
    P.KB = FO.getAttrInt("blk_kb");
    P.BS = FO.getAttrInt("blk_bs");
    P.MPN = FO.getAttrInt("blk_mpn");
    P.NPN = FO.getAttrInt("blk_npn");
    P.derive(Shape);
  } else {
    P = chooseMatmulBlocking(Shape, Ctx.Threads,
                             FO.getAttrInt("needs_full_rows", 0) != 0);
  }
  const bool NeedsFullRows = FO.getAttrInt("needs_full_rows", 0) != 0;
  if (NeedsFullRows)
    assert(P.NPN == 1 && "row reductions require NPN == 1");

  // Operand placement.
  const int64_t ASubT = Mm.input(0);
  const int64_t BSubT = Mm.input(1);
  const LogicalTensor &AOuter = outerTensorFor(ASubT);
  const LogicalTensor &BOuter = outerTensorFor(BSubT);
  const bool ABlocked = AOuter.Lay.isBlocked();
  const bool BBlocked = BOuter.Lay.isBlocked();
  const bool ABatched = AOuter.rank() > 2;
  const bool BBatched = BOuter.rank() > 2;
  if (!BBlocked)
    assert(P.NPN == 1 && "runtime B packing requires NPN == 1");
  const int ABuf = outerBufferFor(ASubT);
  const int BBuf = outerBufferFor(BSubT);

  // Anchor geometry for the post-op machinery.
  TileRows = P.MB;
  TileCols = P.NB;
  FullN = Shape.N;
  MDim = Shape.M;
  StripTiles = P.NSN;

  // Loop variables.
  Var GV = makeVar("g");
  Var BtV = makeVar("bt");
  Var MpiV = makeVar("mpi");
  Var NpiV = makeVar("npi");
  Var MsiV = makeVar("msi");
  Var KsiV = makeVar("ksi");
  Var NsiV = makeVar("nsi");
  Var MpsiV = makeVar("mpsi");
  Var NpsiV = makeVar("npsi");
  Var MValidV = makeVar("m_valid");
  Var BsV = makeVar("bs");

  const int64_t GridMN = P.MPN * P.NPN;
  const int64_t Grid = Shape.Batch * GridMN;

  // Accumulator C' [NSN, MB, NB].
  const int CAcc = scratch("c_acc", Quantized ? DataType::S32 : DataType::F32,
                           {P.NSN, P.MB, P.NB});

  // Pre-op packed operands.
  int APack = -1, BPack = -1;
  if (!ABlocked) {
    // A pack committed at pre-op anchor #4, the Fig. 3 minimal-buffer
    // choice (#5 only ties when NSN == 1, where the two are identical).
    [[maybe_unused]] const PreAnchor AAnchor = choosePreAnchorA(P);
    assert((AAnchor == PreAnchor::Pre4 || AAnchor == PreAnchor::Pre5) &&
           "unexpected A pre-op anchor");
    APack = scratch("a_pack", Shape.ADtype, {P.BS, P.MB, P.KB});
  }
  if (!BBlocked) {
    BPack = scratch("b_pack",
                    Quantized ? DataType::S8 : DataType::F32,
                    {P.KBlocks, P.NBlocks, P.KB, P.NB});
  }

  // ---- innermost brgemm ----
  StmtList NsiBody;
  NsiBody.push_back(makeLet(NpsiV, Expr(NpiV) * makeInt(P.NSN) + Expr(NsiV)));
  {
    // A tile base + batch stride.
    Expr AOff;
    int ABufUsed;
    int64_t AStride = P.MB * P.KB;
    if (ABlocked) {
      Expr ABt = ABatched ? Expr(BtV) : makeInt(0);
      AOff = ((ABt * makeInt(P.MBlocks) + Expr(MpsiV)) * makeInt(P.KBlocks) +
              Expr(KsiV)) *
             makeInt(P.MB * P.KB);
      ABufUsed = ABuf;
    } else {
      AOff = makeInt(0); // packed fresh at this (msi, ksi)
      ABufUsed = APack;
    }
    // B tile base + batch stride.
    Expr BOff;
    int BBufUsed;
    const int64_t BStride = P.NBlocks * P.KB * P.NB;
    if (BBlocked) {
      Expr BBt = BBatched ? Expr(BtV) : makeInt(0);
      BOff = ((BBt * makeInt(P.KBlocks) + Expr(KsiV)) * makeInt(P.NBlocks) +
              Expr(NpsiV)) *
             makeInt(P.KB * P.NB);
      BBufUsed = BBuf;
    } else {
      BOff = (Expr(KsiV) * makeInt(P.NBlocks) + Expr(NpsiV)) *
             makeInt(P.KB * P.NB);
      BBufUsed = BPack;
    }
    const Expr InitC = makeInt(1) - minExpr(Expr(KsiV), makeInt(1));
    NsiBody.push_back(makeCall(
        Quantized ? Intrinsic::BrgemmU8S8 : Intrinsic::BrgemmF32,
        {BufferRef(ABufUsed, AOff), BufferRef(BBufUsed, BOff),
         BufferRef(CAcc, Expr(NsiV) * makeInt(P.MB * P.NB))},
        {Expr(MValidV), makeInt(P.NB), makeInt(P.KB), makeInt(P.KB),
         makeInt(P.NB), makeInt(P.NB), makeInt(AStride), makeInt(BStride),
         Expr(BsV), InitC}));
  }

  // ---- ksi loop ----
  StmtList KsiBody;
  KsiBody.push_back(makeLet(BsV, minExpr(makeInt(P.BS),
                                         makeInt(P.KSN) - Expr(KsiV))));
  if (APack >= 0) {
    // pre_op_anchor#4: pack BS A blocks of row-block mpsi.
    Expr ABt = ABatched ? Expr(BtV) : makeInt(0);
    Expr SrcOff = (ABt * makeInt(Shape.M) + Expr(MpsiV) * makeInt(P.MB)) *
                      makeInt(Shape.K) +
                  Expr(KsiV) * makeInt(P.KB);
    KsiBody.push_back(makeCall(
        Shape.ADtype == DataType::U8 ? Intrinsic::PackAU8
                                     : Intrinsic::PackAF32,
        {BufferRef(APack, makeInt(0)), BufferRef(ABuf, SrcOff)},
        {Expr(MValidV),
         minExpr(Expr(BsV) * makeInt(P.KB),
                 makeInt(Shape.K) - Expr(KsiV) * makeInt(P.KB)),
         makeInt(Shape.K), makeInt(P.MB), makeInt(P.KB), makeInt(0)}));
  }
  // NSN clamp for this npi cell.
  const Expr NsiEndExpr =
      minExpr(makeInt(P.NSN),
              makeInt(P.NBlocks) - Expr(NpiV) * makeInt(P.NSN));
  KsiBody.push_back(makeFor(NsiV, makeInt(0), NsiEndExpr, makeInt(1),
                            std::move(NsiBody), false, "microkernel"));

  // ---- msi loop ----
  StmtList MsiBody;
  MsiBody.push_back(makeLet(MpsiV, Expr(MpiV) * makeInt(P.MSN) + Expr(MsiV)));
  MsiBody.push_back(
      makeLet(MValidV, minExpr(makeInt(P.MB),
                               makeInt(Shape.M) - Expr(MpsiV) * makeInt(P.MB))));
  MsiBody.push_back(makeFor(KsiV, makeInt(0), makeInt(P.KSN),
                            makeInt(P.BS), std::move(KsiBody), false,
                            "k_reduction"));

  // ---- post-op anchor #1 ----
  BtE = Shape.Batch > 1 ? Expr(BtV) : Expr();
  RowBaseE = Expr(MpsiV) * makeInt(P.MB);
  ValidRowsE = Expr(MValidV);
  NpsiOf = [NpiV, this](const Expr &Nsi) {
    return Expr(NpiV) * makeInt(P.NSN) + Nsi;
  };
  ValidColsOf = [this](const Expr &Nsi) {
    return minExpr(makeInt(TileCols),
                   makeInt(FullN) - NpsiOf(Nsi) * makeInt(TileCols));
  };
  NsiEndE = NsiEndExpr;

  setupExternals(MmId);
  // Seed the accumulator value.
  StripVal AccV;
  AccV.K = StripVal::Kind::Acc;
  AccV.BufferId = CAcc;
  AccV.Ty = Quantized ? DataType::S32 : DataType::F32;
  Env[Mm.output(0)] = AccV;

  std::vector<int64_t> OuterOuts(FO.outputs().begin(), FO.outputs().end());
  StmtList AnchorStmts =
      emitChainAndStore(interiorOps(MmId), Sub.outputs(), OuterOuts);
  for (Stmt &S : AnchorStmts)
    MsiBody.push_back(std::move(S));

  // ---- grid body ----
  StmtList GridBody;
  GridBody.push_back(makeLet(BtV, Expr(GV) / makeInt(GridMN)));
  GridBody.push_back(
      makeLet(MpiV, (Expr(GV) % makeInt(GridMN)) / makeInt(P.NPN)));
  GridBody.push_back(makeLet(NpiV, Expr(GV) % makeInt(P.NPN)));
  if (BPack >= 0) {
    // Grid-level B pack (pre-op anchor #2 semantics; NPN == 1).
    Expr BBt = BBatched ? Expr(BtV) : makeInt(0);
    Expr SrcOff = BBt * makeInt(Shape.K * Shape.N);
    GridBody.push_back(makeCall(
        Quantized ? Intrinsic::PackBS8Vnni : Intrinsic::PackBF32,
        {BufferRef(BPack, makeInt(0)), BufferRef(BBuf, SrcOff)},
        {makeInt(Shape.K), makeInt(Shape.N),
         makeInt(TransB ? Shape.K : Shape.N), makeInt(P.KB), makeInt(P.NB),
         makeInt(TransB ? 1 : 0)}));
  }
  const Expr MsiEnd = minExpr(
      makeInt(P.MSN), makeInt(P.MBlocks) - Expr(MpiV) * makeInt(P.MSN));
  GridBody.push_back(makeFor(MsiV, makeInt(0), MsiEnd, makeInt(1),
                             std::move(MsiBody), false, "single_core"));

  Stmt GridLoop = makeFor(GV, makeInt(0), makeInt(Grid), makeInt(1),
                          std::move(GridBody), /*Parallel=*/true,
                          formatString("fused_op_%lld", (long long)FO.id()));
  static_cast<ForNode &>(*GridLoop).Mergeable =
      FO.getAttrInt("merge_prev", 0) != 0;
  return makeSeq({GridLoop},
                 formatString("region_op%lld", (long long)FO.id()));
}

//===----------------------------------------------------------------------===//
// Elementwise-only path
//===----------------------------------------------------------------------===//

Stmt RegionLowerer::lowerEltwise() {
  assert(Sub.outputs().size() >= 1 && "region without outputs");
  const int64_t OutSub = Sub.outputs()[0];
  const LogicalTensor &OutT = Sub.tensor(OutSub);
  assert(!G.tensor(FO.output(0)).Lay.isBlocked() &&
         "eltwise regions produce plain tensors");

  // Strip width: the widest tensor flowing through the region (a region
  // whose output is a row reduction still processes full-width strips).
  const int64_t RowsTotal =
      OutT.numElements() / std::max<int64_t>(1, OutT.Shape.back());
  int64_t C = OutT.Shape.back();
  for (int64_t OpId : Sub.topologicalOrder())
    for (int64_t TId : Sub.op(OpId).inputs()) {
      const LogicalTensor &T = Sub.tensor(TId);
      if (T.rank() >= 1 &&
          T.numElements() == RowsTotal * T.Shape.back())
        C = std::max(C, T.Shape.back());
    }
  // Geometry: one full-width tile per strip. The output's leading dims are
  // folded into the flattened row index, so external ColVec/Full offsets
  // follow the same flattened rows (right-aligned broadcast with leading
  // dims either equal or absent).
  TileCols = C;
  FullN = C;
  MDim = RowsTotal;
  StripTiles = 1;
  OutLeadDims.clear();

  setupExternals(/*MmId=*/-1);
  // Externals must broadcast over the flattened rows; batch-grouped row
  // vectors additionally constrain the row block so one strip never
  // straddles two groups.
  int64_t RB = std::min<int64_t>(64, RowsTotal);
  for (auto &[T, E] : Ext) {
    int64_t ExtRows = 1;
    for (size_t D = 0; D + 1 < E.Shape.size(); ++D)
      ExtRows *= E.Shape[D];
    if (E.K == ExtKind::Full || E.K == ExtKind::ColVec)
      assert((ExtRows == RowsTotal || ExtRows == 1) &&
             "eltwise external must broadcast over flattened rows");
    if (E.K == ExtKind::RowVec && E.RowVecGroupRows > 0)
      RB = std::gcd(RB, E.RowVecGroupRows);
    (void)ExtRows;
    (void)T;
  }
  TileRows = RB;
  const int64_t Grid = ceilDiv(RowsTotal, RB);

  Var RbV = makeVar("rb");
  Var ValidV = makeVar("rows_valid");
  BtE = Expr();
  RowBaseE = Expr(RbV) * makeInt(RB);
  ValidRowsE = Expr(ValidV);
  NpsiOf = [](const Expr &) { return makeInt(0); };
  ValidColsOf = [C](const Expr &) { return makeInt(C); };
  NsiEndE = makeInt(1);

  StmtList Body;
  Body.push_back(makeLet(
      ValidV, minExpr(makeInt(RB), makeInt(RowsTotal) - RowBaseE)));
  std::vector<int64_t> OuterOuts(FO.outputs().begin(), FO.outputs().end());
  StmtList AnchorStmts =
      emitChainAndStore(interiorOps(/*MmId=*/-1), Sub.outputs(), OuterOuts);
  for (Stmt &S : AnchorStmts)
    Body.push_back(std::move(S));

  Stmt Loop = makeFor(RbV, makeInt(0), makeInt(Grid), makeInt(1),
                      std::move(Body), /*Parallel=*/true,
                      formatString("eltwise_op_%lld", (long long)FO.id()));
  return makeSeq({Loop},
                 formatString("region_op%lld", (long long)FO.id()));
}

} // namespace

Stmt lowerRegion(LoweringContext &Ctx, int64_t FusedOpId) {
  RegionLowerer Lowerer(Ctx, FusedOpId);
  return Lowerer.lower();
}

} // namespace lower
} // namespace gc
