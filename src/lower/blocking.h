//===- blocking.h - Matmul template parameters ------------------*- C++ -*-===//
///
/// \file
/// The tunable parameters of the matmul template (Fig. 2) and the
/// expert-tuned heuristic that instantiates them (§III): "for a given
/// output matrix size, it first proposes single-core kernel size options
/// [MPN, NPN] which can use all cores with good load balance. It further
/// proposes microkernel size options [MB, NB, KB, BS] which ensure good
/// microkernel performance. Then the heuristic picks a pair of these sizes
/// which has the best overall kernel performance."
///
//===----------------------------------------------------------------------===//

#ifndef GC_LOWER_BLOCKING_H
#define GC_LOWER_BLOCKING_H

#include "support/dtype.h"

#include <cstdint>
#include <string>

namespace gc {
namespace lower {

/// Logical problem shape of one (possibly batched) matmul.
struct MatmulShape {
  int64_t Batch = 1; ///< product of leading batch dims (1 for plain matmul)
  int64_t M = 0;
  int64_t N = 0;
  int64_t K = 0;
  /// Activation element type: F32 or U8 (s32 accumulation).
  DataType ADtype = DataType::F32;
};

/// Instantiation parameters of the Fig. 2 template.
struct BlockingParams {
  // Microkernel tile sizes and the brgemm batch (number of K blocks
  // reduced per microkernel call).
  int64_t MB = 32;
  int64_t NB = 32;
  int64_t KB = 64;
  int64_t BS = 1;
  // Parallel grid: number of single-core kernels along m and n.
  int64_t MPN = 1;
  int64_t NPN = 1;
  /// K-slicing factor for small-M inference shapes (§III: "the template may
  /// have to apply k-slicing to extract additional parallelism from the
  /// reduction axis"). 1 = disabled.
  int64_t KSlices = 1;

  // Derived block counts.
  int64_t MBlocks = 0;
  int64_t NBlocks = 0;
  int64_t KBlocks = 0;
  // Blocks per single-core kernel (MSN/NSN/KSN of Fig. 2).
  int64_t MSN = 0;
  int64_t NSN = 0;
  int64_t KSN = 0;

  /// Recomputes the derived fields from (M, N, K) and the chosen tiles.
  void derive(const MatmulShape &Shape);

  /// Debug rendering, e.g. "MB32 NB64 KB64 BS2 grid 4x1".
  std::string toString() const;
};

/// Cache-size model of the target microarchitecture (bytes). Defaults match
/// an Ice Lake class core; the heuristic only uses them as budgets, so
/// exact numbers are not load-bearing.
struct CacheModel {
  int64_t L1Bytes = 32 * 1024;
  int64_t L2Bytes = 1280 * 1024;
  /// Fraction of L1 the brgemm working set may occupy.
  double L1Budget = 0.75;
};

/// Chooses template parameters for \p Shape on \p Threads workers.
/// \p RequireFullRows forces NPN == 1 so that each single-core kernel owns
/// complete output rows (needed when a row reduction fuses at a post-op
/// anchor, and for coarse-grain loop merging).
BlockingParams chooseMatmulBlocking(const MatmulShape &Shape, int Threads,
                                    bool RequireFullRows = false,
                                    const CacheModel &Cache = CacheModel());

/// Re-derives parameters when layout negotiation fixes (MB, KB) to the
/// producer's output tile sizes (§V layout propagation: the consumer adopts
/// the blocked layout already produced by the previous Tunable OP).
BlockingParams chooseMatmulBlockingFixedA(const MatmulShape &Shape,
                                          int Threads, int64_t FixedMB,
                                          int64_t FixedKB,
                                          bool RequireFullRows = false,
                                          const CacheModel &Cache = CacheModel());

/// Analytic single-core efficiency estimate of a microkernel candidate in
/// (0, 1]; exposed for the heuristic tests.
double microkernelEfficiency(const MatmulShape &Shape, int64_t MB, int64_t NB,
                             int64_t KB);

} // namespace lower
} // namespace gc

#endif // GC_LOWER_BLOCKING_H
