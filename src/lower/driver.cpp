//===- driver.cpp - Graph -> Tensor IR lowering driver ----------------------------===//

#include "lower/driver.h"

#include "exec/program.h"
#include "lower/region_lowering.h"
#include "support/common.h"
#include "support/env.h"
#include "support/str.h"
#include "tir/eval.h"
#include "tir/printer.h"
#include "tirpass/tirpass.h"
#include "verify/verify.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace gc {
namespace lower {

using namespace graph;

namespace {

/// Computes the set of fold-side ops: ops whose transitive inputs are all
/// compile-time constants (§V constant weight preprocessing: "builds a
/// special initial function that preprocesses the constant weight").
std::unordered_set<int64_t> computeFoldSide(const Graph &G) {
  std::unordered_set<int64_t> FoldOps;
  std::unordered_set<int64_t> FoldTensors;
  for (int64_t OpId : G.topologicalOrder()) {
    const Op &O = G.op(OpId);
    bool AllConst = !O.inputs().empty();
    for (int64_t In : O.inputs()) {
      const bool IsConst =
          G.tensor(In).isConstant() || FoldTensors.count(In);
      if (!IsConst) {
        AllConst = false;
        break;
      }
    }
    // Subgraph-bearing ops can also be fold-side (e.g. a comp chain that
    // got wrapped); their cloned constants make them self-contained.
    if (!AllConst)
      continue;
    // Never fold ops producing graph outputs (keep execution semantics).
    bool ProducesOutput = false;
    for (int64_t Out : O.outputs())
      if (G.isOutput(Out))
        ProducesOutput = true;
    if (ProducesOutput)
      continue;
    FoldOps.insert(OpId);
    for (int64_t Out : O.outputs())
      FoldTensors.insert(Out);
  }
  return FoldOps;
}

} // namespace

Expected<LoweredProgram> lowerGraph(const Graph &G,
                                    const DriverOptions &Opts) {
  LoweredProgram Prog;
  Prog.Entry.Name = "entry";

  // ---- fold/main split ----
  const std::unordered_set<int64_t> FoldOps = computeFoldSide(G);
  std::unordered_set<int64_t> FoldTensors;
  for (int64_t OpId : FoldOps)
    for (int64_t Out : G.op(OpId).outputs())
      FoldTensors.insert(Out);
  // Fold outputs: fold tensors read by main-side ops.
  std::unordered_set<int64_t> FoldOutSet;
  for (int64_t OpId : G.opIds()) {
    if (FoldOps.count(OpId))
      continue;
    for (int64_t In : G.op(OpId).inputs())
      if (FoldTensors.count(In))
        FoldOutSet.insert(In);
  }
  Prog.FoldOutputs.assign(FoldOutSet.begin(), FoldOutSet.end());
  std::sort(Prog.FoldOutputs.begin(), Prog.FoldOutputs.end());

  // Fold graph: clone, strip main-side ops, re-point outputs.
  Prog.FoldGraph = G.clone();
  for (int64_t OpId : Prog.FoldGraph.opIds())
    if (!FoldOps.count(OpId))
      Prog.FoldGraph.eraseOp(OpId);
  Prog.FoldGraph.setOutputs(Prog.FoldOutputs);

  // ---- entry buffers ----
  LoweringContext Ctx;
  Ctx.G = &G;
  Ctx.Entry = &Prog.Entry;
  Ctx.Threads = Opts.Threads;
  std::unordered_map<int64_t, int> BufferMemo;
  Ctx.BufferFor = [&](int64_t TensorId) -> int {
    auto It = BufferMemo.find(TensorId);
    if (It != BufferMemo.end())
      return It->second;
    const LogicalTensor &T = G.tensor(TensorId);
    tir::BufferScope Scope;
    BindingKind Kind = BindingKind::Input;
    bool Bind = true;
    if (G.isInput(TensorId)) {
      Scope = tir::BufferScope::Param;
      Kind = BindingKind::Input;
    } else if (G.isOutput(TensorId)) {
      Scope = tir::BufferScope::Param;
      Kind = BindingKind::Output;
    } else if (FoldOutSet.count(TensorId)) {
      Scope = tir::BufferScope::FoldedConst;
      Kind = BindingKind::Folded;
    } else if (T.isConstant()) {
      Scope = tir::BufferScope::Const;
      Kind = BindingKind::ConstData;
    } else {
      Scope = tir::BufferScope::Temp;
      Bind = false;
    }
    const int Id = Prog.Entry.addBuffer(
        T.Name.empty() ? formatString("t%lld", (long long)TensorId) : T.Name,
        T.Ty, {T.paddedNumElements()}, Scope, TensorId);
    if (Bind)
      Prog.Bindings.push_back({Id, TensorId, Kind});
    BufferMemo[TensorId] = Id;
    return Id;
  };

  // ---- lower main-side regions in topological order ----
  for (int64_t OpId : G.topologicalOrder()) {
    if (FoldOps.count(OpId))
      continue;
    const Op &O = G.op(OpId);
    switch (O.kind()) {
    case OpKind::FusedOp:
      if (verboseAtLeast(2))
        std::fprintf(stderr, "lowering region op%lld\n%s",
                     (long long)OpId,
                     O.subgraph() ? O.subgraph()->toString().c_str() : "");
      Prog.Entry.Body.push_back(lowerRegion(Ctx, OpId));
      continue;
    case OpKind::Reshape: {
      // Plain row-major data is shape-agnostic: one flat copy.
      const LogicalTensor &In = G.tensor(O.input(0));
      const int Src = Ctx.BufferFor(O.input(0));
      const int Dst = Ctx.BufferFor(O.output(0));
      Prog.Entry.Body.push_back(tir::makeSeq(
          {tir::makeCall(
              tir::Intrinsic::CopyTileRaw,
              {tir::BufferRef(Dst, tir::makeInt(0)),
               tir::BufferRef(Src, tir::makeInt(0))},
              {tir::makeInt(1), tir::makeInt(In.numElements()),
               tir::makeInt(In.numElements()),
               tir::makeInt(In.numElements()),
               tir::makeInt(dataTypeSize(In.Ty))})},
          formatString("reshape_op%lld", (long long)OpId)));
      continue;
    }
    case OpKind::Transpose: {
      // Supported pattern: the BSHD <-> BHSD permute of transformer
      // graphs, perm == [0, 2, 1, 3].
      const std::vector<int64_t> Perm = O.getAttrIntVec("perm");
      const LogicalTensor &In = G.tensor(O.input(0));
      if (!(Perm == std::vector<int64_t>{0, 2, 1, 3} && In.rank() == 4))
        return Status::error(
            StatusCode::Unsupported,
            formatString("standalone transpose op%lld supports perm "
                         "[0,2,1,3] on rank-4 tensors only",
                         (long long)OpId));
      const int Src = Ctx.BufferFor(O.input(0));
      const int Dst = Ctx.BufferFor(O.output(0));
      Prog.Entry.Body.push_back(tir::makeSeq(
          {tir::makeCall(
              tir::Intrinsic::Permute0213,
              {tir::BufferRef(Dst, tir::makeInt(0)),
               tir::BufferRef(Src, tir::makeInt(0))},
              {tir::makeInt(In.Shape[0]), tir::makeInt(In.Shape[1]),
               tir::makeInt(In.Shape[2]), tir::makeInt(In.Shape[3]),
               tir::makeInt(dataTypeSize(In.Ty))})},
          formatString("transpose_op%lld", (long long)OpId)));
      continue;
    }
    default:
      return Status::error(
          StatusCode::Unsupported,
          formatString("main-side op '%s' is not a fused region; run the "
                       "fusion pass before lowering",
                       opKindName(O.kind())));
    }
  }

  // ---- Tensor IR passes ----
  const bool VerifyStages =
      verify::verifyLevel() >= verify::VerifyLevel::Passes;
  if (VerifyStages)
    if (Status S = verify::verifyFunc(Prog.Entry, "region lowering");
        !S.isOk())
      return S;
  if (Opts.EnableCoarseGrainFusion) {
    Prog.CoarseGrainMerges = tirpass::mergeParallelLoops(Prog.Entry);
    if (VerifyStages)
      if (Status S = verify::verifyFunc(Prog.Entry, "loop merge"); !S.isOk())
        return S;
  }
  // Tensor-size optimization: the template lowering already emits
  // strip-sized thread-local temporaries, so this mostly catches
  // scalar-loop regions; it must run before buffer placement.
  tirpass::shrinkTensors(Prog.Entry);
  if (VerifyStages)
    if (Status S = verify::verifyFunc(Prog.Entry, "tensor shrink");
        !S.isOk())
      return S;
  Prog.ReuseStats = tirpass::reuseBuffers(Prog.Entry, Opts.EnableBufferReuse);
  tir::assignSlots(Prog.Entry);
  if (verify::verifyLevel() >= verify::VerifyLevel::All)
    if (Status S = verify::verifyFunc(Prog.Entry, "slot assignment");
        !S.isOk())
      return S;
  // Final lowering step: compile the entry function to flat bytecode.
  Prog.Bytecode = exec::compileProgram(Prog.Entry);
  if (verify::verifyLevel() >= verify::VerifyLevel::All)
    if (Status S = verify::verifyProgram(*Prog.Bytecode, "bytecode compile");
        !S.isOk())
      return S;

  if (verboseAtLeast(1))
    std::fprintf(stderr, "=== lowered entry ===\n%s\n",
                 tir::printFunc(Prog.Entry).c_str());
  if (verboseAtLeast(2))
    std::fprintf(stderr, "=== bytecode ===\n%s\n",
                 exec::printProgram(*Prog.Bytecode).c_str());
  return Prog;
}

} // namespace lower
} // namespace gc
