//===- blocking.cpp - Matmul template parameter heuristic -----------------------===//
//
// Candidate generation + cost model. The cost of a (grid, microkernel)
// pair is  parallelPenalty / microkernelEfficiency  where the penalty
// models load imbalance across single-core kernels and the efficiency
// models register-tile compute intensity, vector-lane utilization and
// block padding waste. Deterministic: ties break toward the earlier
// candidate, so compilations are reproducible.
//
//===----------------------------------------------------------------------===//

#include "lower/blocking.h"

#include "support/common.h"
#include "support/str.h"

#include <algorithm>
#include <vector>

namespace gc {
namespace lower {

void BlockingParams::derive(const MatmulShape &Shape) {
  MBlocks = ceilDiv(Shape.M, MB);
  NBlocks = ceilDiv(Shape.N, NB);
  KBlocks = ceilDiv(Shape.K, KB);
  MPN = std::min(MPN, MBlocks);
  NPN = std::min(NPN, NBlocks);
  MSN = ceilDiv(MBlocks, MPN);
  NSN = ceilDiv(NBlocks, NPN);
  KSN = KBlocks;
  BS = std::min(BS, KBlocks);
  if (BS < 1)
    BS = 1;
}

std::string BlockingParams::toString() const {
  return formatString(
      "MB%lld NB%lld KB%lld BS%lld grid %lldx%lld kslices %lld",
      (long long)MB, (long long)NB, (long long)KB, (long long)BS,
      (long long)MPN, (long long)NPN, (long long)KSlices);
}

double microkernelEfficiency(const MatmulShape &Shape, int64_t MB, int64_t NB,
                             int64_t KB) {
  // Vector-lane utilization along N: full 16-lane groups are free, the
  // masked tail wastes lanes.
  const int64_t NBEff = std::min(NB, Shape.N);
  const double LaneEff =
      static_cast<double>(NBEff) / static_cast<double>(roundUp(NBEff, 16));
  // Row-panel utilization along M (panels of 8 rows).
  const int64_t MBEff = std::min(MB, Shape.M);
  const double RowEff =
      static_cast<double>(MBEff) / static_cast<double>(roundUp(MBEff, 8));
  // Compute intensity of the register tile: flops per element moved.
  const double Intensity =
      static_cast<double>(MB * NB) / static_cast<double>(MB + NB);
  const double IntensityNorm = Intensity / (Intensity + 8.0);
  // Padding waste across the whole problem.
  const double Padded = static_cast<double>(roundUp(Shape.M, MB)) *
                        static_cast<double>(roundUp(Shape.N, NB)) *
                        static_cast<double>(roundUp(Shape.K, KB));
  const double Real = static_cast<double>(Shape.M) *
                      static_cast<double>(Shape.N) *
                      static_cast<double>(Shape.K);
  const double PadWaste = Padded / Real;
  // Deeper K blocks amortize per-call overhead and C-tile reloads.
  const double KbAmortization =
      static_cast<double>(KB) / (static_cast<double>(KB) + 16.0);
  return LaneEff * RowEff * IntensityNorm * KbAmortization / PadWaste;
}

namespace {

struct Candidate {
  int64_t MB, NB, KB;
};

/// Proposes microkernel tile options near the problem size.
std::vector<Candidate> proposeMicrokernels(const MatmulShape &Shape,
                                           int64_t FixedMB, int64_t FixedKB) {
  static const int64_t MBOpts[] = {8, 16, 32, 64};
  static const int64_t NBOpts[] = {16, 32, 64};
  static const int64_t KBOpts[] = {16, 32, 64, 128};
  std::vector<Candidate> Out;
  for (int64_t MB : MBOpts) {
    if (FixedMB > 0 && MB != FixedMB)
      continue;
    if (MB > roundUp(Shape.M, 8) && MB != 8)
      continue; // don't over-pad tiny M
    for (int64_t NB : NBOpts) {
      if (NB > roundUp(Shape.N, 16) && NB != 16)
        continue;
      for (int64_t KB : KBOpts) {
        if (FixedKB > 0 && KB != FixedKB)
          continue;
        if (Shape.ADtype == DataType::U8 && KB % 4 != 0)
          continue;
        if (KB > roundUp(Shape.K, 16) && KB != 16)
          continue;
        Out.push_back({MB, NB, KB});
      }
    }
  }
  if (Out.empty()) {
    // Fixed sizes fell outside the normal option set (negotiated layouts);
    // honor them verbatim.
    Out.push_back({FixedMB > 0 ? FixedMB : 32, 32, FixedKB > 0 ? FixedKB : 64});
  }
  return Out;
}

/// brgemm batch size: as many K blocks as keep A+B panels in the L1 budget.
int64_t chooseBatchSize(const MatmulShape &Shape, const Candidate &C,
                        const CacheModel &Cache) {
  const int64_t EsA = dataTypeSize(Shape.ADtype);
  const int64_t EsB = Shape.ADtype == DataType::U8 ? 1 : 4;
  const int64_t PerBlockBytes = C.KB * (C.MB * EsA + C.NB * EsB);
  const int64_t CTileBytes = C.MB * C.NB * 4;
  const int64_t Budget =
      static_cast<int64_t>(Cache.L1Bytes * Cache.L1Budget) - CTileBytes;
  int64_t BS = PerBlockBytes > 0 ? Budget / PerBlockBytes : 1;
  BS = std::clamp<int64_t>(BS, 1, ceilDiv(Shape.K, C.KB));
  return BS;
}

/// Parallel penalty >= 1: wasted fraction from grid imbalance and idle
/// workers.
double parallelPenalty(const MatmulShape &Shape, const Candidate &C,
                       int64_t MPN, int64_t NPN, int Threads) {
  const int64_t MBlocks = ceilDiv(Shape.M, C.MB);
  const int64_t NBlocks = ceilDiv(Shape.N, C.NB);
  const int64_t Cells = Shape.Batch * MPN * NPN;
  // Per-cell work imbalance from uneven block division.
  const double CellWork = static_cast<double>(ceilDiv(MBlocks, MPN)) *
                          static_cast<double>(ceilDiv(NBlocks, NPN));
  const double MeanWork = static_cast<double>(MBlocks) *
                          static_cast<double>(NBlocks) /
                          (static_cast<double>(MPN) * static_cast<double>(NPN));
  const double Imbalance = CellWork / MeanWork;
  // Idle workers when the grid does not fill a multiple of the pool.
  const double Rounds = static_cast<double>(ceilDiv(Cells, Threads));
  const double Occupancy =
      static_cast<double>(Cells) / (Rounds * static_cast<double>(Threads));
  return Imbalance / Occupancy;
}

BlockingParams chooseImpl(const MatmulShape &Shape, int Threads,
                          bool RequireFullRows, const CacheModel &Cache,
                          int64_t FixedMB, int64_t FixedKB) {
  assert(Shape.M > 0 && Shape.N > 0 && Shape.K > 0 && "degenerate matmul");
  Threads = std::max(1, Threads);

  BlockingParams Best;
  double BestCost = 1e300;
  bool HaveFit = false;
  const int64_t EsA = dataTypeSize(Shape.ADtype);
  const int64_t EsB = Shape.ADtype == DataType::U8 ? 1 : 4;
  const int64_t L1Budget =
      static_cast<int64_t>(Cache.L1Bytes * Cache.L1Budget);
  std::vector<Candidate> Candidates =
      proposeMicrokernels(Shape, FixedMB, FixedKB);
  // Drop candidates whose single-block working set already blows the L1
  // budget (unless nothing fits, e.g. negotiated sizes).
  std::vector<Candidate> Fitting;
  for (const Candidate &C : Candidates)
    if (C.KB * (C.MB * EsA + C.NB * EsB) + C.MB * C.NB * 4 <= L1Budget)
      Fitting.push_back(C);
  if (!Fitting.empty()) {
    Candidates = std::move(Fitting);
    HaveFit = true;
  }
  (void)HaveFit;
  for (const Candidate &C : Candidates) {
    const double Eff = microkernelEfficiency(Shape, C.MB, C.NB, C.KB);
    const int64_t MBlocks = ceilDiv(Shape.M, C.MB);
    const int64_t NBlocks = ceilDiv(Shape.N, C.NB);
    // Grid proposals: split M first; split N only when allowed and M
    // parallelism (with batch) cannot occupy the pool.
    for (int64_t MPN = 1; MPN <= std::min<int64_t>(MBlocks, Threads);
         ++MPN) {
      const int64_t MaxNPN =
          RequireFullRows
              ? 1
              : std::min<int64_t>(NBlocks,
                                  std::max<int64_t>(
                                      1, Threads / (Shape.Batch * MPN)));
      for (int64_t NPN = 1; NPN <= MaxNPN; NPN *= 2) {
        const double Cost =
            parallelPenalty(Shape, C, MPN, NPN, Threads) / Eff;
        if (Cost + 1e-12 < BestCost) {
          BestCost = Cost;
          Best.MB = C.MB;
          Best.NB = C.NB;
          Best.KB = C.KB;
          Best.MPN = MPN;
          Best.NPN = NPN;
        }
      }
    }
  }
  Best.BS = chooseBatchSize(
      Shape, Candidate{Best.MB, Best.NB, Best.KB}, Cache);
  Best.KSlices = 1;
  Best.derive(Shape);
  return Best;
}

} // namespace

BlockingParams chooseMatmulBlocking(const MatmulShape &Shape, int Threads,
                                    bool RequireFullRows,
                                    const CacheModel &Cache) {
  return chooseImpl(Shape, Threads, RequireFullRows, Cache, /*FixedMB=*/0,
                    /*FixedKB=*/0);
}

BlockingParams chooseMatmulBlockingFixedA(const MatmulShape &Shape,
                                          int Threads, int64_t FixedMB,
                                          int64_t FixedKB,
                                          bool RequireFullRows,
                                          const CacheModel &Cache) {
  return chooseImpl(Shape, Threads, RequireFullRows, Cache, FixedMB,
                    FixedKB);
}

} // namespace lower
} // namespace gc
