//===- bert.h - BERT encoder layer graphs (Fig. 9) --------------*- C++ -*-===//
///
/// \file
/// Builder for a full BERT encoder layer as one Graph IR program: QKV
/// projections, multi-head attention, output projection, residual +
/// layernorm, the GELU feed-forward block, and the final residual +
/// layernorm. Used by the Fig. 9 end-to-end benchmark (BERT-Large:
/// hidden 1024, 16 heads; the encoder stack is a sequence of identical
/// layers executed per inference).
///
/// Int8 mode quantizes the four projection matmuls and the two attention
/// batch matmuls (u8 activations, s8 weights); layernorm/residual glue
/// stays in f32 exactly as int8 BERT deployments do.
///
//===----------------------------------------------------------------------===//

#ifndef GC_WORKLOADS_BERT_H
#define GC_WORKLOADS_BERT_H

#include "graph/graph.h"

#include <cstdint>

namespace gc {
namespace workloads {

/// Configuration of one BERT encoder layer graph.
struct BertLayerSpec {
  int64_t Batch = 32;
  int64_t SeqLen = 128;
  int64_t Hidden = 1024; ///< BERT-Large
  int64_t Heads = 16;
  int64_t FfnDim = 4096; ///< 4 x hidden
  bool Int8 = false;
  uint64_t Seed = 1;
};

/// Builds one encoder layer. Input: hidden states [B*S, H] f32 (u8 when
/// Int8); mask [B, 1, 1, S] f32. Output: [B*S, H] f32 (u8 when Int8), so
/// layers chain by feeding one layer's output into the next.
graph::Graph buildBertLayer(const BertLayerSpec &Spec);

} // namespace workloads
} // namespace gc

#endif // GC_WORKLOADS_BERT_H
