//===- mlp.cpp - MLP workload graphs (Table 1) --------------------------------===//

#include "workloads/mlp.h"

#include "support/rng.h"
#include "support/str.h"

#include <cmath>

namespace gc {
namespace workloads {

using namespace graph;

std::vector<int64_t> mlp1Dims() { return {13, 512, 256, 128}; }

std::vector<int64_t> mlp2Dims() {
  return {479, 1024, 1024, 512, 256, 1};
}

namespace {

/// Creates a constant f32 tensor with uniform noise in [-Mag, Mag).
int64_t makeConstF32(Graph &G, std::vector<int64_t> Shape, float Mag,
                     Rng &R, const std::string &Name) {
  const int64_t Id =
      G.addTensor(DataType::F32, Shape, Name, TensorProperty::Constant);
  runtime::TensorData Data(DataType::F32, Shape);
  float *P = Data.dataAs<float>();
  for (int64_t I = 0, E = Data.numElements(); I < E; ++I)
    P[I] = R.uniform(-Mag, Mag);
  G.setConstantData(Id, std::move(Data));
  return Id;
}

/// Creates a constant s8 weight tensor.
int64_t makeConstS8(Graph &G, std::vector<int64_t> Shape, Rng &R,
                    const std::string &Name) {
  const int64_t Id =
      G.addTensor(DataType::S8, Shape, Name, TensorProperty::Constant);
  runtime::TensorData Data(DataType::S8, Shape);
  int8_t *P = Data.dataAs<int8_t>();
  for (int64_t I = 0, E = Data.numElements(); I < E; ++I)
    P[I] = static_cast<int8_t>(R.uniformInt(-127, 127));
  G.setConstantData(Id, std::move(Data));
  return Id;
}

} // namespace

Graph buildMlp(const MlpSpec &Spec) {
  Graph G;
  Rng R(Spec.Seed);
  const int64_t Layers = static_cast<int64_t>(Spec.LayerDims.size()) - 1;

  if (!Spec.Int8) {
    int64_t Cur =
        G.addTensor(DataType::F32, {Spec.Batch, Spec.LayerDims[0]}, "x");
    G.markInput(Cur);
    for (int64_t L = 0; L < Layers; ++L) {
      const int64_t K = Spec.LayerDims[static_cast<size_t>(L)];
      const int64_t N = Spec.LayerDims[static_cast<size_t>(L + 1)];
      const int64_t W = makeConstF32(G, {K, N}, 0.2f, R,
                                     formatString("w%lld", (long long)L));
      const int64_t B = makeConstF32(G, {N}, 0.1f, R,
                                     formatString("b%lld", (long long)L));
      int64_t Out = G.addOp(OpKind::MatMul, {Cur, W}, DataType::F32,
                            {Spec.Batch, N});
      Out = G.addOp(OpKind::Add, {Out, B}, DataType::F32, {Spec.Batch, N});
      if (Spec.ReluBetween && L + 1 < Layers)
        Out = G.addOp(OpKind::ReLU, {Out}, DataType::F32, {Spec.Batch, N});
      Cur = Out;
    }
    G.markOutput(Cur);
    return G;
  }

  // Quantized flavour (Fig. 5): u8 activations, s8 per-channel weights.
  int64_t Cur =
      G.addTensor(DataType::U8, {Spec.Batch, Spec.LayerDims[0]}, "x_q");
  G.markInput(Cur);
  double ActScale = 0.02;
  int64_t ActZp = 118; // asymmetric activations
  for (int64_t L = 0; L < Layers; ++L) {
    const int64_t K = Spec.LayerDims[static_cast<size_t>(L)];
    const int64_t N = Spec.LayerDims[static_cast<size_t>(L + 1)];
    // Dequantize the activation.
    const int64_t DqA = G.addOp(OpKind::Dequantize, {Cur}, DataType::F32,
                                {Spec.Batch, K},
                                {{"scale", ActScale}, {"zp", ActZp}});
    // Per-channel weight scales.
    std::vector<double> WScales(static_cast<size_t>(N));
    for (double &S : WScales)
      S = 0.004 + 0.004 * R.uniform(0.0f, 1.0f);
    const int64_t W = makeConstS8(G, {K, N}, R,
                                  formatString("w%lld_q", (long long)L));
    const int64_t DqW = G.addOp(
        OpKind::Dequantize, {W}, DataType::F32, {K, N},
        {{"scales", WScales}, {"zp", int64_t(0)}, {"axis", int64_t(1)}});
    const int64_t B = makeConstF32(G, {N}, 0.2f, R,
                                   formatString("b%lld", (long long)L));
    int64_t Out = G.addOp(OpKind::MatMul, {DqA, DqW}, DataType::F32,
                          {Spec.Batch, N});
    Out = G.addOp(OpKind::Add, {Out, B}, DataType::F32, {Spec.Batch, N});
    if (Spec.ReluBetween && L + 1 < Layers)
      Out = G.addOp(OpKind::ReLU, {Out}, DataType::F32, {Spec.Batch, N});
    // Requantize for the next layer / the output. Scale grows with the
    // reduction depth so values stay in range.
    const double OutScale = 0.02 * std::sqrt(static_cast<double>(K));
    const int64_t OutZp = 128;
    Out = G.addOp(OpKind::Quantize, {Out}, DataType::U8, {Spec.Batch, N},
                  {{"scale", OutScale}, {"zp", OutZp}});
    Cur = Out;
    ActScale = OutScale;
    ActZp = OutZp;
  }
  G.markOutput(Cur);
  return G;
}

Graph buildSingleMatmul(int64_t Batch, int64_t K, int64_t N, bool Int8,
                        uint64_t Seed) {
  MlpSpec Spec;
  Spec.Batch = Batch;
  Spec.LayerDims = {K, N};
  Spec.Int8 = Int8;
  Spec.ReluBetween = false;
  Spec.Seed = Seed;
  return buildMlp(Spec);
}

} // namespace workloads
} // namespace gc
