//===- mha.cpp - Multi-head attention workload graphs -------------------------===//

#include "workloads/mha.h"

#include "support/common.h"

#include <cmath>

namespace gc {
namespace workloads {

using namespace graph;

MhaSpec mhaTableSpec(int Row, int64_t Batch, bool Int8) {
  MhaSpec Spec;
  Spec.Batch = Batch;
  Spec.Int8 = Int8;
  switch (Row) {
  case 1: // MHA-1: seq 128, hidden 768, 8 heads
    Spec.SeqLen = 128;
    Spec.Heads = 8;
    Spec.HeadDim = 768 / 8;
    break;
  case 2: // MHA-2: seq 128, hidden 768, 12 heads
    Spec.SeqLen = 128;
    Spec.Heads = 12;
    Spec.HeadDim = 768 / 12;
    break;
  case 3: // MHA-3: seq 384, hidden 1024, 8 heads
    Spec.SeqLen = 384;
    Spec.Heads = 8;
    Spec.HeadDim = 1024 / 8;
    break;
  case 4: // MHA-4: seq 512, hidden 1024, 16 heads
    Spec.SeqLen = 512;
    Spec.Heads = 16;
    Spec.HeadDim = 1024 / 16;
    break;
  default:
    fatalError("MHA table row must be 1..4");
  }
  return Spec;
}

Graph buildMha(const MhaSpec &Spec) {
  Graph G;
  const int64_t B = Spec.Batch, H = Spec.Heads, S = Spec.SeqLen,
                D = Spec.HeadDim;
  const std::vector<int64_t> Bhsd = {B, H, S, D};
  const std::vector<int64_t> Scores = {B, H, S, S};
  const double InvSqrtD = 1.0 / std::sqrt(static_cast<double>(D));

  // Scale constant (scalar).
  const int64_t ScaleC =
      G.addTensor(DataType::F32, {1}, "inv_sqrt_d", TensorProperty::Constant);
  {
    runtime::TensorData SD(DataType::F32, {1});
    SD.dataAs<float>()[0] = static_cast<float>(InvSqrtD);
    G.setConstantData(ScaleC, std::move(SD));
  }
  int64_t Mask = -1;
  if (Spec.WithMask) {
    Mask = G.addTensor(DataType::F32, {B, 1, 1, S}, "mask");
  }

  int64_t ScoresT;
  int64_t PForV;  // softmax output (possibly quantized)
  int64_t VIn;    // V operand of the second matmul

  if (!Spec.Int8) {
    const int64_t Q = G.addTensor(DataType::F32, Bhsd, "q");
    const int64_t K = G.addTensor(DataType::F32, Bhsd, "k");
    const int64_t V = G.addTensor(DataType::F32, Bhsd, "v");
    G.markInput(Q);
    G.markInput(K);
    G.markInput(V);
    if (Mask >= 0)
      G.markInput(Mask);
    ScoresT = G.addOp(OpKind::MatMul, {Q, K}, DataType::F32, Scores,
                      {{"transpose_b", int64_t(1)}});
    VIn = V;
  } else {
    // Symmetric quantization for the batched operands (zero zero-points;
    // see DESIGN.md: runtime-weight compensation is out of scope).
    const int64_t Q = G.addTensor(DataType::U8, Bhsd, "q_q");
    const int64_t K = G.addTensor(DataType::S8, Bhsd, "k_q");
    const int64_t V = G.addTensor(DataType::S8, Bhsd, "v_q");
    G.markInput(Q);
    G.markInput(K);
    G.markInput(V);
    if (Mask >= 0)
      G.markInput(Mask);
    const int64_t DqQ =
        G.addOp(OpKind::Dequantize, {Q}, DataType::F32, Bhsd,
                {{"scale", 0.02}, {"zp", int64_t(0)}});
    const int64_t DqK =
        G.addOp(OpKind::Dequantize, {K}, DataType::F32, Bhsd,
                {{"scale", 0.02}, {"zp", int64_t(0)}});
    ScoresT = G.addOp(OpKind::MatMul, {DqQ, DqK}, DataType::F32, Scores,
                      {{"transpose_b", int64_t(1)}});
    VIn = V;
  }

  // Binary ops between the two batched matmuls (§VII).
  int64_t Scaled =
      G.addOp(OpKind::Mul, {ScoresT, ScaleC}, DataType::F32, Scores);
  if (Mask >= 0)
    Scaled = G.addOp(OpKind::Add, {Scaled, Mask}, DataType::F32, Scores);
  const int64_t P = G.addOp(OpKind::Softmax, {Scaled}, DataType::F32,
                            Scores, {{"axis", int64_t(-1)}});

  int64_t Out;
  if (!Spec.Int8) {
    PForV = P;
    Out = G.addOp(OpKind::MatMul, {PForV, VIn}, DataType::F32, Bhsd);
  } else {
    // Requantize P (values in [0, 1]) and run the second matmul in int8.
    const int64_t PQ = G.addOp(OpKind::Quantize, {P}, DataType::U8, Scores,
                               {{"scale", 1.0 / 255.0}, {"zp", int64_t(0)}});
    const int64_t DqP =
        G.addOp(OpKind::Dequantize, {PQ}, DataType::F32, Scores,
                {{"scale", 1.0 / 255.0}, {"zp", int64_t(0)}});
    const int64_t DqV =
        G.addOp(OpKind::Dequantize, {VIn}, DataType::F32, Bhsd,
                {{"scale", 0.02}, {"zp", int64_t(0)}});
    Out = G.addOp(OpKind::MatMul, {DqP, DqV}, DataType::F32, Bhsd);
  }
  G.markOutput(Out);
  return G;
}

} // namespace workloads
} // namespace gc
