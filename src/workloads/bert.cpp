//===- bert.cpp - BERT encoder layer graphs -------------------------------------===//

#include "workloads/bert.h"

#include "support/common.h"
#include "support/rng.h"
#include "support/str.h"

#include <cmath>

namespace gc {
namespace workloads {

using namespace graph;

namespace {

int64_t makeConstF32(Graph &G, std::vector<int64_t> Shape, float Mag, Rng &R,
                     const std::string &Name) {
  const int64_t Id =
      G.addTensor(DataType::F32, Shape, Name, TensorProperty::Constant);
  runtime::TensorData Data(DataType::F32, Shape);
  float *P = Data.dataAs<float>();
  for (int64_t I = 0, E = Data.numElements(); I < E; ++I)
    P[I] = R.uniform(-Mag, Mag);
  G.setConstantData(Id, std::move(Data));
  return Id;
}

int64_t makeConstS8(Graph &G, std::vector<int64_t> Shape, Rng &R,
                    const std::string &Name) {
  const int64_t Id =
      G.addTensor(DataType::S8, Shape, Name, TensorProperty::Constant);
  runtime::TensorData Data(DataType::S8, Shape);
  int8_t *P = Data.dataAs<int8_t>();
  for (int64_t I = 0, E = Data.numElements(); I < E; ++I)
    P[I] = static_cast<int8_t>(R.uniformInt(-127, 127));
  G.setConstantData(Id, std::move(Data));
  return Id;
}

/// State threaded through the builder.
struct Builder {
  Graph &G;
  const BertLayerSpec &Spec;
  Rng R;
  int Counter = 0;

  std::string name(const char *Base) {
    return formatString("%s%d", Base, Counter++);
  }

  /// Dense projection: y[Rows, N] = x[Rows, K] * W + b. In Int8 mode the
  /// input must be u8 and the result is requantized to u8 when \p QuantOut.
  int64_t dense(int64_t X, int64_t Rows, int64_t K, int64_t N,
                double &ActScale, int64_t &ActZp, bool QuantOut) {
    if (!Spec.Int8) {
      const int64_t W = makeConstF32(G, {K, N}, 0.05f, R, name("w"));
      const int64_t B = makeConstF32(G, {N}, 0.05f, R, name("b"));
      int64_t Y = G.addOp(OpKind::MatMul, {X, W}, DataType::F32, {Rows, N});
      return G.addOp(OpKind::Add, {Y, B}, DataType::F32, {Rows, N});
    }
    const int64_t DqX = G.addOp(OpKind::Dequantize, {X}, DataType::F32,
                                {Rows, K},
                                {{"scale", ActScale}, {"zp", ActZp}});
    std::vector<double> WScales(static_cast<size_t>(N));
    for (double &S : WScales)
      S = 0.002 + 0.002 * R.uniform(0.0f, 1.0f);
    const int64_t W = makeConstS8(G, {K, N}, R, name("wq"));
    const int64_t DqW = G.addOp(
        OpKind::Dequantize, {W}, DataType::F32, {K, N},
        {{"scales", WScales}, {"zp", int64_t(0)}, {"axis", int64_t(1)}});
    const int64_t B = makeConstF32(G, {N}, 0.05f, R, name("b"));
    int64_t Y = G.addOp(OpKind::MatMul, {DqX, DqW}, DataType::F32,
                        {Rows, N});
    Y = G.addOp(OpKind::Add, {Y, B}, DataType::F32, {Rows, N});
    if (QuantOut) {
      ActScale = 0.02 * std::sqrt(static_cast<double>(K));
      ActZp = 128;
      Y = G.addOp(OpKind::Quantize, {Y}, DataType::U8, {Rows, N},
                  {{"scale", ActScale}, {"zp", ActZp}});
    }
    return Y;
  }

  /// [B*S, H] -> [B, Hh, S, D]
  int64_t toHeads(int64_t X, DataType Ty) {
    const int64_t B = Spec.Batch, S = Spec.SeqLen, H = Spec.Hidden;
    const int64_t Hh = Spec.Heads, D = H / Hh;
    const int64_t R4 = G.addOp(OpKind::Reshape, {X}, Ty, {B, S, Hh, D});
    return G.addOp(OpKind::Transpose, {R4}, Ty, {B, Hh, S, D},
                   {{"perm", std::vector<int64_t>{0, 2, 1, 3}}});
  }

  /// [B, Hh, S, D] -> [B*S, H]
  int64_t fromHeads(int64_t X, DataType Ty) {
    const int64_t B = Spec.Batch, S = Spec.SeqLen, H = Spec.Hidden;
    const int64_t Hh = Spec.Heads, D = H / Hh;
    const int64_t T = G.addOp(OpKind::Transpose, {X}, Ty, {B, S, Hh, D},
                              {{"perm", std::vector<int64_t>{0, 2, 1, 3}}});
    return G.addOp(OpKind::Reshape, {T}, Ty, {B * S, H});
  }

  int64_t layerNorm(int64_t X, int64_t Rows, int64_t H) {
    const int64_t Gamma = makeConstF32(G, {H}, 1.0f, R, name("ln_g"));
    const int64_t Beta = makeConstF32(G, {H}, 0.1f, R, name("ln_b"));
    return G.addOp(OpKind::LayerNorm, {X, Gamma, Beta}, DataType::F32,
                   {Rows, H}, {{"epsilon", 1e-5}});
  }
};

} // namespace

Graph buildBertLayer(const BertLayerSpec &Spec) {
  Graph G;
  Builder Bld{G, Spec, Rng(Spec.Seed)};
  const int64_t B = Spec.Batch, S = Spec.SeqLen, H = Spec.Hidden;
  const int64_t Hh = Spec.Heads, D = H / Hh;
  const int64_t Rows = B * S;
  const DataType ActTy = Spec.Int8 ? DataType::U8 : DataType::F32;

  const int64_t X = G.addTensor(ActTy, {Rows, H}, "hidden_in");
  const int64_t Mask = G.addTensor(DataType::F32, {B, 1, 1, S}, "mask");
  G.markInput(X);
  G.markInput(Mask);

  double ActScale = 0.02;
  int64_t ActZp = 0; // symmetric activations: batched int8 matmul support

  // ---- attention ----
  int64_t Q = Bld.dense(X, Rows, H, H, ActScale, ActZp, Spec.Int8);
  double QScale = ActScale;
  int64_t QZp = ActZp;
  ActScale = 0.02;
  ActZp = 0;
  int64_t K = Bld.dense(X, Rows, H, H, ActScale, ActZp, Spec.Int8);
  double KScale = ActScale;
  ActScale = 0.02;
  ActZp = 0;
  int64_t V = Bld.dense(X, Rows, H, H, ActScale, ActZp, Spec.Int8);
  double VScale = ActScale;

  // The projections emit u8 with zp 128 in int8 mode; attention needs
  // zero-point-free operands for the batched matmuls, so requantize
  // symmetric s8/u8.
  if (Spec.Int8) {
    const auto requant = [&](int64_t T, double FromScale, DataType ToTy,
                             double ToScale) {
      const int64_t Dq =
          G.addOp(OpKind::Dequantize, {T}, DataType::F32, {Rows, H},
                  {{"scale", FromScale}, {"zp", int64_t(128)}});
      return G.addOp(OpKind::Quantize, {Dq}, ToTy, {Rows, H},
                     {{"scale", ToScale}, {"zp", int64_t(0)}});
    };
    Q = requant(Q, QScale, DataType::U8, QScale);
    K = requant(K, KScale, DataType::S8, KScale);
    V = requant(V, VScale, DataType::S8, VScale);
    (void)QZp;
  }

  const DataType QTy = Spec.Int8 ? DataType::U8 : DataType::F32;
  const DataType KvTy = Spec.Int8 ? DataType::S8 : DataType::F32;
  const int64_t Qh = Bld.toHeads(Q, QTy);
  const int64_t Kh = Bld.toHeads(K, KvTy);
  const int64_t Vh = Bld.toHeads(V, KvTy);

  // Scaled dot-product attention core (as in buildMha).
  const std::vector<int64_t> Scores = {B, Hh, S, S};
  int64_t ScoresT;
  if (!Spec.Int8) {
    ScoresT = G.addOp(OpKind::MatMul, {Qh, Kh}, DataType::F32, Scores,
                      {{"transpose_b", int64_t(1)}});
  } else {
    const int64_t DqQ =
        G.addOp(OpKind::Dequantize, {Qh}, DataType::F32, {B, Hh, S, D},
                {{"scale", QScale}, {"zp", int64_t(0)}});
    const int64_t DqK =
        G.addOp(OpKind::Dequantize, {Kh}, DataType::F32, {B, Hh, S, D},
                {{"scale", KScale}, {"zp", int64_t(0)}});
    ScoresT = G.addOp(OpKind::MatMul, {DqQ, DqK}, DataType::F32, Scores,
                      {{"transpose_b", int64_t(1)}});
  }
  const int64_t ScaleC = G.addTensor(DataType::F32, {1}, "inv_sqrt_d",
                                     TensorProperty::Constant);
  {
    runtime::TensorData SD(DataType::F32, {1});
    SD.dataAs<float>()[0] =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(D)));
    G.setConstantData(ScaleC, std::move(SD));
  }
  int64_t Scaled =
      G.addOp(OpKind::Mul, {ScoresT, ScaleC}, DataType::F32, Scores);
  Scaled = G.addOp(OpKind::Add, {Scaled, Mask}, DataType::F32, Scores);
  const int64_t P = G.addOp(OpKind::Softmax, {Scaled}, DataType::F32,
                            Scores, {{"axis", int64_t(-1)}});

  int64_t Ctx;
  if (!Spec.Int8) {
    Ctx = G.addOp(OpKind::MatMul, {P, Vh}, DataType::F32, {B, Hh, S, D});
  } else {
    const int64_t PQ = G.addOp(OpKind::Quantize, {P}, DataType::U8, Scores,
                               {{"scale", 1.0 / 255.0}, {"zp", int64_t(0)}});
    const int64_t DqP =
        G.addOp(OpKind::Dequantize, {PQ}, DataType::F32, Scores,
                {{"scale", 1.0 / 255.0}, {"zp", int64_t(0)}});
    const int64_t DqV =
        G.addOp(OpKind::Dequantize, {Vh}, DataType::F32, {B, Hh, S, D},
                {{"scale", VScale}, {"zp", int64_t(0)}});
    Ctx = G.addOp(OpKind::MatMul, {DqP, DqV}, DataType::F32,
                  {B, Hh, S, D});
  }

  int64_t CtxFlat = Bld.fromHeads(Ctx, DataType::F32);
  if (Spec.Int8) {
    CtxFlat = G.addOp(OpKind::Quantize, {CtxFlat}, DataType::U8, {Rows, H},
                      {{"scale", 0.02}, {"zp", int64_t(0)}});
    ActScale = 0.02;
    ActZp = 0;
  }

  // Output projection + residual + layernorm (glue stays f32).
  int64_t Attn = Bld.dense(CtxFlat, Rows, H, H, ActScale, ActZp,
                           /*QuantOut=*/false);
  // Residual: the f32 view of the layer input.
  int64_t XF = X;
  if (Spec.Int8)
    XF = G.addOp(OpKind::Dequantize, {X}, DataType::F32, {Rows, H},
                 {{"scale", 0.02}, {"zp", int64_t(0)}});
  int64_t Res1 = G.addOp(OpKind::Add, {Attn, XF}, DataType::F32, {Rows, H});
  int64_t Ln1 = Bld.layerNorm(Res1, Rows, H);

  // ---- feed-forward ----
  int64_t FfnIn = Ln1;
  double FfnScale = 0.02;
  int64_t FfnZp = 0;
  if (Spec.Int8)
    FfnIn = G.addOp(OpKind::Quantize, {Ln1}, DataType::U8, {Rows, H},
                    {{"scale", FfnScale}, {"zp", FfnZp}});
  int64_t Ffn1 = Bld.dense(FfnIn, Rows, H, Spec.FfnDim, FfnScale, FfnZp,
                           /*QuantOut=*/false);
  int64_t Act = G.addOp(OpKind::GELU, {Ffn1}, DataType::F32,
                        {Rows, Spec.FfnDim});
  int64_t FfnMid = Act;
  double MidScale = 0.05;
  int64_t MidZp = 0;
  if (Spec.Int8)
    FfnMid = G.addOp(OpKind::Quantize, {Act}, DataType::U8,
                     {Rows, Spec.FfnDim},
                     {{"scale", MidScale}, {"zp", MidZp}});
  int64_t Ffn2 = Bld.dense(FfnMid, Rows, Spec.FfnDim, H, MidScale, MidZp,
                           /*QuantOut=*/false);
  int64_t Res2 = G.addOp(OpKind::Add, {Ffn2, Ln1}, DataType::F32, {Rows, H});
  int64_t Out = Bld.layerNorm(Res2, Rows, H);
  if (Spec.Int8)
    Out = G.addOp(OpKind::Quantize, {Out}, DataType::U8, {Rows, H},
                  {{"scale", 0.02}, {"zp", int64_t(0)}});
  G.markOutput(Out);
  return G;
}

} // namespace workloads
} // namespace gc
