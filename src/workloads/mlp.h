//===- mlp.h - MLP workload graphs (Table 1) --------------------*- C++ -*-===//
///
/// \file
/// Builders for the paper's MLP test graphs: chains of matmul + bias +
/// ReLU layers with the DLRM (MLPerf) layer dimensions of Table 1, in FP32
/// and in the statically-quantized Int8 form of Fig. 5 (u8 asymmetric
/// activations, s8 per-channel symmetric weights). Weights are seeded
/// synthetic data (DESIGN.md substitution #6).
///
//===----------------------------------------------------------------------===//

#ifndef GC_WORKLOADS_MLP_H
#define GC_WORKLOADS_MLP_H

#include "graph/graph.h"

#include <cstdint>
#include <vector>

namespace gc {
namespace workloads {

/// Configuration of one MLP test graph.
struct MlpSpec {
  int64_t Batch = 32;
  /// Layer widths, e.g. {13, 512, 256, 128} for MLP-1.
  std::vector<int64_t> LayerDims;
  /// Build the quantized (Fig. 5) flavour.
  bool Int8 = false;
  /// Apply ReLU after every layer except the last.
  bool ReluBetween = true;
  uint64_t Seed = 1;
};

/// Table 1 MLP-1 layer dims: 13x512x256x128.
std::vector<int64_t> mlp1Dims();
/// Table 1 MLP-2 layer dims: 479x1024x1024x512x256x1.
std::vector<int64_t> mlp2Dims();

/// Builds the MLP graph. FP32: input f32 [B, d0], output f32 [B, dN].
/// Int8: input u8 [B, d0] with every layer expressed as
/// dequantize -> matmul(f32) -> bias -> relu -> quantize (the form the
/// low-precision pass consumes); output u8 [B, dN].
graph::Graph buildMlp(const MlpSpec &Spec);

/// Builds a single-matmul graph (one MLP layer without activation) used by
/// the Fig. 7 per-kernel comparison. \p K and \p N are the weight dims.
graph::Graph buildSingleMatmul(int64_t Batch, int64_t K, int64_t N,
                               bool Int8, uint64_t Seed);

} // namespace workloads
} // namespace gc

#endif // GC_WORKLOADS_MLP_H
