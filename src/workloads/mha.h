//===- mha.h - Multi-head attention workload graphs (Table 1) ----*- C++ -*-===//
///
/// \file
/// Builder for the paper's MHA test graphs: the scaled dot-product
/// attention core (two batched matmuls with a softmax and binary ops
/// between them, §VII), with the BERT sequence-length / hidden-size /
/// head-count combinations of Table 1.
///
/// FP32:   scores = Q x K^T * (1/sqrt(d)) + mask; P = softmax(scores);
///         O = P x V, all on [B, H, S, D] tensors.
/// Int8:   Q is u8 and K/V are s8 (symmetric, zero zero-points -- the
///         batched-weight configuration supported by the low-precision
///         pass); the softmax output P requantizes to u8 before P x V.
///
//===----------------------------------------------------------------------===//

#ifndef GC_WORKLOADS_MHA_H
#define GC_WORKLOADS_MHA_H

#include "graph/graph.h"

#include <cstdint>

namespace gc {
namespace workloads {

/// Configuration of one MHA test graph.
struct MhaSpec {
  int64_t Batch = 32;
  int64_t Heads = 8;
  int64_t SeqLen = 128;
  int64_t HeadDim = 96; ///< hidden size / heads
  bool Int8 = false;
  bool WithMask = true;
  uint64_t Seed = 1;
};

/// Builds the MHA spec for one of Table 1's rows (1-based index 1..4)
/// at the given batch size.
MhaSpec mhaTableSpec(int Row, int64_t Batch, bool Int8);

/// Builds the attention graph. Inputs: Q, K, V as [B, H, S, D]
/// (f32 or u8/s8/s8) plus optionally mask [B, 1, 1, S] (f32).
/// Output: [B, H, S, D] f32.
graph::Graph buildMha(const MhaSpec &Spec);

} // namespace workloads
} // namespace gc

#endif // GC_WORKLOADS_MHA_H
