//===- dlrm.h - DLRM MLP workloads (Fig. 9) ---------------------*- C++ -*-===//
///
/// \file
/// The DLRM (MLPerf) configuration behind Table 1 and Fig. 9: a bottom MLP
/// (13-512-256-128) over the dense features and a top MLP
/// (479-1024-1024-512-256-1) over the concatenated feature interactions.
/// The embedding lookups and the feature-interaction concat run in the
/// framework in the paper's setup (IPEX offloads only the MLPs), so the
/// e2e bench times the two MLP partitions plus identical glue on both
/// sides (DESIGN.md substitution #5).
///
//===----------------------------------------------------------------------===//

#ifndef GC_WORKLOADS_DLRM_H
#define GC_WORKLOADS_DLRM_H

#include "workloads/mlp.h"

namespace gc {
namespace workloads {

/// Bottom MLP spec (ReLU between layers and after the last, as in DLRM).
inline MlpSpec dlrmBottomSpec(int64_t Batch, bool Int8, uint64_t Seed = 51) {
  MlpSpec Spec;
  Spec.Batch = Batch;
  Spec.LayerDims = mlp1Dims(); // 13-512-256-128
  Spec.Int8 = Int8;
  Spec.Seed = Seed;
  return Spec;
}

/// Top MLP spec (479-1024-1024-512-256-1; final layer feeds a sigmoid in
/// the framework).
inline MlpSpec dlrmTopSpec(int64_t Batch, bool Int8, uint64_t Seed = 52) {
  MlpSpec Spec;
  Spec.Batch = Batch;
  Spec.LayerDims = mlp2Dims();
  Spec.Int8 = Int8;
  Spec.Seed = Seed;
  return Spec;
}

} // namespace workloads
} // namespace gc

#endif // GC_WORKLOADS_DLRM_H
