//===- cleanup.cpp - CSE, DCE, constant folding ----------------------------------===//
//
// The general compiler optimizations the Graph IR module applies alongside
// the domain-specific passes (§V: "the general compiler optimizations like
// common subexpression elimination (CSE), dead code elimination, and
// constant folding").
//
//===----------------------------------------------------------------------===//

#include "graph/graph.h"
#include "graph/reference.h"
#include "passes/pass.h"
#include "support/str.h"

#include <unordered_map>
#include <unordered_set>

namespace gc {
namespace passes {

using namespace graph;

namespace {

//===----------------------------------------------------------------------===//
// CSE
//===----------------------------------------------------------------------===//

/// Structural key of an op: kind + attrs + input ids. Deterministic because
/// AttrMap is ordered.
std::string opKey(const Op &O) {
  std::string Key = opKindName(O.kind());
  for (int64_t In : O.inputs())
    Key += formatString(",%lld", (long long)In);
  Key += "|";
  for (const auto &[Name, Value] : O.attrs()) {
    Key += Name + "=";
    if (const int64_t *V = std::get_if<int64_t>(&Value))
      Key += formatString("%lld", (long long)*V);
    else if (const double *V = std::get_if<double>(&Value))
      Key += formatString("%.17g", *V);
    else if (const std::string *V = std::get_if<std::string>(&Value))
      Key += *V;
    else if (const auto *V = std::get_if<std::vector<int64_t>>(&Value))
      Key += shapeToString(*V);
    else if (const auto *V = std::get_if<std::vector<double>>(&Value)) {
      for (double D : *V)
        Key += formatString("%.17g;", D);
    }
    Key += ";";
  }
  return Key;
}

class CsePass : public Pass {
public:
  const char *name() const override { return "cse"; }

  bool run(Graph &G, const PassOptions &) override {
    bool Changed = false;
    std::unordered_map<std::string, int64_t> Seen; // key -> op id
    for (int64_t OpId : G.topologicalOrder()) {
      const Op &O = G.op(OpId);
      // Never CSE structural ops or multi-output ops.
      if (O.kind() == OpKind::FusedOp || O.numOutputs() != 1)
        continue;
      const std::string Key = opKey(O);
      auto [It, Inserted] = Seen.emplace(Key, OpId);
      if (Inserted)
        continue;
      // Duplicate: reuse the earlier op's output.
      G.replaceAllUses(O.output(0), G.op(It->second).output(0));
      G.eraseOp(OpId);
      Changed = true;
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

class DcePass : public Pass {
public:
  const char *name() const override { return "dce"; }

  bool run(Graph &G, const PassOptions &) override {
    bool Changed = false;
    // Mark ops reaching outputs.
    std::unordered_set<int64_t> LiveOps;
    std::vector<int64_t> Worklist;
    for (int64_t Out : G.outputs()) {
      const int64_t P = G.producerOf(Out);
      if (P >= 0 && LiveOps.insert(P).second)
        Worklist.push_back(P);
    }
    while (!Worklist.empty()) {
      const int64_t OpId = Worklist.back();
      Worklist.pop_back();
      for (int64_t In : G.op(OpId).inputs()) {
        const int64_t P = G.producerOf(In);
        if (P >= 0 && LiveOps.insert(P).second)
          Worklist.push_back(P);
      }
    }
    for (int64_t OpId : G.opIds()) {
      if (LiveOps.count(OpId))
        continue;
      G.eraseOp(OpId);
      Changed = true;
    }
    // Drop orphan tensors (no producer, no consumers, not graph boundary).
    for (int64_t TId : G.tensorIds()) {
      if (G.producerOf(TId) >= 0 || !G.consumersOf(TId).empty() ||
          G.isInput(TId) || G.isOutput(TId))
        continue;
      G.eraseTensor(TId);
      Changed = true;
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

class ConstantFoldPass : public Pass {
public:
  const char *name() const override { return "constant-fold"; }

  bool run(Graph &G, const PassOptions &Opts) override {
    bool Changed = false;
    for (int64_t OpId : G.topologicalOrder()) {
      const Op &O = G.op(OpId);
      if (O.kind() == OpKind::FusedOp || O.numOutputs() != 1)
        continue;
      // Quantization ops carry structure consumed by the low-precision
      // rewrite and the template lowering; folding them away would turn
      // int8 matmuls back into f32.
      if (O.kind() == OpKind::Quantize || O.kind() == OpKind::Dequantize)
        continue;
      if (G.isOutput(O.output(0)))
        continue; // keep producing ops for graph outputs
      // All inputs constant with data available?
      bool AllConst = !O.inputs().empty();
      std::vector<const runtime::TensorData *> Inputs;
      for (int64_t In : O.inputs()) {
        const runtime::TensorData *Data = G.constantData(In);
        if (!Data) {
          AllConst = false;
          break;
        }
        Inputs.push_back(Data);
      }
      if (!AllConst)
        continue;
      // Leave big results to the fold function (constant weight
      // preprocessing executes them at first run).
      const LogicalTensor &OutT = G.tensor(O.output(0));
      if (OutT.numElements() > Opts.FoldMaxElements)
        continue;
      std::vector<runtime::TensorData> Outs = evalOpReference(G, O, Inputs);
      const int64_t OutId = O.output(0);
      G.eraseOp(OpId);
      G.setConstantData(OutId, std::move(Outs[0]));
      Changed = true;
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> createCsePass() { return std::make_unique<CsePass>(); }

std::unique_ptr<Pass> createDcePass() { return std::make_unique<DcePass>(); }

std::unique_ptr<Pass> createConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}

} // namespace passes
} // namespace gc
