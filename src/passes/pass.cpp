//===- pass.cpp - Graph IR pass infrastructure ----------------------------------===//

#include "passes/pass.h"

#include "support/common.h"
#include "support/env.h"
#include "verify/verify.h"

#include <cstdio>

namespace gc {
namespace passes {

Status PassManager::run(graph::Graph &G) {
  Changed.clear();
  for (const auto &P : Pipeline) {
    const bool DidChange = P->run(G, Opts);
    if (DidChange)
      Changed.push_back(P->name());
    const std::string Err = G.verify();
    if (!Err.empty()) {
      if (verboseAtLeast(1))
        std::fprintf(stderr,
                     "graph verification failed after pass %s: %s\n%s\n",
                     P->name(), Err.c_str(), G.toString().c_str());
      return Status::error(StatusCode::Internal,
                           std::string("pass '") + P->name() +
                               "' produced an invalid graph: " + Err);
    }
    if (verify::verifyLevel() >= verify::VerifyLevel::Passes)
      if (Status S = verify::verifyGraph(G, P->name()); !S.isOk())
        return S;
    if (verboseAtLeast(2))
      std::fprintf(stderr, "=== after %s (%s) ===\n%s\n", P->name(),
                   DidChange ? "changed" : "no change",
                   G.toString().c_str());
  }
  return Status::ok();
}

std::vector<std::unique_ptr<Pass>>
buildStandardPipeline(const PassOptions &Opts) {
  std::vector<std::unique_ptr<Pass>> Pipeline;
  Pipeline.push_back(createDecomposePass());
  Pipeline.push_back(createCsePass());
  // Low precision must see the Dequantize -> MatMul -> Quantize structure
  // before constant folding can collapse the weight dequantize.
  if (Opts.EnableLowPrecision)
    Pipeline.push_back(createLowPrecisionPass());
  Pipeline.push_back(createConstantFoldPass());
  Pipeline.push_back(createDcePass());
  // The fusion pass always runs: with fine-grain fusion disabled it still
  // wraps every op as a singleton region so lowering sees a uniform graph.
  Pipeline.push_back(createFusionPass());
  if (Opts.EnableLayoutPropagation)
    Pipeline.push_back(createLayoutPropagationPass());
  Pipeline.push_back(createDcePass());
  return Pipeline;
}

} // namespace passes
} // namespace gc
