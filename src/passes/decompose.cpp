//===- decompose.cpp - Complex-op decomposition ---------------------------------===//
//
// Expands Complex OPs into graphs of basic DNN ops (§V: "Graph IR
// optimization module first decomposes complex OPs into basic DNN OPs"),
// which keeps every later pass a rewrite over a small op vocabulary and
// feeds the fine-grain fusion pass op chains it can commit at anchors.
//
//===----------------------------------------------------------------------===//

#include "graph/graph.h"
#include "passes/pass.h"
#include "support/common.h"

#include <cmath>

namespace gc {
namespace passes {

using namespace graph;

namespace {

/// Creates a constant scalar tensor holding \p Value.
int64_t makeScalarConst(Graph &G, float Value, const std::string &Name) {
  const int64_t Id =
      G.addTensor(DataType::F32, {1}, Name, TensorProperty::Constant);
  runtime::TensorData Data(DataType::F32, {1});
  Data.dataAs<float>()[0] = Value;
  G.setConstantData(Id, std::move(Data));
  return Id;
}

class DecomposePass : public Pass {
public:
  const char *name() const override { return "decompose"; }

  bool run(Graph &G, const PassOptions &Opts) override {
    bool Changed = false;
    // Iterate to a fixed point: decompositions never emit complex ops, so
    // one sweep over a snapshot of op ids suffices.
    for (int64_t OpId : G.topologicalOrder()) {
      Op &O = G.op(OpId);
      switch (O.kind()) {
      case OpKind::Softmax:
        decomposeSoftmax(G, O, Opts.FastSoftmax);
        break;
      case OpKind::GELU:
        decomposeGelu(G, O);
        break;
      case OpKind::BiasAdd:
        decomposeBiasAdd(G, O);
        break;
      case OpKind::BatchNorm:
        decomposeBatchNorm(G, O);
        break;
      case OpKind::LayerNorm:
        decomposeLayerNorm(G, O);
        break;
      default:
        continue;
      }
      G.eraseOp(OpId);
      Changed = true;
    }
    return Changed;
  }

private:
  /// softmax(x) over the last axis. Fast mode (paper §VII) skips the max
  /// subtraction: exp(x) / rowsum(exp(x)). Stable mode subtracts the row
  /// max first.
  void decomposeSoftmax(Graph &G, const Op &O, bool Fast) {
    const int64_t X = O.input(0);
    const LogicalTensor &XT = G.tensor(X);
    std::vector<int64_t> RowShape = XT.Shape;
    RowShape.back() = 1;
    int64_t Cur = X;
    if (!Fast) {
      const int64_t RowMax =
          G.addOp(OpKind::ReduceMax, {Cur}, DataType::F32, RowShape,
                  {{"axes", std::vector<int64_t>{-1}},
                   {"keep_dims", int64_t(1)}});
      Cur = G.addOp(OpKind::Sub, {Cur, RowMax}, DataType::F32, XT.Shape);
    }
    const int64_t ExpX =
        G.addOp(OpKind::Exp, {Cur}, DataType::F32, XT.Shape);
    const int64_t RowSum =
        G.addOp(OpKind::ReduceSum, {ExpX}, DataType::F32, RowShape,
                {{"axes", std::vector<int64_t>{-1}},
                 {"keep_dims", int64_t(1)}});
    const int64_t Result =
        G.addOp(OpKind::Div, {ExpX, RowSum}, DataType::F32, XT.Shape);
    G.replaceAllUses(O.output(0), Result);
  }

  /// gelu(x) = 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))), expanded
  /// into the basic-op chain the fusion pass later re-fuses.
  void decomposeGelu(Graph &G, const Op &O) {
    const int64_t X = O.input(0);
    const auto &Shape = G.tensor(X).Shape;
    const int64_t C1 = makeScalarConst(G, 0.044715f, "gelu_c");
    const int64_t C2 =
        makeScalarConst(G, 0.7978845608028654f, "gelu_sqrt_2_over_pi");
    const int64_t Half = makeScalarConst(G, 0.5f, "gelu_half");
    const int64_t One = makeScalarConst(G, 1.0f, "gelu_one");

    const int64_t X2 = G.addOp(OpKind::Square, {X}, DataType::F32, Shape);
    const int64_t X3 = G.addOp(OpKind::Mul, {X2, X}, DataType::F32, Shape);
    const int64_t Scaled =
        G.addOp(OpKind::Mul, {X3, C1}, DataType::F32, Shape);
    const int64_t Sum = G.addOp(OpKind::Add, {X, Scaled}, DataType::F32,
                                Shape);
    const int64_t Inner =
        G.addOp(OpKind::Mul, {Sum, C2}, DataType::F32, Shape);
    const int64_t Th = G.addOp(OpKind::Tanh, {Inner}, DataType::F32, Shape);
    const int64_t OnePlus =
        G.addOp(OpKind::Add, {Th, One}, DataType::F32, Shape);
    const int64_t XHalf =
        G.addOp(OpKind::Mul, {X, Half}, DataType::F32, Shape);
    const int64_t Result =
        G.addOp(OpKind::Mul, {XHalf, OnePlus}, DataType::F32, Shape);
    G.replaceAllUses(O.output(0), Result);
  }

  void decomposeBiasAdd(Graph &G, const Op &O) {
    const int64_t Result =
        G.addOp(OpKind::Add, {O.input(0), O.input(1)}, DataType::F32,
                G.tensor(O.output(0)).Shape);
    G.replaceAllUses(O.output(0), Result);
  }

  /// Inference batchnorm with constant statistics folds to one affine:
  /// y = x * (gamma / sqrt(var + eps)) + (beta - mean * scale).
  void decomposeBatchNorm(Graph &G, const Op &O) {
    const int64_t X = O.input(0);
    const runtime::TensorData *Gamma = G.constantData(O.input(1));
    const runtime::TensorData *Beta = G.constantData(O.input(2));
    const runtime::TensorData *Mean = G.constantData(O.input(3));
    const runtime::TensorData *Var = G.constantData(O.input(4));
    if (!Gamma || !Beta || !Mean || !Var)
      fatalError("inference batchnorm requires constant statistics");
    const double Eps = O.getAttrFloat("epsilon", 1e-5);
    const int64_t C = Gamma->numElements();

    runtime::TensorData ScaleData(DataType::F32, {C});
    runtime::TensorData ShiftData(DataType::F32, {C});
    for (int64_t I = 0; I < C; ++I) {
      const double S =
          Gamma->dataAs<float>()[I] /
          std::sqrt(static_cast<double>(Var->dataAs<float>()[I]) + Eps);
      ScaleData.dataAs<float>()[I] = static_cast<float>(S);
      ShiftData.dataAs<float>()[I] = static_cast<float>(
          Beta->dataAs<float>()[I] - Mean->dataAs<float>()[I] * S);
    }
    const int64_t Scale = G.addTensor(DataType::F32, {C}, "bn_scale",
                                      TensorProperty::Constant);
    G.setConstantData(Scale, std::move(ScaleData));
    const int64_t Shift = G.addTensor(DataType::F32, {C}, "bn_shift",
                                      TensorProperty::Constant);
    G.setConstantData(Shift, std::move(ShiftData));

    const auto &Shape = G.tensor(X).Shape;
    const int64_t Scaled =
        G.addOp(OpKind::Mul, {X, Scale}, DataType::F32, Shape);
    const int64_t Result =
        G.addOp(OpKind::Add, {Scaled, Shift}, DataType::F32, Shape);
    G.replaceAllUses(O.output(0), Result);
  }

  /// layernorm over the last axis, expanded to reductions + elementwise.
  void decomposeLayerNorm(Graph &G, const Op &O) {
    const int64_t X = O.input(0);
    const int64_t Gamma = O.input(1);
    const int64_t Beta = O.input(2);
    const auto &Shape = G.tensor(X).Shape;
    const int64_t C = Shape.back();
    const double Eps = O.getAttrFloat("epsilon", 1e-5);
    std::vector<int64_t> RowShape = Shape;
    RowShape.back() = 1;

    const int64_t InvC =
        makeScalarConst(G, 1.0f / static_cast<float>(C), "ln_inv_c");
    const int64_t EpsC =
        makeScalarConst(G, static_cast<float>(Eps), "ln_eps");

    const AttrMap ReduceAttrs = {{"axes", std::vector<int64_t>{-1}},
                                 {"keep_dims", int64_t(1)}};
    const int64_t Sum =
        G.addOp(OpKind::ReduceSum, {X}, DataType::F32, RowShape, ReduceAttrs);
    const int64_t MeanV =
        G.addOp(OpKind::Mul, {Sum, InvC}, DataType::F32, RowShape);
    const int64_t Centered =
        G.addOp(OpKind::Sub, {X, MeanV}, DataType::F32, Shape);
    const int64_t Sq =
        G.addOp(OpKind::Square, {Centered}, DataType::F32, Shape);
    const int64_t SqSum = G.addOp(OpKind::ReduceSum, {Sq}, DataType::F32,
                                  RowShape, ReduceAttrs);
    const int64_t VarV =
        G.addOp(OpKind::Mul, {SqSum, InvC}, DataType::F32, RowShape);
    const int64_t VarEps =
        G.addOp(OpKind::Add, {VarV, EpsC}, DataType::F32, RowShape);
    const int64_t Std =
        G.addOp(OpKind::Sqrt, {VarEps}, DataType::F32, RowShape);
    const int64_t Inv =
        G.addOp(OpKind::Reciprocal, {Std}, DataType::F32, RowShape);
    const int64_t Normed =
        G.addOp(OpKind::Mul, {Centered, Inv}, DataType::F32, Shape);
    const int64_t Scaled =
        G.addOp(OpKind::Mul, {Normed, Gamma}, DataType::F32, Shape);
    const int64_t Result =
        G.addOp(OpKind::Add, {Scaled, Beta}, DataType::F32, Shape);
    G.replaceAllUses(O.output(0), Result);
  }
};

} // namespace

std::unique_ptr<Pass> createDecomposePass() {
  return std::make_unique<DecomposePass>();
}

} // namespace passes
} // namespace gc
