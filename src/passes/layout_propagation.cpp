//===- layout_propagation.cpp - Blocked layout propagation (§V) ------------------===//
//
// Chooses the blocked layouts Tunable OPs want and propagates them across
// the graph of fused regions:
//  * each tunable region gets template parameters from the heuristic
//    (recorded as blk_* attrs so lowering is deterministic),
//  * when one tunable's output feeds exactly one other tunable, the
//    consumer adopts the producer's output tile sizes as its A-format
//    blocks and the intermediate tensor becomes blocked (no reorder),
//  * constant weights get an explicit Reorder op to B-format (VNNI for
//    s8); being constant-reachable it lands in the fold function
//    ("prepacked weight"),
//  * plain runtime matmul inputs keep plain layout -- the fused-op
//    template packs them as pre-ops at an anchor,
//  * graph inputs/outputs always stay plain (§V: "keep the graph
//    input/output tensor as a plain layout").
//
// The pass also aligns parallel grids of negotiated producer/consumer
// pairs (same MPN, NPN = 1) and marks the consumer "merge_prev": the
// coarse-grain fusion decision that the lowering driver turns into
// mergeable Tensor IR loop nests (§V coarse-grain optimization).
//
//===----------------------------------------------------------------------===//

#include "graph/graph.h"
#include "lower/blocking.h"
#include "passes/pass.h"
#include "support/common.h"

#include <algorithm>

namespace gc {
namespace passes {

using namespace graph;

namespace {

/// Finds the (single) matmul op inside a region subgraph; -1 if none.
int64_t findMatMul(const Graph &Sub) {
  for (int64_t OpId : Sub.topologicalOrder())
    if (Sub.op(OpId).kind() == OpKind::MatMul)
      return OpId;
  return -1;
}

/// Index of \p TensorId in \p List, or -1.
int64_t indexOf(const std::vector<int64_t> &List, int64_t TensorId) {
  auto It = std::find(List.begin(), List.end(), TensorId);
  return It == List.end() ? -1 : static_cast<int64_t>(It - List.begin());
}

class LayoutPropagationPass : public Pass {
public:
  const char *name() const override { return "layout-propagation"; }

  bool run(Graph &G, const PassOptions &Opts) override {
    bool Changed = false;
    for (int64_t OpId : G.topologicalOrder()) {
      const Op &O = G.op(OpId);
      if (O.kind() != OpKind::FusedOp || !O.getAttrInt("tunable", 0))
        continue;
      Changed |= assignLayouts(G, OpId, Opts);
    }
    return Changed;
  }

private:
  bool assignLayouts(Graph &G, int64_t FusedId, const PassOptions &Opts) {
    Op &FO = G.op(FusedId);
    Graph *Sub = FO.subgraph();
    assert(Sub && "tunable region without subgraph");
    const int64_t MmId = findMatMul(*Sub);
    if (MmId < 0)
      return false;
    const Op &Mm = Sub->op(MmId);
    assert(Mm.getAttrInt("transpose_a", 0) == 0 &&
           "transposed A operands are packed via transpose_b on the other "
           "side in this reproduction");

    // Problem shape from the subgraph tensors.
    const LogicalTensor &AT = Sub->tensor(Mm.input(0));
    const LogicalTensor &OutT = Sub->tensor(Mm.output(0));
    lower::MatmulShape Shape;
    Shape.M = OutT.Shape[OutT.rank() - 2];
    Shape.N = OutT.Shape[OutT.rank() - 1];
    Shape.K = AT.Shape[AT.rank() - 1];
    Shape.Batch = 1;
    for (int64_t D = 0; D + 2 < OutT.rank(); ++D)
      Shape.Batch *= OutT.Shape[static_cast<size_t>(D)];
    Shape.ADtype = AT.Ty == DataType::U8 ? DataType::U8 : DataType::F32;
    const bool RequireFullRows = FO.getAttrInt("needs_full_rows", 0) != 0;

    // Locate the outer tensors behind the matmul operands.
    const int64_t AIdx = indexOf(Sub->inputs(), Mm.input(0));
    const int64_t BIdx = indexOf(Sub->inputs(), Mm.input(1));
    const int64_t OuterA = AIdx >= 0 ? FO.input(static_cast<size_t>(AIdx)) : -1;
    const int64_t OuterB = BIdx >= 0 ? FO.input(static_cast<size_t>(BIdx)) : -1;

    // Layout negotiation with a producing tunable region. Primitives mode
    // keeps activations plain (the library's tensors between primitive
    // calls use the plain layout, §VII).
    int64_t FixedMB = 0, FixedKB = 0, ProducerId = -1;
    if (OuterA >= 0 && !Opts.PrimitivesMode) {
      const int64_t Prod = G.producerOf(OuterA);
      if (Prod >= 0 && G.op(Prod).kind() == OpKind::FusedOp &&
          G.op(Prod).getAttrInt("tunable", 0) &&
          G.op(Prod).hasAttr("blk_mb") &&
          G.consumersOf(OuterA).size() == 1 && !G.isOutput(OuterA)) {
        const Op &P = G.op(Prod);
        const int64_t CandMB = P.getAttrInt("blk_mb");
        const int64_t CandKB = P.getAttrInt("blk_nb");
        const bool KbOk = Shape.ADtype != DataType::U8 || CandKB % 4 == 0;
        if (KbOk) {
          FixedMB = CandMB;
          FixedKB = CandKB;
          ProducerId = Prod;
        }
      }
    }

    lower::BlockingParams Params =
        FixedMB > 0
            ? lower::chooseMatmulBlockingFixedA(Shape, Opts.Threads, FixedMB,
                                                FixedKB, RequireFullRows)
            : lower::chooseMatmulBlocking(Shape, Opts.Threads,
                                          RequireFullRows);

    if (ProducerId >= 0) {
      // The intermediate tensor becomes the producer's blocked output and
      // this region's blocked A input.
      G.tensor(OuterA).Lay = Layout::blockedA(Params.MB, Params.KB);
      if (AIdx >= 0)
        Sub->tensor(Mm.input(0)).Lay = Layout::blockedA(Params.MB, Params.KB);
      // Align the parallel grids so the two lowered loop nests share one
      // outermost parallel loop (coarse-grain fusion).
      Op &P = G.op(ProducerId);
      const int64_t ProdBatch = P.getAttrInt("blk_batch", 1);
      if (ProdBatch == Shape.Batch) {
        P.setAttr("blk_npn", int64_t(1));
        Params.MPN = P.getAttrInt("blk_mpn", 1);
        Params.NPN = 1;
        Params.derive(Shape);
        FO.setAttr("merge_prev", int64_t(1));
      }
    }

    // Constant weights: explicit reorder to B-format, folded at first run.
    if (OuterB >= 0 && G.tensor(OuterB).isConstant()) {
      const LogicalTensor &WT = G.tensor(OuterB);
      const Layout BLay = WT.Ty == DataType::S8
                              ? Layout::blockedBVnni(Params.KB, Params.NB)
                              : Layout::blockedB(Params.KB, Params.NB);
      const int64_t Packed =
          G.addTensor(WT.Ty, WT.Shape, WT.Name + "_packed");
      G.tensor(Packed).Lay = BLay;
      G.addOpExplicit(
          OpKind::Reorder, {OuterB}, {Packed},
          {{"to_layout", std::string("blockedB")},
           {"transpose_src", Mm.getAttrInt("transpose_b", 0)}});
      std::vector<int64_t> NewIns = FO.inputs();
      NewIns[static_cast<size_t>(BIdx)] = Packed;
      G.setOpInputs(FusedId, std::move(NewIns));
      Sub->tensor(Mm.input(1)).Lay = BLay;
    }

    // Record the instantiation parameters.
    FO.setAttr("blk_mb", Params.MB);
    FO.setAttr("blk_nb", Params.NB);
    FO.setAttr("blk_kb", Params.KB);
    FO.setAttr("blk_bs", Params.BS);
    FO.setAttr("blk_mpn", Params.MPN);
    FO.setAttr("blk_npn", Params.NPN);
    FO.setAttr("blk_batch", Shape.Batch);
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> createLayoutPropagationPass() {
  return std::make_unique<LayoutPropagationPass>();
}

} // namespace passes
} // namespace gc
