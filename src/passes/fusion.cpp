//===- fusion.cpp - Fine-grain fusion region formation (§V) ---------------------===//
//
// Clusters the graph into Fused OP regions: each Tunable OP greedily
// absorbs succeeding Fusible OPs (elementwise, broadcast, reduction,
// quantize bridges) and then preceding reorder/transpose ops, subject to
// the paper's growth limits. Remaining fusible ops are grouped into
// elementwise-only regions. After this pass every compute op in the outer
// graph is a FusedOp whose subgraph holds the region body; lowering
// instantiates one template per region.
//
// When fine-grain fusion is disabled (ablation), regions are singletons --
// the structural wrapping still happens so the lowering driver sees a
// uniform graph of regions.
//
//===----------------------------------------------------------------------===//

#include "graph/graph.h"
#include "passes/pass.h"
#include "support/common.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace gc {
namespace passes {

using namespace graph;

namespace {

/// True for op kinds that may join a region as post-ops.
bool isPostOpFusible(OpKind Kind) {
  if (isUnaryElementwise(Kind) || isBinaryElementwise(Kind))
    return true;
  switch (Kind) {
  case OpKind::ReduceSum:
  case OpKind::ReduceMax:
  case OpKind::DequantAcc:
  case OpKind::Quantize:
  case OpKind::Dequantize:
    return true;
  default:
    return false;
  }
}

class FusionPass : public Pass {
public:
  const char *name() const override { return "fine-grain-fusion"; }

  bool run(Graph &G, const PassOptions &Opts) override {
    // Snapshot: ops already wrapped are skipped (pass is idempotent).
    bool Changed = false;
    std::unordered_set<int64_t> Consumed; // ops already claimed by a region

    // Pass 1: regions seeded by Tunable ops, in topological order.
    for (int64_t OpId : G.topologicalOrder()) {
      if (Consumed.count(OpId))
        continue;
      const Op &O = G.op(OpId);
      if (O.kind() != OpKind::MatMul)
        continue;
      std::vector<int64_t> Region = growRegion(G, OpId, Opts, Consumed);
      outlineRegion(G, Region, /*Tunable=*/true);
      for (int64_t Id : Region)
        Consumed.insert(Id);
      Changed = true;
    }

    // Pass 2: remaining fusible ops form elementwise-only regions (chains
    // grown with the same joinability rule, no tunable seed).
    for (int64_t OpId : G.topologicalOrder()) {
      if (Consumed.count(OpId))
        continue;
      const Op &O = G.op(OpId);
      if (O.kind() == OpKind::FusedOp || O.kind() == OpKind::Reorder ||
          O.kind() == OpKind::Transpose || O.kind() == OpKind::Reshape)
        continue;
      std::vector<int64_t> Region = growRegion(G, OpId, Opts, Consumed);
      outlineRegion(G, Region, /*Tunable=*/false);
      for (int64_t Id : Region)
        Consumed.insert(Id);
      Changed = true;
    }
    return Changed;
  }

private:
  /// True when tensor \p TensorId transitively depends on any tensor in
  /// \p RegionTensors. Used to keep regions convex: an extra input that
  /// itself descends from a region output would create a cycle.
  bool dependsOnRegion(const Graph &G, int64_t TensorId,
                       const std::unordered_set<int64_t> &RegionTensors,
                       std::unordered_map<int64_t, bool> &Memo) {
    if (RegionTensors.count(TensorId))
      return true;
    auto It = Memo.find(TensorId);
    if (It != Memo.end())
      return It->second;
    Memo[TensorId] = false; // break cycles defensively
    const int64_t Prod = G.producerOf(TensorId);
    bool Result = false;
    if (Prod >= 0)
      for (int64_t In : G.op(Prod).inputs())
        if (dependsOnRegion(G, In, RegionTensors, Memo)) {
          Result = true;
          break;
        }
    Memo[TensorId] = Result;
    return Result;
  }

  /// Grows a region from \p SeedId: BFS over consumers, joining an op when
  /// all of its inputs are region tensors, constants, or acceptable extra
  /// inputs, until a growth limit trips.
  std::vector<int64_t> growRegion(Graph &G, int64_t SeedId,
                                  const PassOptions &Opts,
                                  const std::unordered_set<int64_t> &Consumed) {
    std::vector<int64_t> Region = {SeedId};
    if (!Opts.EnableFineGrainFusion)
      return Region;

    std::unordered_set<int64_t> InRegion = {SeedId};
    std::unordered_set<int64_t> RegionTensors;
    for (int64_t Out : G.op(SeedId).outputs())
      RegionTensors.insert(Out);

    int Reductions = 0;
    int64_t ExtraBytes = 0;
    bool Grew = true;
    while (Grew && static_cast<int>(Region.size()) < Opts.MaxPostOps) {
      Grew = false;
      // Deterministic candidate scan: consumers of region tensors in
      // ascending op id.
      std::vector<int64_t> Candidates;
      for (int64_t T : RegionTensors)
        for (int64_t User : G.consumersOf(T))
          if (!InRegion.count(User) && !Consumed.count(User))
            Candidates.push_back(User);
      std::sort(Candidates.begin(), Candidates.end());
      Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                       Candidates.end());
      for (int64_t Cand : Candidates) {
        const Op &C = G.op(Cand);
        if (!isPostOpFusible(C.kind()))
          continue;
        if (Opts.PrimitivesMode) {
          // Post-op API emulation: linear chains only, no reductions,
          // at most 5 post-ops per primitive.
          if (isReduction(C.kind()) ||
              static_cast<int>(Region.size()) > 5)
            continue;
        }
        if (isReduction(C.kind())) {
          // Only last-axis reductions fuse (they commit at the full-row
          // anchor); respect the reduction count limit.
          std::vector<int64_t> Axes = C.getAttrIntVec("axes");
          const int64_t Rank = G.tensor(C.input(0)).rank();
          const bool LastAxis =
              Axes.size() == 1 && (Axes[0] == -1 || Axes[0] == Rank - 1);
          if (!LastAxis || Reductions >= Opts.MaxPostOpReductions)
            continue;
        }
        // All inputs must be region tensors, constants, or affordable
        // extra inputs that do not themselves descend from the region
        // (convexity).
        bool Ok = true;
        int64_t CandExtraBytes = 0;
        std::unordered_map<int64_t, bool> Memo;
        for (int64_t In : C.inputs()) {
          if (RegionTensors.count(In))
            continue;
          const LogicalTensor &T = G.tensor(In);
          if (T.isConstant())
            continue;
          if (dependsOnRegion(G, In, RegionTensors, Memo)) {
            Ok = false;
            break;
          }
          CandExtraBytes += T.numElements() * dataTypeSize(T.Ty);
        }
        if (!Ok || ExtraBytes + CandExtraBytes > Opts.MaxExtraInputBytes)
          continue;
        // Join.
        Region.push_back(Cand);
        InRegion.insert(Cand);
        for (int64_t Out : C.outputs())
          RegionTensors.insert(Out);
        if (isReduction(C.kind()))
          ++Reductions;
        ExtraBytes += CandExtraBytes;
        Grew = true;
        if (static_cast<int>(Region.size()) >= Opts.MaxPostOps)
          break;
      }
    }
    return Region;
  }

  /// Moves \p Region ops into a fresh subgraph and replaces them with one
  /// FusedOp in \p G. Output tensor ids are preserved so downstream links
  /// stay intact.
  void outlineRegion(Graph &G, const std::vector<int64_t> &Region,
                     bool Tunable) {
    std::unordered_set<int64_t> InRegion(Region.begin(), Region.end());

    // Classify tensors.
    std::unordered_set<int64_t> ProducedInside;
    for (int64_t OpId : Region)
      for (int64_t Out : G.op(OpId).outputs())
        ProducedInside.insert(Out);

    std::vector<int64_t> ExternalInputs; // variable tensors from outside
    std::vector<int64_t> ConstInputs;    // constants cloned into subgraph
    std::vector<int64_t> RegionOutputs;  // consumed outside or graph outputs
    // Matmul operands always stay external: layout propagation rewires
    // the weight side to a prepack reorder in the outer graph, and the
    // template addresses both operands through outer buffers.
    std::unordered_set<int64_t> ForceExternal;
    for (int64_t OpId : Region)
      if (G.op(OpId).kind() == OpKind::MatMul)
        for (int64_t In : G.op(OpId).inputs())
          ForceExternal.insert(In);
    for (int64_t OpId : Region) {
      for (int64_t In : G.op(OpId).inputs()) {
        if (ProducedInside.count(In))
          continue;
        // Small non-operand constants (scalars, bias/scale vectors) are
        // cloned into the region; everything else stays an external input.
        const LogicalTensor &T = G.tensor(In);
        const bool CloneConst = T.isConstant() &&
                                T.numElements() <= 4096 &&
                                !ForceExternal.count(In);
        auto &List = CloneConst ? ConstInputs : ExternalInputs;
        if (std::find(List.begin(), List.end(), In) == List.end())
          List.push_back(In);
      }
    }
    for (int64_t OpId : Region)
      for (int64_t Out : G.op(OpId).outputs()) {
        bool UsedOutside = G.isOutput(Out);
        for (int64_t User : G.consumersOf(Out))
          if (!InRegion.count(User))
            UsedOutside = true;
        if (UsedOutside)
          RegionOutputs.push_back(Out);
      }
    assert(!RegionOutputs.empty() && "region with no live outputs");

    // Build the subgraph. Tensor ids are fresh; OldToNew maps outer ids.
    auto Sub = std::make_unique<Graph>();
    std::unordered_map<int64_t, int64_t> OldToNew;
    auto importTensor = [&](int64_t OuterId) -> int64_t {
      auto It = OldToNew.find(OuterId);
      if (It != OldToNew.end())
        return It->second;
      const LogicalTensor &T = G.tensor(OuterId);
      const int64_t NewId = Sub->addTensor(T.Ty, T.Shape, T.Name, T.Property);
      Sub->tensor(NewId).Lay = T.Lay;
      OldToNew[OuterId] = NewId;
      return NewId;
    };
    for (int64_t In : ExternalInputs)
      Sub->markInput(importTensor(In));
    for (int64_t CIn : ConstInputs) {
      const int64_t NewId = importTensor(CIn);
      if (const runtime::TensorData *Data = G.constantData(CIn))
        Sub->setConstantData(NewId, Data->clone());
      else
        Sub->tensor(NewId).Property = TensorProperty::Constant;
    }
    // Ops in topological order within the region.
    std::vector<int64_t> Ordered;
    for (int64_t OpId : G.topologicalOrder())
      if (InRegion.count(OpId))
        Ordered.push_back(OpId);
    for (int64_t OpId : Ordered) {
      const Op &O = G.op(OpId);
      std::vector<int64_t> NewIns, NewOuts;
      for (int64_t In : O.inputs())
        NewIns.push_back(importTensor(In));
      for (int64_t Out : O.outputs())
        NewOuts.push_back(importTensor(Out));
      Sub->addOpExplicit(O.kind(), NewIns, NewOuts, O.attrs());
    }
    for (int64_t Out : RegionOutputs)
      Sub->markOutput(OldToNew.at(Out));

    // Constants referenced only inside move entirely; variable externals
    // become fused-op inputs. Remove the originals and splice the FusedOp.
    for (int64_t OpId : Region)
      G.eraseOp(OpId);
    AttrMap Attrs;
    Attrs["tunable"] = int64_t(Tunable ? 1 : 0);
    // Record whether a row reduction fused (forces NPN == 1 downstream).
    bool HasReduction = false;
    for (int64_t OpId : Sub->opIds())
      if (isReduction(Sub->op(OpId).kind()))
        HasReduction = true;
    Attrs["needs_full_rows"] = int64_t(HasReduction ? 1 : 0);

    const int64_t FusedId =
        G.addOpExplicit(OpKind::FusedOp, ExternalInputs, RegionOutputs,
                        std::move(Attrs));
    G.op(FusedId).setSubgraph(std::move(Sub));
  }
};

} // namespace

std::unique_ptr<Pass> createFusionPass() {
  return std::make_unique<FusionPass>();
}

} // namespace passes
} // namespace gc
