//===- pass.h - Graph IR pass infrastructure ---------------------*- C++ -*-===//
///
/// \file
/// Pass interface and pipeline for the Graph IR optimization module (§V).
/// Passes transform the graph in place; the manager verifies the graph
/// between passes and dumps IR when GC_VERBOSE >= 2.
///
//===----------------------------------------------------------------------===//

#ifndef GC_PASSES_PASS_H
#define GC_PASSES_PASS_H

#include "graph/graph.h"
#include "support/status.h"

#include <memory>
#include <string>
#include <vector>

namespace gc {
namespace passes {

/// Compile-wide options threaded through every pass (a subset of the public
/// CompileOptions relevant to graph rewriting).
struct PassOptions {
  /// Worker count the heuristic plans for.
  int Threads = 1;
  /// Use the paper's fast softmax (skip the max-subtraction pass; §VII:
  /// "a fast implementation of softmax, removing a max reduction").
  bool FastSoftmax = true;
  /// Enable the low-precision (int8) conversion rewrite.
  bool EnableLowPrecision = true;
  /// Enable fine-grain fusion region formation.
  bool EnableFineGrainFusion = true;
  /// Enable blocked-layout propagation.
  bool EnableLayoutPropagation = true;
  /// Primitives-library emulation (the paper's "oneDNN primitives +
  /// post-op" baseline): fusion admits only the linear post-op chain a
  /// primitive's post-op API accepts (elementwise / broadcast binaries /
  /// quantize, no reductions, max 5), and layout propagation prepacks
  /// weights but keeps every activation plain (each primitive repacks its
  /// own A panel).
  bool PrimitivesMode = false;
  /// Constant-folding size cap: tensors larger than this stay in the fold
  /// function (executed at first run) instead of being folded at compile
  /// time, mirroring the paper's "weight data buffer might not be
  /// available during the compilation".
  int64_t FoldMaxElements = 4096;
  /// Fusion growth limits (§V: "the region stops growing when a limit is
  /// reached").
  int MaxPostOps = 24;
  int MaxPostOpReorders = 1;
  int MaxPostOpReductions = 2;
  int64_t MaxExtraInputBytes = 1 << 22;
};

/// A Graph IR transformation.
class Pass {
public:
  virtual ~Pass() = default;
  /// Pass name for logs and tests.
  virtual const char *name() const = 0;
  /// Runs on \p G; returns true when the graph changed.
  virtual bool run(graph::Graph &G, const PassOptions &Opts) = 0;
};

/// Runs a pipeline of passes with verification in between.
class PassManager {
public:
  explicit PassManager(PassOptions Opts) : Opts(std::move(Opts)) {}

  void addPass(std::unique_ptr<Pass> P) { Pipeline.push_back(std::move(P)); }

  /// Runs every pass once, in order, verifying the graph in between.
  /// Returns an Internal error (with the offending pass named) when a pass
  /// produces an invalid graph; the graph is left in its failed state for
  /// inspection.
  Status run(graph::Graph &G);

  /// Names of passes that reported changes in the last run (test hook).
  const std::vector<std::string> &changedPasses() const { return Changed; }

private:
  PassOptions Opts;
  std::vector<std::unique_ptr<Pass>> Pipeline;
  std::vector<std::string> Changed;
};

//===----------------------------------------------------------------------===//
// Pass factories
//===----------------------------------------------------------------------===//

/// Expands Complex OPs (softmax, gelu, batchnorm, layernorm, bias_add) into
/// basic DNN ops. Quantize/Dequantize are kept intact for the low-precision
/// pass, which consumes them structurally.
std::unique_ptr<Pass> createDecomposePass();

/// Common subexpression elimination over (kind, attrs, inputs).
std::unique_ptr<Pass> createCsePass();

/// Removes ops whose results cannot reach a graph output.
std::unique_ptr<Pass> createDcePass();

/// Evaluates ops whose inputs are all compile-time constants, subject to
/// the FoldMaxElements cap.
std::unique_ptr<Pass> createConstantFoldPass();

/// Rewrites Dequantize -> MatMul -> ... -> Quantize chains into int8
/// matmuls with s32 accumulation, folded output scales and zero-point
/// compensation (Fig. 5 low-precision conversion).
std::unique_ptr<Pass> createLowPrecisionPass();

/// Clusters Tunable OPs with neighbouring Fusible OPs into FusedOp regions
/// (fine-grain fusion, §V).
std::unique_ptr<Pass> createFusionPass();

/// Chooses blocked layouts for Tunable OPs, propagates them across fused
/// regions, and inserts Reorder ops at boundaries (§V).
std::unique_ptr<Pass> createLayoutPropagationPass();

/// Builds the standard §V pipeline in paper order.
std::vector<std::unique_ptr<Pass>> buildStandardPipeline(const PassOptions &Opts);

} // namespace passes
} // namespace gc

#endif // GC_PASSES_PASS_H
