//===- low_precision.cpp - Int8 conversion (Fig. 5) -----------------------------===//
//
// Rewrites Dequantize -> MatMul(f32) patterns into int8 matmuls with s32
// accumulation. The dequantize algebra is folded into a per-channel output
// scale vector plus an asymmetric-activation compensation term:
//
//   C = (A_q - a_z) a_s  x  B_q b_s
//     = a_s b_s[c] (A_q x B_q  -  a_z * colsum_k(B_q)[c])
//
// The colsum term is emitted as a Cast+ReduceSum chain over the s8 weight;
// when the weight is constant the chain is constant-reachable and lands in
// the fold function (constant weight preprocessing executes it at first
// run, the "compensated weight" of §VII).
//
//===----------------------------------------------------------------------===//

#include "graph/graph.h"
#include "passes/pass.h"
#include "support/common.h"

namespace gc {
namespace passes {

using namespace graph;

namespace {

/// Quantization parameters read off a Quantize/Dequantize op.
struct QParams {
  std::vector<double> Scales;
  int64_t Zp = 0;
  int64_t Axis = -1;

  bool perChannel() const { return Scales.size() > 1; }

  static QParams fromOp(const Op &O) {
    QParams P;
    P.Scales = O.getAttrFloatVec("scales");
    if (P.Scales.empty())
      P.Scales.push_back(O.getAttrFloat("scale", 1.0));
    const auto Zps = O.getAttrIntVec("zps");
    P.Zp = Zps.empty() ? O.getAttrInt("zp", 0) : Zps[0];
    P.Axis = O.getAttrInt("axis", -1);
    return P;
  }
};

class LowPrecisionPass : public Pass {
public:
  const char *name() const override { return "low-precision"; }

  bool run(Graph &G, const PassOptions &) override {
    bool Changed = false;
    for (int64_t OpId : G.topologicalOrder()) {
      if (G.op(OpId).kind() != OpKind::MatMul)
        continue;
      if (G.op(OpId).getAttrInt("quantized", 0))
        continue;
      Changed |= tryRewrite(G, OpId);
    }
    return Changed;
  }

private:
  bool tryRewrite(Graph &G, int64_t MatMulId) {
    const Op &MM = G.op(MatMulId);
    const int64_t AProd = G.producerOf(MM.input(0));
    const int64_t BProd = G.producerOf(MM.input(1));
    if (AProd < 0 || BProd < 0)
      return false;
    const Op &DqA = G.op(AProd);
    const Op &DqB = G.op(BProd);
    if (DqA.kind() != OpKind::Dequantize || DqB.kind() != OpKind::Dequantize)
      return false;

    const int64_t QA = DqA.input(0);
    const int64_t QB = DqB.input(0);
    const LogicalTensor &QAT = G.tensor(QA);
    const LogicalTensor &QBT = G.tensor(QB);
    // Scope of the paper's scheme: u8 asymmetric activation, s8 weight.
    if (QAT.Ty != DataType::U8 || QBT.Ty != DataType::S8)
      return false;

    const QParams PA = QParams::fromOp(DqA);
    const QParams PB = QParams::fromOp(DqB);
    if (PA.perChannel() || PB.Zp != 0)
      return false; // activation must be per-tensor; weight symmetric

    const bool TransB = MM.getAttrInt("transpose_b", 0) != 0;
    const LogicalTensor &OutT = G.tensor(MM.output(0));
    const int64_t N = OutT.Shape.back();

    // Compensation colsum chain. For a non-constant weight side (MHA) with
    // a nonzero activation zero point the compensation would be a batched
    // runtime tensor; that configuration is out of scope, so bail.
    const bool WeightConst = QBT.isConstant();
    int64_t Comp;
    if (PA.Zp != 0) {
      if (!WeightConst && QBT.rank() > 2)
        return false;
      std::vector<int64_t> CastShape = QBT.Shape;
      const int64_t CastId =
          G.addOp(OpKind::Cast, {QB}, DataType::S32, CastShape, {},
                  "comp_cast");
      const int64_t KAxis = TransB ? -1 : -2;
      Comp = G.addOp(OpKind::ReduceSum, {CastId}, DataType::S32, {N},
                     {{"axes", std::vector<int64_t>{KAxis}},
                      {"keep_dims", int64_t(0)}},
                     "comp");
    } else {
      Comp = G.addTensor(DataType::S32, {1}, "comp_zero",
                         TensorProperty::Constant);
      runtime::TensorData Zero(DataType::S32, {1});
      G.setConstantData(Comp, std::move(Zero));
    }

    // The int8 matmul with s32 accumulation.
    AttrMap MatMulAttrs = MM.attrs();
    MatMulAttrs["quantized"] = int64_t(1);
    const int64_t AccOut = G.addOp(OpKind::MatMul, {QA, QB}, DataType::S32,
                                   OutT.Shape, std::move(MatMulAttrs));

    // Folded output scales: a_s * b_s[c].
    std::vector<double> Scales;
    if (PB.perChannel()) {
      Scales.resize(PB.Scales.size());
      for (size_t I = 0; I < Scales.size(); ++I)
        Scales[I] = PA.Scales[0] * PB.Scales[I];
      assert(static_cast<int64_t>(Scales.size()) == N &&
             "per-channel scale length must match N");
    } else {
      Scales.push_back(PA.Scales[0] * PB.Scales[0]);
    }

    const int64_t Deq = G.addOp(
        OpKind::DequantAcc, {AccOut, Comp}, DataType::F32, OutT.Shape,
        {{"a_zp", PA.Zp}, {"scales", std::move(Scales)}});

    G.replaceAllUses(MM.output(0), Deq);
    G.eraseOp(MatMulId);
    // The dequantize ops become dead and are removed by the next DCE.
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> createLowPrecisionPass() {
  return std::make_unique<LowPrecisionPass>();
}

} // namespace passes
} // namespace gc
