//===- loopnest.h - Generic loop-nest compiler baseline ----------*- C++ -*-===//
///
/// \file
/// The "TVM" comparator of §VII, rebuilt as what a generic auto-scheduled
/// tensor compiler reaches without domain templates (DESIGN.md
/// substitution #4):
///  * plain row-major layouts everywhere (no blocked relayout, no weight
///    prepacking, no VNNI interleave),
///  * matmuls as tiled loop nests parallelized over row blocks with the
///    innermost loop auto-vectorized by the host compiler,
///  * elementwise epilogues fused into the matmul's row-block loop (TVM
///    "is able to fuse memory-intensive operations to the matmul"),
///  * softmax/reduction ops executed as separate full-tensor passes (TVM
///    "doesn't fuse the softmax op with the preceding batch matmul"),
///  * int8 matmuls computed with widening scalar/auto-vec loops -- the
///    missing VNNI-friendly relayout is exactly why the paper's TVM int8
///    results barely beat FP32.
///
//===----------------------------------------------------------------------===//

#ifndef GC_BASELINE_LOOPNEST_H
#define GC_BASELINE_LOOPNEST_H

#include "graph/graph.h"
#include "runtime/tensor_data.h"
#include "runtime/thread_pool.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gc {
namespace baseline {

/// Executes a DNN graph with generic loop nests over plain layouts.
class LoopNestExecutor {
public:
  /// Prepares the executor: runs the layout-agnostic graph passes
  /// (decompose, CSE, low-precision structure, constant folding, DCE) and
  /// plans epilogue fusion. \p Threads == 0 selects the global pool.
  explicit LoopNestExecutor(const graph::Graph &Source, int Threads = 0);

  /// Runs the graph. Inputs/outputs follow the source graph's declaration
  /// order (plain row-major).
  void execute(const std::vector<runtime::TensorData *> &Inputs,
               const std::vector<runtime::TensorData *> &Outputs);

  /// The graph after baseline planning (tests inspect epilogue chains).
  const graph::Graph &plannedGraph() const { return G; }

  /// Number of ops fused into matmul epilogues (test/report hook).
  int fusedEpilogueOps() const { return FusedOps; }

private:
  void executeMatmul(int64_t OpId);
  void executeStandalone(int64_t OpId);
  runtime::TensorData &valueOf(int64_t TensorId);

  graph::Graph G;
  runtime::ThreadPool *Pool = nullptr;
  std::unique_ptr<runtime::ThreadPool> OwnedPool;

  std::vector<int64_t> InputIds, OutputIds;
  /// Execution order with epilogue-fused ops removed.
  std::vector<int64_t> Schedule;
  /// Matmul op id -> chain of epilogue op ids fused into its loop.
  std::unordered_map<int64_t, std::vector<int64_t>> Epilogues;
  std::unordered_set<int64_t> FusedIntoProducer;
  int FusedOps = 0;

  /// Tensor storage (op outputs + bound boundary tensors).
  std::unordered_map<int64_t, runtime::TensorData> Values;
};

} // namespace baseline
} // namespace gc

#endif // GC_BASELINE_LOOPNEST_H
