//===- loopnest.cpp - Generic loop-nest compiler baseline -------------------------===//

#include "baseline/loopnest.h"

#include "graph/reference.h"
#include "kernels/tile_ops.h"
#include "passes/pass.h"
#include "support/common.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gc {
namespace baseline {

using namespace graph;
using kernels::ConstTileF32;
using kernels::TileF32;
using runtime::TensorData;

namespace {

constexpr int64_t kRowBlock = 32;

/// True when an op can run inside a matmul's row-block epilogue: its
/// result has the matmul output's shape and it reads only the chain value
/// plus broadcast-compatible extras.
bool isEpilogueCandidate(const Graph &G, const Op &O,
                         const std::vector<int64_t> &OutShape) {
  switch (O.kind()) {
  case OpKind::ReLU:
  case OpKind::Exp:
  case OpKind::Tanh:
  case OpKind::Sqrt:
  case OpKind::Reciprocal:
  case OpKind::Square:
  case OpKind::Sigmoid:
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Max:
  case OpKind::Min:
  case OpKind::DequantAcc:
  case OpKind::Quantize:
    break;
  default:
    return false;
  }
  return G.tensor(O.output(0)).Shape == OutShape;
}

/// Naive tiled f32 matmul for one row block: C[R0..R1) = A x B.
void gemmBlockF32(const float *A, const float *B, float *C, int64_t R0,
                  int64_t R1, int64_t N, int64_t K, bool TransB) {
  for (int64_t I = R0; I < R1; ++I) {
    float *CRow = C + (I - R0) * N;
    for (int64_t J = 0; J < N; ++J)
      CRow[J] = 0.0f;
    if (!TransB) {
      const float *ARow = A + I * K;
      for (int64_t KI = 0; KI < K; ++KI) {
        const float AV = ARow[KI];
        const float *BRow = B + KI * N;
        for (int64_t J = 0; J < N; ++J)
          CRow[J] += AV * BRow[J];
      }
    } else {
      const float *ARow = A + I * K;
      for (int64_t J = 0; J < N; ++J) {
        const float *BRow = B + J * K;
        float Acc = 0.0f;
        for (int64_t KI = 0; KI < K; ++KI)
          Acc += ARow[KI] * BRow[KI];
        CRow[J] = Acc;
      }
    }
  }
}

/// Naive u8 x s8 -> s32 matmul for one row block (plain layout, no VNNI
/// interleave -- the widening loads cost is the point of the baseline).
void gemmBlockU8S8(const uint8_t *A, const int8_t *B, int32_t *C, int64_t R0,
                   int64_t R1, int64_t N, int64_t K, bool TransB) {
  for (int64_t I = R0; I < R1; ++I) {
    int32_t *CRow = C + (I - R0) * N;
    for (int64_t J = 0; J < N; ++J)
      CRow[J] = 0;
    if (!TransB) {
      const uint8_t *ARow = A + I * K;
      for (int64_t KI = 0; KI < K; ++KI) {
        const int32_t AV = ARow[KI];
        const int8_t *BRow = B + KI * N;
        for (int64_t J = 0; J < N; ++J)
          CRow[J] += AV * static_cast<int32_t>(BRow[J]);
      }
    } else {
      const uint8_t *ARow = A + I * K;
      for (int64_t J = 0; J < N; ++J) {
        const int8_t *BRow = B + J * K;
        int32_t Acc = 0;
        for (int64_t KI = 0; KI < K; ++KI)
          Acc += static_cast<int32_t>(ARow[KI]) *
                 static_cast<int32_t>(BRow[KI]);
        CRow[J] = Acc;
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Planning
//===----------------------------------------------------------------------===//

LoopNestExecutor::LoopNestExecutor(const Graph &Source, int Threads) {
  G = Source.clone();
  if (Threads > 0) {
    OwnedPool = std::make_unique<runtime::ThreadPool>(Threads);
    Pool = OwnedPool.get();
  } else {
    Pool = &runtime::ThreadPool::global();
  }

  // Layout-agnostic planning passes (what any tensor compiler does before
  // scheduling): complex-op decomposition, CSE, the int8 structural
  // rewrite, constant folding, DCE. No fusion regions, no layouts.
  passes::PassOptions PassOpts;
  PassOpts.Threads = Pool->numThreads();
  PassOpts.FastSoftmax = false;
  passes::PassManager PM(PassOpts);
  PM.addPass(passes::createDecomposePass());
  PM.addPass(passes::createCsePass());
  PM.addPass(passes::createLowPrecisionPass());
  PM.addPass(passes::createConstantFoldPass());
  PM.addPass(passes::createDcePass());
  if (const Status S = PM.run(G); !S.isOk())
    fatalError(S.toString().c_str());

  InputIds = G.inputs();
  OutputIds = G.outputs();

  // Plan epilogue fusion: linear single-consumer chains behind matmuls.
  for (int64_t OpId : G.topologicalOrder()) {
    const Op &O = G.op(OpId);
    if (O.kind() != OpKind::MatMul)
      continue;
    const std::vector<int64_t> OutShape = G.tensor(O.output(0)).Shape;
    int64_t CurTensor = O.output(0);
    std::vector<int64_t> Chain;
    while (true) {
      if (G.isOutput(CurTensor))
        break;
      const auto Users = G.consumersOf(CurTensor);
      if (Users.size() != 1)
        break;
      const Op &Next = G.op(Users[0]);
      if (!isEpilogueCandidate(G, Next, OutShape))
        break;
      if (Next.input(0) != CurTensor &&
          !(isBinaryElementwise(Next.kind()) && Next.input(1) == CurTensor))
        break;
      Chain.push_back(Users[0]);
      CurTensor = Next.output(0);
    }
    if (!Chain.empty()) {
      Epilogues[OpId] = Chain;
      for (int64_t C : Chain)
        FusedIntoProducer.insert(C);
      FusedOps += static_cast<int>(Chain.size());
    }
  }
  for (int64_t OpId : G.topologicalOrder())
    if (!FusedIntoProducer.count(OpId))
      Schedule.push_back(OpId);

  // Preallocate op-output storage (graph outputs bind externally).
  for (int64_t OpId : G.opIds())
    for (int64_t Out : G.op(OpId).outputs()) {
      if (G.isOutput(Out))
        continue;
      const LogicalTensor &T = G.tensor(Out);
      Values.emplace(Out, TensorData(T.Ty, T.Shape));
    }
  // Constants.
  for (int64_t TId : G.tensorIds())
    if (const TensorData *Data = G.constantData(TId))
      Values.emplace(TId, Data->clone());
}

TensorData &LoopNestExecutor::valueOf(int64_t TensorId) {
  auto It = Values.find(TensorId);
  if (It == Values.end())
    fatalError("loopnest baseline: unbound tensor");
  return It->second;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void LoopNestExecutor::execute(
    const std::vector<TensorData *> &Inputs,
    const std::vector<TensorData *> &Outputs) {
  assert(Inputs.size() == InputIds.size() && "input arity mismatch");
  assert(Outputs.size() == OutputIds.size() && "output arity mismatch");
  for (size_t I = 0; I < Inputs.size(); ++I)
    Values[InputIds[I]] =
        TensorData::view(Inputs[I]->dtype(), Inputs[I]->shape(),
                         Inputs[I]->data());
  for (size_t I = 0; I < Outputs.size(); ++I)
    Values[OutputIds[I]] =
        TensorData::view(Outputs[I]->dtype(), Outputs[I]->shape(),
                         Outputs[I]->data());

  for (int64_t OpId : Schedule) {
    const Op &O = G.op(OpId);
    if (O.kind() == OpKind::MatMul)
      executeMatmul(OpId);
    else
      executeStandalone(OpId);
  }
}

void LoopNestExecutor::executeMatmul(int64_t OpId) {
  const Op &O = G.op(OpId);
  const bool TransB = O.getAttrInt("transpose_b", 0) != 0;
  const bool Quantized = O.getAttrInt("quantized", 0) != 0;
  const TensorData &A = valueOf(O.input(0));
  const TensorData &B = valueOf(O.input(1));
  const std::vector<int64_t> Chain =
      Epilogues.count(OpId) ? Epilogues.at(OpId) : std::vector<int64_t>{};
  const int64_t FinalTensor =
      Chain.empty() ? O.output(0) : G.op(Chain.back()).output(0);
  TensorData &Out = valueOf(FinalTensor);

  const auto &OutShape = G.tensor(O.output(0)).Shape;
  const int64_t N = OutShape.back();
  const int64_t M = OutShape[OutShape.size() - 2];
  const int64_t K = A.shape().back();
  int64_t Batch = 1;
  for (size_t D = 0; D + 2 < OutShape.size(); ++D)
    Batch *= OutShape[D];
  const bool ABatched = A.rank() > 2;
  const bool BBatched = B.rank() > 2;

  const int64_t RowBlocks = ceilDiv(M, kRowBlock);
  const int64_t Grid = Batch * RowBlocks;
  const int NumWorkers = Pool->numThreads();

  // Per-worker scratch: one row block (f32 + s32 views).
  std::vector<std::vector<float>> ScratchF(
      static_cast<size_t>(NumWorkers),
      std::vector<float>(static_cast<size_t>(kRowBlock * N)));
  std::vector<std::vector<int32_t>> ScratchI(
      static_cast<size_t>(NumWorkers),
      Quantized ? std::vector<int32_t>(static_cast<size_t>(kRowBlock * N))
                : std::vector<int32_t>());

  Pool->parallelFor(0, Grid, [&](int64_t GI, int Tid) {
    const int64_t Bt = GI / RowBlocks;
    const int64_t Rb = GI % RowBlocks;
    const int64_t R0 = Rb * kRowBlock;
    const int64_t R1 = std::min<int64_t>(M, R0 + kRowBlock);
    const int64_t Rows = R1 - R0;
    float *BlockF = ScratchF[static_cast<size_t>(Tid)].data();

    if (!Quantized) {
      const float *AP = A.dataAs<float>() + (ABatched ? Bt * M * K : 0);
      const float *BP =
          B.dataAs<float>() + (BBatched ? Bt * K * N : 0);
      gemmBlockF32(AP, BP, BlockF, R0, R1, N, K, TransB);
    } else {
      int32_t *BlockI = ScratchI[static_cast<size_t>(Tid)].data();
      const uint8_t *AP = A.dataAs<uint8_t>() + (ABatched ? Bt * M * K : 0);
      const int8_t *BP = B.dataAs<int8_t>() + (BBatched ? Bt * K * N : 0);
      gemmBlockU8S8(AP, BP, BlockI, R0, R1, N, K, TransB);
      // The chain must start with dequant_acc; if it does not (unfused
      // graph), convert with unit scale so downstream ops see f32.
      if (Chain.empty() || G.op(Chain[0]).kind() != OpKind::DequantAcc) {
        int32_t *BI = BlockI;
        TensorData &Acc = valueOf(O.output(0));
        int32_t *Dst = Acc.dataAs<int32_t>() + (Bt * M + R0) * N;
        std::copy(BI, BI + Rows * N, Dst);
        return;
      }
    }

    // Apply the epilogue chain on the row block.
    TileF32 Block{BlockF, Rows, N, N};
    for (size_t CI = 0; CI < Chain.size(); ++CI) {
      const Op &E = G.op(Chain[CI]);
      switch (E.kind()) {
      case OpKind::DequantAcc: {
        const int32_t *BlockI = ScratchI[static_cast<size_t>(Tid)].data();
        const TensorData &Comp = valueOf(E.input(1));
        const std::vector<double> Scales = E.getAttrFloatVec("scales");
        std::vector<float> ScaleVec(static_cast<size_t>(N));
        for (int64_t J = 0; J < N; ++J)
          ScaleVec[static_cast<size_t>(J)] = static_cast<float>(
              Scales.size() == 1 ? Scales[0]
                                 : Scales[static_cast<size_t>(J)]);
        kernels::dequantAccTile(
            BlockF, N, BlockI, N, Rows, N,
            Comp.numElements() > 1 ? Comp.dataAs<int32_t>() : nullptr,
            static_cast<int32_t>(E.getAttrInt("a_zp", 0)), ScaleVec.data());
        break;
      }
      case OpKind::ReLU: kernels::reluTile(Block); break;
      case OpKind::Exp: kernels::expTile(Block); break;
      case OpKind::Tanh: kernels::tanhTile(Block); break;
      case OpKind::Sqrt: kernels::sqrtTile(Block); break;
      case OpKind::Reciprocal: kernels::recipTile(Block); break;
      case OpKind::Square: kernels::squareTile(Block); break;
      case OpKind::Sigmoid: kernels::sigmoidTile(Block); break;
      case OpKind::Quantize: {
        // Must be last in the chain (writes the final u8 tensor).
        const float InvScale =
            1.0f / static_cast<float>(E.getAttrFloat("scale", 1.0));
        const int32_t Zp = static_cast<int32_t>(E.getAttrInt("zp", 0));
        uint8_t *Dst = Out.dataAs<uint8_t>() + (Bt * M + R0) * N;
        kernels::quantizeU8Tile(Dst, N, BlockF, N, Rows, N, InvScale, Zp);
        return; // block complete
      }
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Max:
      case OpKind::Min: {
        // Second operand: scalar const / rowvec / colvec / full.
        const int64_t Other =
            E.input(0) == (CI == 0 ? O.output(0)
                                   : G.op(Chain[CI - 1]).output(0))
                ? E.input(1)
                : E.input(0);
        const TensorData &Ext = valueOf(Other);
        const LogicalTensor &ExtT = G.tensor(Other);
        const int64_t ExtElems = ExtT.numElements();
        if (ExtElems == 1) {
          const float S = Ext.dataAs<float>()[0];
          switch (E.kind()) {
          case OpKind::Add: kernels::affineTile(Block, 1.0f, S); break;
          case OpKind::Mul: kernels::affineTile(Block, S, 0.0f); break;
          case OpKind::Sub: kernels::affineTile(Block, 1.0f, -S); break;
          case OpKind::Div:
            kernels::affineTile(Block, 1.0f / S, 0.0f);
            break;
          default: fatalError("baseline: scalar max/min epilogue");
          }
        } else if (ExtT.Shape.back() == N && ExtElems == N) {
          switch (E.kind()) {
          case OpKind::Add: kernels::addRowVecTile(Block, Ext.dataAs<float>()); break;
          case OpKind::Sub: kernels::subRowVecTile(Block, Ext.dataAs<float>()); break;
          case OpKind::Mul: kernels::mulRowVecTile(Block, Ext.dataAs<float>()); break;
          default: fatalError("baseline: rowvec epilogue op");
          }
        } else if (ExtT.Shape.back() == N &&
                   ExtElems == ExtT.Shape.back() *
                                   (ExtT.rank() >= 2
                                        ? ExtT.Shape[ExtT.rank() - 2]
                                        : 1) &&
                   ExtT.rank() >= 2 && ExtT.Shape[ExtT.rank() - 2] == M) {
          // Full tensor (possibly broadcast over batch).
          int64_t ExtLead = 1;
          for (int64_t D = 0; D + 2 < ExtT.rank(); ++D)
            ExtLead *= ExtT.Shape[static_cast<size_t>(D)];
          const int64_t BtOff = ExtLead > 1 ? Bt * M * N : 0;
          ConstTileF32 Y{Ext.dataAs<float>() + BtOff + R0 * N, N};
          switch (E.kind()) {
          case OpKind::Add: kernels::addTile(Block, Y); break;
          case OpKind::Sub: kernels::subTile(Block, Y); break;
          case OpKind::Mul: kernels::mulTile(Block, Y); break;
          case OpKind::Div: kernels::divTile(Block, Y); break;
          case OpKind::Max: kernels::maxTile(Block, Y); break;
          case OpKind::Min: kernels::minTile(Block, Y); break;
          default: fatalError("baseline: full epilogue op");
          }
        } else {
          // Generic broadcast (e.g. [B,1,1,S] masks): per-row vector.
          assert(ExtT.Shape.back() == N && "epilogue operand width");
          int64_t ExtLead = 1;
          for (int64_t D = 0; D + 1 < ExtT.rank(); ++D)
            ExtLead *= ExtT.Shape[static_cast<size_t>(D)];
          int64_t BatchDiv = ExtLead > 1 ? Batch / ExtLead : 1;
          const float *V =
              Ext.dataAs<float>() +
              (ExtLead > 1 ? (Bt / BatchDiv) * N : 0);
          switch (E.kind()) {
          case OpKind::Add: kernels::addRowVecTile(Block, V); break;
          case OpKind::Sub: kernels::subRowVecTile(Block, V); break;
          case OpKind::Mul: kernels::mulRowVecTile(Block, V); break;
          default: fatalError("baseline: broadcast epilogue op");
          }
        }
        break;
      }
      default:
        fatalError("baseline: unexpected epilogue op");
      }
    }
    // Store the finished block (f32 path).
    float *Dst = Out.dataAs<float>() + (Bt * M + R0) * N;
    kernels::copyTile(TileF32{Dst, Rows, N, N},
                      ConstTileF32{BlockF, N});
  });
}

void LoopNestExecutor::executeStandalone(int64_t OpId) {
  const Op &O = G.op(OpId);
  const LogicalTensor &OutT = G.tensor(O.output(0));
  TensorData &Out = valueOf(O.output(0));
  const int64_t Cols = OutT.Shape.empty() ? 1 : OutT.Shape.back();
  const int64_t Rows = OutT.numElements() / std::max<int64_t>(1, Cols);
  const TileF32 OutTile{Out.dataAs<float>(), Rows, Cols, Cols};

  // Fast full-tensor paths over the vectorized tile kernels; anything
  // unusual falls back to the reference interpreter at the end.
  if (isUnaryElementwise(O.kind()) && OutT.Ty == DataType::F32) {
    const TensorData &X = valueOf(O.input(0));
    std::memcpy(Out.data(), X.data(), static_cast<size_t>(X.numBytes()));
    switch (O.kind()) {
    case OpKind::ReLU: kernels::reluTile(OutTile); return;
    case OpKind::Exp: kernels::expTile(OutTile); return;
    case OpKind::Tanh: kernels::tanhTile(OutTile); return;
    case OpKind::Sqrt: kernels::sqrtTile(OutTile); return;
    case OpKind::Reciprocal: kernels::recipTile(OutTile); return;
    case OpKind::Square: kernels::squareTile(OutTile); return;
    case OpKind::Sigmoid: kernels::sigmoidTile(OutTile); return;
    default: break;
    }
  }

  if (isBinaryElementwise(O.kind()) && OutT.Ty == DataType::F32) {
    const TensorData &A = valueOf(O.input(0));
    const TensorData &B = valueOf(O.input(1));
    const LogicalTensor &AT = G.tensor(O.input(0));
    const LogicalTensor &BT = G.tensor(O.input(1));
    if (AT.Shape == OutT.Shape) {
      std::memcpy(Out.data(), A.data(), static_cast<size_t>(A.numBytes()));
      const int64_t BElems = BT.numElements();
      bool Done = true;
      if (BT.Shape == OutT.Shape) {
        const ConstTileF32 Y{B.dataAs<float>(), Cols};
        switch (O.kind()) {
        case OpKind::Add: kernels::addTile(OutTile, Y); break;
        case OpKind::Sub: kernels::subTile(OutTile, Y); break;
        case OpKind::Mul: kernels::mulTile(OutTile, Y); break;
        case OpKind::Div: kernels::divTile(OutTile, Y); break;
        case OpKind::Max: kernels::maxTile(OutTile, Y); break;
        case OpKind::Min: kernels::minTile(OutTile, Y); break;
        default: Done = false;
        }
      } else if (BElems == 1) {
        const float S = B.dataAs<float>()[0];
        switch (O.kind()) {
        case OpKind::Add: kernels::affineTile(OutTile, 1.0f, S); break;
        case OpKind::Sub: kernels::affineTile(OutTile, 1.0f, -S); break;
        case OpKind::Mul: kernels::affineTile(OutTile, S, 0.0f); break;
        case OpKind::Div: kernels::affineTile(OutTile, 1.0f / S, 0.0f); break;
        default: Done = false;
        }
      } else if (BElems == Cols && BT.Shape.back() == Cols) {
        switch (O.kind()) {
        case OpKind::Add: kernels::addRowVecTile(OutTile, B.dataAs<float>()); break;
        case OpKind::Sub: kernels::subRowVecTile(OutTile, B.dataAs<float>()); break;
        case OpKind::Mul: kernels::mulRowVecTile(OutTile, B.dataAs<float>()); break;
        default: Done = false;
        }
      } else if (BElems == Rows && BT.Shape.back() == 1) {
        switch (O.kind()) {
        case OpKind::Add: kernels::addColVecTile(OutTile, B.dataAs<float>()); break;
        case OpKind::Sub: kernels::subColVecTile(OutTile, B.dataAs<float>()); break;
        case OpKind::Mul: kernels::mulColVecTile(OutTile, B.dataAs<float>()); break;
        case OpKind::Div: kernels::divColVecTile(OutTile, B.dataAs<float>()); break;
        default: Done = false;
        }
      } else {
        Done = false;
      }
      if (Done)
        return;
    }
  }

  if (isReduction(O.kind())) {
    const std::vector<int64_t> Axes = O.getAttrIntVec("axes");
    const LogicalTensor &InT = G.tensor(O.input(0));
    const bool LastAxis =
        Axes.size() == 1 && (Axes[0] == -1 || Axes[0] == InT.rank() - 1);
    if (LastAxis && InT.Ty == DataType::F32) {
      const TensorData &X = valueOf(O.input(0));
      const int64_t C = InT.Shape.back();
      const int64_t R = InT.numElements() / C;
      const TileF32 In{const_cast<float *>(X.dataAs<float>()), R, C, C};
      if (O.kind() == OpKind::ReduceSum)
        kernels::reduceSumRowsTile(In, Out.dataAs<float>(), false);
      else
        kernels::reduceMaxRowsTile(In, Out.dataAs<float>(), false);
      return;
    }
  }

  if (O.kind() == OpKind::Quantize && OutT.Ty == DataType::U8 &&
      !O.hasAttr("scales")) {
    const TensorData &X = valueOf(O.input(0));
    kernels::quantizeU8Tile(Out.dataAs<uint8_t>(), Cols,
                            X.dataAs<float>(), Cols, Rows, Cols,
                            1.0f / static_cast<float>(
                                       O.getAttrFloat("scale", 1.0)),
                            static_cast<int32_t>(O.getAttrInt("zp", 0)));
    return;
  }
  if (O.kind() == OpKind::Dequantize &&
      G.tensor(O.input(0)).Ty == DataType::U8 && !O.hasAttr("scales")) {
    const TensorData &X = valueOf(O.input(0));
    kernels::dequantU8Tile(Out.dataAs<float>(), Cols, X.dataAs<uint8_t>(),
                           Cols, Rows, Cols,
                           static_cast<float>(O.getAttrFloat("scale", 1.0)),
                           static_cast<int32_t>(O.getAttrInt("zp", 0)));
    return;
  }
  if (O.kind() == OpKind::Reshape) {
    const TensorData &X = valueOf(O.input(0));
    std::memcpy(Out.data(), X.data(), static_cast<size_t>(X.numBytes()));
    return;
  }
  if (O.kind() == OpKind::Transpose &&
      O.getAttrIntVec("perm") == std::vector<int64_t>{0, 2, 1, 3}) {
    const TensorData &X = valueOf(O.input(0));
    const auto &S = X.shape();
    kernels::permute0213(Out.data(), X.data(), S[0], S[1], S[2], S[3],
                         dataTypeSize(X.dtype()));
    return;
  }
  if (O.kind() == OpKind::DequantAcc) {
    const TensorData &Acc = valueOf(O.input(0));
    const TensorData &Comp = valueOf(O.input(1));
    const std::vector<double> Scales = O.getAttrFloatVec("scales");
    std::vector<float> ScaleVec(static_cast<size_t>(Cols));
    for (int64_t J = 0; J < Cols; ++J)
      ScaleVec[static_cast<size_t>(J)] = static_cast<float>(
          Scales.size() == 1 ? Scales[0] : Scales[static_cast<size_t>(J)]);
    kernels::dequantAccTile(
        Out.dataAs<float>(), Cols, Acc.dataAs<int32_t>(), Cols, Rows, Cols,
        Comp.numElements() > 1 ? Comp.dataAs<int32_t>() : nullptr,
        static_cast<int32_t>(O.getAttrInt("a_zp", 0)), ScaleVec.data());
    return;
  }

  // Slow path: reference semantics (uncommon ops only).
  std::vector<const TensorData *> Inputs;
  for (int64_t In : O.inputs())
    Inputs.push_back(&valueOf(In));
  std::vector<TensorData> Outs = evalOpReference(G, O, Inputs);
  for (size_t I = 0; I < Outs.size(); ++I) {
    TensorData &Slot = valueOf(O.output(I));
    std::memcpy(Slot.data(), Outs[I].data(),
                static_cast<size_t>(Outs[I].numBytes()));
  }
}

} // namespace baseline
} // namespace gc
