//===- partitioner.h - Graph -> partition discovery -------------*- C++ -*-===//
///
/// \file
/// Carves a finalized Graph IR graph into maximal executable partitions,
/// mirroring the oneDNN Graph API's get_partitions() step (§VII). Ops the
/// compiler can lower group into Compiled partitions; unsupported or
/// unknown ops (and ops explicitly pinned with attr impl="reference") form
/// Fallback partitions executed by the reference interpreter, so any valid
/// graph runs end-to-end. The partition list is topologically ordered:
/// executing partitions in list order respects every data dependency.
///
/// Two grouping policies, selected per compile (CompileOptions::
/// SplitIndependentPartitions / GC_PARTITION): the default merges
/// independent same-kind ops into one maximal partition (fewest
/// partitions, largest fusion scope); the split policy additionally
/// separates dataflow-disconnected op groups into their own partitions so
/// the async scheduler (Stream::submit) can run independent branches
/// concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef GC_API_PARTITIONER_H
#define GC_API_PARTITIONER_H

#include "graph/graph.h"
#include "support/status.h"

#include <vector>

namespace gc {
namespace api {

/// How a partition executes.
enum class PartitionKind : uint8_t {
  Compiled, ///< lowered through the full compiler pipeline
  Fallback, ///< interpreted by the reference evaluator
};

/// One partition of a source graph. The subgraph preserves the source
/// graph's tensor ids, so boundary tensors are identified across
/// partitions by id. Constants initially reference the source graph's
/// data as non-owning views; api::Session drops them (compiled) or
/// deep-copies them (fallback) when it builds the CompiledGraph.
struct PartitionSpec {
  PartitionKind Kind = PartitionKind::Compiled;
  /// Source-graph op ids belonging to this partition (topological order).
  std::vector<int64_t> OpIds;
  /// The extracted subgraph; inputs()/outputs() define execute() order.
  graph::Graph Subgraph;
};

/// Walks a graph and produces its partition list.
class Partitioner {
public:
  /// \brief Binds the partitioner to \p G (borrowed; must outlive it).
  explicit Partitioner(const graph::Graph &G) : G(G) {}

  /// \brief True when the compiler pipeline can lower \p O on the main
  /// side. partition() additionally admits any-kind ops on the constant
  /// (fold) side, which the compiled pipeline preprocesses at first
  /// execution.
  static bool isCompilable(const graph::Graph &G, const graph::Op &O);

  /// \brief Carves the graph into maximal same-kind partitions. Ops join
  /// the latest partition that (a) matches their kind and (b) is not
  /// earlier than any producer's partition, which keeps the partition DAG
  /// acyclic while merging across independent unsupported ops.
  ///
  /// With \p SplitIndependent, each maximal partition is additionally
  /// split into its weakly-connected dataflow components (ops connected
  /// only through a shared *input* stay separate), so independent
  /// branches become schedulable in parallel; the returned list is still
  /// topologically ordered.
  Expected<std::vector<PartitionSpec>>
  partition(bool SplitIndependent = false) const;

private:
  const graph::Graph &G;
};

} // namespace api
} // namespace gc

#endif // GC_API_PARTITIONER_H
