//===- session.h - Public Session / CompiledGraph / Stream API --*- C++ -*-===//
///
/// \file
/// The partition-based public API, mirroring the oneDNN Graph API flow of
/// §VII: finalize a graph, discover partitions, compile each partition,
/// execute on a stream.
///
///   api::Session S;                          // options + shared thread pool
///   G.finalize();
///   auto Compiled = S.compile(G);            // Expected<CompiledGraphPtr>
///   if (!Compiled) ...;                      // Status error, no abort
///   api::Stream Str = S.stream();
///   Str.execute(**Compiled, {&X}, {&Y});     // thread-safe, repeatable
///
/// A Session owns the CompileOptions, a thread pool shared by every
/// partition it compiles, and a compiled-partition cache keyed by the
/// canonical subgraph fingerprint: recompiling an identical subgraph
/// returns the cached CompiledPartition (pointer identity). Ops the
/// compiler cannot lower run in reference-interpreter fallback partitions,
/// so any valid graph executes end-to-end.
///
//===----------------------------------------------------------------------===//

#ifndef GC_API_SESSION_H
#define GC_API_SESSION_H

#include "api/partitioner.h"
#include "core/compiler.h"
#include "graph/graph.h"
#include "runtime/tensor_data.h"
#include "runtime/thread_pool.h"
#include "support/status.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gc {
namespace api {

class Session;
class Stream;

/// A fully prepared executable graph: the ordered partition list with one
/// CompiledPartition per compiled partition (fallback partitions carry
/// none and interpret their subgraph). Immutable after compilation and
/// safe to execute from many streams/threads concurrently.
class CompiledGraph {
public:
  size_t numPartitions() const { return Parts.size(); }
  PartitionKind partitionKind(size_t I) const { return Parts[I].Spec.Kind; }
  /// The compiled executable of partition \p I; nullptr for fallback
  /// partitions. Pointer identity with a previous compile() of an
  /// identical subgraph demonstrates a cache hit.
  std::shared_ptr<core::CompiledPartition> compiledPartition(size_t I) const {
    return Parts[I].Compiled;
  }
  /// Number of partitions served by the reference interpreter.
  size_t numFallbackPartitions() const;

  /// Graph boundary in source declaration order.
  const std::vector<int64_t> &inputIds() const { return InputIds; }
  const std::vector<int64_t> &outputIds() const { return OutputIds; }
  /// Logical shapes of the graph outputs, in output order.
  std::vector<std::vector<int64_t>> outputShapes() const;

private:
  friend class Session;
  friend class Stream;

  struct Part {
    PartitionSpec Spec;
    std::shared_ptr<core::CompiledPartition> Compiled; // null = fallback
  };

  std::vector<Part> Parts;
  std::vector<int64_t> InputIds;
  std::vector<int64_t> OutputIds;
  /// Boundary metadata (dtype/shape) per graph input/output for argument
  /// validation and intermediate allocation.
  std::vector<graph::LogicalTensor> InputMeta;
  std::vector<graph::LogicalTensor> OutputMeta;
  /// Graph outputs that are plain copies of a graph input
  /// (output index -> input index); no partition produces them.
  std::vector<std::pair<size_t, size_t>> Passthrough;
  /// Outputs listing a tensor already listed earlier (duplicate index ->
  /// first index); partitions write the first, execute copies the rest.
  std::vector<std::pair<size_t, size_t>> DuplicateOutputs;
  /// Fast-path flag: exactly one compiled partition whose boundary equals
  /// the graph boundary (no intermediates, pass-throughs or duplicate
  /// outputs), so execute() forwards the caller tensors directly instead
  /// of building a per-execution tensor environment.
  bool Direct = false;
};

using CompiledGraphPtr = std::shared_ptr<CompiledGraph>;

/// Execution handle vended by a session. Streams are cheap empty value
/// objects; execute() is thread-safe and any number of streams may execute
/// the same CompiledGraph concurrently (per-execution scratch, fold-once —
/// the compiled partitions carry their session's thread pool).
class Stream {
public:
  /// Executes \p CG. \p Inputs follow the source graph's input declaration
  /// order, \p Outputs its output order (caller-allocated, plain
  /// row-major). Compiled partitions run on the session's thread pool;
  /// fallback partitions interpret. Boundary tensors between partitions
  /// are allocated per execution.
  Status execute(const CompiledGraph &CG,
                 const std::vector<runtime::TensorData *> &Inputs,
                 const std::vector<runtime::TensorData *> &Outputs) const;

private:
  friend class Session;
  Stream() = default;
};

/// Owns compilation options, the execution thread pool, and the
/// compiled-partition cache. Thread-safe: compile() and Stream::execute()
/// may be called concurrently.
class Session {
public:
  explicit Session(core::CompileOptions Opts = {});

  const core::CompileOptions &options() const { return Opts; }
  runtime::ThreadPool &threadPool() const { return *Pool; }

  /// Finalizes (verifies) \p G if needed, partitions it, and compiles
  /// every compilable partition — identical subgraphs are served from the
  /// session cache. Partitions the compiler rejects as unsupported are
  /// demoted to reference fallback instead of failing the compile.
  Expected<CompiledGraphPtr> compile(const graph::Graph &G);

  /// Creates an execution stream.
  Stream stream() { return Stream(); }

  /// Compiled-partition cache introspection.
  size_t cacheSize() const;
  uint64_t cacheHits() const { return Hits.load(); }
  uint64_t cacheMisses() const { return Misses.load(); }
  void clearCache();

private:
  friend class Stream;

  core::CompileOptions Opts;
  std::shared_ptr<runtime::ThreadPool> Pool;

  mutable std::mutex CacheMutex;
  std::unordered_map<uint64_t, std::shared_ptr<core::CompiledPartition>>
      Cache;
  /// Negative cache: subgraph fingerprints the compiler already rejected
  /// as Unsupported; later compiles demote straight to fallback without
  /// re-running the pass pipeline and lowering.
  std::unordered_set<uint64_t> UnsupportedKeys;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace api
} // namespace gc

#endif // GC_API_SESSION_H
