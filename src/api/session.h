//===- session.h - Public Session / CompiledGraph / Stream API --*- C++ -*-===//
///
/// \file
/// The partition-based public API, mirroring the oneDNN Graph API flow of
/// §VII: finalize a graph, discover partitions, compile each partition,
/// execute on a stream — synchronously, or asynchronously along the
/// partition dependency DAG.
///
///   api::Session S;                          // options + shared thread pool
///   G.finalize();
///   auto Compiled = S.compile(G);            // Expected<CompiledGraphPtr>
///   if (!Compiled) ...;                      // Status error, no abort
///   api::Stream Str = S.stream();
///   Str.execute(**Compiled, {&X}, {&Y});     // synchronous, thread-safe
///
///   // Asynchronous: submit() returns immediately with an Event; ready
///   // partitions of the DAG run concurrently on the session pool.
///   api::Event E = Str.submit(*Compiled, {&X}, {&Y});
///   ... /* overlap other work */ ...
///   if (Status S2 = E.wait(); !S2.isOk()) ...;
///
/// A Session owns the CompileOptions, a thread pool shared by every
/// partition it compiles, and a compiled-partition cache keyed by the
/// canonical subgraph fingerprint: recompiling an identical subgraph
/// returns the cached CompiledPartition (pointer identity). Ops the
/// compiler cannot lower run in reference-interpreter fallback partitions,
/// so any valid graph executes end-to-end.
///
/// Compilation additionally produces an execution plan over the partition
/// list: the partition dependency DAG (producer/consumer edges over
/// boundary tensor ids) that drives the async scheduler, and a
/// lifetime-based memory plan that packs every cross-partition
/// intermediate into one reusable arena instead of allocating it per
/// execution.
///
//===----------------------------------------------------------------------===//

#ifndef GC_API_SESSION_H
#define GC_API_SESSION_H

#include "api/event.h"
#include "api/partitioner.h"
#include "core/compiler.h"
#include "graph/graph.h"
#include "runtime/tensor_data.h"
#include "runtime/thread_pool.h"
#include "support/status.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gc {
namespace api {

class Session;
class Stream;

namespace detail {
struct Submission;
struct StreamState;
struct SessionState;

/// Cheap structural signature of a subgraph boundary: input/output arity
/// plus dtype and shape of every boundary tensor. Collision guard for the
/// fingerprint-keyed caches — two subgraphs whose 64-bit fingerprints
/// collide almost surely differ here, and comparing it costs nothing next
/// to a recompile.
std::vector<int64_t> boundarySignature(const graph::Graph &G);

/// Live fault-tolerance counters shared by a Session, its Streams and
/// their in-flight Submissions; snapshot through Session::healthStats().
/// The counters record what the graceful-degradation policy did, the
/// WarnedAxes bitmask limits the structured stderr warning to one line
/// per degradation axis per session.
struct HealthState {
  std::atomic<uint64_t> TransientFailures{0};
  std::atomic<uint64_t> DegradedToTree{0};
  std::atomic<uint64_t> DegradedToSerial{0};
  std::atomic<uint64_t> DegradedToReference{0};
  std::atomic<uint64_t> CacheFallbacks{0};
  std::atomic<uint64_t> CacheLockTimeouts{0};
  std::atomic<uint64_t> DeadlinesExceeded{0};
  std::atomic<uint64_t> Cancellations{0};
  std::atomic<uint64_t> MemLimitRejections{0};
  std::atomic<uint32_t> WarnedAxes{0};

  /// Emits "[gc] degraded axis=<Axis>: <Detail>" to stderr, once per
  /// \p Axis (a member of the fixed axis list in session.cpp) for this
  /// session's lifetime.
  void warnOnce(const char *Axis, const char *Detail);
};
} // namespace detail

/// Point-in-time snapshot of a session's fault-tolerance counters
/// (Session::healthStats()): how often transient failures were observed
/// and which degradation axes absorbed them. All counters are cumulative
/// since session construction.
struct HealthStats {
  /// Transient-classified failures observed anywhere in the stack
  /// (includes the ones a fallback then absorbed).
  uint64_t TransientFailures = 0;
  /// Compiles that fell back from the bytecode pipeline to the tree
  /// evaluator.
  uint64_t DegradedToTree = 0;
  /// Executions that fell back from the async scheduler to the serial
  /// (or inline) schedule.
  uint64_t DegradedToSerial = 0;
  /// Polymorphic executions served by the reference interpreter because
  /// the bucket specialization could not be produced.
  uint64_t DegradedToReference = 0;
  /// Compiles that proceeded in-process because the disk artifact cache
  /// could not serve (I/O failure or lock timeout).
  uint64_t CacheFallbacks = 0;
  /// Subset of CacheFallbacks caused by the bounded GC_CACHE_LOCK_MS
  /// wait expiring.
  uint64_t CacheLockTimeouts = 0;
  /// Submissions that terminated with DeadlineExceeded.
  uint64_t DeadlinesExceeded = 0;
  /// Submissions that terminated with Cancelled.
  uint64_t Cancellations = 0;
  /// Allocations refused because GC_MEM_LIMIT was reached.
  uint64_t MemLimitRejections = 0;
};

/// Per-submission options for Stream::submit().
struct SubmitOptions {
  /// Deadline for the whole submission, in milliseconds from submit()
  /// (0 = none). The deadline is checked at partition boundaries: when it
  /// passes, partitions not yet started are abandoned, in-flight ones
  /// drain, and the Event reports DeadlineExceeded. A single-partition
  /// (synchronous-shortcut) submission runs to completion and reports the
  /// deadline only if it was already missed at submit time.
  int64_t TimeoutMs = 0;
};

/// A fully prepared executable graph: the ordered partition list with one
/// CompiledPartition per compiled partition (fallback partitions carry
/// none and interpret their subgraph), plus the execution plan computed at
/// compile time — the partition dependency DAG and the packed
/// intermediate memory plan. Immutable after compilation and safe to
/// execute from many streams/threads concurrently; overlapping
/// submissions of the same CompiledGraph are safe (each execution leases
/// its own ExecState and arena).
///
/// Graphs whose tensors carry LogicalTensor::kDynamicDim compile into a
/// *batch-polymorphic* CompiledGraph instead: one compile() serves every
/// batch size. Execution reads the concrete batch from the bound input
/// buffers, rounds it to a bucket (CompileOptions::Bucketing /
/// GC_BATCH_BUCKETS) and lazily compiles one static specialization per
/// bucket into a thread-safe LRU cache (CompileOptions::SpecCacheCap /
/// GC_SPEC_CACHE). A batch below its bucket executes the padded
/// specialization on zero-padded inputs and clips the padded rows off the
/// outputs, which the dynamic-dim validation rules make bit-identical to
/// an exact-shape compile. Partition-level introspection
/// (numPartitions() etc.) describes the specializations, not the
/// polymorphic shell, which reports zero partitions until one exists.
class CompiledGraph {
public:
  /// Releases the MemBudget charges of any cached specializations.
  ~CompiledGraph();

  /// \brief Number of partitions, in topological (serial execution) order.
  size_t numPartitions() const { return Parts.size(); }
  /// \brief Execution kind of partition \p I (compiled vs. fallback).
  PartitionKind partitionKind(size_t I) const { return Parts[I].Spec.Kind; }
  /// \brief The compiled executable of partition \p I; nullptr for
  /// fallback partitions. Pointer identity with a previous compile() of an
  /// identical subgraph demonstrates a cache hit.
  std::shared_ptr<core::CompiledPartition> compiledPartition(size_t I) const {
    return Parts[I].Compiled;
  }
  /// \brief Number of partitions served by the reference interpreter.
  size_t numFallbackPartitions() const;

  /// \brief Graph input ids in source declaration order.
  const std::vector<int64_t> &inputIds() const { return InputIds; }
  /// \brief Graph output ids in source declaration order.
  const std::vector<int64_t> &outputIds() const { return OutputIds; }
  /// \brief Logical shapes of the graph outputs, in output order.
  std::vector<std::vector<int64_t>> outputShapes() const;

  /// \name Execution-plan introspection (dependency DAG + memory plan)
  /// @{

  /// \brief Number of partitions that must complete before partition \p I
  /// may start (distinct producers of its boundary inputs). Roots of the
  /// dependency DAG report 0.
  size_t partitionPredecessorCount(size_t I) const {
    return Plans[I].NumPreds;
  }
  /// \brief Partitions directly unblocked by partition \p I's completion.
  const std::vector<uint32_t> &partitionSuccessors(size_t I) const {
    return Plans[I].Succs;
  }
  /// \brief Cross-partition intermediates packed into the execution arena.
  size_t numIntermediateTensors() const { return ScratchSlots.size(); }
  /// \brief Bytes of the per-execution arena after lifetime packing (0
  /// when the graph has no cross-partition intermediates). Intermediates
  /// whose lifetimes cannot overlap under any DAG-consistent schedule
  /// share offsets.
  size_t scratchArenaBytes() const { return ArenaBytes; }
  /// \brief Arena bytes a naive plan (one slot per intermediate, no
  /// sharing) would need; the packing win is the ratio to
  /// scratchArenaBytes().
  size_t scratchArenaBytesNoReuse() const { return ArenaBytesNoReuse; }

  /// @}

  /// \name Batch-polymorphic introspection
  /// @{

  /// \brief True when this graph was compiled from a dynamic-batch source
  /// and specializes per concrete batch at execution time.
  bool isPolymorphic() const { return Polymorphic; }
  /// \brief Specializations currently cached.
  size_t numSpecializations() const;
  /// \brief Bucket sizes currently cached, unordered.
  std::vector<int64_t> specializationBuckets() const;
  /// \brief The cached specialization whose bucket serves \p Batch, or
  /// nullptr when none is cached yet (never compiles).
  std::shared_ptr<CompiledGraph> cachedSpecializationFor(int64_t Batch) const;
  /// \brief Executions served by an already-cached specialization.
  uint64_t specializationHits() const { return SpecHits.load(); }
  /// \brief Executions that had to compile a new specialization.
  uint64_t specializationMisses() const { return SpecMisses.load(); }

  /// @}

private:
  friend class Session;
  friend class Stream;
  friend struct detail::Submission;
  friend struct detail::SessionState;

  /// Returns (compiling and caching if needed) the specialization for
  /// \p Bucket. Thread-safe; a cold bucket is marked in flight and
  /// compiled OUTSIDE the cache lock, so warm hits on other buckets are
  /// never stalled while concurrent first executions of one bucket still
  /// compile it exactly once.
  Expected<std::shared_ptr<CompiledGraph>>
  specializationForBucket(int64_t Bucket) const;

  struct Part {
    PartitionSpec Spec;
    std::shared_ptr<core::CompiledPartition> Compiled; // null = fallback
  };

  /// Where one partition boundary tensor lives at execution time.
  struct BoundRef {
    enum class Loc : uint8_t {
      GraphInput,  ///< caller-provided Inputs[Index]
      GraphOutput, ///< caller-provided Outputs[Index] (first listing)
      Scratch,     ///< arena intermediate ScratchSlots[Index]
    };
    Loc Where = Loc::GraphInput;
    uint32_t Index = 0;
  };

  /// Per-partition execution plan: argument resolution (no per-execution
  /// id lookups) and dependency edges for the async scheduler.
  struct PartitionPlan {
    std::vector<BoundRef> Ins;   ///< one per subgraph input, in order
    std::vector<BoundRef> Outs;  ///< one per subgraph output, in order
    std::vector<uint32_t> Succs; ///< partitions unblocked by completion
    uint32_t NumPreds = 0;       ///< distinct producer partitions
  };

  /// One cross-partition intermediate with its packed arena placement.
  struct ScratchSlot {
    int64_t TensorId = -1;
    graph::LogicalTensor Meta;
    size_t Offset = 0; ///< byte offset into the execution arena
    size_t Bytes = 0;
  };

  /// Builds Plans/ScratchSlots/ArenaBytes from the finished partition
  /// list; called once at the end of Session::compile().
  Status buildExecutionPlan();

  std::vector<Part> Parts;
  std::vector<PartitionPlan> Plans;
  std::vector<ScratchSlot> ScratchSlots;
  size_t ArenaBytes = 0;
  size_t ArenaBytesNoReuse = 0;

  std::vector<int64_t> InputIds;
  std::vector<int64_t> OutputIds;
  /// Boundary metadata (dtype/shape) per graph input/output for argument
  /// validation and intermediate allocation.
  std::vector<graph::LogicalTensor> InputMeta;
  std::vector<graph::LogicalTensor> OutputMeta;
  /// Graph outputs that are plain copies of a graph input
  /// (output index -> input index); no partition produces them.
  std::vector<std::pair<size_t, size_t>> Passthrough;
  /// Outputs listing a tensor already listed earlier (duplicate index ->
  /// first index); partitions write the first, execute copies the rest.
  std::vector<std::pair<size_t, size_t>> DuplicateOutputs;
  /// Fast-path flag: exactly one compiled partition whose boundary equals
  /// the graph boundary (no intermediates, pass-throughs or duplicate
  /// outputs), so execute() forwards the caller tensors directly instead
  /// of building a per-execution tensor environment.
  bool Direct = false;

  /// \name Batch-polymorphic state (set only when Polymorphic)
  /// @{

  bool Polymorphic = false;
  /// The dynamic-batch source graph; owns its constant payloads so
  /// specializations can compile after the caller's graph is gone.
  graph::Graph SourceG;
  /// Compile-side session state (options, pool, partition cache) pinned so
  /// specializations compile through the same cache — and keep working if
  /// the Session object itself has been destroyed.
  std::shared_ptr<detail::SessionState> Sess;
  core::BatchBucketing Bucketing = core::BatchBucketing::Pow2;
  size_t SpecCap = 16;
  /// Graph input / output positions carrying the dynamic batch dimension.
  std::vector<size_t> DynamicInputs;
  std::vector<size_t> DynamicOutputs;

  struct Specialization {
    int64_t Bucket = 0;
    std::shared_ptr<CompiledGraph> CG;
    uint64_t LastUse = 0; ///< LRU clock value of the latest lookup
    size_t Charged = 0;   ///< bytes charged against MemBudget (GC_MEM_LIMIT)
  };
  mutable std::mutex SpecMutex;
  /// Signals removal from InFlightBuckets: waiters re-check the cache.
  mutable std::condition_variable SpecCv;
  mutable std::vector<Specialization> Specs; ///< small; linear scan
  /// Buckets whose specialization is compiling right now, outside the
  /// lock — so a cold batch size never blocks warm hits on other
  /// buckets, while concurrent firsts of one bucket still compile once.
  mutable std::vector<int64_t> InFlightBuckets;
  mutable uint64_t SpecClock = 0;
  mutable std::atomic<uint64_t> SpecHits{0};
  mutable std::atomic<uint64_t> SpecMisses{0};

  /// @}
};

using CompiledGraphPtr = std::shared_ptr<CompiledGraph>;

/// Execution handle vended by a session. A Stream is a cheap value object
/// sharing a small state block (the arena free list) with its copies;
/// both execute() and submit() are thread-safe and any number of streams
/// may run the same CompiledGraph concurrently (per-execution ExecState
/// leasing and per-submission arenas — executions never share scratch).
///
/// Lifetime: a Stream must not outlive its Session's thread pool (keep
/// the Session alive while streams are in use). Asynchronous submissions
/// pin the CompiledGraph, the thread pool and the stream state until the
/// Event completes, so dropping those handles mid-flight is safe; the
/// caller-owned input/output tensors are the one thing the caller must
/// keep alive (and not mutate) until the Event reports completion.
class Stream {
public:
  /// \brief Executes \p CG synchronously. \p Inputs follow the source
  /// graph's input declaration order, \p Outputs its output order
  /// (caller-allocated, plain row-major). Compiled partitions run on the
  /// session's thread pool; fallback partitions interpret.
  /// Cross-partition intermediates live in a packed arena leased from the
  /// stream and recycled across executions. With CompileOptions::AsyncExec
  /// (GC_SCHED=async), multi-partition graphs route through the async
  /// scheduler and wait, so independent partitions overlap even here.
  Status execute(const CompiledGraph &CG,
                 const std::vector<runtime::TensorData *> &Inputs,
                 const std::vector<runtime::TensorData *> &Outputs) const;

  /// \brief Launches \p CG asynchronously and returns immediately with an
  /// Event. Partitions whose producers have completed are scheduled
  /// concurrently as tasks on the session's thread pool (fallback
  /// partitions included), following the dependency DAG; kernels inside a
  /// scheduled partition run serially on their worker, so submit() trades
  /// intra-partition (loop-level) parallelism for inter-partition
  /// overlap — the win on multi-branch graphs; see docs/TUNING.md.
  ///
  /// Single-partition graphs (nothing to overlap) execute synchronously
  /// on the caller with full loop-level parallelism; the returned Event
  /// is already complete. Argument errors are reported through the
  /// Event's Status, never thrown or aborted.
  ///
  /// The submission keeps \p CG, the pool and the stream state alive; the
  /// caller must keep \p Inputs / \p Outputs storage alive and unmodified
  /// until the Event completes. Overlapping submissions of the same
  /// CompiledGraph (same or different streams/threads) are safe.
  Event submit(const CompiledGraphPtr &CG,
               const std::vector<runtime::TensorData *> &Inputs,
               const std::vector<runtime::TensorData *> &Outputs) const;

  /// \brief submit() with per-submission options (deadline). See
  /// SubmitOptions; the parameterless overload forwards here with
  /// defaults.
  Event submit(const CompiledGraphPtr &CG,
               const std::vector<runtime::TensorData *> &Inputs,
               const std::vector<runtime::TensorData *> &Outputs,
               const SubmitOptions &Opts) const;

private:
  friend class Session;
  explicit Stream(std::shared_ptr<detail::StreamState> State)
      : State(std::move(State)) {}

  /// Polymorphic execute(): resolves the concrete batch from the bound
  /// inputs, fetches/compiles the bucket specialization and runs it via
  /// executeResolved().
  Status executePolymorphic(
      const CompiledGraph &CG,
      const std::vector<runtime::TensorData *> &Inputs,
      const std::vector<runtime::TensorData *> &Outputs) const;

  /// Runs an already-resolved polymorphic execution: directly for
  /// bucket-exact batches, otherwise on zero-padded inputs with
  /// row-clipped outputs. Shared by executePolymorphic() and the padded
  /// submit() path (which has already resolved batch and specialization).
  Status executeResolved(const CompiledGraph &CG, const CompiledGraph &Spec,
                         int64_t Batch, int64_t Bucket,
                         const std::vector<runtime::TensorData *> &Inputs,
                         const std::vector<runtime::TensorData *> &Outputs)
      const;

  std::shared_ptr<detail::StreamState> State;
};

/// Owns compilation options, the execution thread pool, and the
/// compiled-partition cache. Thread-safe: compile(), Stream::execute()
/// and Stream::submit() may all be called concurrently.
class Session {
public:
  /// \brief Creates a session. \p Opts selects the pass pipeline, the
  /// execution backend, the partitioning policy and the thread count
  /// (0 = GC_THREADS / hardware concurrency).
  explicit Session(core::CompileOptions Opts = {});

  // Internally one shared state block; copying would silently alias the
  // compile cache and statistics, and a moved-from session would hold a
  // null state block where every method would crash — keep sessions
  // single-identity and pinned, exactly as when they held the mutex and
  // cache directly.
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;
  Session(Session &&) = delete;
  Session &operator=(Session &&) = delete;

  /// \brief Compilation options this session applies to every compile().
  const core::CompileOptions &options() const;
  /// \brief The execution thread pool shared by this session's partitions.
  runtime::ThreadPool &threadPool() const;

  /// \brief Finalizes (verifies) \p G if needed, partitions it, compiles
  /// every compilable partition — identical subgraphs are served from the
  /// session cache — and computes the execution plan (dependency DAG +
  /// packed intermediate arena). Partitions the compiler rejects as
  /// unsupported are demoted to reference fallback instead of failing the
  /// compile.
  ///
  /// A graph carrying LogicalTensor::kDynamicDim returns a
  /// batch-polymorphic CompiledGraph whose specializations compile lazily
  /// at execution time, through this session's partition cache and
  /// statistics (the polymorphic graph pins the compile-side state, so it
  /// stays executable even if the Session is destroyed first).
  Expected<CompiledGraphPtr> compile(const graph::Graph &G);

  /// \brief Creates an execution stream (cheap; one arena free list per
  /// stream object and its copies).
  Stream stream();

  /// \brief Number of compiled partitions currently cached.
  size_t cacheSize() const;
  /// \brief Times compile() served a partition from the cache.
  uint64_t cacheHits() const;
  /// \brief Times compile() had to run the full pipeline.
  uint64_t cacheMisses() const;
  /// \brief Drops every cached partition and negative-cache entry.
  void clearCache();

  /// \brief Times an in-memory miss was served from the persistent
  /// artifact cache (GC_CACHE); 0 when the disk cache is disabled.
  uint64_t diskCacheHits() const;
  /// \brief Times the persistent artifact cache was consulted and could
  /// not serve (missing, corrupt, or rejected entry).
  uint64_t diskCacheMisses() const;
  /// \brief Artifacts this session stored to the persistent cache.
  uint64_t diskCacheStores() const;

  /// \brief Snapshot of the fault-tolerance counters: transient failures
  /// observed and degradations taken (see HealthStats). All zeros on a
  /// healthy session.
  HealthStats healthStats() const;

  /// \brief Test seam: seeds the negative (unsupported) cache with \p Key
  /// bound to \p Boundary's signature, simulating a fingerprint collision
  /// with a previously rejected subgraph. Production code never calls
  /// this.
  void injectUnsupportedKeyForTesting(uint64_t Key,
                                      const graph::Graph &Boundary);

private:
  friend class Stream;

  std::shared_ptr<detail::SessionState> State;
};

} // namespace api
} // namespace gc

#endif // GC_API_SESSION_H
