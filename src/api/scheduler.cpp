//===- scheduler.cpp - Async partition DAG scheduler (internal) ---------------===//

#include "api/scheduler.h"

#include "graph/reference.h"
#include "support/str.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

namespace gc {
namespace api {
namespace detail {

using namespace graph;

//===----------------------------------------------------------------------===//
// StreamState: per-stream arena free list
//===----------------------------------------------------------------------===//

Expected<std::unique_ptr<runtime::PlanArena>>
StreamState::acquireArena(size_t Bytes) {
  std::unique_ptr<runtime::PlanArena> Arena;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!FreeArenas.empty()) {
      Arena = std::move(FreeArenas.back());
      FreeArenas.pop_back();
    }
  }
  if (!Arena)
    Arena = std::make_unique<runtime::PlanArena>();
  if (Status S = Arena->tryEnsure(Bytes); !S.isOk()) {
    // Drop (not recycle) the arena: under budget pressure its charge is
    // exactly what a concurrent execution may be waiting for.
    return S;
  }
  return Arena;
}

void StreamState::releaseArena(std::unique_ptr<runtime::PlanArena> Arena) {
  // Bound the free list like the ExecState pool: a concurrency burst must
  // not pin one arena per peak-parallel execution for the stream's
  // lifetime.
  constexpr size_t kMaxFreeArenas = 8;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (FreeArenas.size() < kMaxFreeArenas)
    FreeArenas.push_back(std::move(Arena));
}

//===----------------------------------------------------------------------===//
// Shared execution helpers (serial path + scheduler tasks)
//===----------------------------------------------------------------------===//

namespace {

/// Checks one caller tensor against the graph-boundary metadata. With
/// \p Batch (polymorphic graphs), metadata dimensions equal to
/// LogicalTensor::kDynamicDim accept any positive extent but must agree
/// on one value across the whole execution, accumulated into *Batch
/// (pass -1 initially); without it, shapes must match exactly.
Status checkBoundaryTensor(const runtime::TensorData *T,
                           const LogicalTensor &Meta, const char *What,
                           size_t Index, int64_t *Batch = nullptr) {
  if (!T || !T->valid())
    return Status::error(StatusCode::InvalidArgument,
                         formatString("%s %zu is null", What, Index));
  if (T->dtype() != Meta.Ty)
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("%s %zu dtype mismatch: got %s, expected %s", What,
                     Index, dataTypeName(T->dtype()),
                     dataTypeName(Meta.Ty)));
  // Built only on the failing branches: this helper runs per boundary
  // tensor on every execution, and the formatting allocates.
  auto shapeErr = [&] {
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("%s %zu shape mismatch: got %s, expected %s", What,
                     Index, shapeToString(T->shape()).c_str(),
                     shapeToString(Meta.Shape).c_str()));
  };
  if (!Batch)
    return T->shape() == Meta.Shape ? Status::ok() : shapeErr();
  if (T->rank() != Meta.rank())
    return shapeErr();
  for (size_t D = 0; D < Meta.Shape.size(); ++D) {
    const int64_t Want = Meta.Shape[D];
    const int64_t Got = T->shape()[D];
    if (Want == LogicalTensor::kDynamicDim) {
      if (Got <= 0)
        return Status::error(
            StatusCode::InvalidArgument,
            formatString("%s %zu has non-positive batch %lld", What,
                         Index, (long long)Got));
      if (*Batch < 0)
        *Batch = Got;
      else if (Got != *Batch)
        return Status::error(
            StatusCode::InvalidArgument,
            formatString("%s %zu batch mismatch: got %lld, but another "
                         "dynamic tensor of this execution is batch %lld",
                         What, Index, (long long)Got, (long long)*Batch));
    } else if (Got != Want) {
      return shapeErr();
    }
  }
  return Status::ok();
}

} // namespace

Status Submission::validateBoundary(
    const CompiledGraph &CG,
    const std::vector<runtime::TensorData *> &Inputs,
    const std::vector<runtime::TensorData *> &Outputs) {
  if (Inputs.size() != CG.InputIds.size())
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("input arity mismatch: got %zu, expected %zu",
                     Inputs.size(), CG.InputIds.size()));
  if (Outputs.size() != CG.OutputIds.size())
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("output arity mismatch: got %zu, expected %zu",
                     Outputs.size(), CG.OutputIds.size()));
  for (size_t I = 0; I < Inputs.size(); ++I)
    if (Status S = checkBoundaryTensor(Inputs[I], CG.InputMeta[I], "input", I);
        !S.isOk())
      return S;
  for (size_t I = 0; I < Outputs.size(); ++I)
    if (Status S =
            checkBoundaryTensor(Outputs[I], CG.OutputMeta[I], "output", I);
        !S.isOk())
      return S;
  return Status::ok();
}

Expected<int64_t> Submission::resolveDynamicBatch(
    const CompiledGraph &CG,
    const std::vector<runtime::TensorData *> &Inputs,
    const std::vector<runtime::TensorData *> &Outputs) {
  if (Inputs.size() != CG.InputIds.size())
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("input arity mismatch: got %zu, expected %zu",
                     Inputs.size(), CG.InputIds.size()));
  if (Outputs.size() != CG.OutputIds.size())
    return Status::error(
        StatusCode::InvalidArgument,
        formatString("output arity mismatch: got %zu, expected %zu",
                     Outputs.size(), CG.OutputIds.size()));
  int64_t Batch = -1;
  for (size_t I = 0; I < Inputs.size(); ++I)
    if (Status S =
            checkBoundaryTensor(Inputs[I], CG.InputMeta[I], "input", I,
                                &Batch);
        !S.isOk())
      return S;
  for (size_t I = 0; I < Outputs.size(); ++I)
    if (Status S = checkBoundaryTensor(Outputs[I], CG.OutputMeta[I],
                                       "output", I, &Batch);
        !S.isOk())
      return S;
  if (Batch < 0)
    return Status::error(
        StatusCode::Internal,
        "polymorphic graph bound no dynamic tensor to read the batch from");
  return Batch;
}

Status Submission::runPartition(
    const CompiledGraph &CG, size_t I,
    const std::vector<runtime::TensorData *> &Ins,
    const std::vector<runtime::TensorData *> &Outs) {
  const CompiledGraph::Part &Part = CG.Parts[I];
  if (Part.Compiled)
    return Part.Compiled->execute(Ins, Outs);

  // Reference fallback: interpret the subgraph on plain tensors. Inputs
  // and constants are wrapped as views (no copy; constants are read-only
  // during evaluation); outputs are copied into their destination
  // buffers.
  const Graph &Sub = Part.Spec.Subgraph;
  TensorMap Env;
  for (int64_t TId : Sub.tensorIds())
    if (const runtime::TensorData *Data = Sub.constantData(TId))
      Env[TId] = runtime::TensorData::view(
          Data->dtype(), Data->shape(), const_cast<void *>(Data->data()));
  const std::vector<int64_t> &SubIns = Sub.inputs();
  for (size_t J = 0; J < SubIns.size(); ++J) {
    const LogicalTensor &Meta = Sub.tensor(SubIns[J]);
    Env[SubIns[J]] =
        runtime::TensorData::view(Meta.Ty, Meta.Shape, Ins[J]->data());
  }
  evalGraphReference(Sub, Env);
  const std::vector<int64_t> &SubOuts = Sub.outputs();
  for (size_t J = 0; J < SubOuts.size(); ++J) {
    const runtime::TensorData &Result = Env.at(SubOuts[J]);
    if (Result.numBytes() != Outs[J]->numBytes())
      return Status::error(StatusCode::Internal,
                           "fallback output size mismatch");
    std::memcpy(Outs[J]->data(), Result.data(),
                static_cast<size_t>(Result.numBytes()));
  }
  return Status::ok();
}

void Submission::buildScratchViews(const CompiledGraph &CG,
                                   runtime::PlanArena &Arena,
                                   std::vector<runtime::TensorData> &Views) {
  Views.clear();
  Views.reserve(CG.ScratchSlots.size());
  for (const CompiledGraph::ScratchSlot &Slot : CG.ScratchSlots)
    Views.push_back(runtime::TensorData::view(Slot.Meta.Ty, Slot.Meta.Shape,
                                              Arena.at(Slot.Offset)));
}

runtime::TensorData *
Submission::resolveRef(const CompiledGraph::BoundRef &Ref,
                       const std::vector<runtime::TensorData *> &Inputs,
                       const std::vector<runtime::TensorData *> &Outputs,
                       std::vector<runtime::TensorData> &ScratchViews) {
  switch (Ref.Where) {
  case CompiledGraph::BoundRef::Loc::GraphInput:
    return Inputs[Ref.Index];
  case CompiledGraph::BoundRef::Loc::GraphOutput:
    return Outputs[Ref.Index];
  case CompiledGraph::BoundRef::Loc::Scratch:
    return &ScratchViews[Ref.Index];
  }
  return nullptr;
}

void Submission::copyEpilogue(
    const CompiledGraph &CG,
    const std::vector<runtime::TensorData *> &Inputs,
    const std::vector<runtime::TensorData *> &Outputs) {
  for (const auto &[OutIdx, InIdx] : CG.Passthrough)
    if (Outputs[OutIdx]->data() != Inputs[InIdx]->data())
      std::memcpy(Outputs[OutIdx]->data(), Inputs[InIdx]->data(),
                  static_cast<size_t>(Inputs[InIdx]->numBytes()));
  for (const auto &[DupIdx, FirstIdx] : CG.DuplicateOutputs)
    if (Outputs[DupIdx]->data() != Outputs[FirstIdx]->data())
      std::memcpy(Outputs[DupIdx]->data(), Outputs[FirstIdx]->data(),
                  static_cast<size_t>(Outputs[FirstIdx]->numBytes()));
}

//===----------------------------------------------------------------------===//
// DAG scheduling
//===----------------------------------------------------------------------===//

namespace {

/// Disposes retired submissions on a dedicated (detached, lazily
/// created, intentionally leaked) thread. Needed because the last owner
/// of a session's resources can be the final partition task running on
/// the session's own pool: dropping the last shared_ptr<ThreadPool>
/// there would run ~ThreadPool on a pool worker, which would then join
/// the very thread it is executing on (std::terminate). Any non-worker
/// thread may release safely — the pool destructor's joins are the
/// synchronization — so the reaper only has to be "not a pool worker".
void reapOffWorker(std::shared_ptr<Submission> Last) {
  struct ReaperState {
    std::mutex M;
    std::condition_variable Cv;
    std::deque<std::shared_ptr<Submission>> Queue;
  };
  static ReaperState *State = [] {
    auto *S = new ReaperState; // leaked: outlives every session
    std::thread([S] {
      for (;;) {
        std::shared_ptr<Submission> Dead;
        {
          std::unique_lock<std::mutex> Lock(S->M);
          S->Cv.wait(Lock, [&] { return !S->Queue.empty(); });
          Dead = std::move(S->Queue.front());
          S->Queue.pop_front();
        }
        Dead.reset();
      }
    }).detach();
    return S;
  }();
  {
    std::lock_guard<std::mutex> Lock(State->M);
    State->Queue.push_back(std::move(Last));
  }
  State->Cv.notify_one();
}

} // namespace

namespace {
/// Launched-but-not-retired submissions; see Submission::inFlight().
std::atomic<size_t> InFlightCount{0};
} // namespace

size_t Submission::inFlight() {
  return InFlightCount.load(std::memory_order_acquire);
}

void Submission::retire() {
  if (!Failed.load(std::memory_order_acquire))
    copyEpilogue(*CG, Inputs, Outputs);
  // Views into the arena die before the arena goes back on the free list.
  ScratchViews.clear();
  if (SS && Arena)
    SS->releaseArena(std::move(Arena));
  std::shared_ptr<Submission> Keep;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Keep = std::move(Self);
    DoneFlag.store(true, std::memory_order_release);
    Cv.notify_all();
  }
  // If no Event handle is left, dropping Keep frees the submission — and
  // possibly the session pool with it. On a pool worker that release is
  // handed to the reaper; an Event still alive makes the hand-off a
  // cheap no-op (the reaper's drop is not the last).
  if (Keep && runtime::ThreadPool::onWorkerThread())
    reapOffWorker(std::move(Keep));
  // Last: the release pairs with inFlight()'s acquire, publishing every
  // write this submission made (output tensors included) to a poller
  // that observes the count drop.
  InFlightCount.fetch_sub(1, std::memory_order_release);
}

Status Submission::preRunCheck() {
  if (CancelRequested.load(std::memory_order_acquire))
    return Status::error(StatusCode::Cancelled,
                         "submission cancelled via Event::cancel()");
  if (HasDeadline && std::chrono::steady_clock::now() > Deadline)
    return Status::error(
        StatusCode::DeadlineExceeded,
        "submission deadline passed before this partition started");
  return Status::ok();
}

void Submission::enqueueOrRun(
    const std::pair<runtime::ThreadPool::TaskFn, void *> *TasksIn,
    size_t N) {
  if (N == 0)
    return;
  if (Pool->trySubmitTaskBatch(TasksIn, N))
    return;
  // Refused enqueue: degrade to running the ready tasks inline on this
  // thread. Correct because a task only becomes ready once its producers
  // completed; the loss is overlap, not results. Recursion via
  // finishPartition is bounded by the DAG depth.
  if (SS && SS->Health) {
    SS->Health->TransientFailures.fetch_add(1, std::memory_order_relaxed);
    SS->Health->DegradedToSerial.fetch_add(1, std::memory_order_relaxed);
    SS->Health->warnOnce(
        "async-serial", "task submission refused; running partitions inline");
  }
  for (size_t I = 0; I < N; ++I)
    TasksIn[I].first(TasksIn[I].second);
}

void Submission::finishPartition(uint32_t I) {
  const std::vector<uint32_t> &Succs = CG->Plans[I].Succs;
  // Batch the newly-ready successors into one enqueue (one lock, one
  // wake) instead of a futex per task.
  std::vector<std::pair<runtime::ThreadPool::TaskFn, void *>> Ready;
  Ready.reserve(Succs.size());
  for (uint32_t Succ : Succs)
    if (DepsLeft[Succ].fetch_sub(1, std::memory_order_acq_rel) == 1)
      Ready.emplace_back(&Submission::taskEntry, &Nodes[Succ]);
  enqueueOrRun(Ready.data(), Ready.size());
  if (PartsLeft.fetch_sub(1, std::memory_order_acq_rel) == 1)
    retire();
}

void Submission::taskEntry(void *Ctx) {
  auto *Node = static_cast<Submission::Node *>(Ctx);
  Submission &S = *Node->Sub;
  const uint32_t I = Node->Index;
  // Claim the partition. Losing the claim means requestCancel() pinned it
  // as never-going-to-run before this task reached a worker; treat that
  // exactly like a cancel verdict observed at the partition boundary.
  const bool PreCancelled =
      S.Claimed && S.Claimed[I].exchange(true, std::memory_order_acq_rel);
  // After a failure (or a cancel/deadline verdict) the rest of the DAG is
  // cancelled: completion still propagates (successor counts, submission
  // retirement) but no further partition executes.
  if (!S.Failed.load(std::memory_order_acquire)) {
    Status St = PreCancelled
                    ? Status::error(StatusCode::Cancelled,
                                    "submission cancelled via "
                                    "Event::cancel()")
                    : S.preRunCheck();
    if (St.isOk()) {
      const CompiledGraph::PartitionPlan &Plan = S.CG->Plans[I];
      std::vector<runtime::TensorData *> Ins, Outs;
      Ins.reserve(Plan.Ins.size());
      Outs.reserve(Plan.Outs.size());
      for (const CompiledGraph::BoundRef &Ref : Plan.Ins)
        Ins.push_back(resolveRef(Ref, S.Inputs, S.Outputs, S.ScratchViews));
      for (const CompiledGraph::BoundRef &Ref : Plan.Outs)
        Outs.push_back(resolveRef(Ref, S.Inputs, S.Outputs, S.ScratchViews));
      St = runPartition(*S.CG, I, Ins, Outs);
    }
    if (!St.isOk()) {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      if (S.Err.isOk()) {
        S.Err = St;
        // First failure of the submission: classify into the session
        // health counters exactly once.
        if (S.SS && S.SS->Health) {
          HealthState &H = *S.SS->Health;
          if (St.code() == StatusCode::Cancelled)
            H.Cancellations.fetch_add(1, std::memory_order_relaxed);
          else if (St.code() == StatusCode::DeadlineExceeded)
            H.DeadlinesExceeded.fetch_add(1, std::memory_order_relaxed);
          else if (isTransient(St.code()))
            H.TransientFailures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      S.Failed.store(true, std::memory_order_release);
    }
  }
  S.finishPartition(I);
}

void Submission::requestCancel() {
  CancelRequested.store(true, std::memory_order_release);
  if (!Claimed || Nodes.empty())
    return;
  // Claim every partition we can: a won claim pins that partition as
  // never-going-to-run (its task will fire as an accounting no-op). When
  // EVERY claim is won, no partition has started or ever will, so the
  // Cancelled verdict can be published right here instead of waiting for
  // the queued tasks to reach a worker — the prompt-cancel path for a
  // fully-unstarted submission parked behind a busy pool. Claims past the
  // first loss still matter: they stop not-yet-started partitions even
  // when the fast path does not apply.
  bool AllUnstarted = true;
  for (size_t I = 0, N = Nodes.size(); I < N; ++I)
    if (Claimed[I].exchange(true, std::memory_order_acq_rel))
      AllUnstarted = false;
  if (!AllUnstarted)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (DoneFlag.load(std::memory_order_relaxed))
    return;
  if (Err.isOk()) {
    Err = Status::error(StatusCode::Cancelled,
                        "submission cancelled via Event::cancel() before "
                        "any partition started");
    if (SS && SS->Health)
      SS->Health->Cancellations.fetch_add(1, std::memory_order_relaxed);
  }
  Failed.store(true, std::memory_order_release);
  // Completion is visible now; the leased arena and the self-reference
  // are released by the normal retire() once the queued no-op tasks have
  // drained (they hold raw pointers into this submission).
  DoneFlag.store(true, std::memory_order_release);
  Cv.notify_all();
}

std::shared_ptr<Submission> Submission::completed(Status S) {
  auto Sub = std::make_shared<Submission>();
  if (!S.isOk()) {
    Sub->Err = std::move(S);
    Sub->Failed.store(true, std::memory_order_relaxed);
  }
  Sub->DoneFlag.store(true, std::memory_order_release);
  return Sub;
}

std::shared_ptr<Submission>
Submission::launch(const CompiledGraph &CG, CompiledGraphPtr Owned,
                   std::shared_ptr<StreamState> SS,
                   const std::vector<runtime::TensorData *> &Inputs,
                   const std::vector<runtime::TensorData *> &Outputs,
                   int64_t TimeoutMs) {
  auto Sub = std::make_shared<Submission>();
  Sub->CG = &CG;
  Sub->Owned = std::move(Owned);
  Sub->Pool = SS->Pool;
  Sub->SS = std::move(SS);
  Sub->Inputs = Inputs;
  Sub->Outputs = Outputs;
  if (TimeoutMs > 0) {
    Sub->HasDeadline = true;
    Sub->Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
  }
  Expected<std::unique_ptr<runtime::PlanArena>> ArenaOr =
      Sub->SS->acquireArena(CG.ArenaBytes);
  if (!ArenaOr) {
    if (Sub->SS->Health) {
      HealthState &H = *Sub->SS->Health;
      H.TransientFailures.fetch_add(1, std::memory_order_relaxed);
      if (ArenaOr.status().code() == StatusCode::ResourceExhausted)
        H.MemLimitRejections.fetch_add(1, std::memory_order_relaxed);
    }
    return completed(ArenaOr.status());
  }
  Sub->Arena = ArenaOr.takeValue();
  buildScratchViews(CG, *Sub->Arena, Sub->ScratchViews);

  // Both Stream entry points route graphs with <= 1 partition elsewhere
  // (Direct fast path / synchronous submit shortcut).
  const size_t N = CG.Parts.size();
  assert(N > 1 && "launch() requires a multi-partition graph");

  Sub->Nodes.resize(N);
  Sub->DepsLeft = std::make_unique<std::atomic<uint32_t>[]>(N);
  Sub->Claimed = std::make_unique<std::atomic<bool>[]>(N);
  for (size_t I = 0; I < N; ++I) {
    Sub->Nodes[I].Sub = Sub.get();
    Sub->Nodes[I].Index = static_cast<uint32_t>(I);
    Sub->DepsLeft[I].store(CG.Plans[I].NumPreds, std::memory_order_relaxed);
    Sub->Claimed[I].store(false, std::memory_order_relaxed);
  }
  Sub->PartsLeft.store(N, std::memory_order_relaxed);
  // The self-reference keeps the submission alive until the last task
  // retires it, even when the caller drops the Event immediately. Set
  // before the first enqueue: a single-worker pool runs tasks inline, so
  // the whole DAG may finish inside the submitTask calls below.
  Sub->Self = Sub;
  // Count before the first enqueue: a single-worker pool may retire the
  // whole submission inside submitTaskBatch.
  InFlightCount.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::pair<runtime::ThreadPool::TaskFn, void *>> Roots;
  Roots.reserve(N);
  for (size_t I = 0; I < N; ++I)
    if (CG.Plans[I].NumPreds == 0)
      Roots.emplace_back(&Submission::taskEntry, &Sub->Nodes[I]);
  Sub->enqueueOrRun(Roots.data(), Roots.size());
  return Sub;
}

//===----------------------------------------------------------------------===//
// Event
//===----------------------------------------------------------------------===//

} // namespace detail

bool Event::query() const {
  return !Sub || Sub->DoneFlag.load(std::memory_order_acquire);
}

Status Event::wait() const {
  if (!Sub)
    return Status::ok();
  detail::Submission &S = *Sub;
  // Help: drain queued partition tasks (this submission's or any other's)
  // instead of idling; park only once the queue is empty. Tasks in flight
  // on workers enqueue their successors, which the workers pick up.
  if (S.Pool)
    while (!S.DoneFlag.load(std::memory_order_acquire) &&
           S.Pool->tryRunOneTask()) {
    }
  std::unique_lock<std::mutex> Lock(S.Mutex);
  S.Cv.wait(Lock, [&] {
    return S.DoneFlag.load(std::memory_order_relaxed);
  });
  return S.Err;
}

Status Event::waitFor(int64_t TimeoutMs) const {
  if (!Sub)
    return Status::ok();
  detail::Submission &S = *Sub;
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max<int64_t>(0, TimeoutMs));
  // Help drain like wait(), but stop helping at the deadline: a queued
  // task could run long past it.
  if (S.Pool)
    while (!S.DoneFlag.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < Deadline &&
           S.Pool->tryRunOneTask()) {
    }
  std::unique_lock<std::mutex> Lock(S.Mutex);
  if (!S.Cv.wait_until(Lock, Deadline, [&] {
        return S.DoneFlag.load(std::memory_order_relaxed);
      }))
    return Status::error(
        StatusCode::DeadlineExceeded,
        formatString("submission still in flight after %lld ms",
                     (long long)TimeoutMs));
  return S.Err;
}

bool Event::cancel() const {
  if (!Sub || Sub->DoneFlag.load(std::memory_order_acquire))
    return false;
  Sub->requestCancel();
  return true;
}

} // namespace api
} // namespace gc
