//===- partitioner.cpp - Graph -> partition discovery -----------------------------===//

#include "api/partitioner.h"

#include "support/common.h"
#include "support/str.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace gc {
namespace api {

using namespace graph;

bool Partitioner::isCompilable(const Graph &G, const Op &O) {
  // Explicit user pin: attr impl="reference" forces the fallback path.
  // This is the escape hatch for custom/unknown ops and for debugging a
  // suspect compiled kernel against the interpreter.
  if (O.getAttrString("impl") == "native")
    return true;
  if (O.getAttrString("impl") == "reference")
    return false;
  switch (O.kind()) {
  case OpKind::Transpose: {
    // The lowering driver only implements the transformer BSHD<->BHSD
    // permute; every other permutation interprets.
    const std::vector<int64_t> Perm = O.getAttrIntVec("perm");
    return Perm == std::vector<int64_t>{0, 2, 1, 3} &&
           G.tensor(O.input(0)).rank() == 4;
  }
  case OpKind::Sigmoid_:
    // Reserved kind with no semantics anywhere; never compilable (and the
    // partition builder rejects it before the interpreter would).
    return false;
  default:
    return true;
  }
}

namespace {

/// Splits one op group into weakly-connected components over
/// producer-consumer edges restricted to the group (ops that merely share
/// an input are *not* connected). Components are emitted in order of
/// their first member, so the op order inside each component — and the
/// overall topological order of the refined group list — is preserved.
std::vector<std::vector<int64_t>>
splitConnectedComponents(const Graph &G, const std::vector<int64_t> &Ops) {
  std::unordered_map<int64_t, size_t> Pos;
  for (size_t I = 0; I < Ops.size(); ++I)
    Pos.emplace(Ops[I], I);
  // Union-find over group positions.
  std::vector<size_t> Parent(Ops.size());
  for (size_t I = 0; I < Ops.size(); ++I)
    Parent[I] = I;
  std::function<size_t(size_t)> Find = [&](size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  for (size_t I = 0; I < Ops.size(); ++I)
    for (int64_t In : G.op(Ops[I]).inputs()) {
      const int64_t Prod = G.producerOf(In);
      if (Prod < 0)
        continue;
      const auto It = Pos.find(Prod);
      if (It == Pos.end())
        continue; // producer lives in another group
      const size_t A = Find(It->second), B = Find(I);
      if (A != B)
        Parent[B] = A;
    }
  std::unordered_map<size_t, size_t> RootToComp;
  std::vector<std::vector<int64_t>> Components;
  for (size_t I = 0; I < Ops.size(); ++I) {
    const size_t Root = Find(I);
    const auto [It, Inserted] =
        RootToComp.try_emplace(Root, Components.size());
    if (Inserted)
      Components.emplace_back();
    Components[It->second].push_back(Ops[I]);
  }
  return Components;
}

} // namespace

Expected<std::vector<PartitionSpec>>
Partitioner::partition(bool SplitIndependent) const {
  const std::vector<int64_t> Topo = G.topologicalOrder();

  // Dynamic-batch graphs partition like static ones: every grouping
  // decision here is shape-independent (op kinds, permutations, ranks,
  // constness), so a polymorphic graph and each of its batch
  // specializations produce identical partition structures — which is
  // what lets Session screen a dynamic graph once and reuse the verdict
  // for every bucket. The one shape-sensitive invariant — the fold
  // (constant) side never touches a dynamic tensor, since its values are
  // computed once for all batches — holds because Graph::validate()
  // rejects dynamic constants and fold-side admission below requires
  // all-constant inputs.

  // Fold-side ops (all transitive inputs constant, not producing a graph
  // output) are compilable regardless of kind: the lowering driver routes
  // them to the fold graph, where the reference executor handles any op —
  // mirroring lower/driver.cpp computeFoldSide(). Without this, a
  // constant-side transpose would needlessly re-interpret every execution.
  std::unordered_set<int64_t> FoldOps;
  {
    std::unordered_set<int64_t> FoldTensors;
    for (int64_t OpId : Topo) {
      const Op &O = G.op(OpId);
      bool AllConst = !O.inputs().empty();
      for (int64_t In : O.inputs())
        if (!G.tensor(In).isConstant() && !FoldTensors.count(In)) {
          AllConst = false;
          break;
        }
      if (!AllConst || O.getAttrString("impl") == "reference")
        continue;
      bool ProducesOutput = false;
      for (int64_t Out : O.outputs())
        if (G.isOutput(Out))
          ProducesOutput = true;
      if (ProducesOutput)
        continue;
      FoldOps.insert(OpId);
      for (int64_t Out : O.outputs())
        FoldTensors.insert(Out);
    }
  }

  // Group assignment: an op joins the latest same-kind group whose index
  // is >= the max group of its producers; edges then always point from a
  // lower group index to a higher one, so list order is execution order.
  //
  // Run to fixpoint: a fold-admitted op of non-compilable kind whose
  // output crosses its group boundary would become a subgraph output,
  // which the lowering driver refuses to fold (lower/driver.cpp) — that
  // would demote the whole compiled group. Strip such ops from FoldOps
  // and regroup; each iteration removes at least one op, so this
  // terminates in <= |FoldOps| rounds.
  std::vector<std::vector<int64_t>> Groups;
  std::vector<bool> GroupCompilable;
  std::unordered_map<int64_t, int> GroupOf; // op id -> group index
  for (;;) {
    Groups.clear();
    GroupCompilable.clear();
    GroupOf.clear();
    for (int64_t OpId : Topo) {
      const Op &O = G.op(OpId);
      const bool Compilable = FoldOps.count(OpId) || isCompilable(G, O);
      int MaxDep = -1;
      for (int64_t In : O.inputs()) {
        const int64_t Prod = G.producerOf(In);
        if (Prod >= 0)
          MaxDep = std::max(MaxDep, GroupOf.at(Prod));
      }
      int Target = -1;
      for (int I = static_cast<int>(Groups.size()) - 1;
           I >= std::max(MaxDep, 0); --I)
        if (GroupCompilable[static_cast<size_t>(I)] == Compilable) {
          Target = I;
          break;
        }
      if (Target < 0) {
        Target = static_cast<int>(Groups.size());
        Groups.emplace_back();
        GroupCompilable.push_back(Compilable);
      }
      Groups[static_cast<size_t>(Target)].push_back(OpId);
      GroupOf[OpId] = Target;
    }
    bool Stripped = false;
    for (auto It = FoldOps.begin(); It != FoldOps.end();) {
      const Op &O = G.op(*It);
      bool Crosses = false;
      if (!isCompilable(G, O))
        for (int64_t Out : O.outputs())
          for (int64_t User : G.consumersOf(Out))
            if (GroupOf.at(User) != GroupOf.at(*It))
              Crosses = true;
      if (Crosses) {
        It = FoldOps.erase(It);
        Stripped = true;
      } else {
        ++It;
      }
    }
    if (!Stripped)
      break;
  }

  // Split policy: refine each maximal group into its dataflow components
  // so independent branches become separately schedulable partitions.
  // Fold-side ops always share a component with their in-group consumers
  // (they are connected by the producer edge), so the fixpoint's
  // no-crossing guarantee survives the refinement.
  if (SplitIndependent) {
    std::vector<std::vector<int64_t>> RefinedGroups;
    std::vector<bool> RefinedCompilable;
    for (size_t GI = 0; GI < Groups.size(); ++GI)
      for (std::vector<int64_t> &Component :
           splitConnectedComponents(G, Groups[GI])) {
        RefinedGroups.push_back(std::move(Component));
        RefinedCompilable.push_back(GroupCompilable[GI]);
      }
    Groups = std::move(RefinedGroups);
    GroupCompilable = std::move(RefinedCompilable);
  }

  // Extract one self-contained subgraph per group. Cloning preserves ids,
  // so a boundary tensor has the same id in producer and consumer specs.
  std::vector<PartitionSpec> Specs;
  Specs.reserve(Groups.size());
  for (size_t GI = 0; GI < Groups.size(); ++GI) {
    PartitionSpec Spec;
    Spec.Kind = GroupCompilable[GI] ? PartitionKind::Compiled
                                    : PartitionKind::Fallback;
    Spec.OpIds = Groups[GI];
    const std::unordered_set<int64_t> InGroup(Spec.OpIds.begin(),
                                              Spec.OpIds.end());

    // Clone without constant payloads; data is re-attached below for the
    // tensors that survive extraction (avoids copying every weight once
    // per partition).
    Graph Sub = G.clone(/*WithConstData=*/false);
    for (int64_t OpId : Sub.opIds())
      if (!InGroup.count(OpId))
        Sub.eraseOp(OpId);

    std::unordered_set<int64_t> ProducedInside;
    for (int64_t OpId : Spec.OpIds)
      for (int64_t Out : G.op(OpId).outputs())
        ProducedInside.insert(Out);

    // Inputs: source graph inputs used here keep their declaration order
    // (a whole-graph partition is bind-compatible with the source graph),
    // then cross-partition tensors in first-use order.
    std::vector<int64_t> NewInputs;
    std::unordered_set<int64_t> Seen;
    auto addInput = [&](int64_t Id) {
      if (Seen.insert(Id).second)
        NewInputs.push_back(Id);
    };
    std::unordered_set<int64_t> UsedHere;
    for (int64_t OpId : Spec.OpIds)
      for (int64_t In : G.op(OpId).inputs())
        UsedHere.insert(In);
    // A single whole-graph partition keeps every declared input (even
    // unused ones) so it stays bind-compatible with the source graph;
    // multi-partition subgraphs take only the inputs they consume.
    for (int64_t In : G.inputs())
      if (Groups.size() == 1 || UsedHere.count(In))
        addInput(In);
    for (int64_t OpId : Spec.OpIds)
      for (int64_t In : G.op(OpId).inputs()) {
        if (ProducedInside.count(In) || Seen.count(In))
          continue;
        if (G.tensor(In).isConstant())
          continue; // travels with the subgraph as constant data
        addInput(In);
      }

    // Outputs: source graph outputs produced here keep their declaration
    // order, then tensors other partitions consume, in production order.
    std::vector<int64_t> NewOutputs;
    std::unordered_set<int64_t> SeenOut;
    auto addOutput = [&](int64_t Id) {
      if (SeenOut.insert(Id).second)
        NewOutputs.push_back(Id);
    };
    for (int64_t Out : G.outputs())
      if (ProducedInside.count(Out))
        addOutput(Out);
    for (int64_t OpId : Spec.OpIds)
      for (int64_t Out : G.op(OpId).outputs())
        for (int64_t User : G.consumersOf(Out))
          if (!InGroup.count(User))
            addOutput(Out);

    if (NewOutputs.empty())
      return Status::error(
          StatusCode::InvalidGraph,
          formatString("partition %zu has no live outputs (dead ops?)",
                       GI));

    Sub.setInputs(NewInputs);
    Sub.setOutputs(NewOutputs);

    // Drop tensors that belong to other partitions: anything unused by the
    // remaining ops and not on the boundary.
    for (int64_t TId : Sub.tensorIds()) {
      if (Sub.producerOf(TId) >= 0 || !Sub.consumersOf(TId).empty())
        continue;
      if (Sub.isInput(TId) || Sub.isOutput(TId))
        continue;
      Sub.eraseTensor(TId);
    }

    // Attach constant data for the surviving tensors as non-owning views
    // of the source graph (zero-copy). The Session later drops these for
    // compiled partitions (which own their copy) and materializes them
    // for fallback partitions (which may outlive the source graph).
    for (int64_t TId : Sub.tensorIds())
      if (const runtime::TensorData *Data = G.constantData(TId))
        Sub.setConstantData(
            TId, runtime::TensorData::view(Data->dtype(), Data->shape(),
                                           const_cast<void *>(Data->data())));

    const std::string Err = Sub.verify();
    if (!Err.empty())
      return Status::error(StatusCode::Internal,
                           "partition subgraph verification failed: " + Err);
    Spec.Subgraph = std::move(Sub);
    Specs.push_back(std::move(Spec));
  }
  return Specs;
}

} // namespace api
} // namespace gc
