//===- event.h - Completion handle for async stream submissions -*- C++ -*-===//
///
/// \file
/// The future half of Stream::submit(): an Event tracks one asynchronous
/// submission of a CompiledGraph and reports its completion and Status.
/// Events are cheap shared handles — copies observe the same submission —
/// and hold the submission state (and through it the CompiledGraph, the
/// thread pool and the stream's arena) alive until destroyed.
///
/// Thread safety: query() and wait() may be called concurrently from any
/// number of threads; wait() parks after helping drain the pool's task
/// queue, so a waiter contributes to the very submission it waits on
/// instead of idling.
///
//===----------------------------------------------------------------------===//

#ifndef GC_API_EVENT_H
#define GC_API_EVENT_H

#include "support/status.h"

#include <cstdint>
#include <memory>

namespace gc {
namespace api {

class Stream;

namespace detail {
struct Submission;
} // namespace detail

/// Completion handle returned by Stream::submit(). A default-constructed
/// Event is complete and ok (the "no submission" value).
class Event {
public:
  /// \brief An already-complete, successful event.
  Event() = default;

  /// \brief True once every partition of the submission has finished (or
  /// the submission failed); never blocks. Default-constructed events
  /// report true.
  bool query() const;

  /// \brief Blocks until the submission completes and returns its Status
  /// (the first partition error wins; ok on success). While the
  /// submission is in flight the waiting thread helps execute queued
  /// partition tasks before parking. Safe to call repeatedly; later calls
  /// return the same Status immediately.
  Status wait() const;

  /// \brief Like wait(), but gives up after \p TimeoutMs milliseconds:
  /// returns DeadlineExceeded when the submission is still in flight at
  /// the timeout. Timing out does NOT cancel or otherwise affect the
  /// submission — it keeps running and a later wait()/waitFor() can still
  /// collect its real Status. Helps drain queued tasks while waiting,
  /// like wait().
  Status waitFor(int64_t TimeoutMs) const;

  /// \brief Requests cancellation of the submission. Best-effort and
  /// asynchronous: partitions not yet started are abandoned, in-flight
  /// ones drain, and the Event then completes with Status Cancelled.
  /// A submission none of whose partitions has started (e.g. parked in
  /// the task queue behind a busy pool) completes with Cancelled
  /// immediately, before cancel() returns — it does not wait for its
  /// queued tasks to reach a worker.
  /// Returns false when there is nothing to cancel (default-constructed
  /// event or already-complete submission); a true return does not
  /// guarantee the submission will report Cancelled — it may complete
  /// successfully first.
  bool cancel() const;

  /// \brief False for default-constructed events (nothing was submitted).
  bool valid() const { return Sub != nullptr; }

private:
  friend class Stream;
  explicit Event(std::shared_ptr<detail::Submission> S) : Sub(std::move(S)) {}

  std::shared_ptr<detail::Submission> Sub;
};

} // namespace api
} // namespace gc

#endif // GC_API_EVENT_H
