//===- scheduler.h - Async partition DAG scheduler (internal) ---*- C++ -*-===//
///
/// \file
/// Internals behind Stream::submit()/Event: one Submission per launched
/// execution, scheduled over the partition dependency DAG the compiler
/// stored on the CompiledGraph.
///
/// Execution model: every partition becomes a one-shot task on the
/// session's ThreadPool once its last producer completes (dependency
/// counts, continuation-passing — no task ever blocks). Inside a task,
/// parallel loop nests run inline serially (see
/// runtime::ThreadPool::onWorkerThread), so the scheduler trades
/// loop-level parallelism for partition-level overlap; waiting threads
/// help drain the task queue. Cross-partition intermediates resolve into
/// a per-submission PlanArena leased from the stream's free list and
/// returned at completion, and every partition execution leases its own
/// ExecState from the CompiledPartition pool, which is what makes
/// overlapping submissions of one CompiledGraph safe.
///
/// This header is internal: the public surface is api/session.h +
/// api/event.h. It is exposed (and lightly documented) for tests and for
/// the architecture walkthrough in docs/ARCHITECTURE.md.
///
//===----------------------------------------------------------------------===//

#ifndef GC_API_SCHEDULER_H
#define GC_API_SCHEDULER_H

#include "api/session.h"
#include "runtime/buffer.h"
#include "runtime/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace gc {
namespace api {
namespace detail {

/// Shared state behind a Stream and its copies: the session pool handle,
/// the execute() scheduling policy, and the free list of execution arenas
/// recycled across executions ("per-stream arena"). Concurrent executions
/// on one stream each lease their own arena; the list is bounded so a
/// burst does not pin arenas forever.
struct StreamState {
  std::shared_ptr<runtime::ThreadPool> Pool;
  /// Route multi-partition execute() through the async scheduler
  /// (CompileOptions::AsyncExec / GC_SCHED=async).
  bool AsyncExec = false;
  /// The owning session's fault-tolerance counters (shared; never null
  /// for states minted by Session::stream()).
  std::shared_ptr<HealthState> Health;

  /// Leases an arena of at least \p Bytes (recycled when available).
  /// Fails with ResourceExhausted when the growth is refused
  /// (GC_MEM_LIMIT, allocation failure, or injection at "arena.grow");
  /// the failed arena is dropped, returning its budget charge.
  Expected<std::unique_ptr<runtime::PlanArena>> acquireArena(size_t Bytes);
  /// Returns a leased arena to the free list (dropped beyond the cap).
  void releaseArena(std::unique_ptr<runtime::PlanArena> Arena);

private:
  std::mutex Mutex;
  std::vector<std::unique_ptr<runtime::PlanArena>> FreeArenas;
};

/// One asynchronous execution of a CompiledGraph: the dependency
/// counters, the leased arena with the intermediate tensor views, and the
/// completion latch behind Event. Kept alive by the Event handle and by a
/// self-reference released when the last partition finishes, so dropping
/// the Event mid-flight is safe.
struct Submission {
  /// Task context: one per partition, stable address for the pool task.
  struct Node {
    Submission *Sub = nullptr;
    uint32_t Index = 0;
  };

  const CompiledGraph *CG = nullptr;
  CompiledGraphPtr Owned; ///< lifetime pin (null for borrowed sync runs)
  std::shared_ptr<runtime::ThreadPool> Pool;
  std::shared_ptr<StreamState> SS;
  std::unique_ptr<runtime::PlanArena> Arena;
  std::vector<runtime::TensorData *> Inputs, Outputs;
  /// Views into Arena, one per CompiledGraph::ScratchSlots entry.
  std::vector<runtime::TensorData> ScratchViews;
  std::vector<Node> Nodes;
  std::unique_ptr<std::atomic<uint32_t>[]> DepsLeft;
  /// One claim flag per partition, taken exactly once: by taskEntry just
  /// before the partition would execute, or by requestCancel() to pin the
  /// partition as never-going-to-run. A claimed-by-cancel partition's task
  /// still fires for dependency/retirement accounting but skips the body.
  std::unique_ptr<std::atomic<bool>[]> Claimed;
  std::atomic<size_t> PartsLeft{0};
  std::atomic<bool> Failed{false};
  std::atomic<bool> DoneFlag{false};
  /// Deadline from SubmitOptions::TimeoutMs, checked at partition
  /// boundaries (a partition never aborts mid-kernel).
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;
  /// Set by Event::cancel(); observed at partition boundaries.
  std::atomic<bool> CancelRequested{false};

  std::mutex Mutex;
  std::condition_variable Cv;
  Status Err;                       ///< first partition error (under Mutex)
  std::shared_ptr<Submission> Self; ///< released by the finishing task

  /// Validates boundary arity/dtype/shape against the plan metadata.
  static Status validateBoundary(
      const CompiledGraph &CG,
      const std::vector<runtime::TensorData *> &Inputs,
      const std::vector<runtime::TensorData *> &Outputs);

  /// Polymorphic-graph boundary validation: static dimensions must match
  /// the metadata exactly, dynamic (batch) dimensions must agree on one
  /// concrete extent across every bound input and output. Returns that
  /// extent — the batch the execution specializes for.
  static Expected<int64_t> resolveDynamicBatch(
      const CompiledGraph &CG,
      const std::vector<runtime::TensorData *> &Inputs,
      const std::vector<runtime::TensorData *> &Outputs);

  /// Runs partition \p I of \p CG on the calling thread with the given
  /// resolved arguments (compiled -> CompiledPartition::execute, fallback
  /// -> reference interpreter). Shared by the serial path and the
  /// scheduler tasks.
  static Status runPartition(const CompiledGraph &CG, size_t I,
                             const std::vector<runtime::TensorData *> &Ins,
                             const std::vector<runtime::TensorData *> &Outs);

  /// Builds the per-execution views over \p Arena for every scratch slot.
  static void
  buildScratchViews(const CompiledGraph &CG, runtime::PlanArena &Arena,
                    std::vector<runtime::TensorData> &Views);

  /// Resolves one plan reference against the execution's tensor sets.
  static runtime::TensorData *
  resolveRef(const CompiledGraph::BoundRef &Ref,
             const std::vector<runtime::TensorData *> &Inputs,
             const std::vector<runtime::TensorData *> &Outputs,
             std::vector<runtime::TensorData> &ScratchViews);

  /// Post-completion copies: pass-through outputs and duplicate listings.
  static void copyEpilogue(const CompiledGraph &CG,
                           const std::vector<runtime::TensorData *> &Inputs,
                           const std::vector<runtime::TensorData *> &Outputs);

  /// Launches the DAG: leases the arena, seeds the dependency counters
  /// and enqueues every root partition. The caller must have run
  /// validateBoundary() already (both Stream entry points do — exactly
  /// once). Returns the submission, possibly already complete:
  /// single-worker pools drain the whole DAG during the enqueues, and an
  /// arena-lease failure yields an already-failed submission.
  /// \p TimeoutMs > 0 arms the deadline (milliseconds from now).
  static std::shared_ptr<Submission>
  launch(const CompiledGraph &CG, CompiledGraphPtr Owned,
         std::shared_ptr<StreamState> SS,
         const std::vector<runtime::TensorData *> &Inputs,
         const std::vector<runtime::TensorData *> &Outputs,
         int64_t TimeoutMs = 0);

  /// An already-complete submission carrying \p S (for early failures and
  /// the synchronous single-partition shortcut).
  static std::shared_ptr<Submission> completed(Status S);

  /// Cancellation entry point behind Event::cancel(): sets
  /// CancelRequested, then tries to claim every partition. When it wins
  /// every claim — no partition has started (or ever will) — it publishes
  /// the Cancelled verdict immediately, so a fully-unstarted submission
  /// completes from the cancelling thread instead of waiting for its
  /// queued tasks to reach a worker. The queued tasks still fire later as
  /// cheap no-ops to drive dependency counts and the final retire().
  void requestCancel();

  /// Number of launched submissions whose retire() has not finished.
  /// The release-decrement at the end of retire() pairs with the
  /// acquire-load here, so an observer that reads 0 has a
  /// happens-before edge to every output write of every retired
  /// submission — the race-free completion probe for callers that
  /// dropped all handles (the mid-flight-drop tests poll it).
  static size_t inFlight();

  /// Pool-task trampoline: \p Ctx is a Node. Executes the partition (when
  /// the submission has not failed), then propagates completion.
  static void taskEntry(void *Ctx);

private:
  /// Cancellation/deadline gate run before a partition executes: returns
  /// Cancelled or DeadlineExceeded (bumping the session health counter
  /// exactly once per submission) when the submission should stop, ok
  /// otherwise.
  Status preRunCheck();
  /// Submits \p N ready tasks to the pool; when submission is refused
  /// (fault site "pool.submit"), degrades to running them inline on the
  /// calling thread — the async -> serial axis at task granularity.
  void enqueueOrRun(const std::pair<runtime::ThreadPool::TaskFn, void *>
                        *TasksIn,
                    size_t N);
  /// Decrements successors' dependency counts (enqueueing the ready
  /// ones), then retires the submission when this was the last partition.
  void finishPartition(uint32_t I);
  /// Epilogue copies, arena return, completion latch, self-release.
  void retire();
};

} // namespace detail
} // namespace api
} // namespace gc

#endif // GC_API_SCHEDULER_H
